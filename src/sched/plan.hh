/**
 * @file
 * The scheduler's output formats.
 *
 * A SimdPlan is what the block-dataflow engine executes on the SIMD-style
 * configurations (baseline, S, S-O, S-O-D): one or more placed blocks
 * per record group, with register-file plumbing for loop induction,
 * loop-carried values and cross-block temporaries. A MimdPlan is the
 * per-tile sequential program for the local-PC configurations (M, M-D).
 */

#ifndef DLP_SCHED_PLAN_HH
#define DLP_SCHED_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/mapped.hh"
#include "isa/seq.hh"

namespace dlp::sched {

/** Where the record streams live in SMC word-address space. */
struct StreamLayout
{
    Addr inBase = 0;
    Addr outBase = 0;
    Addr scratchBase = 0;
    /// Records per SMC-resident chunk (0 = unbounded): streams longer
    /// than this are staged through the SMC chunk by chunk, each chunk
    /// paying its own map/setup ramp.
    uint64_t chunkRecords = 0;
};

/** One mapped block plus how many activations it runs per record group. */
struct Segment
{
    isa::MappedBlock block;
    /// Activations per record group: the loop trip count for a
    /// revitalized loop segment, 1 otherwise.
    uint64_t activations = 1;
    bool isLoop = false;
};

struct SimdPlan
{
    std::string name;
    /// Kernel instances per block set (the static unroll factor U).
    unsigned unroll = 1;
    std::vector<Segment> segments;

    /// Register values the setup block writes before the first group
    /// (constants, zeroed induction registers).
    std::vector<std::pair<unsigned, Word>> initialRegs;
    unsigned regsUsed = 0;

    /// Register holding the record-group base index; the block control
    /// logic advances it by `unroll` at every group boundary (the same
    /// sequencer that owns the CTR register).
    unsigned recBaseReg = 0;

    StreamLayout layout;

    /**
     * Resident plans have a single block that stays mapped and is
     * revitalized across all groups; multi-segment plans remap each
     * block every group.
     */
    bool resident() const { return segments.size() == 1; }

    size_t
    totalInsts() const
    {
        size_t n = 0;
        for (const auto &s : segments)
            n += s.block.insts.size();
        return n;
    }
};

struct MimdPlan
{
    std::string name;
    isa::SeqProgram program;
    /// Registers the setup block preloads on every tile (constants,
    /// stream bases); pair of (register, value).
    std::vector<std::pair<unsigned, Word>> initialRegs;
    /// Register that receives the tile's first record index at setup.
    unsigned recIdxReg = 0;
    /// Register holding the record stride (number of tiles).
    unsigned strideReg = 0;
    /// Register holding the total record count for the batch.
    unsigned recCountReg = 0;
    StreamLayout layout;
};

} // namespace dlp::sched

#endif // DLP_SCHED_PLAN_HH
