#include "sched/simd_lowering.hh"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "sched/placer.hh"

namespace dlp::sched {

using kernels::Kernel;
using kernels::LoopId;
using kernels::Node;
using kernels::NodeKind;
using kernels::noValue;
using kernels::topLevel;
using isa::Op;

namespace {

/** Reference to a virtual-op result (word index matters for Lmw). */
struct ValRef
{
    uint32_t vop = ~0u;
    uint8_t word = 0;

    bool valid() const { return vop != ~0u; }
    bool operator<(const ValRef &o) const
    {
        return vop != o.vop ? vop < o.vop : word < o.word;
    }
};

/** A virtual (pre-placement) instruction. */
struct VOp
{
    Op op = Op::Nop;
    Word imm = 0;
    bool immB = false;
    ValRef src[3];
    uint8_t nsrc = 0;
    isa::MemSpace space = isa::MemSpace::None;
    uint8_t lmwCount = 0;
    uint8_t lmwStride = 1;
    uint16_t tableId = 0;
    bool overhead = false;
    bool regTile = false;
    uint32_t seg = 0;
    uint32_t instance = 0;
};

struct SegSpec
{
    bool isLoop = false;
    LoopId loop = topLevel;
    size_t first = 0; ///< node range (straight segments)
    size_t last = 0;
};

struct LoopExtent
{
    size_t first = ~size_t(0);
    size_t last = 0;
};

class Lowering
{
  public:
    Lowering(const Kernel &kern, const core::MachineParams &mach,
             const StreamLayout &lay)
        : k(kern), m(mach), layout(lay)
    {
        extents.resize(k.loops.size());
        for (size_t i = 0; i < k.nodes.size(); ++i) {
            LoopId l = k.nodes[i].loop;
            while (l != topLevel) {
                extents[l].first = std::min(extents[l].first, i);
                extents[l].last = std::max(extents[l].last, i);
                l = k.loops[l].parent;
            }
        }
    }

    SimdPlan
    lower()
    {
        // Decide between one fully-unrolled resident block and
        // segmentation at the top-level loops. Full unroll wins when it
        // still leaves room to replicate the kernel (more records in
        // flight); otherwise keeping the loop as revitalized iterations
        // packs far more independent records per block (the paper's
        // trade-off between unrolling and instruction storage).
        unsigned slots = m.totalSlots() / std::max(1u, m.pipelineFrames);
        emit(false, 1);
        size_t singleSize = maxSegSize();
        bool canSingle = !regOverflow && singleSize <= slots;
        size_t singleU = canSingle ? std::max<size_t>(
                                         std::min<size_t>(
                                             slots / singleSize, 64),
                                         1)
                                   : 0;

        bool hasTopLoop = false;
        for (const auto &l : k.loops)
            if (l.parent == topLevel)
                hasTopLoop = true;

        bool segmented = !canSingle;
        size_t segU = 0;
        if (hasTopLoop) {
            emit(true, 1);
            if (!regOverflow) {
                segU = std::max<size_t>(
                    std::min<size_t>(slots / maxSegSize(), 64), 1);
                // Keeping the loop resident pays a revitalize per
                // iteration but multiplies the records in flight; prefer
                // it when it at least doubles the replication.
                if (!canSingle || segU >= 2 * singleU)
                    segmented = true;
            }
        }

        unsigned unroll = static_cast<unsigned>(
            segmented ? std::max<size_t>(segU, 1) : singleU);

        // Decrease U until everything fits (lowering overhead is not
        // perfectly linear in U because shared ops amortize). Splitting
        // an oversized straight-line block is a last resort reserved for
        // kernels that cannot unroll at all (md5); at U > 1 we shrink U
        // instead.
        for (;; --unroll) {
            emit(segmented, unroll);
            splitOversized();
            if (!regOverflow && allSegmentsFit() &&
                (!anySplit || unroll == 1) &&
                nextReg + countSpillRegs() <= m.numRegs)
                break;
            fatal_if(unroll == 1,
                     "kernel %s does not fit the machine even at U=1",
                     k.name.c_str());
        }

        return finalize(unroll);
    }

  private:
    // ------------------------------------------------------------------
    // Phase A: symbolic unroll into VOps
    // ------------------------------------------------------------------

    void
    emit(bool segmented, unsigned unrollFactor)
    {
        vops.clear();
        segMeta.clear();
        specs.clear();
        env.assign(unrollFactor,
                   std::vector<ValRef>(k.nodes.size(), ValRef{}));
        carryVal.assign(k.carries.size(), ValRef{});
        carryIsReg.assign(k.carries.size(), false);
        carryRegMap.clear();
        wideScalar.clear();
        loopIterImm.clear();
        idxRegs.clear();
        segIdxUpdated.clear();
        finalSegOf.clear();
        finalMeta.clear();
        caches = Caches{};
        nextReg = 0;
        regOverflow = false;
        initialRegs.clear();
        constRegMap.assign(k.constants.size(), ~0u);
        U = unrollFactor;

        buildSpecs(segmented);
        for (const auto &spec : specs) {
            SegMetaInfo meta;
            meta.isLoop = spec.isLoop;
            if (spec.isLoop) {
                const auto &li = k.loops[spec.loop];
                meta.loop = spec.loop;
                meta.activations = li.staticTrip ? li.staticTrip
                                                 : li.maxTrip;
            }
            segMeta.push_back(meta);
        }

        recBaseReg = allocReg(0);

        for (unsigned inst = 0; inst < U; ++inst)
            walkInstance(inst);
        // The block sequencer advances recBaseReg at group boundaries
        // (see BlockEngine::run), so no in-block update is emitted.
    }

    void
    buildSpecs(bool segmented)
    {
        if (!segmented) {
            specs.push_back({false, topLevel, 0, k.nodes.size()});
            return;
        }
        size_t i = 0;
        size_t straightStart = 0;
        bool inStraight = false;
        while (i < k.nodes.size()) {
            LoopId l = k.nodes[i].loop;
            if (l == topLevel) {
                if (!inStraight) {
                    inStraight = true;
                    straightStart = i;
                }
                ++i;
                continue;
            }
            // Find the outermost loop.
            while (k.loops[l].parent != topLevel)
                l = k.loops[l].parent;
            if (inStraight) {
                specs.push_back({false, topLevel, straightStart, i});
                inStraight = false;
            }
            specs.push_back(
                {true, l, extents[l].first, extents[l].last + 1});
            i = extents[l].last + 1;
        }
        if (inStraight)
            specs.push_back({false, topLevel, straightStart, k.nodes.size()});
        panic_if(specs.empty(), "kernel %s has no nodes", k.name.c_str());
    }

    void
    walkInstance(unsigned inst)
    {
        curInst = inst;
        for (size_t s = 0; s < specs.size(); ++s) {
            curSeg = static_cast<uint32_t>(s);
            const auto &spec = specs[s];
            if (!spec.isLoop) {
                walkRange(spec.first, spec.last, topLevel);
            } else {
                walkSegLoop(spec);
            }
        }
    }

    void
    walkRange(size_t first, size_t last, LoopId level)
    {
        size_t i = first;
        while (i < last) {
            LoopId nl = k.nodes[i].loop;
            if (nl == level) {
                emitNode(i);
                ++i;
                continue;
            }
            LoopId child = nl;
            while (k.loops[child].parent != level)
                child = k.loops[child].parent;
            unrollLoop(child);
            i = extents[child].last + 1;
        }
    }

    /** Fully unroll a nested (or single-segment top-level) loop. */
    void
    unrollLoop(LoopId l)
    {
        const auto &li = k.loops[l];
        bool variable = li.staticTrip == 0;
        uint32_t trips = variable ? li.maxTrip : li.staticTrip;
        ValRef tripRef;
        if (variable)
            tripRef = val(li.tripValue);

        for (uint32_t c : li.carries)
            carryVal[c] = val(k.carries[c].init);

        for (uint32_t iter = 0; iter < trips; ++iter) {
            loopIterImm[l] = iter;
            walkRange(extents[l].first, extents[l].last + 1, l);
            ValRef inactive;
            if (variable) {
                // inactive <=> trip <= iter.
                inactive = emitOp(Op::Leu, tripRef, iter, true);
                vops[inactive.vop].overhead = true;
            }
            for (uint32_t c : li.carries) {
                ValRef next = val(k.carries[c].next);
                if (variable) {
                    ValRef guarded = emitSel(inactive, carryVal[c], next);
                    carryVal[c] = guarded;
                } else {
                    carryVal[c] = next;
                }
            }
        }
        // carryVal now holds exit values for LoopExit nodes.
    }

    /** Walk a top-level loop that becomes its own revitalized segment. */
    void
    walkSegLoop(const SegSpec &spec)
    {
        const auto &li = k.loops[spec.loop];
        bool variable = li.staticTrip == 0;

        // Carried values live in registers; write the initial values
        // from wherever they were produced.
        for (uint32_t c : li.carries) {
            unsigned reg = carryReg(c, curInst);
            ValRef init = val(k.carries[c].init);
            uint32_t initSeg = vops[init.vop].seg;
            emitWriteInSeg(reg, init, initSeg);
            carryIsReg[c] = true;
        }

        segLoopId = spec.loop;
        walkRange(extents[spec.loop].first, extents[spec.loop].last + 1,
                  spec.loop);

        ValRef idx = idxRead(curSeg);
        ValRef inactive;
        if (variable) {
            ValRef tripRef = val(li.tripValue); // spilled by phase B
            inactive = emitOp2(Op::Leu, tripRef, idx);
            vops[inactive.vop].overhead = true;
        }
        for (uint32_t c : li.carries) {
            unsigned reg = carryRegMap.at(carryKey(c, curInst));
            ValRef next = val(k.carries[c].next);
            if (variable) {
                ValRef prev = readOf(curSeg, reg);
                next = emitSel(inactive, prev, next);
            }
            emitWrite(reg, next);
        }

        // One induction update per segment (shared by all instances).
        if (!segIdxUpdated.count(curSeg)) {
            segIdxUpdated.insert(curSeg);
            uint64_t trips = li.staticTrip ? li.staticTrip : li.maxTrip;
            ValRef next = emitOp(Op::Add, idx, 1, true);
            vops[next.vop].overhead = true;
            ValRef wrap = emitOp(Op::Eq, next, trips, true);
            vops[wrap.vop].overhead = true;
            ValRef zero = moviOf(0);
            ValRef wrapped = emitSel(wrap, zero, next);
            vops[wrapped.vop].overhead = true;
            emitWrite(idxRegOf(curSeg), wrapped);
        }
        segLoopId = topLevel;
    }

    // ------------------------------------------------------------------
    // Node emission
    // ------------------------------------------------------------------

    ValRef &
    envAt(uint32_t node)
    {
        return env[curInst][node];
    }

    ValRef
    val(uint32_t node)
    {
        const Node &n = k.nodes[node];
        // Carries resolve through the carry environment.
        if (n.kind == NodeKind::Carry) {
            uint32_t c = static_cast<uint32_t>(n.imm);
            if (carryIsReg[c])
                return readOf(curSeg, carryRegMap.at(carryKey(c, curInst)));
            return carryVal[c];
        }
        ValRef r = envAt(node);
        panic_if(!r.valid(), "kernel %s: node %u used before definition",
                 k.name.c_str(), node);
        return r;
    }

    void
    emitNode(size_t i)
    {
        const Node &n = k.nodes[i];
        switch (n.kind) {
          case NodeKind::Compute:
            if (n.op == Op::Movi) {
                envAt(i) = moviOf(n.imm);
                if (n.overhead)
                    vops[envAt(i).vop].overhead = true;
                return;
            }
            envAt(i) = emitCompute(n);
            return;
          case NodeKind::Const:
            envAt(i) = constRead(static_cast<size_t>(n.imm));
            return;
          case NodeKind::RecIdx:
            envAt(i) = recIdxVal();
            return;
          case NodeKind::LoopIdx: {
            LoopId l = static_cast<LoopId>(n.imm);
            if (l == segLoopId)
                envAt(i) = idxRead(curSeg);
            else
                envAt(i) = moviOf(loopIterImm.at(l));
            return;
          }
          case NodeKind::InWord: {
            unsigned word = static_cast<unsigned>(n.imm);
            if (m.mech.smc) {
                envAt(i) = ValRef{lmwOf().vop, static_cast<uint8_t>(word)};
            } else {
                envAt(i) = scalarInWord(word);
            }
            return;
          }
          case NodeKind::InWordAt: {
            ValRef addr = emitOp2(Op::Add, inAddr(), val(n.src[0]));
            vops[addr.vop].overhead = true;
            envAt(i) = emitLoad(isa::MemSpace::Smc, addr);
            return;
          }
          case NodeKind::InWide:
          case NodeKind::ScratchWide: {
            bool fromScratch = n.kind == NodeKind::ScratchWide;
            ValRef base = fromScratch ? scratchAddr() : inAddr();
            ValRef addr = emitOp2(Op::Add, base, val(n.src[0]));
            vops[addr.vop].overhead = true;
            unsigned count = kernels::KernelBuilder::wideCount(n.imm);
            unsigned stride = kernels::KernelBuilder::wideStride(n.imm);
            if (!m.mech.smc) {
                // No LMW hardware on the baseline: the vector fetch
                // decomposes into scalar cached loads.
                auto &words = wideScalar[wideKey(i)];
                words.clear();
                for (unsigned w = 0; w < count; ++w) {
                    ValRef a = addImm(addr, Word(w) * stride);
                    words.push_back(
                        fromScratch
                            ? orderedLoad(scratchChain(),
                                          isa::MemSpace::Smc, a)
                            : emitLoad(isa::MemSpace::Smc, a));
                }
                return;
            }
            VOp v;
            v.op = Op::Lmw;
            v.space = isa::MemSpace::Smc;
            v.lmwCount = static_cast<uint8_t>(count);
            v.lmwStride = static_cast<uint8_t>(stride);
            v.src[0] = addr;
            v.nsrc = 1;
            if (fromScratch && scratchChain().lastStore.valid()) {
                v.src[1] = scratchChain().lastStore;
                v.nsrc = 2;
            }
            envAt(i) = push(v);
            if (fromScratch)
                scratchChain().loads.push_back(envAt(i));
            return;
          }
          case NodeKind::WordOf: {
            auto it = wideScalar.find(wideKey(n.src[0]));
            if (it != wideScalar.end()) {
                envAt(i) = it->second.at(static_cast<size_t>(n.imm));
            } else {
                ValRef wide = val(n.src[0]);
                envAt(i) = ValRef{wide.vop, static_cast<uint8_t>(n.imm)};
            }
            return;
          }
          case NodeKind::OutWord: {
            ValRef addr = addImm(outAddr(), n.imm);
            emitStore(isa::MemSpace::Smc, addr, val(n.src[0]));
            return;
          }
          case NodeKind::OutWordAt: {
            ValRef addr = emitOp2(Op::Add, outAddr(), val(n.src[0]));
            vops[addr.vop].overhead = true;
            emitStore(isa::MemSpace::Smc, addr, val(n.src[1]));
            return;
          }
          case NodeKind::ScratchLoad: {
            ValRef addr = emitOp2(Op::Add, scratchAddr(), val(n.src[0]));
            vops[addr.vop].overhead = true;
            envAt(i) = orderedLoad(scratchChain(), isa::MemSpace::Smc, addr);
            return;
          }
          case NodeKind::ScratchStore: {
            ValRef addr = emitOp2(Op::Add, scratchAddr(), val(n.src[0]));
            vops[addr.vop].overhead = true;
            orderedStore(scratchChain(), isa::MemSpace::Smc, addr,
                         val(n.src[1]));
            return;
          }
          case NodeKind::CachedLoad:
            envAt(i) = orderedLoad(cachedChain(), isa::MemSpace::Cached,
                                   val(n.src[0]));
            return;
          case NodeKind::CachedStore:
            orderedStore(cachedChain(), isa::MemSpace::Cached,
                         val(n.src[0]), val(n.src[1]));
            return;
          case NodeKind::TableLoad: {
            const auto &table = k.tables[static_cast<size_t>(n.imm)];
            ValRef idx = emitOp(Op::And, val(n.src[0]),
                                table.data.size() - 1, true);
            vops[idx.vop].overhead = true;
            VOp v;
            v.op = Op::Tld;
            v.space = isa::MemSpace::Table;
            v.tableId = static_cast<uint16_t>(n.imm);
            v.src[0] = idx;
            v.nsrc = 1;
            v.overhead = true;
            envAt(i) = push(v);
            return;
          }
          case NodeKind::Carry:
            // Value produced on demand by val(); nothing to emit.
            return;
          case NodeKind::LoopExit: {
            const Node &cn = k.nodes[n.src[0]];
            uint32_t c = static_cast<uint32_t>(cn.imm);
            if (carryIsReg[c])
                envAt(i) =
                    readOf(curSeg, carryRegMap.at(carryKey(c, curInst)));
            else
                envAt(i) = carryVal[c];
            return;
          }
        }
    }

    ValRef
    emitCompute(const Node &n)
    {
        VOp v;
        v.op = n.op;
        v.imm = n.imm;
        v.immB = n.immB;
        v.overhead = n.overhead;
        const auto &info = isa::opInfo(n.op);
        v.nsrc = info.numSrcs;
        for (unsigned s = 0; s < info.numSrcs; ++s) {
            if (s == 1 && n.immB)
                continue;
            v.src[s] = val(n.src[s]);
        }
        return push(v);
    }

    // --- Low-level emit helpers ----------------------------------------

    ValRef
    push(VOp v)
    {
        v.seg = curSeg;
        v.instance = curInst;
        vops.push_back(v);
        return ValRef{static_cast<uint32_t>(vops.size() - 1), 0};
    }

    ValRef
    emitOp(Op op, ValRef a, Word immVal, bool asImmB)
    {
        VOp v;
        v.op = op;
        v.src[0] = a;
        v.nsrc = isa::opInfo(op).numSrcs;
        v.imm = immVal;
        v.immB = asImmB;
        return push(v);
    }

    ValRef
    emitOp2(Op op, ValRef a, ValRef b)
    {
        VOp v;
        v.op = op;
        v.src[0] = a;
        v.src[1] = b;
        v.nsrc = 2;
        return push(v);
    }

    ValRef
    emitSel(ValRef cond, ValRef ifTrue, ValRef ifFalse)
    {
        VOp v;
        v.op = Op::Sel;
        v.src[0] = ifTrue;
        v.src[1] = ifFalse;
        v.src[2] = cond;
        v.nsrc = 3;
        v.overhead = true;
        return push(v);
    }

    /** addr + imm, skipping the add when imm is zero. */
    ValRef
    addImm(ValRef a, Word immVal)
    {
        if (immVal == 0)
            return a;
        ValRef r = emitOp(Op::Add, a, immVal, true);
        vops[r.vop].overhead = true;
        return r;
    }

    ValRef
    emitLoad(isa::MemSpace space, ValRef addr)
    {
        VOp v;
        v.op = Op::Ld;
        v.space = space;
        v.src[0] = addr;
        v.nsrc = 1;
        v.overhead = true;
        return push(v);
    }

    ValRef
    emitStore(isa::MemSpace space, ValRef addr, ValRef data,
              ValRef orderTok = ValRef{})
    {
        VOp v;
        v.op = Op::St;
        v.space = space;
        v.src[0] = addr;
        v.src[1] = data;
        v.nsrc = 2;
        if (orderTok.valid()) {
            v.src[2] = orderTok;
            v.nsrc = 3;
        }
        v.overhead = true;
        return push(v);
    }

    // --- Memory-dependence tokens ---------------------------------------
    //
    // A dataflow block has no program order: a load fires as soon as its
    // address arrives, which may be before a store it must observe. The
    // lowering therefore threads explicit ordering edges through the
    // accesses of each may-alias region that is both read and written
    // inside one segment (the per-record scratch area, the shared cached
    // space). A load waits for the completion token of the last preceding
    // store; a store waits for the previous store and for every load
    // issued since it (joined pairwise), covering RAW, WAW and WAR.
    // Accesses in different segments need no tokens because activations
    // execute back to back, and chains only begin at the first store, so
    // read-only traffic (streamed inputs, textures) keeps its full memory
    // parallelism.

    struct MemChain
    {
        ValRef lastStore;          ///< completion token of the last store
        std::vector<ValRef> loads; ///< loads issued since that store
    };

    MemChain &
    scratchChain()
    {
        return caches.scratchChain[std::make_pair(curSeg, curInst)];
    }

    /// Cached space is shared across record instances, so its chain is
    /// per segment, not per (segment, instance).
    MemChain &
    cachedChain()
    {
        return caches.cachedChain[curSeg];
    }

    /** Pairwise token join: an op that fires when both inputs have. */
    ValRef
    joinTokens(ValRef a, ValRef b)
    {
        ValRef r = emitOp2(Op::Or, a, b);
        vops[r.vop].overhead = true;
        return r;
    }

    ValRef
    orderedLoad(MemChain &chain, isa::MemSpace space, ValRef addr)
    {
        ValRef r = emitLoad(space, addr);
        if (chain.lastStore.valid()) {
            vops[r.vop].src[1] = chain.lastStore;
            vops[r.vop].nsrc = 2;
        }
        chain.loads.push_back(r);
        return r;
    }

    void
    orderedStore(MemChain &chain, isa::MemSpace space, ValRef addr,
                 ValRef data)
    {
        ValRef after = chain.lastStore;
        for (ValRef ld : chain.loads)
            after = after.valid() ? joinTokens(after, ld) : ld;
        chain.lastStore = emitStore(space, addr, data, after);
        chain.loads.clear();
    }

    ValRef
    emitRead(unsigned reg)
    {
        VOp v;
        v.op = Op::Read;
        v.imm = reg;
        v.regTile = true;
        v.overhead = true;
        return push(v);
    }

    void
    emitWrite(unsigned reg, ValRef value)
    {
        VOp v;
        v.op = Op::Write;
        v.imm = reg;
        v.src[0] = value;
        v.nsrc = 1;
        v.regTile = true;
        v.overhead = true;
        push(v);
    }

    void
    emitWriteInSeg(unsigned reg, ValRef value, uint32_t seg)
    {
        uint32_t saved = curSeg;
        curSeg = seg;
        emitWrite(reg, value);
        curSeg = saved;
    }

    // --- Cached shared values -------------------------------------------

    ValRef
    moviOf(Word immVal)
    {
        auto key = std::make_pair(curSeg, immVal);
        auto it = caches.movi.find(key);
        if (it != caches.movi.end())
            return it->second;
        VOp v;
        v.op = Op::Movi;
        v.imm = immVal;
        v.overhead = true;
        ValRef r = push(v);
        caches.movi[key] = r;
        return r;
    }

    ValRef
    constRead(size_t constIdx)
    {
        auto key = std::make_pair(curSeg, static_cast<Word>(constIdx));
        auto it = caches.constRd.find(key);
        if (it != caches.constRd.end())
            return it->second;
        if (constRegMap[constIdx] == ~0u)
            constRegMap[constIdx] = allocReg(k.constants[constIdx].value);
        ValRef r = emitRead(constRegMap[constIdx]);
        caches.constRd[key] = r;
        return r;
    }

    ValRef
    recBaseRead(uint32_t seg)
    {
        auto it = caches.recBase.find(seg);
        if (it != caches.recBase.end())
            return it->second;
        ValRef r = emitRead(recBaseReg);
        caches.recBase[seg] = r;
        return r;
    }

    ValRef
    recIdxVal()
    {
        auto key = std::make_pair(curSeg, curInst);
        auto it = caches.recIdx.find(key);
        if (it != caches.recIdx.end())
            return it->second;
        ValRef base = recBaseRead(curSeg);
        ValRef r = base;
        if (curInst != 0) {
            r = emitOp(Op::Add, base, curInst, true);
            vops[r.vop].overhead = true;
        }
        caches.recIdx[key] = r;
        return r;
    }

    ValRef
    regionAddr(std::map<std::pair<uint32_t, unsigned>, ValRef> &cache,
               unsigned recWords, Addr base)
    {
        auto key = std::make_pair(curSeg, curInst);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
        ValRef rec = recIdxVal();
        ValRef scaled = rec;
        if (recWords > 1) {
            if (isPowerOf2(recWords))
                scaled = emitOp(Op::Shl, rec, floorLog2(recWords), true);
            else
                scaled = emitOp(Op::Mul, rec, recWords, true);
            vops[scaled.vop].overhead = true;
        }
        ValRef addr = addImm(scaled, base);
        cache[key] = addr;
        return addr;
    }

    ValRef
    inAddr()
    {
        return regionAddr(caches.inAddr, k.inWords, layout.inBase);
    }

    ValRef
    outAddr()
    {
        return regionAddr(caches.outAddr, k.outWords, layout.outBase);
    }

    ValRef
    scratchAddr()
    {
        panic_if(k.scratchWords == 0, "kernel %s has no scratch",
                 k.name.c_str());
        return regionAddr(caches.scratch, k.scratchWords,
                          layout.scratchBase);
    }

    ValRef
    lmwOf()
    {
        auto key = std::make_pair(curSeg, curInst);
        auto it = caches.lmw.find(key);
        if (it != caches.lmw.end())
            return it->second;
        VOp v;
        v.op = Op::Lmw;
        v.space = isa::MemSpace::Smc;
        v.lmwCount = static_cast<uint8_t>(k.inWords);
        v.src[0] = inAddr();
        v.nsrc = 1;
        v.overhead = true;
        ValRef r = push(v);
        caches.lmw[key] = r;
        return r;
    }

    ValRef
    scalarInWord(unsigned word)
    {
        auto key = std::make_tuple(curSeg, curInst, word);
        auto it = caches.inWordLd.find(key);
        if (it != caches.inWordLd.end())
            return it->second;
        ValRef addr = addImm(inAddr(), word);
        ValRef r = emitLoad(isa::MemSpace::Smc, addr);
        caches.inWordLd[key] = r;
        return r;
    }

    ValRef
    readOf(uint32_t seg, unsigned reg)
    {
        auto key = std::make_pair(seg, reg);
        auto it = caches.regRd.find(key);
        if (it != caches.regRd.end())
            return it->second;
        uint32_t saved = curSeg;
        curSeg = seg;
        ValRef r = emitRead(reg);
        curSeg = saved;
        caches.regRd[key] = r;
        return r;
    }

    ValRef
    idxRead(uint32_t seg)
    {
        return readOf(seg, idxRegOf(seg));
    }

    unsigned
    idxRegOf(uint32_t seg)
    {
        auto it = idxRegs.find(seg);
        if (it != idxRegs.end())
            return it->second;
        unsigned reg = allocReg(0);
        idxRegs[seg] = reg;
        return reg;
    }

    static uint64_t
    carryKey(uint32_t c, unsigned inst)
    {
        return (uint64_t(c) << 32) | inst;
    }

    unsigned
    carryReg(uint32_t c, unsigned inst)
    {
        uint64_t key = carryKey(c, inst);
        auto it = carryRegMap.find(key);
        if (it != carryRegMap.end())
            return it->second;
        unsigned reg = allocReg(0);
        carryRegMap[key] = reg;
        return reg;
    }

    unsigned
    allocReg(Word initial)
    {
        if (nextReg >= m.numRegs) {
            regOverflow = true;
            return m.numRegs - 1;
        }
        initialRegs.emplace_back(nextReg, initial);
        return nextReg++;
    }

    // ------------------------------------------------------------------
    // Sizing / splitting
    // ------------------------------------------------------------------

    size_t
    segSize(size_t seg) const
    {
        size_t n = 0;
        for (const auto &v : vops)
            if (v.seg == seg && !v.regTile)
                ++n;
        return n;
    }

    size_t
    maxSegSize() const
    {
        size_t worst = 0;
        for (size_t s = 0; s < segMeta.size(); ++s)
            worst = std::max(worst, segSize(s));
        return worst;
    }

    /**
     * Split oversized straight segments into chunks of at most the slot
     * budget; phase B's spill pass repairs the values cut in half.
     */
    void
    splitOversized()
    {
        unsigned slots = m.totalSlots() / std::max(1u, m.pipelineFrames);
        anySplit = false;
        finalSegOf.assign(vops.size(), 0);
        std::vector<uint32_t> segBase(segMeta.size());
        finalMeta.clear();

        // Determine chunk counts per original segment.
        std::vector<size_t> sizes(segMeta.size(), 0);
        for (const auto &v : vops)
            if (!v.regTile)
                sizes[v.seg]++;
        for (size_t s = 0; s < segMeta.size(); ++s) {
            segBase[s] = static_cast<uint32_t>(finalMeta.size());
            size_t chunks = 1;
            if (!segMeta[s].isLoop && sizes[s] > slots) {
                chunks = divCeil(sizes[s], slots);
                anySplit = true;
            }
            for (size_t c = 0; c < chunks; ++c)
                finalMeta.push_back(segMeta[s]);
        }

        // Assign chunk ids in emission order.
        std::vector<size_t> counted(segMeta.size(), 0);
        for (size_t i = 0; i < vops.size(); ++i) {
            size_t s = vops[i].seg;
            size_t chunks =
                (!segMeta[s].isLoop && sizes[s] > slots)
                    ? divCeil(sizes[s], slots)
                    : 1;
            size_t per = divCeil(sizes[s], chunks);
            size_t chunk =
                per == 0 ? 0 : std::min(chunks - 1, counted[s] / per);
            if (!vops[i].regTile)
                counted[s]++;
            finalSegOf[i] = segBase[s] + static_cast<uint32_t>(chunk);
        }
    }

    /**
     * The TRIPS target encoding fans a result out to only a few
     * consumers; wider fanout goes through software move trees. Insert
     * relay Movs for every value with more than maxFanout consumers so
     * high-fanout operands (constants feeding every unrolled instance)
     * pay distributed tree delivery instead of serializing one tile's
     * injection port. Must run after the spill pass (all edges are then
     * intra-segment).
     */
    void
    addFanoutRelays()
    {
        constexpr size_t maxFanout = 4;

        std::map<ValRef, std::vector<std::pair<uint32_t, unsigned>>> cons;
        for (size_t i = 0; i < vops.size(); ++i) {
            for (unsigned s = 0; s < vops[i].nsrc; ++s) {
                if (s == 1 && vops[i].immB)
                    continue;
                ValRef src = vops[i].src[s];
                if (src.valid())
                    cons[src].push_back({static_cast<uint32_t>(i), s});
            }
        }

        for (auto &kv : cons) {
            const ValRef &val = kv.first;
            auto current = kv.second;
            while (current.size() > maxFanout) {
                std::vector<std::pair<uint32_t, unsigned>> next;
                for (size_t base = 0; base < current.size();
                     base += maxFanout) {
                    size_t count =
                        std::min(maxFanout, current.size() - base);
                    VOp mv;
                    mv.op = Op::Mov;
                    mv.nsrc = 1;
                    mv.src[0] = val;
                    mv.overhead = true;
                    mv.seg = vops[val.vop].seg;
                    mv.instance = vops[val.vop].instance;
                    vops.push_back(mv);
                    finalSegOf.push_back(finalSegOf[val.vop]);
                    uint32_t mvIdx =
                        static_cast<uint32_t>(vops.size() - 1);
                    for (size_t c = 0; c < count; ++c) {
                        auto [ci, cs] = current[base + c];
                        vops[ci].src[cs] = ValRef{mvIdx, 0};
                    }
                    next.push_back({mvIdx, 0});
                }
                current = std::move(next);
            }
        }
    }

    /** Registers the cross-segment spill pass will need. */
    size_t
    countSpillRegs() const
    {
        std::set<std::pair<uint32_t, uint8_t>> spilled;
        for (const auto &v : vops) {
            for (unsigned s = 0; s < v.nsrc; ++s) {
                if (s == 1 && v.immB)
                    continue;
                ValRef src = v.src[s];
                if (!src.valid())
                    continue;
                uint32_t vIdx = static_cast<uint32_t>(&v - vops.data());
                if (finalSegOf[src.vop] != finalSegOf[vIdx])
                    spilled.emplace(src.vop, src.word);
            }
        }
        return spilled.size();
    }

    bool
    allSegmentsFit() const
    {
        unsigned slots = m.totalSlots() / std::max(1u, m.pipelineFrames);
        std::vector<size_t> sizes(finalMeta.size(), 0);
        for (size_t i = 0; i < vops.size(); ++i)
            if (!vops[i].regTile)
                sizes[finalSegOf[i]]++;
        for (size_t s : sizes)
            if (s > slots)
                return false;
        return true;
    }

    // ------------------------------------------------------------------
    // Phase B: spills, onceOnly marking, block construction
    // ------------------------------------------------------------------

    SimdPlan
    finalize(unsigned unroll)
    {
        if (finalSegOf.empty()) {
            finalSegOf.resize(vops.size());
            for (size_t i = 0; i < vops.size(); ++i)
                finalSegOf[i] = vops[i].seg;
            finalMeta = segMeta;
        }

        // Spill every cross-segment edge through a register. Wide-load
        // words are spilled per word (the word index rides on the
        // Write's source reference).
        std::map<ValRef, unsigned> spillReg; // producer value -> reg
        std::map<std::pair<uint32_t, unsigned>, ValRef> spillRead;
        size_t originalCount = vops.size();
        for (size_t i = 0; i < originalCount; ++i) {
            for (unsigned s = 0; s < vops[i].nsrc; ++s) {
                if (s == 1 && vops[i].immB)
                    continue;
                ValRef src = vops[i].src[s];
                if (!src.valid())
                    continue;
                uint32_t pseg = finalSegOf[src.vop];
                uint32_t cseg = finalSegOf[i];
                if (pseg == cseg)
                    continue;
                unsigned reg;
                auto it = spillReg.find(src);
                if (it != spillReg.end()) {
                    reg = it->second;
                } else {
                    reg = allocReg(0);
                    spillReg[src] = reg;
                    VOp w;
                    w.op = Op::Write;
                    w.imm = reg;
                    w.src[0] = src;
                    w.nsrc = 1;
                    w.regTile = true;
                    w.overhead = true;
                    w.seg = vops[src.vop].seg;
                    w.instance = vops[src.vop].instance;
                    vops.push_back(w);
                    finalSegOf.push_back(pseg);
                }
                auto rkey = std::make_pair(cseg, reg);
                ValRef rd;
                auto rit = spillRead.find(rkey);
                if (rit != spillRead.end()) {
                    rd = rit->second;
                } else {
                    VOp r;
                    r.op = Op::Read;
                    r.imm = reg;
                    r.regTile = true;
                    r.overhead = true;
                    r.seg = vops[i].seg;
                    r.instance = vops[i].instance;
                    vops.push_back(r);
                    finalSegOf.push_back(cseg);
                    rd = ValRef{static_cast<uint32_t>(vops.size() - 1), 0};
                    spillRead[rkey] = rd;
                }
                vops[i].src[s] = rd;
            }
        }
        fatal_if(regOverflow,
                 "kernel %s: register file too small for lowering",
                 k.name.c_str());

        addFanoutRelays();

        // onceOnly: constant registers are those never written. The
        // record base is sequencer-maintained, so it counts as written.
        // Relay moves of a once-only value are themselves once-only.
        std::set<Word> writtenRegs;
        writtenRegs.insert(recBaseReg);
        for (const auto &v : vops)
            if (v.op == Op::Write)
                writtenRegs.insert(v.imm);
        std::vector<bool> onceOnly(vops.size(), false);
        if (m.mech.operandRevitalize) {
            for (size_t i = 0; i < vops.size(); ++i) {
                if (vops[i].op == Op::Movi ||
                    (vops[i].op == Op::Read && !writtenRegs.count(vops[i].imm)))
                    onceOnly[i] = true;
                else if (vops[i].op == Op::Mov && vops[i].src[0].valid() &&
                         onceOnly[vops[i].src[0].vop])
                    onceOnly[i] = true;
            }
        }

        // Build per-segment MappedBlocks.
        SimdPlan plan;
        plan.name = k.name;
        plan.unroll = unroll;
        plan.layout = layout;
        plan.initialRegs = initialRegs;
        plan.regsUsed = nextReg;
        plan.recBaseReg = recBaseReg;

        std::vector<uint32_t> localIdx(vops.size(), ~0u);
        std::vector<std::vector<unsigned>> hints(finalMeta.size());
        for (size_t s = 0; s < finalMeta.size(); ++s) {
            Segment seg;
            seg.isLoop = finalMeta[s].isLoop;
            seg.activations = finalMeta[s].activations;
            auto &block = seg.block;
            block.name = k.name + "#" + std::to_string(s);
            block.rows = static_cast<uint8_t>(m.rows);
            block.cols = static_cast<uint8_t>(m.cols);
            block.slotsPerTile = static_cast<uint8_t>(m.frameSlots);

            for (size_t i = 0; i < vops.size(); ++i) {
                if (finalSegOf[i] != s)
                    continue;
                const VOp &v = vops[i];
                isa::MappedInst mi;
                mi.op = v.op;
                mi.imm = v.imm;
                mi.immB = v.immB;
                mi.numSrcs = v.nsrc;
                if (v.immB && mi.numSrcs >= 2)
                    mi.numSrcs = 1; // imm operand needs no delivery
                mi.space = v.space;
                mi.lmwCount = v.lmwCount;
                mi.lmwStride = v.lmwStride;
                mi.tableId = v.tableId;
                mi.overhead = v.overhead;
                mi.regTile = v.regTile;
                mi.onceOnly = onceOnly[i];
                localIdx[i] = static_cast<uint32_t>(block.insts.size());
                hints[s].push_back(v.instance);
                block.insts.push_back(std::move(mi));
            }
            plan.segments.push_back(std::move(seg));
        }

        // Wire targets (producer -> consumer operand slots).
        for (size_t i = 0; i < vops.size(); ++i) {
            const VOp &v = vops[i];
            uint32_t seg = finalSegOf[i];
            auto &block = plan.segments[seg].block;
            unsigned effSlot = 0;
            for (unsigned s = 0; s < v.nsrc; ++s) {
                if (s == 1 && v.immB)
                    continue;
                ValRef src = v.src[s];
                if (!src.valid()) {
                    ++effSlot;
                    continue;
                }
                panic_if(finalSegOf[src.vop] != seg, "unspilled crossing");
                auto &producer = block.insts[localIdx[src.vop]];
                // Operand slot indices are compacted when immB absorbs
                // slot 1: Sel(c ? a : b) keeps its three slots intact
                // because Sel never uses immB.
                uint8_t destSlot = static_cast<uint8_t>(effSlot);
                producer.targets.push_back(
                    isa::Target{localIdx[i], destSlot, src.word});
                // Persistent operand if producer fires only once.
                if (onceOnly[src.vop])
                    block.insts[localIdx[i]].persistent[destSlot] = true;
                ++effSlot;
            }
        }

        // Place every block onto the grid.
        for (size_t s = 0; s < plan.segments.size(); ++s) {
            placeBlock(plan.segments[s].block, m, hints[s]);
            plan.segments[s].block.validate();
        }
        return plan;
    }

    // ------------------------------------------------------------------

    const Kernel &k;
    const core::MachineParams &m;
    StreamLayout layout;

    std::vector<LoopExtent> extents;
    std::vector<SegSpec> specs;

    struct SegMetaInfo
    {
        bool isLoop = false;
        LoopId loop = topLevel;
        uint64_t activations = 1;
    };
    std::vector<SegMetaInfo> segMeta;
    std::vector<SegMetaInfo> finalMeta;
    std::vector<uint32_t> finalSegOf;
    bool anySplit = false;

    std::vector<VOp> vops;
    std::vector<std::vector<ValRef>> env; // [instance][node]
    std::vector<ValRef> carryVal;
    std::vector<bool> carryIsReg;
    std::map<uint64_t, unsigned> carryRegMap;
    std::map<uint64_t, std::vector<ValRef>> wideScalar;
    std::map<LoopId, uint32_t> loopIterImm;

    uint64_t
    wideKey(uint32_t node) const
    {
        return (uint64_t(node) << 8) | curInst;
    }
    std::map<uint32_t, unsigned> idxRegs;
    std::set<uint32_t> segIdxUpdated;

    struct Caches
    {
        std::map<std::pair<uint32_t, Word>, ValRef> movi;
        std::map<std::pair<uint32_t, Word>, ValRef> constRd;
        std::map<uint32_t, ValRef> recBase;
        std::map<std::pair<uint32_t, unsigned>, ValRef> recIdx;
        std::map<std::pair<uint32_t, unsigned>, ValRef> inAddr;
        std::map<std::pair<uint32_t, unsigned>, ValRef> outAddr;
        std::map<std::pair<uint32_t, unsigned>, ValRef> scratch;
        std::map<std::pair<uint32_t, unsigned>, ValRef> lmw;
        std::map<std::tuple<uint32_t, unsigned, unsigned>, ValRef> inWordLd;
        std::map<std::pair<uint32_t, unsigned>, ValRef> regRd;
        std::map<std::pair<uint32_t, unsigned>, MemChain> scratchChain;
        std::map<uint32_t, MemChain> cachedChain;
    };
    Caches caches;

    std::vector<unsigned> constRegMap;
    unsigned recBaseReg = 0;
    unsigned nextReg = 0;
    bool regOverflow = false;
    std::vector<std::pair<unsigned, Word>> initialRegs;

    unsigned U = 1;
    uint32_t curSeg = 0;
    unsigned curInst = 0;
    LoopId segLoopId = topLevel;
};

} // namespace

SimdPlan
lowerSimd(const kernels::Kernel &k, const core::MachineParams &m,
          const StreamLayout &layout)
{
    Lowering lowering(k, m, layout);
    return lowering.lower();
}

} // namespace dlp::sched
