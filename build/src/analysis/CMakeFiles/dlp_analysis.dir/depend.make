# Empty dependencies file for dlp_analysis.
# This may be replaced when dependencies are built.
