# Empty dependencies file for dlp_mem.
# This may be replaced when dependencies are built.
