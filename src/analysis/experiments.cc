#include "analysis/experiments.hh"

#include <algorithm>

#include "analysis/report.hh"
#include "arch/configs.hh"
#include "common/logging.hh"
#include "driver/sweep.hh"
#include "kernels/workload.hh"

namespace dlp::analysis {

const std::vector<std::string> &
perfKernels()
{
    static const std::vector<std::string> names = {
        "convert",        "dct",
        "highpassfilter", "fft",
        "lu",             "md5",
        "blowfish",       "rijndael",
        "vertex-simple",  "fragment-simple",
        "vertex-reflection", "fragment-reflection",
        "vertex-skinning"};
    return names;
}

const std::vector<std::string> &
figure5Order()
{
    // Figure 5 groups programs by preferred configuration: the
    // S-preferring pair, then the S-O group, then the M-D group.
    static const std::vector<std::string> names = {
        "fft",           "lu",
        "convert",       "dct",
        "highpassfilter","vertex-reflection",
        "fragment-reflection", "fragment-simple",
        "vertex-simple", "md5",
        "blowfish",      "rijndael",
        "vertex-skinning"};
    return names;
}

arch::ExperimentResult
runExperiment(const std::string &kernel, const std::string &config,
              uint64_t scaleDiv, uint64_t seed)
{
    return driver::runTask({kernel, config, scaleDiv, seed});
}

namespace {

Grid
runGridSweep(uint64_t scaleDiv, uint64_t seed, unsigned jobs)
{
    driver::SweepPlan plan;
    plan.addGrid(perfKernels(), arch::allConfigNames(), scaleDiv, seed);
    driver::SweepOptions opts;
    opts.jobs = jobs;
    auto results = driver::runSweep(plan, opts);

    Grid grid;
    for (size_t i = 0; i < plan.tasks.size(); ++i)
        grid[plan.tasks[i].kernel][plan.tasks[i].config] =
            std::move(results[i]);
    return grid;
}

} // namespace

Grid
runGrid(uint64_t scaleDiv, uint64_t seed, unsigned jobs)
{
    unsigned effective =
        jobs ? jobs : driver::effectiveJobs(driver::SweepOptions{});
    if (effective > 1)
        return runGridParallel(scaleDiv, seed, effective);
    return runGridSweep(scaleDiv, seed, 1);
}

Grid
runGridParallel(uint64_t scaleDiv, uint64_t seed, unsigned jobs)
{
    panic_if(jobs == 0, "runGridParallel with zero jobs");
    return runGridSweep(scaleDiv, seed, jobs);
}

double
speedup(const Grid &grid, const std::string &kernel,
        const std::string &config)
{
    const auto &base = grid.at(kernel).at("baseline");
    const auto &cfg = grid.at(kernel).at(config);
    panic_if(cfg.cycles == 0, "zero cycles for %s on %s", kernel.c_str(),
             config.c_str());
    return double(base.cycles) / double(cfg.cycles);
}

std::string
bestConfig(const Grid &grid, const std::string &kernel)
{
    std::string best = "baseline";
    Cycles bestCycles = grid.at(kernel).at("baseline").cycles;
    for (const auto &config : arch::allConfigNames()) {
        Cycles c = grid.at(kernel).at(config).cycles;
        if (c < bestCycles) {
            bestCycles = c;
            best = config;
        }
    }
    return best;
}

double
meanSpeedup(const Grid &grid, const std::string &config)
{
    std::vector<double> speedups;
    for (const auto &kernel : perfKernels()) {
        std::string cfg =
            config == "flexible" ? bestConfig(grid, kernel) : config;
        speedups.push_back(speedup(grid, kernel, cfg));
    }
    return harmonicMean(speedups);
}

} // namespace dlp::analysis
