/**
 * @file
 * The kernel intermediate representation.
 *
 * A Kernel describes one iteration of a data-parallel loop body (Section
 * 2.1 of the paper) as a dataflow graph with structured loops. The IR
 * captures exactly the attributes the paper characterizes in Table 2:
 *
 *  - record input/output words (regular memory accesses),
 *  - irregular (cached) accesses,
 *  - named scalar constants,
 *  - indexed constants (lookup tables),
 *  - static and data-dependent loop bounds.
 *
 * The same IR is lowered two ways by the scheduler: unrolled and placed
 * onto the grid as SPDI blocks (SIMD-style configurations), or linearized
 * into a per-tile sequential program with real branches (MIMD
 * configurations). kernels/interp.hh executes the IR directly, giving a
 * third, architecture-independent implementation used to cross-check both
 * lowerings against the golden models in src/ref.
 */

#ifndef DLP_KERNELS_IR_HH
#define DLP_KERNELS_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/opcodes.hh"

namespace dlp::kernels {

/** Index of a value (node) within a kernel graph. */
using ValueId = uint32_t;
constexpr ValueId noValue = ~ValueId(0);

/** Index of a loop within a kernel. */
using LoopId = uint32_t;
constexpr LoopId topLevel = ~LoopId(0);

/** Application domain, for grouping in the paper's tables. */
enum class Domain : uint8_t
{
    Multimedia,
    Scientific,
    Network,
    Graphics
};

/** Kinds of dataflow nodes. */
enum class NodeKind : uint8_t
{
    Compute,      ///< pure operation (node.op), up to 3 sources
    Const,        ///< named scalar constant; imm = constant index
    RecIdx,       ///< index of the record this kernel instance processes
    LoopIdx,      ///< induction variable of loop imm (0-based)
    InWord,       ///< input-record word imm (static index)
    InWordAt,     ///< input-record word at dynamic offset src0
    InWide,       ///< wide load: count words from offset src0 with stride
                  ///< (imm packs count and stride); words via WordOf
    ScratchWide,  ///< wide load from per-record scratch
    WordOf,       ///< word imm of the wide load src0 (a wire, not an op)
    OutWord,      ///< write src0 to output-record word imm
    OutWordAt,    ///< write src1 to output-record word at offset src0
    ScratchLoad,  ///< per-record scratch word at offset src0
    ScratchStore, ///< write src1 to scratch word at offset src0
    CachedLoad,   ///< irregular load at byte address src0
    CachedStore,  ///< irregular store of src1 at byte address src0
    TableLoad,    ///< lookup table imm at index src0
    Carry,        ///< loop-carried value (phi); imm = index into carries
    LoopExit      ///< value of carry src0 after its loop finishes
};

/** One dataflow node. */
struct Node
{
    NodeKind kind = NodeKind::Compute;
    isa::Op op = isa::Op::Nop;
    ValueId src[3] = {noValue, noValue, noValue};
    Word imm = 0;
    LoopId loop = topLevel;   ///< innermost loop containing this node
    bool overhead = false;    ///< address arithmetic etc.; excluded from
                              ///< the useful-ops metric
    /// Binary Compute node whose second operand is the immediate field
    /// (shift amounts, masks); real ISAs encode these in the instruction,
    /// so they cost no extra dataflow edge.
    bool immB = false;
};

/** A loop-carried value: starts at init, becomes next each iteration. */
struct CarryDef
{
    ValueId node = noValue;   ///< the Carry node
    ValueId init = noValue;   ///< value before the first iteration
    ValueId next = noValue;   ///< value computed by each iteration
    LoopId loop = topLevel;
};

/** A structured loop. */
struct LoopInfo
{
    LoopId parent = topLevel;
    uint32_t staticTrip = 0;      ///< trip count; 0 means data-dependent
    ValueId tripValue = noValue;  ///< runtime trip count (variable loops)
    uint32_t maxTrip = 0;         ///< unroll bound for variable loops
    std::vector<uint32_t> carries; ///< indices into Kernel::carries
};

/** A named lookup table of indexed constants. */
struct Table
{
    std::string name;
    std::vector<Word> data;   ///< size must be a power of two
};

/** A named scalar constant. */
struct Constant
{
    std::string name;
    Word value;
};

/** A complete kernel. */
struct Kernel
{
    std::string name;
    Domain domain = Domain::Multimedia;

    unsigned inWords = 0;      ///< input record size (64-bit words)
    unsigned outWords = 0;     ///< output record size
    unsigned scratchWords = 0; ///< per-record stream scratch

    std::vector<Constant> constants;
    std::vector<Table> tables;
    std::vector<Node> nodes;
    std::vector<LoopInfo> loops;
    std::vector<CarryDef> carries;

    /// Bytes of irregular (cached) memory the kernel may touch; the
    /// workload generator sizes textures etc. from this.
    uint64_t irregularBytes = 0;

    /** Total L0-table footprint in bytes (Table 2 "indexed constants"). */
    uint64_t
    tableBytes() const
    {
        uint64_t b = 0;
        for (const auto &t : tables)
            b += t.data.size() * wordBytes;
        return b;
    }

    /** True if any loop has a data-dependent trip count. */
    bool
    hasVariableLoop() const
    {
        for (const auto &l : loops)
            if (l.staticTrip == 0)
                return true;
        return false;
    }

    /** Structural sanity checks; panics on malformed graphs. */
    void validate() const;
};

/**
 * A typed handle to a node, returned by the builder. Implicitly
 * convertible from/to ValueId; exists mainly for readability.
 */
struct Value
{
    ValueId id = noValue;
    Value() = default;
    Value(ValueId v) : id(v) {}
    operator ValueId() const { return id; }
    bool valid() const { return id != noValue; }
};

/** RAII-free structured builder for kernels. */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name, Domain domain);

    /** Declare record shape. */
    void setRecord(unsigned inWords, unsigned outWords,
                   unsigned scratchWords = 0);

    /** Declare how many bytes of irregular memory the kernel addresses. */
    void setIrregularBytes(uint64_t bytes) { k.irregularBytes = bytes; }

    // --- Leaf values ------------------------------------------------------
    Value constant(const std::string &name, Word v);
    Value constantF(const std::string &name, double v);
    Value imm(Word v);                 ///< anonymous immediate (Movi)
    Value immF(double v);
    Value recIdx();
    Value inWord(unsigned i);
    Value inWordAt(Value offset);

    /**
     * Wide (vector-style) load of count words starting at dynamic record
     * offset start, stride words apart. Extract words with wordOf().
     * Strided fetches are conflict-free in the banked SMC, so one wide
     * load costs what a contiguous line fetch of the same size costs.
     */
    Value inWide(Value start, unsigned count, unsigned stride = 1);
    /** Wide load from the per-record scratch region. */
    Value scratchWide(Value start, unsigned count, unsigned stride = 1);
    /** Word i of a wide load. */
    Value wordOf(Value wide, unsigned i);

    /** Pack/unpack helpers for the wide-load imm field. */
    static Word packWide(unsigned count, unsigned stride)
    {
        return Word(count) | (Word(stride) << 16);
    }
    static unsigned wideCount(Word imm) { return imm & 0xffff; }
    static unsigned wideStride(Word imm)
    {
        return (imm >> 16) & 0xffff;
    }

    // --- Computation ------------------------------------------------------
    Value op(isa::Op o, Value a);
    Value op(isa::Op o, Value a, Value b);
    /** Binary op with an immediate second operand (no extra node). */
    Value opImm(isa::Op o, Value a, Word immB);
    Value sel(Value cond, Value ifTrue, Value ifFalse);

    // Convenience arithmetic wrappers.
    Value add(Value a, Value b)   { return op(isa::Op::Add, a, b); }
    Value sub(Value a, Value b)   { return op(isa::Op::Sub, a, b); }
    Value mul(Value a, Value b)   { return op(isa::Op::Mul, a, b); }
    Value and_(Value a, Value b)  { return op(isa::Op::And, a, b); }
    Value or_(Value a, Value b)   { return op(isa::Op::Or, a, b); }
    Value xor_(Value a, Value b)  { return op(isa::Op::Xor, a, b); }
    Value shl(Value a, Value b)   { return op(isa::Op::Shl, a, b); }
    Value shr(Value a, Value b)   { return op(isa::Op::Shr, a, b); }
    Value fadd(Value a, Value b)  { return op(isa::Op::Fadd, a, b); }
    Value fsub(Value a, Value b)  { return op(isa::Op::Fsub, a, b); }
    Value fmul(Value a, Value b)  { return op(isa::Op::Fmul, a, b); }
    Value fdiv(Value a, Value b)  { return op(isa::Op::Fdiv, a, b); }

    // --- Memory -----------------------------------------------------------
    void outWord(unsigned i, Value v);
    void outWordAt(Value offset, Value v);
    Value scratchLoad(Value offset);
    void scratchStore(Value offset, Value v);
    Value cachedLoad(Value byteAddr);
    void cachedStore(Value byteAddr, Value v);

    /** Register a lookup table; size is padded to a power of two. */
    uint16_t addTable(const std::string &name, std::vector<Word> data);
    Value tableLoad(uint16_t table, Value index);

    // --- Loops ------------------------------------------------------------
    /** Open a loop with a static trip count. */
    LoopId beginLoop(uint32_t trip);
    /** Open a loop with a data-dependent trip count, bounded by maxTrip. */
    LoopId beginLoopVar(Value trip, uint32_t maxTrip);
    /** Induction variable of the innermost open loop. */
    Value loopIdx();
    /** Declare a loop-carried value with its pre-loop initial value. */
    Value carry(Value init);
    /** Set the per-iteration update of a carry. */
    void setCarryNext(Value carryVal, Value next);
    /** Close the innermost loop. */
    void endLoop();
    /** Value of a carry after its loop completed (call after endLoop). */
    Value exitValue(Value carryVal);

    // --- Misc ---------------------------------------------------------------
    /** Mark a value as overhead (address arithmetic). */
    Value markOverhead(Value v);

    /** Finish and validate. */
    Kernel build();

  private:
    Value addNode(Node n);
    LoopId curLoop() const
    {
        return loopStack.empty() ? topLevel : loopStack.back();
    }

    Kernel k;
    std::vector<LoopId> loopStack;
    bool built = false;
};

} // namespace dlp::kernels

#endif // DLP_KERNELS_IR_HH
