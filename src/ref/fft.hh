/**
 * @file
 * Reference radix-2 complex FFT.
 *
 * The paper's fft kernel (Table 2: 10 instructions, 6-word records, 4-word
 * output) is a single decimation-in-time butterfly with its twiddle factor
 * delivered in the record; fftButterfly() is exactly that computation. The
 * full transform is the standard iterative radix-2 driver used by tests
 * and by the workload generator that produces per-stage record streams.
 */

#ifndef DLP_REF_FFT_HH
#define DLP_REF_FFT_HH

#include <complex>
#include <cstdint>
#include <vector>

namespace dlp::ref {

using Complex = std::complex<double>;

/**
 * One DIT butterfly: given a, b and twiddle w,
 *   a' = a + w*b,  b' = a - w*b.
 * The 10 scalar operations (4 multiplies, 6 adds/subs) match the paper's
 * instruction count.
 */
void fftButterfly(double ar, double ai, double br, double bi, double wr,
                  double wi, double out[4]);

/** In-place iterative radix-2 FFT; n must be a power of two. */
void fft(std::vector<Complex> &data);

/** Direct O(n^2) DFT for validation. */
std::vector<Complex> dftNaive(const std::vector<Complex> &data);

/** Bit-reversal permutation used before the butterfly stages. */
void bitReverse(std::vector<Complex> &data);

} // namespace dlp::ref

#endif // DLP_REF_FFT_HH
