/**
 * @file
 * google-benchmark microbenchmarks of the simulator's substrates: mesh
 * routing, calendar resources, cache tag probes, the IR interpreter, the
 * scheduler lowerings and end-to-end simulation throughput. These track
 * simulator (host) performance, not simulated-machine performance.
 */

#include <benchmark/benchmark.h>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "kernels/catalog.hh"
#include "kernels/interp.hh"
#include "kernels/workload.hh"
#include "mem/cache_model.hh"
#include "noc/mesh.hh"
#include "sched/linearize.hh"
#include "sched/simd_lowering.hh"
#include "sim/eventq.hh"
#include "sim/resource.hh"

using namespace dlp;

static void
BM_MeshRoute(benchmark::State &state)
{
    noc::MeshNetwork mesh(8, 8);
    Rng rng(1);
    Tick t = 0;
    for (auto _ : state) {
        noc::Coord src{uint8_t(rng.below(8)), uint8_t(rng.below(8))};
        noc::Coord dst{uint8_t(rng.below(8)), uint8_t(rng.below(8))};
        benchmark::DoNotOptimize(mesh.route(src, dst, t++));
    }
}
BENCHMARK(BM_MeshRoute);

static void
BM_ResourceAcquireInOrder(benchmark::State &state)
{
    sim::Resource res(1);
    Tick t = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(res.acquire(t += 2));
}
BENCHMARK(BM_ResourceAcquireInOrder);

static void
BM_ResourceAcquireScattered(benchmark::State &state)
{
    sim::Resource res(1);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(res.acquire(rng.below(1 << 20)));
}
BENCHMARK(BM_ResourceAcquireScattered);

static void
BM_CacheProbe(benchmark::State &state)
{
    mem::CacheModel cache("bench", 64 * 1024, 4, 32, 8, 2);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.probe(rng.below(1 << 18), false));
}
BENCHMARK(BM_CacheProbe);

static void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue eq;
    for (auto _ : state) {
        eq.reset();
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<Tick>(i * 3 % 17), [] {});
        eq.run();
    }
}
BENCHMARK(BM_EventQueue);

static void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    // The engines' dominant traffic: events landing a few ticks out,
    // inside the calendar ring. One batch = 64 schedules + 64 fires.
    sim::EventQueue eq;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.scheduleIn(static_cast<Tick>(1 + i % 7), [] {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleFire);

static void
BM_EventQueueBucketRollover(benchmark::State &state)
{
    // Chains hopping further than the ring covers: every hop slides the
    // window, exercising the occupancy bit-scan and overflow migration.
    sim::EventQueue eq;
    for (auto _ : state) {
        struct Chain
        {
            sim::EventQueue &q;
            int left;
            void
            operator()()
            {
                if (left-- > 0)
                    q.scheduleIn(300, *this);
            }
        };
        eq.schedule(eq.curTick(), Chain{eq, 64});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueBucketRollover);

static void
BM_EventQueueFarFuture(benchmark::State &state)
{
    // Worst case for the two-tier split: everything lands in the
    // overflow heap first and migrates into the ring on the way out.
    sim::EventQueue eq;
    Rng rng(7);
    for (auto _ : state) {
        Tick base = eq.curTick();
        for (int i = 0; i < 64; ++i)
            eq.schedule(base + 10000 + rng.below(100000), [] {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueFarFuture);

static void
BM_ResourceAcquireMany(benchmark::State &state)
{
    // Multi-unit grants (memory banks, DMA bursts) on the flat calendar.
    sim::Resource res(2);
    Tick t = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(res.acquireMany(t += 3, 4));
}
BENCHMARK(BM_ResourceAcquireMany);

static void
BM_InterpretRijndael(benchmark::State &state)
{
    auto k = kernels::makeRijndael();
    Rng rng(4);
    std::vector<Word> in(k.inWords), out(k.outWords);
    for (auto &w : in)
        w = rng.next();
    for (auto _ : state)
        kernels::interpret(k, 0, in.data(), out.data());
}
BENCHMARK(BM_InterpretRijndael);

static void
BM_LowerSimd(benchmark::State &state)
{
    auto k = kernels::makeVertexSimple();
    auto m = arch::configByName("S-O");
    sched::StreamLayout layout{0, 30000, 60000};
    for (auto _ : state)
        benchmark::DoNotOptimize(sched::lowerSimd(k, m, layout));
}
BENCHMARK(BM_LowerSimd);

static void
BM_LowerMimd(benchmark::State &state)
{
    auto k = kernels::makeVertexSimple();
    auto m = arch::configByName("M-D");
    sched::StreamLayout layout{0, 30000, 60000};
    for (auto _ : state)
        benchmark::DoNotOptimize(sched::lowerMimd(k, m, layout));
}
BENCHMARK(BM_LowerMimd);

static void
BM_EndToEndConvert(benchmark::State &state)
{
    setQuietLogging(true);
    for (auto _ : state) {
        auto wl = kernels::makeWorkload("convert", 256, 5);
        arch::TripsProcessor cpu(arch::configByName("S-O"));
        auto res = cpu.run(*wl);
        benchmark::DoNotOptimize(res.cycles);
    }
}
BENCHMARK(BM_EndToEndConvert);

BENCHMARK_MAIN();
