file(REMOVE_RECURSE
  "CMakeFiles/dlp_sched.dir/linearize.cc.o"
  "CMakeFiles/dlp_sched.dir/linearize.cc.o.d"
  "CMakeFiles/dlp_sched.dir/placer.cc.o"
  "CMakeFiles/dlp_sched.dir/placer.cc.o.d"
  "CMakeFiles/dlp_sched.dir/simd_lowering.cc.o"
  "CMakeFiles/dlp_sched.dir/simd_lowering.cc.o.d"
  "libdlp_sched.a"
  "libdlp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
