/**
 * @file
 * The static SPDI linter CLI: lower every kernel of the catalog for
 * every Table 5 machine configuration -- exactly the plans the
 * processor would execute -- and run the static verifier (src/check)
 * over each, without simulating anything. Prints every finding with its
 * rule ID and location, then a rule-by-rule summary table.
 *
 *   ./build/examples/lint_ir                     # whole catalog x configs
 *   ./build/examples/lint_ir --kernels dct,fft --configs S-O-D
 *   ./build/examples/lint_ir --json LINT.json
 *
 * Besides the correctness rules, the linter feeds every plan to the
 * static cost model and appends its PERF-* advisories (performance
 * hints, never correctness issues) to the same report.
 *
 * Options:
 *   --kernels a,b,...  kernel names (default: all of Table 1)
 *   --configs a,b,...  Table 5 configuration names (default: all)
 *   --json FILE        write the findings as a JSON document
 *   --fail-on LEVEL    error (default), warning, or advisory: the
 *                      least severe finding class that fails the run
 *   --verbose          also print per-program one-line status
 *
 * Exit status: 0 pass; 1 Error findings; 2 Warning findings when
 * --fail-on=warning or stricter; 3 Advisory findings when
 * --fail-on=advisory. Errors always dominate, then warnings: the
 * default gate is unchanged by the advisory rules.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/export.hh"
#include "analysis/json.hh"
#include "arch/configs.hh"
#include "arch/processor.hh"
#include "check/verify.hh"
#include "common/logging.hh"
#include "cost/cost.hh"
#include "kernels/catalog.hh"
#include "sched/linearize.hh"
#include "sched/simd_lowering.hh"

using namespace dlp;

namespace {

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > start)
            out.push_back(arg.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    std::vector<std::string> kernelNames;
    std::vector<std::string> configNames;
    std::string jsonPath;
    std::string failOn = "error";
    bool verbose = false;

    auto value = [&](int &i) -> const char * {
        fatal_if(i + 1 >= argc, "%s needs an argument", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--kernels") == 0) {
            std::string v = value(i);
            if (v != "all")
                kernelNames = splitList(v);
        } else if (std::strcmp(argv[i], "--configs") == 0) {
            std::string v = value(i);
            if (v != "all")
                configNames = splitList(v);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            jsonPath = value(i);
        } else if (std::strcmp(argv[i], "--fail-on") == 0 ||
                   std::strncmp(argv[i], "--fail-on=", 10) == 0) {
            failOn = argv[i][9] == '=' ? argv[i] + 10 : value(i);
            fatal_if(failOn != "error" && failOn != "warning" &&
                         failOn != "advisory",
                     "--fail-on takes error, warning or advisory, "
                     "not '%s'", failOn.c_str());
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            verbose = true;
        } else {
            fatal("unknown option '%s' (see the header of "
                  "examples/lint_ir.cpp)", argv[i]);
        }
    }
    if (configNames.empty())
        configNames = arch::allConfigNames();

    std::vector<kernels::Kernel> kernelSet;
    if (kernelNames.empty()) {
        kernelSet = kernels::allKernels();
    } else {
        for (const auto &n : kernelNames)
            kernelSet.push_back(kernels::kernelByName(n));
    }

    size_t programs = 0, blocks = 0, insts = 0;
    size_t errors = 0, warnings = 0, advisories = 0;
    std::map<std::string, size_t> byRule;

    using analysis::json::Value;
    Value jprograms = Value::array();

    for (const auto &configName : configNames) {
        core::MachineParams m = arch::configByName(configName);
        for (const auto &k : kernelSet) {
            uint64_t chunkRecords = 0;
            sched::StreamLayout layout =
                arch::makeStreamLayout(k, m, chunkRecords);
            sched::SimdPlan simd;
            sched::MimdPlan mimd;
            check::MappedProgram prog;
            prog.kernel = &k;
            cost::CostReport costRep;
            if (m.mech.localPC) {
                mimd = sched::lowerMimd(k, m, layout);
                prog.mimd = &mimd;
                costRep = cost::analyzeMimd(mimd, m);
            } else {
                simd = sched::lowerSimd(k, m, layout);
                prog.simd = &simd;
                costRep = cost::analyzeSimd(simd, m);
            }
            check::Report rep = check::verify(prog, m);
            cost::perfRules(costRep, m, rep);
            rep.sortFindings();

            ++programs;
            blocks += rep.blocks;
            insts += rep.insts;
            errors += rep.errors();
            warnings += rep.warnings();
            advisories += rep.advisories();
            for (const auto &d : rep.diags)
                ++byRule[d.rule];

            if (verbose || !rep.diags.empty())
                std::printf("%-18s %-9s %4zu insts  %zu error(s), "
                            "%zu warning(s), %zu advisory(ies)\n",
                            k.name.c_str(), configName.c_str(), rep.insts,
                            rep.errors(), rep.warnings(),
                            rep.advisories());
            if (!rep.diags.empty())
                std::fputs(rep.describe().c_str(), stdout);

            if (!jsonPath.empty()) {
                Value jp = Value::object();
                jp.set("kernel", k.name);
                jp.set("config", configName);
                jp.set("blocks", uint64_t(rep.blocks));
                jp.set("insts", uint64_t(rep.insts));
                jp.set("errors", uint64_t(rep.errors()));
                jp.set("warnings", uint64_t(rep.warnings()));
                jp.set("advisories", uint64_t(rep.advisories()));
                Value findings = Value::array();
                for (const auto &d : rep.diags) {
                    Value entry = Value::object();
                    entry.set("rule", d.rule);
                    entry.set("severity",
                              check::severityName(d.severity));
                    entry.set("location", d.location());
                    entry.set("detail", d.message);
                    findings.push(std::move(entry));
                }
                jp.set("findings", std::move(findings));
                jprograms.push(std::move(jp));
            }
        }
    }

    std::printf("lint_ir: %zu program%s (%zu block%s, %zu insts) across "
                "%zu config%s\n",
                programs, programs == 1 ? "" : "s", blocks,
                blocks == 1 ? "" : "s", insts, configNames.size(),
                configNames.size() == 1 ? "" : "s");
    std::printf("%-16s %-8s %9s  %s\n", "rule", "severity", "findings",
                "invariant");
    for (const auto &r : check::rules()) {
        auto it = byRule.find(r.id);
        size_t n = it == byRule.end() ? 0 : it->second;
        std::printf("%-16s %-8s %9zu  %s\n", r.id,
                    check::severityName(r.severity), n, r.invariant);
    }
    std::printf("lint_ir: %zu error%s, %zu warning%s, %zu advisor%s\n",
                errors, errors == 1 ? "" : "s", warnings,
                warnings == 1 ? "" : "s", advisories,
                advisories == 1 ? "y" : "ies");

    if (!jsonPath.empty()) {
        Value doc = Value::object();
        doc.set("generator", "dlp-sim lint_ir");
        doc.set("programs", uint64_t(programs));
        doc.set("blocks", uint64_t(blocks));
        doc.set("insts", uint64_t(insts));
        doc.set("errors", uint64_t(errors));
        doc.set("warnings", uint64_t(warnings));
        doc.set("advisories", uint64_t(advisories));
        Value jrules = Value::array();
        for (const auto &r : check::rules()) {
            auto it = byRule.find(r.id);
            Value jr = Value::object();
            jr.set("id", r.id);
            jr.set("severity", check::severityName(r.severity));
            jr.set("invariant", r.invariant);
            jr.set("findings",
                   uint64_t(it == byRule.end() ? 0 : it->second));
            jrules.push(std::move(jr));
        }
        doc.set("rules", std::move(jrules));
        doc.set("results", std::move(jprograms));
        analysis::writeJsonFile(jsonPath, doc);
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    if (errors)
        return 1;
    if (failOn != "error" && warnings)
        return 2;
    if (failOn == "advisory" && advisories)
        return 3;
    return 0;
}
