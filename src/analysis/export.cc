#include "analysis/export.hh"

#include <fstream>

#include "common/logging.hh"

namespace dlp::analysis {

namespace {

json::Value
toJson(const Distribution &d)
{
    json::Value obj = json::Value::object();
    obj.set("samples", d.samples());
    // Zero-sample distributions omit their moments and extrema, in
    // lockstep with StatGroup::dump.
    if (d.samples() > 0) {
        obj.set("mean", d.mean());
        obj.set("stdev", d.stdev());
        obj.set("min", d.minValue());
        obj.set("max", d.maxValue());
    }
    obj.set("low", d.low());
    obj.set("high", d.high());
    obj.set("underflow", d.underflow());
    obj.set("overflow", d.overflow());
    json::Value buckets = json::Value::array();
    for (size_t i = 0; i < d.numBuckets(); ++i)
        buckets.push(d.bucket(i));
    obj.set("buckets", std::move(buckets));
    return obj;
}

json::Value
toJson(const VectorStat &v)
{
    json::Value arr = json::Value::array();
    for (double x : v.all())
        arr.push(x);
    return arr;
}

json::Value
auditToJson(const std::vector<arch::AuditFinding> &violations)
{
    json::Value audit = json::Value::object();
    audit.set("violations", violations.size());
    json::Value findings = json::Value::array();
    for (const auto &f : violations) {
        json::Value entry = json::Value::object();
        entry.set("invariant", f.invariant);
        entry.set("detail", f.detail);
        findings.push(std::move(entry));
    }
    audit.set("findings", std::move(findings));
    return audit;
}

json::Value
timeseriesToJson(const obs::TimeSeries &ts)
{
    json::Value series = json::Value::object();
    series.set("intervalTicks", ts.intervalTicks);
    json::Value names = json::Value::array();
    for (const auto &n : ts.statNames)
        names.push(n);
    series.set("stats", std::move(names));
    json::Value levels = json::Value::array();
    for (bool level : ts.isLevel)
        levels.push(level);
    series.set("isLevel", std::move(levels));
    json::Value ticks = json::Value::array();
    for (uint64_t t : ts.ticks)
        ticks.push(t);
    series.set("ticks", std::move(ticks));
    json::Value rows = json::Value::array();
    for (const auto &row : ts.samples) {
        json::Value vals = json::Value::array();
        for (double v : row)
            vals.push(v);
        rows.push(std::move(vals));
    }
    series.set("samples", std::move(rows));
    return series;
}

} // namespace

json::Value
toJson(const GroupSnapshot &group)
{
    json::Value obj = json::Value::object();
    obj.set("name", group.name);

    json::Value scalars = json::Value::object();
    for (const auto &[n, v] : group.scalars)
        scalars.set(n, v);
    obj.set("scalars", std::move(scalars));

    json::Value formulas = json::Value::object();
    for (const auto &[n, v] : group.formulas)
        formulas.set(n, v);
    obj.set("formulas", std::move(formulas));

    json::Value dists = json::Value::object();
    for (const auto &[n, d] : group.distributions)
        dists.set(n, toJson(d));
    obj.set("distributions", std::move(dists));

    json::Value vectors = json::Value::object();
    for (const auto &[n, v] : group.vectors)
        vectors.set(n, toJson(v));
    obj.set("vectors", std::move(vectors));

    return obj;
}

json::Value
toJson(const arch::ExperimentResult &result)
{
    json::Value obj = json::Value::object();
    obj.set("kernel", result.kernel);
    obj.set("config", result.config);
    obj.set("verified", result.verified);
    if (!result.error.empty())
        obj.set("error", result.error);
    obj.set("cycles", result.cycles);
    obj.set("usefulOps", result.usefulOps);
    obj.set("instsExecuted", result.instsExecuted);
    obj.set("records", result.records);
    obj.set("activations", result.activations);
    obj.set("mappings", result.mappings);
    obj.set("opsPerCycle", result.opsPerCycle());

    // Host (simulator) performance of this run. Kept in its own object
    // because it is measurement noise, not simulated state: regression
    // tooling diffing simulated output drops the "host" key and
    // compares everything else bit for bit.
    json::Value host = json::Value::object();
    host.set("events", result.hostEvents);
    host.set("eventsPerSec", result.hostEventsPerSec());
    host.set("seconds", result.hostSeconds);
    // Epoch fast-forwarding accounting: exact counters (the auditor's
    // conservation laws hold on them), but host-side execution strategy
    // rather than simulated state, so they live under "host" too.
    host.set("ffEpochs", result.ffEpochs);
    host.set("ffIterations", result.ffIterations);
    host.set("ffEventsSaved", result.ffEventsSaved);
    host.set("eventActivations", result.eventActivations);
    obj.set("host", std::move(host));

    // Post-run invariant audit, present only when auditing ran so
    // unaudited documents (and their golden diffs) keep their shape.
    if (result.audited)
        obj.set("audit", auditToJson(result.auditViolations));

    // Pre-run static verification, present only when checking ran (the
    // same shape-stability contract as "audit" above).
    if (result.checked) {
        json::Value chk = json::Value::object();
        chk.set("errors", result.checkErrors);
        chk.set("warnings", result.checkWarnings);
        json::Value findings = json::Value::array();
        for (const auto &f : result.checkFindings) {
            json::Value entry = json::Value::object();
            entry.set("rule", f.rule);
            entry.set("severity", f.severity);
            entry.set("location", f.location);
            entry.set("detail", f.detail);
            findings.push(std::move(entry));
        }
        chk.set("findings", std::move(findings));
        obj.set("check", std::move(chk));
    }

    // Static cost-model predictions. Always present: the analysis is
    // pure, so the processor populates it unconditionally. Bound-side
    // fields feed verify::costInvariants; the rest are estimates.
    {
        const arch::CostSummary &c = result.cost;
        json::Value cost = json::Value::object();
        cost.set("analyzed", c.analyzed);
        cost.set("mimd", c.mimd);
        cost.set("unroll", uint64_t(c.unroll));
        cost.set("perActivationRemap", c.perActivationRemap);
        cost.set("segments", c.segments);
        cost.set("mapTicksMin", c.mapTicksMin);
        cost.set("boundTicksPerActivation", c.boundTicksPerActivation);
        cost.set("setupTicks", c.setupTicks);
        cost.set("minCycleInsts", c.minCycleInsts);
        cost.set("minCycleLoadUnits", c.minCycleLoadUnits);
        cost.set("minCycleStoreUnits", c.minCycleStoreUnits);
        cost.set("tiles", c.tiles);
        cost.set("gridCols", c.gridCols);
        cost.set("criticalPathTicks", c.criticalPathTicks);
        cost.set("maxPressureTicks", c.maxPressureTicks);
        cost.set("bottleneck", c.bottleneck);
        cost.set("hopMass", c.hopMass);
        cost.set("hopLowerBound", c.hopLowerBound);
        cost.set("smcReadUnits", c.smcReadUnits);
        cost.set("smcWriteUnits", c.smcWriteUnits);
        cost.set("rsOccupancy", c.rsOccupancy);
        cost.set("predictedTicksPerRecord", c.predictedTicksPerRecord);
        obj.set("cost", std::move(cost));
    }

    // Periodic stat samples over simulated time, present only when a
    // sampling interval was configured (same shape-stability contract
    // as "audit"/"check"). Delta columns (isLevel false) sum to the
    // corresponding final aggregates in "statGroups"; level columns are
    // instantaneous formula values.
    if (result.timeseries.present())
        obj.set("timeseries", timeseriesToJson(result.timeseries));

    json::Value groups = json::Value::array();
    for (const auto &g : result.statGroups)
        groups.push(toJson(g));
    obj.set("statGroups", std::move(groups));
    return obj;
}

json::Value
toJson(const arch::ServiceResult &result)
{
    json::Value obj = json::Value::object();
    obj.set("kind", "service");
    obj.set("config", result.config);
    obj.set("cores", result.cores);
    obj.set("bandwidthWordsPerTick", result.bandwidthWordsPerTick);
    obj.set("offeredRps", result.offeredRps);
    obj.set("arrival", result.arrival);
    obj.set("batch", result.batch);
    obj.set("seed", result.seed);
    obj.set("seedPool", result.seedPool);
    obj.set("ticksPerSec", result.ticksPerSec);

    obj.set("injected", result.injected);
    obj.set("completed", result.completed);
    obj.set("inFlightAtDrain", result.inFlightAtDrain);
    obj.set("systemActivations", result.systemActivations);
    obj.set("drainTick", result.drainTick);
    obj.set("sustainedRps", result.sustainedRps);

    json::Value lat = json::Value::object();
    lat.set("p50", result.p50);
    lat.set("p95", result.p95);
    lat.set("p99", result.p99);
    lat.set("mean", result.meanLatency);
    lat.set("max", result.maxLatency);
    lat.set("histogram", toJson(result.latency));
    obj.set("latencyTicks", std::move(lat));

    obj.set("meanQueueWait", result.meanQueueWait);
    obj.set("maxQueueDepth", result.maxQueueDepth);

    json::Value perCore = json::Value::array();
    for (const auto &c : result.perCore) {
        json::Value core = json::Value::object();
        core.set("requests", c.requests);
        core.set("busyTicks", c.busyTicks);
        core.set("workTicks", c.workTicks);
        core.set("activations", c.activations);
        perCore.push(std::move(core));
    }
    obj.set("perCore", std::move(perCore));

    json::Value profiles = json::Value::array();
    for (const auto &p : result.profiles) {
        json::Value prof = json::Value::object();
        prof.set("kernel", p.kernel);
        prof.set("scale", p.scale);
        prof.set("seed", p.seed);
        prof.set("isolatedTicks", p.isolatedTicks);
        prof.set("demandWordsPerTick", p.demandWordsPerTick);
        prof.set("activations", p.activations);
        prof.set("usefulOps", p.usefulOps);
        profiles.push(std::move(prof));
    }
    obj.set("profiles", std::move(profiles));

    json::Value requests = json::Value::array();
    for (const auto &r : result.requests) {
        json::Value req = json::Value::object();
        req.set("index", r.index);
        req.set("mixIndex", r.mixIndex);
        req.set("seedSlot", r.seedSlot);
        req.set("core", r.core);
        req.set("arrival", r.arrival);
        req.set("start", r.start);
        req.set("finish", r.finish);
        requests.push(std::move(req));
    }
    obj.set("requests", std::move(requests));

    if (result.audited)
        obj.set("audit", auditToJson(result.auditViolations));
    if (result.timeseries.present())
        obj.set("timeseries", timeseriesToJson(result.timeseries));

    json::Value groups = json::Value::array();
    for (const auto &g : result.statGroups)
        groups.push(toJson(g));
    obj.set("statGroups", std::move(groups));
    return obj;
}

namespace {

json::Value
document()
{
    json::Value doc = json::Value::object();
    doc.set("generator", "dlp-sim");
    doc.set("paper",
            "Universal Mechanisms for Data-Parallel Architectures "
            "(MICRO 2003)");
    return doc;
}

} // namespace

json::Value
toJson(const std::vector<arch::ExperimentResult> &results)
{
    json::Value doc = document();
    json::Value experiments = json::Value::array();
    for (const auto &r : results)
        experiments.push(toJson(r));
    doc.set("experiments", std::move(experiments));
    return doc;
}

json::Value
toJson(const Grid &grid)
{
    json::Value doc = document();
    json::Value experiments = json::Value::array();
    for (const auto &[kernel, byConfig] : grid)
        for (const auto &[config, result] : byConfig)
            experiments.push(toJson(result));
    doc.set("experiments", std::move(experiments));
    return doc;
}

void
writeJsonFile(const std::string &path, const json::Value &doc)
{
    std::ofstream out(path, std::ios::binary);
    fatal_if(!out, "cannot open '%s' for writing", path.c_str());
    out << json::write(doc);
    out.close();
    fatal_if(!out, "failed writing '%s'", path.c_str());
}

} // namespace dlp::analysis
