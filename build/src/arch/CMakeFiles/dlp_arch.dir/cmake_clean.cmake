file(REMOVE_RECURSE
  "CMakeFiles/dlp_arch.dir/configs.cc.o"
  "CMakeFiles/dlp_arch.dir/configs.cc.o.d"
  "CMakeFiles/dlp_arch.dir/processor.cc.o"
  "CMakeFiles/dlp_arch.dir/processor.cc.o.d"
  "libdlp_arch.a"
  "libdlp_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
