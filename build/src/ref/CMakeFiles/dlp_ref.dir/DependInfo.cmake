
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ref/blowfish.cc" "src/ref/CMakeFiles/dlp_ref.dir/blowfish.cc.o" "gcc" "src/ref/CMakeFiles/dlp_ref.dir/blowfish.cc.o.d"
  "/root/repo/src/ref/dsp.cc" "src/ref/CMakeFiles/dlp_ref.dir/dsp.cc.o" "gcc" "src/ref/CMakeFiles/dlp_ref.dir/dsp.cc.o.d"
  "/root/repo/src/ref/fft.cc" "src/ref/CMakeFiles/dlp_ref.dir/fft.cc.o" "gcc" "src/ref/CMakeFiles/dlp_ref.dir/fft.cc.o.d"
  "/root/repo/src/ref/linalg.cc" "src/ref/CMakeFiles/dlp_ref.dir/linalg.cc.o" "gcc" "src/ref/CMakeFiles/dlp_ref.dir/linalg.cc.o.d"
  "/root/repo/src/ref/md5.cc" "src/ref/CMakeFiles/dlp_ref.dir/md5.cc.o" "gcc" "src/ref/CMakeFiles/dlp_ref.dir/md5.cc.o.d"
  "/root/repo/src/ref/pi_digits.cc" "src/ref/CMakeFiles/dlp_ref.dir/pi_digits.cc.o" "gcc" "src/ref/CMakeFiles/dlp_ref.dir/pi_digits.cc.o.d"
  "/root/repo/src/ref/rijndael.cc" "src/ref/CMakeFiles/dlp_ref.dir/rijndael.cc.o" "gcc" "src/ref/CMakeFiles/dlp_ref.dir/rijndael.cc.o.d"
  "/root/repo/src/ref/shading.cc" "src/ref/CMakeFiles/dlp_ref.dir/shading.cc.o" "gcc" "src/ref/CMakeFiles/dlp_ref.dir/shading.cc.o.d"
  "/root/repo/src/ref/texture.cc" "src/ref/CMakeFiles/dlp_ref.dir/texture.cc.o" "gcc" "src/ref/CMakeFiles/dlp_ref.dir/texture.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
