/**
 * @file
 * The persistent content-addressed experiment store.
 *
 * On-disk layout under the store directory:
 *
 *   objects/<kk>/<key>.json   one entry per experiment cell, where
 *                             <key> is the 32-hex experiment key
 *                             (store/key.hh) and <kk> its first two
 *                             characters (fan-out so directories stay
 *                             small);
 *   index.ndjson              append-only newline-delimited JSON, one
 *                             line per insert: {"key","kernel",
 *                             "config","bytes"}.
 *
 * Entry files are complete JSON documents:
 *
 *   { "format": 1, "codeVersion": "...", "key": "...",
 *     "checksum": "<fnv1a128 hex of the compact result text>",
 *     "result": { ...full-fidelity codec document... } }
 *
 * Durability and concurrency:
 *
 *  - inserts write a per-process temp file in the same directory and
 *    rename(2) it into place, so readers never observe a partial
 *    entry; two processes inserting the same key race benignly (the
 *    simulator is deterministic, so both wrote identical results and
 *    either rename winning is correct);
 *  - index appends are single short write(2)s on an O_APPEND
 *    descriptor; the index is advisory (stats/listing only) — lookups
 *    go straight to the object path, so a torn or truncated index can
 *    never serve a wrong result, and rebuildIndex() repairs it from
 *    the objects directory;
 *  - corrupt entries (unparseable, checksum mismatch, foreign code
 *    version, wrong key) are treated as misses: counted, unlinked so
 *    the next insert repairs them, never fatal.
 */

#ifndef DLP_STORE_RESULT_STORE_HH
#define DLP_STORE_RESULT_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "arch/processor.hh"
#include "common/json.hh"

namespace dlp::store {

/** Counters of one ResultStore handle plus on-disk totals. */
struct StoreStats
{
    // This handle's traffic (process-local).
    uint64_t hits = 0;     ///< lookups served from disk
    uint64_t misses = 0;   ///< lookups that found no usable entry
    uint64_t inserts = 0;  ///< entries written
    uint64_t corrupt = 0;  ///< entries rejected (and removed) as bad

    // On-disk state (from the index, deduplicated by key).
    uint64_t entries = 0;  ///< distinct keys indexed
    uint64_t bytes = 0;    ///< sum of their entry-file sizes
};

class ResultStore
{
  public:
    /** Open (creating directories if needed); fatal if dir is unusable. */
    explicit ResultStore(std::string directory);

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    const std::string &dir() const { return root; }

    /**
     * Fetch the entry for key into out. Returns false — never throws —
     * when the entry is absent, corrupt, checksum-mismatched or written
     * by a different code version; corrupt entries are unlinked so the
     * next insert repairs them.
     */
    bool lookup(const std::string &key, arch::ExperimentResult &out);

    /** Write (or atomically overwrite) the entry for key. */
    void insert(const std::string &key, const arch::ExperimentResult &r);

    /**
     * True if the entry exists, parses, carries the current code
     * version and passes its checksum — without decoding the result.
     * Unlike lookup() this neither counts hit/miss nor unlinks bad
     * entries.
     */
    bool verifyEntry(const std::string &key);

    /// @name Raw JSON documents under the same envelope.
    ///
    /// Service results (multi-core serving runs) are stored as the
    /// exporter's JSON documents rather than through the
    /// ExperimentResult codec. They share the entry format, the
    /// atomic-rename durability story, the checksum/code-version
    /// validation and the hit/miss/corrupt counters; the index line's
    /// "kernel" field carries the document kind (e.g. "service").
    /// @{

    /**
     * Fetch the raw document for key into out. Same miss semantics as
     * lookup(): false on absent/corrupt/foreign entries, corrupt ones
     * unlinked.
     */
    bool lookupRaw(const std::string &key, json::Value &out);

    /** Write (or atomically overwrite) a raw document for key. */
    void insertRaw(const std::string &key, const json::Value &doc,
                   const std::string &kind);
    /// @}

    /** Handle counters plus on-disk entry/byte totals from the index. */
    StoreStats stats();

    /** Rewrite index.ndjson from the objects directory (repair). */
    void rebuildIndex();

    /** Absolute path of the entry file a key maps to. */
    std::string entryPath(const std::string &key) const;

    /** Path of the index file. */
    std::string indexPath() const;

  private:
    enum class ReadStatus { Ok, Absent, Corrupt };

    /// Parse + validate an entry file; decodes into *out unless null.
    ReadStatus readEntry(const std::string &key,
                         arch::ExperimentResult *out);

    /// Parse + validate an entry file's envelope; moves the raw result
    /// document into *out unless null.
    ReadStatus readRawEntry(const std::string &key, json::Value *out);

    /// Publish an envelope atomically and append its index line.
    void publishEntry(const std::string &key, json::Value result,
                      const std::string &kernel, const std::string &config);

    void appendIndexLine(const std::string &key, const std::string &kernel,
                         const std::string &config, uint64_t bytes);

    std::string root;
    std::mutex mu;  ///< guards the counters
    uint64_t hitCount = 0;
    uint64_t missCount = 0;
    uint64_t insertCount = 0;
    uint64_t corruptCount = 0;
};

} // namespace dlp::store

#endif // DLP_STORE_RESULT_STORE_HH
