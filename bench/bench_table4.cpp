/**
 * @file
 * Regenerates Table 4: useful computation operations per cycle on the
 * baseline (ILP-mode) TRIPS processor, next to the paper's numbers.
 *
 * The paper's trend -- DSP kernels sustain the highest throughput and
 * the irregular/control-heavy kernels the lowest -- is the claim under
 * test; absolute values depend on the authors' simulator internals.
 *
 * Usage: bench_table4 [--quick] [--jobs N] [--audit] [--check]
 *                     [--store=DIR] [--trace-out=FILE] [--timeseries=N]
 *                     [--fast-forward | --no-fast-forward]
 * The 13 baseline simulations are independent; --jobs (or DLP_JOBS)
 * runs them concurrently on the sweep driver. --audit (or DLP_AUDIT=1)
 * checks every run against the conservation invariants and fails the
 * bench on any violation. --check (or DLP_CHECK=1) statically verifies
 * every scheduled program before it runs; Error findings abort.
 * --store=DIR (or DLP_STORE=DIR) serves warm cells from the persistent
 * result store and writes cold ones back.
 * --trace-out=FILE captures a Chrome-trace/Perfetto timeline;
 * --timeseries=N samples every stat each N simulated ticks (also
 * DLP_TIMELINE / DLP_TIMESERIES).
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <vector>

#include "analysis/experiments.hh"
#include "analysis/export.hh"
#include "analysis/report.hh"
#include "check/verify.hh"
#include "common/logging.hh"
#include "driver/sweep.hh"
#include "epoch/epoch.hh"
#include "obs/timeline.hh"
#include "verify/audit.hh"

using namespace dlp;
using namespace dlp::analysis;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    uint64_t scaleDiv = 1;
    driver::SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            scaleDiv = 8;
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            opts.jobs = unsigned(std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "--audit") == 0)
            verify::setAuditEnabled(true);
        else if (std::strcmp(argv[i], "--check") == 0)
            check::setCheckEnabled(true);
        else if (std::strcmp(argv[i], "--fast-forward") == 0)
            epoch::setFastForwardEnabled(true);
        else if (std::strcmp(argv[i], "--no-fast-forward") == 0)
            epoch::setFastForwardEnabled(false);
        else if (std::strncmp(argv[i], "--store=", 8) == 0)
            opts.storeDir = argv[i] + 8;
        else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc)
            opts.storeDir = argv[++i];
        else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
            obs::setOutputPath(argv[i] + 12);
            obs::setRecording(true);
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            obs::setOutputPath(argv[++i]);
            obs::setRecording(true);
        } else if (std::strncmp(argv[i], "--timeseries=", 13) == 0) {
            obs::setTimeseriesInterval(
                std::strtoull(argv[i] + 13, nullptr, 10));
        } else if (std::strcmp(argv[i], "--timeseries") == 0 &&
                   i + 1 < argc) {
            obs::setTimeseriesInterval(
                std::strtoull(argv[++i], nullptr, 10));
        }
    }

    static const std::map<std::string, double> paper = {
        {"convert", 14.1},          {"dct", 10.4},
        {"highpassfilter", 7.4},    {"fft", 3.7},
        {"lu", 0.7},                {"md5", 2.8},
        {"blowfish", 5.1},          {"rijndael", 7.5},
        {"vertex-simple", 3.6},     {"fragment-simple", 2.6},
        {"vertex-reflection", 5.2}, {"fragment-reflection", 4.0},
        {"vertex-skinning", 5.6},
    };

    driver::SweepPlan plan;
    for (const auto &kernel : perfKernels())
        plan.add(kernel, "baseline", scaleDiv);

    auto t0 = std::chrono::steady_clock::now();
    auto results = driver::runSweep(plan, opts);
    double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::cout << "Table 4: baseline TRIPS useful ops/cycle "
                 "(ours vs. paper)\n\n";
    TextTable t;
    t.header({"Benchmark", "ops/cycle", "paper", "cycles", "records"});
    double dspOurs = 0, otherOurs = 0;
    int dspN = 0, otherN = 0;
    for (const auto &res : results) {
        const std::string &kernel = res.kernel;
        double oc = res.opsPerCycle();
        t.row({kernel, fmt(oc), fmt(paper.at(kernel), 1),
               std::to_string(res.cycles), std::to_string(res.records)});
        bool dsp = kernel == "convert" || kernel == "dct" ||
                   kernel == "highpassfilter";
        (dsp ? dspOurs : otherOurs) += oc;
        (dsp ? dspN : otherN)++;
    }
    t.print(std::cout);
    std::cout << "\nDSP mean " << fmt(dspOurs / dspN)
              << " ops/cycle (paper ~11); non-DSP mean "
              << fmt(otherOurs / otherN) << " (paper ~4).\n";

    size_t auditViolations = 0;
    bool audited = false;
    for (const auto &res : results) {
        if (!res.audited)
            continue;
        audited = true;
        for (const auto &f : res.auditViolations) {
            std::cout << "AUDIT VIOLATION " << res.kernel << "/"
                      << res.config << ": " << f.invariant << ": "
                      << f.detail << "\n";
            ++auditViolations;
        }
    }
    if (audited)
        std::cout << "\nAudit: " << auditViolations
                  << " invariant violation(s) across the sweep\n";

    unsigned jobs = driver::effectiveJobs(opts);
    std::cout << "\nSweep: " << results.size() << " simulations in "
              << fmt(wallSeconds, 2) << " s with " << jobs
              << (jobs == 1 ? " worker\n" : " workers\n");

    json::Value doc = toJson(results);
    doc.set("table", "table4");
    doc.set("scaleDiv", scaleDiv);
    doc.set("wallSeconds", wallSeconds);
    doc.set("jobs", uint64_t(jobs));
    doc.set("store", driver::storeStatsJson());
    json::Value ref = json::Value::object();
    for (const auto &[kernel, oc] : paper)
        ref.set(kernel, oc);
    doc.set("paperOpsPerCycle", std::move(ref));
    writeJsonFile("BENCH_table4.json", doc);
    std::cout << "\nWrote BENCH_table4.json\n";

    std::string tracePath = obs::finish();
    if (!tracePath.empty())
        std::cout << "Wrote timeline " << tracePath
                  << " (open in Perfetto or chrome://tracing)\n";
    return auditViolations ? 1 : 0;
}
