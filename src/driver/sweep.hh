/**
 * @file
 * The parallel sweep driver: plan, execute and cache independent
 * kernel × configuration simulations.
 *
 * A SweepPlan is an ordered list of SweepTasks. runSweep() executes
 * the plan on a JobPool and returns results *in plan order*: every
 * task owns an output slot, so the aggregated vector is bit-identical
 * to a serial run regardless of worker count or completion order (the
 * simulations themselves are deterministic and fully isolated — each
 * job instantiates its own workload from a shared immutable fixture
 * and its own processor).
 *
 * Three tiers amortize repeated work:
 *
 *  - a per-sweep fixture cache: dataset generation and golden-model
 *    evaluation run once per (kernel, scale, seed), and every config's
 *    job reads the shared immutable fixture;
 *  - a process-wide result cache keyed by the content-addressed
 *    experiment key (store/key.hh) — canonical kernel-IR digest,
 *    machine-config digest, code version, resolved scale, seed — so a
 *    stale entry cannot outlive the code or configuration that
 *    produced it: repeated sweeps (explore_configs refinement passes,
 *    a bench rerun in the same process) skip finished simulations;
 *  - an optional persistent result store (store/result_store.hh) under
 *    the same key, consulted on every in-process cache miss and filled
 *    after every simulation, so a rerun in a *new* process — or on
 *    another machine sharing the directory — is near-instant and
 *    bit-identical. Enable per sweep with SweepOptions::storeDir, or
 *    process-wide with setDefaultStoreDir() / the DLP_STORE
 *    environment variable.
 */

#ifndef DLP_DRIVER_SWEEP_HH
#define DLP_DRIVER_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/processor.hh"
#include "common/json.hh"
#include "store/result_store.hh"

namespace dlp::driver {

/** One independent simulation: a kernel on a machine configuration. */
struct SweepTask
{
    std::string kernel;
    std::string config;
    uint64_t scaleDiv = 1;  ///< divide the kernel's default scale
    uint64_t seed = 1234;   ///< dataset seed
    uint64_t scale = 0;     ///< absolute problem scale; 0 = derive from
                            ///< defaultScale(kernel) / scaleDiv
};

/** The problem scale a task resolves to (explicit scale wins). */
uint64_t resolvedScale(const SweepTask &task);

/** An ordered list of sweep tasks with cross-product helpers. */
struct SweepPlan
{
    std::vector<SweepTask> tasks;

    void
    add(std::string kernel, std::string config, uint64_t scaleDiv = 1,
        uint64_t seed = 1234)
    {
        tasks.push_back({std::move(kernel), std::move(config), scaleDiv,
                         seed});
    }

    /** Append the full kernels × configs cross product. */
    void addGrid(const std::vector<std::string> &kernels,
                 const std::vector<std::string> &configs,
                 uint64_t scaleDiv = 1, uint64_t seed = 1234);

    size_t size() const { return tasks.size(); }
    bool empty() const { return tasks.empty(); }
};

/** Progress report delivered as tasks finish (serialized; any thread). */
struct SweepProgress
{
    const SweepTask *task = nullptr;  ///< the task that just finished
    size_t done = 0;                  ///< finished so far (incl. cached)
    size_t total = 0;                 ///< plan size
    bool cached = false;              ///< satisfied from the result cache
};

struct SweepOptions
{
    /**
     * Worker threads: 0 means the DLP_JOBS environment default (which
     * itself defaults to 1). With an effective count of 1 the sweep
     * runs strictly serially on the calling thread — that is the
     * reference path the parallel path must match bit-for-bit.
     */
    unsigned jobs = 0;

    /** Consult and fill the process-wide result cache. */
    bool useCache = true;

    /**
     * Directory of the persistent result store. Empty means the
     * process default — setDefaultStoreDir(), else the DLP_STORE
     * environment variable, else no store at all.
     */
    std::string storeDir;

    /** Invoked (under a lock) after each task completes. */
    std::function<void(const SweepProgress &)> progress;
};

/** The worker count an options struct resolves to. */
unsigned effectiveJobs(const SweepOptions &opts);

/**
 * Problem scale for a kernel at a scale divisor (the FFT transform
 * length stays a power of two; everything else has a floor of 16).
 */
uint64_t scaleFor(const std::string &kernel, uint64_t scaleDiv);

/**
 * Run one task in isolation, bypassing both caches. Fatal if the
 * simulated outputs fail golden-model verification.
 */
arch::ExperimentResult runTask(const SweepTask &task);

/**
 * Execute a plan; results are returned in plan order independent of
 * worker count and completion order.
 */
std::vector<arch::ExperimentResult> runSweep(const SweepPlan &plan,
                                             const SweepOptions &opts = {});

/// @name Process-wide result cache introspection and control.
/// @{
size_t resultCacheSize();
uint64_t resultCacheHits();
uint64_t resultCacheMisses();
void clearResultCache();
/// @}

/// @name Persistent result-store wiring.
/// @{

/** Process-default store directory; "" falls back to DLP_STORE. */
void setDefaultStoreDir(const std::string &dir);

/**
 * Store traffic aggregated across every store handle runSweep has
 * opened in this process (all zero when no store was ever active).
 */
store::StoreStats storeTraffic();

/**
 * Cache and store counters as the sweep documents' "store" object:
 * { cacheHits, cacheMisses, storeHits, storeMisses, storeInserts,
 *   storeCorrupt, and — when a store is active — storeDir, entries,
 *   bytes }. Every cell of every sweep lands in exactly one cache
 * counter, and the store counters tally only cache misses, so
 * cacheHits + cacheMisses == cells swept and
 * storeHits + storeMisses <= cacheMisses (== when a store was active
 * throughout).
 */
json::Value storeStatsJson();
/// @}

} // namespace dlp::driver

#endif // DLP_DRIVER_SWEEP_HH
