/**
 * @file
 * Human-readable printing of mapped blocks and sequential programs.
 */

#ifndef DLP_ISA_DISASM_HH
#define DLP_ISA_DISASM_HH

#include <string>

#include "isa/mapped.hh"
#include "isa/seq.hh"

namespace dlp::isa {

/** One-line disassembly of a mapped instruction. */
std::string disasm(const MappedInst &mi);

/** One-line disassembly of a sequential instruction. */
std::string disasm(const SeqInst &si);

/** Full block listing (one instruction per line). */
std::string disasm(const MappedBlock &block);

/** Full program listing. */
std::string disasm(const SeqProgram &prog);

} // namespace dlp::isa

#endif // DLP_ISA_DISASM_HH
