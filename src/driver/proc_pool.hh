/**
 * @file
 * Fork-based process sharding, the multi-process sibling of JobPool.
 *
 * JobPool spreads independent work across threads inside one address
 * space; ProcPool spreads it across forked child processes, which is
 * what a server wants when each work item is a whole simulation: the
 * children share nothing, a crash in one item cannot take down the
 * parent, and the parent stays single-threaded (so it remains safe to
 * fork again later).
 *
 * Work items are sharded round-robin across the workers. Each child
 * runs its shard serially and returns one opaque byte payload per item
 * over its pipe, length-prefix framed; the parent polls all pipes and
 * invokes the collect callback as payloads arrive — in completion
 * order, not item order, so streaming consumers see results early.
 */

#ifndef DLP_DRIVER_PROC_POOL_HH
#define DLP_DRIVER_PROC_POOL_HH

#include <cstddef>
#include <functional>
#include <string>

namespace dlp::driver {

/**
 * Fork workers (at most one per item), run produce(item) in a child
 * for every item, and call collect(item, payload) in the parent as
 * payloads arrive. Serial (no fork) when workers <= 1. Fatal if a
 * child dies without delivering its shard.
 *
 * The parent must be single-threaded at the call; produce must not
 * touch parent state (it runs in a copy-on-write child).
 */
void runForked(size_t items, unsigned workers,
               const std::function<std::string(size_t)> &produce,
               const std::function<void(size_t, std::string)> &collect);

} // namespace dlp::driver

#endif // DLP_DRIVER_PROC_POOL_HH
