/**
 * @file
 * The benchmark-kernel catalog: the 14 DLP kernels of Table 1, expressed
 * in the kernel IR. Each factory builds the kernel with the same
 * deterministic parameters (seeds fixed per kernel) that the workload
 * generators and golden models use, so all three executions agree.
 */

#ifndef DLP_KERNELS_CATALOG_HH
#define DLP_KERNELS_CATALOG_HH

#include <string>
#include <vector>

#include "kernels/ir.hh"

namespace dlp::kernels {

// Multimedia / DSP.
Kernel makeConvert();
Kernel makeDct();
Kernel makeHighpass();

// Scientific.
Kernel makeFft();
Kernel makeLu();

// Network / security.
Kernel makeMd5();
Kernel makeBlowfish();
Kernel makeRijndael();

// Real-time graphics.
Kernel makeVertexSimple();
Kernel makeFragmentSimple();
Kernel makeVertexReflection();
Kernel makeFragmentReflection();
Kernel makeVertexSkinning();
Kernel makeAnisotropic();

/** All kernels in the paper's Table 1/2 order. */
std::vector<Kernel> allKernels();

/** Look up a kernel by its Table 1 name (e.g. "rijndael"). */
Kernel kernelByName(const std::string &name);

/** Deterministic seed used for a kernel's scene/key material. */
uint64_t kernelSeed(const std::string &name);

/** Deterministic key bytes for the crypto kernels (from kernelSeed). */
std::vector<uint8_t> kernelKeyBytes(const std::string &name, size_t n);

} // namespace dlp::kernels

#endif // DLP_KERNELS_CATALOG_HH
