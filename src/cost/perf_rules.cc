/**
 * @file
 * The PERF-* advisory rule family: performance findings derived from
 * the static cost model, reported through the same registry/Report
 * machinery as the correctness rules. Advisories never affect
 * Report::clean(), so the pre-run hard gate and existing CI are
 * untouched; lint_ir surfaces them behind --fail-on=advisory.
 */

#include "cost/cost.hh"

#include <sstream>

#include "check/report.hh"

namespace dlp::cost {

void
perfRules(const CostReport &report, const core::MachineParams &m,
          check::Report &out)
{
    if (!report.analyzed || report.mimd)
        return;

    for (const auto &sc : report.segments) {
        // PERF-HOP: hop mass well above the placement lower bound (the
        // unavoidable edge and register-tile crossings).
        constexpr uint64_t hopSlack = 4;
        uint64_t floor = std::max<uint64_t>(1, sc.hopLowerBound);
        if (sc.hopMass > hopSlack * floor) {
            std::ostringstream os;
            os << "hop mass " << sc.hopMass << " per activation exceeds "
               << hopSlack << "x the placement lower bound " << floor
               << " (busiest link carries " << sc.maxLinkTicks
               << " hops); consider a tighter placement";
            out.add("PERF-HOP", sc.block, -1, -1, os.str());
        }

        // PERF-CAP: steady-state throughput limited by one structural
        // resource rather than by the pacing gap + write-back path.
        uint64_t pacing = sc.gapTicks + sc.steadyWritePathTicks;
        if (sc.maxPressureTicks > pacing && !sc.bottleneck.empty()) {
            std::ostringstream os;
            os << "steady state is resource-bound: " << sc.bottleneck
               << " is busy " << sc.maxPressureTicks
               << " ticks per activation vs " << pacing
               << " pacing ticks; spreading work off this resource "
                  "raises throughput";
            out.add("PERF-CAP", sc.block, -1, -1, os.str());
        }
    }

    // PERF-UNROLL: reservation stations underfilled although a larger
    // unroll would still fit the pipelined slot budget.
    constexpr unsigned maxUnroll = 64;
    if (report.unroll < maxUnroll && !report.segments.empty()) {
        double occ = report.rsOccupancy;
        uint64_t budget = uint64_t(m.totalSlots()) /
                          std::max(1u, m.pipelineFrames);
        uint64_t maxSeg = 0;
        for (const auto &sc : report.segments)
            maxSeg = std::max(maxSeg, sc.insts);
        if (occ <= 0.5 && 2 * maxSeg <= budget) {
            std::ostringstream os;
            os << "unroll " << report.unroll << " fills only "
               << int(occ * 100.0)
               << "% of the reservation stations; doubling the unroll "
                  "still fits the "
               << budget << "-slot budget";
            out.add("PERF-UNROLL", report.plan, -1, -1, os.str());
        }
    }
}

} // namespace dlp::cost
