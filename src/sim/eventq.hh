/**
 * @file
 * The discrete-event simulation kernel.
 *
 * All timing in the simulator is driven by one EventQueue. Components
 * schedule callbacks at absolute ticks; the queue executes them in tick
 * order (FIFO within a tick). One tick is half a clock cycle (see
 * common/types.hh).
 */

#ifndef DLP_SIM_EVENTQ_HH
#define DLP_SIM_EVENTQ_HH

#include <cinttypes>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/trace.hh"
#include "common/types.hh"

namespace dlp::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/** A single time-ordered event queue. */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks. */
    Tick curTick() const { return now; }

    /** Current simulated time in whole cycles (rounded down). */
    Cycles curCycle() const { return now / ticksPerCycle; }

    /** Schedule fn at absolute tick when (must not be in the past). */
    void
    schedule(Tick when, EventFn fn)
    {
        panic_if(when < now,
                 "scheduling event in the past (%" PRIu64 " < %" PRIu64 ")",
                 when, now);
        DPRINTF(EventQ, "schedule event at %" PRIu64 " (%zu pending)", when,
                events.size());
        events.push(Event{when, nextSeq++, std::move(fn)});
    }

    /** Schedule fn delay ticks from now. */
    void
    scheduleIn(Tick delay, EventFn fn)
    {
        schedule(now + delay, std::move(fn));
    }

    /** Schedule fn a number of full cycles from now. */
    void
    scheduleInCycles(Cycles delay, EventFn fn)
    {
        schedule(now + cyclesToTicks(delay), std::move(fn));
    }

    bool empty() const { return events.empty(); }
    size_t pending() const { return events.size(); }

    /**
     * Run events until the queue drains or limit ticks elapse.
     *
     * @param limit Absolute tick bound; exceeding it is a fatal error
     *              because it almost always means the simulated machine
     *              deadlocked (an operand never arrived, a block never
     *              committed).
     * @return The tick of the last executed event.
     */
    Tick
    run(Tick limit = maxTick)
    {
        while (!events.empty()) {
            // Pop-before-execute so an event can schedule at its own tick.
            Event ev = std::move(const_cast<Event &>(events.top()));
            events.pop();
            fatal_if(ev.when > limit,
                     "simulation exceeded tick limit %" PRIu64 "; "
                     "the simulated machine probably deadlocked", limit);
            now = ev.when;
            trace::setCurTick(now);
            DPRINTF(EventQ, "event fires (%zu pending)", events.size());
            ev.fn();
        }
        return now;
    }

    /** Discard all pending events and reset time to zero. */
    void
    reset()
    {
        while (!events.empty())
            events.pop();
        now = 0;
        nextSeq = 0;
    }

  private:
    /** Component name used by DPRINTF lines from this class. */
    static const char *dlpTraceName() { return "eventq"; }

    struct Event
    {
        Tick when;
        uint64_t seq;
        EventFn fn;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
    Tick now = 0;
    uint64_t nextSeq = 0;
};

} // namespace dlp::sim

#endif // DLP_SIM_EVENTQ_HH
