/**
 * @file
 * Analysis substrate for the static SPDI verifier: the intra-block
 * operand graph (producers per reservation-station slot, successor
 * adjacency, strongly connected components, topological order,
 * reachability) and a linear abstract domain for the address arithmetic
 * mapped blocks compute in dataflow.
 *
 * The abstract value of an instruction is a linear form
 *
 *     sum(coeff_k * atom_k) + constant
 *
 * where an atom is any operand the analysis cannot see through (a
 * register Read, a load result, the activation counter). Mov copies,
 * Add/Sub combine, Shl/Mul by a constant scale, and fully constant
 * subtrees fold through the real evalOp. Two addresses with equal atom
 * vectors differ by a known constant, which is exactly the precision the
 * memory-ordering audit needs: the lowering builds every stream address
 * as base + record-index * record-words + offset over shared subtrees.
 */

#ifndef DLP_CHECK_GRAPH_HH
#define DLP_CHECK_GRAPH_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "isa/mapped.hh"

namespace dlp::check {

/** One delivery into an operand slot. */
struct ProducerRef
{
    uint32_t inst;    ///< producing instruction
    uint8_t wordIdx;  ///< which result word it delivers
};

/** The operand graph of one mapped block. */
struct BlockGraph
{
    const isa::MappedBlock *block = nullptr;

    /// producers[i][s]: deliveries into instruction i's source slot s.
    std::vector<std::vector<std::vector<ProducerRef>>> producers;

    /// succ[i]: consumers of instruction i (deduplicated).
    std::vector<std::vector<uint32_t>> succ;

    /// False when a target is out of range or names a slot the consumer
    /// does not wait on; producer/successor edges then omit it.
    bool sound = true;

    /// Strongly connected components with more than one member, plus
    /// single nodes with a self-edge: the deadlocked cycles.
    std::vector<std::vector<uint32_t>> cycles;

    /// Topological order over the acyclic part (valid iff cycles empty).
    std::vector<uint32_t> topo;

    bool cyclic() const { return !cycles.empty(); }

    /**
     * The unique producer of (inst, slot); nullopt when the slot has no
     * producer or several (both already diagnosed elsewhere).
     */
    std::optional<ProducerRef> producerOf(uint32_t inst,
                                          unsigned slot) const;
};

/** Build the operand graph (always succeeds; see BlockGraph::sound). */
BlockGraph buildGraph(const isa::MappedBlock &block);

/**
 * Reachability bitsets over the operand graph: bit j of reach[i] is set
 * when a (non-empty) directed path i -> j exists. Requires an acyclic
 * graph.
 */
class Reachability
{
  public:
    explicit Reachability(const BlockGraph &g);

    bool reaches(uint32_t from, uint32_t to) const
    {
        return (bits[from][to >> 6] >> (to & 63)) & 1;
    }

    /** Ordered in either direction. */
    bool ordered(uint32_t a, uint32_t b) const
    {
        return reaches(a, b) || reaches(b, a);
    }

  private:
    std::vector<std::vector<uint64_t>> bits;
};

/** A value in the linear abstract domain. */
struct LinForm
{
    bool known = false;
    /// Sorted (atom, coefficient) pairs; an atom identifies a result
    /// word of an opaque instruction (inst * 256 + wordIdx).
    std::vector<std::pair<uint64_t, int64_t>> terms;
    int64_t c = 0;

    bool isConst() const { return known && terms.empty(); }

    /** Equal atom vectors: the difference of the two values is known. */
    bool sameTerms(const LinForm &o) const
    {
        return known && o.known && terms == o.terms;
    }
};

/**
 * Abstract value of every instruction, in instruction order. Requires
 * an acyclic, sound graph (evaluated in topological order).
 */
std::vector<LinForm> linearValues(const BlockGraph &g);

} // namespace dlp::check

#endif // DLP_CHECK_GRAPH_HH
