/**
 * @file
 * Static placement of a dataflow block onto the ALU grid (the "statically
 * placed" half of SPDI execution).
 */

#ifndef DLP_SCHED_PLACER_HH
#define DLP_SCHED_PLACER_HH

#include <vector>

#include "core/machine.hh"
#include "isa/mapped.hh"

namespace dlp::sched {

/**
 * Assign a (row, col, slot) to every instruction of the block.
 *
 * Greedy communication-aware placement: instructions are placed in
 * topological (emission) order at the free slot nearest the centroid of
 * their already-placed producers; memory operations are biased toward
 * the west edge where the bank interfaces live, and independent kernel
 * instances are seeded onto different rows so record streams spread
 * across the per-row SMC banks.
 *
 * Register reads/writes are placed in the register tiles along the north
 * edge (bank = register % regBanks) and do not consume ALU slots.
 *
 * @param instanceHint per-instruction kernel-instance id used for row
 *                     seeding (empty = no seeding).
 */
void placeBlock(isa::MappedBlock &block, const core::MachineParams &m,
                const std::vector<unsigned> &instanceHint = {});

} // namespace dlp::sched

#endif // DLP_SCHED_PLACER_HH
