file(REMOVE_RECURSE
  "libdlp_kernels.a"
)
