file(REMOVE_RECURSE
  "libdlp_noc.a"
)
