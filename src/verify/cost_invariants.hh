/**
 * @file
 * Cross-validation of the static cost model (src/cost) against the
 * simulator, in two layers:
 *
 *  - Soundness: `costBoundTicks` recomputes the model's closed-form
 *    lower bound on total run ticks from the flattened CostSummary an
 *    ExperimentResult carries. The `cost-lower-bound` invariant in the
 *    audit registry asserts it never exceeds the ticks the simulation
 *    actually took; a violation means the "bound" was not a bound.
 *
 *  - Fidelity: `costInvariants` additionally checks, per kernel, that
 *    the model's throughput *estimate* ranks machine configurations the
 *    same way the simulator does (Spearman rank correlation over the
 *    configurations of each kernel). The estimate carries no soundness
 *    guarantee, only this rank-correlation contract, enforced in CI on
 *    the full kernel x configuration grid.
 */

#ifndef DLP_VERIFY_COST_INVARIANTS_HH
#define DLP_VERIFY_COST_INVARIANTS_HH

#include <vector>

#include "arch/processor.hh"

namespace dlp::verify {

/**
 * The cost model's sound lower bound on total run ticks for this
 * result, recomputed from the flattened summary and the run's own
 * activation/mapping/record counters. Zero when the plan was never
 * analyzed (no claim).
 */
uint64_t costBoundTicks(const arch::ExperimentResult &res);

/**
 * Spearman rank correlation of two equal-length samples, with average
 * ranks for ties. Returns 1.0 for degenerate inputs (fewer than two
 * points, or either sample constant): a constant prediction over a
 * constant truth is vacuously in order, and callers gate on group size
 * anyway.
 *
 * `relTol` widens what counts as a tie: sorted values within that
 * relative distance of their tie group's smallest member share an
 * averaged rank. Two simulator runs 0.3% apart are the same speed for
 * ranking purposes, and a strict ordering of such noise-level
 * differences would penalize a model for not predicting noise. Applied
 * symmetrically to both samples; 0 keeps exact-equality ties only.
 */
double spearman(const std::vector<double> &a, const std::vector<double> &b,
                double relTol = 0.0);

/** Per-kernel rank agreement between predicted and simulated cost. */
struct CostRankStat
{
    std::string kernel;
    size_t configs = 0;  ///< results ranked (one per configuration)
    double spearman = 1; ///< predictedTicksPerRecord vs ticks/record
};

/**
 * Rank statistics for every kernel appearing in results (sorted by
 * kernel name). Results without records or with an unanalyzed cost
 * summary are skipped.
 */
std::vector<CostRankStat>
costRankStats(const std::vector<arch::ExperimentResult> &results);

/**
 * Audit the whole grid: the sound bound must hold for every result,
 * and every kernel ranked across at least three configurations must
 * reach minSpearman. @return the violations (empty == clean).
 */
std::vector<arch::AuditFinding>
costInvariants(const std::vector<arch::ExperimentResult> &results,
               double minSpearman);

} // namespace dlp::verify

#endif // DLP_VERIFY_COST_INVARIANTS_HH
