file(REMOVE_RECURSE
  "libdlp_arch.a"
)
