#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dlp {

namespace {

std::atomic<bool> quietFlag{false};

/**
 * Occurrence counts of distinct warn() messages, for rate limiting.
 * Bounded by LRU eviction at warnTableLimit entries: a pathological
 * stream of unique messages (long fuzz runs) evicts the
 * least-recently-warned message instead of growing without limit or
 * dropping the whole table (which would reset suppression for every
 * live message at once). An evicted message that recurs is treated as
 * new and warns again -- the acceptable failure mode. Guarded by
 * warnMutex: warn() is called from the sweep driver's worker threads.
 */
std::mutex warnMutex;
struct WarnEntry
{
    std::string msg;
    uint64_t count;
};
std::list<WarnEntry> warnLru; ///< most recently warned at the front
std::unordered_map<std::string, std::list<WarnEntry>::iterator> warnIndex;

} // namespace

namespace logging_detail {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args2);
    va_end(args2);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace logging_detail

void
panicMsg(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    throw PanicError(msg);
}

void
fatalMsg(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw FatalError(msg);
}

void
warnMsg(const std::string &msg)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(warnMutex);
    uint64_t n;
    auto it = warnIndex.find(msg);
    if (it != warnIndex.end()) {
        // Refresh recency and bump the count.
        warnLru.splice(warnLru.begin(), warnLru, it->second);
        n = ++warnLru.front().count;
    } else {
        if (warnIndex.size() >= warnTableLimit) {
            warnIndex.erase(warnLru.back().msg);
            warnLru.pop_back();
        }
        warnLru.push_front(WarnEntry{msg, 1});
        warnIndex[msg] = warnLru.begin();
        n = 1;
    }
    if (n > warnRepeatLimit)
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
    if (n == warnRepeatLimit) {
        std::fprintf(stderr,
                     "warn: (message repeated %u times; further identical "
                     "warnings suppressed)\n", warnRepeatLimit);
    }
}

void
resetWarnDeduplication()
{
    std::lock_guard<std::mutex> lock(warnMutex);
    warnLru.clear();
    warnIndex.clear();
}

size_t
warnTableSize()
{
    std::lock_guard<std::mutex> lock(warnMutex);
    return warnIndex.size();
}

uint64_t
warnOccurrences(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(warnMutex);
    auto it = warnIndex.find(msg);
    return it != warnIndex.end() ? it->second->count : 0;
}

void
informMsg(const std::string &msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuietLogging(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quietLogging()
{
    return quietFlag.load(std::memory_order_relaxed);
}

} // namespace dlp
