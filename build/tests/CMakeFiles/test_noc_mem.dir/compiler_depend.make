# Empty compiler generated dependencies file for test_noc_mem.
# This may be replaced when dependencies are built.
