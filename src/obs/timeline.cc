#include "obs/timeline.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hh"

namespace dlp::obs {

namespace detail {

std::atomic<bool> recording = false;
std::atomic<bool> catBits[numCats] = {};

} // namespace detail

namespace {

const char *const catNames[numCats] = {
    "EventQ", "Mesh", "SMC", "Cache", "Mem", "Engine", "Revit", "Exec",
    "Epoch", "Driver", "Audit", "Check", "Store", "Serve",
};

/**
 * One recorded event. Spans ('X') use ts+dur, instants ('i') use ts,
 * counters ('C') use ts+value. Kept flat and trivially copyable so the
 * ring is a plain vector overwritten in place.
 */
struct TraceEvent
{
    uint64_t ts = 0;
    uint64_t dur = 0;
    double value = 0.0;
    uint64_t arg = 0;
    uint32_t nameId = 0;
    uint32_t labelId = 0;
    Cat cat = Cat::Driver;
    Domain domain = Domain::Sim;
    char phase = 'X';
};
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "ring events must relocate with memcpy");

/**
 * Per-thread ring buffer. Owned by the global registry (not the thread)
 * so events survive thread exit and export can run after a JobPool has
 * wound down. The owning thread writes lock-free; the registry mutex is
 * taken only for registration, clear and export.
 */
struct ThreadBuffer
{
    explicit ThreadBuffer(size_t cap, uint32_t id) : ring(cap), tid(id) {}

    std::vector<TraceEvent> ring;
    uint64_t total = 0; ///< events ever written (head = total % size)
    uint32_t tid;

    void
    push(const TraceEvent &ev)
    {
        ring[total % ring.size()] = ev;
        ++total;
    }
};

std::mutex registryMutex;
std::vector<std::unique_ptr<ThreadBuffer>> buffers;
size_t ringCap = 1 << 16;

thread_local ThreadBuffer *myBuffer = nullptr;

ThreadBuffer &
threadBuffer()
{
    if (!myBuffer) {
        std::lock_guard<std::mutex> lock(registryMutex);
        buffers.push_back(std::make_unique<ThreadBuffer>(
            std::max<size_t>(ringCap, 16),
            static_cast<uint32_t>(buffers.size() + 1)));
        myBuffer = buffers.back().get();
    }
    return *myBuffer;
}

/// Name interning: id 0 is the empty string; ids are stable for the
/// process lifetime (call sites cache them in function-local statics,
/// so the table must never shrink).
std::mutex nameMutex;
std::vector<std::string> nameTable = {""};
std::unordered_map<std::string, uint32_t> nameIds = {{"", 0}};

std::mutex pathMutex;
std::string tracePath;
bool atexitArmed = false;

std::atomic<uint64_t> sampleIntervalTicks = 0;

/** Steady-clock epoch captured at first use (static init). */
const std::chrono::steady_clock::time_point processEpoch =
    std::chrono::steady_clock::now();

void
escapeJson(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendMetadata(std::string &out, int pid, int tid, const char *what,
               const std::string &name, bool &first)
{
    if (!first)
        out += ",\n";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"";
    out += what;
    out += "\",\"args\":{\"name\":\"";
    escapeJson(out, name);
    out += "\"}}";
}

void
appendEvent(std::string &out, const TraceEvent &ev, uint32_t tid,
            bool &first)
{
    if (!first)
        out += ",\n";
    first = false;

    const int pid = ev.domain == Domain::Sim ? 1 : 2;
    out += "{\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"cat\":\"";
    out += catNames[static_cast<unsigned>(ev.cat)];
    out += "\",\"name\":\"";
    {
        std::lock_guard<std::mutex> lock(nameMutex);
        escapeJson(out, nameTable[ev.nameId]);
    }
    out += "\",\"ts\":";
    if (ev.domain == Domain::Sim) {
        // One simulated tick renders as one microsecond.
        out += std::to_string(ev.ts);
    } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", double(ev.ts) / 1000.0);
        out += buf;
    }
    if (ev.phase == 'X') {
        out += ",\"dur\":";
        if (ev.domain == Domain::Sim) {
            out += std::to_string(ev.dur);
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.3f",
                          double(ev.dur) / 1000.0);
            out += buf;
        }
    }
    if (ev.phase == 'i')
        out += ",\"s\":\"t\"";
    if (ev.phase == 'C') {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", ev.value);
        out += ",\"args\":{\"value\":";
        out += buf;
        out += "}";
    } else if (ev.arg != 0 || ev.labelId != 0) {
        out += ",\"args\":{\"arg\":";
        out += std::to_string(ev.arg);
        if (ev.labelId != 0) {
            out += ",\"label\":\"";
            std::lock_guard<std::mutex> lock(nameMutex);
            escapeJson(out, nameTable[ev.labelId]);
            out += "\"";
        }
        out += "}";
    }
    out += "}";
}

void atexitWriter();

} // namespace

const char *
catName(Cat c)
{
    return catNames[static_cast<unsigned>(c)];
}

void
setRecording(bool on)
{
    detail::recording.store(on, std::memory_order_relaxed);
}

void
enableAllCats()
{
    for (unsigned i = 0; i < numCats; ++i)
        detail::catBits[i].store(true, std::memory_order_relaxed);
}

void
parseCatList(const std::string &list)
{
    if (list.empty()) {
        enableAllCats();
        return;
    }
    // Listing any positive category starts from all-off; a pure
    // subtraction list ("-Exec") starts from all-on.
    bool anyPositive = false;
    {
        std::string token;
        std::istringstream in(list);
        while (std::getline(in, token, ',')) {
            size_t b = token.find_first_not_of(" \t");
            if (b != std::string::npos && token[b] != '-')
                anyPositive = true;
        }
    }
    for (unsigned i = 0; i < numCats; ++i)
        detail::catBits[i].store(!anyPositive, std::memory_order_relaxed);

    static std::mutex warnedMutex;
    static std::unordered_set<std::string> warnedNames;

    std::string token;
    std::istringstream in(list);
    while (std::getline(in, token, ',')) {
        size_t b = token.find_first_not_of(" \t");
        size_t e = token.find_last_not_of(" \t");
        if (b == std::string::npos)
            continue;
        std::string spec = token.substr(b, e - b + 1);
        bool on = true;
        std::string name = spec;
        if (!name.empty() && name[0] == '-') {
            on = false;
            name = name.substr(1);
        }
        if (name == "All") {
            for (unsigned i = 0; i < numCats; ++i)
                detail::catBits[i].store(on, std::memory_order_relaxed);
            continue;
        }
        bool found = false;
        for (unsigned i = 0; i < numCats; ++i) {
            if (name == catNames[i]) {
                detail::catBits[i].store(on, std::memory_order_relaxed);
                found = true;
                break;
            }
        }
        if (!found) {
            std::lock_guard<std::mutex> lock(warnedMutex);
            if (warnedNames.insert(name).second) {
                warn("unknown timeline category '%s' (known: EventQ, Mesh, "
                     "SMC, Cache, Mem, Engine, Revit, Exec, Epoch, Driver, "
                     "Audit, Check, Store, Serve, All)", spec.c_str());
            }
        }
    }
}

void
setRingCapacity(size_t events)
{
    std::lock_guard<std::mutex> lock(registryMutex);
    ringCap = std::max<size_t>(events, 16);
}

size_t
ringCapacity()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    return ringCap;
}

void
setOutputPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(pathMutex);
    tracePath = path;
    if (!tracePath.empty() && !atexitArmed) {
        atexitArmed = true;
        std::atexit(atexitWriter);
    }
}

std::string
outputPath()
{
    std::lock_guard<std::mutex> lock(pathMutex);
    return tracePath;
}

uint64_t
hostNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - processEpoch)
            .count());
}

uint32_t
internName(const std::string &name)
{
    std::lock_guard<std::mutex> lock(nameMutex);
    auto it = nameIds.find(name);
    if (it != nameIds.end())
        return it->second;
    auto id = static_cast<uint32_t>(nameTable.size());
    nameTable.push_back(name);
    nameIds.emplace(name, id);
    return id;
}

void
recordSpan(Cat c, uint32_t nameId, Domain d, uint64_t ts, uint64_t dur,
           uint64_t arg, uint32_t labelId)
{
    TraceEvent ev;
    ev.ts = ts;
    ev.dur = dur;
    ev.arg = arg;
    ev.nameId = nameId;
    ev.labelId = labelId;
    ev.cat = c;
    ev.domain = d;
    ev.phase = 'X';
    threadBuffer().push(ev);
}

void
recordInstant(Cat c, uint32_t nameId, Domain d, uint64_t ts, uint64_t arg,
              uint32_t labelId)
{
    TraceEvent ev;
    ev.ts = ts;
    ev.arg = arg;
    ev.nameId = nameId;
    ev.labelId = labelId;
    ev.cat = c;
    ev.domain = d;
    ev.phase = 'i';
    threadBuffer().push(ev);
}

void
recordCounter(Cat c, uint32_t nameId, Domain d, uint64_t ts, double value)
{
    TraceEvent ev;
    ev.ts = ts;
    ev.value = value;
    ev.nameId = nameId;
    ev.cat = c;
    ev.domain = d;
    ev.phase = 'C';
    threadBuffer().push(ev);
}

void
hostInstant(Cat c, const char *name, const std::string &label)
{
    if (!enabled(c))
        return;
    recordInstant(c, internName(name), Domain::Host, hostNowNs(), 0,
                  label.empty() ? 0 : internName(label));
}

HostSpan::HostSpan(Cat c, const char *name, const std::string &label,
                   uint64_t arg)
{
    if (!enabled(c))
        return;
    cat = c;
    nameId = internName(name);
    labelId = label.empty() ? 0 : internName(label);
    argValue = arg;
    startNs = hostNowNs();
    active = true;
}

HostSpan::~HostSpan()
{
    // Recording may have been switched off mid-span; still emit, so a
    // span straddling the switch is not silently lost.
    if (!active || !recordingEnabled())
        return;
    uint64_t end = hostNowNs();
    recordSpan(cat, nameId, Domain::Host, startNs,
               end > startNs ? end - startNs : 0, argValue, labelId);
}

std::string
exportChromeJson()
{
    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
    bool first = true;

    std::lock_guard<std::mutex> lock(registryMutex);
    appendMetadata(out, 1, 0, "process_name", "simulated ticks", first);
    appendMetadata(out, 2, 0, "process_name", "host wall clock", first);
    for (const auto &buf : buffers) {
        std::string tname = "thread " + std::to_string(buf->tid);
        appendMetadata(out, 1, int(buf->tid), "thread_name", tname, first);
        appendMetadata(out, 2, int(buf->tid), "thread_name", tname, first);
    }
    for (const auto &buf : buffers) {
        const size_t size = buf->ring.size();
        const uint64_t held = std::min<uint64_t>(buf->total, size);
        // Oldest surviving event first: when the ring has wrapped the
        // write head is also the oldest slot.
        const uint64_t start = buf->total - held;
        for (uint64_t i = 0; i < held; ++i) {
            appendEvent(out, buf->ring[(start + i) % size], buf->tid,
                        first);
        }
    }
    out += "\n]}\n";
    return out;
}

void
writeChromeTrace(const std::string &path)
{
    std::string text = exportChromeJson();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatal_if(!out, "cannot open timeline output '%s'", path.c_str());
    out << text;
    out.flush();
    fatal_if(!out, "failed writing timeline output '%s'", path.c_str());
}

std::string
finish()
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(pathMutex);
        path = tracePath;
        tracePath.clear();
    }
    if (path.empty())
        return "";
    writeChromeTrace(path);
    TimelineCounts counts = timelineCounts();
    inform("timeline: wrote %" PRIu64 " events to %s (%" PRIu64
           " dropped by ring wrap)",
           counts.recorded, path.c_str(), counts.dropped);
    return path;
}

void
clearTimeline()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    for (auto &buf : buffers) {
        buf->ring.assign(std::max<size_t>(ringCap, 16), TraceEvent{});
        buf->total = 0;
    }
}

TimelineCounts
timelineCounts()
{
    TimelineCounts counts;
    std::lock_guard<std::mutex> lock(registryMutex);
    counts.threads = buffers.size();
    for (const auto &buf : buffers) {
        uint64_t held = std::min<uint64_t>(buf->total, buf->ring.size());
        counts.recorded += held;
        counts.dropped += buf->total - held;
    }
    return counts;
}

void
setTimeseriesInterval(uint64_t ticks)
{
    sampleIntervalTicks.store(ticks, std::memory_order_relaxed);
}

uint64_t
timeseriesInterval()
{
    return sampleIntervalTicks.load(std::memory_order_relaxed);
}

void
initFromEnv()
{
    if (const char *cap = std::getenv("DLP_TIMELINE_CAP")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(cap, &end, 10);
        if (end && *end == '\0' && v > 0)
            setRingCapacity(static_cast<size_t>(v));
        else
            warn("ignoring malformed DLP_TIMELINE_CAP '%s'", cap);
    }
    if (const char *cats = std::getenv("DLP_TIMELINE_CATS"))
        parseCatList(cats);
    else
        enableAllCats();
    if (const char *path = std::getenv("DLP_TIMELINE")) {
        if (*path) {
            setOutputPath(path);
            setRecording(true);
        }
    }
    if (const char *iv = std::getenv("DLP_TIMESERIES")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(iv, &end, 10);
        if (end && *end == '\0')
            setTimeseriesInterval(v);
        else
            warn("ignoring malformed DLP_TIMESERIES '%s'", iv);
    }
}

namespace {

/** Parses DLP_TIMELINE et al. before main(), mirroring trace::EnvInit. */
struct EnvInit
{
    EnvInit() { initFromEnv(); }
} envInit;

/**
 * At-exit backstop: if an output path is still armed when the process
 * exits (a binary that never calls finish()), write the trace anyway so
 * DLP_TIMELINE works on every tool and test without cooperation.
 */
void
atexitWriter()
{
    finish();
}

} // namespace

} // namespace dlp::obs
