#include "mem/shared_smc.hh"

#include <cmath>

#include "common/logging.hh"

namespace dlp::mem {

SharedSmcArbiter::SharedSmcArbiter(unsigned cores,
                                   double bandwidthWordsPerTick)
    : nCores(cores), bw(bandwidthWordsPerTick)
{
    fatal_if(cores == 0, "shared SMC arbiter needs at least one core");
    fatal_if(bw <= 0.0, "shared SMC bandwidth must be positive");

    activeDist = &statGroup.distribution("activeCores", 0.0,
                                         double(nCores) + 1.0, nCores + 1);
    statGroup.setPreDump([this] {
        statGroup.scalar("grantedWords").set(granted);
        statGroup.scalar("stallTicks").set(stalled);
        statGroup.scalar("contendedTicks").set(contended);
        statGroup.scalar("busyTicks").set(busy);
        statGroup.scalar("bandwidthWordsPerTick").set(bw);
    });
    statGroup.formula("utilization", [this] {
        return busy > 0.0 ? granted / (busy * bw) : 0.0;
    });
    statGroup.formula("stallFraction", [this] {
        // Fraction of aggregate active core-time lost to arbitration.
        double active = activeDist->sum();
        return active > 0.0 ? stalled / active : 0.0;
    });
}

void
SharedSmcArbiter::charge(double ticks, const std::vector<double> &demand,
                         double f)
{
    if (ticks <= 0.0 || demand.empty())
        return;
    double total = 0.0;
    for (double d : demand)
        total += d;
    // Post-stretch grant rate: each core moves d/f words per tick, so
    // the structure grants total/f <= bw words per tick.
    granted += total / f * ticks;
    busy += ticks;
    if (f > 1.0) {
        contended += ticks;
        stalled += double(demand.size()) * ticks * (1.0 - 1.0 / f);
    }
    // Time-weighted active-core histogram, in whole ticks so the
    // distribution's integer accumulators stay exact.
    activeDist->sample(double(demand.size()),
                      uint64_t(std::llround(ticks)));
}

} // namespace dlp::mem
