/**
 * @file
 * Tests for the multi-core serving stack: the open-loop traffic
 * generator (schedule determinism, the deterministic log, mix
 * parsing), the MultiCoreSystem queueing composition (percentile
 * order, conservation, shared-bandwidth contention scaling) and the
 * service driver (profile bit-identity with the single-core grid,
 * JSON bit-identity across worker counts, audit cleanliness).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/export.hh"
#include "arch/multicore.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "driver/service.hh"
#include "driver/sweep.hh"
#include "traffic/generator.hh"
#include "verify/audit.hh"

using namespace dlp;

namespace {

traffic::TrafficParams
smallParams()
{
    traffic::TrafficParams t;
    t.rps = 20000.0;
    t.requests = 24;
    t.batch = 64;
    t.seed = 7;
    t.seedPool = 2;
    t.mix = traffic::parseMix("convert:2,md5");
    return t;
}

driver::ServiceOptions
smallService()
{
    driver::ServiceOptions o;
    o.config = "S-O-D";
    o.cores = 2;
    o.traffic = smallParams();
    o.jobs = 1;
    return o;
}

std::string
serviceJson(const arch::ServiceResult &r)
{
    return json::write(analysis::toJson(r));
}

} // namespace

// ---------------------------------------------------------------------
// Schedule generation
// ---------------------------------------------------------------------

TEST(Traffic, SameSeedGivesBitIdenticalSchedule)
{
    for (auto arrival : {traffic::Arrival::Uniform,
                         traffic::Arrival::Poisson}) {
        traffic::TrafficParams t = smallParams();
        t.requests = 200;
        t.arrival = arrival;
        std::vector<traffic::Request> a = traffic::generate(t);
        std::vector<traffic::Request> b = traffic::generate(t);
        ASSERT_EQ(a.size(), t.requests);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].index, i);
            EXPECT_EQ(a[i].arrival, b[i].arrival);
            EXPECT_EQ(a[i].mixIndex, b[i].mixIndex);
            EXPECT_EQ(a[i].seedSlot, b[i].seedSlot);
        }

        t.seed = 8;
        std::vector<traffic::Request> c = traffic::generate(t);
        bool differs = false;
        for (size_t i = 0; i < a.size() && !differs; ++i)
            differs = a[i].arrival != c[i].arrival ||
                      a[i].mixIndex != c[i].mixIndex;
        EXPECT_TRUE(differs) << "seed must perturb the schedule";
    }
}

TEST(Traffic, ArrivalsStrictlyIncreaseAndDrawsStayInRange)
{
    traffic::TrafficParams t = smallParams();
    t.requests = 500;
    t.arrival = traffic::Arrival::Poisson;
    std::vector<traffic::Request> reqs = traffic::generate(t);
    uint64_t draws[2] = {0, 0};
    for (size_t i = 0; i < reqs.size(); ++i) {
        if (i > 0)
            EXPECT_GT(reqs[i].arrival, reqs[i - 1].arrival);
        ASSERT_LT(reqs[i].mixIndex, t.mix.size());
        ASSERT_LT(reqs[i].seedSlot, t.seedPool);
        ++draws[reqs[i].mixIndex];
    }
    // convert has weight 2, md5 weight 1: the heavier entry must win
    // over 500 draws.
    EXPECT_GT(draws[0], draws[1]);
}

TEST(Traffic, MeanInterarrivalTracksOfferedRps)
{
    traffic::TrafficParams t = smallParams();
    t.requests = 2000;
    t.rps = 10000.0;  // mean gap 1e5 ticks at 1e9 ticks/sec
    for (auto arrival : {traffic::Arrival::Uniform,
                         traffic::Arrival::Poisson}) {
        t.arrival = arrival;
        std::vector<traffic::Request> reqs = traffic::generate(t);
        double span = double(reqs.back().arrival - reqs.front().arrival);
        double meanGap = span / double(reqs.size() - 1);
        EXPECT_NEAR(meanGap, 1e5, 1e4)
            << traffic::arrivalName(arrival);
    }
}

TEST(Traffic, ParseMixAndArrivalNames)
{
    std::vector<traffic::MixEntry> mix =
        traffic::parseMix("convert:4,md5:2,fft");
    ASSERT_EQ(mix.size(), 3u);
    EXPECT_EQ(mix[0].kernel, "convert");
    EXPECT_EQ(mix[0].weight, 4u);
    EXPECT_EQ(mix[1].kernel, "md5");
    EXPECT_EQ(mix[1].weight, 2u);
    EXPECT_EQ(mix[2].kernel, "fft");
    EXPECT_EQ(mix[2].weight, 1u);

    EXPECT_THROW(traffic::parseMix(""), FatalError);
    EXPECT_THROW(traffic::parseMix("fft:0"), FatalError);
    EXPECT_THROW(traffic::parseMix("fft:abc"), FatalError);

    EXPECT_EQ(traffic::arrivalByName("uniform"),
              traffic::Arrival::Uniform);
    EXPECT_EQ(traffic::arrivalByName("poisson"),
              traffic::Arrival::Poisson);
    EXPECT_STREQ(traffic::arrivalName(traffic::Arrival::Poisson),
                 "poisson");
    EXPECT_THROW(traffic::arrivalByName("bursty"), FatalError);
}

TEST(Traffic, DetLogMatchesLibmTightly)
{
    // The deterministic log only needs (0, 1] for -ln(U), but the
    // range reduction makes it valid for any positive argument.
    for (double x : {1e-12, 1e-6, 0.1, 0.5, 1.0 - 1e-9, 1.0, 2.0,
                     3.14159, 1e6}) {
        double want = std::log(x);
        double got = traffic::detLog(x);
        double tol = std::max(1e-12, std::fabs(want) * 1e-12);
        EXPECT_NEAR(got, want, tol) << "x = " << x;
    }
    EXPECT_EQ(traffic::detLog(1.0), 0.0);
}

// ---------------------------------------------------------------------
// Percentiles
// ---------------------------------------------------------------------

TEST(Traffic, NearestRankPercentileEdges)
{
    std::vector<double> one = {42.0};
    EXPECT_EQ(arch::nearestRank(one, 50.0), 42.0);
    EXPECT_EQ(arch::nearestRank(one, 99.0), 42.0);

    std::vector<double> four = {1.0, 2.0, 3.0, 4.0};
    EXPECT_EQ(arch::nearestRank(four, 1.0), 1.0);    // ceil(0.04) = 1st
    EXPECT_EQ(arch::nearestRank(four, 50.0), 2.0);   // ceil(2.0) = 2nd
    EXPECT_EQ(arch::nearestRank(four, 75.0), 3.0);
    EXPECT_EQ(arch::nearestRank(four, 100.0), 4.0);  // never past the end
}

// ---------------------------------------------------------------------
// Service runs (profiles via the real single-core simulation)
// ---------------------------------------------------------------------

TEST(Service, JsonBitIdenticalSerialVsParallelJobs)
{
    driver::ServiceOptions o = smallService();
    o.jobs = 1;
    std::string serial = serviceJson(driver::runService(o));
    o.jobs = 2;
    std::string parallel = serviceJson(driver::runService(o));
    EXPECT_EQ(serial, parallel);
}

TEST(Service, PercentileOrderAndConservationAcrossLoads)
{
    bool wasEnabled = verify::auditEnabled();
    verify::setAuditEnabled(true);
    for (double rps : {4000.0, 40000.0, 400000.0}) {
        driver::ServiceOptions o = smallService();
        o.traffic.rps = rps;
        o.timeseriesInterval = 50000;
        arch::ServiceResult r = driver::runService(o);

        EXPECT_EQ(r.injected, o.traffic.requests);
        EXPECT_EQ(r.completed, o.traffic.requests);
        EXPECT_EQ(r.inFlightAtDrain, 0u);
        EXPECT_LE(r.p50, r.p95);
        EXPECT_LE(r.p95, r.p99);
        EXPECT_LE(r.p99, r.maxLatency);
        EXPECT_GT(r.sustainedRps, 0.0);
        EXPECT_TRUE(r.timeseries.present());

        EXPECT_TRUE(r.audited);
        for (const auto &f : r.auditViolations)
            ADD_FAILURE() << rps << " rps: " << f.invariant << ": "
                          << f.detail;
    }
    verify::setAuditEnabled(wasEnabled);
}

TEST(Service, SharedContentionGrowsWithCoreCount)
{
    // Fixed high offered load on a deliberately thin shared pool: more
    // cores means more concurrently active demand, so the arbiter must
    // report strictly more stretched (stall) time at 4 cores than 1.
    double stall[2] = {0, 0}, contended[2] = {0, 0};
    unsigned coreCounts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        driver::ServiceOptions o = smallService();
        o.cores = coreCounts[i];
        // Far below both kernels' isolated demand (convert ~0.87,
        // md5 ~0.01 words/tick), so even one core contends and each
        // added concurrent core stretches everybody further.
        o.bandwidthWordsPerTick = 0.01;
        o.traffic.rps = 400000.0;
        arch::ServiceResult r = driver::runService(o);
        const GroupSnapshot &shared = r.group("mem.shared");
        stall[i] = shared.scalars.at("stallTicks");
        contended[i] = shared.scalars.at("contendedTicks");
    }
    EXPECT_GT(stall[0], 0.0);  // a thin pool contends even alone
    EXPECT_GT(stall[1], stall[0]);
    // contendedTicks is wall time, and a bandwidth-bound makespan is
    // set by the pool, not the core count — so it may only stay equal.
    EXPECT_GE(contended[1], contended[0]);
    EXPECT_GT(contended[0], 0.0);
}

TEST(Service, ProfilesBitIdenticalToSingleCoreGrid)
{
    // The per-class profile must be derived from exactly the result a
    // standalone single-core run of that cell produces.
    driver::ServiceOptions o = smallService();
    o.traffic.mix = traffic::parseMix("md5");
    o.traffic.seedPool = 1;
    arch::ServiceResult r = driver::runService(o);
    ASSERT_EQ(r.profiles.size(), 1u);

    driver::SweepTask task;
    task.kernel = "md5";
    task.config = o.config;
    task.scaleDiv = 1;
    task.seed = driver::slotSeed(o.traffic, 0);
    task.scale = o.traffic.batch;
    arch::ExperimentResult single = driver::runTask(task);
    arch::RequestProfile direct = driver::profileFromResult(
        single, o.config, o.traffic.batch, task.seed);

    EXPECT_EQ(r.profiles[0].kernel, direct.kernel);
    EXPECT_EQ(r.profiles[0].scale, direct.scale);
    EXPECT_EQ(r.profiles[0].seed, direct.seed);
    EXPECT_EQ(r.profiles[0].isolatedTicks, direct.isolatedTicks);
    EXPECT_EQ(r.profiles[0].demandWordsPerTick, direct.demandWordsPerTick);
    EXPECT_EQ(r.profiles[0].activations, direct.activations);
    EXPECT_EQ(r.profiles[0].usefulOps, direct.usefulOps);
    EXPECT_GT(direct.isolatedTicks, 0.0);
    EXPECT_GT(direct.demandWordsPerTick, 0.0);
}

TEST(Service, ZeroBandwidthResolvesToMemParamsDefault)
{
    driver::ServiceOptions o = smallService();
    o.traffic.requests = 4;
    arch::ServiceResult r = driver::runService(o);
    EXPECT_GT(arch::MultiCoreSystem::defaultBandwidth(), 0.0);
    EXPECT_EQ(r.bandwidthWordsPerTick,
              arch::MultiCoreSystem::defaultBandwidth());
}
