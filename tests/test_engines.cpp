/**
 * @file
 * Engine-level tests: hand-built blocks and sequential programs driven
 * through the BlockEngine and MimdEngine, checking dataflow firing
 * rules, revitalization semantics, register-commit ordering and the
 * mechanism flags' timing effects.
 */

#include <gtest/gtest.h>

#include "arch/configs.hh"
#include "core/block_engine.hh"
#include "core/mimd_engine.hh"
#include "sched/plan.hh"

using namespace dlp;
using namespace dlp::core;
using isa::MappedBlock;
using isa::MappedInst;
using isa::Op;
using isa::Target;

namespace {

MappedInst
inst(Op op, unsigned row, unsigned col, unsigned slot)
{
    MappedInst mi;
    mi.op = op;
    mi.row = static_cast<uint8_t>(row);
    mi.col = static_cast<uint8_t>(col);
    mi.slot = static_cast<uint8_t>(slot);
    mi.numSrcs = isa::opInfo(op).numSrcs;
    return mi;
}

/** A plan with one block: r10 = (7 + 8), written via the RF. */
sched::SimdPlan
tinyPlan(const MachineParams &m)
{
    sched::SimdPlan plan;
    plan.name = "tiny";
    plan.unroll = 1;
    plan.recBaseReg = 0;
    plan.initialRegs = {{0, 0}};

    sched::Segment seg;
    auto &b = seg.block;
    b.name = "tiny#0";
    b.rows = static_cast<uint8_t>(m.rows);
    b.cols = static_cast<uint8_t>(m.cols);
    b.slotsPerTile = static_cast<uint8_t>(m.frameSlots);

    MappedInst a = inst(Op::Movi, 1, 1, 0);
    a.imm = 7;
    a.overhead = true;
    a.targets.push_back(Target{2, 0, 0});

    MappedInst c = inst(Op::Movi, 2, 3, 0);
    c.imm = 8;
    c.overhead = true;
    c.targets.push_back(Target{2, 1, 0});

    MappedInst add = inst(Op::Add, 1, 2, 0);
    add.targets.push_back(Target{3, 0, 0});

    MappedInst wr = inst(Op::Write, 0, 0, 0);
    wr.imm = 10;
    wr.regTile = true;
    wr.overhead = true;

    b.insts = {a, c, add, wr};
    b.validate();
    plan.segments.push_back(std::move(seg));
    return plan;
}

} // namespace

TEST(BlockEngine, ExecutesADataflowChain)
{
    auto m = arch::configByName("S");
    mem::MemorySystem memory(m.memParams, true);
    BlockEngine engine(m, memory);
    auto plan = tinyPlan(m);
    auto stats = engine.run(plan, 1);
    EXPECT_EQ(engine.reg(10), 15u);
    EXPECT_EQ(stats.instsExecuted, 4u);
    EXPECT_EQ(stats.usefulOps, 1u); // just the Add
    EXPECT_GT(stats.cycles, 0u);
}

TEST(BlockEngine, RevitalizationReexecutesEveryActivation)
{
    auto m = arch::configByName("S");
    mem::MemorySystem memory(m.memParams, true);
    BlockEngine engine(m, memory);
    auto plan = tinyPlan(m);
    auto stats = engine.run(plan, 5); // unroll 1 -> 5 activations
    EXPECT_EQ(stats.activations, 5u);
    EXPECT_EQ(stats.instsExecuted, 20u);
    EXPECT_EQ(stats.mappings, 1u); // resident: mapped once
}

TEST(BlockEngine, BaselineRemapsEveryActivation)
{
    auto m = arch::configByName("baseline");
    mem::MemorySystem memory(m.memParams, false);
    BlockEngine engine(m, memory);
    auto plan = tinyPlan(m);
    auto stats = engine.run(plan, 5);
    EXPECT_EQ(stats.mappings, 5u);
}

TEST(BlockEngine, OnceOnlyFiresOnceWithOperandRevitalization)
{
    auto m = arch::configByName("S-O");
    mem::MemorySystem memory(m.memParams, true);
    BlockEngine engine(m, memory);
    auto plan = tinyPlan(m);
    // Mark the Movis once-only and the Add's operands persistent.
    for (auto &mi : plan.segments[0].block.insts)
        if (mi.op == Op::Movi)
            mi.onceOnly = true;
    plan.segments[0].block.insts[2].persistent[0] = true;
    plan.segments[0].block.insts[2].persistent[1] = true;

    auto stats = engine.run(plan, 4);
    // Activation 0: 4 insts; activations 1-3: Add + Write only.
    EXPECT_EQ(stats.instsExecuted, 4u + 3u * 2u);
    EXPECT_EQ(engine.reg(10), 15u);
}

TEST(BlockEngine, DeadlockedBlockPanics)
{
    auto m = arch::configByName("S");
    mem::MemorySystem memory(m.memParams, true);
    BlockEngine engine(m, memory);
    auto plan = tinyPlan(m);
    // Remove the producer of the Add's second operand.
    plan.segments[0].block.insts[1].targets.clear();
    EXPECT_THROW(engine.run(plan, 1), PanicError);
}

TEST(BlockEngine, RecBaseAdvancesPerGroup)
{
    auto m = arch::configByName("S");
    mem::MemorySystem memory(m.memParams, true);
    BlockEngine engine(m, memory);

    sched::SimdPlan plan;
    plan.name = "rb";
    plan.unroll = 4;
    plan.recBaseReg = 0;
    plan.initialRegs = {{0, 0}, {5, 0}};

    sched::Segment seg;
    auto &b = seg.block;
    b.name = "rb#0";
    b.rows = static_cast<uint8_t>(m.rows);
    b.cols = static_cast<uint8_t>(m.cols);
    b.slotsPerTile = static_cast<uint8_t>(m.frameSlots);
    // Read recBase -> write it to r5.
    MappedInst rd = inst(Op::Read, 0, 0, 0);
    rd.imm = 0;
    rd.regTile = true;
    rd.overhead = true;
    rd.targets.push_back(Target{1, 0, 0});
    MappedInst wr = inst(Op::Write, 0, 0, 0);
    wr.imm = 5;
    wr.regTile = true;
    wr.overhead = true;
    b.insts = {rd, wr};
    plan.segments.push_back(std::move(seg));

    engine.run(plan, 12); // 3 groups of 4
    EXPECT_EQ(engine.reg(5), 8u); // last group's base = 2 * 4
}

// ---------------------------------------------------------------------
// MIMD engine
// ---------------------------------------------------------------------

namespace {

/** Per-tile program: out[rec] = in[rec] + 100. */
sched::MimdPlan
mimdAddPlan()
{
    sched::MimdPlan plan;
    plan.name = "mimd-add";
    plan.recIdxReg = 0;
    plan.strideReg = 1;
    plan.recCountReg = 2;
    plan.layout.inBase = 0;
    plan.layout.outBase = 1000;

    using isa::SeqInst;
    auto &code = plan.program.code;
    auto push = [&](SeqInst si) { code.push_back(si); };

    SeqInst chk;
    chk.op = Op::Ltu;
    chk.rd = 10;
    chk.rs[0] = 0;
    chk.rs[1] = 2;
    chk.overhead = true;
    push(chk);
    SeqInst br;
    br.op = Op::Beqz;
    br.rs[0] = 10;
    br.branchTarget = 8;
    br.overhead = true;
    push(br);
    SeqInst ld;
    ld.op = Op::Ld;
    ld.rd = 11;
    ld.rs[0] = 0;
    ld.space = isa::MemSpace::Smc;
    ld.overhead = true;
    push(ld);
    SeqInst add;
    add.op = Op::Add;
    add.rd = 12;
    add.rs[0] = 11;
    add.imm = 100;
    add.immB = true;
    push(add);
    SeqInst addr;
    addr.op = Op::Add;
    addr.rd = 13;
    addr.rs[0] = 0;
    addr.imm = 1000;
    addr.immB = true;
    addr.overhead = true;
    push(addr);
    SeqInst st;
    st.op = Op::St;
    st.rs[0] = 13;
    st.rs[1] = 12;
    st.space = isa::MemSpace::Smc;
    st.overhead = true;
    push(st);
    SeqInst inc;
    inc.op = Op::Add;
    inc.rd = 0;
    inc.rs[0] = 0;
    inc.rs[1] = 1;
    inc.overhead = true;
    push(inc);
    SeqInst back;
    back.op = Op::Br;
    back.branchTarget = 0;
    back.overhead = true;
    push(back);
    SeqInst halt;
    halt.op = Op::Halt;
    halt.overhead = true;
    push(halt);

    plan.program.numRegs = 64;
    return plan;
}

} // namespace

TEST(MimdEngine, TilesStrideOverRecords)
{
    auto m = arch::configByName("M");
    mem::MemorySystem memory(m.memParams, true);
    MimdEngine engine(m, memory);

    const uint64_t records = 200; // not a multiple of 64
    for (uint64_t r = 0; r < records; ++r)
        memory.smc().poke(r, r * 3);

    auto plan = mimdAddPlan();
    auto stats = engine.run(plan, records);

    for (uint64_t r = 0; r < records; ++r)
        EXPECT_EQ(memory.smc().peek(1000 + r), r * 3 + 100) << r;
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(stats.usefulOps, records); // one useful Add per record
}

TEST(MimdEngine, ZeroRecordsHaltImmediately)
{
    auto m = arch::configByName("M");
    mem::MemorySystem memory(m.memParams, true);
    MimdEngine engine(m, memory);
    auto plan = mimdAddPlan();
    auto stats = engine.run(plan, 0);
    EXPECT_EQ(stats.usefulOps, 0u);
}

TEST(MimdEngine, MoreTilesMakeItFaster)
{
    auto runWith = [](unsigned rows, unsigned cols) {
        auto m = arch::configByName("M");
        m.rows = rows;
        m.cols = cols;
        m.memParams.rows = rows;
        mem::MemorySystem memory(m.memParams, true);
        MimdEngine engine(m, memory);
        for (uint64_t r = 0; r < 256; ++r)
            memory.smc().poke(r, r);
        auto plan = mimdAddPlan();
        return engine.run(plan, 256).cycles;
    };
    EXPECT_LT(runWith(8, 8), runWith(2, 2));
}
