/**
 * @file
 * The multi-core service driver: characterize the request classes of a
 * traffic mix through the ordinary sweep machinery, then serve the
 * generated schedule on an arch::MultiCoreSystem.
 *
 * Two-level strategy. Each distinct request class — a kernel from the
 * mix crossed with a dataset-seed slot — is simulated once, alone on
 * one grid core, through driver::runSweep: exactly the single-core
 * simulation the rest of the repo runs, so the per-core numbers are
 * bit-identical to a standalone run, the profile runs parallelize
 * across --jobs workers, and the result cache plus the persistent
 * store amortize them. The system level (queueing, dispatch, shared
 * L2/SMC contention) is then a strictly serial deterministic
 * composition of those profiles, so a service run is bit-reproducible
 * regardless of worker count — the property the determinism tests and
 * the CI golden diff assert.
 *
 * The dataset seed of slot s is traffic.seed + s: distinct slots read
 * distinct datasets, and the (kernel, batch, seed) triple is exactly an
 * experiment-store cell, so profile runs hit the same store entries a
 * plain sweep of those cells would.
 */

#ifndef DLP_DRIVER_SERVICE_HH
#define DLP_DRIVER_SERVICE_HH

#include <cstdint>
#include <string>

#include "arch/multicore.hh"
#include "traffic/generator.hh"

namespace dlp::driver {

struct ServiceOptions
{
    std::string config = "S-O-D";  ///< machine configuration per core
    unsigned cores = 1;
    /** Shared L2/SMC bandwidth, words/tick; 0 = the MemParams default
     *  (arch::MultiCoreSystem::defaultBandwidth). */
    double bandwidthWordsPerTick = 0.0;

    traffic::TrafficParams traffic;  ///< the open-loop load description

    /// @name Profile-sweep execution knobs (forwarded to runSweep).
    /// @{
    unsigned jobs = 0;      ///< 0 = DLP_JOBS default
    bool useCache = true;   ///< consult/fill the in-process result cache
    std::string storeDir;   ///< persistent store ("" = process default)
    /// @}

    /** Queue-depth sampling interval in ticks (0 = off). */
    uint64_t timeseriesInterval = 0;
};

/** The dataset seed a traffic seed-slot resolves to. */
inline uint64_t
slotSeed(const traffic::TrafficParams &t, uint32_t slot)
{
    return t.seed + slot;
}

/**
 * Derive one request class's profile from its single-core result:
 * service time (ticks) and shared-structure demand rate — SMC stream
 * words moved plus L1 miss line fills, per isolated tick.
 */
arch::RequestProfile profileFromResult(const arch::ExperimentResult &res,
                                       const std::string &config,
                                       uint64_t scale, uint64_t seed);

/**
 * Run a complete service experiment: profile every (mix kernel x seed
 * slot) class via runSweep, generate the arrival schedule, serve it on
 * a MultiCoreSystem, and — when auditing is enabled
 * (verify::auditEnabled) — record the multi-core conservation laws'
 * verdict on the result. Fatal on unknown kernels/config or a scale
 * the kernel rejects.
 */
arch::ServiceResult runService(const ServiceOptions &opts);

} // namespace dlp::driver

#endif // DLP_DRIVER_SERVICE_HH
