file(REMOVE_RECURSE
  "CMakeFiles/dlp_core.dir/block_engine.cc.o"
  "CMakeFiles/dlp_core.dir/block_engine.cc.o.d"
  "CMakeFiles/dlp_core.dir/mimd_engine.cc.o"
  "CMakeFiles/dlp_core.dir/mimd_engine.cc.o.d"
  "libdlp_core.a"
  "libdlp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
