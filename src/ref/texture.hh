/**
 * @file
 * Texture storage shared by the golden shader models and the simulator.
 *
 * Texels are packed into one 64-bit word as three 16-bit unsigned
 * channels (r | g<<16 | b<<32). A texture occupies a contiguous
 * word-addressed region so the simulated kernels can compute texel
 * addresses with shifts and masks; the same packing/addressing is used by
 * the reference shaders, keeping both implementations bit-compatible on
 * the integer side of sampling.
 */

#ifndef DLP_REF_TEXTURE_HH
#define DLP_REF_TEXTURE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace dlp::ref {

/** Pack three [0,1] channels into a texel word. */
Word packTexel(double r, double g, double b);

/** Unpack channel c (0=r,1=g,2=b) of a texel word to [0,1]. */
double unpackChannel(Word texel, unsigned c);

/** A power-of-two 2-D texture of packed texels. */
class Texture2D
{
  public:
    Texture2D(unsigned width, unsigned height);

    /** Fill with smooth deterministic noise. */
    void fillNoise(uint64_t seed);

    unsigned width() const { return w; }
    unsigned height() const { return h; }

    /** Wrapped (repeat-mode) texel fetch. */
    Word
    texel(int64_t x, int64_t y) const
    {
        uint64_t xi = static_cast<uint64_t>(x) & (w - 1);
        uint64_t yi = static_cast<uint64_t>(y) & (h - 1);
        return data[yi * w + xi];
    }

    /** Word offset of texel (x, y) within the texture region. */
    uint64_t
    texelOffset(int64_t x, int64_t y) const
    {
        uint64_t xi = static_cast<uint64_t>(x) & (w - 1);
        uint64_t yi = static_cast<uint64_t>(y) & (h - 1);
        return yi * w + xi;
    }

    /**
     * Bilinear sample at texel-space coordinates (u, v) measured in
     * texels; the reference shaders and the kernels share this exact
     * arithmetic (floor, fractional lerp on unpacked channels).
     */
    void sampleBilinear(double u, double v, double rgb[3]) const;

    /** Nearest-texel sample. */
    void sampleNearest(double u, double v, double rgb[3]) const;

    const std::vector<Word> &words() const { return data; }

    /** Copy the texture into a word-addressed memory region. */
    void
    blit(const std::function<void(uint64_t, Word)> &writeWord) const
    {
        for (uint64_t i = 0; i < data.size(); ++i)
            writeWord(i, data[i]);
    }

  private:
    unsigned w;
    unsigned h;
    std::vector<Word> data;
};

/** A six-face cube map. */
class CubeMap
{
  public:
    explicit CubeMap(unsigned faceSize);

    void fillNoise(uint64_t seed);

    unsigned faceSize() const { return size; }
    const Texture2D &face(unsigned f) const { return faces[f]; }

    /**
     * Select the face and in-face texel coordinates for direction
     * (x, y, z): the standard major-axis projection. Returns the face
     * index and writes texel-space u, v.
     */
    static unsigned project(double x, double y, double z, unsigned faceSize,
                            double &u, double &v);

    /** Bilinear cube sample along a direction. */
    void sample(double x, double y, double z, double rgb[3]) const;

  private:
    unsigned size;
    std::vector<Texture2D> faces;
};

} // namespace dlp::ref

#endif // DLP_REF_TEXTURE_HH
