/**
 * @file
 * Compatibility shim: the JSON document model moved to common/json.hh
 * (namespace dlp::json) so lower layers — the content-addressed result
 * store, the sweep driver, the sweepd wire protocol — can use it
 * without depending on the analysis library. Existing analysis-side
 * spellings (analysis::json::Value) keep working through this alias.
 */

#ifndef DLP_ANALYSIS_JSON_SHIM_HH
#define DLP_ANALYSIS_JSON_SHIM_HH

#include "common/json.hh"

namespace dlp::analysis {
namespace json = ::dlp::json;
} // namespace dlp::analysis

#endif // DLP_ANALYSIS_JSON_SHIM_HH
