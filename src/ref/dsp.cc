#include "ref/dsp.hh"

#include <cmath>

namespace dlp::ref {

const std::array<double, 9> &
yiqMatrix()
{
    static const std::array<double, 9> m = {
        0.299,  0.587,  0.114,
        0.596, -0.274, -0.322,
        0.211, -0.523,  0.312};
    return m;
}

void
rgbToYiq(const double rgb[3], double yiq[3])
{
    const auto &m = yiqMatrix();
    for (int r = 0; r < 3; ++r) {
        yiq[r] = m[3 * r] * rgb[0] + m[3 * r + 1] * rgb[1] +
                 m[3 * r + 2] * rgb[2];
    }
}

const std::array<double, 8> &
dctCosines()
{
    static const std::array<double, 8> c = [] {
        std::array<double, 8> v{};
        for (int k = 0; k < 8; ++k)
            v[k] = std::cos(k * M_PI / 16.0);
        return v;
    }();
    return c;
}

void
dct1d8(const double in[8], double out[8])
{
    const auto &c = dctCosines();

    // Even/odd split.
    double a0 = in[0] + in[7];
    double a1 = in[1] + in[6];
    double a2 = in[2] + in[5];
    double a3 = in[3] + in[4];
    double b0 = in[0] - in[7];
    double b1 = in[1] - in[6];
    double b2 = in[2] - in[5];
    double b3 = in[3] - in[4];

    // Even coefficients.
    out[0] = (a0 + a1) + (a2 + a3);
    out[4] = c[4] * ((a0 - a1) - (a2 - a3));
    double e0 = a0 - a3;
    double e1 = a1 - a2;
    out[2] = c[2] * e0 + c[6] * e1;
    out[6] = c[6] * e0 - c[2] * e1;

    // Odd coefficients (direct 4x4).
    out[1] = c[1] * b0 + c[3] * b1 + c[5] * b2 + c[7] * b3;
    out[3] = c[3] * b0 - c[7] * b1 - c[1] * b2 - c[5] * b3;
    out[5] = c[5] * b0 - c[1] * b1 + c[7] * b2 + c[3] * b3;
    out[7] = c[7] * b0 - c[5] * b1 + c[3] * b2 - c[1] * b3;
}

void
dct8x8(const double in[64], double out[64])
{
    double mid[64];
    // Columns first.
    for (int col = 0; col < 8; ++col) {
        double v[8], d[8];
        for (int j = 0; j < 8; ++j)
            v[j] = in[8 * j + col];
        dct1d8(v, d);
        for (int j = 0; j < 8; ++j)
            mid[8 * j + col] = d[j];
    }
    // Then rows.
    for (int row = 0; row < 8; ++row)
        dct1d8(mid + 8 * row, out + 8 * row);
}

void
dct8x8Naive(const double in[64], double out[64])
{
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            double sum = 0.0;
            for (int y = 0; y < 8; ++y)
                for (int x = 0; x < 8; ++x)
                    sum += in[8 * y + x] *
                           std::cos((2 * y + 1) * u * M_PI / 16.0) *
                           std::cos((2 * x + 1) * v * M_PI / 16.0);
            out[8 * u + v] = sum;
        }
    }
}

const std::array<double, 9> &
highpassKernel()
{
    static const std::array<double, 9> k = {
        -1.0 / 9, -1.0 / 9, -1.0 / 9,
        -1.0 / 9,  8.0 / 9, -1.0 / 9,
        -1.0 / 9, -1.0 / 9, -1.0 / 9};
    return k;
}

double
highpass3x3(const double window[9])
{
    const auto &k = highpassKernel();
    double acc = 0.0;
    for (int i = 0; i < 9; ++i)
        acc += k[i] * window[i];
    return acc;
}

} // namespace dlp::ref
