#include "isa/disasm.hh"

#include <sstream>

namespace dlp::isa {

namespace {

const char *
spaceName(MemSpace s)
{
    switch (s) {
      case MemSpace::None:   return "-";
      case MemSpace::Smc:    return "smc";
      case MemSpace::Cached: return "l1";
      case MemSpace::Table:  return "tab";
    }
    return "?";
}

} // namespace

std::string
disasm(const MappedInst &mi)
{
    std::ostringstream os;
    os << "[" << int(mi.row) << "," << int(mi.col) << ":" << int(mi.slot);
    if (mi.regTile)
        os << "r";
    os << "] " << opName(mi.op);
    if (mi.op == Op::Movi || mi.op == Op::Read || mi.op == Op::Write)
        os << " #" << mi.imm;
    else if (mi.immB)
        os << " b=#" << mi.imm; // second operand from the immediate field
    if (mi.space != MemSpace::None) {
        os << " @" << spaceName(mi.space);
        if (mi.op == Op::Lmw) {
            os << " x" << int(mi.lmwCount);
            if (mi.lmwStride != 1)
                os << "*" << int(mi.lmwStride);
        }
        if (mi.op == Op::Tld)
            os << " t" << mi.tableId;
    }
    // Operand-revitalization state: which waiting slots survive a
    // revitalize, and whether the instruction fires only once.
    bool anyPersistent = false;
    for (unsigned s = 0; s < mi.numSrcs && s < maxSrcs; ++s)
        anyPersistent |= mi.persistent[s];
    if (anyPersistent) {
        os << " ^p";
        for (unsigned s = 0; s < mi.numSrcs && s < maxSrcs; ++s)
            if (mi.persistent[s])
                os << s;
    }
    if (mi.onceOnly)
        os << " !once";
    if (!mi.targets.empty()) {
        os << " ->";
        for (const auto &t : mi.targets) {
            os << " i" << t.inst << "." << int(t.srcSlot);
            if (t.wordIdx)
                os << "w" << int(t.wordIdx);
        }
    }
    if (mi.overhead)
        os << " ;ovh";
    return os.str();
}

std::string
disasm(const SeqInst &si)
{
    std::ostringstream os;
    os << opName(si.op) << " r" << int(si.rd);
    const auto &info = opInfo(si.op);
    for (unsigned s = 0; s < info.numSrcs; ++s)
        os << ", r" << int(si.rs[s]);
    if (si.op == Op::Movi || si.op == Op::Ld || si.op == Op::St)
        os << ", #" << si.imm;
    if (isCtrlOp(si.op) && si.op != Op::Halt)
        os << " -> " << si.branchTarget;
    if (si.space != MemSpace::None)
        os << " @" << spaceName(si.space);
    if (si.overhead)
        os << " ;ovh";
    return os.str();
}

std::string
disasm(const MappedBlock &block)
{
    std::ostringstream os;
    os << "block " << block.name << " (" << block.insts.size()
       << " insts on " << int(block.rows) << "x" << int(block.cols)
       << " grid)\n";
    for (size_t i = 0; i < block.insts.size(); ++i)
        os << "  i" << i << ": " << disasm(block.insts[i]) << "\n";
    return os.str();
}

std::string
disasm(const SeqProgram &prog)
{
    std::ostringstream os;
    os << "program " << prog.name << " (" << prog.code.size() << " insts, "
       << prog.numRegs << " regs)\n";
    for (size_t i = 0; i < prog.code.size(); ++i)
        os << "  " << i << ": " << disasm(prog.code[i]) << "\n";
    return os.str();
}

} // namespace dlp::isa
