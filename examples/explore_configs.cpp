/**
 * @file
 * Configuration-exploration example: take any benchmark kernel from the
 * command line, run it across every Table 5 machine configuration, and
 * report which mechanisms pay off -- the "dynamically tailor the
 * architecture to the application" workflow the paper proposes.
 *
 *   ./build/examples/explore_configs blowfish
 *   ./build/examples/explore_configs vertex-skinning 4096
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "kernels/workload.hh"

using namespace dlp;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    std::string kernel = argc > 1 ? argv[1] : "blowfish";
    uint64_t scale = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                              : kernels::defaultScale(kernel);

    std::printf("exploring machine configurations for '%s' (scale %llu)\n\n",
                kernel.c_str(), (unsigned long long)scale);
    std::printf("  %-9s %12s %10s %12s %10s\n", "config", "cycles",
                "ops/cyc", "activations", "speedup");

    Cycles base = 0;
    std::string best;
    Cycles bestCycles = ~Cycles(0);
    for (const auto &config : arch::allConfigNames()) {
        auto wl = kernels::makeWorkload(kernel, scale, 11);
        arch::TripsProcessor cpu(arch::configByName(config));
        auto res = cpu.run(*wl);
        fatal_if(!res.verified, "%s on %s: %s", kernel.c_str(),
                 config.c_str(), res.error.c_str());
        if (config == "baseline")
            base = res.cycles;
        if (res.cycles < bestCycles) {
            bestCycles = res.cycles;
            best = config;
        }
        std::printf("  %-9s %12llu %10.2f %12llu %9.2fx\n", config.c_str(),
                    (unsigned long long)res.cycles, res.opsPerCycle(),
                    (unsigned long long)res.activations,
                    double(base) / double(res.cycles));
    }
    std::printf("\n  -> best configuration for %s: %s\n", kernel.c_str(),
                best.c_str());
    return 0;
}
