/**
 * @file
 * The sweepd client: submit a batched slice of the experiment space to
 * a running sweepd (examples/sweepd.cpp) and collect the streamed
 * results into the standard sweep JSON document.
 *
 * Plan construction takes the same flags as examples/sweep.cpp, so a
 * client run and a direct local sweep of the same slice produce
 * field-for-field identical "experiments" arrays (the wire carries
 * the store codec's full-fidelity documents):
 *
 *   ./build/examples/sweep_client --socket /tmp/sweepd.sock \
 *       --kernels fft,lu --configs S,M-D --scale-div 4
 *
 * Options:
 *   --socket PATH        sweepd socket (default: sweepd.sock)
 *   --kernels a,b,...    kernel names, or "all" (default: the Table 4
 *                        performance suite)
 *   --configs a,b,...    configuration names, or "all" (default: all)
 *   --scale-div n,m,...  scale divisors (default: 1)
 *   --seeds a,b or a..b  dataset seeds, list or range (default: 1234)
 *   --json FILE          output path (default: SWEEP_CLIENT.json)
 *   --shutdown           ask the server to exit after this batch
 *   --quiet              suppress per-result progress lines
 *
 * The document gains a "serve" object — the server's lifetime
 * counters after this batch (requests, cells, dedupedInFlight,
 * storeHits, computed) — so in-flight dedup is observable: submit
 * --seeds 7,7 and dedupedInFlight rises by the duplicated cell count.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "analysis/experiments.hh"
#include "analysis/export.hh"
#include "arch/configs.hh"
#include "common/logging.hh"
#include "serve/protocol.hh"
#include "store/codec.hh"

using namespace dlp;

namespace {

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > start)
            out.push_back(arg.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** Parse "7" or "3..9" (inclusive) into a list of integers. */
std::vector<uint64_t>
parseNumbers(const std::string &arg)
{
    std::vector<uint64_t> out;
    for (const auto &tok : splitList(arg)) {
        size_t dots = tok.find("..");
        if (dots == std::string::npos) {
            out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
            continue;
        }
        uint64_t lo = std::strtoull(tok.substr(0, dots).c_str(), nullptr, 10);
        uint64_t hi =
            std::strtoull(tok.substr(dots + 2).c_str(), nullptr, 10);
        fatal_if(hi < lo || hi - lo > 4096, "bad range '%s'", tok.c_str());
        for (uint64_t v = lo; v <= hi; ++v)
            out.push_back(v);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    std::string socketPath = "sweepd.sock";
    std::vector<std::string> kernels = analysis::perfKernels();
    std::vector<std::string> configs = arch::allConfigNames();
    std::vector<uint64_t> scaleDivs = {1};
    std::vector<uint64_t> seeds = {1234};
    std::string jsonPath = "SWEEP_CLIENT.json";
    bool shutdown = false;
    bool quiet = false;

    auto value = [&](int &i) -> const char * {
        fatal_if(i + 1 >= argc, "%s needs an argument", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0) {
            socketPath = value(i);
        } else if (std::strcmp(argv[i], "--kernels") == 0) {
            std::string v = value(i);
            if (v != "all")
                kernels = splitList(v);
        } else if (std::strcmp(argv[i], "--configs") == 0) {
            std::string v = value(i);
            if (v != "all")
                configs = splitList(v);
        } else if (std::strcmp(argv[i], "--scale-div") == 0) {
            scaleDivs = parseNumbers(value(i));
        } else if (std::strcmp(argv[i], "--seeds") == 0) {
            seeds = parseNumbers(value(i));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            jsonPath = value(i);
        } else if (std::strcmp(argv[i], "--shutdown") == 0) {
            shutdown = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            fatal("unknown option '%s' (see the header of "
                  "examples/sweep_client.cpp)", argv[i]);
        }
    }

    driver::SweepPlan plan;
    for (uint64_t seed : seeds)
        for (uint64_t div : scaleDivs)
            plan.addGrid(kernels, configs, div, seed);
    fatal_if(plan.empty(), "empty plan");

    int fd = serve::connectUnix(socketPath);
    fatal_if(!serve::writeLine(fd, serve::sweepRequest("batch", plan)),
             "sweepd went away while sending the request");
    std::printf("sweep_client: %zu task(s) submitted to %s\n", plan.size(),
                socketPath.c_str());

    std::vector<arch::ExperimentResult> results(plan.size());
    std::vector<bool> have(plan.size(), false);
    json::Value counters;
    serve::LineReader reader;
    std::string line;
    size_t received = 0;
    bool done = false;
    while (!done) {
        fatal_if(!serve::readMessage(fd, reader, line),
                 "connection closed before the batch finished");
        json::Value msg = json::parse(line);
        std::string type = msg.at("type").asString();
        if (type == "result") {
            size_t index = size_t(msg.at("index").asNumber());
            fatal_if(index >= plan.size() || have[index],
                     "bogus result index %zu", index);
            results[index] = store::resultFromJson(msg.at("result"));
            have[index] = true;
            ++received;
            if (!quiet) {
                std::printf("  [%3zu/%3zu] %s/%s%s\n", received,
                            plan.size(), results[index].kernel.c_str(),
                            results[index].config.c_str(),
                            msg.at("cached").asBool() ? " (warm)" : "");
                std::fflush(stdout);
            }
        } else if (type == "done") {
            counters = msg.at("counters");
            done = true;
        } else if (type == "error") {
            if (const json::Value *index = msg.find("index"))
                fatal("sweepd error on task %" PRIu64 ": %s",
                      index->asUInt64(),
                      msg.at("message").asString().c_str());
            fatal("sweepd error: %s", msg.at("message").asString().c_str());
        } else {
            fatal("unexpected message type '%s'", type.c_str());
        }
    }
    fatal_if(received != plan.size(),
             "server finished after %zu of %zu results", received,
             plan.size());

    if (shutdown) {
        serve::writeLine(fd, serve::simpleRequest("bye", "shutdown"));
        serve::readMessage(fd, reader, line);  // wait for the ack
    }
    ::close(fd);

    std::printf("batch done: %" PRIu64 " deduped in flight, %" PRIu64
                " store hit(s), %" PRIu64 " computed\n",
                uint64_t(counters.at("dedupedInFlight").asNumber()),
                uint64_t(counters.at("storeHits").asNumber()),
                uint64_t(counters.at("computed").asNumber()));

    analysis::json::Value doc = analysis::toJson(results);
    doc.set("sweep", "client");
    doc.set("serve", counters);
    analysis::writeJsonFile(jsonPath, doc);
    std::printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
