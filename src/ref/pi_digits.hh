/**
 * @file
 * Hexadecimal digits of pi via the Bailey-Borwein-Plouffe formula.
 *
 * Blowfish initializes its P-array and S-boxes from the fractional hex
 * digits of pi. Rather than embedding kilobytes of literal tables, we
 * compute the digits with the BBP digit-extraction algorithm using exact
 * 128-bit modular arithmetic, and validate the first digits against the
 * well-known value 0x243F6A8885A308D3... (which is also Blowfish's P[0]).
 */

#ifndef DLP_REF_PI_DIGITS_HH
#define DLP_REF_PI_DIGITS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlp::ref {

/**
 * Return `count` 32-bit words of the fractional hex expansion of pi,
 * most-significant digit first (word 0 is 0x243F6A88).
 */
std::vector<uint32_t> piFractionWords(size_t count);

/** Eight hex digits (one 32-bit word) starting at hex-digit position n
 *  (n = 0 is the first fractional digit, '2'). */
uint32_t piHexWordAt(uint64_t n);

} // namespace dlp::ref

#endif // DLP_REF_PI_DIGITS_HH
