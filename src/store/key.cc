#include "store/key.hh"

#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "arch/configs.hh"
#include "kernels/catalog.hh"

namespace dlp::store {

namespace {

/// Guards the per-name digest caches and the code-version override.
std::mutex keyMutex;

void
foldNode(Fnv1a128 &h, const kernels::Node &n)
{
    h.addU64(static_cast<uint64_t>(n.kind));
    h.addU64(static_cast<uint64_t>(n.op));
    for (auto s : n.src)
        h.addU64(s);
    h.addU64(n.imm);
    h.addU64(n.loop);
    h.addU64(n.overhead ? 1 : 0);
    h.addU64(n.immB ? 1 : 0);
}

} // namespace

void
foldKernel(Fnv1a128 &h, const kernels::Kernel &k)
{
    h.addString(k.name);
    h.addU64(static_cast<uint64_t>(k.domain));
    h.addU64(k.inWords);
    h.addU64(k.outWords);
    h.addU64(k.scratchWords);
    h.addU64(k.irregularBytes);

    h.addU64(k.constants.size());
    for (const auto &c : k.constants) {
        h.addString(c.name);
        h.addU64(c.value);
    }
    h.addU64(k.tables.size());
    for (const auto &t : k.tables) {
        h.addString(t.name);
        h.addU64(t.data.size());
        for (auto w : t.data)
            h.addU64(w);
    }
    h.addU64(k.nodes.size());
    for (const auto &n : k.nodes)
        foldNode(h, n);
    h.addU64(k.loops.size());
    for (const auto &l : k.loops) {
        h.addU64(l.parent);
        h.addU64(l.staticTrip);
        h.addU64(l.tripValue);
        h.addU64(l.maxTrip);
        h.addU64(l.carries.size());
        for (auto c : l.carries)
            h.addU64(c);
    }
    h.addU64(k.carries.size());
    for (const auto &c : k.carries) {
        h.addU64(c.node);
        h.addU64(c.init);
        h.addU64(c.next);
        h.addU64(c.loop);
    }
}

void
foldMachine(Fnv1a128 &h, const core::MachineParams &m)
{
    h.addString(m.name);
    h.addU64(m.rows);
    h.addU64(m.cols);
    h.addU64(m.frameSlots);
    h.addU64(m.tileRegs);
    h.addU64(m.l0InstEntries);
    h.addU64(m.l0DataBytes);
    h.addU64(m.l0Latency);
    h.addU64(m.hopTicks);
    h.addU64(m.mimdOutstandingLoads);
    h.addU64(m.regBanks);
    h.addU64(m.numRegs);
    h.addU64(m.regLatency);
    h.addU64(m.mapBandwidth);
    h.addU64(m.mapOverhead);
    h.addU64(m.revitalizeDelay);
    h.addU64(m.pipelineFrames);
    h.addU64(m.injectInterval);

    h.addU64(m.mech.smc ? 1 : 0);
    h.addU64(m.mech.instRevitalize ? 1 : 0);
    h.addU64(m.mech.operandRevitalize ? 1 : 0);
    h.addU64(m.mech.l0DataStore ? 1 : 0);
    h.addU64(m.mech.localPC ? 1 : 0);

    const auto &mp = m.memParams;
    h.addU64(mp.rows);
    h.addU64(mp.smcBankBytes);
    h.addU64(mp.smcLatency);
    h.addU64(mp.smcWordsPerCycle);
    h.addU64(mp.storeBufWordsPerCycle);
    h.addU64(mp.l1Bytes);
    h.addU64(mp.l1Assoc);
    h.addU64(mp.lineBytes);
    h.addU64(mp.l1HitLatency);
    h.addU64(mp.l2Bytes);
    h.addU64(mp.l2Assoc);
    h.addU64(mp.l2Latency);
    h.addU64(mp.memLatency);
    h.addU64(mp.memWordsPerCycle);
}

Hash128
kernelIrHash(const std::string &kernelName)
{
    std::lock_guard<std::mutex> lock(keyMutex);
    static std::map<std::string, Hash128> cache;
    auto it = cache.find(kernelName);
    if (it == cache.end()) {
        Fnv1a128 h;
        foldKernel(h, kernels::kernelByName(kernelName));
        it = cache.emplace(kernelName, h.digest()).first;
    }
    return it->second;
}

Hash128
machineHash(const std::string &configName)
{
    std::lock_guard<std::mutex> lock(keyMutex);
    static std::map<std::string, Hash128> cache;
    auto it = cache.find(configName);
    if (it == cache.end()) {
        Fnv1a128 h;
        foldMachine(h, arch::configByName(configName));
        it = cache.emplace(configName, h.digest()).first;
    }
    return it->second;
}

namespace {

std::string codeVersionOverride;

std::string
defaultCodeVersion()
{
    if (const char *env = std::getenv("DLP_CODE_VERSION"); env && *env)
        return env;
    // The library's compile-time stamp: a rebuild defaults to a cold
    // store rather than risking stale results from an older binary.
    return __DATE__ " " __TIME__;
}

} // namespace

std::string
codeVersion()
{
    std::lock_guard<std::mutex> lock(keyMutex);
    if (!codeVersionOverride.empty())
        return codeVersionOverride;
    static const std::string stamp = defaultCodeVersion();
    return stamp;
}

void
setCodeVersion(const std::string &version)
{
    std::lock_guard<std::mutex> lock(keyMutex);
    codeVersionOverride = version;
}

std::string
experimentKey(const std::string &kernel, const std::string &config,
              uint64_t scale, uint64_t seed)
{
    Fnv1a128 h;
    h.addU64(keyFormatVersion);
    h.addString(codeVersion());
    Hash128 kh = kernelIrHash(kernel);
    h.addU64(kh.hi);
    h.addU64(kh.lo);
    Hash128 mh = machineHash(config);
    h.addU64(mh.hi);
    h.addU64(mh.lo);
    h.addU64(scale);
    h.addU64(seed);
    return h.digest().hex();
}

namespace {

/** Fold a double by its exact IEEE-754 bit pattern. */
void
foldDouble(Fnv1a128 &h, double d)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    h.addU64(bits);
}

} // namespace

std::string
serviceKey(const std::string &config, unsigned cores,
           double bandwidthWordsPerTick, const traffic::TrafficParams &t)
{
    Fnv1a128 h;
    h.addU64(keyFormatVersion);
    h.addString(codeVersion());
    Hash128 mh = machineHash(config);
    h.addU64(mh.hi);
    h.addU64(mh.lo);
    h.addU64(cores);
    foldDouble(h, bandwidthWordsPerTick);
    foldDouble(h, t.rps);
    h.addU64(t.requests);
    h.addU64(t.batch);
    h.addU64(t.seed);
    h.addU64(t.seedPool);
    foldDouble(h, t.ticksPerSec);
    h.addU64(static_cast<uint64_t>(t.arrival));
    h.addU64(t.mix.size());
    for (const auto &e : t.mix) {
        Hash128 kh = kernelIrHash(e.kernel);
        h.addU64(kh.hi);
        h.addU64(kh.lo);
        h.addU64(e.weight);
    }
    return h.digest().hex();
}

} // namespace dlp::store
