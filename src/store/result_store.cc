#include "store/result_store.hh"

#include <fcntl.h>
#include <unistd.h>

#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/hash.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/timeline.hh"
#include "store/codec.hh"
#include "store/key.hh"

namespace fs = std::filesystem;

namespace dlp::store {

namespace {

/** Whole-file read; returns false if the file cannot be opened. */
bool
slurp(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return in.good() || in.eof();
}

} // namespace

ResultStore::ResultStore(std::string directory) : root(std::move(directory))
{
    fatal_if(root.empty(), "result store with empty directory");
    std::error_code ec;
    fs::create_directories(fs::path(root) / "objects", ec);
    fatal_if(ec.operator bool(), "cannot create store directory '%s': %s",
             root.c_str(), ec.message().c_str());
}

std::string
ResultStore::entryPath(const std::string &key) const
{
    fatal_if(key.size() < 2, "malformed store key '%s'", key.c_str());
    return (fs::path(root) / "objects" / key.substr(0, 2) / (key + ".json"))
        .string();
}

std::string
ResultStore::indexPath() const
{
    return (fs::path(root) / "index.ndjson").string();
}

ResultStore::ReadStatus
ResultStore::readRawEntry(const std::string &key, json::Value *out)
{
    std::string text;
    if (!slurp(entryPath(key), text))
        return ReadStatus::Absent;

    // Anything wrong past this point — malformed JSON, missing fields,
    // checksum or version or key mismatch — is a defect in the entry,
    // never a crash: the caller treats it as a miss and recomputes.
    try {
        json::Value doc = json::parse(text);
        if (static_cast<uint64_t>(doc.at("format").asNumber()) !=
            codecFormatVersion)
            return ReadStatus::Corrupt;
        // The code version rides inside the key, so a well-formed entry
        // under this key must carry the current version; anything else
        // was tampered with or copied across builds.
        if (doc.at("codeVersion").asString() != codeVersion())
            return ReadStatus::Corrupt;
        if (doc.at("key").asString() != key)
            return ReadStatus::Corrupt;
        const json::Value &result = doc.at("result");
        if (fnv1a128(json::write(result, 0)).hex() !=
            doc.at("checksum").asString())
            return ReadStatus::Corrupt;
        if (out)
            *out = result;
        return ReadStatus::Ok;
    } catch (const std::exception &) {
        return ReadStatus::Corrupt;
    }
}

ResultStore::ReadStatus
ResultStore::readEntry(const std::string &key, arch::ExperimentResult *out)
{
    json::Value result;
    ReadStatus st = readRawEntry(key, out ? &result : nullptr);
    if (st != ReadStatus::Ok || !out)
        return st;
    try {
        *out = resultFromJson(result);
    } catch (const std::exception &) {
        return ReadStatus::Corrupt;
    }
    return ReadStatus::Ok;
}

bool
ResultStore::lookup(const std::string &key, arch::ExperimentResult &out)
{
    ReadStatus st = readEntry(key, &out);
    if (st == ReadStatus::Ok) {
        {
            std::lock_guard<std::mutex> lock(mu);
            ++hitCount;
        }
        obs::hostInstant(obs::Cat::Store, "hit",
                         out.kernel + "/" + out.config);
        return true;
    }
    if (st == ReadStatus::Corrupt) {
        // Repair: drop the bad entry so the recompute's insert replaces
        // it instead of leaving a poisoned file behind.
        std::error_code ec;
        fs::remove(entryPath(key), ec);
        {
            std::lock_guard<std::mutex> lock(mu);
            ++corruptCount;
        }
        obs::hostInstant(obs::Cat::Store, "corrupt", key.substr(0, 12));
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        ++missCount;
    }
    obs::hostInstant(obs::Cat::Store, "miss", key.substr(0, 12));
    return false;
}

void
ResultStore::publishEntry(const std::string &key, json::Value result,
                          const std::string &kernel,
                          const std::string &config)
{
    std::string resultText = json::write(result, 0);

    json::Value doc = json::Value::object();
    doc.set("format", codecFormatVersion);
    doc.set("codeVersion", codeVersion());
    doc.set("key", key);
    doc.set("checksum", fnv1a128(resultText).hex());
    doc.set("result", std::move(result));
    std::string text = json::write(doc, 0);
    text += '\n';

    std::string finalPath = entryPath(key);
    fs::path dir = fs::path(finalPath).parent_path();
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatal_if(ec.operator bool(), "cannot create '%s': %s",
             dir.string().c_str(), ec.message().c_str());

    // Write-to-temp + rename: readers never see a partial entry, and a
    // concurrent insert of the same key races benignly (deterministic
    // results mean both writers produced identical bytes).
    std::string tmpPath =
        finalPath + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream tmp(tmpPath, std::ios::binary | std::ios::trunc);
        fatal_if(!tmp, "cannot open '%s' for writing", tmpPath.c_str());
        tmp << text;
        tmp.close();
        fatal_if(!tmp, "failed writing '%s'", tmpPath.c_str());
    }
    fs::rename(tmpPath, finalPath, ec);
    if (ec) {
        fs::remove(tmpPath, ec);
        fatal("cannot publish store entry '%s'", finalPath.c_str());
    }

    appendIndexLine(key, kernel, config, text.size());
    {
        std::lock_guard<std::mutex> lock(mu);
        ++insertCount;
    }
    obs::hostInstant(obs::Cat::Store, "insert", kernel + "/" + config);
}

void
ResultStore::insert(const std::string &key, const arch::ExperimentResult &r)
{
    publishEntry(key, resultToJson(r), r.kernel, r.config);
}

bool
ResultStore::lookupRaw(const std::string &key, json::Value &out)
{
    ReadStatus st = readRawEntry(key, &out);
    if (st == ReadStatus::Ok) {
        {
            std::lock_guard<std::mutex> lock(mu);
            ++hitCount;
        }
        obs::hostInstant(obs::Cat::Store, "hit", key.substr(0, 12));
        return true;
    }
    if (st == ReadStatus::Corrupt) {
        std::error_code ec;
        fs::remove(entryPath(key), ec);
        {
            std::lock_guard<std::mutex> lock(mu);
            ++corruptCount;
        }
        obs::hostInstant(obs::Cat::Store, "corrupt", key.substr(0, 12));
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        ++missCount;
    }
    obs::hostInstant(obs::Cat::Store, "miss", key.substr(0, 12));
    return false;
}

void
ResultStore::insertRaw(const std::string &key, const json::Value &doc,
                       const std::string &kind)
{
    publishEntry(key, doc, kind, "");
}

void
ResultStore::appendIndexLine(const std::string &key,
                             const std::string &kernel,
                             const std::string &config, uint64_t bytes)
{
    json::Value line = json::Value::object();
    line.set("key", key);
    line.set("kernel", kernel);
    line.set("config", config);
    line.set("bytes", bytes);
    std::string text = json::write(line, 0);
    text += '\n';

    // A single short append write is atomic enough for an advisory
    // index: worst case a torn tail line, which every reader skips.
    int fd = ::open(indexPath().c_str(), O_WRONLY | O_APPEND | O_CREAT,
                    0644);
    fatal_if(fd < 0, "cannot open store index '%s'", indexPath().c_str());
    ssize_t n = ::write(fd, text.data(), text.size());
    ::close(fd);
    if (n != ssize_t(text.size()))
        warn("short write to store index '%s'", indexPath().c_str());
}

bool
ResultStore::verifyEntry(const std::string &key)
{
    return readEntry(key, nullptr) == ReadStatus::Ok;
}

StoreStats
ResultStore::stats()
{
    StoreStats s;
    {
        std::lock_guard<std::mutex> lock(mu);
        s.hits = hitCount;
        s.misses = missCount;
        s.inserts = insertCount;
        s.corrupt = corruptCount;
    }

    // The index is advisory and append-only: tolerate garbage lines
    // (torn tails, partial writes) by skipping them, and deduplicate by
    // key so re-inserts and concurrent writers do not double-count.
    std::ifstream in(indexPath());
    std::map<std::string, uint64_t> byKey;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        try {
            json::Value v = json::parse(line);
            byKey[v.at("key").asString()] =
                static_cast<uint64_t>(v.at("bytes").asNumber());
        } catch (const std::exception &) {
            continue;
        }
    }
    s.entries = byKey.size();
    for (const auto &[key, bytes] : byKey)
        s.bytes += bytes;
    return s;
}

void
ResultStore::rebuildIndex()
{
    std::string fresh;
    std::error_code ec;
    for (const auto &shard :
         fs::directory_iterator(fs::path(root) / "objects", ec)) {
        if (!shard.is_directory())
            continue;
        for (const auto &entry : fs::directory_iterator(shard.path())) {
            if (entry.path().extension() != ".json")
                continue;
            std::string key = entry.path().stem().string();
            std::string text;
            if (!slurp(entry.path().string(), text))
                continue;
            try {
                json::Value doc = json::parse(text);
                const json::Value &result = doc.at("result");
                // Raw documents (service runs) carry no "kernel" field;
                // index them under their document kind.
                const json::Value *kernel = result.find("kernel");
                const json::Value *config = result.find("config");
                json::Value line = json::Value::object();
                line.set("key", key);
                line.set("kernel",
                         kernel ? kernel->asString() : "service");
                line.set("config", config ? config->asString() : "");
                line.set("bytes", uint64_t(text.size()));
                fresh += json::write(line, 0);
                fresh += '\n';
            } catch (const std::exception &) {
                continue; // unreadable entries stay unindexed
            }
        }
    }

    std::string tmpPath = indexPath() + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream tmp(tmpPath, std::ios::binary | std::ios::trunc);
        fatal_if(!tmp, "cannot open '%s' for writing", tmpPath.c_str());
        tmp << fresh;
        tmp.close();
        fatal_if(!tmp, "failed writing '%s'", tmpPath.c_str());
    }
    fs::rename(tmpPath, indexPath(), ec);
    fatal_if(ec.operator bool(), "cannot replace store index '%s'",
             indexPath().c_str());
}

} // namespace dlp::store
