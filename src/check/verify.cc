#include "check/verify.hh"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "check/rules.hh"
#include "common/logging.hh"

namespace dlp::check {

namespace {

void
checkPlanReg(const std::string &program, unsigned reg, unsigned limit,
             const char *what, Report &rep)
{
    if (reg >= limit) {
        std::ostringstream os;
        os << what << " r" << reg << " >= " << limit
           << " machine registers";
        rep.add("CFG-REG", program, -1, -1, os.str());
    }
}

} // namespace

Report
verify(const MappedProgram &prog, const core::MachineParams &m)
{
    panic_if(!!prog.simd == !!prog.mimd,
             "check::verify needs exactly one of simd/mimd");
    Report rep;
    rep.config = m.name;

    if (prog.simd) {
        const sched::SimdPlan &plan = *prog.simd;
        rep.program = plan.name;
        checkPlanReg(plan.name, plan.recBaseReg, m.numRegs,
                     "record-base register", rep);
        for (const auto &[reg, value] : plan.initialRegs) {
            (void)value;
            checkPlanReg(plan.name, reg, m.numRegs, "initial register",
                         rep);
        }
        for (const auto &seg : plan.segments) {
            BlockCtx ctx{m, prog.kernel, &plan.layout,
                         plan.resident() || seg.activations > 1};
            checkBlock(seg.block, ctx, rep);
            ++rep.blocks;
            rep.insts += seg.block.insts.size();
        }
    } else {
        const sched::MimdPlan &plan = *prog.mimd;
        rep.program = plan.name;
        checkSeq(plan.program, m, prog.kernel, rep);
        checkPlanReg(plan.name, plan.recIdxReg, m.tileRegs,
                     "record-index register", rep);
        checkPlanReg(plan.name, plan.strideReg, m.tileRegs,
                     "stride register", rep);
        checkPlanReg(plan.name, plan.recCountReg, m.tileRegs,
                     "record-count register", rep);
        for (const auto &[reg, value] : plan.initialRegs) {
            (void)value;
            checkPlanReg(plan.name, reg, m.tileRegs, "initial register",
                         rep);
        }
        ++rep.blocks;
        rep.insts += plan.program.code.size();
    }

    if (prog.kernel)
        checkTableBudget(*prog.kernel, m, rep);
    rep.sortFindings();
    return rep;
}

Report
verifyBlock(const isa::MappedBlock &block, const core::MachineParams &m,
            const BlockOptions &opts)
{
    Report rep;
    rep.program = block.name;
    rep.config = m.name;
    BlockCtx ctx{m, opts.kernel, opts.layout, opts.revitalized};
    checkBlock(block, ctx, rep);
    rep.blocks = 1;
    rep.insts = block.insts.size();
    rep.sortFindings();
    return rep;
}

Report
verifySeq(const isa::SeqProgram &prog, const core::MachineParams &m,
          const kernels::Kernel *kernel)
{
    Report rep;
    rep.program = prog.name;
    rep.config = m.name;
    checkSeq(prog, m, kernel, rep);
    rep.blocks = 1;
    rep.insts = prog.code.size();
    rep.sortFindings();
    return rep;
}

namespace {

std::atomic<int> checkOverride{-1};

bool
envCheck()
{
    static const bool on = [] {
        const char *e = std::getenv("DLP_CHECK");
        return e && *e && std::string(e) != "0";
    }();
    return on;
}

} // namespace

bool
checkEnabled()
{
    int s = checkOverride.load(std::memory_order_relaxed);
    return s >= 0 ? s != 0 : envCheck();
}

void
setCheckEnabled(bool on)
{
    checkOverride.store(on ? 1 : 0, std::memory_order_relaxed);
}

} // namespace dlp::check
