#include "verify/audit.hh"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "verify/cost_invariants.hh"

namespace dlp::verify {

namespace {

using arch::AuditFinding;
using arch::ExperimentResult;

/**
 * Equality for counter-valued doubles. Every audited quantity is an
 * integer counter (or a sum of them) carried in a double; they are
 * exact up to 2^53, far beyond any simulated count, so a tiny absolute
 * slack only forgives representation noise, never a real off-by-one.
 */
bool
near(double a, double b)
{
    return std::fabs(a - b) < 0.5;
}

const GroupSnapshot *
findGroup(const ExperimentResult &res, const std::string &name)
{
    for (const auto &g : res.statGroups)
        if (g.name == name)
            return &g;
    return nullptr;
}

double
scalarOr(const GroupSnapshot &g, const std::string &name, double dflt = 0.0)
{
    auto it = g.scalars.find(name);
    return it == g.scalars.end() ? dflt : it->second;
}

const double *
formulaOf(const GroupSnapshot &g, const std::string &name)
{
    auto it = g.formulas.find(name);
    return it == g.formulas.end() ? nullptr : &it->second;
}

const Distribution *
distOf(const GroupSnapshot &g, const std::string &name)
{
    auto it = g.distributions.find(name);
    return it == g.distributions.end() ? nullptr : &it->second;
}

uint64_t
bucketMass(const Distribution &d)
{
    uint64_t mass = d.underflow() + d.overflow();
    for (size_t i = 0; i < d.numBuckets(); ++i)
        mass += d.bucket(i);
    return mass;
}

void
report(std::vector<AuditFinding> &out, const char *invariant,
       const std::string &detail)
{
    out.push_back({invariant, detail});
}

std::string
fmt2(const char *what, double expected, double actual)
{
    std::ostringstream os;
    os << what << ": expected " << expected << ", got " << actual;
    return os.str();
}

// --- Individual laws --------------------------------------------------------

void
checkVerified(const ExperimentResult &res, std::vector<AuditFinding> &out)
{
    if (!res.verified)
        report(out, "output-verified",
               "outputs failed golden-model verification: " + res.error);
}

void
checkUsefulOps(const ExperimentResult &res, std::vector<AuditFinding> &out)
{
    if (res.usefulOps > res.instsExecuted) {
        std::ostringstream os;
        os << "usefulOps " << res.usefulOps << " > instsExecuted "
           << res.instsExecuted;
        report(out, "useful-le-executed", os.str());
    }
}

void
checkProgress(const ExperimentResult &res, std::vector<AuditFinding> &out)
{
    if (res.records > 0 && res.cycles == 0)
        report(out, "progress",
               "processed records but simulated zero cycles");
}

/** Histogram mass: underflow + buckets + overflow == samples. */
void
checkDistMass(const ExperimentResult &res, std::vector<AuditFinding> &out)
{
    for (const auto &g : res.statGroups) {
        for (const auto &[name, d] : g.distributions) {
            uint64_t mass = bucketMass(d);
            if (mass != d.samples()) {
                std::ostringstream os;
                os << g.name << "." << name << ": bucket mass " << mass
                   << " != samples " << d.samples();
                report(out, "dist-mass", os.str());
            }
        }
    }
}

/** Moments of a non-empty histogram: min <= mean <= max, stdev >= 0. */
void
checkDistMoments(const ExperimentResult &res, std::vector<AuditFinding> &out)
{
    for (const auto &g : res.statGroups) {
        for (const auto &[name, d] : g.distributions) {
            if (d.samples() == 0)
                continue;
            const std::string id = g.name + "." + name;
            // Mean is a sum of samples divided by their count; a strict
            // comparison would trip on the last-ulp of that division.
            double slack =
                1e-9 * std::max(std::fabs(d.minValue()),
                                std::fabs(d.maxValue())) + 1e-12;
            if (d.mean() < d.minValue() - slack ||
                d.mean() > d.maxValue() + slack) {
                std::ostringstream os;
                os << id << ": mean " << d.mean() << " outside ["
                   << d.minValue() << ", " << d.maxValue() << "]";
                report(out, "dist-moments", os.str());
            }
            if (std::isnan(d.stdev()) || d.stdev() < 0.0)
                report(out, "dist-moments", id + ": negative or NaN stdev");
        }
    }
}

/** Every mesh hop samples the stall histogram exactly once. */
void
checkMeshHops(const ExperimentResult &res, std::vector<AuditFinding> &out)
{
    const GroupSnapshot *g = findGroup(res, "noc.mesh");
    if (!g)
        return;
    const Distribution *stall = distOf(*g, "contentionStallTicks");
    if (!stall)
        return;
    double hops = scalarOr(*g, "totalHops");
    double contention = scalarOr(*g, "contentionTicks");
    if (!near(double(stall->samples()), hops))
        report(out, "mesh-hop-conservation",
               fmt2("stall samples vs totalHops", hops,
                    double(stall->samples())));
    if (!near(stall->sum(), contention))
        report(out, "mesh-stall-sum",
               fmt2("stall sum vs contentionTicks", contention,
                    stall->sum()));
}

/** A link cannot be busy more than 100% of the active interval. */
void
checkLinkUtilization(const ExperimentResult &res,
                     std::vector<AuditFinding> &out)
{
    const GroupSnapshot *g = findGroup(res, "noc.mesh");
    if (!g)
        return;
    const Distribution *util = distOf(*g, "linkUtilization");
    if (!util || util->samples() == 0)
        return;
    if (util->underflow() > 0 || util->minValue() < 0.0)
        report(out, "link-utilization-bounds",
               "negative link utilization sampled");
    if (util->maxValue() > 1.0 + 1e-9) {
        std::ostringstream os;
        os << "link utilization " << util->maxValue() << " > 1";
        report(out, "link-utilization-bounds", os.str());
    }
}

/** Every SMC read samples the burst histogram once, with its width. */
void
checkSmcBursts(const ExperimentResult &res, std::vector<AuditFinding> &out)
{
    const GroupSnapshot *g = findGroup(res, "mem.smc");
    if (!g)
        return;
    const Distribution *burst = distOf(*g, "readBurstWords");
    if (!burst)
        return;
    double reads = scalarOr(*g, "reads");
    double words = scalarOr(*g, "wordsRead");
    if (!near(double(burst->samples()), reads))
        report(out, "smc-burst-conservation",
               fmt2("burst samples vs reads", reads,
                    double(burst->samples())));
    if (!near(burst->sum(), words))
        report(out, "smc-burst-sum",
               fmt2("burst sum vs wordsRead", words, burst->sum()));
}

/** Row-streaming occupancy is a fraction of the active interval. */
void
checkSmcOccupancy(const ExperimentResult &res, std::vector<AuditFinding> &out)
{
    const GroupSnapshot *g = findGroup(res, "mem.smc");
    if (!g)
        return;
    const Distribution *occ = distOf(*g, "rowStreamOccupancy");
    if (!occ || occ->samples() == 0)
        return;
    if (occ->underflow() > 0 || occ->minValue() < 0.0)
        report(out, "smc-occupancy-bounds",
               "negative row-streaming occupancy sampled");
    if (occ->maxValue() > 1.0 + 1e-9) {
        std::ostringstream os;
        os << "row-streaming occupancy " << occ->maxValue() << " > 1";
        report(out, "smc-occupancy-bounds", os.str());
    }
}

/** Every cached access probes the L1; every L1 miss probes the L2. */
void
checkCacheHierarchy(const ExperimentResult &res,
                    std::vector<AuditFinding> &out)
{
    const GroupSnapshot *g = findGroup(res, "mem.sys");
    if (!g)
        return;
    double accesses = scalarOr(*g, "cachedAccesses");
    double l1h = scalarOr(*g, "l1Hits");
    double l1m = scalarOr(*g, "l1Misses");
    double l2h = scalarOr(*g, "l2Hits");
    double l2m = scalarOr(*g, "l2Misses");
    if (!near(l1h + l1m, accesses))
        report(out, "l1-conservation",
               fmt2("l1Hits + l1Misses vs cachedAccesses", accesses,
                    l1h + l1m));
    if (!near(l2h + l2m, l1m))
        report(out, "l2-conservation",
               fmt2("l2Hits + l2Misses vs l1Misses", l1m, l2h + l2m));
}

/**
 * Simulation-kernel event conservation: every event ever scheduled was
 * executed, discarded by a reset, or is still pending -- and a
 * completed engine run leaves nothing pending and discards nothing
 * (the engine only resets a drained queue).
 */
void
checkEventConservation(const ExperimentResult &res,
                       std::vector<AuditFinding> &out)
{
    const GroupSnapshot *g = findGroup(res, "core.simd");
    if (!g)
        return;
    const double *sched = formulaOf(*g, "eventsScheduled");
    const double *exec = formulaOf(*g, "eventsExecuted");
    const double *pend = formulaOf(*g, "eventsPending");
    const double *disc = formulaOf(*g, "eventsDiscarded");
    if (!sched || !exec || !pend || !disc)
        return;
    if (!near(*sched, *exec + *pend + *disc))
        report(out, "event-conservation",
               fmt2("scheduled vs executed + pending + discarded",
                    *exec + *pend + *disc, *sched));
    if (*pend != 0.0)
        report(out, "event-drained",
               fmt2("pending events after run", 0.0, *pend));
    if (*disc != 0.0)
        report(out, "event-drained",
               fmt2("events discarded by mid-run reset", 0.0, *disc));
}

/**
 * The engine's own activation counter and the result's must agree (they
 * are incremented independently), and each activation samples the issue
 * width exactly once.
 */
void
checkActivations(const ExperimentResult &res, std::vector<AuditFinding> &out)
{
    const GroupSnapshot *g = findGroup(res, "core.simd");
    if (!g)
        return;
    double acts = scalarOr(*g, "activations");
    if (!near(acts, double(res.activations)))
        report(out, "activation-agreement",
               fmt2("engine activations vs result activations",
                    double(res.activations), acts));
    const Distribution *iw = distOf(*g, "issueWidth");
    if (iw && !near(double(iw->samples()), acts))
        report(out, "activation-agreement",
               fmt2("issueWidth samples vs activations", acts,
                    double(iw->samples())));
}

/**
 * Epoch fast-forwarding conservation: every activation was either
 * simulated through the event queue or replayed by an epoch, and the
 * simulated-machine event total equals the host events actually
 * executed plus the events fast-forwarding skipped.
 */
void
checkEpochConservation(const ExperimentResult &res,
                       std::vector<AuditFinding> &out)
{
    if (res.eventActivations + res.ffIterations != res.activations) {
        std::ostringstream os;
        os << "eventActivations " << res.eventActivations
           << " + ffIterations " << res.ffIterations << " != activations "
           << res.activations;
        report(out, "epoch-conservation", os.str());
    }
    if (res.ffEpochs > 0 && res.ffIterations == 0)
        report(out, "epoch-conservation",
               "epochs entered but zero iterations replayed");
    // The events formula exists only on the SIMD engine group; MIMD
    // runs (and pre-epoch stored results) simply have nothing to check.
    const GroupSnapshot *g = findGroup(res, "core.simd");
    if (!g)
        return;
    const double *exec = formulaOf(*g, "eventsExecuted");
    if (!exec)
        return;
    if (!near(double(res.hostEvents + res.ffEventsSaved), *exec))
        report(out, "epoch-conservation",
               fmt2("hostEvents + ffEventsSaved vs eventsExecuted", *exec,
                    double(res.hostEvents + res.ffEventsSaved)));
}

/**
 * The static cost model's closed-form lower bound on total run ticks
 * must hold against the ticks the simulation actually took; anything
 * else means the "sound" side of the model over-promised.
 */
void
checkCostBound(const ExperimentResult &res, std::vector<AuditFinding> &out)
{
    uint64_t bound = costBoundTicks(res);
    uint64_t actual = cyclesToTicks(res.cycles);
    if (bound > actual) {
        std::ostringstream os;
        os << "cost-model lower bound " << bound
           << " ticks > simulated " << actual << " ("
           << res.activations << " activations, " << res.mappings
           << " mappings, " << res.records << " records)";
        report(out, "cost-lower-bound", os.str());
    }
}

// --- Multi-core service laws ------------------------------------------------

using arch::ServiceResult;

const GroupSnapshot *
findServiceGroup(const ServiceResult &res, const std::string &name)
{
    for (const auto &g : res.statGroups)
        if (g.name == name)
            return &g;
    return nullptr;
}

/** Every injected request completed or was still in flight at drain. */
void
checkServiceConservation(const ServiceResult &res,
                         std::vector<AuditFinding> &out)
{
    if (res.injected != res.completed + res.inFlightAtDrain) {
        std::ostringstream os;
        os << "injected " << res.injected << " != completed "
           << res.completed << " + inFlight " << res.inFlightAtDrain;
        report(out, "svc-conservation", os.str());
    }
    if (res.inFlightAtDrain != 0)
        report(out, "svc-conservation",
               fmt2("requests in flight after full drain", 0.0,
                    double(res.inFlightAtDrain)));
    if (res.injected != res.requests.size())
        report(out, "svc-conservation",
               fmt2("injected vs schedule size", double(res.requests.size()),
                    double(res.injected)));
}

/** Per-core books sum to the system totals. */
void
checkServiceActivations(const ServiceResult &res,
                        std::vector<AuditFinding> &out)
{
    uint64_t coreActs = 0;
    uint64_t coreReqs = 0;
    for (const auto &c : res.perCore) {
        coreActs += c.activations;
        coreReqs += c.requests;
    }
    if (coreActs != res.systemActivations)
        report(out, "svc-activation-sum",
               fmt2("per-core activations vs system activations",
                    double(res.systemActivations), double(coreActs)));
    if (coreReqs != res.completed)
        report(out, "svc-activation-sum",
               fmt2("per-core requests vs completed", double(res.completed),
                    double(coreReqs)));
}

/** Percentiles are ordered and every completion sampled the histogram. */
void
checkServiceLatency(const ServiceResult &res, std::vector<AuditFinding> &out)
{
    if (res.p50 > res.p95 || res.p95 > res.p99 || res.p99 > res.maxLatency)
        report(out, "svc-latency-order",
               "latency percentiles out of order: p50 " +
                   std::to_string(res.p50) + ", p95 " +
                   std::to_string(res.p95) + ", p99 " +
                   std::to_string(res.p99) + ", max " +
                   std::to_string(res.maxLatency));
    if (res.latency.samples() != res.completed)
        report(out, "svc-latency-count",
               fmt2("latency samples vs completed", double(res.completed),
                    double(res.latency.samples())));
    if (res.latency.samples() != bucketMass(res.latency))
        report(out, "svc-latency-count",
               fmt2("latency bucket mass vs samples",
                    double(res.latency.samples()),
                    double(bucketMass(res.latency))));
    if (res.completed > 0 && res.latency.minValue() < 0.0)
        report(out, "svc-latency-order", "negative latency sampled");
}

/** Each completed request moved monotonically arrival -> start -> finish. */
void
checkServiceRequestTimes(const ServiceResult &res,
                         std::vector<AuditFinding> &out)
{
    for (const auto &r : res.requests) {
        if (r.start < r.arrival || r.finish < r.start) {
            std::ostringstream os;
            os << "request " << r.index << ": arrival " << r.arrival
               << ", start " << r.start << ", finish " << r.finish
               << " not monotone";
            report(out, "svc-request-times", os.str());
            return; // one example suffices; the rest would repeat it
        }
    }
}

/** Shared-bandwidth books: busy/contended time and granted words bound. */
void
checkServiceShared(const ServiceResult &res, std::vector<AuditFinding> &out)
{
    const GroupSnapshot *g = findServiceGroup(res, "mem.shared");
    if (!g)
        return;
    double busy = scalarOr(*g, "busyTicks");
    double contended = scalarOr(*g, "contendedTicks");
    double granted = scalarOr(*g, "grantedWords");
    double bw = scalarOr(*g, "bandwidthWordsPerTick");
    double slack = 1e-6 * std::max(busy, res.drainTick) + 1e-9;
    if (contended > busy + slack)
        report(out, "svc-shared-books",
               fmt2("contendedTicks <= busyTicks", busy, contended));
    if (busy > res.drainTick + slack)
        report(out, "svc-shared-books",
               fmt2("busyTicks <= drainTick", res.drainTick, busy));
    if (bw > 0.0 && granted > bw * busy * (1.0 + 1e-9) + 1e-9)
        report(out, "svc-shared-books",
               fmt2("grantedWords <= bandwidth * busyTicks", bw * busy,
                    granted));
}

/** The system flow counters agree with the result's totals. */
void
checkServiceFlows(const ServiceResult &res, std::vector<AuditFinding> &out)
{
    const GroupSnapshot *g = findServiceGroup(res, "sys.mc");
    if (!g)
        return;
    double inj = scalarOr(*g, "injected");
    double comp = scalarOr(*g, "completed");
    if (!near(inj, double(res.injected)))
        report(out, "svc-flow-agreement",
               fmt2("sys.mc.injected vs result injected",
                    double(res.injected), inj));
    if (!near(comp, double(res.completed)))
        report(out, "svc-flow-agreement",
               fmt2("sys.mc.completed vs result completed",
                    double(res.completed), comp));
}

/** Delta columns of the sampled time series sum to the final totals. */
void
checkServiceTimeseries(const ServiceResult &res,
                       std::vector<AuditFinding> &out)
{
    const obs::TimeSeries &ts = res.timeseries;
    if (!ts.present())
        return;
    for (size_t c = 0; c < ts.statNames.size(); ++c) {
        double expected;
        if (ts.statNames[c] == "sys.mc.injected")
            expected = double(res.injected);
        else if (ts.statNames[c] == "sys.mc.completed")
            expected = double(res.completed);
        else
            continue;
        double sum = 0.0;
        for (const auto &row : ts.samples)
            sum += row[c];
        if (!near(sum, expected))
            report(out, "svc-timeseries-conservation",
                   fmt2((ts.statNames[c] + " column sum").c_str(), expected,
                        sum));
    }
}

const std::vector<ServiceInvariant> serviceRegistry = {
    {"svc-conservation",
     "requests injected == completed + in-flight at drain, drained == 0",
     checkServiceConservation},
    {"svc-activation-sum",
     "per-core activations and requests sum to the system totals",
     checkServiceActivations},
    {"svc-latency-order",
     "p50 <= p95 <= p99 <= max, latencies non-negative, and every "
     "completed request samples the histogram once",
     checkServiceLatency},
    {"svc-request-times", "arrival <= start <= finish per request",
     checkServiceRequestTimes},
    {"svc-shared-books",
     "shared-bandwidth time and word accounting stays within bounds",
     checkServiceShared},
    {"svc-flow-agreement", "system flow counters match result totals",
     checkServiceFlows},
    {"svc-timeseries-conservation",
     "sampled delta columns sum to the final flow totals",
     checkServiceTimeseries},
};

const std::vector<Invariant> registry = {
    {"output-verified", "machine outputs match the golden model",
     checkVerified},
    {"useful-le-executed", "usefulOps <= instsExecuted", checkUsefulOps},
    {"progress", "records > 0 implies cycles > 0", checkProgress},
    {"dist-mass", "underflow + buckets + overflow == samples",
     checkDistMass},
    {"dist-moments", "min <= mean <= max and stdev >= 0 when sampled",
     checkDistMoments},
    {"mesh-hop-conservation",
     "every mesh hop samples the stall histogram once", checkMeshHops},
    {"link-utilization-bounds", "link utilization lies in [0, 1]",
     checkLinkUtilization},
    {"smc-burst-conservation",
     "SMC burst histogram counts reads and sums words read",
     checkSmcBursts},
    {"smc-occupancy-bounds", "row-streaming occupancy lies in [0, 1]",
     checkSmcOccupancy},
    {"l1-conservation", "l1Hits + l1Misses == cachedAccesses; "
     "l2Hits + l2Misses == l1Misses", checkCacheHierarchy},
    {"event-conservation",
     "events scheduled == executed + pending + discarded, queue drained",
     checkEventConservation},
    {"activation-agreement",
     "engine and result activation counters agree", checkActivations},
    {"epoch-conservation",
     "simulated + fast-forwarded activations == total; "
     "hostEvents + ffEventsSaved == eventsExecuted",
     checkEpochConservation},
    {"cost-lower-bound",
     "static cost-model bound <= simulated total ticks", checkCostBound},
};

std::atomic<int> auditOverride{-1};

bool
envAudit()
{
    static const bool on = [] {
        const char *e = std::getenv("DLP_AUDIT");
        return e && *e && std::string(e) != "0";
    }();
    return on;
}

} // namespace

const std::vector<Invariant> &
invariants()
{
    return registry;
}

std::vector<arch::AuditFinding>
auditResult(const arch::ExperimentResult &res)
{
    std::vector<arch::AuditFinding> findings;
    for (const auto &inv : registry)
        inv.check(res, findings);
    return findings;
}

size_t
auditAndRecord(arch::ExperimentResult &res)
{
    res.auditViolations = auditResult(res);
    res.audited = true;
    return res.auditViolations.size();
}

const std::vector<ServiceInvariant> &
serviceInvariants()
{
    return serviceRegistry;
}

std::vector<arch::AuditFinding>
auditServiceResult(const arch::ServiceResult &res)
{
    std::vector<arch::AuditFinding> findings;
    for (const auto &inv : serviceRegistry)
        inv.check(res, findings);
    return findings;
}

size_t
auditAndRecordService(arch::ServiceResult &res)
{
    res.auditViolations = auditServiceResult(res);
    res.audited = true;
    return res.auditViolations.size();
}

bool
auditEnabled()
{
    int s = auditOverride.load(std::memory_order_relaxed);
    return s >= 0 ? s != 0 : envAudit();
}

void
setAuditEnabled(bool on)
{
    auditOverride.store(on ? 1 : 0, std::memory_order_relaxed);
}

} // namespace dlp::verify
