# Empty dependencies file for dlp_sched.
# This may be replaced when dependencies are built.
