/**
 * @file
 * The lightweight routed operand network connecting the ALU array.
 *
 * The TRIPS execution array forwards operands between ALUs over a 2-D mesh
 * with dimension-order (X-then-Y) routing. With the paper's 10FO4 clock at
 * 100 nm the hop delay between adjacent ALUs is half a cycle (one tick).
 *
 * The model is link-accurate for contention: every unidirectional link can
 * accept one operand per tick, and operands queue FCFS at busy links. This
 * captures the effect the paper leans on in Section 5.3 -- in MIMD mode
 * every load request is routed tile-to-edge through the mesh and the extra
 * traffic degrades the regular kernels relative to the SIMD configurations.
 *
 * Each row additionally has a memory port on its west edge (column 0 side)
 * through which loads, stores and register traffic leave the array.
 */

#ifndef DLP_NOC_MESH_HH
#define DLP_NOC_MESH_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "sim/resource.hh"

namespace dlp::noc {

/** Coordinates of a tile in the array. */
struct Coord
{
    uint8_t row;
    uint8_t col;

    bool operator==(const Coord &o) const
    {
        return row == o.row && col == o.col;
    }
};

/** A 2-D mesh with per-link FCFS contention. */
class MeshNetwork
{
  public:
    /**
     * @param rows     array height
     * @param cols     array width
     * @param hopTicks ticks to traverse one link (default: half a cycle)
     */
    MeshNetwork(unsigned rows, unsigned cols, Tick hopTicks = 1);

    /**
     * Route one operand from src to dst, injected at tick inject.
     * Same-tile forwarding is free (local bypass).
     *
     * @return the tick at which the operand arrives at dst.
     */
    Tick route(Coord src, Coord dst, Tick inject);

    /**
     * Route an operand from a tile to its row's west-edge memory port
     * (or back). One extra hop crosses from column 0 into the port.
     */
    Tick routeToEdge(Coord src, Tick inject);
    Tick routeFromEdge(unsigned row, Coord dst, Tick inject);

    /** Manhattan distance in hops between two tiles. */
    unsigned
    distance(Coord a, Coord b) const
    {
        return static_cast<unsigned>(
                   a.row > b.row ? a.row - b.row : b.row - a.row) +
               static_cast<unsigned>(
                   a.col > b.col ? a.col - b.col : b.col - a.col);
    }

    unsigned numRows() const { return rows; }
    unsigned numCols() const { return cols; }
    Tick hopDelay() const { return hopTicks; }

    uint64_t operandsRouted() const { return routed; }
    uint64_t totalHops() const { return hops; }
    Tick contentionTicks() const { return contention; }

    /** Latest link grant end (utilization reference point). */
    Tick lastLinkActivity() const { return lastActivity; }

    /**
     * Advance the raw routing counters by a replayed epoch's worth of
     * traffic without simulating it (epoch fast-forwarding). The
     * activity watermark moves by `lastAdvance` ticks; link calendars
     * are shifted separately through their Resources.
     */
    void
    fastForward(uint64_t routedDelta, uint64_t hopsDelta,
                Tick contentionDelta, Tick lastAdvance)
    {
        routed += routedDelta;
        hops += hopsDelta;
        contention += contentionDelta;
        lastActivity += lastAdvance;
    }

    /**
     * The mesh statistics group ("noc.mesh"): routing counters, a
     * per-hop contention-stall histogram, and — refreshed at dump time —
     * a per-link utilization distribution and per-direction grant
     * vector over the observed simulated interval.
     */
    StatGroup &statsGroup() { return statGroup; }

    /** Clear all link occupancy and counters. */
    void reset();

    /** Visit every link resource (occupancy accounting). */
    template <typename Fn>
    void
    forEachLink(Fn &&fn)
    {
        for (auto *set : {&east, &west, &south, &north, &edgeOut, &edgeIn})
            for (auto &link : *set)
                fn(link);
    }

  private:
    const char *dlpTraceName() const { return "mesh"; }

    /** Register statistics and the pre-dump utilization refresh. */
    void initStats();

    /** Traverse one link in the given direction from tile at. */
    Tick traverseLink(Coord at, int drow, int dcol, Tick ready);

    sim::Resource &linkFor(Coord at, int drow, int dcol);

    unsigned rows;
    unsigned cols;
    Tick hopTicks;

    // Four unidirectional link sets indexed by source tile: E, W, S, N,
    // plus the per-row edge links into/out of the memory ports.
    std::vector<sim::Resource> east;
    std::vector<sim::Resource> west;
    std::vector<sim::Resource> south;
    std::vector<sim::Resource> north;
    std::vector<sim::Resource> edgeOut;
    std::vector<sim::Resource> edgeIn;

    uint64_t routed = 0;
    uint64_t hops = 0;
    Tick contention = 0;
    Tick lastActivity = 0; ///< latest link grant end (for utilization)

    StatGroup statGroup{"noc.mesh"};
    Distribution *stallDist = nullptr; ///< per-hop contention stalls
};

} // namespace dlp::noc

#endif // DLP_NOC_MESH_HH
