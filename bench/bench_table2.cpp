/**
 * @file
 * Regenerates Table 2 (benchmark attributes) from the kernel IR and
 * prints it next to the paper's published values.
 *
 * Instruction counts and ILP depend on exactly how each kernel was
 * hand-coded for TRIPS; ours are recomputed from our implementations, so
 * match is expected in magnitude and structure (records, tables, loop
 * bounds exact; #insts/ILP approximate).
 */

#include <iostream>
#include <map>

#include "analysis/attributes.hh"
#include "analysis/report.hh"
#include "common/logging.hh"

using namespace dlp;
using namespace dlp::analysis;

namespace {

struct PaperRow
{
    const char *insts;
    const char *ilp;
    const char *record;
    const char *irregular;
    const char *constants;
    const char *indexed;
    const char *loop;
};

const std::map<std::string, PaperRow> &
paperTable2()
{
    static const std::map<std::string, PaperRow> rows = {
        {"convert", {"15", "5", "3/3", "-", "9", "-", "-"}},
        {"dct", {"1728", "6", "64/64", "-", "10", "-", "16"}},
        {"highpassfilter", {"17", "3.4", "9/1", "-", "9", "-", "-"}},
        {"fft", {"10", "3.3", "6/4", "-", "0", "-", "-"}},
        {"lu", {"2", "1", "2/1", "-", "0", "-", "-"}},
        {"md5", {"680", "1.63", "10/2", "-", "65", "-", "-"}},
        {"blowfish", {"364", "1.98", "1/1", "-", "2", "256", "16"}},
        {"rijndael", {"650", "11.8", "2/2", "-", "18", "1024", "10"}},
        {"vertex-simple", {"95", "4.3", "7/6", "-", "32", "-", "-"}},
        {"fragment-simple", {"64", "2.96", "8/4", "4", "16", "-", "-"}},
        {"vertex-reflection", {"94", "7.1", "9/2", "-", "35", "-", "-"}},
        {"fragment-reflection", {"98", "6.2", "5/3", "4", "7", "-", "-"}},
        {"vertex-skinning",
         {"112", "6.8", "16/9", "-", "32", "288", "Variable"}},
        {"anisotropic-filter",
         {"80", "2.1", "9/1", "<=50", "6", "128", "Variable"}},
    };
    return rows;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    std::cout << "Table 2: benchmark attributes (ours vs. paper)\n\n";

    TextTable t;
    t.header({"Benchmark", "#Inst", "(paper)", "ILP", "(paper)", "Record",
              "(paper)", "Irreg", "(p)", "Const", "(p)", "Indexed", "(p)",
              "Loops", "(paper)"});
    for (const auto &a : extractAllAttributes()) {
        const auto &p = paperTable2().at(a.name);
        t.row({a.name, std::to_string(a.numInsts), p.insts, fmt(a.ilp, 1),
               p.ilp,
               std::to_string(a.recordRead) + "/" +
                   std::to_string(a.recordWrite),
               p.record,
               a.irregularAccesses ? std::to_string(a.irregularAccesses)
                                   : "-",
               p.irregular,
               a.numConstants ? std::to_string(a.numConstants) : "-",
               p.constants,
               a.indexedConstants ? std::to_string(a.indexedConstants)
                                  : "-",
               p.indexed, a.loopBounds, p.loop});
    }
    t.print(std::cout);

    std::cout << "\nNotes: instruction counts are fully-unrolled totals of "
                 "our kernels (variable\nloops at their bound); indexed "
                 "constants count table entries after power-of-two\n"
                 "padding (rijndael adds an S-box and a round-key table to "
                 "the four T-tables;\nlu carries the row multiplier in the "
                 "record, 3/1 vs the paper's 2/1).\n";
    return 0;
}
