file(REMOVE_RECURSE
  "libdlp_core.a"
)
