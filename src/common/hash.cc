#include "common/hash.hh"

namespace dlp {

std::string
Hash128::hex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
        uint64_t word = i < 8 ? hi : lo;
        unsigned shift = 8 * (7 - (i % 8));
        auto byte = static_cast<unsigned>((word >> shift) & 0xff);
        out[2 * i] = digits[byte >> 4];
        out[2 * i + 1] = digits[byte & 0xf];
    }
    return out;
}

Hash128
fnv1a128(const std::string &bytes)
{
    Fnv1a128 h;
    h.add(bytes.data(), bytes.size());
    return h.digest();
}

} // namespace dlp
