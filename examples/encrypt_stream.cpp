/**
 * @file
 * Network-processing example: encrypt a stream of packets with AES-128
 * on the mechanism combinations the paper proposes for lookup-table
 * kernels, and check the ciphertext against the FIPS-197 reference
 * implementation.
 *
 * Demonstrates the paper's Section 5.3 result: the L0 data store (the
 * "-D" mechanisms) is what makes table-driven crypto fast, and the
 * local-PC MIMD machine with L0 tables (M-D) is the best home for it.
 */

#include <cinttypes>
#include <cstdio>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "kernels/workload.hh"

using namespace dlp;

int
main()
{
    setQuietLogging(true);
    const uint64_t packets = 1024; // 16-byte blocks

    std::printf("AES-128 packet encryption, %" PRIu64 " blocks\n\n",
                packets);
    std::printf("  %-9s %12s %14s %12s\n", "config", "cycles",
                "cycles/block", "verified");

    double base = 0;
    for (const auto &config : arch::allConfigNames()) {
        auto wl = kernels::makeWorkload("rijndael", packets, 2026);
        arch::TripsProcessor cpu(arch::configByName(config));
        auto res = cpu.run(*wl);
        double perBlock = double(res.cycles) / double(res.records);
        if (config == "baseline")
            base = double(res.cycles);
        std::printf("  %-9s %12" PRIu64 " %14.1f %12s   (%.2fx)\n", config.c_str(),
                    res.cycles, perBlock,
                    res.verified ? "yes" : "NO", base / double(res.cycles));
    }

    std::printf("\nAll configurations produce ciphertext identical to the "
                "FIPS-197 golden\nmodel (the workload verifies every "
                "block). The paper's Table 6 reports\n12 cycles/block for "
                "its best TRIPS configuration; CryptoManiac needed 100.\n");
    return 0;
}
