#include "ref/texture.hh"

#include <cmath>

namespace dlp::ref {

Word
packTexel(double r, double g, double b)
{
    auto q = [](double v) {
        v = v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
        return static_cast<Word>(v * 65535.0 + 0.5);
    };
    return q(r) | (q(g) << 16) | (q(b) << 32);
}

double
unpackChannel(Word texel, unsigned c)
{
    // Multiply by the reciprocal (not divide): the simulated kernels use
    // the same single multiply, keeping both implementations bit-equal.
    return static_cast<double>((texel >> (16 * c)) & 0xffff) *
           (1.0 / 65535.0);
}

Texture2D::Texture2D(unsigned width, unsigned height)
    : w(width), h(height), data(static_cast<size_t>(width) * height, 0)
{
    panic_if(!isPowerOf2(w) || !isPowerOf2(h),
             "texture %ux%u must be power-of-two", w, h);
}

void
Texture2D::fillNoise(uint64_t seed)
{
    Rng rng(seed);
    // Low-frequency lattice noise: random values on a coarse grid,
    // bilinearly interpolated, so bilinear sampling has visible structure.
    unsigned gw = std::max(4u, w / 16);
    unsigned gh = std::max(4u, h / 16);
    std::vector<double> grid(static_cast<size_t>(gw) * gh * 3);
    for (auto &v : grid)
        v = rng.uniform();

    auto g = [&](unsigned x, unsigned y, unsigned c) {
        return grid[(static_cast<size_t>(y % gh) * gw + (x % gw)) * 3 + c];
    };

    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            double fx = static_cast<double>(x) * gw / w;
            double fy = static_cast<double>(y) * gh / h;
            unsigned x0 = static_cast<unsigned>(fx);
            unsigned y0 = static_cast<unsigned>(fy);
            double tx = fx - x0;
            double ty = fy - y0;
            double rgb[3];
            for (unsigned c = 0; c < 3; ++c) {
                double a = g(x0, y0, c) * (1 - tx) + g(x0 + 1, y0, c) * tx;
                double b = g(x0, y0 + 1, c) * (1 - tx) +
                           g(x0 + 1, y0 + 1, c) * tx;
                rgb[c] = a * (1 - ty) + b * ty;
            }
            data[static_cast<size_t>(y) * w + x] =
                packTexel(rgb[0], rgb[1], rgb[2]);
        }
    }
}

void
Texture2D::sampleBilinear(double u, double v, double rgb[3]) const
{
    double uf = std::floor(u);
    double vf = std::floor(v);
    double tu = u - uf;
    double tv = v - vf;
    int64_t x0 = static_cast<int64_t>(uf);
    int64_t y0 = static_cast<int64_t>(vf);

    Word t00 = texel(x0, y0);
    Word t10 = texel(x0 + 1, y0);
    Word t01 = texel(x0, y0 + 1);
    Word t11 = texel(x0 + 1, y0 + 1);

    for (unsigned c = 0; c < 3; ++c) {
        double a = unpackChannel(t00, c) * (1 - tu) +
                   unpackChannel(t10, c) * tu;
        double b = unpackChannel(t01, c) * (1 - tu) +
                   unpackChannel(t11, c) * tu;
        rgb[c] = a * (1 - tv) + b * tv;
    }
}

void
Texture2D::sampleNearest(double u, double v, double rgb[3]) const
{
    int64_t x = static_cast<int64_t>(std::floor(u));
    int64_t y = static_cast<int64_t>(std::floor(v));
    Word t = texel(x, y);
    for (unsigned c = 0; c < 3; ++c)
        rgb[c] = unpackChannel(t, c);
}

CubeMap::CubeMap(unsigned faceSize) : size(faceSize)
{
    faces.reserve(6);
    for (unsigned f = 0; f < 6; ++f)
        faces.emplace_back(size, size);
}

void
CubeMap::fillNoise(uint64_t seed)
{
    for (unsigned f = 0; f < 6; ++f)
        faces[f].fillNoise(seed * 6 + f);
}

unsigned
CubeMap::project(double x, double y, double z, unsigned faceSize, double &u,
                 double &v)
{
    double ax = std::fabs(x), ay = std::fabs(y), az = std::fabs(z);
    unsigned face;
    double sc, tc, ma;
    if (ax >= ay && ax >= az) {
        face = x >= 0 ? 0 : 1;
        ma = ax;
        sc = x >= 0 ? -z : z;
        tc = -y;
    } else if (ay >= ax && ay >= az) {
        face = y >= 0 ? 2 : 3;
        ma = ay;
        sc = x;
        tc = y >= 0 ? z : -z;
    } else {
        face = z >= 0 ? 4 : 5;
        ma = az;
        sc = z >= 0 ? x : -x;
        tc = -y;
    }
    // Map [-1,1] to texel space.
    double half = faceSize / 2.0;
    u = (sc / ma + 1.0) * half;
    v = (tc / ma + 1.0) * half;
    return face;
}

void
CubeMap::sample(double x, double y, double z, double rgb[3]) const
{
    double u, v;
    unsigned f = project(x, y, z, size, u, v);
    faces[f].sampleBilinear(u, v, rgb);
}

} // namespace dlp::ref
