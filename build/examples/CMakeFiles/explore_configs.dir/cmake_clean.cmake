file(REMOVE_RECURSE
  "CMakeFiles/explore_configs.dir/explore_configs.cpp.o"
  "CMakeFiles/explore_configs.dir/explore_configs.cpp.o.d"
  "explore_configs"
  "explore_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
