# Empty compiler generated dependencies file for dlp_arch.
# This may be replaced when dependencies are built.
