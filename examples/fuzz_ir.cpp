/**
 * @file
 * The differential IR fuzzer CLI: generate seeded random kernels, run
 * them through the interpreter oracle and every requested Table 5
 * machine configuration, diff the outputs element for element, and
 * evaluate the invariant auditor on every run. On a failure the fuzzer
 * greedily shrinks the generator knobs and prints a one-line replay
 * command; with --json it also writes the minimized counterexamples as
 * a machine-readable document (the CI fuzz-smoke step uploads it).
 *
 *   ./build/examples/fuzz_ir                      # seeds 1..20, all configs
 *   ./build/examples/fuzz_ir --seeds 1..200
 *   ./build/examples/fuzz_ir --seed 42 --configs S-O-D,M-D
 *
 * Options:
 *   --seed N / --seeds a..b  seed or seed list/range (default 1..20)
 *   --configs a,b,...        Table 5 config names (default: all)
 *   --records N              records per generated batch (default 24)
 *   --nodes N                random compute-node budget (default 24)
 *   --loops N                loop constructs to attempt (default 2)
 *   --no-tables / --no-wide / --no-cached / --no-scratch
 *                            disable a generator feature (shrinker flags)
 *   --no-audit               skip the invariant auditor
 *   --static-check           cross-validate the static verifier: every
 *                            dynamically diverging case must trip a
 *                            static rule or is logged as a coverage
 *                            gap; static errors on dynamically clean
 *                            cases are failures (kind "static")
 *   --fast-forward           differential epoch fast-forwarding: run
 *                            every case with the fast-forwarder off and
 *                            on and require bit-identical results
 *                            (failures have kind "fastforward")
 *   --cost                   cross-validate the static cost model: the
 *                            model's lower bound on total ticks must
 *                            hold on every run (failures have kind
 *                            "cost" and shrink/replay as usual)
 *   --json FILE              write counterexamples as JSON
 *
 * Exit status: 0 when every (seed, config) run matches the oracle and
 * audits clean, 1 otherwise.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/export.hh"
#include "analysis/json.hh"
#include "arch/configs.hh"
#include "common/logging.hh"
#include "verify/fuzz.hh"

using namespace dlp;

namespace {

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > start)
            out.push_back(arg.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** Parse "7" or "3..9" (inclusive) into a list of integers. */
std::vector<uint64_t>
parseNumbers(const std::string &arg)
{
    std::vector<uint64_t> out;
    for (const auto &tok : splitList(arg)) {
        size_t dots = tok.find("..");
        if (dots == std::string::npos) {
            out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
            continue;
        }
        uint64_t lo = std::strtoull(tok.substr(0, dots).c_str(), nullptr, 10);
        uint64_t hi =
            std::strtoull(tok.substr(dots + 2).c_str(), nullptr, 10);
        fatal_if(hi < lo || hi - lo > 100000, "bad range '%s'", tok.c_str());
        for (uint64_t v = lo; v <= hi; ++v)
            out.push_back(v);
    }
    return out;
}

analysis::json::Value
toJson(const verify::FuzzFailure &f)
{
    using analysis::json::Value;
    Value obj = Value::object();
    obj.set("seed", f.seed);
    obj.set("config", f.config);
    obj.set("kind", f.kind);
    obj.set("detail", f.detail);
    obj.set("replay", f.replay);
    obj.set("staticallyCaught", f.staticallyCaught);
    if (!f.staticRule.empty())
        obj.set("staticRule", f.staticRule);
    Value shrunk = Value::object();
    shrunk.set("records", uint64_t(f.shrunk.records));
    shrunk.set("nodes", uint64_t(f.shrunk.nodeBudget));
    shrunk.set("loops", uint64_t(f.shrunk.loops));
    shrunk.set("tables", f.shrunk.tables);
    shrunk.set("wideLoads", f.shrunk.wideLoads);
    shrunk.set("cachedLoads", f.shrunk.cachedLoads);
    shrunk.set("scratch", f.shrunk.scratch);
    obj.set("shrunk", std::move(shrunk));
    return obj;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    std::vector<uint64_t> seeds;
    verify::FuzzOptions base;
    std::string jsonPath;
    bool dump = false;

    auto value = [&](int &i) -> const char * {
        fatal_if(i + 1 >= argc, "%s needs an argument", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 ||
            std::strcmp(argv[i], "--seeds") == 0) {
            auto more = parseNumbers(value(i));
            seeds.insert(seeds.end(), more.begin(), more.end());
        } else if (std::strcmp(argv[i], "--configs") == 0) {
            std::string v = value(i);
            if (v != "all")
                base.configs = splitList(v);
        } else if (std::strcmp(argv[i], "--records") == 0) {
            base.records = unsigned(std::strtoul(value(i), nullptr, 10));
        } else if (std::strcmp(argv[i], "--nodes") == 0) {
            base.nodeBudget = unsigned(std::strtoul(value(i), nullptr, 10));
        } else if (std::strcmp(argv[i], "--loops") == 0) {
            base.loops = unsigned(std::strtoul(value(i), nullptr, 10));
        } else if (std::strcmp(argv[i], "--no-tables") == 0) {
            base.tables = false;
        } else if (std::strcmp(argv[i], "--no-wide") == 0) {
            base.wideLoads = false;
        } else if (std::strcmp(argv[i], "--no-cached") == 0) {
            base.cachedLoads = false;
        } else if (std::strcmp(argv[i], "--no-scratch") == 0) {
            base.scratch = false;
        } else if (std::strcmp(argv[i], "--no-audit") == 0) {
            base.audit = false;
        } else if (std::strcmp(argv[i], "--static-check") == 0) {
            base.staticCheck = true;
        } else if (std::strcmp(argv[i], "--fast-forward") == 0) {
            base.ffDiff = true;
        } else if (std::strcmp(argv[i], "--cost") == 0) {
            base.cost = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            jsonPath = value(i);
        } else if (std::strcmp(argv[i], "--dump") == 0) {
            dump = true;
        } else {
            fatal("unknown option '%s' (see the header of "
                  "examples/fuzz_ir.cpp)", argv[i]);
        }
    }
    if (seeds.empty())
        seeds = parseNumbers("1..20");
    for (const auto &c : base.configs)
        (void)arch::configByName(c);

    if (dump) {
        for (uint64_t seed : seeds) {
            verify::FuzzOptions o = base;
            o.seed = seed;
            std::fputs(verify::describeKernel(
                           verify::buildFuzzKernel(o)).c_str(), stdout);
        }
        return 0;
    }

    size_t nConfigs =
        base.configs.empty() ? arch::allConfigNames().size()
                             : base.configs.size();
    std::printf("fuzz_ir: %zu seed%s x %zu config%s, oracle-diff%s%s%s\n",
                seeds.size(), seeds.size() == 1 ? "" : "s", nConfigs,
                nConfigs == 1 ? "" : "s",
                base.audit ? " + invariant audit" : "",
                base.ffDiff ? " + fast-forward diff" : "",
                base.cost ? " + cost-bound check" : "");

    verify::FuzzReport rep = verify::fuzzSeeds(seeds, base);

    for (const auto &f : rep.failures) {
        std::printf("FAIL seed %" PRIu64 " on %s [%s]: %s\n", f.seed,
                    f.config.c_str(), f.kind.c_str(), f.detail.c_str());
        if (base.staticCheck && f.kind != "static")
            std::printf("  static: %s\n",
                        f.staticallyCaught
                            ? f.staticRule.c_str()
                            : "COVERAGE GAP (no rule fires)");
        std::printf("  replay: %s\n", f.replay.c_str());
    }
    std::printf("fuzz_ir: %" PRIu64 " runs, %zu failure%s\n", rep.runs,
                rep.failures.size(),
                rep.failures.size() == 1 ? "" : "s");
    if (base.staticCheck)
        std::printf("fuzz_ir: static cross-check: %" PRIu64
                    " dynamic failure%s also caught statically, %" PRIu64
                    " coverage gap%s\n",
                    rep.staticallyCaught,
                    rep.staticallyCaught == 1 ? "" : "s", rep.staticGaps,
                    rep.staticGaps == 1 ? "" : "s");

    if (!jsonPath.empty() && !rep.failures.empty()) {
        using analysis::json::Value;
        Value doc = Value::object();
        doc.set("generator", "dlp-sim fuzz_ir");
        doc.set("runs", rep.runs);
        if (base.staticCheck) {
            doc.set("staticallyCaught", rep.staticallyCaught);
            doc.set("staticGaps", rep.staticGaps);
        }
        Value cases = Value::array();
        for (const auto &f : rep.failures)
            cases.push(toJson(f));
        doc.set("failures", std::move(cases));
        analysis::writeJsonFile(jsonPath, doc);
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return rep.clean() ? 0 : 1;
}
