#include "arch/multicore.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <deque>
#include <limits>

#include "common/logging.hh"
#include "mem/params.hh"
#include "mem/shared_smc.hh"

namespace dlp::arch {

double
MultiCoreSystem::defaultBandwidth()
{
    // One core's worth of SMC banks: rows * smcWordsPerCycle words per
    // cycle. A single core can just saturate the shared pool, so every
    // core added beyond the first contends — the scale-out experiments
    // measure how gracefully.
    mem::MemParams mp;
    return double(mp.rows) * double(mp.smcWordsPerCycle) /
           double(ticksPerCycle);
}

double
nearestRank(const std::vector<double> &sorted, double pct)
{
    if (sorted.empty())
        return 0.0;
    double rank = std::ceil(pct / 100.0 * double(sorted.size()));
    size_t idx = rank < 1.0 ? 0 : size_t(rank) - 1;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

MultiCoreSystem::MultiCoreSystem(const SystemParams &params,
                                 std::vector<RequestProfile> reqProfiles,
                                 uint64_t pool)
    : p(params), profiles(std::move(reqProfiles)), seedPool(pool)
{
    fatal_if(p.cores == 0, "multi-core system needs at least one core");
    fatal_if(p.ticksPerSec <= 0.0, "ticksPerSec must be positive");
    fatal_if(seedPool == 0, "seed pool must be nonzero");
    fatal_if(profiles.empty() || profiles.size() % seedPool != 0,
             "profile table size %zu is not a nonzero multiple of the "
             "seed pool %" PRIu64, profiles.size(), seedPool);
    if (p.bandwidthWordsPerTick <= 0.0)
        p.bandwidthWordsPerTick = defaultBandwidth();
    for (const auto &prof : profiles) {
        fatal_if(prof.isolatedTicks <= 0.0,
                 "profile for %s has non-positive service time",
                 prof.kernel.c_str());
    }
}

namespace {

/** One core's in-flight request, in isolated-equivalent work ticks. */
struct ActiveSlot
{
    bool busy = false;
    uint64_t request = 0;   ///< index into the record vector
    size_t profile = 0;     ///< index into the profile table
    double remaining = 0.0; ///< isolated ticks of work left
};

} // namespace

ServiceResult
MultiCoreSystem::serve(const std::vector<traffic::Request> &schedule)
{
    ServiceResult res;
    res.cores = p.cores;
    res.bandwidthWordsPerTick = p.bandwidthWordsPerTick;
    res.seedPool = seedPool;
    res.ticksPerSec = p.ticksPerSec;
    res.perCore.assign(p.cores, {});
    res.profiles = profiles;

    mem::SharedSmcArbiter arbiter(p.cores, p.bandwidthWordsPerTick);

    // System flow counters (deltas for the sampler) and instantaneous
    // levels (formulas). The lambdas read loop state declared below;
    // the group never outlives this frame.
    StatGroup sys("sys.mc");
    Stat &injectedStat = sys.scalar("injected");
    Stat &completedStat = sys.scalar("completed");

    std::vector<ActiveSlot> core(p.cores);
    std::deque<uint64_t> waiting;
    unsigned activeCores = 0;

    sys.formula("queueDepth", [&] { return double(waiting.size()); });
    sys.formula("activeCores", [&] { return double(activeCores); });

    obs::StatSampler sampler(p.timeseriesInterval,
                             {&sys, &arbiter.statsGroup()});

    res.requests.resize(schedule.size());
    std::vector<double> latencies;
    latencies.reserve(schedule.size());
    std::vector<double> demands;
    demands.reserve(p.cores);

    double now = 0.0;
    double queueWaitSum = 0.0;
    constexpr double inf = std::numeric_limits<double>::infinity();

    auto slowdown = [&] {
        double total = 0.0;
        for (const auto &c : core)
            if (c.busy)
                total += profiles[c.profile].demandWordsPerTick;
        return arbiter.slowdown(total);
    };

    // Advance simulated time to `to` under the current (constant)
    // active set: charge the arbiter and burn down remaining work at
    // the stretched rate 1/f.
    auto advance = [&](double to, double f) {
        if (to <= now)
            return;
        double elapsed = to - now;
        if (activeCores > 0) {
            demands.clear();
            for (auto &c : core) {
                if (!c.busy)
                    continue;
                demands.push_back(profiles[c.profile].demandWordsPerTick);
                c.remaining -= elapsed / f;
            }
            arbiter.charge(elapsed, demands, f);
        }
        now = to;
    };

    auto dispatch = [&](unsigned ci, uint64_t reqIdx) {
        RequestRecord &rec = res.requests[reqIdx];
        rec.start = now;
        rec.core = ci;
        queueWaitSum += rec.start - rec.arrival;
        core[ci].busy = true;
        core[ci].request = reqIdx;
        core[ci].profile = rec.mixIndex * seedPool + rec.seedSlot;
        core[ci].remaining = profiles[core[ci].profile].isolatedTicks;
        ++activeCores;
    };

    size_t nextArrival = 0;
    while (nextArrival < schedule.size() || !waiting.empty() ||
           activeCores > 0) {
        double f = slowdown();

        double tArrival = nextArrival < schedule.size()
                              ? double(schedule[nextArrival].arrival)
                              : inf;
        double tComplete = inf;
        unsigned completeCore = 0;
        for (unsigned ci = 0; ci < p.cores; ++ci) {
            if (!core[ci].busy)
                continue;
            double t = now + std::max(core[ci].remaining, 0.0) * f;
            if (t < tComplete) {
                tComplete = t;
                completeCore = ci;
            }
        }

        if (tComplete <= tArrival) {
            // Completions first at ties so the freed core can take the
            // simultaneous arrival.
            advance(tComplete, f);
            ActiveSlot &slot = core[completeCore];
            const RequestProfile &prof = profiles[slot.profile];
            RequestRecord &rec = res.requests[slot.request];
            rec.finish = now;
            latencies.push_back(rec.latency());

            CoreServiceStats &cs = res.perCore[completeCore];
            ++cs.requests;
            cs.busyTicks += rec.finish - rec.start;
            cs.workTicks += prof.isolatedTicks;
            cs.activations += prof.activations;
            res.systemActivations += prof.activations;

            ++res.completed;
            ++completedStat;
            slot.busy = false;
            --activeCores;
            if (!waiting.empty()) {
                uint64_t next = waiting.front();
                waiting.pop_front();
                dispatch(completeCore, next);
            }
        } else {
            advance(tArrival, f);
            const traffic::Request &arr = schedule[nextArrival];
            size_t profIdx = size_t(arr.mixIndex) * seedPool + arr.seedSlot;
            panic_if(profIdx >= profiles.size(),
                     "request %" PRIu64 " draws profile %zu of %zu",
                     arr.index, profIdx, profiles.size());
            RequestRecord &rec = res.requests[arr.index];
            rec.index = arr.index;
            rec.mixIndex = arr.mixIndex;
            rec.seedSlot = arr.seedSlot;
            rec.arrival = double(arr.arrival);
            ++res.injected;
            ++injectedStat;

            unsigned idle = p.cores;
            for (unsigned ci = 0; ci < p.cores; ++ci) {
                if (!core[ci].busy) {
                    idle = ci;
                    break;
                }
            }
            if (idle < p.cores) {
                dispatch(idle, arr.index);
            } else {
                waiting.push_back(arr.index);
                res.maxQueueDepth =
                    std::max(res.maxQueueDepth, double(waiting.size()));
            }
            ++nextArrival;
        }
        sampler.maybeSample(Tick(now));
    }

    res.inFlightAtDrain = uint64_t(activeCores) + waiting.size();
    res.drainTick = now;
    res.sustainedRps = res.drainTick > 0.0
                           ? double(res.completed) /
                                 (res.drainTick / p.ticksPerSec)
                           : 0.0;
    res.meanQueueWait = res.completed
                            ? queueWaitSum / double(res.completed)
                            : 0.0;

    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    res.p50 = nearestRank(sorted, 50.0);
    res.p95 = nearestRank(sorted, 95.0);
    res.p99 = nearestRank(sorted, 99.0);
    res.maxLatency = sorted.empty() ? 0.0 : sorted.back();

    double latencySum = 0.0;
    for (double l : latencies)
        latencySum += l;
    res.meanLatency =
        latencies.empty() ? 0.0 : latencySum / double(latencies.size());

    // Histogram over [0, max] — the range depends only on the (fully
    // deterministic) latencies, so reruns bucket identically.
    double hi = res.maxLatency > 0.0 ? res.maxLatency * (1.0 + 1e-9) : 1.0;
    res.latency = Distribution("latencyTicks", 0.0, hi, 64);
    for (double l : latencies)
        res.latency.sample(l);

    res.timeseries = sampler.finalize(Tick(now));
    res.statGroups.push_back(sys.snapshot());
    res.statGroups.push_back(arbiter.statsGroup().snapshot());
    return res;
}

} // namespace dlp::arch
