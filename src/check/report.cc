#include "check/report.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace dlp::check {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info:     return "info";
      case Severity::Advisory: return "advisory";
      case Severity::Warning:  return "warning";
      case Severity::Error:    return "error";
    }
    return "?";
}

const std::vector<RuleInfo> &
rules()
{
    static const std::vector<RuleInfo> registry = {
        // --- Graph well-formedness --------------------------------------
        {"DF-DANGLE", Severity::Error,
         "every Target::inst names an instruction inside the block"},
        {"DF-SLOT", Severity::Error,
         "every Target::srcSlot is below the consumer's numSrcs"},
        {"DF-WORD", Severity::Error,
         "every Target::wordIdx is below the producer's result width "
         "(lmwCount for Lmw, 1 otherwise)"},
        {"DF-ARITY", Severity::Error,
         "numSrcs matches the opcode's architectural arity (immB consumes "
         "one source; memory ops may carry one ordering-token source)"},
        {"DF-NOPROD", Severity::Error,
         "every live source slot has a producer; an unfed slot never "
         "fires (deadlock at the first activation)"},
        {"DF-RACE", Severity::Error,
         "at most one operand is delivered to each (inst, srcSlot) per "
         "activation; two producers race for one reservation-station word"},
        {"DF-CYCLE", Severity::Error,
         "the intra-block operand graph is acyclic; a dataflow cycle "
         "can never fire"},
        // --- Memory ordering --------------------------------------------
        {"MEM-ORDER", Severity::Error,
         "accesses proven to overlap, at least one a store, are connected "
         "by a dataflow (token) path; unordered they race within an "
         "activation"},
        {"MEM-MAY", Severity::Warning,
         "accesses that may alias (address arithmetic not statically "
         "comparable), at least one a store, are connected by a dataflow "
         "path"},
        // --- Revitalization ---------------------------------------------
        {"REV-PERSIST", Severity::Error,
         "persistent operand bits and once-only instructions appear only "
         "on machines with the operand-revitalization mechanism"},
        {"REV-FEED", Severity::Error,
         "once-only producers feed persistent slots and re-firing "
         "producers feed non-persistent slots; any mismatch deadlocks or "
         "reads stale operands after a revitalize"},
        // --- Configuration legality -------------------------------------
        {"CFG-OPCODE", Severity::Error,
         "sequential control opcodes stay out of mapped blocks, memory "
         "ops carry a memory space, and regTile marks only Read/Write"},
        {"CFG-REG", Severity::Error,
         "register indices (Read/Write imm, plan register plumbing) are "
         "below the machine's register count"},
        {"CFG-TABLE", Severity::Error,
         "every Tld names a table the kernel defines"},
        {"CFG-TBL-BUDGET", Severity::Warning,
         "with the L0 data store enabled, each lookup table fits one "
         "tile's store and all tables fit the grid's aggregate capacity"},
        // --- Capacity ---------------------------------------------------
        {"CAP-GRID", Severity::Error,
         "block dimensions fit the machine and every instruction is "
         "placed inside the block's grid"},
        {"CAP-SLOT", Severity::Error,
         "no two instructions of a block share a reservation-station "
         "(row, col, slot)"},
        {"CAP-TILE", Severity::Error,
         "per-tile instruction count stays within the block's slot "
         "capacity"},
        // --- Sequential (MIMD) programs ---------------------------------
        {"SEQ-OP", Severity::Error,
         "sequential programs use only opcodes the MIMD pipeline "
         "implements (no Lmw/Read/Write/ActIdx; memory ops carry a space)"},
        {"SEQ-BR", Severity::Error,
         "every branch target is an instruction index inside the program"},
        {"SEQ-REG", Severity::Error,
         "register operands are below the program's register count, "
         "which fits the tile's operand buffers"},
        {"SEQ-HALT", Severity::Error,
         "the program contains a Halt (kernel instances must terminate)"},
        // --- Performance advisories (static cost model) -------------------
        {"PERF-HOP", Severity::Advisory,
         "operand-network hop mass per activation stays within 4x the "
         "placement lower bound (unavoidable edge/register-tile "
         "crossings); above it the placement wastes network bandwidth"},
        {"PERF-CAP", Severity::Advisory,
         "steady-state throughput is not limited by a single structural "
         "resource; when it is, the bottleneck resource is named"},
        {"PERF-UNROLL", Severity::Advisory,
         "reservation stations are reasonably filled; a legal larger "
         "unroll exists when occupancy is below half at less than the "
         "maximum unroll"},
    };
    return registry;
}

const RuleInfo *
ruleByName(const std::string &id)
{
    for (const auto &r : rules())
        if (id == r.id)
            return &r;
    return nullptr;
}

std::string
Diag::location() const
{
    std::ostringstream os;
    os << block;
    if (inst >= 0)
        os << (block.empty() ? "i" : ":i") << inst;
    if (slot >= 0)
        os << ".s" << slot;
    return os.str();
}

void
Report::add(const std::string &rule, std::string block, int inst, int slot,
            std::string message)
{
    const RuleInfo *info = ruleByName(rule);
    panic_if(!info, "static-check finding names unknown rule '%s'",
             rule.c_str());
    Diag d;
    d.rule = rule;
    d.severity = info->severity;
    d.block = std::move(block);
    d.inst = inst;
    d.slot = slot;
    d.message = std::move(message);
    diags.push_back(std::move(d));
}

void
Report::sortFindings()
{
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diag &a, const Diag &b) {
                         if (a.rule != b.rule)
                             return a.rule < b.rule;
                         if (a.block != b.block)
                             return a.block < b.block;
                         if (a.inst != b.inst)
                             return a.inst < b.inst;
                         if (a.slot != b.slot)
                             return a.slot < b.slot;
                         return a.message < b.message;
                     });
}

size_t
Report::count(Severity s) const
{
    size_t n = 0;
    for (const auto &d : diags)
        if (d.severity == s)
            ++n;
    return n;
}

size_t
Report::countRule(const std::string &rule) const
{
    size_t n = 0;
    for (const auto &d : diags)
        if (d.rule == rule)
            ++n;
    return n;
}

std::string
Report::describe() const
{
    std::ostringstream os;
    for (const auto &d : diags)
        os << d.rule << " " << severityName(d.severity) << " "
           << d.location() << ": " << d.message << "\n";
    return os.str();
}

} // namespace dlp::check
