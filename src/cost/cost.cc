/**
 * @file
 * SIMD (mapped-block) side of the static cost model.
 *
 * Mirrors BlockEngine's charging exactly, but uncontended (every
 * resource grant at its request tick) and symbolic (no data values):
 * the per-op completion times reproduce execute()'s arithmetic, the
 * pressure table reproduces the constructor's resource registry with
 * each resource's true service interval, and the steady/once-only
 * split reproduces operand revitalization. Where the engine's timing
 * depends on data (L1/L2 bank index, hit or miss), the model takes the
 * minimum, which keeps every derived bound sound.
 */

#include "cost/cost.hh"

#include <algorithm>
#include <cstdio>
#include <map>

#include "check/graph.hh"
#include "common/bitutils.hh"
#include "isa/opcodes.hh"

namespace dlp::cost {

namespace {

using isa::MappedBlock;
using isa::MappedInst;
using isa::MemSpace;
using isa::Op;

/**
 * Named busy-tick demand per steady activation, keyed by resource
 * instance. std::map keeps the argmax deterministic under ties (first
 * name in lexicographic order wins).
 */
using Pressure = std::map<std::string, uint64_t>;

std::string
key(const char *cls, unsigned a)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s(%u)", cls, a);
    return buf;
}

std::string
key(const char *cls, unsigned a, unsigned b)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s(%u,%u)", cls, a, b);
    return buf;
}

/** SMC bank-port busy ticks for an nwords burst (SmcSubsystem::read). */
uint64_t
smcBurstTicks(const core::MachineParams &m, unsigned nwords)
{
    unsigned wordsPerTick = m.memParams.smcWordsPerCycle / ticksPerCycle;
    if (wordsPerTick == 0)
        wordsPerTick = 1;
    constexpr unsigned lineWords = 4;
    uint64_t lines = divCeil(nwords, lineWords);
    return divCeil(lines * lineWords, wordsPerTick);
}

uint64_t
manhattan(const MappedInst &a, const MappedInst &b)
{
    uint64_t dr = a.row > b.row ? a.row - b.row : b.row - a.row;
    uint64_t dc = a.col > b.col ? a.col - b.col : b.col - a.col;
    return dr + dc;
}

/** Walks the per-activation network demand of one block. */
struct NetTally
{
    Pressure &pressure;
    uint64_t hops = 0;

    /// Mesh route from (srow,scol) to (drow,dcol), X then Y, exactly as
    /// MeshNetwork::route charges its directed links.
    void
    route(unsigned srow, unsigned scol, unsigned drow, unsigned dcol)
    {
        unsigned r = srow, c = scol;
        while (c != dcol) {
            if (c < dcol) {
                pressure[key("link.east", r, c)] += 1;
                ++c;
            } else {
                pressure[key("link.west", r, c)] += 1;
                --c;
            }
            ++hops;
        }
        while (r != drow) {
            if (r < drow) {
                pressure[key("link.south", r, c)] += 1;
                ++r;
            } else {
                pressure[key("link.north", r, c)] += 1;
                --r;
            }
            ++hops;
        }
    }

    void
    toEdge(unsigned row, unsigned col)
    {
        route(row, col, row, 0);
        pressure[key("edgeOut", row)] += 1;
        ++hops;
    }

    void
    fromEdge(unsigned row, unsigned col)
    {
        pressure[key("edgeIn", row)] += 1;
        ++hops;
        route(row, 0, row, col);
    }

    void
    channel(unsigned row, unsigned lane, unsigned dstRow, unsigned dstCol)
    {
        pressure[key("chan", row, lane & 1)] += 1;
        hops += dstCol + (dstRow > row ? dstRow - row : row - dstRow);
    }
};

/** Uncontended per-op completion times for one block (one CP pass). */
struct PathTimes
{
    /// Result-availability time at the producer (for Lmw: the bank
    /// "served" time; targets add the channel delivery on the edge).
    std::vector<uint64_t> done;
    uint64_t maxTime = 0;       ///< over every done and arrival
    uint64_t maxWriteDone = 0;  ///< over register Write completions
};

/**
 * Longest-path times over the operand graph, uncontended, with every
 * source operand of the included set available at tick 0. When
 * steadyOnly is set, once-only instructions are excluded: their
 * consumers see persistent operands that are already present when the
 * activation starts (operand revitalization).
 */
PathTimes
pathTimes(const MappedBlock &block, const check::BlockGraph &g,
          const core::MachineParams &m, bool steadyOnly)
{
    PathTimes pt;
    size_t n = block.insts.size();
    pt.done.assign(n, 0);
    if (g.cyclic() || !g.sound)
        return pt; // conservative: no path claim on malformed graphs

    const uint64_t hop = m.hopTicks;
    const uint64_t l1Min = cyclesToTicks(m.memParams.l1HitLatency);
    const uint64_t bankLat = cyclesToTicks(m.memParams.smcLatency);

    for (uint32_t i : g.topo) {
        const MappedInst &mi = block.insts[i];
        if (steadyOnly && mi.onceOnly)
            continue;

        uint64_t ready = 0;
        for (unsigned s = 0; s < mi.numSrcs; ++s) {
            for (const auto &pr : g.producers[i][s]) {
                const MappedInst &p = block.insts[pr.inst];
                if (steadyOnly && p.onceOnly)
                    continue; // operand persists from the first firing
                uint64_t arrive;
                if (p.op == Op::Lmw) {
                    // Channel delivery straight from the row's bank.
                    uint64_t vdist = mi.row > p.row ? mi.row - p.row
                                                    : p.row - mi.row;
                    arrive = pt.done[pr.inst] + 1 + (mi.col + vdist) * hop;
                } else {
                    arrive = pt.done[pr.inst] + manhattan(p, mi) * hop +
                             (p.regTile ? hop : 0);
                }
                ready = std::max(ready, arrive);
            }
        }

        uint64_t edge = ready + ticksPerCycle + (mi.col + 1) * hop;
        uint64_t done;
        switch (mi.op) {
          case Op::Read:
            done = ready + cyclesToTicks(m.regLatency) + hop;
            break;
          case Op::Write:
            done = ready + hop + cyclesToTicks(m.regLatency);
            pt.maxWriteDone = std::max(pt.maxWriteDone, done);
            break;
          case Op::Ld:
            if (mi.space == MemSpace::Smc && m.mech.smc) {
                uint64_t served = edge + smcBurstTicks(m, 1) + bankLat;
                done = served + 1 + mi.col * hop;
            } else {
                // Cached round trip; bank distance and hit state are
                // data-dependent, so charge the minimum (L1 hit, own
                // bank).
                done = edge + l1Min + hop + mi.col * hop;
            }
            break;
          case Op::Lmw:
            if (m.mech.smc)
                done = edge + smcBurstTicks(m, mi.lmwCount) + bankLat;
            else
                done = edge + l1Min; // per-word cached fallback, min
            break;
          case Op::St:
            if (mi.space == MemSpace::Smc && m.mech.smc)
                done = edge + 1; // store-buffer acceptance
            else
                done = edge + l1Min;
            break;
          case Op::Tld:
            if (m.mech.l0DataStore)
                done = ready + cyclesToTicks(m.l0Latency);
            else
                done = edge + l1Min + hop + mi.col * hop;
            break;
          default:
            done = ready + cyclesToTicks(isa::opInfo(mi.op).latency);
            break;
        }
        pt.done[i] = done;
        pt.maxTime = std::max(pt.maxTime, done);
    }
    return pt;
}

/** Static per-activation analysis of one mapped block. */
SegmentCost
analyzeBlock(const MappedBlock &block, const core::MachineParams &m)
{
    SegmentCost sc;
    sc.block = block.name;
    sc.insts = block.insts.size();

    sc.mapTicks = cyclesToTicks(divCeil(block.insts.size(), m.mapBandwidth) +
                                m.mapOverhead);
    sc.gapTicks = m.mech.instRevitalize ? cyclesToTicks(m.revitalizeDelay)
                                        : sc.mapTicks;

    // --- Pressure and hop mass over the steady (re-firing) set ----------
    Pressure pressure;
    NetTally net{pressure};
    uint64_t nonRegTile = 0;

    for (const auto &mi : block.insts) {
        if (!mi.regTile)
            ++nonRegTile;
        if (mi.onceOnly)
            continue;
        ++sc.steadyInsts;

        unsigned row = mi.row, col = mi.col;
        bool injects = true;
        switch (mi.op) {
          case Op::Read:
            pressure[key("regRead", unsigned(mi.imm) % m.regBanks)] +=
                ticksPerCycle;
            break;
          case Op::Write:
            pressure[key("regWrite", unsigned(mi.imm) % m.regBanks)] +=
                ticksPerCycle;
            sc.hopLowerBound += 1; // forced hop into the register tile
            ++net.hops;
            injects = false;
            break;
          case Op::Ld:
            pressure[key("issue", row, col)] += ticksPerCycle;
            net.toEdge(row, col);
            if (mi.space == MemSpace::Smc && m.mech.smc) {
                uint64_t units = smcBurstTicks(m, 1);
                pressure[key("smcBank", row)] += units;
                sc.smcReadUnits += units;
                net.channel(row, 0, row, col);
            } else {
                net.fromEdge(row, col);
            }
            sc.hopLowerBound += 2;
            break;
          case Op::Lmw: {
            pressure[key("issue", row, col)] += ticksPerCycle;
            net.toEdge(row, col);
            if (m.mech.smc) {
                uint64_t units = smcBurstTicks(m, mi.lmwCount);
                pressure[key("smcBank", row)] += units;
                sc.smcReadUnits += units;
            }
            for (const auto &t : mi.targets) {
                const auto &dst = block.insts[t.inst];
                net.channel(row, t.wordIdx, dst.row, dst.col);
            }
            sc.hopLowerBound += 1;
            injects = false;
            break;
          }
          case Op::St:
            pressure[key("issue", row, col)] += ticksPerCycle;
            net.toEdge(row, col);
            if (mi.space == MemSpace::Smc && m.mech.smc) {
                pressure[key("storeBuf", row)] += 1;
                sc.smcWriteUnits += 1;
            }
            sc.hopLowerBound += 1;
            break;
          case Op::Tld:
            if (m.mech.l0DataStore) {
                pressure[key("l0", row, col)] += ticksPerCycle;
            } else {
                pressure[key("issue", row, col)] += ticksPerCycle;
                net.toEdge(row, col);
                net.fromEdge(row, col);
                sc.hopLowerBound += 2;
            }
            break;
          default:
            pressure[key("issue", row, col)] += ticksPerCycle;
            if (isa::opInfo(mi.op).fu == isa::FuClass::FpDiv) {
                pressure[key("div", row, col)] +=
                    cyclesToTicks(isa::opInfo(Op::Fdiv).latency);
            }
            break;
        }

        if (injects && !mi.targets.empty()) {
            for (const auto &t : mi.targets) {
                const auto &dst = block.insts[t.inst];
                pressure[key("inject", row, col)] += m.injectInterval;
                net.route(row, col, dst.row, dst.col);
                if (mi.regTile) {
                    ++net.hops; // edge crossing from the register tile
                    sc.hopLowerBound += 1;
                }
            }
        }
    }
    sc.hopMass = net.hops;

    for (const auto &[name, busy] : pressure) {
        if (busy > sc.maxPressureTicks) {
            sc.maxPressureTicks = busy;
            sc.bottleneck = name;
        }
        bool isNet = name.compare(0, 5, "link.") == 0 ||
                     name.compare(0, 4, "edge") == 0 ||
                     name.compare(0, 4, "chan") == 0;
        if (isNet)
            sc.maxLinkTicks = std::max(sc.maxLinkTicks, busy);
    }

    // --- Critical paths over the operand graph ---------------------------
    check::BlockGraph g = check::buildGraph(block);
    PathTimes full = pathTimes(block, g, m, false);
    PathTimes steady = pathTimes(block, g, m, true);
    sc.criticalPathTicks = full.maxTime;
    sc.steadyWritePathTicks = steady.maxWriteDone;
    sc.writeDrainTicks = full.maxWriteDone;

    sc.boundTicks = std::max(sc.maxPressureTicks,
                             sc.gapTicks + sc.steadyWritePathTicks);

    uint64_t budget = uint64_t(m.totalSlots()) /
                      std::max(1u, m.pipelineFrames);
    sc.rsOccupancy = budget ? double(nonRegTile) / double(budget) : 0.0;
    return sc;
}

} // namespace

CostReport
analyzeSimd(const sched::SimdPlan &plan, const core::MachineParams &m,
            uint64_t records, uint64_t batches)
{
    CostReport rep;
    rep.analyzed = true;
    rep.mimd = false;
    rep.plan = plan.name;
    rep.config = m.name;
    rep.unroll = plan.unroll;
    rep.perActivationRemap = !m.mech.instRevitalize;
    rep.tiles = m.tiles();
    rep.gridCols = m.cols;

    for (const auto &seg : plan.segments) {
        SegmentCost sc = analyzeBlock(seg.block, m);
        sc.weight = std::max<uint64_t>(1, seg.activations);
        rep.segments.push_back(std::move(sc));
    }
    if (rep.segments.empty())
        return rep;

    rep.mapTicksMin = UINT64_MAX;
    rep.boundTicksPerActivation = UINT64_MAX;
    const SegmentCost *binding = nullptr;
    for (const auto &sc : rep.segments) {
        rep.mapTicksMin = std::min(rep.mapTicksMin, sc.mapTicks);
        if (sc.boundTicks < rep.boundTicksPerActivation) {
            rep.boundTicksPerActivation = sc.boundTicks;
            binding = &sc;
        }
        rep.criticalPathTicks =
            std::max(rep.criticalPathTicks, sc.criticalPathTicks);
        rep.hopMass += sc.hopMass;
        rep.hopLowerBound += sc.hopLowerBound;
        rep.smcReadUnits += sc.smcReadUnits;
        rep.smcWriteUnits += sc.smcWriteUnits;
        rep.rsOccupancy = std::max(rep.rsOccupancy, sc.rsOccupancy);
    }
    if (binding) {
        rep.maxPressureTicks = binding->maxPressureTicks;
        rep.bottleneck = binding->bottleneck;
    }

    // Throughput estimate for ranking. The stream arrives in `batches`
    // dependent batches, each staged through the SMC in chunks of
    // layout.chunkRecords; every such run pays its own map and
    // pipeline fill/drain ramp, which dominates short runs (the grid
    // at small scale divisors). Within a run, a resident plan runs
    // groups x weight activations paced at the steady bound; a
    // multi-segment plan maps each segment in turn per group, runs
    // weight - 1 activations at the steady bound, then drains the last
    // activation's register writes before the next segment may map
    // (the engine orders each map after actMaxWrite). A single-
    // activation segment never reaches steady state, so its drain is
    // the full-graph write path, onceOnly ops included.
    uint64_t chunk = plan.layout.chunkRecords;
    uint64_t nBatches = std::max<uint64_t>(1, batches);
    uint64_t runs, recsPerRun;
    if (records) {
        uint64_t perBatch = divCeil(records, nBatches);
        runs = nBatches * (chunk ? divCeil(perBatch, chunk) : 1);
        recsPerRun = divCeil(records, runs);
    } else {
        runs = 1;
        recsPerRun = chunk ? chunk : uint64_t(1) << 20;
    }
    uint64_t groups = divCeil(recsPerRun, std::max(1u, plan.unroll));

    double perRun;
    if (plan.resident()) {
        const SegmentCost &sc = rep.segments[0];
        perRun = double(sc.mapTicks) +
                 double(groups) * double(sc.weight) *
                     double(sc.boundTicks) +
                 double(rep.criticalPathTicks);
    } else {
        double perGroup = 0.0;
        for (const auto &sc : rep.segments) {
            uint64_t drain = sc.weight == 1 ? sc.writeDrainTicks
                                            : sc.steadyWritePathTicks;
            perGroup += double(sc.mapTicks) +
                        double(sc.weight - 1) * double(sc.boundTicks) +
                        double(std::max(sc.boundTicks, drain));
        }
        perRun = double(groups) * perGroup;
    }
    double denom = records ? double(records) : double(recsPerRun);
    rep.predictedTicksPerRecord = double(runs) * perRun / denom;
    return rep;
}

uint64_t
boundTotalTicks(const CostReport &report, uint64_t activations,
                uint64_t mappings, uint64_t records)
{
    if (!report.analyzed)
        return 0;

    if (report.mimd) {
        if (report.tiles == 0)
            return 0;
        // Every tile walks floor(records/tiles) record-loop iterations;
        // each iteration serializes one CFG cycle at one instruction per
        // cycle, and all tiles of a row share that row's SMC bank and
        // store-buffer port. The 2*mappings slack absorbs the partial
        // first/last iterations of each chunked run.
        uint64_t perTile = records / report.tiles;
        uint64_t slack = 2 * mappings;
        uint64_t iters = perTile > slack ? perTile - slack : 0;
        uint64_t best = iters * report.minCycleInsts * ticksPerCycle;
        best = std::max(best,
                        iters * report.gridCols * report.minCycleLoadUnits);
        best = std::max(best,
                        iters * report.gridCols * report.minCycleStoreUnits);
        return mappings * report.setupTicks + best;
    }

    if (activations == 0)
        return 0;
    // Pacing: every activation transition advances the schedule by at
    // least the steady bound, and every mapping event (one per chunk
    // without instruction revitalization, `mappings` with it) pays the
    // map time first.
    uint64_t maps = report.perActivationRemap ? 1 : mappings;
    return maps * report.mapTicksMin +
           (activations - 1) * report.boundTicksPerActivation;
}

} // namespace dlp::cost
