/**
 * @file
 * The self-audit subsystem under test: the invariant auditor must pass
 * clean runs and flag corrupted ones, the differential IR fuzzer must be
 * deterministic and find nothing on a fixed seed budget, and the bugs
 * the fuzzer exposed during development stay pinned by their generating
 * seeds so they cannot regress silently.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "kernels/interp.hh"
#include "kernels/ir.hh"
#include "kernels/workload.hh"
#include "verify/audit.hh"
#include "verify/fuzz.hh"

using namespace dlp;
using verify::FuzzOptions;
using verify::FuzzReport;

namespace {

arch::ExperimentResult
runDct(const std::string &config)
{
    auto wl = kernels::makeWorkload("dct", 8, 77);
    arch::TripsProcessor cpu(arch::configByName(config));
    return cpu.run(*wl);
}

std::vector<std::string>
violationNames(const std::vector<arch::AuditFinding> &findings)
{
    std::vector<std::string> names;
    for (const auto &f : findings)
        names.push_back(f.invariant);
    return names;
}

} // namespace

// --- Auditor ---------------------------------------------------------------

TEST(Auditor, RegistryIsNonEmptyWithUniqueNames)
{
    const auto &regs = verify::invariants();
    ASSERT_GE(regs.size(), 10u);
    std::set<std::string> names;
    for (const auto &inv : regs) {
        EXPECT_TRUE(names.insert(inv.name).second)
            << "duplicate invariant name " << inv.name;
        EXPECT_NE(std::string(inv.law), "");
    }
}

TEST(Auditor, CleanRunsAuditClean)
{
    for (const char *config : {"baseline", "S", "S-O-D", "M-D"}) {
        auto res = runDct(config);
        ASSERT_TRUE(res.verified) << config << ": " << res.error;
        EXPECT_EQ(verify::auditAndRecord(res), 0u)
            << config << ": " << (res.auditViolations.empty()
                                      ? ""
                                      : res.auditViolations[0].invariant +
                                            ": " +
                                            res.auditViolations[0].detail);
        EXPECT_TRUE(res.audited);
    }
}

TEST(Auditor, FlagsFailedVerification)
{
    auto res = runDct("S");
    res.verified = false;
    res.error = "synthetic";
    auto names = violationNames(verify::auditResult(res));
    EXPECT_NE(std::find(names.begin(), names.end(), "output-verified"),
              names.end());
}

TEST(Auditor, FlagsUsefulOpsExceedingExecuted)
{
    auto res = runDct("S");
    res.usefulOps = res.instsExecuted + 1;
    auto names = violationNames(verify::auditResult(res));
    EXPECT_NE(std::find(names.begin(), names.end(), "useful-le-executed"),
              names.end());
}

TEST(Auditor, FlagsCorruptedMeshHopCount)
{
    auto res = runDct("S");
    bool corrupted = false;
    for (auto &g : res.statGroups) {
        if (g.name == "noc.mesh" && g.scalars.count("totalHops")) {
            g.scalars["totalHops"] += 1.0;
            corrupted = true;
        }
    }
    ASSERT_TRUE(corrupted) << "mesh snapshot not found";
    auto names = violationNames(verify::auditResult(res));
    EXPECT_NE(
        std::find(names.begin(), names.end(), "mesh-hop-conservation"),
        names.end());
}

TEST(Auditor, FlagsCorruptedCacheBooks)
{
    auto res = runDct("S");
    bool corrupted = false;
    for (auto &g : res.statGroups) {
        if (g.name == "mem.sys" && g.scalars.count("l1Hits")) {
            g.scalars["l1Hits"] += 2.0;
            corrupted = true;
        }
    }
    ASSERT_TRUE(corrupted) << "memory-system snapshot not found";
    auto names = violationNames(verify::auditResult(res));
    EXPECT_NE(std::find(names.begin(), names.end(), "l1-conservation"),
              names.end());
}

TEST(Auditor, FlagsLostEvents)
{
    auto res = runDct("S");
    bool corrupted = false;
    for (auto &g : res.statGroups) {
        if (g.name == "core.simd" && g.formulas.count("eventsExecuted")) {
            g.formulas["eventsExecuted"] -= 1.0;
            corrupted = true;
        }
    }
    ASSERT_TRUE(corrupted) << "engine snapshot not found";
    auto names = violationNames(verify::auditResult(res));
    EXPECT_NE(std::find(names.begin(), names.end(), "event-conservation"),
              names.end());
}

TEST(Auditor, FlagsDisagreeingActivationCounters)
{
    auto res = runDct("S");
    res.activations += 3;
    auto names = violationNames(verify::auditResult(res));
    EXPECT_NE(
        std::find(names.begin(), names.end(), "activation-agreement"),
        names.end());
}

TEST(Auditor, EnableSwitchOverridesEnvironment)
{
    verify::setAuditEnabled(true);
    EXPECT_TRUE(verify::auditEnabled());
    verify::setAuditEnabled(false);
    EXPECT_FALSE(verify::auditEnabled());
    verify::setAuditEnabled(true);
    EXPECT_TRUE(verify::auditEnabled());
}

// --- Fuzzer ----------------------------------------------------------------

TEST(Fuzzer, GeneratorIsDeterministic)
{
    FuzzOptions o;
    o.seed = 7;
    auto a = verify::describeKernel(verify::buildFuzzKernel(o));
    auto b = verify::describeKernel(verify::buildFuzzKernel(o));
    EXPECT_EQ(a, b);
    o.seed = 8;
    auto c = verify::describeKernel(verify::buildFuzzKernel(o));
    EXPECT_NE(a, c);
}

TEST(Fuzzer, ReplayCommandNamesSeedAndConfig)
{
    FuzzOptions o;
    o.seed = 42;
    o.loops = 0;
    o.tables = false;
    std::string cmd = verify::replayCommand(o, "S-O-D");
    EXPECT_NE(cmd.find("--seed 42"), std::string::npos) << cmd;
    EXPECT_NE(cmd.find("S-O-D"), std::string::npos) << cmd;
    EXPECT_NE(cmd.find("--no-tables"), std::string::npos) << cmd;
}

TEST(Fuzzer, FixedSeedBudgetFindsNothing)
{
    std::vector<uint64_t> seeds;
    for (uint64_t s = 1; s <= 10; ++s)
        seeds.push_back(s);
    FuzzReport rep = verify::fuzzSeeds(seeds, FuzzOptions{});
    EXPECT_EQ(rep.runs, seeds.size() * arch::allConfigNames().size());
    EXPECT_TRUE(rep.clean())
        << rep.failures[0].config << ": " << rep.failures[0].detail
        << "\n  replay: " << rep.failures[0].replay;
}

// --- Regressions pinned by their generating seeds --------------------------
//
// These seeds exposed a real lowering bug during development: a dataflow
// block has no program order, so when the SIMD lowering fully unrolled a
// scratch store-loop plus reload-loop into one resident block, the
// reloads could fire before the stores and read zeros (S / S-O / S-O-D
// disagreed with the interpreter oracle while baseline and MIMD agreed).
// Fixed by threading memory-ordering tokens through same-segment
// accesses of every region that is both read and written. Each TEST
// below replays a minimized counterexample exactly as the fuzzer's
// replay line reported it.

namespace {

void
expectSeedClean(FuzzOptions o)
{
    FuzzReport rep = verify::fuzzOne(o);
    EXPECT_TRUE(rep.clean())
        << "seed " << o.seed << " on " << rep.failures[0].config << ": "
        << rep.failures[0].detail << "\n  replay: "
        << rep.failures[0].replay;
}

} // namespace

TEST(FuzzerRegression, Seed1825ScratchReloadVsCachedLoads)
{
    FuzzOptions o;
    o.seed = 1825;
    o.records = 1;
    o.nodeBudget = 24;
    o.loops = 0;
    o.tables = false;
    o.wideLoads = false;
    expectSeedClean(o);
}

TEST(FuzzerRegression, Seed68FullGenerator)
{
    FuzzOptions o;
    o.seed = 68;
    o.records = 3;
    expectSeedClean(o);
}

TEST(FuzzerRegression, Seed111FullGenerator)
{
    FuzzOptions o;
    o.seed = 111;
    expectSeedClean(o);
}

TEST(FuzzerRegression, Seed604FullGenerator)
{
    FuzzOptions o;
    o.seed = 604;
    expectSeedClean(o);
}

// The same hazard, pinned as a directed kernel independent of generator
// drift: stage values into scratch in one loop, reduce them in a second
// loop, and check every Table 5 configuration against the interpreter.
TEST(FuzzerRegression, ScratchStoreThenReloadOrdersCorrectly)
{
    kernels::KernelBuilder b("scratch_order", kernels::Domain::Multimedia);
    b.setRecord(1, 1, 4);
    kernels::Value seed = b.inWord(0);

    b.beginLoop(4);
    kernels::Value i = b.loopIdx();
    b.scratchStore(i, b.opImm(isa::Op::Add, b.xor_(seed, i), 0x9e3779b9));
    b.endLoop();

    kernels::Value zero = b.imm(0);
    b.beginLoop(4);
    kernels::Value acc = b.carry(zero);
    b.setCarryNext(acc, b.add(acc, b.scratchLoad(b.loopIdx())));
    b.endLoop();
    b.outWord(0, b.exitValue(acc));

    kernels::Kernel k = b.build();
    const uint64_t records = 3;
    std::vector<Word> input = {0x27a871eed0bfe18aull, 0xbd1ae8c6fa266225ull,
                               0xa8f8c25aaff6acc7ull};
    std::vector<Word> expected;
    kernels::interpretBatch(k, input, expected, records);

    struct Batch : kernels::Workload {
        std::vector<Word> in, exp;
        uint64_t n;
        bool done = false;
        std::string mismatch;
        Batch(kernels::Kernel kn, std::vector<Word> i,
              std::vector<Word> e, uint64_t rec)
            : Workload(std::move(kn)), in(std::move(i)),
              exp(std::move(e)), n(rec)
        {}
        bool nextBatch(std::vector<Word> &input,
                       uint64_t &numRecords) override
        {
            if (done)
                return false;
            input = in;
            numRecords = n;
            done = true;
            return true;
        }
        void
        consumeOutput(const std::vector<Word> &out) override
        {
            for (size_t w = 0; w < exp.size(); ++w) {
                if (w >= out.size() || out[w] != exp[w]) {
                    mismatch = "output word " + std::to_string(w) +
                               " diverges from the interpreter";
                    return;
                }
            }
        }
        bool
        verify(std::string &err) const override
        {
            err = mismatch;
            return mismatch.empty();
        }
        uint64_t totalRecords() const override { return n; }
    };

    for (const auto &config : arch::allConfigNames()) {
        Batch wl(k, input, expected, records);
        arch::TripsProcessor cpu(arch::configByName(config));
        auto res = cpu.run(wl);
        EXPECT_TRUE(res.verified) << config << ": " << res.error;
    }
}
