/**
 * @file
 * Epoch fast-forwarding: process-wide gate and tuning knobs.
 *
 * Once a plan reaches steady state (PR 6's occupancy-signature streak
 * for resident blocks; a streak of identical whole-group digests for
 * multi-segment plans), the block engine records two consecutive units
 * into an epoch IR, validates them against each other with the pass
 * pipeline in passes.hh, and — when every pass holds — replays the
 * remaining units arithmetically instead of firing events.
 * This header owns the global on/off gate (`DLP_FASTFORWARD`, on by
 * default) plus the controller thresholds the engine consults.
 */

#ifndef DLP_EPOCH_EPOCH_HH
#define DLP_EPOCH_EPOCH_HH

#include <cstdint>

namespace dlp::epoch {

/**
 * Is epoch fast-forwarding enabled? Defaults to on; the DLP_FASTFORWARD
 * environment variable ("0" disables) or setFastForwardEnabled()
 * override. Fast-forwarding is bit-identity-preserving, so the gate
 * exists for differential testing and performance comparison, not
 * safety.
 */
bool fastForwardEnabled();

/** Force the gate programmatically (wins over the environment). */
void setFastForwardEnabled(bool on);

/**
 * Signature-repeat streak required before the engine attempts to record
 * an epoch. Small: recording costs two ordinary iterations, and a
 * failed validation backs off exponentially.
 */
uint64_t armStreak();

/**
 * Cap on replayed iterations per epoch; 0 = unlimited (the default).
 * Tests lower this to force epochs to interleave with real event-level
 * simulation, exercising epoch exit/re-entry.
 */
uint64_t maxIterationsPerEpoch();
void setMaxIterationsPerEpoch(uint64_t iterations);

/** Epoch-record attempts per engine run before giving up entirely. */
constexpr unsigned maxAttemptsPerRun = 8;

/**
 * RAII save/restore of the gate, for differential harnesses that flip
 * fast-forwarding on and off around otherwise identical runs.
 */
class FastForwardGuard
{
  public:
    FastForwardGuard() : saved(fastForwardEnabled()) {}
    ~FastForwardGuard() { setFastForwardEnabled(saved); }

    FastForwardGuard(const FastForwardGuard &) = delete;
    FastForwardGuard &operator=(const FastForwardGuard &) = delete;

  private:
    bool saved;
};

} // namespace dlp::epoch

#endif // DLP_EPOCH_EPOCH_HH
