#include "ref/shading.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace dlp::ref {

namespace {

/** clip = m (3x4, row-major) * (p, 1). */
void
xform34(const std::array<double, 12> &m, const double p[3], double out[3])
{
    for (int r = 0; r < 3; ++r) {
        out[r] = m[4 * r] * p[0] + m[4 * r + 1] * p[1] +
                 m[4 * r + 2] * p[2] + m[4 * r + 3];
    }
}

/** out = m (3x3, row-major) * v. */
void
xform33(const std::array<double, 9> &m, const double v[3], double out[3])
{
    for (int r = 0; r < 3; ++r) {
        out[r] = m[3 * r] * v[0] + m[3 * r + 1] * v[1] +
                 m[3 * r + 2] * v[2];
    }
}

/** x^8 by repeated squaring: the kernels use the same three multiplies. */
double
pow8(double x)
{
    double x2 = x * x;
    double x4 = x2 * x2;
    return x4 * x4;
}

double
maxZero(double x)
{
    return std::fmax(x, 0.0);
}

/** A plausible-looking orthonormal-ish 3x4 transform from a seed. */
std::array<double, 12>
randomXform(Rng &rng)
{
    std::array<double, 12> m{};
    for (auto &v : m)
        v = rng.uniform(-1.0, 1.0);
    // Keep it well-conditioned: bias the diagonal.
    m[0] += 1.5;
    m[5] += 1.5;
    m[10] += 1.5;
    return m;
}

std::array<double, 9>
randomRotation(Rng &rng)
{
    // Gram-Schmidt a random basis to an orthonormal rotation so normals
    // keep unit length without a normalize in the kernel.
    Vec3 a{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    Vec3 b{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    a = normalize(a);
    double d = dot(a, b);
    b = normalize({b.x - d * a.x, b.y - d * a.y, b.z - d * a.z});
    Vec3 c{a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
           a.x * b.y - a.y * b.x};
    return {a.x, a.y, a.z, b.x, b.y, b.z, c.x, c.y, c.z};
}

Vec3
randomUnit(Rng &rng)
{
    return normalize(
        {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(0.1, 1)});
}

Vec3
randomColor(Rng &rng, double lo, double hi)
{
    return {rng.uniform(lo, hi), rng.uniform(lo, hi), rng.uniform(lo, hi)};
}

} // namespace

Vec3
normalize(const Vec3 &v)
{
    double len = std::sqrt(dot(v, v));
    panic_if(len == 0.0, "normalizing zero vector");
    return {v.x / len, v.y / len, v.z / len};
}

void
vertexSimple(const double in[7], double out[6], const VertexSimpleParams &p)
{
    const double *pos = in;
    const double *nin = in + 3;
    double albedo = in[6];

    xform34(p.mvp, pos, out); // clip -> out[0..2]

    double n[3];
    xform33(p.nrm, nin, n);

    double ndotl = maxZero(n[0] * p.lightDir.x + n[1] * p.lightDir.y +
                           n[2] * p.lightDir.z);
    double ndoth = maxZero(n[0] * p.halfVec.x + n[1] * p.halfVec.y +
                           n[2] * p.halfVec.z);
    double spec = pow8(ndoth);

    const double light[3] = {p.lightColor.x, p.lightColor.y, p.lightColor.z};
    const double amb[3] = {p.ambient.x, p.ambient.y, p.ambient.z};
    const double specC[3] = {p.specular.x, p.specular.y, p.specular.z};
    const double emis[3] = {p.emissive.x, p.emissive.y, p.emissive.z};
    for (int c = 0; c < 3; ++c) {
        out[3 + c] =
            emis[c] + albedo * (amb[c] + light[c] * ndotl) +
            specC[c] * spec;
    }
}

void
fragmentSimple(const double in[8], double out[4], const Texture2D &tex,
               const FragmentSimpleParams &p)
{
    const double *n = in;
    double u = in[3], v = in[4];
    const double *l = in + 5;

    double rgb[3];
    tex.sampleBilinear(u, v, rgb);

    double ndotl = maxZero(n[0] * l[0] + n[1] * l[1] + n[2] * l[2]);
    double ndoth = maxZero(n[0] * p.halfVec.x + n[1] * p.halfVec.y +
                           n[2] * p.halfVec.z);
    double spec = pow8(ndoth);

    const double amb[3] = {p.ambient.x, p.ambient.y, p.ambient.z};
    const double light[3] = {p.lightColor.x, p.lightColor.y, p.lightColor.z};
    const double specC[3] = {p.specular.x, p.specular.y, p.specular.z};
    for (int c = 0; c < 3; ++c)
        out[c] = rgb[c] * (amb[c] + light[c] * ndotl) + specC[c] * spec;
    out[3] = 1.0;
}

void
vertexReflection(const double in[9], double out[6],
                 const VertexReflectionParams &p)
{
    const double *pos = in;
    const double *nin = in + 3;

    xform34(p.mvp, pos, out); // clip

    double wpos[3];
    xform34(p.world, pos, wpos);
    double n[3];
    xform33(p.nrm, nin, n);

    double v[3] = {p.eye.x - wpos[0], p.eye.y - wpos[1], p.eye.z - wpos[2]};
    double len2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
    double invLen = 1.0 / std::sqrt(len2);
    double vn[3] = {v[0] * invLen, v[1] * invLen, v[2] * invLen};

    double ndotv = n[0] * vn[0] + n[1] * vn[1] + n[2] * vn[2];
    double two = 2.0 * ndotv;
    out[3] = two * n[0] - vn[0];
    out[4] = two * n[1] - vn[1];
    out[5] = two * n[2] - vn[2];
}

void
fragmentReflection(const double in[5], double out[3], const CubeMap &cube,
                   const FragmentReflectionParams &p)
{
    double rgb[3];
    cube.sample(in[0], in[1], in[2], rgb);
    double intensity = in[3];
    double scale = p.fresnelBias + intensity;
    const double tint[3] = {p.tint.x, p.tint.y, p.tint.z};
    for (int c = 0; c < 3; ++c)
        out[c] = rgb[c] * tint[c] * scale;
}

void
vertexSkinning(const Vec3 &pos, const Vec3 &normal, unsigned count,
               const unsigned boneIdx[4], const double weight[4],
               double albedo, double outClip[3], double outColor[3],
               double outNormal[3], const SkinningParams &p)
{
    panic_if(count == 0 || count > 4, "skinning bone count %u", count);

    double accP[3] = {0, 0, 0};
    double accN[3] = {0, 0, 0};
    double pin[3] = {pos.x, pos.y, pos.z};
    double nin[3] = {normal.x, normal.y, normal.z};

    for (unsigned i = 0; i < count; ++i) {
        unsigned base = boneIdx[i] * 12;
        panic_if(base + 12 > p.palette.size(), "bone index %u out of range",
                 boneIdx[i]);
        const double *m = p.palette.data() + base;
        double w = weight[i];
        for (int r = 0; r < 3; ++r) {
            double tp = m[4 * r] * pin[0] + m[4 * r + 1] * pin[1] +
                        m[4 * r + 2] * pin[2] + m[4 * r + 3];
            double tn = m[4 * r] * nin[0] + m[4 * r + 1] * nin[1] +
                        m[4 * r + 2] * nin[2];
            accP[r] = accP[r] + w * tp;
            accN[r] = accN[r] + w * tn;
        }
    }

    xform34(p.mvp, accP, outClip);

    double ndotl = maxZero(accN[0] * p.lightDir.x + accN[1] * p.lightDir.y +
                           accN[2] * p.lightDir.z);
    const double amb[3] = {p.ambient.x, p.ambient.y, p.ambient.z};
    const double light[3] = {p.lightColor.x, p.lightColor.y, p.lightColor.z};
    for (int c = 0; c < 3; ++c)
        outColor[c] = albedo * (amb[c] + light[c] * ndotl);
    for (int c = 0; c < 3; ++c)
        outNormal[c] = accN[c];
}

Word
anisotropicFilter(double u, double v, double axisU, double axisV,
                  unsigned n, const Texture2D &tex, const AnisoParams &p)
{
    panic_if(n == 0 || n > AnisoParams::maxSamples,
             "anisotropic sample count %u", n);

    double acc[3] = {0, 0, 0};
    double wsum = 0.0;
    double center = 0.5 * double(n - 1);
    for (unsigned i = 0; i < n; ++i) {
        double t = double(i) - center;
        double uu = u + t * axisU;
        double vv = v + t * axisV;
        double rgb[3];
        tex.sampleNearest(uu, vv, rgb);
        double w = p.weights[(i * 5) & 127];
        acc[0] = acc[0] + w * rgb[0];
        acc[1] = acc[1] + w * rgb[1];
        acc[2] = acc[2] + w * rgb[2];
        wsum = wsum + w;
    }
    double inv = 1.0 / wsum;
    return packTexel(acc[0] * inv, acc[1] * inv, acc[2] * inv);
}

VertexSimpleParams
makeVertexSimpleParams(uint64_t seed)
{
    Rng rng(seed);
    VertexSimpleParams p;
    p.mvp = randomXform(rng);
    p.nrm = randomRotation(rng);
    p.lightDir = randomUnit(rng);
    p.halfVec = randomUnit(rng);
    p.lightColor = randomColor(rng, 0.5, 1.0);
    p.ambient = randomColor(rng, 0.05, 0.2);
    p.specular = randomColor(rng, 0.2, 0.6);
    p.emissive = randomColor(rng, 0.0, 0.1);
    return p;
}

FragmentSimpleParams
makeFragmentSimpleParams(uint64_t seed)
{
    Rng rng(seed);
    FragmentSimpleParams p;
    p.halfVec = randomUnit(rng);
    p.ambient = randomColor(rng, 0.05, 0.2);
    p.lightColor = randomColor(rng, 0.5, 1.0);
    p.specular = randomColor(rng, 0.2, 0.6);
    return p;
}

VertexReflectionParams
makeVertexReflectionParams(uint64_t seed)
{
    Rng rng(seed);
    VertexReflectionParams p;
    p.mvp = randomXform(rng);
    p.world = randomXform(rng);
    p.nrm = randomRotation(rng);
    p.eye = {rng.uniform(5, 10), rng.uniform(5, 10), rng.uniform(5, 10)};
    return p;
}

FragmentReflectionParams
makeFragmentReflectionParams(uint64_t seed)
{
    Rng rng(seed);
    FragmentReflectionParams p;
    p.tint = randomColor(rng, 0.6, 1.0);
    p.fresnelBias = rng.uniform(0.1, 0.3);
    return p;
}

SkinningParams
makeSkinningParams(uint64_t seed)
{
    Rng rng(seed);
    SkinningParams p;
    p.palette.resize(SkinningParams::maxBones * 12);
    for (unsigned b = 0; b < SkinningParams::maxBones; ++b) {
        auto m = randomXform(rng);
        for (int i = 0; i < 12; ++i)
            p.palette[b * 12 + i] = m[i];
    }
    p.mvp = randomXform(rng);
    p.lightDir = randomUnit(rng);
    p.lightColor = randomColor(rng, 0.5, 1.0);
    p.ambient = randomColor(rng, 0.05, 0.2);
    return p;
}

AnisoParams
makeAnisoParams(uint64_t seed)
{
    Rng rng(seed);
    AnisoParams p;
    p.weights.resize(128);
    for (auto &w : p.weights)
        w = rng.uniform(0.2, 1.0);
    return p;
}

} // namespace dlp::ref
