#include "driver/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "arch/configs.hh"
#include "common/logging.hh"
#include "driver/job_pool.hh"
#include "kernels/workload.hh"
#include "obs/timeline.hh"
#include "store/key.hh"
#include "verify/audit.hh"

namespace dlp::driver {

namespace {

using FixtureKey = std::tuple<std::string, uint64_t, uint64_t>;

/// Process-wide result cache, keyed by the content-addressed experiment
/// key so entries invalidate with the code version, kernel IR or
/// machine config. Guarded by cacheMutex; values are copied in and out
/// so callers never hold references into the table.
std::mutex cacheMutex;
std::map<std::string, arch::ExperimentResult> resultCacheTable;
std::atomic<uint64_t> cacheHitCount{0};
std::atomic<uint64_t> cacheMissCount{0};

std::string
keyOf(const SweepTask &t)
{
    return store::experimentKey(t.kernel, t.config, resolvedScale(t),
                                t.seed);
}

bool
cacheLookup(const std::string &key, arch::ExperimentResult &out)
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    auto it = resultCacheTable.find(key);
    if (it == resultCacheTable.end())
        return false;
    out = it->second;
    return true;
}

void
cacheStore(const std::string &key, const arch::ExperimentResult &result)
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    resultCacheTable.emplace(key, result);
}

/// Persistent store handles, one per directory, living for the whole
/// process so their traffic counters accumulate across sweeps.
std::mutex storeMutex;
std::string defaultStoreDir;
std::map<std::string, std::unique_ptr<store::ResultStore>> storeHandles;

store::ResultStore *
storeFor(const SweepOptions &opts)
{
    std::string dir = opts.storeDir;
    std::lock_guard<std::mutex> lock(storeMutex);
    if (dir.empty())
        dir = defaultStoreDir;
    if (dir.empty())
        if (const char *env = std::getenv("DLP_STORE"); env && *env)
            dir = env;
    if (dir.empty())
        return nullptr;
    auto it = storeHandles.find(dir);
    if (it == storeHandles.end())
        it = storeHandles
                 .emplace(dir, std::make_unique<store::ResultStore>(dir))
                 .first;
    return it->second.get();
}

/** Run one instantiation of a fixture on one machine configuration. */
arch::ExperimentResult
runOnFixture(const kernels::WorkloadFixture &fixture, const SweepTask &t)
{
    obs::HostSpan cellSpan(obs::Cat::Driver, "cell",
                           t.kernel + "/" + t.config);
    auto wl = fixture.instantiate();
    arch::TripsProcessor cpu(arch::configByName(t.config));
    auto res = cpu.run(*wl);
    fatal_if(!res.verified, "%s on %s failed verification: %s",
             t.kernel.c_str(), t.config.c_str(), res.error.c_str());
    // Under --audit / DLP_AUDIT=1, evaluate the conservation-law
    // registry on every completed run. Violations ride in the result
    // (and its JSON form) rather than aborting the sweep: a full grid's
    // worth of findings beats dying on the first one.
    if (verify::auditEnabled()) {
        obs::HostSpan auditSpan(obs::Cat::Audit, "audit",
                                t.kernel + "/" + t.config);
        verify::auditAndRecord(res);
    }
    return res;
}

} // namespace

void
SweepPlan::addGrid(const std::vector<std::string> &kernels,
                   const std::vector<std::string> &configs,
                   uint64_t scaleDiv, uint64_t seed)
{
    for (const auto &kernel : kernels)
        for (const auto &config : configs)
            add(kernel, config, scaleDiv, seed);
}

unsigned
effectiveJobs(const SweepOptions &opts)
{
    return opts.jobs ? opts.jobs : JobPool::defaultWorkers();
}

uint64_t
scaleFor(const std::string &kernel, uint64_t scaleDiv)
{
    uint64_t scale = kernels::defaultScale(kernel);
    if (scaleDiv > 1) {
        if (kernel == "fft") {
            // Transform length must stay a power of two.
            while (scaleDiv > 1 && scale > 32) {
                scale /= 2;
                scaleDiv /= 2;
            }
        } else {
            scale = std::max<uint64_t>(scale / scaleDiv, 16);
        }
    }
    return scale;
}

uint64_t
resolvedScale(const SweepTask &task)
{
    return task.scale ? task.scale : scaleFor(task.kernel, task.scaleDiv);
}

arch::ExperimentResult
runTask(const SweepTask &task)
{
    auto fixture = kernels::makeFixture(task.kernel, resolvedScale(task),
                                        task.seed);
    return runOnFixture(*fixture, task);
}

std::vector<arch::ExperimentResult>
runSweep(const SweepPlan &plan, const SweepOptions &opts)
{
    const size_t total = plan.size();
    std::vector<arch::ExperimentResult> results(total);

    obs::HostSpan sweepSpan(obs::Cat::Driver, "sweep", "", total);

    std::mutex progressMutex;
    size_t done = 0;
    auto report = [&](const SweepTask &task, bool cached) {
        std::lock_guard<std::mutex> lock(progressMutex);
        ++done;
        if (opts.progress) {
            SweepProgress p;
            p.task = &task;
            p.done = done;
            p.total = total;
            p.cached = cached;
            opts.progress(p);
        }
    };

    store::ResultStore *st = storeFor(opts);

    // Satisfy what we can without simulating — first the in-process
    // cache, then (on a miss) the persistent store — so fixtures are
    // only built for kernels that still have live simulations. Every
    // cell lands in exactly one cache counter here, and the store is
    // consulted exactly once per cache miss: those conservation laws
    // are what storeStatsJson() documents and the tests assert.
    std::vector<std::string> keys(total);
    std::vector<size_t> pending;
    pending.reserve(total);
    for (size_t i = 0; i < total; ++i) {
        const SweepTask &task = plan.tasks[i];
        keys[i] = keyOf(task);
        if (opts.useCache && cacheLookup(keys[i], results[i])) {
            cacheHitCount.fetch_add(1, std::memory_order_relaxed);
            obs::hostInstant(obs::Cat::Driver, "cacheHit",
                             task.kernel + "/" + task.config);
            report(task, true);
            continue;
        }
        cacheMissCount.fetch_add(1, std::memory_order_relaxed);
        if (st && st->lookup(keys[i], results[i])) {
            if (opts.useCache)
                cacheStore(keys[i], results[i]);
            report(task, true);
            continue;
        }
        pending.push_back(i);
    }
    if (pending.empty())
        return results;

    // One immutable fixture per distinct (kernel, scale, seed): the
    // dataset and golden model are generated once, then shared
    // read-only by every configuration's job.
    std::map<FixtureKey, std::shared_ptr<const kernels::WorkloadFixture>>
        fixtures;
    for (size_t i : pending) {
        const SweepTask &task = plan.tasks[i];
        fixtures.try_emplace({task.kernel, resolvedScale(task), task.seed});
    }

    auto runOne = [&](size_t i) {
        const SweepTask &task = plan.tasks[i];
        const auto &fixture =
            fixtures.at({task.kernel, resolvedScale(task), task.seed});
        results[i] = runOnFixture(*fixture, task);
        if (opts.useCache)
            cacheStore(keys[i], results[i]);
        if (st)
            st->insert(keys[i], results[i]);
        report(task, false);
    };

    unsigned jobs = effectiveJobs(opts);
    if (jobs <= 1) {
        // The strictly serial reference path: everything on the
        // calling thread, in plan order.
        for (auto &[key, fixture] : fixtures) {
            obs::HostSpan fixSpan(obs::Cat::Driver, "fixture",
                                  std::get<0>(key));
            fixture = kernels::makeFixture(std::get<0>(key),
                                           std::get<1>(key),
                                           std::get<2>(key));
        }
        for (size_t i : pending)
            runOne(i);
        return results;
    }

    JobPool pool(jobs);

    // Phase 1: build the distinct fixtures in parallel. Each job
    // assigns one pre-inserted map slot, so the map never rehashes or
    // rebalances while jobs run.
    std::vector<std::pair<const FixtureKey *,
                          std::shared_ptr<const kernels::WorkloadFixture> *>>
        slots;
    slots.reserve(fixtures.size());
    for (auto &[key, fixture] : fixtures)
        slots.emplace_back(&key, &fixture);
    parallelFor(pool, slots.size(), [&](size_t s) {
        const FixtureKey &key = *slots[s].first;
        obs::HostSpan fixSpan(obs::Cat::Driver, "fixture",
                              std::get<0>(key));
        *slots[s].second = kernels::makeFixture(
            std::get<0>(key), std::get<1>(key), std::get<2>(key));
    });

    // Phase 2: the simulations, one job per pending task, each writing
    // its own output slot.
    parallelFor(pool, pending.size(),
                [&](size_t p) { runOne(pending[p]); });
    return results;
}

size_t
resultCacheSize()
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    return resultCacheTable.size();
}

uint64_t
resultCacheHits()
{
    return cacheHitCount.load(std::memory_order_relaxed);
}

uint64_t
resultCacheMisses()
{
    return cacheMissCount.load(std::memory_order_relaxed);
}

void
clearResultCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex);
    resultCacheTable.clear();
    cacheHitCount.store(0, std::memory_order_relaxed);
    cacheMissCount.store(0, std::memory_order_relaxed);
}

void
setDefaultStoreDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(storeMutex);
    defaultStoreDir = dir;
}

store::StoreStats
storeTraffic()
{
    store::StoreStats total;
    std::lock_guard<std::mutex> lock(storeMutex);
    for (auto &[dir, handle] : storeHandles) {
        store::StoreStats s = handle->stats();
        total.hits += s.hits;
        total.misses += s.misses;
        total.inserts += s.inserts;
        total.corrupt += s.corrupt;
        total.entries += s.entries;
        total.bytes += s.bytes;
    }
    return total;
}

json::Value
storeStatsJson()
{
    json::Value obj = json::Value::object();
    obj.set("cacheHits", resultCacheHits());
    obj.set("cacheMisses", resultCacheMisses());

    store::StoreStats s = storeTraffic();
    obj.set("storeHits", s.hits);
    obj.set("storeMisses", s.misses);
    obj.set("storeInserts", s.inserts);
    obj.set("storeCorrupt", s.corrupt);

    bool anyStore = false;
    {
        std::lock_guard<std::mutex> lock(storeMutex);
        anyStore = !storeHandles.empty();
        if (storeHandles.size() == 1)
            obj.set("storeDir", storeHandles.begin()->first);
    }
    if (anyStore) {
        obj.set("entries", s.entries);
        obj.set("bytes", s.bytes);
    }
    return obj;
}

} // namespace dlp::driver
