#include "common/stats.hh"

#include <iomanip>
#include <sstream>

namespace dlp {

namespace {

void
printLine(std::ostream &os, const std::string &key, double value)
{
    os << std::left << std::setw(48) << key << std::right << std::setw(16)
       << value << "\n";
}

} // namespace

void
StatGroup::dump(std::ostream &os)
{
    if (preDump)
        preDump();

    for (const auto &kv : stats)
        printLine(os, name + "." + kv.first, kv.second.get());

    for (const auto &kv : formulas)
        printLine(os, name + "." + kv.first, kv.second.value());

    for (const auto &kv : vecs) {
        const VectorStat &v = kv.second;
        std::string base = name + "." + kv.first;
        for (size_t i = 0; i < v.size(); ++i)
            printLine(os, base + "::" + std::to_string(i), v.at(i));
        printLine(os, base + "::total", v.total());
    }

    for (const auto &kv : dists) {
        const Distribution &d = kv.second;
        std::string base = name + "." + kv.first;
        printLine(os, base + "::samples", double(d.samples()));
        // A zero-sample distribution has no meaningful moments or
        // extrema; omit those lines entirely rather than printing a
        // placeholder. The JSON exporter omits the same four keys, and
        // tests assert the parity.
        if (d.samples() > 0) {
            printLine(os, base + "::mean", d.mean());
            printLine(os, base + "::stdev", d.stdev());
            printLine(os, base + "::min", d.minValue());
            printLine(os, base + "::max", d.maxValue());
        }
        printLine(os, base + "::underflow", double(d.underflow()));
        for (size_t b = 0; b < d.numBuckets(); ++b) {
            std::ostringstream key;
            key << base << "::[" << d.bucketLow(b) << ","
                << d.bucketLow(b) + d.bucketWidth() << ")";
            printLine(os, key.str(), double(d.bucket(b)));
        }
        printLine(os, base + "::overflow", double(d.overflow()));
    }
}

GroupSnapshot
StatGroup::snapshot()
{
    if (preDump)
        preDump();

    GroupSnapshot snap;
    snap.name = name;
    for (const auto &kv : stats)
        snap.scalars.emplace(kv.first, kv.second.get());
    for (const auto &kv : formulas)
        snap.formulas.emplace(kv.first, kv.second.value());
    snap.distributions = dists;
    snap.vectors = vecs;
    return snap;
}

} // namespace dlp
