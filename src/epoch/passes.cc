#include "epoch/passes.hh"

#include <cmath>
#include <cstdint>

#include "isa/mapped.hh"
#include "isa/opcodes.hh"

namespace dlp::epoch {

namespace {

/// Largest double magnitude at which every integer is exactly
/// representable; bulk accumulator application is only exact below it.
constexpr double maxExactDouble = 9007199254740992.0; // 2^53

bool
integral(double v)
{
    return std::nearbyint(v) == v;
}

double
scalarOr(const std::map<std::string, double> &m, const std::string &key)
{
    auto it = m.find(key);
    return it == m.end() ? 0.0 : it->second;
}

/** b - a of one Distribution's accumulators; false on shape mismatch. */
bool
distDelta(const Distribution &a, const Distribution &b, DistDelta &out)
{
    if (a.numBuckets() != b.numBuckets() || a.low() != b.low() ||
        a.high() != b.high()) {
        return false;
    }
    if (b.samples() < a.samples() || b.underflow() < a.underflow() ||
        b.overflow() < a.overflow()) {
        return false;
    }
    out.counts.resize(b.numBuckets());
    for (size_t i = 0; i < b.numBuckets(); ++i) {
        if (b.bucket(i) < a.bucket(i))
            return false;
        out.counts[i] = b.bucket(i) - a.bucket(i);
    }
    out.under = b.underflow() - a.underflow();
    out.over = b.overflow() - a.overflow();
    out.samples = b.samples() - a.samples();
    out.sum = b.sum() - a.sum();
    out.sumSq = b.sumSq() - a.sumSq();
    return true;
}

bool
operator==(const DistDelta &x, const DistDelta &y)
{
    return x.counts == y.counts && x.under == y.under && x.over == y.over &&
           x.samples == y.samples && x.sum == y.sum && x.sumSq == y.sumSq;
}

bool
zeroDelta(const DistDelta &d)
{
    for (uint64_t c : d.counts)
        if (c)
            return false;
    return !d.under && !d.over && !d.samples && d.sum == 0.0 && d.sumSq == 0.0;
}

/**
 * issueWidth samples are fractional (fired / issue span), so a bulk
 * fused application of their sum would not match sequential sampling
 * bit for bit. The replay loop samples the recorded per-activation
 * values in order instead; the pass pipeline pins the distribution's
 * per-unit sample delta to the recorded activation count.
 */
bool
semanticDist(const std::string &group, const std::string &stat)
{
    return group == "core.simd" && stat == "issueWidth";
}

} // namespace

const std::vector<const char *> &
EpochLower::passNames()
{
    static const std::vector<const char *> names = {
        "ClassifyOps",     "ScheduleStability", "StatDeltaStability",
        "ResourcePeriodicity", "CounterLaws",   "BuildReplay",
    };
    return names;
}

EpochLower::EpochLower(const EpochInput &in)
{
    using PassFn = bool (EpochLower::*)(const EpochInput &);
    const std::pair<const char *, PassFn> passes[] = {
        {"ClassifyOps", &EpochLower::passClassifyOps},
        {"ScheduleStability", &EpochLower::passScheduleStability},
        {"StatDeltaStability", &EpochLower::passStatDeltaStability},
        {"ResourcePeriodicity", &EpochLower::passResourcePeriodicity},
        {"CounterLaws", &EpochLower::passCounterLaws},
        {"BuildReplay", &EpochLower::passBuildReplay},
    };
    for (const auto &[name, fn] : passes) {
        if (!(this->*fn)(in)) {
            failedPass_ = name;
            return;
        }
    }
}

bool
EpochLower::passClassifyOps(const EpochInput &in)
{
    using isa::MemSpace;
    using isa::Op;

    if (in.blocks.empty() || in.blocks[0] == nullptr)
        return fail("no block recorded");
    if (!in.instRevitalize)
        return fail("machine lacks instruction revitalization");

    for (const isa::MappedBlock *block : in.blocks) {
        auto blocker = [&](size_t i, std::string why) {
            classify_.blockers.push_back(static_cast<uint32_t>(i));
            return fail(block->name + " inst " + std::to_string(i) + " (" +
                        isa::opName(block->insts[i].op) + "): " +
                        std::move(why));
        };
        for (size_t i = 0; i < block->insts.size(); ++i) {
            const auto &mi = block->insts[i];
            switch (mi.op) {
              case Op::Read:
              case Op::Write:
                break; // register ports: fixed bank timing
              case Op::Ld:
              case Op::Lmw:
              case Op::St:
                // SMC stream timing charges the accessing row's bank
                // port regardless of address; any other path prices the
                // address through the cache hierarchy and cannot be
                // summarized.
                if (mi.space != MemSpace::Smc)
                    return blocker(i, "non-stream memory space");
                if (!in.smcMechanism)
                    return blocker(i, "stream op without the SMC mechanism");
                break;
              case Op::Tld:
                if (!in.l0DataStore)
                    return blocker(i, "table load through cached memory");
                break;
              default:
                // Pure computation has fixed, data-independent latency;
                // control/free-running ops have no closed form.
                if (isa::opInfo(mi.op).fu == isa::FuClass::Ctrl)
                    return blocker(i, "non-functional opcode");
                break;
            }
        }
    }
    classify_.allSummarizable = true;
    return true;
}

bool
EpochLower::passScheduleStability(const EpochInput &in)
{
    if (in.period == 0)
        return fail("zero unit period");
    if (in.period2 != in.period) {
        return fail("aperiodic pacing: " + std::to_string(in.period) +
                    " then " + std::to_string(in.period2) + " ticks");
    }
    if (in.r1.fires.empty())
        return fail("no instructions fired");
    if (!(in.r1.fires == in.r2.fires))
        return fail("fire schedules differ between recorded units");
    if (in.r1.fireCounts != in.r2.fireCounts ||
        in.r1.fresh != in.r2.fresh)
        return fail("activation partitioning differs between recorded units");
    // Bitwise equality: identical schedules evaluate identical FP
    // expressions, so any difference means the units are not the same
    // steady state.
    if (in.r1.issueSamples != in.r2.issueSamples)
        return fail("issue-width samples differ between recorded units");
    if (in.r1.fired != in.r2.fired ||
        in.r1.drainLen != in.r2.drainLen ||
        in.r1.issueLen != in.r2.issueLen ||
        in.r1.writeLen != in.r2.writeLen ||
        in.r1.unitDrainLen != in.r2.unitDrainLen) {
        return fail("occupancy envelopes differ between recorded units");
    }
    uint64_t total = 0;
    for (uint64_t c : in.r2.fireCounts)
        total += c;
    if (total != in.r2.fires.size() || total != in.r2.fired)
        return fail("fire counts do not partition the unit's schedule");
    return true;
}

bool
EpochLower::passStatDeltaStability(const EpochInput &in)
{
    const size_t nGroups = in.s0.groups.size();
    if (in.s1.groups.size() != nGroups || in.s2.groups.size() != nGroups)
        return fail("snapshot group sets differ");

    plan_.groups.assign(nGroups, GroupAdvance{});
    for (size_t g = 0; g < nGroups; ++g) {
        const GroupRaw &g0 = in.s0.groups[g];
        const GroupRaw &g1 = in.s1.groups[g];
        const GroupRaw &g2 = in.s2.groups[g];
        GroupAdvance &adv = plan_.groups[g];

        // Scalars: union of keys, absent means zero (stats register
        // lazily). Both iterations must have moved each by the same
        // amount; the common delta is the bulk advance.
        auto checkScalars = [&](const std::map<std::string, double> &m) {
            for (const auto &[name, unused] : m) {
                (void)unused;
                double v0 = scalarOr(g0.scalars, name);
                double v1 = scalarOr(g1.scalars, name);
                double v2 = scalarOr(g2.scalars, name);
                double d1 = v1 - v0;
                double d2 = v2 - v1;
                if (d1 != d2) {
                    return fail(g2.name + "." + name + " advanced " +
                                std::to_string(d1) + " then " +
                                std::to_string(d2));
                }
                if (d2 != 0.0) {
                    bool seen = false;
                    for (const auto &kv : adv.scalars)
                        seen |= kv.first == name;
                    if (!seen)
                        adv.scalars.emplace_back(name, d2);
                }
            }
            return true;
        };
        if (!checkScalars(g2.scalars) || !checkScalars(g1.scalars) ||
            !checkScalars(g0.scalars)) {
            return false;
        }

        // Distributions and vectors: require identical key sets across
        // the three snapshots (a stat materializing mid-recording means
        // a preDump or sampler fired between snapshots — bail).
        auto sameKeys = [](const auto &a, const auto &b) {
            if (a.size() != b.size())
                return false;
            auto ia = a.begin();
            for (auto ib = b.begin(); ib != b.end(); ++ia, ++ib)
                if (ia->first != ib->first)
                    return false;
            return true;
        };
        if (!sameKeys(g0.dists, g1.dists) || !sameKeys(g1.dists, g2.dists))
            return fail(g2.name + ": distribution set changed mid-recording");
        if (!sameKeys(g0.vectors, g1.vectors) ||
            !sameKeys(g1.vectors, g2.vectors)) {
            return fail(g2.name + ": vector stat set changed mid-recording");
        }

        for (const auto &[name, d2dist] : g2.dists) {
            const Distribution &dist0 = g0.dists.at(name);
            const Distribution &dist1 = g1.dists.at(name);
            DistDelta d1, d2;
            if (!distDelta(dist0, dist1, d1) ||
                !distDelta(dist1, d2dist, d2)) {
                return fail(g2.name + "." + name +
                            " was reshaped or reset mid-recording");
            }
            if (!(d1 == d2)) {
                return fail(g2.name + "." + name +
                            " advanced differently across iterations");
            }
            if (d2.samples == 0) {
                if (!zeroDelta(d2)) {
                    return fail(g2.name + "." + name +
                                " moved without samples");
                }
                continue;
            }
            // Replayed samples may establish no new extremes; the two
            // recorded iterations prove they don't.
            if (dist1.minValue() != d2dist.minValue() ||
                dist1.maxValue() != d2dist.maxValue()) {
                return fail(g2.name + "." + name +
                            " min/max still moving");
            }
            if (semanticDist(g2.name, name)) {
                if (d2.samples != in.r2.issueSamples.size()) {
                    return fail(g2.name + "." + name +
                                " sampled off the activation cadence");
                }
                continue; // replay samples the recorded values in order
            }
            adv.dists.emplace_back(name, std::move(d2));
        }

        for (const auto &[name, v2] : g2.vectors) {
            const VectorStat &v0 = g0.vectors.at(name);
            const VectorStat &v1 = g1.vectors.at(name);
            if (v0.size() != v1.size() || v1.size() != v2.size())
                return fail(g2.name + "." + name + " resized mid-recording");
            std::vector<double> delta(v2.size(), 0.0);
            bool nonzero = false;
            for (size_t i = 0; i < v2.size(); ++i) {
                double d1 = v1.at(i) - v0.at(i);
                double d2 = v2.at(i) - v1.at(i);
                if (d1 != d2) {
                    return fail(g2.name + "." + name + "[" +
                                std::to_string(i) +
                                "] advanced differently across iterations");
                }
                delta[i] = d2;
                nonzero |= d2 != 0.0;
            }
            if (nonzero)
                adv.vectors.emplace_back(name, std::move(delta));
        }
    }
    return true;
}

bool
EpochLower::passResourcePeriodicity(const EpochInput &in)
{
    const size_t n = in.s0.res.size();
    if (in.s1.res.size() != n || in.s2.res.size() != n ||
        in.r1.tails.size() != n || in.r2.tails.size() != n) {
        return fail("resource sets differ between snapshots");
    }

    plan_.res.assign(n, ResAdvance{});
    for (size_t i = 0; i < n; ++i) {
        uint64_t dg1 = in.s1.res[i].grants - in.s0.res[i].grants;
        uint64_t dg2 = in.s2.res[i].grants - in.s1.res[i].grants;
        Tick dw1 = in.s1.res[i].wait - in.s0.res[i].wait;
        Tick dw2 = in.s2.res[i].wait - in.s1.res[i].wait;
        if (dg1 != dg2 || dw1 != dw2) {
            return fail("resource " + std::to_string(i) +
                        " grants/wait advanced differently across "
                        "iterations");
        }
        if (dg2 == 0) {
            if (dw2 != 0) {
                return fail("resource " + std::to_string(i) +
                            " waited without grants");
            }
            plan_.res[i] = {ResClass::Static, 0, 0};
            continue;
        }
        // Periodic: future requests see exactly the same relative
        // calendar tail after either iteration, so by induction every
        // replayed iteration shifts the calendar by one period.
        if (!(in.r1.tails[i] == in.r2.tails[i])) {
            return fail("resource " + std::to_string(i) +
                        " calendar tail not periodic");
        }
        plan_.res[i] = {ResClass::Shift, dg2, dw2};
    }

    // Structure activity watermarks: either frozen or advancing by
    // exactly one period per iteration (same relative offset from both
    // iteration starts).
    auto watermark = [&](Tick w0, Tick w1, Tick w2, bool &advances,
                         const char *what) {
        if (w0 == w1 && w1 == w2) {
            advances = false;
            return true;
        }
        if (int64_t(w1 - in.r1.start) != int64_t(w2 - in.r2.start)) {
            return fail(std::string(what) +
                        " activity watermark not periodic");
        }
        advances = true;
        return true;
    };
    bool smcAdv = false, meshAdv = false;
    if (!watermark(in.s0.smcLast, in.s1.smcLast, in.s2.smcLast, smcAdv,
                   "SMC")) {
        return false;
    }
    if (!watermark(in.s0.meshLast, in.s1.meshLast, in.s2.meshLast, meshAdv,
                   "mesh")) {
        return false;
    }
    plan_.smcLastAdvances = smcAdv;
    plan_.meshLastAdvances = meshAdv;
    return true;
}

bool
EpochLower::passCounterLaws(const EpochInput &in)
{
    auto stable = [&](uint64_t v0, uint64_t v1, uint64_t v2, uint64_t &delta,
                      const char *what) {
        if (v1 - v0 != v2 - v1) {
            return fail(std::string(what) +
                        " advanced differently across iterations");
        }
        delta = v2 - v1;
        return true;
    };
    auto frozen = [&](uint64_t v0, uint64_t v1, uint64_t v2,
                      const char *what) {
        if (v0 != v1 || v1 != v2)
            return fail(std::string(what) + " moved during recording");
        return true;
    };

    if (!stable(in.s0.eqScheduled, in.s1.eqScheduled, in.s2.eqScheduled,
                plan_.eqScheduled, "events scheduled") ||
        !stable(in.s0.eqExecuted, in.s1.eqExecuted, in.s2.eqExecuted,
                plan_.eqExecuted, "events executed") ||
        !frozen(in.s0.eqDiscarded, in.s1.eqDiscarded, in.s2.eqDiscarded,
                "events discarded") ||
        !stable(in.s0.smcReads, in.s1.smcReads, in.s2.smcReads,
                plan_.smcReads, "SMC reads") ||
        !stable(in.s0.smcWrites, in.s1.smcWrites, in.s2.smcWrites,
                plan_.smcWrites, "SMC writes") ||
        !stable(in.s0.smcWords, in.s1.smcWords, in.s2.smcWords,
                plan_.smcWords, "SMC words") ||
        !stable(in.s0.meshRouted, in.s1.meshRouted, in.s2.meshRouted,
                plan_.meshRouted, "operands routed") ||
        !stable(in.s0.meshHops, in.s1.meshHops, in.s2.meshHops,
                plan_.meshHops, "mesh hops") ||
        !stable(in.s0.meshContention, in.s1.meshContention,
                in.s2.meshContention, plan_.meshContention,
                "mesh contention") ||
        !frozen(in.s0.l1Hits, in.s1.l1Hits, in.s2.l1Hits, "L1 hits") ||
        !frozen(in.s0.l1Misses, in.s1.l1Misses, in.s2.l1Misses,
                "L1 misses") ||
        !frozen(in.s0.l2Hits, in.s1.l2Hits, in.s2.l2Hits, "L2 hits") ||
        !frozen(in.s0.l2Misses, in.s1.l2Misses, in.s2.l2Misses,
                "L2 misses") ||
        !frozen(in.s0.mainMemAccesses, in.s1.mainMemAccesses,
                in.s2.mainMemAccesses, "main-memory accesses") ||
        !stable(in.s0.instsExecuted, in.s1.instsExecuted, in.s2.instsExecuted,
                plan_.instsExecuted, "instructions executed") ||
        !stable(in.s0.usefulOps, in.s1.usefulOps, in.s2.usefulOps,
                plan_.usefulOps, "useful ops") ||
        !stable(in.s0.activations, in.s1.activations, in.s2.activations,
                plan_.activations, "activations") ||
        !stable(in.s0.mappings, in.s1.mappings, in.s2.mappings,
                plan_.mappings, "mappings")) {
        return false;
    }
    if (plan_.eqExecuted == 0)
        return fail("units execute no events");
    if (plan_.activations != in.r2.fireCounts.size())
        return fail("snapshot activation delta disagrees with the "
                    "recorded unit");

    // Signature streak evolution: either both units advanced it by the
    // same signed amount (no internal reset — the resident steady
    // state), or a reset inside every unit pins it to the same absolute
    // value. The end-of-unit digest must be stable either way, so the
    // first post-epoch real activation compares against the digest a
    // simulated run would have left behind.
    if (in.s1.sigLast != in.s2.sigLast)
        return fail("activation signature digest not stable");
    int64_t ds1 = int64_t(in.s1.sigStreak) - int64_t(in.s0.sigStreak);
    int64_t ds2 = int64_t(in.s2.sigStreak) - int64_t(in.s1.sigStreak);
    if (ds1 == ds2) {
        plan_.sigStreakAdditive = true;
        plan_.sigStreakDelta = ds2;
    } else if (in.s1.sigStreak == in.s2.sigStreak) {
        plan_.sigStreakAdditive = false;
        plan_.sigStreakEnd = in.s2.sigStreak;
    } else {
        return fail("signature streak evolution not periodic");
    }
    plan_.sigLast = in.s2.sigLast;

    // Exactness of every planned bulk application: integer-valued
    // bases and deltas whose K-fold projection stays exactly
    // representable. Sequential += and one fused application then agree
    // bit for bit.
    const double k = double(in.iterations);
    auto exactScalar = [&](double base, double delta, const std::string &id) {
        if (!integral(base) || !integral(delta)) {
            return fail(id + " is not integer-valued");
        }
        double projected = std::fabs(base) + std::fabs(delta) * k;
        if (projected > maxExactDouble)
            return fail(id + " would overflow exact double range");
        return true;
    };
    for (size_t g = 0; g < plan_.groups.size(); ++g) {
        const GroupRaw &g2 = in.s2.groups[g];
        for (const auto &[name, delta] : plan_.groups[g].scalars) {
            if (!exactScalar(scalarOr(g2.scalars, name), delta,
                             g2.name + "." + name)) {
                return false;
            }
        }
        for (const auto &[name, d] : plan_.groups[g].dists) {
            const Distribution &base = g2.dists.at(name);
            if (!exactScalar(base.sum(), d.sum,
                             g2.name + "." + name + "::sum") ||
                !exactScalar(base.sumSq(), d.sumSq,
                             g2.name + "." + name + "::sumSq")) {
                return false;
            }
        }
        for (const auto &[name, delta] : plan_.groups[g].vectors) {
            const VectorStat &base = g2.vectors.at(name);
            for (size_t i = 0; i < delta.size(); ++i) {
                if (!exactScalar(base.at(i), delta[i],
                                 g2.name + "." + name + "::" +
                                     std::to_string(i))) {
                    return false;
                }
            }
        }
    }
    return true;
}

bool
EpochLower::passBuildReplay(const EpochInput &in)
{
    if (in.iterations == 0)
        return fail("nothing left to replay");
    plan_.period = in.period;
    plan_.drainLen = in.r2.drainLen;
    plan_.issueLen = in.r2.issueLen;
    plan_.writeLen = in.r2.writeLen;
    plan_.unitDrainLen = in.r2.unitDrainLen;
    plan_.fired = in.r2.fired;
    plan_.fires = in.r2.fires;
    plan_.fireCounts = in.r2.fireCounts;
    plan_.issueSamples = in.r2.issueSamples;
    plan_.fresh = in.r2.fresh;
    return true;
}

} // namespace dlp::epoch
