/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * panic()  -- an internal simulator invariant was violated (a bug in the
 *             simulator itself); aborts so a debugger or core dump can
 *             capture the state.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, impossible kernel, ...); exits cleanly.
 * warn()   -- something is suspicious but simulation can continue.
 * inform() -- purely informational status output.
 */

#ifndef DLP_COMMON_LOGGING_HH
#define DLP_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dlp {

/** Exception thrown by fatal() so tests can observe user-level errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic() so tests can observe simulator bugs. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace logging_detail {

std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace logging_detail

/** Report an unrecoverable internal error and throw PanicError. */
[[noreturn]] void panicMsg(const char *file, int line, const std::string &msg);

/** Report an unrecoverable user error and throw FatalError. */
[[noreturn]] void fatalMsg(const char *file, int line, const std::string &msg);

/**
 * Emit a warning to stderr. Identical messages are rate-limited: after
 * warnRepeatLimit occurrences of the same text, further repeats are
 * suppressed (with a one-time note) so traced runs stay readable.
 */
void warnMsg(const std::string &msg);

/** Repeats of one identical warn() message before suppression. */
constexpr unsigned warnRepeatLimit = 5;

/**
 * Maximum distinct warn() messages tracked for rate limiting. Beyond
 * this the least-recently-warned message is evicted (LRU), so the table
 * stays bounded on long fuzz runs while suppression state for messages
 * still firing is preserved.
 */
constexpr size_t warnTableLimit = 4096;

/** Forget which warnings were already seen (tests / new experiments). */
void resetWarnDeduplication();

/** Distinct messages currently tracked by the dedup table (tests). */
size_t warnTableSize();

/** Occurrences recorded for one exact message, 0 if untracked (tests). */
uint64_t warnOccurrences(const std::string &msg);

/** Emit an informational message to stderr. */
void informMsg(const std::string &msg);

/** Globally silence warn()/inform() output (benchmarks use this). */
void setQuietLogging(bool quiet);
bool quietLogging();

#define panic(...) \
    ::dlp::panicMsg(__FILE__, __LINE__, ::dlp::logging_detail::format(__VA_ARGS__))

#define fatal(...) \
    ::dlp::fatalMsg(__FILE__, __LINE__, ::dlp::logging_detail::format(__VA_ARGS__))

#define warn(...) \
    ::dlp::warnMsg(::dlp::logging_detail::format(__VA_ARGS__))

#define inform(...) \
    ::dlp::informMsg(::dlp::logging_detail::format(__VA_ARGS__))

/**
 * Always-on assertion for simulator invariants. Unlike assert(), this is
 * active in release builds: a cycle-level model that silently corrupts
 * state is worse than one that stops.
 */
#define panic_if(cond, ...)                                                   \
    do {                                                                      \
        if (cond)                                                             \
            panic(__VA_ARGS__);                                               \
    } while (0)

#define fatal_if(cond, ...)                                                   \
    do {                                                                      \
        if (cond)                                                             \
            fatal(__VA_ARGS__);                                               \
    } while (0)

} // namespace dlp

#endif // DLP_COMMON_LOGGING_HH
