/**
 * @file
 * Plain-text table formatting and summary statistics for the benchmark
 * harness (the tables printed by bench/ mirror the paper's layout).
 */

#ifndef DLP_ANALYSIS_REPORT_HH
#define DLP_ANALYSIS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace dlp::analysis {

/** Fixed-width text table. */
class TextTable
{
  public:
    void
    header(std::vector<std::string> cells)
    {
        head = std::move(cells);
    }

    void
    row(std::vector<std::string> cells)
    {
        rows.push_back(std::move(cells));
    }

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with the given precision. */
std::string fmt(double v, int precision = 2);

/** Harmonic mean of a set of ratios (the paper's Figure 5 summary). */
double harmonicMean(const std::vector<double> &values);

} // namespace dlp::analysis

#endif // DLP_ANALYSIS_REPORT_HH
