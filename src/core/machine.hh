/**
 * @file
 * Machine configuration: the baseline TRIPS-like grid processor of
 * Section 5.2 plus the on/off switches for each of the paper's universal
 * mechanisms (Table 3). A MachineParams value fully determines both how
 * kernels are lowered (the scheduler reads the mechanism flags) and how
 * the engines charge time.
 */

#ifndef DLP_CORE_MACHINE_HH
#define DLP_CORE_MACHINE_HH

#include <string>

#include "common/types.hh"
#include "mem/params.hh"

namespace dlp::core {

/** The six universal mechanisms (Table 3). */
struct Mechanisms
{
    /// Software-managed streamed memory + LMW wide loads + store buffer.
    bool smc = false;
    /// Instruction revitalization (CTR + revitalize broadcast).
    bool instRevitalize = false;
    /// Operand revitalization (persistent reservation-station operands).
    bool operandRevitalize = false;
    /// Software-managed L0 data store at each ALU (2 KB).
    bool l0DataStore = false;
    /// Local program counters + L0 instruction store (MIMD execution).
    bool localPC = false;
};

struct MachineParams
{
    std::string name = "baseline";

    // --- Execution array --------------------------------------------------
    unsigned rows = 8;
    unsigned cols = 8;
    /// Reservation-station slots (instruction storage) per ALU tile.
    /// TRIPS provisions several frames of reservation stations per node;
    /// 16 slots x 64 tiles give the 1024-instruction window the S-morph
    /// unrolls into.
    unsigned frameSlots = 16;
    /// Operand-buffer entries per tile (the MIMD register file).
    unsigned tileRegs = 64;
    /// L0 instruction store entries per tile (MIMD mode).
    unsigned l0InstEntries = 1024;
    /// L0 data store per tile, bytes (Section 4.4: 2 KB sufficed).
    uint64_t l0DataBytes = 2048;
    /// L0 data store access latency, cycles.
    Cycles l0Latency = 1;
    /// Network hop delay in ticks (paper: half a cycle).
    Tick hopTicks = 1;
    /// Maximum in-flight loads per tile in MIMD mode.
    unsigned mimdOutstandingLoads = 4;

    // --- Global register file ---------------------------------------------
    unsigned regBanks = 4;
    unsigned numRegs = 128;
    Cycles regLatency = 1;

    // --- Block control -----------------------------------------------------
    /// Instructions mapped (fetched + distributed) per cycle.
    unsigned mapBandwidth = 16;
    /// Pipeline refill after mapping a new block, cycles.
    Cycles mapOverhead = 4;
    /// Revitalize broadcast delay between activations, cycles.
    Cycles revitalizeDelay = 4;
    /**
     * Frames of reservation-station storage the sequencer double-buffers
     * across: the scheduler packs blocks into totalSlots()/pipelineFrames
     * so the next activation can map/revitalize while the previous one
     * drains. The initiation interval between activations is then bounded
     * by resource occupancy, not by the activation's latency.
     */
    unsigned pipelineFrames = 2;
    /// Per-target operand injection interval at a producer, ticks.
    Tick injectInterval = 1;

    // --- Mechanisms and memory ---------------------------------------------
    Mechanisms mech;
    mem::MemParams memParams;

    unsigned tiles() const { return rows * cols; }
    unsigned totalSlots() const { return tiles() * frameSlots; }
    uint64_t l0DataWords() const { return l0DataBytes / wordBytes; }
};

} // namespace dlp::core

#endif // DLP_CORE_MACHINE_HH
