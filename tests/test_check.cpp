/**
 * @file
 * The static SPDI verifier under test: every rule of the registry must
 * fire on a directed malformed program (and name the documented rule
 * ID), the whole kernel catalog must lint error-free on every Table 5
 * configuration, and PR 4's fuzzer-found defect class -- a scratch
 * reload racing the store that feeds it -- must be rejected statically.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "check/report.hh"
#include "check/rules.hh"
#include "check/verify.hh"
#include "kernels/catalog.hh"
#include "kernels/workload.hh"
#include "sched/linearize.hh"
#include "sched/simd_lowering.hh"
#include "verify/fuzz.hh"

using namespace dlp;
using check::BlockOptions;
using check::Report;
using check::Severity;
using isa::MappedBlock;
using isa::MappedInst;
using isa::MemSpace;
using isa::Op;
using isa::SeqInst;
using isa::SeqProgram;

namespace {

/** An empty 2x2 block with 4 slots per tile. */
MappedBlock
makeBlock()
{
    MappedBlock b;
    b.name = "testblock";
    b.rows = 2;
    b.cols = 2;
    b.slotsPerTile = 4;
    return b;
}

/** Append an instruction; placement defaults to consecutive slots of
 *  tile (0,0) unless overridden afterwards. */
uint32_t
addInst(MappedBlock &b, Op op, unsigned numSrcs, Word imm = 0)
{
    MappedInst mi;
    mi.op = op;
    mi.imm = imm;
    mi.numSrcs = uint8_t(numSrcs);
    size_t i = b.insts.size();
    mi.row = uint8_t(i / (size_t(b.cols) * b.slotsPerTile));
    mi.col = uint8_t(i / b.slotsPerTile % b.cols);
    mi.slot = uint8_t(i % b.slotsPerTile);
    b.insts.push_back(mi);
    return uint32_t(i);
}

/** Dataflow edge: result word of `from` into slot `slot` of `to`. */
void
wire(MappedBlock &b, uint32_t from, uint32_t to, unsigned slot,
     unsigned wordIdx = 0)
{
    b.insts[from].targets.push_back(
        {to, uint8_t(slot), uint8_t(wordIdx)});
}

/** The simplest clean block: movi feeding a register write. */
MappedBlock
cleanBlock()
{
    MappedBlock b = makeBlock();
    uint32_t v = addInst(b, Op::Movi, 0, 42);
    uint32_t w = addInst(b, Op::Write, 1, 7);
    wire(b, v, w, 0);
    return b;
}

core::MachineParams
machine(const char *name)
{
    return arch::configByName(name);
}

/** Rule IDs of every Error finding. */
std::set<std::string>
errorRules(const Report &rep)
{
    std::set<std::string> ids;
    for (const auto &d : rep.diags)
        if (d.severity == Severity::Error)
            ids.insert(d.rule);
    return ids;
}

} // namespace

// --- Registry ---------------------------------------------------------------

TEST(CheckRegistry, RulesAreUniqueAndDocumented)
{
    const auto &regs = check::rules();
    ASSERT_GE(regs.size(), 20u);
    std::set<std::string> ids;
    for (const auto &r : regs) {
        EXPECT_TRUE(ids.insert(r.id).second) << "duplicate rule " << r.id;
        EXPECT_NE(std::string(r.invariant), "") << r.id;
        EXPECT_EQ(check::ruleByName(r.id), &r);
    }
    EXPECT_EQ(check::ruleByName("NO-SUCH-RULE"), nullptr);
}

TEST(CheckRegistry, SeveritiesMatchDocumentation)
{
    EXPECT_EQ(check::ruleByName("DF-NOPROD")->severity, Severity::Error);
    EXPECT_EQ(check::ruleByName("MEM-ORDER")->severity, Severity::Error);
    EXPECT_EQ(check::ruleByName("MEM-MAY")->severity, Severity::Warning);
    EXPECT_EQ(check::ruleByName("CFG-TBL-BUDGET")->severity,
              Severity::Warning);
}

// --- Graph well-formedness (DF-*) -------------------------------------------

TEST(CheckBlock, CleanBlockPasses)
{
    Report rep = check::verifyBlock(cleanBlock(), machine("S"));
    EXPECT_EQ(rep.errors(), 0u) << rep.describe();
    EXPECT_EQ(rep.warnings(), 0u) << rep.describe();
    EXPECT_EQ(rep.insts, 2u);
}

TEST(CheckBlock, DanglingTargetIsDFDANGLE)
{
    MappedBlock b = cleanBlock();
    b.insts[0].targets.push_back({99, 0, 0});
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("DF-DANGLE")) << rep.describe();
}

TEST(CheckBlock, BadSourceSlotIsDFSLOT)
{
    // Delivers to slot 2 of a consumer waiting on one source.
    MappedBlock b = cleanBlock();
    b.insts[0].targets[0].srcSlot = 2;
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("DF-SLOT")) << rep.describe();
}

TEST(CheckBlock, SlotBeyondMaxSrcsIsDFSLOT)
{
    MappedBlock b = cleanBlock();
    b.insts[0].targets.push_back({1, isa::maxSrcs, 0});
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("DF-SLOT")) << rep.describe();
}

TEST(CheckBlock, WordIndexBeyondProducerIsDFWORD)
{
    // A scalar producer has exactly one result word.
    MappedBlock b = cleanBlock();
    b.insts[0].targets[0].wordIdx = 1;
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("DF-WORD")) << rep.describe();
}

TEST(CheckBlock, LmwWordIndexIsBoundedByCount)
{
    MappedBlock b = makeBlock();
    uint32_t a = addInst(b, Op::Movi, 0, 0);
    uint32_t l = addInst(b, Op::Lmw, 1);
    b.insts[l].space = MemSpace::Smc;
    b.insts[l].lmwCount = 2;
    uint32_t w0 = addInst(b, Op::Write, 1, 0);
    uint32_t w1 = addInst(b, Op::Write, 1, 1);
    wire(b, a, l, 0);
    wire(b, l, w0, 0, 0);
    wire(b, l, w1, 0, 1); // word 1 of 2: fine
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_EQ(rep.errors(), 0u) << rep.describe();

    b.insts[l].targets[1].wordIdx = 2; // word 2 of 2: out of range
    rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("DF-WORD")) << rep.describe();
}

TEST(CheckBlock, WrongArityIsDFARITY)
{
    // add waiting on a single operand can fire with garbage in src1.
    MappedBlock b = makeBlock();
    uint32_t v = addInst(b, Op::Movi, 0, 1);
    uint32_t s = addInst(b, Op::Add, 1);
    uint32_t w = addInst(b, Op::Write, 1, 0);
    wire(b, v, s, 0);
    wire(b, s, w, 0);
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("DF-ARITY")) << rep.describe();
}

TEST(CheckBlock, ImmBOnUnaryOpIsDFARITY)
{
    MappedBlock b = cleanBlock();
    b.insts[1].immB = true; // write has no second source to replace
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("DF-ARITY")) << rep.describe();
}

TEST(CheckBlock, MemOpsMayCarryAnOrderingToken)
{
    // A store with one extra source (the ordering token) is legal.
    MappedBlock b = makeBlock();
    uint32_t a = addInst(b, Op::Movi, 0, 0);
    uint32_t d = addInst(b, Op::Movi, 0, 5);
    uint32_t t = addInst(b, Op::Movi, 0, 0);
    uint32_t st = addInst(b, Op::St, 3);
    b.insts[st].space = MemSpace::Smc;
    wire(b, a, st, 0);
    wire(b, d, st, 1);
    wire(b, t, st, 2);
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_EQ(rep.errors(), 0u) << rep.describe();
}

TEST(CheckBlock, UnfedSlotIsDFNOPROD)
{
    MappedBlock b = makeBlock();
    uint32_t v = addInst(b, Op::Movi, 0, 1);
    uint32_t s = addInst(b, Op::Add, 2); // src1 never fed
    wire(b, v, s, 0);
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("DF-NOPROD")) << rep.describe();
    const auto &d = rep.diags[0];
    EXPECT_EQ(d.rule, "DF-NOPROD");
    EXPECT_EQ(d.inst, 1);
    EXPECT_EQ(d.slot, 1);
    EXPECT_EQ(d.location(), "testblock:i1.s1");
}

TEST(CheckBlock, RacingProducersAreDFRACE)
{
    MappedBlock b = cleanBlock();
    uint32_t v2 = addInst(b, Op::Movi, 0, 43);
    wire(b, v2, 1, 0); // second producer into the same slot
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("DF-RACE")) << rep.describe();
}

TEST(CheckBlock, DataflowCycleIsDFCYCLE)
{
    MappedBlock b = makeBlock();
    uint32_t x = addInst(b, Op::Mov, 1);
    uint32_t y = addInst(b, Op::Mov, 1);
    wire(b, x, y, 0);
    wire(b, y, x, 0);
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("DF-CYCLE")) << rep.describe();
}

TEST(CheckBlock, SelfLoopIsDFCYCLE)
{
    MappedBlock b = makeBlock();
    uint32_t x = addInst(b, Op::Mov, 1);
    wire(b, x, x, 0);
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("DF-CYCLE")) << rep.describe();
}

// --- Memory ordering (MEM-*): PR 4's defect class, decided statically ------

namespace {

/**
 * The fuzzer-found scratch race of PR 4 in its minimal static form: a
 * store to a scratch word and a reload of the same word with no
 * dataflow path between them. With `token` the store's completion
 * value is threaded into the reload's spare source slot, which is the
 * fix the lowering applies.
 */
MappedBlock
scratchRace(bool token)
{
    MappedBlock b = makeBlock();
    uint32_t addr = addInst(b, Op::Movi, 0, 130); // scratch word 130
    uint32_t data = addInst(b, Op::Movi, 0, 7);
    uint32_t st = addInst(b, Op::St, 2);
    b.insts[st].space = MemSpace::Smc;
    uint32_t ld = addInst(b, Op::Ld, token ? 2 : 1);
    b.insts[ld].space = MemSpace::Smc;
    uint32_t out = addInst(b, Op::Write, 1, 3);
    wire(b, addr, st, 0);
    wire(b, data, st, 1);
    wire(b, addr, ld, 0);
    wire(b, ld, out, 0);
    if (token)
        wire(b, st, ld, 1);
    return b;
}

const sched::StreamLayout testLayout = {0, 64, 128};

} // namespace

TEST(CheckMem, UnorderedScratchReloadIsMEMORDER)
{
    BlockOptions opts;
    opts.layout = &testLayout;
    Report rep = check::verifyBlock(scratchRace(false), machine("S"), opts);
    EXPECT_TRUE(rep.has("MEM-ORDER")) << rep.describe();
    EXPECT_GE(rep.errors(), 1u);
}

TEST(CheckMem, TokenChainOrdersTheReload)
{
    BlockOptions opts;
    opts.layout = &testLayout;
    Report rep = check::verifyBlock(scratchRace(true), machine("S"), opts);
    EXPECT_EQ(rep.errors(), 0u) << rep.describe();
    EXPECT_FALSE(rep.has("MEM-ORDER"));
}

TEST(CheckMem, DisjointWordsDoNotAlias)
{
    MappedBlock b = scratchRace(false);
    b.insts[0].targets.clear();
    uint32_t addr2 = addInst(b, Op::Movi, 0, 131); // the next word
    wire(b, 0, 2, 0);  // store keeps address 130
    wire(b, addr2, 3, 0); // load reads 131
    BlockOptions opts;
    opts.layout = &testLayout;
    Report rep = check::verifyBlock(b, machine("S"), opts);
    EXPECT_EQ(rep.errors(), 0u) << rep.describe();
}

TEST(CheckMem, LmwWidthOverlapsTheStoredWord)
{
    // lmw of 4 words from 128 covers the word stored at 130.
    MappedBlock b = makeBlock();
    uint32_t a1 = addInst(b, Op::Movi, 0, 130);
    uint32_t d = addInst(b, Op::Movi, 0, 9);
    uint32_t st = addInst(b, Op::St, 2);
    b.insts[st].space = MemSpace::Smc;
    uint32_t a2 = addInst(b, Op::Movi, 0, 128);
    uint32_t lmw = addInst(b, Op::Lmw, 1);
    b.insts[lmw].space = MemSpace::Smc;
    b.insts[lmw].lmwCount = 4;
    wire(b, a1, st, 0);
    wire(b, d, st, 1);
    wire(b, a2, lmw, 0);
    BlockOptions opts;
    opts.layout = &testLayout;
    Report rep = check::verifyBlock(b, machine("S"), opts);
    EXPECT_TRUE(rep.has("MEM-ORDER")) << rep.describe();
}

TEST(CheckMem, UnknownAddressesInOneRegionAreMEMMAY)
{
    // Two data-dependent scratch addresses (distinct register reads):
    // the verifier cannot separate them, so the unordered pair is a
    // warning, not an error.
    MappedBlock b = makeBlock();
    uint32_t r1 = addInst(b, Op::Read, 0, 1);
    uint32_t r2 = addInst(b, Op::Read, 0, 2);
    uint32_t d = addInst(b, Op::Movi, 0, 3);
    uint32_t st = addInst(b, Op::St, 2);
    b.insts[st].space = MemSpace::Smc;
    uint32_t ld = addInst(b, Op::Ld, 1);
    b.insts[ld].space = MemSpace::Smc;
    wire(b, r1, st, 0);
    wire(b, d, st, 1);
    wire(b, r2, ld, 0);
    BlockOptions opts;
    opts.layout = &testLayout;
    Report rep = check::verifyBlock(b, machine("S"), opts);
    EXPECT_TRUE(rep.has("MEM-MAY")) << rep.describe();
    EXPECT_EQ(rep.errors(), 0u) << rep.describe();
}

TEST(CheckMem, UnorderedCachedStoresAreOneAliasClass)
{
    MappedBlock b = makeBlock();
    uint32_t r1 = addInst(b, Op::Read, 0, 1);
    uint32_t r2 = addInst(b, Op::Read, 0, 2);
    uint32_t d = addInst(b, Op::Movi, 0, 3);
    uint32_t st = addInst(b, Op::St, 2);
    b.insts[st].space = MemSpace::Cached;
    uint32_t ld = addInst(b, Op::Ld, 1);
    b.insts[ld].space = MemSpace::Cached;
    wire(b, r1, st, 0);
    wire(b, d, st, 1);
    wire(b, r2, ld, 0);
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("MEM-ORDER")) << rep.describe();
}

TEST(CheckMem, LoadsAloneNeedNoOrdering)
{
    MappedBlock b = makeBlock();
    uint32_t a = addInst(b, Op::Movi, 0, 130);
    uint32_t l1 = addInst(b, Op::Ld, 1);
    uint32_t l2 = addInst(b, Op::Ld, 1);
    b.insts[l1].space = MemSpace::Smc;
    b.insts[l2].space = MemSpace::Smc;
    wire(b, a, l1, 0);
    wire(b, a, l2, 0);
    BlockOptions opts;
    opts.layout = &testLayout;
    Report rep = check::verifyBlock(b, machine("S"), opts);
    EXPECT_EQ(rep.count(Severity::Error), 0u) << rep.describe();
    EXPECT_FALSE(rep.has("MEM-ORDER"));
    EXPECT_FALSE(rep.has("MEM-MAY"));
}

// --- Revitalization (REV-*) -------------------------------------------------

TEST(CheckRev, PersistentBitWithoutMechanismIsREVPERSIST)
{
    MappedBlock b = cleanBlock();
    b.insts[0].onceOnly = true;
    b.insts[1].persistent[0] = true;
    // S has instruction revitalization but not operand revitalization.
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("REV-PERSIST")) << rep.describe();
    // S-O adds the mechanism; the same block is legal.
    rep = check::verifyBlock(b, machine("S-O"));
    EXPECT_FALSE(rep.has("REV-PERSIST")) << rep.describe();
    EXPECT_EQ(rep.errors(), 0u) << rep.describe();
}

TEST(CheckRev, OnceOnlyIntoClearedSlotIsREVFEED)
{
    // Deadlock direction: the slot empties at the first revitalize and
    // its once-only producer never re-fires.
    MappedBlock b = cleanBlock();
    b.insts[0].onceOnly = true;
    Report rep = check::verifyBlock(b, machine("S-O"));
    EXPECT_TRUE(rep.has("REV-FEED")) << rep.describe();
}

TEST(CheckRev, RefiringProducerIntoPersistentSlotIsREVFEED)
{
    // Stale-read direction: the consumer can fire on the kept operand
    // before the new value arrives.
    MappedBlock b = cleanBlock();
    b.insts[1].persistent[0] = true;
    Report rep = check::verifyBlock(b, machine("S-O"));
    EXPECT_TRUE(rep.has("REV-FEED")) << rep.describe();
}

TEST(CheckRev, NonRevitalizedBlocksAreExempt)
{
    MappedBlock b = cleanBlock();
    b.insts[0].onceOnly = true;
    BlockOptions opts;
    opts.revitalized = false;
    Report rep = check::verifyBlock(b, machine("S-O"), opts);
    EXPECT_FALSE(rep.has("REV-FEED")) << rep.describe();
    EXPECT_EQ(rep.errors(), 0u) << rep.describe();
}

// --- Configuration legality (CFG-*) -----------------------------------------

TEST(CheckCfg, SequentialOpcodeInBlockIsCFGOPCODE)
{
    MappedBlock b = cleanBlock();
    addInst(b, Op::Halt, 0);
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("CFG-OPCODE")) << rep.describe();
}

TEST(CheckCfg, MemOpWithoutSpaceIsCFGOPCODE)
{
    MappedBlock b = makeBlock();
    uint32_t a = addInst(b, Op::Movi, 0, 0);
    uint32_t l = addInst(b, Op::Ld, 1); // space left at None
    wire(b, a, l, 0);
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("CFG-OPCODE")) << rep.describe();
}

TEST(CheckCfg, RegisterBeyondFileIsCFGREG)
{
    core::MachineParams m = machine("S");
    MappedBlock b = cleanBlock();
    b.insts[1].imm = m.numRegs; // first illegal register
    Report rep = check::verifyBlock(b, m);
    EXPECT_TRUE(rep.has("CFG-REG")) << rep.describe();
}

TEST(CheckCfg, TableIdBeyondKernelIsCFGTABLE)
{
    kernels::Kernel k;
    k.name = "tableless";
    MappedBlock b = makeBlock();
    uint32_t i = addInst(b, Op::Movi, 0, 0);
    uint32_t t = addInst(b, Op::Tld, 1);
    b.insts[t].space = MemSpace::Table;
    b.insts[t].tableId = 0; // kernel defines no tables
    wire(b, i, t, 0);
    BlockOptions opts;
    opts.kernel = &k;
    Report rep = check::verifyBlock(b, machine("S-O-D"), opts);
    EXPECT_TRUE(rep.has("CFG-TABLE")) << rep.describe();
}

TEST(CheckCfg, OversizedTableIsCFGTBLBUDGET)
{
    core::MachineParams m = machine("S-O-D");
    kernels::Kernel k;
    k.name = "fat-tables";
    k.tables.push_back({"big", std::vector<Word>(
        m.l0DataBytes / wordBytes * 2, 0)});
    Report rep;
    check::checkTableBudget(k, m, rep);
    EXPECT_TRUE(rep.has("CFG-TBL-BUDGET")) << rep.describe();
    EXPECT_EQ(rep.errors(), 0u); // a modeling-fidelity warning, not fatal

    // Without the L0 data store the tables live in L1 and any size goes.
    Report rep2;
    check::checkTableBudget(k, machine("S"), rep2);
    EXPECT_FALSE(rep2.has("CFG-TBL-BUDGET"));
}

// --- Capacity (CAP-*) -------------------------------------------------------

TEST(CheckCap, BlockLargerThanMachineIsCAPGRID)
{
    core::MachineParams m = machine("S");
    MappedBlock b = cleanBlock();
    b.rows = uint8_t(m.rows + 1);
    Report rep = check::verifyBlock(b, m);
    EXPECT_TRUE(rep.has("CAP-GRID")) << rep.describe();
}

TEST(CheckCap, OffGridPlacementIsCAPGRID)
{
    MappedBlock b = cleanBlock();
    b.insts[1].row = 5; // outside the 2x2 block
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("CAP-GRID")) << rep.describe();
}

TEST(CheckCap, SharedStationIsCAPSLOT)
{
    MappedBlock b = cleanBlock();
    b.insts[1].row = b.insts[0].row;
    b.insts[1].col = b.insts[0].col;
    b.insts[1].slot = b.insts[0].slot;
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("CAP-SLOT")) << rep.describe();
}

TEST(CheckCap, OverfilledTileIsCAPTILE)
{
    MappedBlock b = cleanBlock();
    b.slotsPerTile = 1;
    b.insts[0].slot = 0;
    b.insts[1].row = b.insts[0].row;
    b.insts[1].col = b.insts[0].col;
    b.insts[1].slot = 0;
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_TRUE(rep.has("CAP-TILE")) << rep.describe();
}

TEST(CheckCap, RegisterTilesAreSlotExempt)
{
    MappedBlock b = cleanBlock();
    b.insts[1].regTile = true;
    b.insts[1].row = b.insts[0].row;
    b.insts[1].col = b.insts[0].col;
    b.insts[1].slot = b.insts[0].slot;
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_FALSE(rep.has("CAP-SLOT")) << rep.describe();
    EXPECT_EQ(rep.errors(), 0u) << rep.describe();
}

// --- Sequential programs (SEQ-*) --------------------------------------------

namespace {

SeqProgram
cleanSeq()
{
    SeqProgram p;
    p.name = "testseq";
    p.numRegs = 4;
    SeqInst mov;
    mov.op = Op::Movi;
    mov.rd = 0;
    mov.imm = 1;
    p.code.push_back(mov);
    SeqInst halt;
    halt.op = Op::Halt;
    p.code.push_back(halt);
    return p;
}

} // namespace

TEST(CheckSeq, CleanProgramPasses)
{
    Report rep = check::verifySeq(cleanSeq(), machine("M"));
    EXPECT_EQ(rep.errors(), 0u) << rep.describe();
}

TEST(CheckSeq, DataflowOpcodeIsSEQOP)
{
    SeqProgram p = cleanSeq();
    p.code[0].op = Op::Lmw;
    p.code[0].space = MemSpace::Smc;
    Report rep = check::verifySeq(p, machine("M"));
    EXPECT_TRUE(rep.has("SEQ-OP")) << rep.describe();
}

TEST(CheckSeq, BranchOutsideProgramIsSEQBR)
{
    SeqProgram p = cleanSeq();
    SeqInst br;
    br.op = Op::Br;
    br.branchTarget = 100;
    p.code.insert(p.code.begin(), br);
    Report rep = check::verifySeq(p, machine("M"));
    EXPECT_TRUE(rep.has("SEQ-BR")) << rep.describe();
}

TEST(CheckSeq, RegisterBeyondProgramIsSEQREG)
{
    SeqProgram p = cleanSeq();
    p.code[0].rd = 9; // numRegs is 4
    Report rep = check::verifySeq(p, machine("M"));
    EXPECT_TRUE(rep.has("SEQ-REG")) << rep.describe();
}

TEST(CheckSeq, RegistersBeyondTileIsSEQREG)
{
    core::MachineParams m = machine("M");
    SeqProgram p = cleanSeq();
    p.numRegs = m.tileRegs + 1;
    Report rep = check::verifySeq(p, m);
    EXPECT_TRUE(rep.has("SEQ-REG")) << rep.describe();
}

TEST(CheckSeq, MissingHaltIsSEQHALT)
{
    SeqProgram p = cleanSeq();
    p.code.pop_back();
    Report rep = check::verifySeq(p, machine("M"));
    EXPECT_TRUE(rep.has("SEQ-HALT")) << rep.describe();
}

// --- Plan-level checks ------------------------------------------------------

TEST(CheckPlan, SimdPlanRegisterPlumbingIsChecked)
{
    core::MachineParams m = machine("S");
    sched::SimdPlan plan;
    plan.name = "testplan";
    plan.recBaseReg = m.numRegs + 3;
    sched::Segment seg;
    seg.block = cleanBlock();
    plan.segments.push_back(seg);
    check::MappedProgram prog;
    prog.simd = &plan;
    Report rep = check::verify(prog, m);
    EXPECT_TRUE(rep.has("CFG-REG")) << rep.describe();
}

TEST(CheckPlan, MimdPlanRegisterPlumbingIsChecked)
{
    core::MachineParams m = machine("M");
    sched::MimdPlan plan;
    plan.name = "testplan";
    plan.program = cleanSeq();
    plan.recIdxReg = m.tileRegs + 1;
    check::MappedProgram prog;
    prog.mimd = &plan;
    Report rep = check::verify(prog, m);
    EXPECT_TRUE(rep.has("CFG-REG")) << rep.describe();
}

// --- Whole-catalog lint -----------------------------------------------------

TEST(CheckCatalog, EveryScheduledProgramLintsErrorFree)
{
    // The exact plans the processor executes: every kernel lowered for
    // every Table 5 configuration. Errors are always fatal; the only
    // expected warnings are vertex-skinning's oversized matrix palette
    // against the 2 KB per-tile L0 budget (the engine broadcasts tables
    // across the grid's aggregate L0, so it runs correctly; the warning
    // records the locality cost).
    for (const auto &configName : arch::allConfigNames()) {
        core::MachineParams m = arch::configByName(configName);
        for (const auto &k : kernels::allKernels()) {
            uint64_t chunkRecords = 0;
            sched::StreamLayout layout =
                arch::makeStreamLayout(k, m, chunkRecords);
            sched::SimdPlan simd;
            sched::MimdPlan mimd;
            check::MappedProgram prog;
            prog.kernel = &k;
            if (m.mech.localPC) {
                mimd = sched::lowerMimd(k, m, layout);
                prog.mimd = &mimd;
            } else {
                simd = sched::lowerSimd(k, m, layout);
                prog.simd = &simd;
            }
            check::Report rep = check::verify(prog, m);
            EXPECT_EQ(rep.errors(), 0u)
                << k.name << " on " << configName << ":\n"
                << rep.describe();
            for (const auto &d : rep.diags)
                EXPECT_TRUE(d.rule == "CFG-TBL-BUDGET" &&
                            k.name == "vertex-skinning")
                    << k.name << " on " << configName << ": unexpected "
                    << d.rule << ": " << d.message;
        }
    }
}

// --- Processor gate and JSON plumbing ---------------------------------------

TEST(CheckGate, EnabledCheckRecordsACleanReportInTheResult)
{
    check::setCheckEnabled(true);
    auto wl = kernels::makeWorkload("dct", 8, 77);
    arch::TripsProcessor cpu(machine("S-O"));
    auto res = cpu.run(*wl);
    check::setCheckEnabled(false);
    ASSERT_TRUE(res.verified) << res.error;
    EXPECT_TRUE(res.checked);
    EXPECT_EQ(res.checkErrors, 0u);
    EXPECT_EQ(res.checkWarnings, 0u);
}

TEST(CheckGate, DisabledCheckLeavesTheResultUnchecked)
{
    check::setCheckEnabled(false);
    auto wl = kernels::makeWorkload("dct", 8, 77);
    arch::TripsProcessor cpu(machine("S"));
    auto res = cpu.run(*wl);
    ASSERT_TRUE(res.verified) << res.error;
    EXPECT_FALSE(res.checked);
}

// --- Fuzzer cross-validation ------------------------------------------------

TEST(CheckFuzz, StaticModeIsCleanOnCleanSeeds)
{
    verify::FuzzOptions o;
    o.seed = 3;
    o.staticCheck = true;
    o.configs = {"S-O", "M"};
    verify::FuzzReport rep = verify::fuzzOne(o);
    EXPECT_TRUE(rep.clean())
        << rep.failures[0].kind << ": " << rep.failures[0].detail;
    EXPECT_EQ(rep.staticGaps, 0u);
}

// --- Report mechanics -------------------------------------------------------

TEST(CheckReport, CountsAndDescribe)
{
    Report rep;
    rep.add("DF-NOPROD", "b", 3, 1, "unfed");
    rep.add("MEM-MAY", "b", -1, -1, "maybe");
    EXPECT_EQ(rep.errors(), 1u);
    EXPECT_EQ(rep.warnings(), 1u);
    EXPECT_FALSE(rep.clean());
    EXPECT_EQ(rep.countRule("DF-NOPROD"), 1u);
    EXPECT_TRUE(rep.has("MEM-MAY"));
    EXPECT_FALSE(rep.has("DF-CYCLE"));
    std::string text = rep.describe();
    EXPECT_NE(text.find("DF-NOPROD"), std::string::npos);
    EXPECT_NE(text.find("b:i3.s1"), std::string::npos);
}

TEST(CheckReport, EveryDirectedFindingNamesARegisteredRule)
{
    // Belt and braces: a malformed block producing several findings
    // must only ever cite registry rules.
    MappedBlock b = cleanBlock();
    b.insts[0].targets.push_back({99, 0, 0});
    b.insts[1].persistent[0] = true;
    addInst(b, Op::Halt, 0);
    Report rep = check::verifyBlock(b, machine("S"));
    EXPECT_GE(rep.errors(), 3u);
    for (const auto &id : errorRules(rep))
        EXPECT_NE(check::ruleByName(id), nullptr) << id;
}
