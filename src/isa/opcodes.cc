#include "isa/opcodes.hh"

#include <bit>
#include <cmath>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dlp::isa {

namespace {

/**
 * Latency table. The paper configures functional-unit latencies to match
 * an Alpha 21264 (Section 5.2): 1-cycle integer ops, 7-cycle integer
 * multiply, 4-cycle FP add/multiply, long unpipelined divide and sqrt.
 */
constexpr OpInfo opTable[] = {
    // name       fu                latency  srcs
    {"nop",      FuClass::IntAlu,    1, 0},   // Nop
    {"mov",      FuClass::IntAlu,    1, 1},   // Mov
    {"movi",     FuClass::IntAlu,    1, 0},   // Movi
    {"sel",      FuClass::IntAlu,    1, 3},   // Sel
    {"add",      FuClass::IntAlu,    1, 2},   // Add
    {"sub",      FuClass::IntAlu,    1, 2},   // Sub
    {"mul",      FuClass::IntMul,    7, 2},   // Mul
    {"udiv",     FuClass::FpDiv,    12, 2},   // Udiv
    {"urem",     FuClass::FpDiv,    12, 2},   // Urem
    {"and",      FuClass::IntAlu,    1, 2},   // And
    {"or",       FuClass::IntAlu,    1, 2},   // Or
    {"xor",      FuClass::IntAlu,    1, 2},   // Xor
    {"not",      FuClass::IntAlu,    1, 1},   // Not
    {"shl",      FuClass::IntAlu,    1, 2},   // Shl
    {"shr",      FuClass::IntAlu,    1, 2},   // Shr
    {"sar",      FuClass::IntAlu,    1, 2},   // Sar
    {"add32",    FuClass::IntAlu,    1, 2},   // Add32
    {"sub32",    FuClass::IntAlu,    1, 2},   // Sub32
    {"mul32",    FuClass::IntMul,    7, 2},   // Mul32
    {"not32",    FuClass::IntAlu,    1, 1},   // Not32
    {"shl32",    FuClass::IntAlu,    1, 2},   // Shl32
    {"shr32",    FuClass::IntAlu,    1, 2},   // Shr32
    {"rotl32",   FuClass::IntAlu,    1, 2},   // Rotl32
    {"rotr32",   FuClass::IntAlu,    1, 2},   // Rotr32
    {"eq",       FuClass::IntAlu,    1, 2},   // Eq
    {"ne",       FuClass::IntAlu,    1, 2},   // Ne
    {"lt",       FuClass::IntAlu,    1, 2},   // Lt
    {"le",       FuClass::IntAlu,    1, 2},   // Le
    {"ltu",      FuClass::IntAlu,    1, 2},   // Ltu
    {"leu",      FuClass::IntAlu,    1, 2},   // Leu
    {"fadd",     FuClass::FpAdd,     4, 2},   // Fadd
    {"fsub",     FuClass::FpAdd,     4, 2},   // Fsub
    {"fmul",     FuClass::FpMul,     4, 2},   // Fmul
    {"fdiv",     FuClass::FpDiv,    12, 2},   // Fdiv
    {"fsqrt",    FuClass::FpDiv,    16, 1},   // Fsqrt
    {"fmin",     FuClass::FpAdd,     4, 2},   // Fmin
    {"fmax",     FuClass::FpAdd,     4, 2},   // Fmax
    {"fabs",     FuClass::IntAlu,    1, 1},   // Fabs
    {"fneg",     FuClass::IntAlu,    1, 1},   // Fneg
    {"feq",      FuClass::FpAdd,     4, 2},   // Feq
    {"flt",      FuClass::FpAdd,     4, 2},   // Flt
    {"fle",      FuClass::FpAdd,     4, 2},   // Fle
    {"itof",     FuClass::FpAdd,     4, 1},   // Itof
    {"ftoi",     FuClass::FpAdd,     4, 1},   // Ftoi
    {"actidx",   FuClass::Ctrl,      1, 0},   // ActIdx
    {"ld",       FuClass::Mem,       1, 1},   // Ld (latency added by memory)
    {"st",       FuClass::Mem,       1, 2},   // St
    {"lmw",      FuClass::Mem,       1, 1},   // Lmw
    {"tld",      FuClass::Mem,       1, 1},   // Tld
    {"read",     FuClass::Ctrl,      1, 0},   // Read
    {"write",    FuClass::Ctrl,      1, 1},   // Write
    {"br",       FuClass::Ctrl,      1, 0},   // Br
    {"beqz",     FuClass::Ctrl,      1, 1},   // Beqz
    {"bnez",     FuClass::Ctrl,      1, 1},   // Bnez
    {"halt",     FuClass::Ctrl,      1, 0},   // Halt
};

static_assert(sizeof(opTable) / sizeof(opTable[0]) ==
                  static_cast<size_t>(Op::NumOps),
              "opTable out of sync with Op enum");

constexpr Word mask32 = 0xffffffffull;

} // namespace

const OpInfo &
opInfo(Op op)
{
    auto idx = static_cast<size_t>(op);
    panic_if(idx >= static_cast<size_t>(Op::NumOps), "bad opcode %zu", idx);
    return opTable[idx];
}

bool
isMemOp(Op op)
{
    return op == Op::Ld || op == Op::St || op == Op::Lmw || op == Op::Tld;
}

bool
isCtrlOp(Op op)
{
    return op == Op::Br || op == Op::Beqz || op == Op::Bnez || op == Op::Halt;
}

Word
fpToWord(double d)
{
    return std::bit_cast<Word>(d);
}

double
wordToFp(Word w)
{
    return std::bit_cast<double>(w);
}

Word
evalOp(Op op, Word a, Word b, Word c, Word imm)
{
    switch (op) {
      case Op::Nop:    return 0;
      case Op::Mov:    return a;
      case Op::Movi:   return imm;
      case Op::Sel:    return c ? a : b;

      case Op::Add:    return a + b;
      case Op::Sub:    return a - b;
      case Op::Mul:    return a * b;
      case Op::Udiv:
        panic_if(b == 0, "udiv by zero");
        return a / b;
      case Op::Urem:
        panic_if(b == 0, "urem by zero");
        return a % b;
      case Op::And:    return a & b;
      case Op::Or:     return a | b;
      case Op::Xor:    return a ^ b;
      case Op::Not:    return ~a;
      case Op::Shl:    return (b & 63) == 0 ? a : a << (b & 63);
      case Op::Shr:    return (b & 63) == 0 ? a : a >> (b & 63);
      case Op::Sar:
        return static_cast<Word>(static_cast<int64_t>(a) >>
                                 static_cast<int64_t>(b & 63));

      case Op::Add32:  return (a + b) & mask32;
      case Op::Sub32:  return (a - b) & mask32;
      case Op::Mul32:  return (a * b) & mask32;
      case Op::Not32:  return (~a) & mask32;
      case Op::Shl32:  return (static_cast<uint32_t>(a) << (b & 31)) & mask32;
      case Op::Shr32:  return (static_cast<uint32_t>(a) >> (b & 31));
      case Op::Rotl32:
        return rotl32(static_cast<uint32_t>(a), static_cast<unsigned>(b));
      case Op::Rotr32:
        return rotr32(static_cast<uint32_t>(a), static_cast<unsigned>(b));

      case Op::Eq:     return a == b;
      case Op::Ne:     return a != b;
      case Op::Lt:
        return static_cast<int64_t>(a) < static_cast<int64_t>(b);
      case Op::Le:
        return static_cast<int64_t>(a) <= static_cast<int64_t>(b);
      case Op::Ltu:    return a < b;
      case Op::Leu:    return a <= b;

      case Op::Fadd:   return fpToWord(wordToFp(a) + wordToFp(b));
      case Op::Fsub:   return fpToWord(wordToFp(a) - wordToFp(b));
      case Op::Fmul:   return fpToWord(wordToFp(a) * wordToFp(b));
      case Op::Fdiv:   return fpToWord(wordToFp(a) / wordToFp(b));
      case Op::Fsqrt:  return fpToWord(std::sqrt(wordToFp(a)));
      case Op::Fmin:   return fpToWord(std::fmin(wordToFp(a), wordToFp(b)));
      case Op::Fmax:   return fpToWord(std::fmax(wordToFp(a), wordToFp(b)));
      case Op::Fabs:   return fpToWord(std::fabs(wordToFp(a)));
      case Op::Fneg:   return fpToWord(-wordToFp(a));
      case Op::Feq:    return wordToFp(a) == wordToFp(b);
      case Op::Flt:    return wordToFp(a) < wordToFp(b);
      case Op::Fle:    return wordToFp(a) <= wordToFp(b);
      case Op::Itof:
        return fpToWord(static_cast<double>(static_cast<int64_t>(a)));
      case Op::Ftoi:
        return static_cast<Word>(static_cast<int64_t>(wordToFp(a)));

      default:
        panic("evalOp on non-functional opcode %s", opName(op));
    }
}

} // namespace dlp::isa
