# Empty compiler generated dependencies file for explore_configs.
# This may be replaced when dependencies are built.
