#include "ref/rijndael.hh"

#include <cstring>

namespace dlp::ref {

namespace {

/** Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1. */
uint8_t
gfMul(uint8_t a, uint8_t b)
{
    uint8_t r = 0;
    while (b) {
        if (b & 1)
            r ^= a;
        uint8_t hi = a & 0x80;
        a <<= 1;
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return r;
}

uint8_t
gfInv(uint8_t a)
{
    if (a == 0)
        return 0;
    // a^254 = a^-1 in GF(2^8).
    uint8_t result = 1;
    uint8_t base = a;
    int e = 254;
    while (e) {
        if (e & 1)
            result = gfMul(result, base);
        base = gfMul(base, base);
        e >>= 1;
    }
    return result;
}

uint32_t
rotl8of32(uint32_t v)
{
    return (v << 8) | (v >> 24);
}

} // namespace

const std::array<uint8_t, 256> &
aesSbox()
{
    static const std::array<uint8_t, 256> sbox = [] {
        std::array<uint8_t, 256> s{};
        for (int i = 0; i < 256; ++i) {
            uint8_t x = gfInv(static_cast<uint8_t>(i));
            uint8_t y = x;
            for (int b = 0; b < 4; ++b) {
                y = static_cast<uint8_t>((y << 1) | (y >> 7));
                x ^= y;
            }
            s[i] = x ^ 0x63;
        }
        return s;
    }();
    return sbox;
}

const std::array<std::array<uint32_t, 256>, 4> &
aesTTables()
{
    static const std::array<std::array<uint32_t, 256>, 4> tables = [] {
        std::array<std::array<uint32_t, 256>, 4> t{};
        const auto &sbox = aesSbox();
        for (int i = 0; i < 256; ++i) {
            uint8_t s = sbox[i];
            uint8_t s2 = gfMul(s, 2);
            uint8_t s3 = gfMul(s, 3);
            uint32_t w = (uint32_t(s2) << 24) | (uint32_t(s) << 16) |
                         (uint32_t(s) << 8) | s3;
            // T1..T3 are successive right-rotations of T0 by one byte.
            t[0][i] = w;
            t[1][i] = (w >> 8) | (w << 24);
            t[2][i] = (w >> 16) | (w << 16);
            t[3][i] = (w >> 24) | (w << 8);
        }
        return t;
    }();
    return tables;
}

Aes128::Aes128(const uint8_t key[16])
{
    const auto &sbox = aesSbox();
    for (int i = 0; i < 4; ++i) {
        rk[i] = (uint32_t(key[4 * i]) << 24) |
                (uint32_t(key[4 * i + 1]) << 16) |
                (uint32_t(key[4 * i + 2]) << 8) | key[4 * i + 3];
    }
    uint8_t rcon = 1;
    for (int i = 4; i < 44; ++i) {
        uint32_t t = rk[i - 1];
        if (i % 4 == 0) {
            t = rotl8of32(t);
            t = (uint32_t(sbox[(t >> 24) & 0xff]) << 24) |
                (uint32_t(sbox[(t >> 16) & 0xff]) << 16) |
                (uint32_t(sbox[(t >> 8) & 0xff]) << 8) |
                sbox[t & 0xff];
            t ^= uint32_t(rcon) << 24;
            rcon = gfMul(rcon, 2);
        }
        rk[i] = rk[i - 4] ^ t;
    }
}

void
Aes128::encrypt(const uint8_t in[16], uint8_t out[16]) const
{
    const auto &sbox = aesSbox();
    uint8_t st[16];
    std::memcpy(st, in, 16);

    auto addRoundKey = [&](int round) {
        for (int c = 0; c < 4; ++c) {
            uint32_t w = rk[4 * round + c];
            st[4 * c] ^= (w >> 24) & 0xff;
            st[4 * c + 1] ^= (w >> 16) & 0xff;
            st[4 * c + 2] ^= (w >> 8) & 0xff;
            st[4 * c + 3] ^= w & 0xff;
        }
    };
    auto subBytes = [&] {
        for (auto &b : st)
            b = sbox[b];
    };
    auto shiftRows = [&] {
        // State is column-major: st[4c + r].
        uint8_t tmp[16];
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                tmp[4 * c + r] = st[4 * ((c + r) % 4) + r];
        std::memcpy(st, tmp, 16);
    };
    auto mixColumns = [&] {
        for (int c = 0; c < 4; ++c) {
            uint8_t *col = st + 4 * c;
            uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
            col[0] = gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3;
            col[1] = a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3;
            col[2] = a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3);
            col[3] = gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2);
        }
    };

    addRoundKey(0);
    for (int round = 1; round < 10; ++round) {
        subBytes();
        shiftRows();
        mixColumns();
        addRoundKey(round);
    }
    subBytes();
    shiftRows();
    addRoundKey(10);
    std::memcpy(out, st, 16);
}

void
Aes128::encryptTTable(const uint8_t in[16], uint8_t out[16]) const
{
    const auto &T = aesTTables();
    const auto &sbox = aesSbox();

    uint32_t s0, s1, s2, s3;
    auto load = [&](const uint8_t *p) {
        return (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) |
               (uint32_t(p[2]) << 8) | p[3];
    };
    s0 = load(in) ^ rk[0];
    s1 = load(in + 4) ^ rk[1];
    s2 = load(in + 8) ^ rk[2];
    s3 = load(in + 12) ^ rk[3];

    for (int round = 1; round < 10; ++round) {
        uint32_t t0 = T[0][(s0 >> 24)] ^ T[1][(s1 >> 16) & 0xff] ^
                      T[2][(s2 >> 8) & 0xff] ^ T[3][s3 & 0xff] ^
                      rk[4 * round];
        uint32_t t1 = T[0][(s1 >> 24)] ^ T[1][(s2 >> 16) & 0xff] ^
                      T[2][(s3 >> 8) & 0xff] ^ T[3][s0 & 0xff] ^
                      rk[4 * round + 1];
        uint32_t t2 = T[0][(s2 >> 24)] ^ T[1][(s3 >> 16) & 0xff] ^
                      T[2][(s0 >> 8) & 0xff] ^ T[3][s1 & 0xff] ^
                      rk[4 * round + 2];
        uint32_t t3 = T[0][(s3 >> 24)] ^ T[1][(s0 >> 16) & 0xff] ^
                      T[2][(s1 >> 8) & 0xff] ^ T[3][s2 & 0xff] ^
                      rk[4 * round + 3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
    auto finalWord = [&](uint32_t a, uint32_t b, uint32_t c, uint32_t d,
                         uint32_t key) {
        uint32_t w = (uint32_t(sbox[(a >> 24)]) << 24) |
                     (uint32_t(sbox[(b >> 16) & 0xff]) << 16) |
                     (uint32_t(sbox[(c >> 8) & 0xff]) << 8) |
                     uint32_t(sbox[d & 0xff]);
        return w ^ key;
    };
    uint32_t o0 = finalWord(s0, s1, s2, s3, rk[40]);
    uint32_t o1 = finalWord(s1, s2, s3, s0, rk[41]);
    uint32_t o2 = finalWord(s2, s3, s0, s1, rk[42]);
    uint32_t o3 = finalWord(s3, s0, s1, s2, rk[43]);

    auto store = [&](uint8_t *p, uint32_t w) {
        p[0] = (w >> 24) & 0xff;
        p[1] = (w >> 16) & 0xff;
        p[2] = (w >> 8) & 0xff;
        p[3] = w & 0xff;
    };
    store(out, o0);
    store(out + 4, o1);
    store(out + 8, o2);
    store(out + 12, o3);
}

} // namespace dlp::ref
