/**
 * @file
 * google-benchmark microbenchmarks of the simulator's substrates: mesh
 * routing, calendar resources, cache tag probes, the IR interpreter, the
 * scheduler lowerings and end-to-end simulation throughput. These track
 * simulator (host) performance, not simulated-machine performance.
 */

#include <benchmark/benchmark.h>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "kernels/catalog.hh"
#include "kernels/interp.hh"
#include "kernels/workload.hh"
#include "mem/cache_model.hh"
#include "noc/mesh.hh"
#include "sched/linearize.hh"
#include "sched/simd_lowering.hh"
#include "sim/eventq.hh"
#include "sim/resource.hh"

using namespace dlp;

static void
BM_MeshRoute(benchmark::State &state)
{
    noc::MeshNetwork mesh(8, 8);
    Rng rng(1);
    Tick t = 0;
    for (auto _ : state) {
        noc::Coord src{uint8_t(rng.below(8)), uint8_t(rng.below(8))};
        noc::Coord dst{uint8_t(rng.below(8)), uint8_t(rng.below(8))};
        benchmark::DoNotOptimize(mesh.route(src, dst, t++));
    }
}
BENCHMARK(BM_MeshRoute);

static void
BM_ResourceAcquireInOrder(benchmark::State &state)
{
    sim::Resource res(1);
    Tick t = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(res.acquire(t += 2));
}
BENCHMARK(BM_ResourceAcquireInOrder);

static void
BM_ResourceAcquireScattered(benchmark::State &state)
{
    sim::Resource res(1);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(res.acquire(rng.below(1 << 20)));
}
BENCHMARK(BM_ResourceAcquireScattered);

static void
BM_CacheProbe(benchmark::State &state)
{
    mem::CacheModel cache("bench", 64 * 1024, 4, 32, 8, 2);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.probe(rng.below(1 << 18), false));
}
BENCHMARK(BM_CacheProbe);

static void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue eq;
    for (auto _ : state) {
        eq.reset();
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<Tick>(i * 3 % 17), [] {});
        eq.run();
    }
}
BENCHMARK(BM_EventQueue);

static void
BM_InterpretRijndael(benchmark::State &state)
{
    auto k = kernels::makeRijndael();
    Rng rng(4);
    std::vector<Word> in(k.inWords), out(k.outWords);
    for (auto &w : in)
        w = rng.next();
    for (auto _ : state)
        kernels::interpret(k, 0, in.data(), out.data());
}
BENCHMARK(BM_InterpretRijndael);

static void
BM_LowerSimd(benchmark::State &state)
{
    auto k = kernels::makeVertexSimple();
    auto m = arch::configByName("S-O");
    sched::StreamLayout layout{0, 30000, 60000};
    for (auto _ : state)
        benchmark::DoNotOptimize(sched::lowerSimd(k, m, layout));
}
BENCHMARK(BM_LowerSimd);

static void
BM_LowerMimd(benchmark::State &state)
{
    auto k = kernels::makeVertexSimple();
    auto m = arch::configByName("M-D");
    sched::StreamLayout layout{0, 30000, 60000};
    for (auto _ : state)
        benchmark::DoNotOptimize(sched::lowerMimd(k, m, layout));
}
BENCHMARK(BM_LowerMimd);

static void
BM_EndToEndConvert(benchmark::State &state)
{
    setQuietLogging(true);
    for (auto _ : state) {
        auto wl = kernels::makeWorkload("convert", 256, 5);
        arch::TripsProcessor cpu(arch::configByName("S-O"));
        auto res = cpu.run(*wl);
        benchmark::DoNotOptimize(res.cycles);
    }
}
BENCHMARK(BM_EndToEndConvert);

BENCHMARK_MAIN();
