/**
 * @file
 * Unit tests for the common utilities: bit manipulation, the
 * deterministic RNG, the statistics package, streaming FNV-1a hashing
 * and the logging helpers.
 */

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <sstream>

#include "common/bitutils.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/timeline.hh"

using namespace dlp;

TEST(BitUtils, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(6));
}

TEST(BitUtils, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtils, Rounding)
{
    EXPECT_EQ(roundUp(13, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
    EXPECT_EQ(roundDown(13, 8), 8u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
}

TEST(BitUtils, BitsAndRotates)
{
    EXPECT_EQ(bits(0xabcd, 15, 8), 0xabu);
    EXPECT_EQ(rotl32(0x80000000u, 1), 1u);
    EXPECT_EQ(rotr32(1u, 1), 0x80000000u);
    EXPECT_EQ(rotl32(0x12345678u, 0), 0x12345678u);
    EXPECT_EQ(rotl32(rotr32(0xdeadbeefu, 13), 13), 0xdeadbeefu);
}

TEST(Ticks, CycleConversions)
{
    EXPECT_EQ(cyclesToTicks(3), 6u);
    EXPECT_EQ(ticksToCycles(6), 3u);
    EXPECT_EQ(ticksToCycles(7), 4u); // partial cycles round up
}

TEST(Random, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Random, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
        EXPECT_LT(r.below(17), 17u);
        int64_t x = r.range(-5, 5);
        EXPECT_GE(x, -5);
        EXPECT_LE(x, 5);
    }
}

TEST(Random, RoughlyUniform)
{
    Rng r(11);
    int buckets[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        buckets[r.below(8)]++;
    for (int b = 0; b < 8; ++b) {
        EXPECT_GT(buckets[b], n / 8 - n / 40);
        EXPECT_LT(buckets[b], n / 8 + n / 40);
    }
}

TEST(Stats, ScalarAccumulates)
{
    StatGroup g("test");
    Stat &s = g.scalar("counter");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(g.lookup("counter").get(), 3.5);
    g.resetAll();
    EXPECT_DOUBLE_EQ(g.lookup("counter").get(), 0.0);
}

TEST(Stats, LookupUnknownPanics)
{
    StatGroup g("test");
    EXPECT_THROW(g.lookup("nope"), PanicError);
}

TEST(Stats, DumpContainsPrefix)
{
    StatGroup g("core.tile0");
    g.scalar("issued") += 5;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("core.tile0.issued"), std::string::npos);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error %d", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug %s", "here"), PanicError);
}

TEST(Logging, PanicIfRespectsCondition)
{
    panic_if(false, "must not fire");
    EXPECT_THROW(panic_if(1 == 1, "fires"), PanicError);
}

TEST(Logging, MessageFormatting)
{
    try {
        fatal("value=%d name=%s", 7, "x");
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7 name=x");
    }
}

TEST(Random, BelowIsExactlyUniformOverSmallBound)
{
    // Lemire rejection sampling: over a full 64-bit draw space every
    // residue of a small bound must be reachable; sanity-check that a
    // bound that does not divide 2^64 shows no modulo bias between its
    // lowest and highest residues over a large sample.
    Rng r(1234);
    const uint64_t bound = 3;
    uint64_t counts[bound] = {};
    const int n = 300000;
    for (int i = 0; i < n; ++i)
        counts[r.below(bound)]++;
    for (uint64_t c : counts) {
        EXPECT_GT(c, uint64_t(n) / bound - n / 100);
        EXPECT_LT(c, uint64_t(n) / bound + n / 100);
    }
}

TEST(Random, BelowOneAlwaysZero)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Random, RangeSurvivesFullInt64Span)
{
    // lo = INT64_MIN, hi = INT64_MAX spans 2^64 values: the span + 1
    // computation would overflow a naive below(hi - lo + 1).
    Rng r(99);
    bool sawNegative = false, sawPositive = false;
    for (int i = 0; i < 200; ++i) {
        int64_t v = r.range(std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max());
        sawNegative |= v < 0;
        sawPositive |= v > 0;
    }
    EXPECT_TRUE(sawNegative);
    EXPECT_TRUE(sawPositive);
}

TEST(Random, RangeHitsBothEndpoints)
{
    Rng r(3);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000 && !(lo && hi); ++i) {
        int64_t v = r.range(-1, 1);
        lo |= v == -1;
        hi |= v == 1;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Stats, ZeroSampleDistributionDumpsOnlySampleCount)
{
    StatGroup g("zs");
    g.distribution("touched", 0.0, 10.0, 4).sample(3.0);
    g.distribution("untouched", 0.0, 10.0, 4);
    std::ostringstream os;
    g.dump(os);
    std::string text = os.str();
    // The sampled histogram reports moments; the empty one reports its
    // zero sample count and nothing else (no fabricated mean/min/max).
    EXPECT_NE(text.find("touched::mean"), std::string::npos) << text;
    EXPECT_NE(text.find("untouched::samples"), std::string::npos) << text;
    EXPECT_EQ(text.find("untouched::mean"), std::string::npos) << text;
    EXPECT_EQ(text.find("untouched::min"), std::string::npos) << text;
    EXPECT_EQ(text.find("untouched::max"), std::string::npos) << text;
    EXPECT_EQ(text.find("untouched::stdev"), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// Streaming FNV-1a hashing (common/hash.hh).

TEST(Hash, Fnv64DirectedVectors)
{
    // Published FNV-1a 64-bit reference values.
    Fnv1a64 h;
    EXPECT_EQ(h.digest(), 0xcbf29ce484222325ull); // empty = offset basis
    h.add("a", 1);
    EXPECT_EQ(h.digest(), 0xaf63dc4c8601ec8cull);
    h.reset();
    h.add("foobar", 6);
    EXPECT_EQ(h.digest(), 0x85944171f73967e8ull);
}

TEST(Hash, Fnv1aStepMatchesByteFold)
{
    // fnv1aStep folds a 64-bit value in one step the same way the
    // byte-wise hasher folds its 8 little-endian bytes via addU64:
    // the obs::SignatureHash fast path and the canonical-bytes path
    // must never diverge.
    uint64_t v = 0x0123456789abcdefull;
    Fnv1a64 h;
    h.addU64(v);
    uint64_t folded = fnv64OffsetBasis;
    for (int i = 0; i < 8; ++i) {
        uint64_t byte = (v >> (8 * i)) & 0xff;
        folded = (folded ^ byte) * fnv64Prime;
    }
    EXPECT_EQ(h.digest(), folded);
}

TEST(Hash, Fnv128HexShapeAndStability)
{
    Hash128 d = fnv1a128("");
    // Empty input = the 128-bit offset basis.
    EXPECT_EQ(d.hi, 0x6c62272e07bb0142ull);
    EXPECT_EQ(d.lo, 0x62b821756295c58dull);
    EXPECT_EQ(d.hex().size(), 32u);
    EXPECT_EQ(d.hex(), "6c62272e07bb014262b821756295c58d");
    EXPECT_EQ(fnv1a128("abc").hex(), fnv1a128("abc").hex());
    EXPECT_NE(fnv1a128("abc").hex(), fnv1a128("abd").hex());
}

TEST(Hash, AddStringIsLengthPrefixed)
{
    // ("ab", "c") and ("a", "bc") must hash differently: field
    // boundaries are part of the canonical serialization.
    Fnv1a128 a, b;
    a.addString("ab");
    a.addString("c");
    b.addString("a");
    b.addString("bc");
    EXPECT_NE(a.digest().hex(), b.digest().hex());
}

TEST(Hash, CollisionSanitySweep)
{
    // Not a cryptographic claim — just that a few thousand related
    // inputs (the shape of our key material) stay collision-free.
    std::set<std::string> seen;
    for (uint64_t i = 0; i < 4096; ++i) {
        Fnv1a128 h;
        h.addU64(i);
        h.addString("cell");
        h.addU64(i * 7919);
        seen.insert(h.digest().hex());
    }
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(Hash, SignatureHashUnchangedByRefactor)
{
    // SignatureHash now delegates to fnv1aStep; its digests feed
    // golden steady-state detection, so the sequence (5, 17, 99) must
    // still produce the hand-evaluated FNV fold it always did.
    obs::SignatureHash sig;
    uint64_t expect = fnv64OffsetBasis;
    for (uint64_t v : {5ull, 17ull, 99ull}) {
        sig.add(v);
        expect = (expect ^ v) * fnv64Prime;
    }
    EXPECT_EQ(sig.digest(), expect);
}
