/**
 * @file
 * Tests for the persistent content-addressed result store: key
 * derivation and sensitivity, the full-fidelity result codec, store
 * round trips, robustness against corrupt entries / truncated indexes
 * / concurrent writers, and the sweep driver's store integration with
 * its counter conservation laws.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/export.hh"
#include "driver/sweep.hh"
#include "store/codec.hh"
#include "store/key.hh"
#include "store/result_store.hh"

using namespace dlp;
namespace fs = std::filesystem;

namespace {

/** A fresh private directory under the test temp root. */
std::string
freshDir(const std::string &tag)
{
    std::string tmpl = ::testing::TempDir() + "dlp_store_" + tag + "_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    return made ? made : tmpl;
}

/** A small, fast experiment cell. */
driver::SweepTask
quickTask(const std::string &kernel = "fft",
          const std::string &config = "S", uint64_t seed = 1234)
{
    driver::SweepTask t;
    t.kernel = kernel;
    t.config = config;
    t.scaleDiv = 8;
    t.seed = seed;
    return t;
}

std::string
keyFor(const driver::SweepTask &t)
{
    return store::experimentKey(t.kernel, t.config,
                                driver::resolvedScale(t), t.seed);
}

/** Restores the default code version even if a test fails mid-way. */
struct CodeVersionGuard
{
    ~CodeVersionGuard() { store::setCodeVersion(""); }
};

} // namespace

TEST(StoreKey, ShapeAndDeterminism)
{
    std::string k = keyFor(quickTask());
    EXPECT_EQ(k.size(), 32u);
    EXPECT_EQ(k.find_first_not_of("0123456789abcdef"), std::string::npos);
    EXPECT_EQ(k, keyFor(quickTask()));
}

TEST(StoreKey, SensitiveToEveryComponent)
{
    std::string base = keyFor(quickTask());
    EXPECT_NE(base, keyFor(quickTask("lu")));
    EXPECT_NE(base, keyFor(quickTask("fft", "M-D")));
    EXPECT_NE(base, keyFor(quickTask("fft", "S", 99)));
    driver::SweepTask widerScale = quickTask();
    widerScale.scaleDiv = 1;
    EXPECT_NE(base, keyFor(widerScale));
}

TEST(StoreKey, CodeVersionInvalidatesKeys)
{
    CodeVersionGuard guard;
    std::string before = keyFor(quickTask());
    store::setCodeVersion("vA");
    std::string versionA = keyFor(quickTask());
    store::setCodeVersion("vB");
    std::string versionB = keyFor(quickTask());
    store::setCodeVersion("");
    EXPECT_NE(versionA, before);
    EXPECT_NE(versionB, versionA);
    // Restoring the default restores the original key.
    EXPECT_EQ(keyFor(quickTask()), before);
}

TEST(StoreCodec, RoundTripIsExportIdentical)
{
    arch::ExperimentResult original = driver::runTask(quickTask());
    arch::ExperimentResult decoded =
        store::resultFromJson(store::resultToJson(original));
    // The analysis exporter is the consumer whose view must not be
    // able to tell the difference — compare its full serialized text,
    // which covers every scalar, formula, distribution moment and
    // vector bit-for-bit.
    EXPECT_EQ(json::write(analysis::toJson(original)),
              json::write(analysis::toJson(decoded)));
}

TEST(StoreCodec, CountersAboveDoublePrecisionStayExact)
{
    // A very long simulation's uint64 counters exceed 2^53; the codec
    // and the JSON layer must carry them bit-exactly, not through a
    // double.
    arch::ExperimentResult original = driver::runTask(quickTask());
    original.cycles = (1ull << 53) + 1;          // first non-double
    original.instsExecuted = 18446744073709551615ull;  // 2^64 - 1
    original.hostEvents = (1ull << 62) + 12345;
    arch::ExperimentResult decoded = store::resultFromJson(
        json::parse(json::write(store::resultToJson(original), 0)));
    EXPECT_EQ(decoded.cycles, original.cycles);
    EXPECT_EQ(decoded.instsExecuted, original.instsExecuted);
    EXPECT_EQ(decoded.hostEvents, original.hostEvents);
}

TEST(ResultStore, InsertLookupVerifyStats)
{
    std::string dir = freshDir("rt");
    store::ResultStore rs(dir);
    std::string key = keyFor(quickTask());
    arch::ExperimentResult r;
    EXPECT_FALSE(rs.lookup(key, r));
    EXPECT_FALSE(rs.verifyEntry(key));

    arch::ExperimentResult computed = driver::runTask(quickTask());
    rs.insert(key, computed);
    EXPECT_TRUE(rs.verifyEntry(key));
    EXPECT_TRUE(rs.lookup(key, r));
    EXPECT_EQ(json::write(analysis::toJson(computed)),
              json::write(analysis::toJson(r)));

    store::StoreStats s = rs.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.corrupt, 0u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GT(s.bytes, 0u);
    EXPECT_TRUE(fs::exists(rs.entryPath(key)));
}

TEST(ResultStore, CorruptEntryDegradesToMissAndRepairs)
{
    std::string dir = freshDir("corrupt");
    store::ResultStore rs(dir);
    std::string key = keyFor(quickTask());
    arch::ExperimentResult computed = driver::runTask(quickTask());
    rs.insert(key, computed);

    // Flip bytes in the middle of the entry: the checksum (or the
    // JSON parse) must reject it, the lookup must miss, and the bad
    // file must be unlinked so the next insert repairs it.
    {
        std::fstream f(rs.entryPath(key),
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(200);
        f.write("XXXX", 4);
    }
    EXPECT_FALSE(rs.verifyEntry(key));
    arch::ExperimentResult r;
    EXPECT_FALSE(rs.lookup(key, r));
    EXPECT_FALSE(fs::exists(rs.entryPath(key)));
    EXPECT_EQ(rs.stats().corrupt, 1u);

    rs.insert(key, computed);
    EXPECT_TRUE(rs.lookup(key, r));

    // Truncation (a torn write that somehow survived) is also a miss.
    {
        std::ofstream f(rs.entryPath(key),
                        std::ios::binary | std::ios::trunc);
        f << "{\"format\":1,\"codeVer";
    }
    EXPECT_FALSE(rs.lookup(key, r));
    EXPECT_EQ(rs.stats().corrupt, 2u);
}

TEST(ResultStore, ForeignCodeVersionIsAMiss)
{
    CodeVersionGuard guard;
    std::string dir = freshDir("ver");
    store::setCodeVersion("vOld");
    std::string oldKey = keyFor(quickTask());
    {
        store::ResultStore rs(dir);
        rs.insert(oldKey, driver::runTask(quickTask()));
    }
    // A new code version derives a different key, so the old entry is
    // simply never addressed...
    store::setCodeVersion("vNew");
    EXPECT_NE(keyFor(quickTask()), oldKey);
    // ...and even if something probes the old key verbatim (a copied
    // store, a renamed directory), the entry's recorded version no
    // longer matches and it reads as absent/corrupt, never as a stale
    // result.
    store::ResultStore rs(dir);
    arch::ExperimentResult r;
    EXPECT_FALSE(rs.lookup(oldKey, r));
}

TEST(ResultStore, TruncatedIndexToleratedAndRebuilt)
{
    std::string dir = freshDir("index");
    store::ResultStore rs(dir);
    std::string keyA = keyFor(quickTask());
    std::string keyB = keyFor(quickTask("fft", "S", 77));
    rs.insert(keyA, driver::runTask(quickTask()));
    rs.insert(keyB, driver::runTask(quickTask("fft", "S", 77)));

    // Tear the index mid-line (as an interrupted append would): stats
    // keeps counting the intact lines and lookups are unaffected,
    // because lookups never consult the index at all.
    std::string index;
    {
        std::ifstream in(rs.indexPath(), std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        index = ss.str();
    }
    {
        std::ofstream out(rs.indexPath(),
                          std::ios::binary | std::ios::trunc);
        out << index.substr(0, index.find('\n') + 10);
    }
    EXPECT_EQ(rs.stats().entries, 1u);
    arch::ExperimentResult r;
    EXPECT_TRUE(rs.lookup(keyB, r));

    // rebuildIndex repairs the index from the objects directory.
    rs.rebuildIndex();
    EXPECT_EQ(rs.stats().entries, 2u);

    // Even a destroyed index only loses stats, never results.
    {
        std::ofstream out(rs.indexPath(),
                          std::ios::binary | std::ios::trunc);
        out << "garbage that is not json\n";
    }
    EXPECT_EQ(rs.stats().entries, 0u);
    EXPECT_TRUE(rs.lookup(keyA, r));
    rs.rebuildIndex();
    EXPECT_EQ(rs.stats().entries, 2u);
}

TEST(ResultStore, ConcurrentSameKeyWritersRaceBenignly)
{
    std::string dir = freshDir("race");
    std::string key = keyFor(quickTask());
    arch::ExperimentResult computed = driver::runTask(quickTask());

    // Two child processes insert the same key at once. The simulator
    // is deterministic, so both write identical bytes and either
    // rename winning is correct; the parent must read a valid entry.
    pid_t pids[2];
    for (auto &pid : pids) {
        pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            store::ResultStore rs(dir);
            rs.insert(key, computed);
            ::_exit(0);
        }
    }
    for (pid_t pid : pids) {
        int status = 0;
        ::waitpid(pid, &status, 0);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    store::ResultStore rs(dir);
    EXPECT_TRUE(rs.verifyEntry(key));
    arch::ExperimentResult r;
    EXPECT_TRUE(rs.lookup(key, r));
    EXPECT_EQ(json::write(analysis::toJson(computed)),
              json::write(analysis::toJson(r)));
    // The index saw both appends but deduplicates by key.
    EXPECT_EQ(rs.stats().entries, 1u);
}

TEST(SweepStore, WarmRerunIsBitIdenticalAndFullyHit)
{
    std::string dir = freshDir("sweep");
    driver::SweepPlan plan;
    plan.add("fft", "S", 8, 4242);
    plan.add("fft", "M-D", 8, 4242);
    plan.add("lu", "S", 8, 4242);

    driver::SweepOptions opts;
    opts.storeDir = dir;

    uint64_t hits0 = driver::resultCacheHits();
    uint64_t misses0 = driver::resultCacheMisses();
    store::StoreStats st0 = driver::storeTraffic();

    auto cold = driver::runSweep(plan, opts);

    // Conservation: every cell is exactly one cache hit or miss, and
    // the store is consulted exactly once per cache miss.
    uint64_t coldHits = driver::resultCacheHits() - hits0;
    uint64_t coldMisses = driver::resultCacheMisses() - misses0;
    store::StoreStats st1 = driver::storeTraffic();
    EXPECT_EQ(coldHits + coldMisses, plan.size());
    EXPECT_EQ((st1.hits - st0.hits) + (st1.misses - st0.misses),
              coldMisses);
    EXPECT_EQ(st1.inserts - st0.inserts, st1.misses - st0.misses);

    // Drop the in-process cache to simulate a fresh process: the warm
    // rerun must be served entirely from the store, bit-identically.
    driver::clearResultCache();
    auto warm = driver::runSweep(plan, opts);
    store::StoreStats st2 = driver::storeTraffic();
    EXPECT_EQ(st2.hits - st1.hits, plan.size());
    EXPECT_EQ(st2.misses, st1.misses);
    EXPECT_EQ(st2.inserts, st1.inserts);
    ASSERT_EQ(warm.size(), cold.size());
    for (size_t i = 0; i < cold.size(); ++i)
        EXPECT_EQ(json::write(analysis::toJson(cold[i])),
                  json::write(analysis::toJson(warm[i])));

    // The exported "store" object reflects the same counters.
    json::Value stats = driver::storeStatsJson();
    EXPECT_EQ(uint64_t(stats.at("cacheHits").asNumber()),
              driver::resultCacheHits());
    EXPECT_EQ(uint64_t(stats.at("storeHits").asNumber()), st2.hits);
    EXPECT_TRUE(stats.has("entries"));
}
