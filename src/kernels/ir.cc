#include "kernels/ir.hh"

#include <cinttypes>

#include "common/bitutils.hh"

namespace dlp::kernels {

namespace {

/** How many sources a node kind consumes (Compute uses its op's count). */
unsigned
nodeSrcCount(const Node &n)
{
    switch (n.kind) {
      case NodeKind::Compute:
        return isa::opInfo(n.op).numSrcs;
      case NodeKind::Const:
      case NodeKind::RecIdx:
      case NodeKind::LoopIdx:
      case NodeKind::InWord:
      case NodeKind::Carry:
        return 0;
      case NodeKind::InWordAt:
      case NodeKind::InWide:
      case NodeKind::ScratchWide:
      case NodeKind::WordOf:
      case NodeKind::ScratchLoad:
      case NodeKind::CachedLoad:
      case NodeKind::TableLoad:
      case NodeKind::OutWord:
      case NodeKind::LoopExit:
        return 1;
      case NodeKind::OutWordAt:
      case NodeKind::ScratchStore:
      case NodeKind::CachedStore:
        return 2;
    }
    return 0;
}

} // namespace

void
Kernel::validate() const
{
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        unsigned srcs = nodeSrcCount(n);
        for (unsigned s = 0; s < srcs; ++s) {
            if (s == 1 && n.immB)
                continue;
            panic_if(n.src[s] == noValue,
                     "kernel %s node %zu missing src %u", name.c_str(), i, s);
            panic_if(n.src[s] >= nodes.size(),
                     "kernel %s node %zu src %u out of range", name.c_str(),
                     i, s);
        }
        if (n.kind == NodeKind::Const)
            panic_if(n.imm >= constants.size(),
                     "kernel %s node %zu bad constant", name.c_str(), i);
        if (n.kind == NodeKind::TableLoad)
            panic_if(n.imm >= tables.size(),
                     "kernel %s node %zu bad table", name.c_str(), i);
        if (n.kind == NodeKind::InWord)
            panic_if(n.imm >= inWords,
                     "kernel %s node %zu reads input word %" PRIu64 " of %u",
                     name.c_str(), i, n.imm, inWords);
        if (n.kind == NodeKind::WordOf) {
            const Node &w = nodes[n.src[0]];
            panic_if(w.kind != NodeKind::InWide &&
                         w.kind != NodeKind::ScratchWide,
                     "kernel %s node %zu: WordOf of a non-wide node",
                     name.c_str(), i);
            panic_if(n.imm >= KernelBuilder::wideCount(w.imm),
                     "kernel %s node %zu: WordOf index out of range",
                     name.c_str(), i);
        }
        if (n.kind == NodeKind::OutWord)
            panic_if(n.imm >= outWords,
                     "kernel %s node %zu writes output word %" PRIu64 " of %u",
                     name.c_str(), i, n.imm, outWords);
        if (n.loop != topLevel)
            panic_if(n.loop >= loops.size(),
                     "kernel %s node %zu in unknown loop", name.c_str(), i);
    }
    for (const auto &c : carries) {
        panic_if(c.next == noValue,
                 "kernel %s has a carry without setCarryNext", name.c_str());
        panic_if(c.init == noValue, "kernel %s carry without init",
                 name.c_str());
    }
    for (const auto &t : tables)
        panic_if(!isPowerOf2(t.data.size()),
                 "kernel %s table %s size %zu not a power of two",
                 name.c_str(), t.name.c_str(), t.data.size());
}

KernelBuilder::KernelBuilder(std::string name, Domain domain)
{
    k.name = std::move(name);
    k.domain = domain;
}

void
KernelBuilder::setRecord(unsigned inWords, unsigned outWords,
                         unsigned scratchWords)
{
    k.inWords = inWords;
    k.outWords = outWords;
    k.scratchWords = scratchWords;
}

Value
KernelBuilder::addNode(Node n)
{
    panic_if(built, "kernel %s already built", k.name.c_str());
    n.loop = curLoop();
    k.nodes.push_back(n);
    return Value(static_cast<ValueId>(k.nodes.size() - 1));
}

Value
KernelBuilder::constant(const std::string &name, Word v)
{
    k.constants.push_back({name, v});
    Node n;
    n.kind = NodeKind::Const;
    n.imm = k.constants.size() - 1;
    return addNode(n);
}

Value
KernelBuilder::constantF(const std::string &name, double v)
{
    return constant(name, isa::fpToWord(v));
}

Value
KernelBuilder::imm(Word v)
{
    Node n;
    n.kind = NodeKind::Compute;
    n.op = isa::Op::Movi;
    n.imm = v;
    return addNode(n);
}

Value
KernelBuilder::immF(double v)
{
    return imm(isa::fpToWord(v));
}

Value
KernelBuilder::recIdx()
{
    Node n;
    n.kind = NodeKind::RecIdx;
    return addNode(n);
}

Value
KernelBuilder::inWord(unsigned i)
{
    Node n;
    n.kind = NodeKind::InWord;
    n.imm = i;
    return addNode(n);
}

Value
KernelBuilder::inWordAt(Value offset)
{
    Node n;
    n.kind = NodeKind::InWordAt;
    n.src[0] = offset;
    return addNode(n);
}

Value
KernelBuilder::inWide(Value start, unsigned count, unsigned stride)
{
    panic_if(count == 0 || count > 64, "wide load of %u words", count);
    panic_if(stride == 0, "wide load with zero stride");
    Node n;
    n.kind = NodeKind::InWide;
    n.src[0] = start;
    n.imm = packWide(count, stride);
    return addNode(n);
}

Value
KernelBuilder::scratchWide(Value start, unsigned count, unsigned stride)
{
    panic_if(count == 0 || count > 64, "wide load of %u words", count);
    panic_if(stride == 0, "wide load with zero stride");
    Node n;
    n.kind = NodeKind::ScratchWide;
    n.src[0] = start;
    n.imm = packWide(count, stride);
    return addNode(n);
}

Value
KernelBuilder::wordOf(Value wide, unsigned i)
{
    Node n;
    n.kind = NodeKind::WordOf;
    n.src[0] = wide;
    n.imm = i;
    return addNode(n);
}

Value
KernelBuilder::op(isa::Op o, Value a)
{
    panic_if(isa::opInfo(o).numSrcs != 1, "op %s is not unary",
             isa::opName(o));
    Node n;
    n.op = o;
    n.src[0] = a;
    return addNode(n);
}

Value
KernelBuilder::op(isa::Op o, Value a, Value b)
{
    panic_if(isa::opInfo(o).numSrcs != 2, "op %s is not binary",
             isa::opName(o));
    Node n;
    n.op = o;
    n.src[0] = a;
    n.src[1] = b;
    return addNode(n);
}

Value
KernelBuilder::opImm(isa::Op o, Value a, Word immVal)
{
    panic_if(isa::opInfo(o).numSrcs != 2, "opImm %s is not binary",
             isa::opName(o));
    Node n;
    n.op = o;
    n.src[0] = a;
    n.imm = immVal;
    n.immB = true;
    return addNode(n);
}

Value
KernelBuilder::sel(Value cond, Value ifTrue, Value ifFalse)
{
    Node n;
    n.op = isa::Op::Sel;
    n.src[0] = ifTrue;
    n.src[1] = ifFalse;
    n.src[2] = cond;
    return addNode(n);
}

void
KernelBuilder::outWord(unsigned i, Value v)
{
    Node n;
    n.kind = NodeKind::OutWord;
    n.imm = i;
    n.src[0] = v;
    addNode(n);
}

void
KernelBuilder::outWordAt(Value offset, Value v)
{
    Node n;
    n.kind = NodeKind::OutWordAt;
    n.src[0] = offset;
    n.src[1] = v;
    addNode(n);
}

Value
KernelBuilder::scratchLoad(Value offset)
{
    Node n;
    n.kind = NodeKind::ScratchLoad;
    n.src[0] = offset;
    return addNode(n);
}

void
KernelBuilder::scratchStore(Value offset, Value v)
{
    Node n;
    n.kind = NodeKind::ScratchStore;
    n.src[0] = offset;
    n.src[1] = v;
    addNode(n);
}

Value
KernelBuilder::cachedLoad(Value byteAddr)
{
    Node n;
    n.kind = NodeKind::CachedLoad;
    n.src[0] = byteAddr;
    return addNode(n);
}

void
KernelBuilder::cachedStore(Value byteAddr, Value v)
{
    Node n;
    n.kind = NodeKind::CachedStore;
    n.src[0] = byteAddr;
    n.src[1] = v;
    addNode(n);
}

uint16_t
KernelBuilder::addTable(const std::string &name, std::vector<Word> data)
{
    panic_if(data.empty(), "empty table %s", name.c_str());
    size_t size = 1;
    while (size < data.size())
        size <<= 1;
    data.resize(size, 0);
    k.tables.push_back({name, std::move(data)});
    return static_cast<uint16_t>(k.tables.size() - 1);
}

Value
KernelBuilder::tableLoad(uint16_t table, Value index)
{
    panic_if(table >= k.tables.size(), "tableLoad of unknown table %u",
             table);
    Node n;
    n.kind = NodeKind::TableLoad;
    n.imm = table;
    n.src[0] = index;
    return addNode(n);
}

LoopId
KernelBuilder::beginLoop(uint32_t trip)
{
    panic_if(trip == 0, "static loop with zero trip count");
    LoopInfo l;
    l.parent = curLoop();
    l.staticTrip = trip;
    l.maxTrip = trip;
    k.loops.push_back(l);
    LoopId id = static_cast<LoopId>(k.loops.size() - 1);
    loopStack.push_back(id);
    return id;
}

LoopId
KernelBuilder::beginLoopVar(Value trip, uint32_t maxTrip)
{
    panic_if(maxTrip == 0, "variable loop needs a static bound");
    LoopInfo l;
    l.parent = curLoop();
    l.staticTrip = 0;
    l.tripValue = trip;
    l.maxTrip = maxTrip;
    k.loops.push_back(l);
    LoopId id = static_cast<LoopId>(k.loops.size() - 1);
    loopStack.push_back(id);
    return id;
}

Value
KernelBuilder::loopIdx()
{
    panic_if(loopStack.empty(), "loopIdx outside any loop");
    Node n;
    n.kind = NodeKind::LoopIdx;
    n.imm = loopStack.back();
    return addNode(n);
}

Value
KernelBuilder::carry(Value init)
{
    panic_if(loopStack.empty(), "carry outside any loop");
    CarryDef c;
    c.init = init;
    c.loop = loopStack.back();
    Node n;
    n.kind = NodeKind::Carry;
    n.imm = k.carries.size();
    Value v = addNode(n);
    c.node = v;
    k.carries.push_back(c);
    k.loops[loopStack.back()].carries.push_back(
        static_cast<uint32_t>(k.carries.size() - 1));
    return v;
}

void
KernelBuilder::setCarryNext(Value carryVal, Value next)
{
    const Node &n = k.nodes[carryVal];
    panic_if(n.kind != NodeKind::Carry, "setCarryNext on a non-carry");
    k.carries[static_cast<size_t>(n.imm)].next = next;
}

void
KernelBuilder::endLoop()
{
    panic_if(loopStack.empty(), "endLoop without beginLoop");
    loopStack.pop_back();
}

Value
KernelBuilder::exitValue(Value carryVal)
{
    const Node &n = k.nodes[carryVal];
    panic_if(n.kind != NodeKind::Carry, "exitValue of a non-carry");
    LoopId carryLoop = k.carries[static_cast<size_t>(n.imm)].loop;
    panic_if(!loopStack.empty() && loopStack.back() == carryLoop,
             "exitValue taken inside the carry's own loop");
    Node e;
    e.kind = NodeKind::LoopExit;
    e.imm = carryLoop;
    e.src[0] = carryVal;
    return addNode(e);
}

Value
KernelBuilder::markOverhead(Value v)
{
    k.nodes[v].overhead = true;
    return v;
}

Kernel
KernelBuilder::build()
{
    panic_if(!loopStack.empty(), "kernel %s has an unclosed loop",
             k.name.c_str());
    built = true;
    k.validate();
    return std::move(k);
}

} // namespace dlp::kernels
