/**
 * @file
 * Machine-readable experiment output: serialize stat-group snapshots,
 * individual experiment results and the full experiment grid as JSON
 * documents with deterministic key ordering, so the benches' numbers
 * (Figure 5, Table 4) can be consumed by plotting and regression
 * tooling without scraping the text tables.
 *
 * Document shapes:
 *
 *   GroupSnapshot  -> { "name", "scalars": {..}, "formulas": {..},
 *                       "distributions": { n: { samples, mean, stdev,
 *                       min, max, low, high, underflow, overflow,
 *                       buckets: [..] } }, "vectors": { n: [..] } }
 *   ExperimentResult -> { kernel, config, verified, cycles, usefulOps,
 *                       instsExecuted, records, activations, mappings,
 *                       opsPerCycle,
 *                       host: { events, eventsPerSec, seconds },
 *                       statGroups: [..] }
 *
 * The "host" object is simulator (wall-clock) performance, not
 * simulated state; bit-identical regression diffs strip it.
 *   Grid           -> { "experiments": [ result.. ] } plus metadata
 */

#ifndef DLP_ANALYSIS_EXPORT_HH
#define DLP_ANALYSIS_EXPORT_HH

#include <string>
#include <vector>

#include "analysis/experiments.hh"
#include "analysis/json.hh"
#include "arch/multicore.hh"
#include "arch/processor.hh"
#include "common/stats.hh"

namespace dlp::analysis {

/** One stat-group snapshot as a JSON object. */
json::Value toJson(const GroupSnapshot &group);

/** One experiment result, including its stat-group snapshots. */
json::Value toJson(const arch::ExperimentResult &result);

/**
 * One multi-core service run: configuration echo, conservation totals,
 * throughput, latency percentiles + histogram, per-core and per-profile
 * tables, per-request records, shared-memory contention groups, and —
 * under the same shape-stability contract as experiment documents —
 * optional "audit" and "timeseries" objects.
 */
json::Value toJson(const arch::ServiceResult &result);

/**
 * A flat list of results (Table 4 style) as a complete document:
 * { "generator", "paper", "experiments": [..] }.
 */
json::Value toJson(const std::vector<arch::ExperimentResult> &results);

/** The full grid (Figure 5 style), one entry per kernel x config. */
json::Value toJson(const Grid &grid);

/** Serialize and write a document; fatal on I/O failure. */
void writeJsonFile(const std::string &path, const json::Value &doc);

} // namespace dlp::analysis

#endif // DLP_ANALYSIS_EXPORT_HH
