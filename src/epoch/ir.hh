/**
 * @file
 * The epoch IR: what one canonical steady-state iteration looks like to
 * the fast-forwarder.
 *
 * The repeating quantum is a *unit*: one activation when the plan is
 * resident (a single block revitalizing in place), or one full group —
 * every segment mapped and all its activations run — when the plan
 * cycles through several blocks. The block engine captures three
 * structure-state snapshots (before, between and after two
 * consecutively recorded units) plus the two units' fire traces and
 * occupancy envelopes. The pass pipeline (passes.hh) diffs the
 * snapshots into per-unit deltas, validates that both recorded units
 * are indistinguishable to every piece of downstream state, and lowers
 * the result into an EpochPlan — the closed form the engine replays N
 * more units from: per-stat increments, per-resource grant/wait credits
 * and calendar shifts, raw structure counters, and the functional fire
 * schedule.
 *
 * Everything here is value-semantic plain data: the IR references no
 * live simulation structures, so a plan outlives the recording moment
 * and the passes can run without touching the engine.
 */

#ifndef DLP_EPOCH_IR_HH
#define DLP_EPOCH_IR_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dlp::isa {
struct MappedBlock;
} // namespace dlp::isa

namespace dlp::epoch {

/** One instruction fire: which instruction, how long after seeding. */
struct FireRecord
{
    uint32_t idx;    ///< instruction index within the mapped block
    Tick offset;     ///< issue tick relative to the activation start

    bool operator==(const FireRecord &o) const
    {
        return idx == o.idx && offset == o.offset;
    }
};

/** A tracked resource's cumulative counters at a snapshot point. */
struct ResourceState
{
    uint64_t grants = 0;
    Tick wait = 0;
};

/**
 * A resource calendar's still-relevant suffix, relative to an
 * iteration's start tick (signed: intervals may begin before it).
 */
struct ResourceTail
{
    std::vector<std::pair<int64_t, int64_t>> busy;
    int64_t lastEnd = 0; ///< nextFree() relative to the iteration start

    bool operator==(const ResourceTail &o) const
    {
        return busy == o.busy && lastEnd == o.lastEnd;
    }
};

/** Raw (pre-preDump) copy of one StatGroup's counters. */
struct GroupRaw
{
    std::string name;
    std::map<std::string, double> scalars;
    std::map<std::string, Distribution> dists;
    std::map<std::string, VectorStat> vectors;
};

/**
 * Everything downstream of an iteration boundary that could influence
 * future timing or results, captured between activations (event queue
 * drained).
 */
struct Snapshot
{
    std::vector<ResourceState> res; ///< parallel to the engine's tracked set
    std::vector<GroupRaw> groups;   ///< engine, mesh, smc, memory-system

    uint64_t eqScheduled = 0;
    uint64_t eqExecuted = 0;
    uint64_t eqDiscarded = 0;

    uint64_t smcReads = 0;
    uint64_t smcWrites = 0;
    uint64_t smcWords = 0;
    Tick smcLast = 0;

    uint64_t meshRouted = 0;
    uint64_t meshHops = 0;
    Tick meshContention = 0;
    Tick meshLast = 0;

    uint64_t l1Hits = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;
    uint64_t mainMemAccesses = 0;

    uint64_t instsExecuted = 0;
    uint64_t usefulOps = 0;
    uint64_t activations = 0; ///< RunStats activations so far
    uint64_t mappings = 0;    ///< RunStats mappings so far

    uint64_t sigLast = 0;   ///< last activation signature digest
    uint64_t sigStreak = 0; ///< consecutive-identical-signature streak
};

/**
 * One recorded unit: schedule, envelope, calendar tails, and the
 * per-activation substructure the replay needs to stay bit-identical
 * (each activation's fire count, its issue-width sample, and whether it
 * began with a fresh mapping that resets instruction state).
 */
struct RecordedIteration
{
    Tick start = 0;         ///< unit start tick
    Tick drainLen = 0;      ///< end-of-unit last event tick, rel. start
    Tick issueLen = 0;      ///< end-of-unit last issue tick, rel. start
    Tick writeLen = 0;      ///< end-of-unit last reg write, rel. start
    Tick unitDrainLen = 0;  ///< drain watermark after the unit, rel. start
    uint64_t fired = 0;     ///< instructions fired across the unit
    std::vector<FireRecord> fires;    ///< in execution order, whole unit
    std::vector<uint64_t> fireCounts; ///< fires per activation, in order
    std::vector<double> issueSamples; ///< issueWidth sample per activation
    std::vector<uint8_t> fresh;       ///< fresh-mapping flag per activation
    std::vector<ResourceTail> tails;  ///< captured at unit end
};

/** The pass pipeline's input: two recorded units in context. */
struct EpochInput
{
    /** Every distinct block the unit activates (one for a resident
     *  plan, one per segment otherwise). */
    std::vector<const isa::MappedBlock *> blocks;
    bool smcMechanism = false;   ///< SMC streaming configured
    bool l0DataStore = false;    ///< L0 data tables configured
    bool instRevitalize = false; ///< instruction revitalization configured
    uint64_t iterations = 0;     ///< replay length K the plan must cover

    Snapshot s0, s1, s2;
    RecordedIteration r1, r2;
    Tick period = 0;  ///< start(r2) - start(r1)
    Tick period2 = 0; ///< next start after r2 - start(r2); must equal period
};

/** Per-iteration delta of one Distribution's accumulators. */
struct DistDelta
{
    std::vector<uint64_t> counts;
    uint64_t under = 0;
    uint64_t over = 0;
    uint64_t samples = 0;
    double sum = 0.0;
    double sumSq = 0.0;
};

/** Planned bulk advances for one StatGroup (nonzero deltas only). */
struct GroupAdvance
{
    std::vector<std::pair<std::string, double>> scalars;
    std::vector<std::pair<std::string, DistDelta>> dists;
    std::vector<std::pair<std::string, std::vector<double>>> vectors;
};

/** How one tracked resource behaves across a steady iteration. */
enum class ResClass : uint8_t
{
    Static, ///< untouched: calendar and counters stay put
    Shift   ///< periodic: counters credit per iteration, calendar shifts
};

struct ResAdvance
{
    ResClass cls = ResClass::Static;
    uint64_t grants = 0; ///< per-iteration grant credit
    Tick wait = 0;       ///< per-iteration wait credit
};

/** The closed form the engine replays fast-forwarded units from. */
struct EpochPlan
{
    Tick period = 0;

    // Occupancy envelope of the steady unit, relative to its start.
    Tick drainLen = 0;
    Tick issueLen = 0;
    Tick writeLen = 0;
    Tick unitDrainLen = 0;
    uint64_t fired = 0;

    /// The canonical fire schedule, replayed functionally in order,
    /// partitioned into activations by fireCounts (register writes
    /// commit at each activation boundary, exactly as simulated).
    std::vector<FireRecord> fires;
    std::vector<uint64_t> fireCounts;
    std::vector<double> issueSamples; ///< exact per-activation samples
    std::vector<uint8_t> fresh;       ///< per-activation state reset

    std::vector<GroupAdvance> groups; ///< parallel to Snapshot::groups
    std::vector<ResAdvance> res;      ///< parallel to Snapshot::res

    uint64_t eqScheduled = 0; ///< events the queue would have scheduled
    uint64_t eqExecuted = 0;  ///< events the queue would have executed

    uint64_t smcReads = 0;
    uint64_t smcWrites = 0;
    uint64_t smcWords = 0;
    bool smcLastAdvances = false; ///< watermark moves by period/iteration

    uint64_t meshRouted = 0;
    uint64_t meshHops = 0;
    Tick meshContention = 0;
    bool meshLastAdvances = false;

    uint64_t instsExecuted = 0; ///< RunStats delta per unit
    uint64_t usefulOps = 0;
    uint64_t activations = 0; ///< RunStats activations per unit
    uint64_t mappings = 0;    ///< RunStats mappings per unit

    /**
     * How the engine's signature streak evolves per unit. Additive when
     * both recorded units advanced it by the same signed amount (the
     * resident steady state: +1 per activation); otherwise the streak
     * resets somewhere inside every unit and lands on the same absolute
     * value, which replay restores directly.
     */
    bool sigStreakAdditive = false;
    int64_t sigStreakDelta = 0;
    uint64_t sigStreakEnd = 0;
    uint64_t sigLast = 0; ///< digest after every unit (validated stable)
};

} // namespace dlp::epoch

#endif // DLP_EPOCH_IR_HH
