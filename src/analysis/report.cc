#include "analysis/report.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace dlp::analysis {

void
TextTable::print(std::ostream &os) const
{
    size_t cols = head.size();
    for (const auto &r : rows)
        cols = std::max(cols, r.size());
    std::vector<size_t> widths(cols, 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    };
    widen(head);
    for (const auto &r : rows)
        widen(r);

    auto printRow = [&](const std::vector<std::string> &r) {
        for (size_t c = 0; c < r.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << r[c];
        }
        os << "\n";
    };
    if (!head.empty()) {
        printRow(head);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows)
        printRow(r);
}

std::string
fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

double
harmonicMean(const std::vector<double> &values)
{
    panic_if(values.empty(), "harmonic mean of nothing");
    double denom = 0.0;
    for (double v : values) {
        panic_if(v <= 0.0, "harmonic mean needs positive values");
        denom += 1.0 / v;
    }
    return double(values.size()) / denom;
}

} // namespace dlp::analysis
