#include "ref/fft.hh"

#include <cmath>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dlp::ref {

void
fftButterfly(double ar, double ai, double br, double bi, double wr,
             double wi, double out[4])
{
    // w*b with 4 multiplies and 2 adds, then 4 adds/subs.
    double tr = wr * br - wi * bi;
    double ti = wr * bi + wi * br;
    out[0] = ar + tr;
    out[1] = ai + ti;
    out[2] = ar - tr;
    out[3] = ai - ti;
}

void
bitReverse(std::vector<Complex> &data)
{
    size_t n = data.size();
    panic_if(!isPowerOf2(n), "FFT size %zu not a power of two", n);
    unsigned bits = floorLog2(n);
    for (size_t i = 0; i < n; ++i) {
        size_t r = 0;
        for (unsigned b = 0; b < bits; ++b)
            if (i & (size_t(1) << b))
                r |= size_t(1) << (bits - 1 - b);
        if (r > i)
            std::swap(data[i], data[r]);
    }
}

void
fft(std::vector<Complex> &data)
{
    size_t n = data.size();
    panic_if(!isPowerOf2(n), "FFT size %zu not a power of two", n);
    bitReverse(data);

    for (size_t len = 2; len <= n; len <<= 1) {
        size_t half = len / 2;
        for (size_t base = 0; base < n; base += len) {
            for (size_t j = 0; j < half; ++j) {
                double ang = -2.0 * M_PI * double(j) / double(len);
                Complex w(std::cos(ang), std::sin(ang));
                Complex a = data[base + j];
                Complex b = data[base + j + half];
                double out[4];
                fftButterfly(a.real(), a.imag(), b.real(), b.imag(),
                             w.real(), w.imag(), out);
                data[base + j] = Complex(out[0], out[1]);
                data[base + j + half] = Complex(out[2], out[3]);
            }
        }
    }
}

std::vector<Complex>
dftNaive(const std::vector<Complex> &data)
{
    size_t n = data.size();
    std::vector<Complex> out(n);
    for (size_t k = 0; k < n; ++k) {
        Complex acc(0, 0);
        for (size_t j = 0; j < n; ++j) {
            double ang = -2.0 * M_PI * double(k) * double(j) / double(n);
            acc += data[j] * Complex(std::cos(ang), std::sin(ang));
        }
        out[k] = acc;
    }
    return out;
}

} // namespace dlp::ref
