/**
 * @file
 * The MIMD execution engine: each ALU tile independently runs the
 * kernel's sequential program from its L0 instruction store with a local
 * program counter (Section 4.3, Figure 4c).
 *
 * Tiles are simple in-order fetch / register-read / execute pipelines:
 * one instruction per cycle, register scoreboarding for long-latency
 * results, and a small window of outstanding loads. Every load and store
 * is routed individually through the mesh to the row's edge port -- the
 * routing traffic that makes the plain M configuration lose to the
 * SIMD-style configurations on regular kernels (Section 5.3) -- while
 * table lookups hit the tile-local L0 data store when that mechanism is
 * enabled.
 */

#ifndef DLP_CORE_MIMD_ENGINE_HH
#define DLP_CORE_MIMD_ENGINE_HH

#include <deque>
#include <vector>

#include "core/block_engine.hh" // RunStats
#include "core/machine.hh"
#include "kernels/ir.hh"
#include "mem/memory_system.hh"
#include "noc/mesh.hh"
#include "obs/sampler.hh"
#include "obs/timeline.hh"
#include "sched/plan.hh"

namespace dlp::core {

class MimdEngine
{
  public:
    MimdEngine(const MachineParams &params, mem::MemorySystem &memory);

    void setTables(const std::vector<kernels::Table> *tables);

    /**
     * Run the per-tile program over numRecords records. Tile t starts at
     * record t and strides by the tile count. Continues from the current
     * simulated time.
     */
    RunStats run(const sched::MimdPlan &plan, uint64_t numRecords);

    Tick now() const { return curTick; }

    /** Advance simulated time (inter-chunk DMA staging). */
    void advanceTo(Tick t) { curTick = std::max(curTick, t); }

    /**
     * The engine statistics group ("core.mimd"): per-tile issue-width
     * and operand/scoreboard-wait distributions.
     */
    StatGroup &statsGroup() { return engStats; }

    /** The operand network (per-link statistics live on it). */
    noc::MeshNetwork &network() { return mesh; }

    /**
     * Host-side count of simulation-kernel events across all runs. The
     * MIMD engine is a static-scheduled stepper rather than a
     * discrete-event client, so its unit of kernel work -- one tile
     * instruction step -- is what gets counted.
     */
    uint64_t hostEvents() const { return hostSteps; }

    /**
     * Attach (or detach, with nullptr) a periodic stat sampler, polled
     * as tiles step forward in global simulated-time order. The sampler
     * must outlive the run.
     */
    void setSampler(obs::StatSampler *s) { sampler = s; }

  private:
    const char *dlpTraceName() const { return "mimd"; }
    /** Per-tile architectural and pipeline state. */
    struct TileState
    {
        noc::Coord here{0, 0};
        std::vector<Word> regs;
        std::vector<Tick> ready;
        std::deque<Tick> outstanding;
        Tick cursor = 0;
        Tick lastEffect = 0;
        uint64_t pc = 0;
        uint64_t executed = 0;
    };

    /** Dependency-stall-resolved issue time of the tile's next inst. */
    Tick issueTime(const sched::MimdPlan &plan, const TileState &ts) const;

    /** Execute one instruction on a tile. */
    void step(const sched::MimdPlan &plan, TileState &ts, RunStats &stats);

    const MachineParams m;
    mem::MemorySystem &mem;
    noc::MeshNetwork mesh;

    const std::vector<kernels::Table> *tables = nullptr;
    std::vector<Addr> tableByteBase;
    std::vector<sim::Resource> l0Ports;

    StatGroup engStats{"core.mimd"};
    Distribution *operandWait = nullptr; ///< scoreboard stall per inst
    Distribution *issueWidth = nullptr;  ///< insts/cycle per tile per run

    Tick curTick = 0;
    uint64_t hostSteps = 0; ///< instruction steps executed (host metric)
    obs::StatSampler *sampler = nullptr;

    static constexpr Addr tableRegionBase = Addr(1) << 41;
    static constexpr uint64_t instLimit = 400'000'000;
};

} // namespace dlp::core

#endif // DLP_CORE_MIMD_ENGINE_HH
