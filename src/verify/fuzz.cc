#include "verify/fuzz.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "check/verify.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "epoch/epoch.hh"
#include "kernels/interp.hh"
#include "kernels/workload.hh"
#include "sched/linearize.hh"
#include "sched/simd_lowering.hh"
#include "store/codec.hh"
#include "verify/audit.hh"
#include "verify/cost_invariants.hh"

namespace dlp::verify {

namespace {

using kernels::Kernel;
using kernels::KernelBuilder;
using kernels::Value;
using isa::Op;

/// Irregular image shape shared by the generator, the oracle and the
/// machine: cachedWords words at the graphics texture base address.
constexpr Addr cachedBase = 0x10000000ull;
constexpr unsigned cachedWords = 64;

/** Integer ops that are total and identical across all executors. */
constexpr Op binaryOps[] = {
    Op::Add,  Op::Sub,  Op::Mul,  Op::And,  Op::Or,    Op::Xor,
    Op::Eq,   Op::Ne,   Op::Lt,   Op::Le,   Op::Ltu,   Op::Leu,
    Op::Add32, Op::Sub32, Op::Mul32, Op::Rotl32, Op::Rotr32,
};

constexpr Op shiftOps[] = {Op::Shl, Op::Shr, Op::Sar, Op::Shl32, Op::Shr32};

/**
 * The generator state: a scoped pool of live values. Values defined
 * inside a loop leave the pool at endLoop (only exitValue() may carry
 * them out), mirroring the IR's scoping rules.
 */
struct Gen
{
    KernelBuilder &b;
    Rng &rng;
    std::vector<Value> pool;

    Value pick() { return pool[rng.below(pool.size())]; }
    void push(Value v) { pool.push_back(v); }

    /** One random pure compute node over the live pool. */
    Value
    computeNode()
    {
        switch (rng.below(5)) {
          case 0:
            return b.op(binaryOps[rng.below(std::size(binaryOps))],
                        pick(), pick());
          case 1:
            // Immediate-operand shift; amount 1..63 (0 is a Mov).
            return b.opImm(shiftOps[rng.below(std::size(shiftOps))],
                           pick(), 1 + rng.below(63));
          case 2: {
            constexpr Op immOps[] = {Op::And, Op::Or, Op::Xor, Op::Add};
            return b.opImm(immOps[rng.below(std::size(immOps))], pick(),
                           rng.next());
          }
          case 3:
            return b.op(rng.below(2) ? Op::Not : Op::Not32, pick());
          default: {
            Value cond = b.op(Op::Ltu, pick(), pick());
            return b.sel(cond, pick(), pick());
          }
        }
    }
};

} // namespace

kernels::Kernel
buildFuzzKernel(const FuzzOptions &opts)
{
    // Decouple the program stream from the dataset stream (which uses
    // the raw seed) so shrinking knobs never reshapes the input data.
    Rng rng(opts.seed ^ 0x5eedf0ccull);
    KernelBuilder b("fuzz_" + std::to_string(opts.seed),
                    kernels::Domain::Multimedia);

    const unsigned inWords = 2 + unsigned(rng.below(7));   // 2..8
    const unsigned outWords = 1 + unsigned(rng.below(4));  // 1..4
    const bool useScratch = opts.scratch && rng.below(2) == 0;
    const unsigned scratchWords = useScratch ? 4 : 0;
    b.setRecord(inWords, outWords, scratchWords);

    Gen g{b, rng, {}};
    g.push(b.recIdx());
    for (unsigned i = 0; i < inWords; ++i)
        g.push(b.inWord(i));
    g.push(b.constant("c0", rng.next()));
    g.push(b.imm(rng.next()));

    // Optional lookup table (indices are masked by every executor).
    bool haveTable = false;
    uint16_t table = 0;
    if (opts.tables && rng.below(2) == 0) {
        std::vector<Word> data(16);
        for (auto &w : data)
            w = rng.next();
        table = b.addTable("t0", std::move(data));
        haveTable = true;
    }

    const bool haveCached = opts.cachedLoads && rng.below(2) == 0;
    if (haveCached)
        b.setIrregularBytes(Addr(cachedWords) * wordBytes);

    // Optional wide (LMW) fetch of a statically bounded input window.
    if (opts.wideLoads && rng.below(2) == 0 && inWords >= 2) {
        unsigned count = 2 + unsigned(rng.below(std::min(3u, inWords - 1)));
        unsigned start = unsigned(rng.below(inWords - count + 1));
        Value wide = b.inWide(b.imm(start), count, 1);
        for (unsigned i = 0; i < count; ++i)
            g.push(b.wordOf(wide, i));
    }

    // Scratch staging in the dct idiom: one loop stores the scratch
    // region, a second reloads and reduces it. Cross-loop ordering is
    // exactly what both lowerings must get right.
    if (useScratch) {
        Value seedVal = g.pick();
        b.beginLoop(scratchWords);
        {
            Value i = b.loopIdx();
            Value v = b.op(Op::Xor, seedVal, i);
            b.scratchStore(i, b.opImm(Op::Add, v, 0x9e3779b9ull));
        }
        b.endLoop();
        Value init = b.imm(0);
        b.beginLoop(scratchWords);
        Value acc = b.carry(init);
        {
            Value ld = b.scratchLoad(b.loopIdx());
            b.setCarryNext(acc, b.op(Op::Add, acc, ld));
        }
        b.endLoop();
        g.push(b.exitValue(acc));
    }

    // Random reduction loops, static or data-dependent trip count.
    for (unsigned l = 0; l < opts.loops; ++l) {
        if (rng.below(2) == 0)
            continue;
        Value init = g.pick();
        const bool variable = rng.below(3) == 0;
        if (variable) {
            // Trip in 1..4, derived from live data, bounded by maxTrip.
            Value trip =
                b.opImm(Op::Add, b.opImm(Op::And, g.pick(), 3), 1);
            b.beginLoopVar(trip, 4);
        } else {
            b.beginLoop(2 + uint32_t(rng.below(3)));
        }
        size_t outer = g.pool.size();
        Value carry = b.carry(init);
        g.push(carry);
        g.push(b.loopIdx());
        unsigned bodyOps = 2 + unsigned(rng.below(3));
        Value last = carry;
        for (unsigned j = 0; j < bodyOps; ++j) {
            last = g.computeNode();
            g.push(last);
        }
        b.setCarryNext(carry, last);
        b.endLoop();
        g.pool.resize(outer);
        g.push(b.exitValue(carry));
    }

    // The main mixing phase: a budget of random nodes, occasionally a
    // table or irregular load keyed by live data.
    for (unsigned n = 0; n < opts.nodeBudget; ++n) {
        unsigned roll = unsigned(rng.below(8));
        if (roll == 6 && haveTable) {
            g.push(b.tableLoad(table, g.pick()));
        } else if (roll == 7 && haveCached) {
            // Word-aligned address inside the irregular image.
            Value idx = b.opImm(Op::And, g.pick(), cachedWords - 1);
            Value off = b.markOverhead(b.opImm(Op::Shl, idx, 3));
            Value addr =
                b.markOverhead(b.opImm(Op::Add, off, cachedBase));
            g.push(b.cachedLoad(addr));
        } else {
            g.push(g.computeNode());
        }
    }

    for (unsigned i = 0; i < outWords; ++i)
        b.outWord(i, g.pick());

    return b.build();
}

namespace {

/** A fully materialized test case: program, dataset, oracle outputs. */
struct FuzzCase
{
    Kernel kern;
    std::vector<Word> input;
    std::vector<Word> expected;
    std::unordered_map<Addr, Word> image;
    uint64_t records = 0;
};

FuzzCase
buildCase(const FuzzOptions &opts)
{
    FuzzCase fc;
    fc.kern = buildFuzzKernel(opts);
    fc.records = std::max(1u, opts.records);

    Rng data(opts.seed * 0x9e3779b97f4a7c15ull + 1);
    fc.input.resize(fc.records * fc.kern.inWords);
    for (auto &w : fc.input)
        w = data.next();
    if (fc.kern.irregularBytes) {
        for (unsigned i = 0; i < cachedWords; ++i)
            fc.image[cachedBase + Addr(i) * wordBytes] = data.next();
    }

    kernels::IrregularMemory mem;
    mem.read = [&fc](Addr a) {
        auto it = fc.image.find(a);
        return it == fc.image.end() ? Word(0) : it->second;
    };
    mem.write = [&fc](Addr a, Word w) { fc.image[a] = w; };
    kernels::interpretBatch(fc.kern, fc.input, fc.expected, fc.records,
                            mem);
    return fc;
}

/** Single-batch workload whose golden outputs came from the oracle. */
class FuzzWorkload : public kernels::Workload
{
  public:
    explicit FuzzWorkload(const FuzzCase &c)
        : Workload(c.kern), input(c.input), expected(c.expected),
          records(c.records)
    {
        for (const auto &kv : c.image)
            installIrregularWord(kv.first, kv.second);
    }

    bool
    nextBatch(std::vector<Word> &in, uint64_t &numRecords) override
    {
        if (consumed)
            return false;
        in = input;
        numRecords = records;
        consumed = true;
        return true;
    }

    void
    consumeOutput(const std::vector<Word> &output) override
    {
        got = output;
    }

    bool
    verify(std::string &err) const override
    {
        if (got.size() < expected.size()) {
            std::ostringstream os;
            os << "short output: " << got.size() << " of "
               << expected.size() << " words";
            err = os.str();
            return false;
        }
        for (size_t i = 0; i < expected.size(); ++i) {
            if (got[i] != expected[i]) {
                std::ostringstream os;
                os << "record " << i / kern.outWords << " word "
                   << i % kern.outWords << ": got 0x" << std::hex
                   << got[i] << ", oracle says 0x" << expected[i];
                err = os.str();
                return false;
            }
        }
        return true;
    }

    uint64_t totalRecords() const override { return records; }

  private:
    std::vector<Word> input;
    std::vector<Word> expected;
    uint64_t records;
    std::vector<Word> got;
    bool consumed = false;
};

struct RunOutcome
{
    bool failed = false;
    std::string kind;
    std::string detail;
};

arch::ExperimentResult
runOnce(const FuzzCase &fc, const std::string &config)
{
    FuzzWorkload wl(fc);
    arch::TripsProcessor cpu(arch::configByName(config));
    return cpu.run(wl);
}

/**
 * Canonical serialization of a result with the host-side fields -- the
 * only ones allowed to differ between a fully simulated and a
 * fast-forwarded run -- scrubbed out.
 */
std::string
scrubbedJson(arch::ExperimentResult res)
{
    res.hostSeconds = 0.0;
    res.hostEvents = 0;
    res.ffEpochs = 0;
    res.ffIterations = 0;
    res.ffEventsSaved = 0;
    res.eventActivations = 0;
    return json::write(store::resultToJson(res));
}

std::string
firstJsonDiff(const std::string &a, const std::string &b)
{
    size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i])
        ++i;
    size_t from = i > 40 ? i - 40 : 0;
    std::ostringstream os;
    os << "fast-forwarded run diverges at byte " << i << ": ..."
       << a.substr(from, 80) << "... vs ..." << b.substr(from, 80)
       << "...";
    return os.str();
}

RunOutcome
runCase(const FuzzCase &fc, const std::string &config, bool audit,
        bool ffDiff, bool cost)
{
    try {
        arch::ExperimentResult res;
        if (ffDiff) {
            // Differential: the same case with the fast-forwarder off,
            // then on. Everything but the scrubbed host fields must be
            // bit-identical. The audit below runs on the ff-on result,
            // so its conservation laws see the interesting path.
            epoch::FastForwardGuard guard;
            epoch::setFastForwardEnabled(false);
            arch::ExperimentResult off = runOnce(fc, config);
            epoch::setFastForwardEnabled(true);
            res = runOnce(fc, config);
            std::string a = scrubbedJson(off);
            std::string b = scrubbedJson(res);
            if (a != b)
                return {true, "fastforward", firstJsonDiff(a, b)};
        } else {
            res = runOnce(fc, config);
        }
        if (!res.verified)
            return {true, "mismatch", res.error};
        if (audit) {
            auto violations = auditResult(res);
            if (!violations.empty()) {
                std::ostringstream os;
                os << violations.front().invariant << ": "
                   << violations.front().detail;
                if (violations.size() > 1)
                    os << " (+" << violations.size() - 1 << " more)";
                return {true, "audit", os.str()};
            }
        }
        if (cost) {
            uint64_t bound = costBoundTicks(res);
            uint64_t actual = cyclesToTicks(res.cycles);
            if (bound > actual) {
                std::ostringstream os;
                os << "cost-model lower bound " << bound << " ticks > "
                   << "simulated " << actual << " (" << res.activations
                   << " activations, " << res.mappings << " mappings)";
                return {true, "cost", os.str()};
            }
        }
        return {};
    } catch (const std::exception &e) {
        return {true, "exception", e.what()};
    }
}

/**
 * Run the static verifier over the plan (kern, config) would execute:
 * the same layout and lowering the processor uses.
 */
check::Report
staticReport(const Kernel &kern, const std::string &config)
{
    core::MachineParams m = arch::configByName(config);
    uint64_t chunkRecords = 0;
    sched::StreamLayout layout =
        arch::makeStreamLayout(kern, m, chunkRecords);
    check::MappedProgram prog;
    prog.kernel = &kern;
    sched::SimdPlan simd;
    sched::MimdPlan mimd;
    if (m.mech.localPC) {
        mimd = sched::lowerMimd(kern, m, layout);
        prog.mimd = &mimd;
    } else {
        simd = sched::lowerSimd(kern, m, layout);
        prog.simd = &simd;
    }
    return check::verify(prog, m);
}

/** First Error-severity rule of a report, or "". */
std::string
firstErrorRule(const check::Report &rep)
{
    for (const auto &d : rep.diags)
        if (d.severity == check::Severity::Error)
            return d.rule;
    return "";
}

/** Does (opts, config) still fail? Generator crashes count as failures. */
bool
stillFails(const FuzzOptions &opts, const std::string &config,
           uint64_t &runs)
{
    ++runs;
    try {
        FuzzCase fc = buildCase(opts);
        return runCase(fc, config, opts.audit, opts.ffDiff,
                       opts.cost).failed;
    } catch (const std::exception &) {
        return true;
    }
}

/**
 * Greedy shrink: repeatedly try the reductions below, keeping each one
 * that still reproduces a failure, until a full pass changes nothing.
 */
FuzzOptions
shrinkOptions(FuzzOptions opts, const std::string &config, uint64_t &runs)
{
    bool changed = true;
    while (changed) {
        changed = false;
        auto attempt = [&](FuzzOptions cand) {
            if (stillFails(cand, config, runs)) {
                opts = cand;
                changed = true;
            }
        };
        if (opts.records > 1) {
            FuzzOptions c = opts;
            c.records = std::max(1u, opts.records / 2);
            attempt(c);
        }
        if (opts.nodeBudget > 2) {
            FuzzOptions c = opts;
            c.nodeBudget = std::max(2u, opts.nodeBudget / 2);
            attempt(c);
        }
        if (opts.loops > 0) {
            FuzzOptions c = opts;
            c.loops = opts.loops - 1;
            attempt(c);
        }
        for (bool FuzzOptions::*knob :
             {&FuzzOptions::tables, &FuzzOptions::wideLoads,
              &FuzzOptions::cachedLoads, &FuzzOptions::scratch}) {
            if (opts.*knob) {
                FuzzOptions c = opts;
                c.*knob = false;
                attempt(c);
            }
        }
    }
    return opts;
}

} // namespace

std::string
describeKernel(const kernels::Kernel &k)
{
    static const char *kindNames[] = {
        "Compute",     "Const",      "RecIdx",      "LoopIdx",
        "InWord",      "InWordAt",   "InWide",      "ScratchWide",
        "WordOf",      "OutWord",    "OutWordAt",   "ScratchLoad",
        "ScratchStore","CachedLoad", "CachedStore", "TableLoad",
        "Carry",       "LoopExit",
    };
    std::ostringstream os;
    os << k.name << ": in=" << k.inWords << " out=" << k.outWords
       << " scratch=" << k.scratchWords << " nodes=" << k.nodes.size()
       << " loops=" << k.loops.size() << "\n";
    for (size_t i = 0; i < k.nodes.size(); ++i) {
        const auto &n = k.nodes[i];
        os << "  n" << i << ": "
           << kindNames[static_cast<size_t>(n.kind)];
        if (n.kind == kernels::NodeKind::Compute)
            os << " " << isa::opInfo(n.op).name;
        for (int s = 0; s < 3; ++s)
            if (n.src[s] != kernels::noValue)
                os << " n" << n.src[s];
        if (n.imm || n.immB ||
            n.kind != kernels::NodeKind::Compute)
            os << " imm=0x" << std::hex << n.imm << std::dec;
        if (n.immB)
            os << " (immB)";
        if (n.loop != kernels::topLevel)
            os << " loop=" << n.loop;
        if (n.overhead)
            os << " overhead";
        os << "\n";
    }
    for (size_t l = 0; l < k.loops.size(); ++l) {
        const auto &lp = k.loops[l];
        os << "  loop " << l << ": trip=" << lp.staticTrip;
        if (lp.tripValue != kernels::noValue)
            os << " tripValue=n" << lp.tripValue
               << " maxTrip=" << lp.maxTrip;
        if (lp.parent != kernels::topLevel)
            os << " parent=" << lp.parent;
        os << "\n";
    }
    for (const auto &c : k.carries)
        os << "  carry: node=n" << c.node << " init=n" << c.init
           << " next=n" << c.next << " loop=" << c.loop << "\n";
    return os.str();
}

std::string
replayCommand(const FuzzOptions &opts, const std::string &config)
{
    std::ostringstream os;
    os << "fuzz_ir --seed " << opts.seed << " --records " << opts.records
       << " --nodes " << opts.nodeBudget << " --loops " << opts.loops;
    if (!opts.tables)
        os << " --no-tables";
    if (!opts.wideLoads)
        os << " --no-wide";
    if (!opts.cachedLoads)
        os << " --no-cached";
    if (!opts.scratch)
        os << " --no-scratch";
    if (opts.staticCheck)
        os << " --static-check";
    if (opts.cost)
        os << " --cost";
    if (opts.ffDiff)
        os << " --fast-forward";
    os << " --configs " << config;
    return os.str();
}

FuzzReport
fuzzOne(const FuzzOptions &opts)
{
    FuzzOptions o = opts;
    if (o.configs.empty())
        o.configs = arch::allConfigNames();

    FuzzReport rep;
    FuzzCase fc;
    try {
        fc = buildCase(o);
    } catch (const std::exception &e) {
        // The generator or the oracle itself blew up: that is a finding
        // against the IR layer, attributed to no particular config.
        ++rep.runs;
        FuzzFailure f;
        f.seed = o.seed;
        f.config = "(generator)";
        f.kind = "exception";
        f.detail = e.what();
        f.shrunk = o;
        f.replay = replayCommand(o, o.configs.front());
        rep.failures.push_back(std::move(f));
        return rep;
    }

    for (const auto &config : o.configs) {
        ++rep.runs;
        RunOutcome out = runCase(fc, config, o.audit, o.ffDiff, o.cost);
        if (!out.failed) {
            // Dynamically clean: a static Error here is a verifier
            // false positive, which is itself a counterexample.
            if (o.staticCheck) {
                check::Report sr;
                try {
                    sr = staticReport(fc.kern, config);
                } catch (const std::exception &) {
                    continue; // the processor's lowering succeeded
                }
                if (sr.errors() > 0) {
                    FuzzFailure f;
                    f.seed = o.seed;
                    f.config = config;
                    f.kind = "static";
                    f.detail = "static verifier rejects a dynamically "
                               "clean program: " +
                               sr.describe();
                    f.shrunk = o;
                    f.replay = replayCommand(o, config);
                    f.staticallyCaught = true;
                    f.staticRule = firstErrorRule(sr);
                    rep.failures.push_back(std::move(f));
                }
            }
            continue;
        }
        FuzzFailure f;
        f.seed = o.seed;
        f.config = config;
        f.kind = out.kind;
        f.detail = out.detail;
        f.shrunk = shrinkOptions(o, config, rep.runs);
        f.replay = replayCommand(f.shrunk, config);
        if (o.staticCheck) {
            // The coverage assertion: a dynamically diverging program
            // must trip a static rule or be logged as a gap.
            try {
                std::string rule = firstErrorRule(
                    staticReport(fc.kern, config));
                f.staticallyCaught = !rule.empty();
                f.staticRule = rule;
            } catch (const std::exception &e) {
                f.staticallyCaught = true;
                f.staticRule = std::string("(lowering: ") + e.what() +
                               ")";
            }
            if (f.staticallyCaught)
                ++rep.staticallyCaught;
            else
                ++rep.staticGaps;
        }
        rep.failures.push_back(std::move(f));
    }
    return rep;
}

FuzzReport
fuzzSeeds(const std::vector<uint64_t> &seeds, const FuzzOptions &base)
{
    FuzzReport rep;
    for (uint64_t seed : seeds) {
        FuzzOptions o = base;
        o.seed = seed;
        FuzzReport one = fuzzOne(o);
        rep.runs += one.runs;
        rep.staticallyCaught += one.staticallyCaught;
        rep.staticGaps += one.staticGaps;
        for (auto &f : one.failures)
            rep.failures.push_back(std::move(f));
    }
    return rep;
}

} // namespace dlp::verify
