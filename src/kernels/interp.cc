#include "kernels/interp.hh"

#include <algorithm>
#include <cinttypes>
#include <map>

#include "common/logging.hh"

namespace dlp::kernels {

namespace {

/** Inclusive node-index extent of each loop (nodes are built in order). */
struct LoopExtent
{
    size_t first = ~size_t(0);
    size_t last = 0;
};

/** Walks the node list interpreting structured loops recursively. */
class Interp
{
  public:
    Interp(const Kernel &kern, uint64_t rec, const Word *input, Word *output,
           const IrregularMemory &irregular, InterpStats *st)
        : k(kern), recIdx(rec), in(input), out(output), mem(irregular),
          stats(st), vals(kern.nodes.size(), 0),
          loopIdxVal(kern.loops.size(), 0),
          carryVal(kern.carries.size(), 0),
          scratch(kern.scratchWords, 0)
    {
        extents.resize(k.loops.size());
        for (size_t i = 0; i < k.nodes.size(); ++i) {
            LoopId l = k.nodes[i].loop;
            // A node is within the extent of its loop and all ancestors.
            while (l != topLevel) {
                extents[l].first = std::min(extents[l].first, i);
                extents[l].last = std::max(extents[l].last, i);
                l = k.loops[l].parent;
            }
        }
    }

    void
    run()
    {
        execRange(0, k.nodes.size(), topLevel);
    }

  private:
    /** Execute nodes in [begin, end) that belong directly to `level`. */
    void
    execRange(size_t begin, size_t end, LoopId level)
    {
        size_t i = begin;
        while (i < end) {
            LoopId nl = k.nodes[i].loop;
            if (nl == level) {
                execNode(i);
                ++i;
                continue;
            }
            // Entering a nested loop: find its outermost ancestor whose
            // parent is the current level, then run that whole loop.
            LoopId child = nl;
            while (k.loops[child].parent != level)
                child = k.loops[child].parent;
            execLoop(child);
            i = extents[child].last + 1;
        }
    }

    void
    execLoop(LoopId l)
    {
        const LoopInfo &info = k.loops[l];
        uint64_t trip = info.staticTrip
                            ? info.staticTrip
                            : vals[info.tripValue];
        panic_if(info.staticTrip == 0 && trip > info.maxTrip,
                 "kernel %s: runtime trip %" PRIu64 " exceeds bound %u",
                 k.name.c_str(), trip, info.maxTrip);

        // Initialize carries.
        for (uint32_t c : info.carries)
            carryVal[c] = vals[k.carries[c].init];

        for (uint64_t iter = 0; iter < trip; ++iter) {
            loopIdxVal[l] = iter;
            execRange(extents[l].first, extents[l].last + 1, l);
            for (uint32_t c : info.carries)
                carryVal[c] = vals[k.carries[c].next];
        }
        // carryVal now holds the exit values (or inits when trip == 0);
        // LoopExit nodes read them after the loop.
    }

    void
    execNode(size_t i)
    {
        const Node &n = k.nodes[i];
        if (stats) {
            stats->executed++;
            if (n.kind == NodeKind::Compute && !n.overhead)
                stats->useful++;
        }
        auto s = [&](unsigned idx) { return vals[n.src[idx]]; };

        switch (n.kind) {
          case NodeKind::Compute: {
            Word b = n.immB ? n.imm : (n.src[1] != noValue ? s(1) : 0);
            vals[i] = isa::evalOp(n.op, n.src[0] != noValue ? s(0) : 0, b,
                                  n.src[2] != noValue ? s(2) : 0, n.imm);
            break;
          }
          case NodeKind::Const:
            vals[i] = k.constants[static_cast<size_t>(n.imm)].value;
            break;
          case NodeKind::RecIdx:
            vals[i] = recIdx;
            break;
          case NodeKind::LoopIdx:
            vals[i] = loopIdxVal[static_cast<size_t>(n.imm)];
            break;
          case NodeKind::InWord:
            if (stats)
                stats->loads++;
            vals[i] = in[n.imm];
            break;
          case NodeKind::InWordAt: {
            Word off = s(0);
            panic_if(off >= k.inWords,
                     "kernel %s reads input word %" PRIu64 " of %u", k.name.c_str(),
                     off, k.inWords);
            if (stats)
                stats->loads++;
            vals[i] = in[off];
            break;
          }
          case NodeKind::InWide:
          case NodeKind::ScratchWide: {
            unsigned count = KernelBuilder::wideCount(n.imm);
            unsigned stride = KernelBuilder::wideStride(n.imm);
            Word start = s(0);
            bool fromScratch = n.kind == NodeKind::ScratchWide;
            Word limit = fromScratch ? k.scratchWords : k.inWords;
            panic_if(start + Word(count - 1) * stride >= limit,
                     "kernel %s wide load out of range", k.name.c_str());
            auto &words = wideVals[static_cast<uint32_t>(i)];
            words.resize(count);
            for (unsigned w = 0; w < count; ++w) {
                words[w] = fromScratch ? scratch[start + Word(w) * stride]
                                       : in[start + Word(w) * stride];
            }
            if (stats)
                stats->loads += count;
            break;
          }
          case NodeKind::WordOf:
            vals[i] = wideVals.at(n.src[0]).at(static_cast<size_t>(n.imm));
            break;
          case NodeKind::OutWord:
            if (stats)
                stats->stores++;
            out[n.imm] = s(0);
            break;
          case NodeKind::OutWordAt: {
            Word off = s(0);
            panic_if(off >= k.outWords,
                     "kernel %s writes output word %" PRIu64 " of %u",
                     k.name.c_str(), off, k.outWords);
            if (stats)
                stats->stores++;
            out[off] = s(1);
            break;
          }
          case NodeKind::ScratchLoad: {
            Word off = s(0);
            panic_if(off >= k.scratchWords, "kernel %s scratch read %" PRIu64 "/%u",
                     k.name.c_str(), off,
                     k.scratchWords);
            if (stats)
                stats->loads++;
            vals[i] = scratch[off];
            break;
          }
          case NodeKind::ScratchStore: {
            Word off = s(0);
            panic_if(off >= k.scratchWords,
                     "kernel %s scratch write %" PRIu64 "/%u", k.name.c_str(),
                     off, k.scratchWords);
            if (stats)
                stats->stores++;
            scratch[off] = s(1);
            break;
          }
          case NodeKind::CachedLoad:
            panic_if(!mem.read, "kernel %s needs irregular memory",
                     k.name.c_str());
            if (stats)
                stats->cachedAccesses++;
            vals[i] = mem.read(s(0));
            break;
          case NodeKind::CachedStore:
            panic_if(!mem.write, "kernel %s needs irregular memory",
                     k.name.c_str());
            if (stats)
                stats->cachedAccesses++;
            mem.write(s(0), s(1));
            break;
          case NodeKind::TableLoad: {
            const auto &t = k.tables[static_cast<size_t>(n.imm)];
            Word idx = s(0) & (t.data.size() - 1);
            if (stats)
                stats->tableLoads++;
            vals[i] = t.data[idx];
            break;
          }
          case NodeKind::Carry:
            vals[i] = carryVal[static_cast<size_t>(n.imm)];
            break;
          case NodeKind::LoopExit: {
            const Node &cn = k.nodes[n.src[0]];
            vals[i] = carryVal[static_cast<size_t>(cn.imm)];
            break;
          }
        }
    }

    const Kernel &k;
    uint64_t recIdx;
    const Word *in;
    Word *out;
    const IrregularMemory &mem;
    InterpStats *stats;

    std::vector<Word> vals;
    std::vector<Word> loopIdxVal;
    std::vector<Word> carryVal;
    std::vector<Word> scratch;
    std::map<uint32_t, std::vector<Word>> wideVals;
    std::vector<LoopExtent> extents;
};

} // namespace

void
interpret(const Kernel &k, uint64_t recIdx, const Word *in, Word *out,
          const IrregularMemory &mem, InterpStats *stats)
{
    Interp interp(k, recIdx, in, out, mem, stats);
    interp.run();
}

void
interpretBatch(const Kernel &k, const std::vector<Word> &in,
               std::vector<Word> &out, uint64_t numRecords,
               const IrregularMemory &mem, InterpStats *stats)
{
    panic_if(in.size() < numRecords * k.inWords,
             "input batch too small for %" PRIu64 " records",
             numRecords);
    out.resize(numRecords * k.outWords);
    for (uint64_t r = 0; r < numRecords; ++r) {
        interpret(k, r, in.data() + r * k.inWords,
                  out.data() + r * k.outWords, mem, stats);
    }
}

} // namespace dlp::kernels
