/**
 * @file
 * Memory-system configuration knobs.
 *
 * Defaults reproduce the baseline configuration of Section 5.2: an 8x8
 * array with one 64 KB SMC bank per row (reconfigured L2 banks), 2 MB of
 * L2, a partitioned 64 KB L1 data cache, and access latencies matched to
 * an Alpha 21264.
 */

#ifndef DLP_MEM_PARAMS_HH
#define DLP_MEM_PARAMS_HH

#include <cstdint>

#include "common/types.hh"

namespace dlp::mem {

struct MemParams
{
    /// Number of row-aligned banks (equals the array height).
    unsigned rows = 8;

    // --- Software-managed cache (streamed memory) -----------------------
    /// Capacity of one SMC bank in bytes.
    uint64_t smcBankBytes = 64 * 1024;
    /// SRAM access latency of an SMC bank, cycles.
    Cycles smcLatency = 4;
    /// Words an SMC bank (and its row streaming channel) moves per cycle.
    unsigned smcWordsPerCycle = 4;
    /// Words the coalescing store buffer retires per cycle per row.
    unsigned storeBufWordsPerCycle = 4;

    // --- Hardware-managed caches ----------------------------------------
    /// Total L1 data-cache capacity (partitioned across rows), bytes.
    uint64_t l1Bytes = 64 * 1024;
    unsigned l1Assoc = 4;
    unsigned lineBytes = 32;
    Cycles l1HitLatency = 2;
    /// L2 capacity in bytes (the part not reconfigured as SMC).
    uint64_t l2Bytes = 2 * 1024 * 1024;
    unsigned l2Assoc = 8;
    Cycles l2Latency = 8;

    // --- Main memory -----------------------------------------------------
    Cycles memLatency = 100;
    /// Words per cycle of off-chip bandwidth (shared by DMA and misses).
    unsigned memWordsPerCycle = 2;

    /// Words one SMC bank holds.
    uint64_t smcBankWords() const { return smcBankBytes / wordBytes; }
};

} // namespace dlp::mem

#endif // DLP_MEM_PARAMS_HH
