/**
 * @file
 * The sweep CLI: run an arbitrary slice of the experiment space —
 * kernels × configurations × scale divisors × seeds — on the parallel
 * sweep driver, with live progress and the standard JSON export.
 *
 *   ./build/examples/sweep                          # full perf grid
 *   ./build/examples/sweep --kernels fft,lu --jobs 8
 *   ./build/examples/sweep --configs S,S-O,M-D --scale-div 4
 *   ./build/examples/sweep --seeds 1..5 --json seeds.json
 *
 * Options:
 *   --kernels a,b,...    kernel names, or "all" (default: the Table 4
 *                        performance suite)
 *   --configs a,b,...    Table 5 configuration names, or "all"
 *                        (default: all, baseline first)
 *   --scale-div n,m,...  scale divisors (default: 1)
 *   --seeds a,b or a..b  dataset seeds, list or inclusive range
 *                        (default: 1234)
 *   --jobs N             worker threads (default: DLP_JOBS, else 1;
 *                        0 = one per hardware thread)
 *   --json FILE          output path (default: SWEEP.json)
 *   --no-cache           bypass the process-wide result cache
 *   --store DIR          persistent content-addressed result store:
 *                        warm cells load from DIR, cold cells simulate
 *                        and are written back, so a rerun is
 *                        near-instant and bit-identical (also:
 *                        DLP_STORE=DIR)
 *   --quiet              suppress per-task progress lines
 *   --audit              check every run against the conservation
 *                        invariants (also: DLP_AUDIT=1); violations are
 *                        listed, exported in the JSON, and exit nonzero
 *   --check              statically verify every scheduled program
 *                        before it runs (also: DLP_CHECK=1); a plan
 *                        with Error findings aborts the sweep
 *   --trace-out FILE     capture a timeline of the sweep (simulated
 *                        spans + host-side cells/fixtures/jobs) as
 *                        Chrome trace JSON, loadable in Perfetto
 *                        (also: DLP_TIMELINE=FILE)
 *   --timeseries N       sample every registered stat each N simulated
 *                        ticks into the per-experiment "timeseries"
 *                        JSON object (also: DLP_TIMESERIES=N)
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/experiments.hh"
#include "analysis/export.hh"
#include "arch/configs.hh"
#include "common/logging.hh"
#include "driver/sweep.hh"
#include "kernels/catalog.hh"
#include "kernels/workload.hh"
#include "check/verify.hh"
#include "obs/timeline.hh"
#include "verify/audit.hh"

using namespace dlp;

namespace {

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > start)
            out.push_back(arg.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** Parse "7" or "3..9" (inclusive) into a list of integers. */
std::vector<uint64_t>
parseNumbers(const std::string &arg)
{
    std::vector<uint64_t> out;
    for (const auto &tok : splitList(arg)) {
        size_t dots = tok.find("..");
        if (dots == std::string::npos) {
            out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
            continue;
        }
        uint64_t lo = std::strtoull(tok.substr(0, dots).c_str(), nullptr, 10);
        uint64_t hi =
            std::strtoull(tok.substr(dots + 2).c_str(), nullptr, 10);
        fatal_if(hi < lo || hi - lo > 4096, "bad range '%s'", tok.c_str());
        for (uint64_t v = lo; v <= hi; ++v)
            out.push_back(v);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    std::vector<std::string> kernels = analysis::perfKernels();
    std::vector<std::string> configs = arch::allConfigNames();
    std::vector<uint64_t> scaleDivs = {1};
    std::vector<uint64_t> seeds = {1234};
    std::string jsonPath = "SWEEP.json";
    bool quiet = false;
    driver::SweepOptions opts;

    auto value = [&](int &i) -> const char * {
        fatal_if(i + 1 >= argc, "%s needs an argument", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--kernels") == 0) {
            std::string v = value(i);
            if (v != "all")
                kernels = splitList(v);
        } else if (std::strcmp(argv[i], "--configs") == 0) {
            std::string v = value(i);
            if (v != "all")
                configs = splitList(v);
        } else if (std::strcmp(argv[i], "--scale-div") == 0) {
            scaleDivs = parseNumbers(value(i));
        } else if (std::strcmp(argv[i], "--seeds") == 0) {
            seeds = parseNumbers(value(i));
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            const char *v = value(i);
            opts.jobs = unsigned(std::strtoul(v, nullptr, 10));
            if (std::strcmp(v, "0") == 0) {
                unsigned hw = std::thread::hardware_concurrency();
                opts.jobs = hw ? hw : 1;
            }
        } else if (std::strcmp(argv[i], "--json") == 0) {
            jsonPath = value(i);
        } else if (std::strncmp(argv[i], "--store=", 8) == 0) {
            opts.storeDir = argv[i] + 8;
        } else if (std::strcmp(argv[i], "--store") == 0) {
            opts.storeDir = value(i);
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            opts.useCache = false;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (std::strcmp(argv[i], "--audit") == 0) {
            verify::setAuditEnabled(true);
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check::setCheckEnabled(true);
        } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
            obs::setOutputPath(argv[i] + 12);
            obs::setRecording(true);
        } else if (std::strcmp(argv[i], "--trace-out") == 0) {
            obs::setOutputPath(value(i));
            obs::setRecording(true);
        } else if (std::strncmp(argv[i], "--timeseries=", 13) == 0) {
            obs::setTimeseriesInterval(
                std::strtoull(argv[i] + 13, nullptr, 10));
        } else if (std::strcmp(argv[i], "--timeseries") == 0) {
            obs::setTimeseriesInterval(
                std::strtoull(value(i), nullptr, 10));
        } else {
            fatal("unknown option '%s' (see the header of "
                  "examples/sweep.cpp)", argv[i]);
        }
    }

    // Validate names up front: a typo should fail before an hour-long
    // sweep, not in the middle of it.
    for (const auto &k : kernels)
        (void)kernels::kernelByName(k);
    for (const auto &c : configs)
        (void)arch::configByName(c);

    driver::SweepPlan plan;
    for (uint64_t seed : seeds)
        for (uint64_t div : scaleDivs)
            plan.addGrid(kernels, configs, div, seed);

    unsigned jobs = driver::effectiveJobs(opts);
    std::printf("sweep: %zu simulations (%zu kernels x %zu configs x "
                "%zu scale-divs x %zu seeds) on %u worker%s\n",
                plan.size(), kernels.size(), configs.size(),
                scaleDivs.size(), seeds.size(), jobs,
                jobs == 1 ? "" : "s");

    if (!quiet) {
        opts.progress = [](const driver::SweepProgress &p) {
            std::printf("  [%3zu/%3zu] %s/%s div=%" PRIu64 " seed=%" PRIu64
                        "%s\n",
                        p.done, p.total, p.task->kernel.c_str(),
                        p.task->config.c_str(), p.task->scaleDiv,
                        p.task->seed, p.cached ? " (cached)" : "");
            std::fflush(stdout);
        };
    }

    auto t0 = std::chrono::steady_clock::now();
    auto results = driver::runSweep(plan, opts);
    double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::printf("\nsweep finished in %.2f s (%zu results, cache: %" PRIu64
                " hits, %" PRIu64 " misses)\n",
                wallSeconds, results.size(), driver::resultCacheHits(),
                driver::resultCacheMisses());
    {
        auto st = driver::storeTraffic();
        if (st.hits || st.misses || st.inserts)
            std::printf("store: %" PRIu64 " hits, %" PRIu64 " misses, %"
                        PRIu64 " inserts (%" PRIu64 " entries, %" PRIu64
                        " bytes on disk)\n",
                        st.hits, st.misses, st.inserts, st.entries,
                        st.bytes);
    }

    size_t auditViolations = 0;
    bool audited = false;
    for (const auto &res : results) {
        if (!res.audited)
            continue;
        audited = true;
        for (const auto &f : res.auditViolations) {
            std::printf("AUDIT VIOLATION %s/%s: %s: %s\n",
                        res.kernel.c_str(), res.config.c_str(),
                        f.invariant.c_str(), f.detail.c_str());
            ++auditViolations;
        }
    }
    if (audited)
        std::printf("audit: %zu invariant violation(s) across %zu "
                    "audited runs\n",
                    auditViolations, results.size());

    analysis::json::Value doc = analysis::toJson(results);
    doc.set("sweep", "custom");
    doc.set("jobs", uint64_t(jobs));
    doc.set("wallSeconds", wallSeconds);
    doc.set("store", driver::storeStatsJson());
    analysis::writeJsonFile(jsonPath, doc);
    std::printf("wrote %s\n", jsonPath.c_str());

    std::string tracePath = obs::finish();
    if (!tracePath.empty())
        std::printf("wrote timeline %s (open in Perfetto or "
                    "chrome://tracing)\n", tracePath.c_str());
    return auditViolations ? 1 : 0;
}
