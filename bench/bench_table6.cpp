/**
 * @file
 * Regenerates Table 6: the configurable TRIPS processor (best mechanism
 * combination per application) against published specialized-hardware
 * results.
 *
 * The specialized-hardware column is the paper's published measurements
 * (MPC 7447 DSP, Imagine, Tarantula, CryptoManiac, QuadroFX / Pentium 4);
 * those systems cannot be re-run, so the comparison recomputes only the
 * TRIPS column from our simulation. Where the paper's metric is
 * ops/cycle or cycles/block we compare directly; for rate metrics we
 * report our records-per-kilocycle (clock normalization to each
 * reference's frequency is the paper's step we cannot reproduce without
 * its cycle-time model).
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analysis/experiments.hh"
#include "analysis/report.hh"
#include "common/logging.hh"

using namespace dlp;
using namespace dlp::analysis;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    uint64_t scaleDiv = 1;
    unsigned jobs = 0; // 0 = DLP_JOBS environment default
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            scaleDiv = 8;
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = unsigned(std::strtoul(argv[++i], nullptr, 10));
    }

    struct Row
    {
        const char *kernel;
        const char *paperTrips;
        const char *specialized;
        const char *reference;
        const char *units;
        bool cyclesPerRecord; ///< metric directly comparable to ours
    };
    static const Row rows[] = {
        {"convert", "19016", "960", "MPC 7447 1.3GHz (DSP)",
         "iterations/sec (paper)", false},
        {"highpassfilter", "2820", "907", "MPC 7447 1.3GHz (DSP)",
         "iterations/sec (paper)", false},
        {"dct", "33.9", "8.2", "Imagine (media processor)", "ops/cycle",
         false},
        {"fft", "14.4", "28", "Tarantula (vector core)", "ops/cycle",
         false},
        {"lu", "10.6", "15", "Tarantula (vector core)", "ops/cycle",
         false},
        {"md5", "14.6", "-", "CryptoManiac", "cycles/block", true},
        {"blowfish", "6", "80", "CryptoManiac", "cycles/block", true},
        {"rijndael", "12", "100", "CryptoManiac", "cycles/block", true},
        {"fragment-reflection", "86", "-", "QuadroFX 450MHz",
         "Mfragments/sec (paper)", false},
        {"fragment-simple", "193", "1500", "QuadroFX 450MHz",
         "Mfragments/sec (paper)", false},
        {"vertex-reflection", "434", "-", "Pentium4 2.4GHz",
         "Mtriangles/sec (paper)", false},
        {"vertex-simple", "418", "64", "Pentium4 2.4GHz",
         "Mtriangles/sec (paper)", false},
        {"vertex-skinning", "207", "-", "Pentium4 2.4GHz",
         "Mtriangles/sec (paper)", false},
    };

    std::cout << "Running best-configuration experiments...\n\n";
    Grid grid = runGrid(scaleDiv, 1234, jobs);

    std::cout << "Table 6: configurable TRIPS vs. specialized hardware\n\n";
    TextTable t;
    t.header({"Benchmark", "best cfg", "ours ops/cyc", "ours cyc/rec",
              "paper TRIPS", "specialized", "reference", "paper units"});
    for (const auto &r : rows) {
        const auto &res = grid.at(r.kernel).at(bestConfig(grid, r.kernel));
        double cycPerRec = double(res.cycles) / double(res.records);
        t.row({r.kernel, res.config, fmt(res.opsPerCycle()),
               fmt(cycPerRec, 1), r.paperTrips,
               r.specialized, r.reference, r.units});
    }
    t.print(std::cout);

    std::cout
        << "\nDirectly comparable rows: dct/fft/lu (ops/cycle) and the\n"
           "crypto rows (our cycles/record vs the paper's cycles/block).\n"
           "The paper's qualitative claims: TRIPS beats the DSP and the\n"
           "Pentium4 vertex path, is ~2x behind Tarantula on the\n"
           "scientific codes, an order of magnitude ahead of serial\n"
           "packet processing, and ~8x behind dedicated fragment "
           "hardware.\n";
    return 0;
}
