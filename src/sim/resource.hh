/**
 * @file
 * Occupancy bookkeeping for contended hardware resources.
 *
 * Router ports, cache-bank ports, register-file ports, ALU issue slots
 * and DMA engines are all "one grant every N ticks" resources. Each
 * resource keeps a calendar of busy intervals: a request is granted the
 * first idle window of the required length at or after its ready time.
 * Unlike a simple next-free-tick watermark, the calendar serves requests
 * that arrive out of simulation order correctly -- a late-simulated but
 * early-in-machine-time request can claim an idle window before a
 * previously granted later one, which is what a real FCFS queue would
 * have done.
 *
 * The calendar is a flat sorted small-vector of disjoint merged
 * intervals rather than a node-based map: adjacent intervals merge, so
 * densely used resources keep one or two intervals resident, which fit
 * the inline buffer and never touch the heap. The common case --
 * acquire at or after the end of the last interval -- is recognized in
 * O(1) and either extends the tail interval in place or appends, with
 * zero allocations. Sparse out-of-order histories fall back to a
 * binary search over the (tiny) flat array; memmove-style inserts beat
 * map node churn at these sizes by a wide margin.
 */

#ifndef DLP_SIM_RESOURCE_HH
#define DLP_SIM_RESOURCE_HH

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <type_traits>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dlp::sim {

/**
 * A minimal small-buffer vector for trivially copyable elements:
 * `Inline` slots live inside the object; longer sequences spill to a
 * geometrically grown heap block. Exactly the operations the interval
 * calendar needs -- indexed access, push_back, insert, erase, clear.
 */
template <typename T, size_t Inline>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec relocates with memcpy");

  public:
    SmallVec() = default;

    SmallVec(const SmallVec &o) { assignFrom(o); }

    SmallVec &
    operator=(const SmallVec &o)
    {
        if (this != &o) {
            releaseHeap();
            assignFrom(o);
        }
        return *this;
    }

    SmallVec(SmallVec &&o) noexcept { stealFrom(o); }

    SmallVec &
    operator=(SmallVec &&o) noexcept
    {
        if (this != &o) {
            releaseHeap();
            stealFrom(o);
        }
        return *this;
    }

    ~SmallVec() { releaseHeap(); }

    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    T &operator[](size_t i) { return data_[i]; }
    const T &operator[](size_t i) const { return data_[i]; }

    T &back() { return data_[count - 1]; }
    const T &back() const { return data_[count - 1]; }

    const T *begin() const { return data_; }
    const T *end() const { return data_ + count; }
    T *begin() { return data_; }
    T *end() { return data_ + count; }

    void
    push_back(const T &v)
    {
        if (count == cap)
            grow();
        data_[count++] = v;
    }

    /** Insert v before index at. */
    void
    insert(size_t at, const T &v)
    {
        if (count == cap)
            grow();
        std::memmove(data_ + at + 1, data_ + at,
                     (count - at) * sizeof(T));
        data_[at] = v;
        ++count;
    }

    /** Erase the element at index at. */
    void
    erase(size_t at)
    {
        std::memmove(data_ + at, data_ + at + 1,
                     (count - at - 1) * sizeof(T));
        --count;
    }

    /** Drop all elements; keeps the heap block, if any. */
    void clear() { count = 0; }

  private:
    void
    grow()
    {
        size_t newCap = cap * 2;
        T *block = static_cast<T *>(std::malloc(newCap * sizeof(T)));
        panic_if(!block, "SmallVec allocation failure");
        std::memcpy(block, data_, count * sizeof(T));
        if (data_ != inline_)
            std::free(data_);
        data_ = block;
        cap = newCap;
    }

    void
    assignFrom(const SmallVec &o)
    {
        if (o.count <= Inline) {
            data_ = inline_;
            cap = Inline;
        } else {
            data_ = static_cast<T *>(std::malloc(o.count * sizeof(T)));
            panic_if(!data_, "SmallVec allocation failure");
            cap = o.count;
        }
        count = o.count;
        std::memcpy(data_, o.data_, count * sizeof(T));
    }

    void
    stealFrom(SmallVec &o)
    {
        if (o.data_ != o.inline_) {
            data_ = o.data_;
            cap = o.cap;
            count = o.count;
            o.data_ = o.inline_;
            o.cap = Inline;
            o.count = 0;
        } else {
            data_ = inline_;
            cap = Inline;
            count = o.count;
            std::memcpy(data_, o.data_, count * sizeof(T));
        }
    }

    void
    releaseHeap()
    {
        if (data_ != inline_) {
            std::free(data_);
            data_ = inline_;
            cap = Inline;
        }
        count = 0;
    }

    T inline_[Inline];
    T *data_ = inline_;
    size_t count = 0;
    size_t cap = Inline;
};

/** A single-server FCFS resource with a fixed service interval. */
class Resource
{
  public:
    /**
     * @param interval Ticks between successive grants (service time).
     */
    explicit Resource(Tick interval = 1) : serviceInterval(interval) {}

    /**
     * Acquire the resource no earlier than earliest.
     * @return The tick at which the grant happens.
     */
    Tick
    acquire(Tick earliest)
    {
        return acquireMany(earliest, 1);
    }

    /**
     * Acquire the resource for a burst of units back-to-back service
     * intervals (e.g. a wide load occupying a bank port for several
     * ticks). @return the tick of the first grant.
     */
    Tick
    acquireMany(Tick earliest, uint64_t units)
    {
        if (units == 0)
            return earliest;
        Tick len = serviceInterval * units;
        Tick grant;
        // Fast path (the last-insert hint): the request lands at or
        // after the calendar's tail, which is where in-order traffic
        // always lands. Extend the tail interval in place (touching)
        // or append -- O(1), no search, no allocation.
        if (busy.empty() || earliest >= busy.back().end) {
            grant = earliest;
            if (!busy.empty() && busy.back().end == earliest)
                busy.back().end = earliest + len;
            else
                busy.push_back({earliest, earliest + len});
        } else {
            size_t pos;
            grant = findWindow(earliest, len, pos);
            insertBusy(pos, grant, grant + len);
        }
        totalGrants += units;
        totalWait += grant - earliest;
        lastEnd = std::max(lastEnd, grant + len);
        return grant;
    }

    /** Would a request at tick earliest be granted without waiting? */
    bool
    idleAt(Tick earliest) const
    {
        // O(1) answer for the common case: nothing is scheduled at or
        // after earliest, so the window trivially starts there.
        if (busy.empty() || earliest >= busy.back().end)
            return true;
        size_t pos;
        return findWindow(earliest, serviceInterval, pos) == earliest;
    }

    /** End of the last scheduled busy interval. */
    Tick nextFree() const { return lastEnd; }

    Tick interval() const { return serviceInterval; }
    void setInterval(Tick t) { serviceInterval = t; }

    uint64_t grants() const { return totalGrants; }
    Tick waitedTicks() const { return totalWait; }

    void
    reset()
    {
        busy.clear();
        lastEnd = 0;
        totalGrants = 0;
        totalWait = 0;
    }

    /// @name Epoch fast-forward support.
    /// @{

    /**
     * Credit the grant/wait totals for `grantsDelta` grants that were
     * never individually simulated (a replayed epoch's worth). The
     * calendar is not touched -- see shiftCalendar().
     */
    void
    fastForwardCounters(uint64_t grantsDelta, Tick waitDelta)
    {
        totalGrants += grantsDelta;
        totalWait += waitDelta;
    }

    /**
     * Translate the whole busy calendar `shift` ticks into the future.
     * After replaying K periodic iterations arithmetically, the calendar
     * a real simulation would have left behind is exactly the recorded
     * one shifted by K*period: the pre-epoch prefix is never consulted
     * again (future requests arrive at or after the new tail), and the
     * tail lands where periodicity places it.
     */
    void
    shiftCalendar(Tick shift)
    {
        for (auto &iv : busy) {
            iv.start += shift;
            iv.end += shift;
        }
        lastEnd += shift;
    }

    /**
     * The busy intervals still extending past `origin`, as signed
     * offsets relative to it. Two iterations of a periodic schedule are
     * indistinguishable to all future requests iff these relative tails
     * (plus the relative calendar end) match -- the epoch pass pipeline
     * compares them between consecutive recorded iterations.
     *
     * Interval starts clamp at origin: grants never land before their
     * request tick and every future request arrives at or after origin,
     * so how far back a merged busy interval stretches is invisible to
     * all future behavior. Without the clamp a saturated resource --
     * one continuous interval growing by a period per iteration --
     * would never compare tail-equal.
     */
    void
    tailSince(Tick origin,
              std::vector<std::pair<int64_t, int64_t>> &out) const
    {
        out.clear();
        for (const auto &iv : busy) {
            if (iv.end > origin) {
                out.emplace_back(int64_t(std::max(iv.start, origin) -
                                         origin),
                                 int64_t(iv.end - origin));
            }
        }
    }

    /// @}

  private:
    struct Interval
    {
        Tick start;
        Tick end;
    };

    /**
     * First start >= earliest of an idle window of length len; pos
     * receives the index of the first interval starting at or after the
     * window (the insertion point).
     */
    Tick
    findWindow(Tick earliest, Tick len, size_t &pos) const
    {
        Tick t = earliest;
        // First interval with start > t.
        size_t idx = upperBound(t);
        if (idx > 0 && busy[idx - 1].end > t)
            t = busy[idx - 1].end;
        while (idx < busy.size() && busy[idx].start < t + len) {
            t = std::max(t, busy[idx].end);
            ++idx;
        }
        pos = idx;
        return t;
    }

    /** Index of the first interval with start > t. */
    size_t
    upperBound(Tick t) const
    {
        size_t lo = 0, hi = busy.size();
        while (lo < hi) {
            size_t mid = (lo + hi) / 2;
            if (busy[mid].start > t)
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    }

    /**
     * Insert [start, end) before index pos, merging with a touching
     * predecessor and/or successor. The window search guarantees the
     * new interval overlaps no existing interior, so at most one merge
     * on each side.
     */
    void
    insertBusy(size_t pos, Tick start, Tick end)
    {
        bool mergePrev = pos > 0 && busy[pos - 1].end >= start;
        bool mergeNext = pos < busy.size() && busy[pos].start <= end;
        if (mergePrev && mergeNext) {
            busy[pos - 1].end = busy[pos].end;
            busy.erase(pos);
        } else if (mergePrev) {
            busy[pos - 1].end = end;
        } else if (mergeNext) {
            busy[pos].start = start;
        } else {
            busy.insert(pos, {start, end});
        }
    }

    Tick serviceInterval;
    /// Disjoint merged busy intervals, sorted by start. Merging keeps
    /// dense resources at one or two entries, inside the inline buffer.
    SmallVec<Interval, 4> busy;
    Tick lastEnd = 0;
    uint64_t totalGrants = 0;
    Tick totalWait = 0;
};

} // namespace dlp::sim

#endif // DLP_SIM_RESOURCE_HH
