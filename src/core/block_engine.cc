#include "core/block_engine.hh"

#include <algorithm>
#include <cinttypes>

#include "common/bitutils.hh"
#include "common/trace.hh"
#include "epoch/epoch.hh"
#include "epoch/passes.hh"
#include "isa/disasm.hh"

namespace dlp::core {

using isa::MappedBlock;
using isa::MappedInst;
using isa::MemSpace;
using isa::Op;

BlockEngine::BlockEngine(const MachineParams &params,
                         mem::MemorySystem &memory)
    : m(params), mem(memory), mesh(params.rows, params.cols, params.hopTicks),
      rf(params.numRegs, 0),
      issuePorts(params.tiles(), sim::Resource(ticksPerCycle)),
      divPorts(params.tiles(),
               sim::Resource(cyclesToTicks(isa::opInfo(Op::Fdiv).latency))),
      injectPorts(params.tiles(), sim::Resource(params.injectInterval)),
      l0Ports(params.tiles(), sim::Resource(ticksPerCycle)),
      regRead(params.regBanks, sim::Resource(ticksPerCycle)),
      regWrite(params.regBanks, sim::Resource(ticksPerCycle))
{
    // The structural resources whose occupancy sets the activation
    // initiation interval when iterations pipeline across frames.
    auto trackSet = [this](std::vector<sim::Resource> &set,
                           const char *name) {
        for (auto &r : set) {
            tracked.push_back(&r);
            trackedName.push_back(name);
        }
    };
    trackSet(issuePorts, "issue");
    trackSet(divPorts, "div");
    trackSet(injectPorts, "inject");
    trackSet(l0Ports, "l0");
    trackSet(regRead, "regRead");
    trackSet(regWrite, "regWrite");
    trackSet(mem.smc().bankPortResources(), "smcBank");
    trackSet(mem.smc().storeBufResources(), "storeBuf");
    trackSet(mem.l1().portResources(), "l1");
    trackSet(mem.l2().portResources(), "l2");
    trackSet(mem.smc().channelResources(), "channel");
    mesh.forEachLink([this](sim::Resource &r) {
        tracked.push_back(&r);
        trackedName.push_back("link");
    });
    grantSnapshot.assign(tracked.size(), 0);

    // One reusable event seeds every activation (bound once here; the
    // per-activation context travels through members, not captures).
    seedEvent.bind(eq, [this] { seedActivation(); });

    // Issue width is bounded by the tile count; operand waits beyond a
    // couple hundred ticks all mean "starved" and land in overflow.
    issueWidth = &engStats.distribution("issueWidth", 0.0,
                                        double(m.tiles()), 16);
    operandWait = &engStats.distribution("operandWaitTicks", 0.0, 128.0,
                                         16);
    activationsStat = &engStats.scalar("activations");
    revitalizesStat = &engStats.scalar("revitalizes");
    signatureRepeatsStat = &engStats.scalar("signatureRepeats");

    // Lifetime event-queue counters, surfaced so the post-run auditor
    // can check the conservation law scheduled == executed + pending +
    // discarded (and that a completed run drains the queue). The ff
    // offsets fold in the events replayed epochs accounted for without
    // firing, so these report simulated-machine totals; hostEvents()
    // stays the true host count.
    engStats.formula("eventsScheduled", [this] {
        return double(eq.scheduledEvents() + ffScheduledOffset);
    });
    engStats.formula("eventsExecuted", [this] {
        return double(eq.executedEvents() + ffExecutedOffset);
    });
    engStats.formula("eventsPending",
                     [this] { return double(eq.pending()); });
    engStats.formula("eventsDiscarded",
                     [this] { return double(eq.discardedEvents()); });
}

void
BlockEngine::snapshotGrants()
{
    for (size_t i = 0; i < tracked.size(); ++i)
        grantSnapshot[i] = tracked[i]->grants();
}

Tick
BlockEngine::busySinceSnapshot() const
{
    Tick worst = 0;
    size_t argmax = 0;
    for (size_t i = 0; i < tracked.size(); ++i) {
        Tick busy = (tracked[i]->grants() - grantSnapshot[i]) *
                    tracked[i]->interval();
        if (busy > worst) {
            worst = busy;
            argmax = i;
        }
    }
    if (worst > 0) {
        DPRINTF(Engine, "II bottleneck: %s[%zu] busy=%" PRIu64 " ticks",
                trackedName[argmax], argmax, worst);
    }
    return worst;
}

void
BlockEngine::setTables(const std::vector<kernels::Table> *kernelTables)
{
    tables = kernelTables;
    tableByteBase.clear();
    Addr base = tableRegionBase;
    if (tables) {
        for (const auto &t : *tables) {
            tableByteBase.push_back(base);
            base += t.data.size() * wordBytes;
        }
    }
}

RunStats
BlockEngine::run(const sched::SimdPlan &plan, uint64_t numRecords)
{
    RunStats stats;
    Tick t = curTick;

    // A fresh run (new plan, new chunk, reused in-process fixture) must
    // not inherit the previous run's steady-state evidence: the first
    // activation always resets the streak through the fresh-mapping
    // path, but the epoch controller arms off the streak *between*
    // activations, so stale state here would be evidence it never saw.
    signatureStreak = 0;
    lastSignature = 0;

    // Setup block: write the initial register values (constants,
    // induction registers) through the register-file ports, and load the
    // L0 data stores / table region.
    for (const auto &init : plan.initialRegs)
        rf.at(init.first) = init.second;
    t += cyclesToTicks(
        divCeil(std::max<size_t>(plan.initialRegs.size(), 1), m.regBanks) +
        m.mapOverhead);
    if (tables && !tables->empty()) {
        uint64_t tableWords = 0;
        for (const auto &tab : *tables)
            tableWords += tab.data.size();
        // Broadcast the tables into the L0 stores (or prime the cached
        // region): bandwidth-limited copy.
        t += cyclesToTicks(
            divCeil(tableWords, m.memParams.smcWordsPerCycle));
    }

    uint64_t groups = divCeil(numRecords, plan.unroll);
    stats.groups = groups;

    // Successive activations pipeline: a new activation begins once the
    // previous one's instructions have all *issued* (their reservation
    // stations are free for revitalized re-use -- the S-morph maps
    // iterations into spare frames) and its register writes have
    // committed (the next iteration's Reads depend on them), plus the
    // revitalize broadcast -- or a full re-map on machines without
    // instruction revitalization. The run as a whole ends when the last
    // activation fully drains.
    Tick drain = t;
    Tick nextStart = t;
    actMaxWrite = t;

    // Run one activation and compute when the next may begin: the
    // initiation interval is the largest resource occupancy of this
    // activation (frames double-buffer, so latency is hidden), floored
    // by the revitalize broadcast -- or by the re-map time on machines
    // without instruction revitalization -- and ordered after this
    // activation's register-write commits (true dependences: loop
    // carries, cross-block temporaries).
    auto paceActivation = [&](const isa::MappedBlock &block, bool first,
                              Tick gapTicks) {
        snapshotGrants();
        runActivation(block, nextStart, first, stats);
        drain = std::max(drain, actMaxTick);
        Tick ii = std::max(busySinceSnapshot(), gapTicks);
        Tick prev = nextStart;
        nextStart = std::max(nextStart + ii, actMaxWrite + gapTicks);
        if (!first) {
            ++*revitalizesStat;
            DPRINTF(Revit,
                    "revitalize %s gap=%" PRIu64 " next at %" PRIu64,
                    block.name.c_str(), gapTicks, nextStart);
            OBS_SIM_SPAN(Revit, "revitalize", prev, gapTicks,
                         signatureStreak);
        }
        DPRINTF(Engine,
                "pace: ii=%" PRIu64 " delta=%" PRIu64 " drainLen=%" PRIu64,
                ii, nextStart - prev, actMaxTick - prev);
        if (sampler)
            sampler->maybeSample(drain);
    };

    const bool ffEligible =
        epoch::fastForwardEnabled() && m.mech.instRevitalize;
    uint64_t armThreshold = epoch::armStreak();
    unsigned epochAttempts = 0;

    // Record two consecutive *units* starting at unit u, lower them
    // through the epoch pass pipeline, and -- when every validation
    // holds -- replay the remaining units arithmetically. A unit is the
    // repeating schedule quantum: one activation when the plan is
    // resident, one full group (every segment mapped and activated)
    // otherwise. runUnit(n) executes unit n through the event kernel;
    // setUnitContext(n) re-establishes the sequencer-owned register
    // state for unit n (also called before each replayed unit);
    // unitBlocks names the block behind each activation of a unit and
    // blocks lists the distinct blocks for classification. Returns how
    // many units were consumed: the two recorded ones are real
    // simulation either way, so a failed lowering costs nothing but the
    // controller backoff.
    auto tryEpoch = [&](uint64_t u, uint64_t totalUnits,
                        const std::vector<const MappedBlock *> &unitBlocks,
                        const std::vector<const MappedBlock *> &blocks,
                        auto &&setUnitContext, auto &&runUnit) -> uint64_t {
        epoch::EpochInput in;
        in.blocks = blocks;
        in.smcMechanism = m.mech.smc;
        in.l0DataStore = m.mech.l0DataStore;
        in.instRevitalize = m.mech.instRevitalize;
        uint64_t remaining = totalUnits - u - 2;
        uint64_t cap = epoch::maxIterationsPerEpoch();
        in.iterations = cap ? std::min(remaining, cap) : remaining;

        captureEpochSnapshot(in.s0, stats);
        auto record = [&](uint64_t unit, epoch::RecordedIteration &r) {
            Tick origin = nextStart;
            epochRec = &r;
            runUnit(unit);
            epochRec = nullptr;
            r.start = origin;
            r.drainLen = actMaxTick - origin;
            r.issueLen = actMaxIssue - origin;
            r.writeLen = actMaxWrite - origin;
            r.unitDrainLen = drain - origin;
            r.fired = r.fires.size();
            captureEpochTails(r.tails, origin);
        };
        record(u, in.r1);
        captureEpochSnapshot(in.s1, stats);
        record(u + 1, in.r2);
        captureEpochSnapshot(in.s2, stats);
        in.period = in.r2.start - in.r1.start;
        in.period2 = nextStart - in.r2.start;

        epoch::EpochLower lower(in);
        if (!lower.ok()) {
            DPRINTF(Epoch, "bail at unit %" PRIu64 " in %s: %s", u,
                    lower.failedPass().c_str(),
                    lower.failureDetail().c_str());
            OBS_SIM_INSTANT(Epoch, "bail", nextStart, u);
            armThreshold *= 2;
            ++epochAttempts;
            return 2;
        }

        const epoch::EpochPlan &ep = lower.plan();
        const uint64_t iters = in.iterations;
        DPRINTF(Epoch,
                "enter at unit %" PRIu64 ": period=%" PRIu64
                " ticks, %" PRIu64 " events/unit, replaying %" PRIu64
                " units",
                u, ep.period, ep.eqExecuted, iters);

        Tick firstStart = nextStart;
        Tick start = firstStart;
        uint64_t pendingIters = 0;
        for (uint64_t i = 0; i < iters; ++i) {
            // The sequencer still owns the record-group pointer.
            setUnitContext(u + 2 + i);
            replayEpochFires(unitBlocks, ep);

            // The streak either keeps growing (no reset inside the
            // unit) or lands on the same value after every unit; the
            // passes proved which.
            if (ep.sigStreakAdditive)
                signatureStreak =
                    uint64_t(int64_t(signatureStreak) + ep.sigStreakDelta);
            else
                signatureStreak = ep.sigStreakEnd;

            stats.activations += ep.activations;
            stats.mappings += ep.mappings;
            stats.instsExecuted += ep.instsExecuted;
            stats.usefulOps += ep.usefulOps;
            ffScheduledOffset += ep.eqScheduled;
            ffExecutedOffset += ep.eqExecuted;
            ffEventsSavedN += ep.eqExecuted;
            ffIterationsN += ep.activations;
            ++pendingIters;

            drain = std::max(drain, start + ep.unitDrainLen);
            if (sampler && sampler->due(drain)) {
                // Bring every bulk counter current before the sampler
                // reads the groups, exactly as a simulated unit would
                // have left them.
                applyEpochCounters(ep, pendingIters);
                pendingIters = 0;
                sampler->maybeSample(drain);
            }
            start += ep.period;
        }
        lastSignature = ep.sigLast;
        applyEpochCounters(ep, pendingIters);
        shiftEpochCalendars(ep, iters);

        Tick lastStart = start - ep.period;
        nextStart = start;
        actMaxTick = lastStart + ep.drainLen;
        actMaxIssue = lastStart + ep.issueLen;
        actMaxWrite = lastStart + ep.writeLen;
        ++ffEpochsN;
        OBS_SIM_SPAN(Epoch, "epoch", firstStart, ep.period * iters, iters);
        DPRINTF(Epoch,
                "exit at unit %" PRIu64 ": clock advanced to %" PRIu64
                ", %" PRIu64 " events saved",
                u + 2 + iters, nextStart, ep.eqExecuted * iters);
        return 2 + iters;
    };

    if (plan.resident()) {
        const auto &seg = plan.segments[0];
        uint64_t totalActs = groups * seg.activations;
        Tick mapTicks = cyclesToTicks(
            divCeil(seg.block.insts.size(), m.mapBandwidth) + m.mapOverhead);
        Tick gap = m.mech.instRevitalize
                       ? cyclesToTicks(m.revitalizeDelay)
                       : mapTicks;
        nextStart += mapTicks;
        stats.mappings++;
        OBS_SIM_SPAN(Engine, "map", nextStart - mapTicks, mapTicks,
                     seg.block.insts.size());

        const std::vector<const MappedBlock *> unitBlocks = {&seg.block};
        auto setCtx = [&](uint64_t act) {
            rf.at(plan.recBaseReg) = (act / seg.activations) * plan.unroll;
        };
        auto runUnit = [&](uint64_t act) {
            setCtx(act);
            paceActivation(seg.block, false, gap);
        };

        uint64_t a = 0;
        while (a < totalActs) {
            bool first = a == 0;
            if (!first && !m.mech.instRevitalize) {
                stats.mappings++;
                first = true; // a fresh mapping re-fires everything
            }
            // Steady state (and at least one activation to replay after
            // the two recorded ones): try to fast-forward.
            if (ffEligible && !first && signatureStreak >= armThreshold &&
                totalActs - a >= 3 &&
                epochAttempts < epoch::maxAttemptsPerRun) {
                a += tryEpoch(a, totalActs, unitBlocks, unitBlocks, setCtx,
                              runUnit);
                continue;
            }
            // The sequencer owns the record-group pointer.
            setCtx(a);
            paceActivation(seg.block, first, gap);
            ++a;
        }
    } else {
        // Group-level epochs: when the plan cycles through several
        // segments, no single activation's signature repeats
        // back-to-back, but the whole group -- every segment mapped and
        // all its activations run, in order -- is the steady-state
        // quantum. Arm on a streak of identical *group* digests (the
        // fold of every activation signature in the group) and hand the
        // same record/lower/replay machinery one group per unit.
        std::vector<const MappedBlock *> unitBlocks, segBlocks;
        for (const auto &seg : plan.segments) {
            segBlocks.push_back(&seg.block);
            for (uint64_t a = 0; a < seg.activations; ++a)
                unitBlocks.push_back(&seg.block);
        }

        // Replay applies stat deltas at unit-end granularity, so a
        // sampler wanting rows mid-group could not be served
        // bit-identically; groups fast-forward only while sampling is
        // off (the resident path keeps per-activation exactness).
        const bool ffGroups =
            ffEligible && (!sampler || sampler->intervalTicks() == 0);
        uint64_t groupStreak = 0;
        uint64_t lastGroupDigest = 0;

        auto setCtx = [&](uint64_t grp) {
            rf.at(plan.recBaseReg) = grp * plan.unroll;
        };
        auto runUnit = [&](uint64_t grp) {
            setCtx(grp);
            obs::SignatureHash groupHash;
            for (const auto &seg : plan.segments) {
                Tick mapTicks =
                    cyclesToTicks(divCeil(seg.block.insts.size(),
                                          m.mapBandwidth) +
                                  m.mapOverhead);
                Tick gap = m.mech.instRevitalize
                               ? cyclesToTicks(m.revitalizeDelay)
                               : mapTicks;
                // A different block must be fetched and mapped.
                nextStart = std::max(nextStart, actMaxWrite) + mapTicks;
                stats.mappings++;
                OBS_SIM_SPAN(Engine, "map", nextStart - mapTicks, mapTicks,
                             seg.block.insts.size());
                for (uint64_t a = 0; a < seg.activations; ++a) {
                    bool first = a == 0;
                    if (!first && !m.mech.instRevitalize) {
                        stats.mappings++;
                        first = true;
                    }
                    paceActivation(seg.block, first, gap);
                    groupHash.add(lastSignature);
                }
            }
            uint64_t digest = groupHash.digest();
            if (grp > 0 && digest == lastGroupDigest)
                ++groupStreak;
            else
                groupStreak = 0;
            lastGroupDigest = digest;
        };

        uint64_t g = 0;
        while (g < groups) {
            if (ffGroups && g > 0 && groupStreak >= armThreshold &&
                groups - g >= 3 &&
                epochAttempts < epoch::maxAttemptsPerRun) {
                g += tryEpoch(g, groups, unitBlocks, segBlocks, setCtx,
                              runUnit);
                continue;
            }
            runUnit(g);
            ++g;
        }
    }

    stats.cycles = ticksToCycles(drain - curTick);
    curTick = drain;
    return stats;
}

void
BlockEngine::runActivation(const MappedBlock &block, Tick startTick,
                           bool firstActivation, RunStats &stats)
{
    // (Re)initialize per-instruction state.
    if (firstActivation) {
        state.assign(block.insts.size(), InstState{});
    } else {
        for (size_t i = 0; i < block.insts.size(); ++i) {
            auto &st = state[i];
            st.fired = false;
            st.sawOperand = false;
            const auto &mi = block.insts[i];
            for (unsigned s = 0; s < isa::maxSrcs; ++s) {
                if (!mi.persistent[s])
                    st.present[s] = false;
            }
        }
    }
    DPRINTF(Engine, "activation of %s starts at %" PRIu64 "%s",
            block.name.c_str(), startTick,
            firstActivation ? " (fresh mapping)" : "");

    firedCount = 0;
    expectedCount = 0;
    actMaxTick = startTick;
    actMaxIssue = startTick;
    actMaxWrite = startTick;
    sigHash.reset();

    // Activations may start earlier than the previous activation's last
    // event (frames pipeline); the queue is empty here, so rewinding its
    // clock is safe.
    eq.reset();

    curBlock = &block;
    curStats = &stats;
    seedTick = startTick;
    seedFresh = firstActivation;

    // One event seeds the whole activation. The seeds are the first
    // thing the queue executes, so running them back to back inside one
    // callback is order-identical to scheduling one event per seed:
    // either way every seed fires before any same-tick delivery (those
    // carry later sequence numbers by construction).
    seedEvent.schedule(startTick);

    eq.run();

    panic_if(firedCount != expectedCount,
             "block %s deadlocked: fired %" PRIu64 " of %" PRIu64
             " instructions",
             block.name.c_str(), firedCount, expectedCount);

    // Commit: apply buffered register writes.
    for (const auto &w : pendingWrites)
        rf.at(w.first) = w.second;
    pendingWrites.clear();

    // Sustained issue width of this activation: instructions fired over
    // the issue span (drain excluded -- it overlaps the next activation).
    Cycles span = ticksToCycles(actMaxIssue - startTick) + 1;
    double width = double(firedCount) / double(span);
    issueWidth->sample(width);
    ++*activationsStat;

    // Epoch recording: the per-activation substructure replay needs to
    // partition the unit's fire trace and stay bit-exact on the sampled
    // issue width (the division is not an integer).
    if (epochRec) {
        epochRec->fireCounts.push_back(firedCount);
        epochRec->issueSamples.push_back(width);
        epochRec->fresh.push_back(firstActivation ? 1 : 0);
    }

    // Close the occupancy signature with the activation's envelope: two
    // iterations with identical fire schedules but different drain or
    // commit shapes are not the same steady state.
    sigHash.add(actMaxTick - startTick);
    sigHash.add(actMaxIssue - startTick);
    sigHash.add(actMaxWrite - startTick);
    sigHash.add(firedCount);
    uint64_t digest = sigHash.digest();
    if (!firstActivation && digest == lastSignature) {
        ++signatureStreak;
        ++*signatureRepeatsStat;
    } else {
        signatureStreak = 0;
    }
    lastSignature = digest;
    DPRINTF(Epoch,
            "signature %016" PRIx64 " streak=%" PRIu64 " fired=%" PRIu64
            " drain=%" PRIu64,
            digest, signatureStreak, firedCount, actMaxTick - startTick);

    OBS_SIM_SPAN(Engine, "activation", startTick, actMaxTick - startTick,
                 firedCount);
    OBS_SIM_COUNTER(EventQ, "eventsExecuted", actMaxTick,
                    eq.executedEvents());

    stats.activations++;
    ++eventActivationsN;
}

void
BlockEngine::seedActivation()
{
    const MappedBlock &block = *curBlock;
    for (size_t i = 0; i < block.insts.size(); ++i) {
        const auto &mi = block.insts[i];
        if (mi.onceOnly && !seedFresh)
            continue;
        ++expectedCount;
        bool ready = true;
        for (unsigned s = 0; s < mi.numSrcs; ++s)
            ready &= state[i].present[s];
        if (ready)
            execute(block, static_cast<uint32_t>(i), seedTick, *curStats);
    }
}

void
BlockEngine::execute(const MappedBlock &block, uint32_t idx, Tick ready,
                     RunStats &stats)
{
    const MappedInst &mi = block.insts[idx];
    InstState &st = state[idx];
    panic_if(st.fired, "instruction %u of %s fired twice", idx,
             block.name.c_str());
    st.fired = true;
    ++firedCount;
    ++stats.instsExecuted;
    if (!mi.overhead)
        ++stats.usefulOps;

    // Operand-wait skew: how long the first-arriving operand sat in the
    // reservation station before the last one enabled the fire.
    if (st.sawOperand && ready > st.firstOperand)
        operandWait->sample(double(ready - st.firstOperand));
    DPRINTF(Exec, "fire %s at %" PRIu64, isa::disasm(mi).c_str(), ready);
    OBS_SIM_INSTANT(Exec, "fire", ready, idx);

    // Feed the occupancy signature: which instruction fired, how far
    // into the activation. Identical sequences => identical iterations.
    sigHash.add(idx);
    sigHash.add(ready - seedTick);

    // Epoch recording: capture the fire schedule in invocation order.
    // The event kernel executes producers before their consumers (even
    // same-tick), so replaying deliveries in this order is causal.
    if (epochRec)
        epochRec->fires.push_back({idx, ready - seedTick});

    Word a = st.operand[0];
    Word b = mi.immB ? mi.imm : st.operand[1];
    Word c = st.operand[2];

    noc::Coord here = tileOf(mi);
    unsigned row = mi.row;
    Tick done;
    st.result.assign(1, Word(0));

    switch (mi.op) {
      case Op::Read: {
        unsigned bank = static_cast<unsigned>(mi.imm) % m.regBanks;
        Tick grant = regRead[bank].acquire(ready);
        actMaxIssue = std::max(actMaxIssue, grant);
        done = grant + cyclesToTicks(m.regLatency) + m.hopTicks;
        st.result[0] = rf.at(static_cast<size_t>(mi.imm));
        break;
      }
      case Op::Write: {
        unsigned bank = static_cast<unsigned>(mi.imm) % m.regBanks;
        Tick grant = regWrite[bank].acquire(ready + m.hopTicks);
        actMaxIssue = std::max(actMaxIssue, grant);
        done = grant + cyclesToTicks(m.regLatency);
        pendingWrites.emplace_back(static_cast<unsigned>(mi.imm), a);
        actMaxTick = std::max(actMaxTick, done);
        actMaxWrite = std::max(actMaxWrite, done);
        return; // no targets
      }
      case Op::Ld: {
        Tick issue = issuePort(mi.row, mi.col).acquire(ready);
        actMaxIssue = std::max(actMaxIssue, issue);
        Tick atEdge = mesh.routeToEdge(here, issue + ticksPerCycle);
        Word value = 0;
        Tick served;
        if (mi.space == MemSpace::Smc) {
            served = mem.streamRead(row, a, 1, atEdge, &value);
            if (m.mech.smc) {
                // The response rides the row's streaming channel.
                done = channelDeliver(row, 0, here, served);
                st.result[0] = value;
                break;
            }
        } else {
            served = mem.cachedRead(row, a, atEdge, value);
        }
        done = mesh.routeFromEdge(row, here, served);
        st.result[0] = value;
        break;
      }
      case Op::Lmw: {
        Tick issue = issuePort(mi.row, mi.col).acquire(ready);
        actMaxIssue = std::max(actMaxIssue, issue);
        Tick atEdge = mesh.routeToEdge(here, issue + ticksPerCycle);
        st.result.assign(mi.lmwCount, Word(0));
        Tick served = mem.streamRead(row, a, mi.lmwCount, atEdge,
                                     st.result.data(), mi.lmwStride);
        // Words fan out over the row's dedicated streaming channel
        // straight to the consumers.
        for (const auto &t : mi.targets) {
            const auto &dst = block.insts[t.inst];
            Tick arrive =
                channelDeliver(row, t.wordIdx, tileOf(dst), served);
            deliver(block, idx, t, st.result.at(t.wordIdx), arrive, stats);
        }
        actMaxTick = std::max(actMaxTick, served);
        return;
      }
      case Op::St: {
        Tick issue = issuePort(mi.row, mi.col).acquire(ready);
        actMaxIssue = std::max(actMaxIssue, issue);
        Tick atEdge = mesh.routeToEdge(here, issue + ticksPerCycle);
        if (mi.space == MemSpace::Smc)
            done = mem.streamWrite(row, a, b, atEdge);
        else
            done = mem.cachedWrite(row, a, b, atEdge);
        // Completion token: the lowering hangs memory-ordering edges off
        // stores whose region is also read within the block.
        st.result[0] = b;
        break;
      }
      case Op::Tld: {
        panic_if(!tables || mi.tableId >= tables->size(),
                 "Tld without table %u", mi.tableId);
        const auto &table = (*tables)[mi.tableId].data;
        Word value = table[a & (table.size() - 1)];
        if (m.mech.l0DataStore) {
            Tick grant = l0Ports[mi.row * m.cols + mi.col].acquire(ready);
            actMaxIssue = std::max(actMaxIssue, grant);
            done = grant + cyclesToTicks(m.l0Latency);
        } else {
            // Table lives in cached memory; pay a full L1 round trip.
            Tick issue = issuePort(mi.row, mi.col).acquire(ready);
            actMaxIssue = std::max(actMaxIssue, issue);
            Tick atEdge = mesh.routeToEdge(here, issue + ticksPerCycle);
            Addr byteAddr = tableByteBase[mi.tableId] + a * wordBytes;
            Tick served = mem.cachedTiming(row, byteAddr, atEdge, false);
            done = mesh.routeFromEdge(row, here, served);
        }
        st.result[0] = value;
        break;
      }
      default: {
        // Ordinary computation on the tile's functional units.
        const auto &info = isa::opInfo(mi.op);
        Tick issue = issuePort(mi.row, mi.col).acquire(ready);
        if (info.fu == isa::FuClass::FpDiv) {
            issue = divPorts[mi.row * m.cols + mi.col].acquire(issue);
        }
        actMaxIssue = std::max(actMaxIssue, issue);
        done = issue + cyclesToTicks(info.latency);
        st.result[0] = isa::evalOp(mi.op, a, b, c, mi.imm);
        break;
      }
    }

    actMaxTick = std::max(actMaxTick, done);

    // Serialize operand injection at the producer, then route each copy.
    sim::Resource &inject = injectPorts[mi.row * m.cols + mi.col];
    for (const auto &t : mi.targets) {
        const auto &dst = block.insts[t.inst];
        Tick injT = inject.acquire(done);
        Tick arrive = mesh.route(here, tileOf(dst), injT);
        if (mi.regTile)
            arrive += m.hopTicks; // edge crossing from the register tile
        deliver(block, idx, t, st.result[0], arrive, stats);
    }
}

Tick
BlockEngine::channelDeliver(unsigned row, uint8_t wordIdx, noc::Coord dst,
                            Tick ready)
{
    Tick grant = mem.smc().channelLane(row, wordIdx).acquire(ready);
    unsigned vdist = dst.row > row ? dst.row - row : row - dst.row;
    return grant + 1 + (dst.col + vdist) * m.hopTicks;
}

void
BlockEngine::deliver(const MappedBlock &block, uint32_t producer,
                     const isa::Target &target, Word value, Tick when,
                     RunStats &stats)
{
    (void)producer;
    (void)block;
    (void)stats;
    actMaxTick = std::max(actMaxTick, when);
    uint32_t idx = target.inst;
    uint8_t slot = target.srcSlot;

    // The capture must fit an InlineFn: this + payload words only. The
    // activation context (block, stats) is reached through members.
    eq.schedule(when, [this, idx, slot, value, when] {
        const MappedInst &mi = curBlock->insts[idx];
        InstState &st = state[idx];
        panic_if(slot >= mi.numSrcs,
                 "operand delivered to bad slot %u of %s", slot,
                 isa::disasm(mi).c_str());
        st.operand[slot] = value;
        st.present[slot] = true;
        if (!st.fired && !st.sawOperand) {
            st.sawOperand = true;
            st.firstOperand = when;
        }
        if (st.fired)
            return;
        if (mi.onceOnly && firedCount >= expectedCount)
            return;
        for (unsigned s = 0; s < mi.numSrcs; ++s)
            if (!st.present[s])
                return;
        execute(*curBlock, idx, when, *curStats);
    });
}

void
BlockEngine::captureEpochSnapshot(epoch::Snapshot &s, const RunStats &stats)
{
    s.res.resize(tracked.size());
    for (size_t i = 0; i < tracked.size(); ++i)
        s.res[i] = {tracked[i]->grants(), tracked[i]->waitedTicks()};

    // Raw (pre-preDump) copies: derived stats recompute from these at
    // dump time, so they need no deltas of their own.
    s.groups.clear();
    StatGroup *groups[] = {&engStats, &mesh.statsGroup(),
                           &mem.smc().statsGroup(), &mem.statsGroup()};
    for (StatGroup *g : groups) {
        epoch::GroupRaw raw;
        raw.name = g->groupName();
        for (const auto &[n, st] : g->all())
            raw.scalars[n] = st.get();
        raw.dists = g->allDistributions();
        raw.vectors = g->allVectors();
        s.groups.push_back(std::move(raw));
    }

    s.eqScheduled = eq.scheduledEvents();
    s.eqExecuted = eq.executedEvents();
    s.eqDiscarded = eq.discardedEvents();

    s.smcReads = mem.smc().reads();
    s.smcWrites = mem.smc().writes();
    s.smcWords = mem.smc().wordsRead();
    s.smcLast = mem.smc().lastBankActivity();

    s.meshRouted = mesh.operandsRouted();
    s.meshHops = mesh.totalHops();
    s.meshContention = mesh.contentionTicks();
    s.meshLast = mesh.lastLinkActivity();

    s.l1Hits = mem.l1().hits();
    s.l1Misses = mem.l1().misses();
    s.l2Hits = mem.l2().hits();
    s.l2Misses = mem.l2().misses();
    s.mainMemAccesses = mem.mainMemory().accesses();

    s.instsExecuted = stats.instsExecuted;
    s.usefulOps = stats.usefulOps;
    s.activations = stats.activations;
    s.mappings = stats.mappings;

    s.sigLast = lastSignature;
    s.sigStreak = signatureStreak;
}

void
BlockEngine::captureEpochTails(std::vector<epoch::ResourceTail> &out,
                               Tick origin)
{
    out.resize(tracked.size());
    for (size_t i = 0; i < tracked.size(); ++i) {
        tracked[i]->tailSince(origin, out[i].busy);
        out[i].lastEnd = int64_t(tracked[i]->nextFree()) - int64_t(origin);
    }
}

void
BlockEngine::replayEpochFires(
    const std::vector<const MappedBlock *> &unitBlocks,
    const epoch::EpochPlan &plan)
{
    // The recorded order is the event kernel's invocation order, so
    // every producer precedes its consumers here (even same-tick fires
    // carry later sequence numbers). Writing result words straight into
    // consumer operand slots is therefore causal. Timing is untouched:
    // the plan already proved it identical every unit.
    size_t fi = 0;
    for (size_t act = 0; act < plan.fireCounts.size(); ++act) {
        const MappedBlock &block = *unitBlocks[act];
        // A fresh mapping resets instruction state, exactly as
        // runActivation's (re)initialization would.
        if (plan.fresh[act])
            state.assign(block.insts.size(), InstState{});
        for (uint64_t n = 0; n < plan.fireCounts[act]; ++n, ++fi) {
            const auto &f = plan.fires[fi];
            const MappedInst &mi = block.insts[f.idx];
            InstState &st = state[f.idx];
            Word a = st.operand[0];
            Word b = mi.immB ? mi.imm : st.operand[1];
            Word c = st.operand[2];
            Word result = 0;
            bool deliverResult = true;
            switch (mi.op) {
              case Op::Read:
                result = rf.at(static_cast<size_t>(mi.imm));
                break;
              case Op::Write:
                pendingWrites.emplace_back(static_cast<unsigned>(mi.imm),
                                           a);
                deliverResult = false;
                break;
              case Op::Ld:
                result = mem.smc().peek(a);
                break;
              case Op::Lmw:
                for (const auto &t : mi.targets)
                    state[t.inst].operand[t.srcSlot] =
                        mem.smc().peek(a + Addr(t.wordIdx) * mi.lmwStride);
                deliverResult = false;
                break;
              case Op::St:
                mem.smc().poke(a, b);
                result = b;
                break;
              case Op::Tld: {
                const auto &table = (*tables)[mi.tableId].data;
                result = table[a & (table.size() - 1)];
                break;
              }
              default:
                result = isa::evalOp(mi.op, a, b, c, mi.imm);
                break;
            }
            if (deliverResult)
                for (const auto &t : mi.targets)
                    state[t.inst].operand[t.srcSlot] = result;
        }

        // Commit register writes at the activation boundary, exactly as
        // the simulated activation would, then take its issue-width
        // sample with the recorded (bit-exact) value.
        for (const auto &w : pendingWrites)
            rf.at(w.first) = w.second;
        pendingWrites.clear();
        issueWidth->sample(plan.issueSamples[act]);
    }
}

void
BlockEngine::applyEpochCounters(const epoch::EpochPlan &plan, uint64_t iters)
{
    if (iters == 0)
        return;

    StatGroup *groups[] = {&engStats, &mesh.statsGroup(),
                           &mem.smc().statsGroup(), &mem.statsGroup()};
    panic_if(plan.groups.size() != std::size(groups),
             "epoch plan group count mismatch");
    for (size_t gi = 0; gi < plan.groups.size(); ++gi) {
        const epoch::GroupAdvance &adv = plan.groups[gi];
        StatGroup *g = groups[gi];
        for (const auto &[name, delta] : adv.scalars) {
            Stat *st = g->findScalar(name);
            panic_if(!st, "epoch plan names unknown scalar %s.%s",
                     g->groupName().c_str(), name.c_str());
            st->fastForward(delta, iters);
        }
        for (const auto &[name, d] : adv.dists) {
            Distribution *dist = g->findDistribution(name);
            panic_if(!dist, "epoch plan names unknown distribution %s.%s",
                     g->groupName().c_str(), name.c_str());
            dist->fastForward(d.counts, d.under, d.over, d.samples, d.sum,
                              d.sumSq, iters);
        }
        for (const auto &[name, delta] : adv.vectors) {
            VectorStat *v = g->findVector(name);
            panic_if(!v, "epoch plan names unknown vector %s.%s",
                     g->groupName().c_str(), name.c_str());
            v->fastForward(delta, iters);
        }
    }

    for (size_t i = 0; i < tracked.size(); ++i) {
        const auto &r = plan.res[i];
        if (r.cls == epoch::ResClass::Shift)
            tracked[i]->fastForwardCounters(r.grants * iters,
                                            r.wait * iters);
    }

    Tick span = plan.period * iters;
    mem.smc().fastForward(plan.smcReads * iters, plan.smcWrites * iters,
                          plan.smcWords * iters,
                          plan.smcLastAdvances ? span : 0);
    mesh.fastForward(plan.meshRouted * iters, plan.meshHops * iters,
                     plan.meshContention * iters,
                     plan.meshLastAdvances ? span : 0);
}

void
BlockEngine::shiftEpochCalendars(const epoch::EpochPlan &plan,
                                 uint64_t iters)
{
    Tick shift = plan.period * iters;
    for (size_t i = 0; i < tracked.size(); ++i)
        if (plan.res[i].cls == epoch::ResClass::Shift)
            tracked[i]->shiftCalendar(shift);
}

} // namespace dlp::core
