/**
 * @file
 * Stable streaming hashes: FNV-1a in 64- and 128-bit widths.
 *
 * The simulator needs hashes that are *stable* — identical across
 * processes, runs, compilers and (for the on-disk result store) across
 * binary versions — so std::hash is out: its values are unspecified and
 * may be seeded per process. FNV-1a is tiny, fully specified, and fast
 * enough for the sizes we hash (kernel IR graphs, machine-parameter
 * blocks, result JSON text up to a few hundred KB).
 *
 * Two forms:
 *
 *  - Fnv1a64: the classic byte-stream FNV-1a; also exposes the
 *    word-folding step (fnv1aStep) the execution engines' occupancy
 *    SignatureHash (obs/timeline.hh) builds on, so both hashers share
 *    one set of constants and one idiom.
 *  - Fnv1a128: the 128-bit variant (via the compiler's unsigned
 *    __int128), used where collisions must be ignorable by
 *    construction: content-addressed store keys and entry checksums.
 *
 * Multi-field keys fold each field through add*() in a fixed order;
 * addString() length-prefixes so ("ab","c") and ("a","bc") differ.
 */

#ifndef DLP_COMMON_HASH_HH
#define DLP_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace dlp {

/// FNV-1a 64-bit parameters (Fowler–Noll–Vo, the specified constants).
/// The basis is written in hex: its decimal form is one dropped digit
/// away from a famous wrong constant (…65603 vs …656037).
constexpr uint64_t fnv64OffsetBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t fnv64Prime = 0x100000001b3ULL;

/**
 * One FNV-1a folding step over a whole 64-bit unit (not a byte). This
 * is the obs::SignatureHash idiom: two ALU ops per value, good mixing
 * for equality detection of event schedules.
 */
constexpr uint64_t
fnv1aStep(uint64_t h, uint64_t v)
{
    return (h ^ v) * fnv64Prime;
}

/** Streaming byte-wise FNV-1a 64. */
class Fnv1a64
{
  public:
    void
    add(const void *data, size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i)
            h = (h ^ p[i]) * fnv64Prime;
    }

    /** Fold a 64-bit value as 8 little-endian bytes (canonical form). */
    void
    addU64(uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        add(b, 8);
    }

    /** Length-prefixed string fold (unambiguous field boundaries). */
    void
    addString(const std::string &s)
    {
        addU64(s.size());
        add(s.data(), s.size());
    }

    uint64_t digest() const { return h; }
    void reset() { h = fnv64OffsetBasis; }

  private:
    uint64_t h = fnv64OffsetBasis;
};

/** A 128-bit digest, comparable and printable as 32 hex digits. */
struct Hash128
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator==(const Hash128 &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const Hash128 &o) const { return !(*this == o); }
    bool operator<(const Hash128 &o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }

    /** Lower-case fixed-width hex, hi first: 32 characters. */
    std::string hex() const;
};

/** Streaming byte-wise FNV-1a 128 (unsigned __int128 arithmetic). */
class Fnv1a128
{
  public:
    Fnv1a128() { reset(); }

    void
    add(const void *data, size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i)
            h = (h ^ p[i]) * prime();
    }

    void
    addU64(uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        add(b, 8);
    }

    void
    addString(const std::string &s)
    {
        addU64(s.size());
        add(s.data(), s.size());
    }

    Hash128
    digest() const
    {
        return {static_cast<uint64_t>(h >> 64), static_cast<uint64_t>(h)};
    }

    void
    reset()
    {
        // Offset basis 0x6c62272e07bb014262b821756295c58d.
        h = (static_cast<unsigned __int128>(0x6c62272e07bb0142ULL) << 64) |
            0x62b821756295c58dULL;
    }

  private:
    /// FNV 128-bit prime: 2^88 + 2^8 + 0x3b.
    static unsigned __int128
    prime()
    {
        return (static_cast<unsigned __int128>(1) << 88) | 0x13bULL;
    }

    unsigned __int128 h;
};

/** Convenience: FNV-1a 128 of one byte string. */
Hash128 fnv1a128(const std::string &bytes);

} // namespace dlp

#endif // DLP_COMMON_HASH_HH
