file(REMOVE_RECURSE
  "CMakeFiles/dlp_noc.dir/mesh.cc.o"
  "CMakeFiles/dlp_noc.dir/mesh.cc.o.d"
  "libdlp_noc.a"
  "libdlp_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
