#include "mem/smc.hh"

#include "common/bitutils.hh"
#include "obs/timeline.hh"

namespace dlp::mem {

SmcSubsystem::SmcSubsystem(const MemParams &params)
    : storage(params.rows * params.smcBankWords(), 0),
      bankLatency(cyclesToTicks(params.smcLatency)),
      wordsPerTick(params.smcWordsPerCycle / ticksPerCycle
                       ? params.smcWordsPerCycle / ticksPerCycle : 1),
      bankPorts(params.rows, sim::Resource(1)),
      storeBufPorts(params.rows, sim::Resource(1)),
      chanLanes(params.rows * 2, sim::Resource(1))
{
    panic_if(params.rows == 0, "SMC needs at least one row bank");
    initStats();
}

void
SmcSubsystem::initStats()
{
    bankConflicts = &statGroup.vector("bankConflicts", bankPorts.size());
    burstDist = &statGroup.distribution("readBurstWords", 0.0, 64.0, 16);
    statGroup.formula("avgWordsPerRead", [this] {
        return nReads ? double(nWordsRead) / double(nReads) : 0.0;
    });

    // Derived at dump time: how busy each row kept its bank port and
    // streaming-channel lanes over the active interval ("row-streaming
    // occupancy" -- the structure Section 4.2's channels are sized by).
    statGroup.setPreDump([this] {
        statGroup.scalar("reads").set(double(nReads));
        statGroup.scalar("writes").set(double(nWrites));
        statGroup.scalar("wordsRead").set(double(nWordsRead));

        Distribution &occ =
            statGroup.distribution("rowStreamOccupancy", 0.0, 1.0, 20);
        occ.reset();
        VectorStat &bankBusy =
            statGroup.vector("bankBusyTicks", bankPorts.size());
        bankBusy.reset();
        if (lastActivity == 0)
            return;
        for (size_t row = 0; row < bankPorts.size(); ++row) {
            double busy = double(bankPorts[row].grants()) *
                          double(bankPorts[row].interval());
            bankBusy.set(row, busy);
            double laneBusy = busy;
            for (unsigned lane = 0; lane < 2; ++lane) {
                const auto &ch = chanLanes[row * 2 + lane];
                laneBusy += double(ch.grants()) * double(ch.interval());
            }
            // Port plus both channel lanes could each be busy every tick.
            occ.sample(laneBusy / (3.0 * double(lastActivity)));
        }
    });
}

Tick
SmcSubsystem::read(unsigned row, Addr wordAddr, unsigned nwords, Tick start,
                   Word *out, unsigned stride)
{
    panic_if(nwords == 0, "zero-length SMC read");
    panic_if(stride == 0, "zero-stride SMC read");
    panic_if(wordAddr + Addr(nwords - 1) * stride >= storage.size(),
             "SMC read past capacity (%" PRIu64 " + %u*%u > %zu)", wordAddr,
             nwords, stride, storage.size());

    if (out) {
        for (unsigned i = 0; i < nwords; ++i)
            out[i] = storage[wordAddr + Addr(i) * stride];
    }

    ++nReads;
    nWordsRead += nwords;
    burstDist->sample(double(nwords));

    // The bank reads whole SRAM lines (4 words): a scalar access
    // occupies the port for a full line slot, while a wide (LMW) read
    // amortizes the port across its words -- the reason the LMW
    // mechanism matters (Section 4.2). Strided vector fetches are
    // conflict-free across the interleaved sub-banks, so they cost the
    // same as contiguous ones (classic vector-memory design).
    constexpr unsigned lineWords = 4;
    uint64_t lines = divCeil(nwords, lineWords);
    uint64_t units = divCeil(lines * lineWords, wordsPerTick);
    Tick grant = bankPort(row).acquireMany(start, units);
    if (grant > start)
        bankConflicts->inc(row);
    Tick done = grant + units + bankLatency;
    lastActivity = std::max(lastActivity, done);
    DPRINTF(SMC,
            "read row %u addr=%" PRIu64 " words=%u stride=%u start=%" PRIu64
            " grant=%" PRIu64 " done=%" PRIu64,
            row, wordAddr, nwords, stride, start, grant, done);
    OBS_SIM_SPAN(SMC, "burst", start, done - start, nwords);
    return done;
}

Tick
SmcSubsystem::write(unsigned row, Addr wordAddr, Word value, Tick start)
{
    panic_if(wordAddr >= storage.size(),
             "SMC write past capacity (%" PRIu64 " >= %zu)", wordAddr,
             storage.size());

    storage[wordAddr] = value;
    ++nWrites;

    // The coalescing store buffer accepts wordsPerTick words per tick;
    // acceptance is completion from the producer's point of view.
    panic_if(row >= storeBufPorts.size(), "bad store-buffer row %u", row);
    Tick grant = storeBufPorts[row].acquireMany(start, 1);
    if (grant > start)
        bankConflicts->inc(row);
    lastActivity = std::max(lastActivity, grant + 1);
    DPRINTF(SMC,
            "write row %u addr=%" PRIu64 " start=%" PRIu64 " accept=%" PRIu64,
            row, wordAddr, start, grant + 1);
    // Amortized drain cost: the buffer coalesces, so draining keeps up
    // with acceptance at the same width; no extra charge here.
    OBS_SIM_SPAN(SMC, "storeAccept", start, grant + 1 - start, row);
    return grant + 1;
}

Tick
SmcSubsystem::dmaTransfer(unsigned row, unsigned nwords, Tick start,
                          MainMemory &mainMem)
{
    panic_if(nwords == 0, "zero-length DMA transfer");
    // The DMA engine streams through both the bank port and the off-chip
    // interface; the slower of the two paces the transfer.
    uint64_t units = divCeil(nwords, wordsPerTick);
    Tick bankGrant = bankPort(row).acquireMany(start, units);
    if (bankGrant > start)
        bankConflicts->inc(row);
    Tick bankDone = bankGrant + units;
    Tick memDone = mainMem.access(start, nwords);
    Tick done = std::max(bankDone, memDone);
    lastActivity = std::max(lastActivity, done);
    DPRINTF(SMC, "dma row %u words=%u start=%" PRIu64 " done=%" PRIu64, row,
            nwords, start, done);
    OBS_SIM_SPAN(SMC, "dma", start, done - start, nwords);
    return done;
}

void
SmcSubsystem::resetTiming()
{
    for (auto &p : bankPorts)
        p.reset();
    for (auto &p : storeBufPorts)
        p.reset();
    for (auto &p : chanLanes)
        p.reset();
    nReads = 0;
    nWrites = 0;
    nWordsRead = 0;
    lastActivity = 0;
    statGroup.resetAll();
}

} // namespace dlp::mem
