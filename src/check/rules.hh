/**
 * @file
 * Internal interfaces between the verifier's rule passes. Public entry
 * points live in check/verify.hh.
 */

#ifndef DLP_CHECK_RULES_HH
#define DLP_CHECK_RULES_HH

#include "check/graph.hh"
#include "check/report.hh"
#include "core/machine.hh"
#include "isa/seq.hh"
#include "kernels/ir.hh"
#include "sched/plan.hh"

namespace dlp::check {

/** Everything a block is verified against besides its own encoding. */
struct BlockCtx
{
    const core::MachineParams &m;
    const kernels::Kernel *kernel = nullptr;      ///< tables, if known
    const sched::StreamLayout *layout = nullptr;  ///< SMC regions, if known
    /// The block re-fires by revitalization (resident plan or a loop
    /// segment), so operand persistence across activations matters.
    bool revitalized = false;
};

/** All block-level passes: well-formedness, cycles, capacity, config,
 * revitalization, and (on sound acyclic blocks) memory ordering. */
void checkBlock(const isa::MappedBlock &block, const BlockCtx &ctx,
                Report &rep);

/** The memory-ordering audit over one sound, acyclic block. */
void checkMemOrder(const isa::MappedBlock &block, const BlockGraph &g,
                   const BlockCtx &ctx, Report &rep);

/** The sequential-program (MIMD) passes. */
void checkSeq(const isa::SeqProgram &prog, const core::MachineParams &m,
              const kernels::Kernel *kernel, Report &rep);

/** L0 lookup-table budget (per program, both execution styles). */
void checkTableBudget(const kernels::Kernel &k,
                      const core::MachineParams &m, Report &rep);

} // namespace dlp::check

#endif // DLP_CHECK_RULES_HH
