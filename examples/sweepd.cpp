/**
 * @file
 * The sweepd daemon: sweep-as-a-service over a Unix-domain socket.
 *
 * Start a server, point one or more sweep_client invocations at it,
 * and identical cells are computed once: warm cells stream from the
 * persistent result store, duplicate cells inside a batch are
 * deduplicated in flight, and cold cells are sharded across forked
 * worker processes.
 *
 *   ./build/examples/sweepd --socket /tmp/sweepd.sock \
 *       --store /tmp/dlp-store --workers 8
 *   ./build/examples/sweep_client --socket /tmp/sweepd.sock \
 *       --kernels fft,lu --configs all
 *
 * Options:
 *   --socket PATH    socket file to listen on (default: sweepd.sock)
 *   --workers N      worker processes for cold cells; <= 1 computes
 *                    inline in the event loop (default: DLP_JOBS,
 *                    else 1; 0 = one per hardware thread)
 *   --store DIR      persistent content-addressed result store
 *                    (also: DLP_STORE=DIR)
 *   --once           serve a single connection, then exit — handy for
 *                    smoke tests and one-shot batch runs
 *
 * The server exits cleanly when a client sends the shutdown op, or on
 * SIGINT/SIGTERM: the request in flight finishes streaming, the socket
 * file is unlinked and the lifetime counters are printed — a ^C or a
 * service manager's stop never leaves a stale socket behind.
 */

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.hh"
#include "driver/job_pool.hh"
#include "serve/server.hh"

using namespace dlp;

namespace {

serve::Server *activeServer = nullptr;

/** Async-signal-safe: requestStop only sets a sig_atomic_t flag. */
void
onStopSignal(int)
{
    if (activeServer)
        activeServer->requestStop();
}

void
installStopHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: the signal interrupts a blocking poll(2) with
    // EINTR so the loop re-checks its stop flag immediately instead of
    // waiting out the poll timeout.
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    serve::ServerOptions opts;
    opts.socketPath = "sweepd.sock";
    opts.workers = driver::JobPool::defaultWorkers();
    if (const char *env = std::getenv("DLP_STORE"); env && *env)
        opts.storeDir = env;

    auto value = [&](int &i) -> const char * {
        fatal_if(i + 1 >= argc, "%s needs an argument", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0) {
            opts.socketPath = value(i);
        } else if (std::strcmp(argv[i], "--workers") == 0) {
            const char *v = value(i);
            opts.workers = unsigned(std::strtoul(v, nullptr, 10));
            if (std::strcmp(v, "0") == 0) {
                unsigned hw = std::thread::hardware_concurrency();
                opts.workers = hw ? hw : 1;
            }
        } else if (std::strncmp(argv[i], "--store=", 8) == 0) {
            opts.storeDir = argv[i] + 8;
        } else if (std::strcmp(argv[i], "--store") == 0) {
            opts.storeDir = value(i);
        } else if (std::strcmp(argv[i], "--once") == 0) {
            opts.once = true;
        } else {
            fatal("unknown option '%s' (see the header of "
                  "examples/sweepd.cpp)", argv[i]);
        }
    }

    unsigned workers = opts.workers;
    std::string storeDir = opts.storeDir;
    serve::Server server(std::move(opts));
    activeServer = &server;
    installStopHandlers();
    std::printf("sweepd: listening on %s (%u worker%s%s%s)\n",
                server.socketPath().c_str(), workers,
                workers == 1 ? "" : "s",
                storeDir.empty() ? "" : ", store ",
                storeDir.c_str());
    std::fflush(stdout);

    server.run();
    activeServer = nullptr;

    const serve::ServerCounters &c = server.counters();
    std::printf("sweepd: done — %llu connection(s), %llu request(s), "
                "%llu cell(s): %llu deduped in flight, %llu store hit(s), "
                "%llu computed, %llu error(s), %llu failed cell(s)\n",
                (unsigned long long)c.connections,
                (unsigned long long)c.requests,
                (unsigned long long)c.cells,
                (unsigned long long)c.dedupedInFlight,
                (unsigned long long)c.storeHits,
                (unsigned long long)c.computed,
                (unsigned long long)c.errors,
                (unsigned long long)c.cellErrors);
    return 0;
}
