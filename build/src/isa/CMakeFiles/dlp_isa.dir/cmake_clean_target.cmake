file(REMOVE_RECURSE
  "libdlp_isa.a"
)
