# Empty dependencies file for test_kernels_interp.
# This may be replaced when dependencies are built.
