#include "ref/linalg.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace dlp::ref {

void
luDecompose(Matrix &m)
{
    size_t n = m.n;
    for (size_t k = 0; k < n; ++k) {
        double pivot = m.at(k, k);
        panic_if(std::fabs(pivot) < 1e-12, "singular pivot at %zu", k);
        for (size_t i = k + 1; i < n; ++i)
            m.at(i, k) /= pivot;
        for (size_t i = k + 1; i < n; ++i) {
            double lik = m.at(i, k);
            for (size_t j = k + 1; j < n; ++j)
                m.at(i, j) = luUpdate(m.at(i, j), lik, m.at(k, j));
        }
    }
}

Matrix
luReconstruct(const Matrix &lu)
{
    size_t n = lu.n;
    Matrix out(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (size_t k = 0; k <= std::min(i, j); ++k) {
                double l = (k == i) ? 1.0 : lu.at(i, k);
                acc += l * lu.at(k, j);
            }
            out.at(i, j) = acc;
        }
    }
    return out;
}

Matrix
makeDominantMatrix(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(n);
    for (size_t i = 0; i < n; ++i) {
        double rowSum = 0.0;
        for (size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            double v = rng.uniform(-1.0, 1.0);
            m.at(i, j) = v;
            rowSum += std::fabs(v);
        }
        m.at(i, i) = rowSum + 1.0 + rng.uniform();
    }
    return m;
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    panic_if(a.n != b.n, "matrix size mismatch");
    double worst = 0.0;
    for (size_t i = 0; i < a.a.size(); ++i)
        worst = std::max(worst, std::fabs(a.a[i] - b.a[i]));
    return worst;
}

} // namespace dlp::ref
