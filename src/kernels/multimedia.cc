/**
 * @file
 * Multimedia / DSP kernels: convert (RGB->YIQ), dct (2-D 8x8 DCT) and
 * highpassfilter (3x3 high-pass), mirroring the golden models in
 * src/ref/dsp.cc operation-for-operation.
 */

#include "kernels/build_util.hh"
#include "kernels/catalog.hh"
#include "ref/dsp.hh"

namespace dlp::kernels {

Kernel
makeConvert()
{
    KernelBuilder b("convert", Domain::Multimedia);
    b.setRecord(3, 3);

    auto m = constArrayF(b, "m", ref::yiqMatrix().data(), 9);
    Value rgb[3] = {b.inWord(0), b.inWord(1), b.inWord(2)};

    for (int r = 0; r < 3; ++r) {
        // (m0*R + m1*G) + m2*B, left-to-right like the reference.
        Value t = b.fadd(b.fmul(m[3 * r], rgb[0]),
                         b.fmul(m[3 * r + 1], rgb[1]));
        b.outWord(r, b.fadd(t, b.fmul(m[3 * r + 2], rgb[2])));
    }
    return b.build();
}

Kernel
makeHighpass()
{
    KernelBuilder b("highpassfilter", Domain::Multimedia);
    b.setRecord(9, 1);

    auto k = constArrayF(b, "k", ref::highpassKernel().data(), 9);
    std::vector<Value> products;
    products.reserve(9);
    for (int i = 0; i < 9; ++i)
        products.push_back(b.fmul(k[i], b.inWord(i)));
    // Balanced reduction: depth 5 for 17 instructions -> ILP 3.4 as in
    // Table 2 (the golden model accumulates serially; values agree to
    // rounding).
    b.outWord(0, treeReduce(b, products, isa::Op::Fadd));
    return b.build();
}

namespace {

/** The Chen-factorized 8-point DCT, mirroring ref::dct1d8. */
void
buildDct1d(KernelBuilder &b, const std::vector<Value> &c, const Value x[8],
           Value y[8])
{
    Value a0 = b.fadd(x[0], x[7]);
    Value a1 = b.fadd(x[1], x[6]);
    Value a2 = b.fadd(x[2], x[5]);
    Value a3 = b.fadd(x[3], x[4]);
    Value b0 = b.fsub(x[0], x[7]);
    Value b1 = b.fsub(x[1], x[6]);
    Value b2 = b.fsub(x[2], x[5]);
    Value b3 = b.fsub(x[3], x[4]);

    y[0] = b.fadd(b.fadd(a0, a1), b.fadd(a2, a3));
    y[4] = b.fmul(c[4], b.fsub(b.fsub(a0, a1), b.fsub(a2, a3)));
    Value e0 = b.fsub(a0, a3);
    Value e1 = b.fsub(a1, a2);
    y[2] = b.fadd(b.fmul(c[2], e0), b.fmul(c[6], e1));
    y[6] = b.fsub(b.fmul(c[6], e0), b.fmul(c[2], e1));

    // Odd part: X = C * b with the fixed 4x4 cosine matrix; the exact
    // add/sub sequence matches ref::dct1d8.
    y[1] = b.fadd(b.fadd(b.fmul(c[1], b0), b.fmul(c[3], b1)),
                  b.fadd(b.fmul(c[5], b2), b.fmul(c[7], b3)));
    y[3] = b.fsub(b.fsub(b.fmul(c[3], b0), b.fmul(c[7], b1)),
                  b.fadd(b.fmul(c[1], b2), b.fmul(c[5], b3)));
    y[5] = b.fadd(b.fsub(b.fmul(c[5], b0), b.fmul(c[1], b1)),
                  b.fadd(b.fmul(c[7], b2), b.fmul(c[3], b3)));
    y[7] = b.fadd(b.fsub(b.fmul(c[7], b0), b.fmul(c[5], b1)),
                  b.fsub(b.fmul(c[3], b2), b.fmul(c[1], b3)));
}

} // namespace

Kernel
makeDct()
{
    KernelBuilder b("dct", Domain::Multimedia);
    // One record is an 8x8 block; the intermediate lives in per-record
    // stream scratch (the vector-machine "transpose in the VRF" of
    // Section 3 becomes a strided scratch write).
    b.setRecord(64, 64, 64);

    auto c = constArrayF(b, "c", ref::dctCosines().data() + 1, 7);
    // c[k] indexing below expects cosine k at position k; rebuild the
    // vector with a dummy at 0 so indices match the math.
    std::vector<Value> cos(8);
    cos[0] = c[0]; // unused
    for (int k = 1; k <= 7; ++k)
        cos[k] = c[k - 1];

    // Column pass: one stride-8 vector fetch of column i, write scratch
    // column i (scalar stores; the coalescing store buffer absorbs them).
    LoopId col = b.beginLoop(8);
    {
        Value i = b.loopIdx();
        Value wide = b.inWide(i, 8, 8);
        Value x[8], y[8];
        for (int j = 0; j < 8; ++j)
            x[j] = b.wordOf(wide, j);
        buildDct1d(b, cos, x, y);
        for (int j = 0; j < 8; ++j) {
            Value off = j == 0
                            ? i
                            : b.markOverhead(
                                  b.opImm(isa::Op::Add, i, Word(8 * j)));
            b.scratchStore(off, y[j]);
        }
    }
    b.endLoop();
    (void)col;

    // Row pass: one contiguous vector fetch of scratch row i, write
    // output row i.
    LoopId row = b.beginLoop(8);
    {
        Value i = b.loopIdx();
        Value base = b.markOverhead(b.opImm(isa::Op::Shl, i, 3));
        Value wide = b.scratchWide(base, 8, 1);
        Value x[8], y[8];
        for (int j = 0; j < 8; ++j)
            x[j] = b.wordOf(wide, j);
        buildDct1d(b, cos, x, y);
        for (int j = 0; j < 8; ++j) {
            Value off = j == 0
                            ? base
                            : b.markOverhead(
                                  b.opImm(isa::Op::Add, base, Word(j)));
            b.outWordAt(off, y[j]);
        }
    }
    b.endLoop();
    (void)row;

    return b.build();
}

} // namespace dlp::kernels
