/**
 * @file
 * Unit tests for the simulation kernel: event-queue ordering and the
 * calendar-based resource model (idle-window grants are what keep the
 * engines' out-of-order acquisitions honest).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <new>
#include <vector>

#include "sim/eventq.hh"
#include "sim/resource.hh"

using namespace dlp;
using namespace dlp::sim;

TEST(EventQueue, ExecutesInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoWithinATick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleAtOwnTick)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(7, [&] {
        eq.schedule(7, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 7u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), PanicError);
}

TEST(EventQueue, ResetRewindsClock)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    eq.reset();
    EXPECT_EQ(eq.curTick(), 0u);
    eq.schedule(1, [] {}); // would panic without the reset
    eq.run();
}

TEST(EventQueue, RunHonorsTickLimit)
{
    EventQueue eq;
    eq.schedule(1000, [] {});
    EXPECT_THROW(eq.run(/*limit=*/100), FatalError);
}

// ---------------------------------------------------------------------
// Calendar resources
// ---------------------------------------------------------------------

TEST(Resource, BackToBackGrantsQueue)
{
    Resource r(2);
    EXPECT_EQ(r.acquire(10), 10u);
    EXPECT_EQ(r.acquire(10), 12u);
    EXPECT_EQ(r.acquire(10), 14u);
}

TEST(Resource, LateRequestClaimsIdleWindow)
{
    Resource r(1);
    // A grant far in the future must not block an earlier idle window.
    EXPECT_EQ(r.acquire(1000), 1000u);
    EXPECT_EQ(r.acquire(10), 10u);
    EXPECT_EQ(r.acquire(10), 11u);
}

TEST(Resource, WindowBetweenGrantsIsUsed)
{
    Resource r(1);
    EXPECT_EQ(r.acquire(5), 5u);
    EXPECT_EQ(r.acquire(8), 8u);
    // The gap [6, 8) is free.
    EXPECT_EQ(r.acquire(6), 6u);
    EXPECT_EQ(r.acquire(6), 7u);
    // Now everything up to 9 is busy.
    EXPECT_EQ(r.acquire(5), 9u);
}

TEST(Resource, BurstNeedsContiguousWindow)
{
    Resource r(1);
    r.acquire(4); // busy [4,5)
    // A 3-tick burst at 2 would overlap tick 4; first fit is 5.
    EXPECT_EQ(r.acquireMany(2, 3), 5u);
    // A 2-tick burst fits exactly in [2,4).
    EXPECT_EQ(r.acquireMany(2, 2), 2u);
}

TEST(Resource, GrantAndWaitAccounting)
{
    Resource r(1);
    r.acquire(0);
    r.acquire(0);
    r.acquireMany(0, 3);
    EXPECT_EQ(r.grants(), 5u);
    EXPECT_GT(r.waitedTicks(), 0u);
}

TEST(Resource, ResetClearsCalendar)
{
    Resource r(1);
    r.acquire(3);
    r.reset();
    EXPECT_EQ(r.acquire(3), 3u);
    EXPECT_EQ(r.grants(), 1u);
}

TEST(Resource, MergedIntervalsStaySmall)
{
    // Dense in-order usage must not blow up the interval map: after N
    // adjacent grants the calendar is a single interval, so another
    // grant at the front must queue to the very end.
    Resource r(1);
    for (int i = 0; i < 1000; ++i)
        r.acquire(static_cast<Tick>(i));
    EXPECT_EQ(r.acquire(0), 1000u);
}

// ---------------------------------------------------------------------
// Calendar queue mechanics (ring buckets + overflow heap)
// ---------------------------------------------------------------------

TEST(CalendarQueue, SameTickFifoAcrossManyEvents)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        eq.schedule(42, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(CalendarQueue, BucketRolloverAtRingBoundaries)
{
    // Ticks straddling multiples of the ring size (256) land in the
    // same bucket slots across windows; order must stay by tick.
    EventQueue eq;
    std::vector<Tick> fired;
    const std::vector<Tick> ticks = {0,   1,   255, 256, 257, 511,
                                     512, 513, 767, 768, 1023, 1024};
    // Schedule in reverse so insertion order disagrees with tick order.
    for (auto it = ticks.rbegin(); it != ticks.rend(); ++it) {
        Tick t = *it;
        eq.schedule(t, [&fired, &eq] { fired.push_back(eq.curTick()); });
    }
    eq.run();
    EXPECT_EQ(fired, ticks);
}

TEST(CalendarQueue, FarFutureOverflowPreservesOrder)
{
    // Events far beyond the ring window route through the overflow
    // heap and must interleave correctly with near-future events,
    // including FIFO among same-tick overflow events.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(1'000'000, [&] { order.push_back(10); });
    eq.schedule(1'000'000, [&] { order.push_back(11); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(500'000, [&] { order.push_back(5); });
    eq.schedule(6, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 5, 10, 11}));
}

TEST(CalendarQueue, EventChainsAcrossTheWindow)
{
    // An event that keeps rescheduling itself far beyond the current
    // window exercises window jumps with an otherwise empty ring.
    EventQueue eq;
    int hops = 0;
    std::function<void()> hop; // test-side recursion helper
    hop = [&] {
        if (++hops < 10)
            eq.scheduleIn(10'000, [&] { hop(); });
    };
    eq.schedule(0, [&] { hop(); });
    eq.run();
    EXPECT_EQ(hops, 10);
    EXPECT_EQ(eq.curTick(), 90'000u);
}

TEST(CalendarQueue, ResetReusesRetainedStorage)
{
    EventQueue eq;
    for (int round = 0; round < 3; ++round) {
        int fired = 0;
        for (Tick t = 0; t < 600; t += 3)
            eq.schedule(t, [&fired] { ++fired; });
        eq.schedule(100'000, [&fired] { ++fired; });
        eq.run();
        EXPECT_EQ(fired, 201);
        EXPECT_EQ(eq.curTick(), 100'000u);
        eq.reset();
        EXPECT_EQ(eq.curTick(), 0u);
        EXPECT_TRUE(eq.empty());
    }
}

TEST(CalendarQueue, ResetDiscardsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&fired] { ++fired; });
    eq.schedule(10'000'000, [&fired] { ++fired; }); // overflow tier
    eq.reset();
    eq.run();
    EXPECT_EQ(fired, 0);
    eq.schedule(1, [&fired] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(CalendarQueue, CountsExecutedEventsAcrossResets)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    eq.run();
    eq.reset();
    eq.schedule(1, [] {});
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 3u);
}

TEST(MemberEvent, ReschedulesWithoutRebinding)
{
    EventQueue eq;
    int fired = 0;
    MemberEvent ev(eq, [&fired] { ++fired; });
    ev.schedule(5);
    eq.run();
    eq.reset();
    ev.schedule(7);
    ev.schedule(9);
    eq.run();
    EXPECT_EQ(fired, 3);
}

// ---------------------------------------------------------------------
// Flat-calendar Resource vs the node-based std::map oracle
// ---------------------------------------------------------------------

namespace {

/**
 * The original std::map<Tick, Tick> interval calendar, kept verbatim as
 * a behavioral oracle: the flat small-vector calendar must produce the
 * exact same grant sequence for any acquire history.
 */
class MapOracleResource
{
  public:
    explicit MapOracleResource(Tick interval = 1) : serviceInterval(interval)
    {
    }

    Tick acquire(Tick earliest) { return acquireMany(earliest, 1); }

    Tick
    acquireMany(Tick earliest, uint64_t units)
    {
        if (units == 0)
            return earliest;
        Tick len = serviceInterval * units;
        Tick grant = findWindow(earliest, len);
        insertBusy(grant, grant + len);
        totalGrants += units;
        totalWait += grant - earliest;
        lastEnd = std::max(lastEnd, grant + len);
        return grant;
    }

    bool
    idleAt(Tick earliest) const
    {
        return findWindow(earliest, serviceInterval) == earliest;
    }

    Tick nextFree() const { return lastEnd; }
    uint64_t grants() const { return totalGrants; }
    Tick waitedTicks() const { return totalWait; }

  private:
    Tick
    findWindow(Tick earliest, Tick len) const
    {
        Tick t = earliest;
        auto it = busy.upper_bound(t);
        if (it != busy.begin()) {
            auto prev = std::prev(it);
            if (prev->second > t)
                t = prev->second;
        }
        while (it != busy.end() && it->first < t + len) {
            t = std::max(t, it->second);
            ++it;
        }
        return t;
    }

    void
    insertBusy(Tick start, Tick end)
    {
        auto it = busy.lower_bound(start);
        if (it != busy.begin()) {
            auto prev = std::prev(it);
            if (prev->second >= start) {
                start = prev->first;
                end = std::max(end, prev->second);
                it = busy.erase(prev);
            }
        }
        while (it != busy.end() && it->first <= end) {
            end = std::max(end, it->second);
            it = busy.erase(it);
        }
        busy.emplace(start, end);
    }

    Tick serviceInterval;
    std::map<Tick, Tick> busy;
    Tick lastEnd = 0;
    uint64_t totalGrants = 0;
    Tick totalWait = 0;
};

} // namespace

TEST(ResourceOracle, OutOfOrderAcquiresMatchMapCalendar)
{
    for (Tick interval : {Tick(1), Tick(2), Tick(7)}) {
        Resource flat(interval);
        MapOracleResource oracle(interval);
        uint64_t s = 12345;
        for (int i = 0; i < 20000; ++i) {
            s = s * 6364136223846793005ULL + 1442695040888963407ULL;
            Tick earliest = (s >> 33) % 4096;
            EXPECT_EQ(flat.acquire(earliest), oracle.acquire(earliest))
                << "interval " << interval << " step " << i;
        }
        EXPECT_EQ(flat.waitedTicks(), oracle.waitedTicks());
        EXPECT_EQ(flat.nextFree(), oracle.nextFree());
    }
}

TEST(ResourceOracle, AdjacentIntervalMergeMatches)
{
    Resource flat(1);
    MapOracleResource oracle(1);
    // Touching grants left-to-right and right-to-left, then probe the
    // fully merged calendar from the front.
    for (Tick t : {Tick(10), Tick(11), Tick(9), Tick(13), Tick(12)})
        EXPECT_EQ(flat.acquire(t), oracle.acquire(t));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(flat.acquire(0), oracle.acquire(0));
    EXPECT_EQ(flat.idleAt(0), oracle.idleAt(0));
    EXPECT_EQ(flat.nextFree(), oracle.nextFree());
}

TEST(ResourceOracle, BurstAcquiresSpanningMergesMatch)
{
    Resource flat(2);
    MapOracleResource oracle(2);
    uint64_t s = 999;
    for (int i = 0; i < 20000; ++i) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        Tick earliest = (s >> 33) % 2048;
        uint64_t units = 1 + ((s >> 20) % 5);
        EXPECT_EQ(flat.acquireMany(earliest, units),
                  oracle.acquireMany(earliest, units))
            << "step " << i;
        if (i % 7 == 0) {
            Tick probe = (s >> 40) % 2048;
            EXPECT_EQ(flat.idleAt(probe), oracle.idleAt(probe))
                << "probe step " << i;
        }
    }
    EXPECT_EQ(flat.grants(), oracle.grants());
    EXPECT_EQ(flat.waitedTicks(), oracle.waitedTicks());
}

// ---------------------------------------------------------------------
// Steady-state allocation behaviour. Each test binary is its own
// executable (see tests/CMakeLists.txt), so overriding the global
// allocator here observes only this file's activity.
// ---------------------------------------------------------------------

namespace {

uint64_t gAllocs = 0;

} // namespace

void *
operator new(std::size_t size)
{
    ++gAllocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    ++gAllocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

// The replaced operator new above allocates with malloc, so free() is
// the matching deallocator; GCC cannot see the pairing across the
// replaced operators and warns.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

TEST(EventQueueAllocation, SteadyStateScheduleAndFireIsAllocationFree)
{
    EventQueue q;
    uint64_t fired = 0;
    // Warm-up: populate bucket and overflow capacity with the same
    // traffic shape the measurement loop uses, across a reset() to
    // prove storage survives it.
    auto churn = [&] {
        for (int rep = 0; rep < 4; ++rep) {
            for (Tick t = 0; t < 64; ++t) {
                q.schedule(q.curTick() + t, [&fired] { ++fired; });
                q.schedule(q.curTick() + t + 1000, [&fired] { ++fired; });
            }
            q.run();
        }
    };
    churn();
    q.reset();
    churn();

    uint64_t before = gAllocs;
    q.reset();
    churn();
    EXPECT_EQ(gAllocs, before)
        << "schedule/fire steady state must not touch the heap";
    EXPECT_GT(fired, 0u);
}

TEST(ResourceAllocation, InlineCalendarAcquiresAreAllocationFree)
{
    Resource port(1);
    // The serial acquire pattern every issue port sees: each grant
    // extends the trailing interval in place, so the calendar stays at
    // one interval and never leaves inline storage.
    uint64_t before = gAllocs;
    Tick t = 0;
    for (int i = 0; i < 10000; ++i)
        t = port.acquire(t);
    EXPECT_EQ(gAllocs, before)
        << "in-order acquires must stay in inline interval storage";
    EXPECT_EQ(port.grants(), 10000u);
}

} // namespace

// ---------------------------------------------------------------------
// Event conservation counters
// ---------------------------------------------------------------------

TEST(EventQueue, ConservesEventsAcrossLifetime)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    eq.schedule(3, [] {});
    eq.run();
    EXPECT_EQ(eq.scheduledEvents(), 3u);
    EXPECT_EQ(eq.executedEvents(), 3u);
    EXPECT_EQ(eq.discardedEvents(), 0u);
    EXPECT_EQ(eq.scheduledEvents(),
              eq.executedEvents() + eq.pending() + eq.discardedEvents());
}

TEST(EventQueue, ResetAccountsDroppedEventsAsDiscarded)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&fired] { ++fired; });
    eq.run();
    // Two near events and one far beyond the calendar window (the
    // overflow heap) are dropped together by the reset.
    eq.schedule(10, [&fired] { ++fired; });
    eq.schedule(20, [&fired] { ++fired; });
    eq.schedule(50'000'000, [&fired] { ++fired; });
    eq.reset();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.discardedEvents(), 3u);

    // The queue stays fully usable after the discard, and the books
    // keep balancing: scheduled == executed + pending + discarded.
    eq.schedule(1, [&fired] { ++fired; });
    eq.schedule(30'000'000, [&fired] { ++fired; }); // overflow tier again
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.scheduledEvents(), 6u);
    EXPECT_EQ(eq.executedEvents(), 3u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.scheduledEvents(),
              eq.executedEvents() + eq.pending() + eq.discardedEvents());
}

// ---------------------------------------------------------------------
// SmallVec vs std::vector differential
// ---------------------------------------------------------------------

TEST(SmallVec, MatchesStdVectorThroughMixedOperations)
{
    // Deterministic operation tape crossing the inline->heap boundary
    // (Inline = 4) in both directions, mirrored against std::vector.
    SmallVec<int, 4> sv;
    std::vector<int> ref;
    uint64_t x = 0x9e3779b97f4a7c15ull;
    auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    for (int step = 0; step < 2000; ++step) {
        uint64_t roll = next() % 100;
        int v = static_cast<int>(next() % 1000);
        if (roll < 50 || ref.empty()) {
            sv.push_back(v);
            ref.push_back(v);
        } else if (roll < 75) {
            size_t at = next() % (ref.size() + 1);
            sv.insert(at, v);
            ref.insert(ref.begin() + at, v);
        } else if (roll < 95) {
            size_t at = next() % ref.size();
            sv.erase(at);
            ref.erase(ref.begin() + at);
        } else {
            sv.clear();
            ref.clear();
        }
        ASSERT_EQ(sv.size(), ref.size()) << "step " << step;
        for (size_t i = 0; i < ref.size(); ++i)
            ASSERT_EQ(sv[i], ref[i]) << "step " << step << " index " << i;
        if (!ref.empty()) {
            ASSERT_EQ(sv.back(), ref.back());
        }
    }
}

TEST(SmallVec, CopyAndMovePreserveContents)
{
    SmallVec<int, 4> small;
    for (int i = 0; i < 3; ++i)
        small.push_back(i); // stays inline
    SmallVec<int, 4> big;
    for (int i = 0; i < 64; ++i)
        big.push_back(i); // spills to the heap

    SmallVec<int, 4> copy(big);
    ASSERT_EQ(copy.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(copy[i], i);

    copy = small; // shrink heap -> inline source
    ASSERT_EQ(copy.size(), 3u);
    EXPECT_EQ(copy[2], 2);

    SmallVec<int, 4> moved(std::move(big));
    ASSERT_EQ(moved.size(), 64u);
    EXPECT_EQ(moved[63], 63);

    moved = std::move(small);
    ASSERT_EQ(moved.size(), 3u);
    EXPECT_EQ(moved[0], 0);

    // Self-assignment must be a no-op, not a double free.
    SmallVec<int, 4> &alias = moved;
    moved = alias;
    ASSERT_EQ(moved.size(), 3u);
    EXPECT_EQ(moved[1], 1);
}
