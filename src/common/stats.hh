/**
 * @file
 * A statistics package in the spirit of gem5's Stats.
 *
 * Components register named statistics with a StatGroup:
 *
 *  - Stat          a scalar counter,
 *  - Distribution  a bucketed histogram with min/max/mean/stdev,
 *  - VectorStat    a fixed-size vector of counters (per-lane, per-link),
 *  - Formula       a derived value evaluated lazily at dump time.
 *
 * A group may install a preDump hook that refreshes derived statistics
 * (e.g. fill a utilization vector from resource calendars) right before
 * dump() or snapshot() reads them. snapshot() produces a value-semantic
 * GroupSnapshot that outlives the component, which is how experiment
 * results carry per-structure statistics to the JSON exporter.
 *
 * Naming convention: "group.stat" (e.g. "noc.mesh.contentionTicks"),
 * with vector elements "group.stat::i" and distribution metadata
 * "group.stat::mean" etc. in the text dump.
 */

#ifndef DLP_COMMON_STATS_HH
#define DLP_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace dlp {

/** A named scalar counter. */
class Stat
{
  public:
    Stat() = default;
    explicit Stat(std::string statName) : name(std::move(statName)) {}

    Stat &operator++() { value += 1.0; return *this; }
    Stat &operator+=(double v) { value += v; return *this; }
    void set(double v) { value = v; }
    void reset() { value = 0.0; }

    /**
     * Apply `times` repetitions of a per-iteration delta at once (epoch
     * fast-forwarding). Exact -- bit-identical to `times` sequential
     * `+= delta` -- only when value and delta are integer-valued and
     * the result stays within 2^53; the epoch pass pipeline validates
     * those preconditions before planning a bulk application.
     */
    void fastForward(double delta, uint64_t times)
    {
        value += delta * double(times);
    }

    double get() const { return value; }
    const std::string &statName() const { return name; }

  private:
    std::string name;
    double value = 0.0;
};

/**
 * A bucketed histogram over [lo, hi) with equal-width buckets plus
 * underflow/overflow bins, tracking min/max/mean/stdev of all samples.
 * Value-semantic so snapshots can carry copies.
 */
class Distribution
{
  public:
    Distribution() = default;
    Distribution(std::string statName, double lo, double hi,
                 unsigned numBuckets)
        : name(std::move(statName))
    {
        init(lo, hi, numBuckets);
    }

    /** (Re)configure the bucket range; clears all samples. */
    void
    init(double lo, double hi, unsigned numBuckets)
    {
        panic_if(numBuckets == 0, "distribution %s with no buckets",
                 name.c_str());
        panic_if(hi <= lo, "distribution %s with empty range [%f, %f)",
                 name.c_str(), lo, hi);
        rangeLo = lo;
        rangeHi = hi;
        counts.assign(numBuckets, 0);
        reset();
    }

    void
    sample(double v, uint64_t n = 1)
    {
        if (n == 0)
            return;
        if (v < rangeLo) {
            under += n;
        } else if (v >= rangeHi) {
            over += n;
        } else {
            auto b = static_cast<size_t>((v - rangeLo) /
                                         (rangeHi - rangeLo) *
                                         double(counts.size()));
            counts[b < counts.size() ? b : counts.size() - 1] += n;
        }
        if (nSamples == 0 || v < minSeen)
            minSeen = v;
        if (nSamples == 0 || v > maxSeen)
            maxSeen = v;
        nSamples += n;
        total += v * double(n);
        totalSq += v * v * double(n);
    }

    void
    reset()
    {
        std::fill(counts.begin(), counts.end(), 0);
        under = over = nSamples = 0;
        total = totalSq = 0.0;
        minSeen = maxSeen = 0.0;
    }

    uint64_t samples() const { return nSamples; }
    double sum() const { return total; }
    double minValue() const { return minSeen; }
    double maxValue() const { return maxSeen; }
    double mean() const { return nSamples ? total / double(nSamples) : 0.0; }

    double
    stdev() const
    {
        if (nSamples < 2)
            return 0.0;
        double n = double(nSamples);
        double var = (totalSq - total * total / n) / (n - 1.0);
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    /**
     * Rebuild the exact internal state from serialized fields (the
     * result store's codec is the inverse of this). Restoring sum and
     * sumSq — not mean and stdev — is what makes a store round trip
     * bit-identical: mean() and stdev() recompute from the same raw
     * accumulators the original run held.
     */
    void
    restore(double lo, double hi, std::vector<uint64_t> bucketCounts,
            uint64_t underN, uint64_t overN, uint64_t samplesN,
            double sumV, double sumSqV, double minV, double maxV)
    {
        panic_if(bucketCounts.empty(), "distribution %s restore with no "
                 "buckets", name.c_str());
        panic_if(hi <= lo, "distribution %s restore with empty range",
                 name.c_str());
        rangeLo = lo;
        rangeHi = hi;
        counts = std::move(bucketCounts);
        under = underN;
        over = overN;
        nSamples = samplesN;
        total = sumV;
        totalSq = sumSqV;
        minSeen = minV;
        maxSeen = maxV;
    }

    double sumSq() const { return totalSq; }

    /**
     * Apply `times` repetitions of a per-iteration delta to every
     * accumulator at once (epoch fast-forwarding). min/max are left
     * untouched: the caller must have validated that the repeated
     * iteration establishes no new extremes, that sumDelta/sumSqDelta
     * are integer-valued, and that the projected totals stay within
     * 2^53 -- under those preconditions the result is bit-identical to
     * sampling the iteration `times` more times.
     */
    void
    fastForward(const std::vector<uint64_t> &countsDelta, uint64_t underDelta,
                uint64_t overDelta, uint64_t samplesDelta, double sumDelta,
                double sumSqDelta, uint64_t times)
    {
        panic_if(countsDelta.size() != counts.size(),
                 "distribution %s fastForward bucket mismatch", name.c_str());
        for (size_t i = 0; i < counts.size(); ++i)
            counts[i] += countsDelta[i] * times;
        under += underDelta * times;
        over += overDelta * times;
        nSamples += samplesDelta * times;
        total += sumDelta * double(times);
        totalSq += sumSqDelta * double(times);
    }

    size_t numBuckets() const { return counts.size(); }
    uint64_t bucket(size_t i) const { return counts.at(i); }
    uint64_t underflow() const { return under; }
    uint64_t overflow() const { return over; }
    double bucketLow(size_t i) const
    {
        return rangeLo + (rangeHi - rangeLo) * double(i) /
               double(counts.size());
    }
    double bucketWidth() const
    {
        return (rangeHi - rangeLo) / double(counts.size());
    }
    double low() const { return rangeLo; }
    double high() const { return rangeHi; }

    const std::string &statName() const { return name; }

  private:
    std::string name;
    double rangeLo = 0.0;
    double rangeHi = 1.0;
    std::vector<uint64_t> counts;
    uint64_t under = 0;
    uint64_t over = 0;
    uint64_t nSamples = 0;
    double total = 0.0;
    double totalSq = 0.0;
    double minSeen = 0.0;
    double maxSeen = 0.0;
};

/** A fixed-size vector of counters (per-lane / per-link / per-bank). */
class VectorStat
{
  public:
    VectorStat() = default;
    VectorStat(std::string statName, size_t n)
        : name(std::move(statName)), values(n, 0.0)
    {
    }

    double &operator[](size_t i) { return values.at(i); }
    double at(size_t i) const { return values.at(i); }
    void inc(size_t i, double v = 1.0) { values.at(i) += v; }
    void set(size_t i, double v) { values.at(i) = v; }

    size_t size() const { return values.size(); }

    double
    total() const
    {
        double t = 0.0;
        for (double v : values)
            t += v;
        return t;
    }

    double
    maxValue() const
    {
        double m = 0.0;
        for (double v : values)
            m = std::max(m, v);
        return m;
    }

    void reset() { std::fill(values.begin(), values.end(), 0.0); }

    /**
     * Element-wise bulk application of a per-iteration delta (epoch
     * fast-forwarding); same integrality/2^53 preconditions as
     * Stat::fastForward.
     */
    void
    fastForward(const std::vector<double> &delta, uint64_t times)
    {
        panic_if(delta.size() != values.size(),
                 "vector stat %s fastForward size mismatch", name.c_str());
        for (size_t i = 0; i < values.size(); ++i)
            values[i] += delta[i] * double(times);
    }

    const std::string &statName() const { return name; }
    const std::vector<double> &all() const { return values; }

  private:
    std::string name;
    std::vector<double> values;
};

/** A derived statistic evaluated when the group is dumped. */
class Formula
{
  public:
    Formula() = default;
    Formula(std::string statName, std::function<double()> fn)
        : name(std::move(statName)), eval(std::move(fn))
    {
    }

    double value() const { return eval ? eval() : 0.0; }
    const std::string &statName() const { return name; }

  private:
    std::string name;
    std::function<double()> eval;
};

/**
 * Value-semantic copy of one group's statistics at a point in time.
 * Formulas are evaluated into the formulas map.
 */
struct GroupSnapshot
{
    std::string name;
    std::map<std::string, double> scalars;
    std::map<std::string, double> formulas;
    std::map<std::string, Distribution> distributions;
    std::map<std::string, VectorStat> vectors;
};

/**
 * A group of related statistics with a hierarchical name prefix
 * (e.g. "core.tile3_4" or "mem.smc0").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string groupName) : name(std::move(groupName)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create (or fetch) a counter under this group. */
    Stat &
    scalar(const std::string &statName)
    {
        auto it = stats.find(statName);
        if (it == stats.end())
            it = stats.emplace(statName, Stat(statName)).first;
        return it->second;
    }

    /** Create (or fetch) a histogram over [lo, hi) with n buckets. */
    Distribution &
    distribution(const std::string &statName, double lo, double hi,
                 unsigned numBuckets)
    {
        auto it = dists.find(statName);
        if (it == dists.end()) {
            it = dists.emplace(statName,
                               Distribution(statName, lo, hi, numBuckets))
                     .first;
        }
        return it->second;
    }

    /** Create (or fetch) a vector of n counters. */
    VectorStat &
    vector(const std::string &statName, size_t n)
    {
        auto it = vecs.find(statName);
        if (it == vecs.end())
            it = vecs.emplace(statName, VectorStat(statName, n)).first;
        return it->second;
    }

    /** Register a derived value evaluated at dump time. */
    void
    formula(const std::string &statName, std::function<double()> fn)
    {
        formulas[statName] = Formula(statName, std::move(fn));
    }

    /**
     * Install a hook run before dump()/snapshot() to refresh derived
     * statistics (occupancy vectors, utilization histograms).
     */
    void setPreDump(std::function<void()> fn) { preDump = std::move(fn); }

    /** Look up a counter; panics if absent (tests use this). */
    const Stat &
    lookup(const std::string &statName) const
    {
        auto it = stats.find(statName);
        panic_if(it == stats.end(), "unknown stat %s.%s", name.c_str(),
                 statName.c_str());
        return it->second;
    }

    bool has(const std::string &statName) const
    {
        return stats.count(statName) != 0;
    }

    /// @name Mutable lookups without fetch-or-create semantics (epoch
    /// fast-forwarding applies planned deltas to existing stats only).
    /// @{
    Stat *
    findScalar(const std::string &statName)
    {
        auto it = stats.find(statName);
        return it == stats.end() ? nullptr : &it->second;
    }

    Distribution *
    findDistribution(const std::string &statName)
    {
        auto it = dists.find(statName);
        return it == dists.end() ? nullptr : &it->second;
    }

    VectorStat *
    findVector(const std::string &statName)
    {
        auto it = vecs.find(statName);
        return it == vecs.end() ? nullptr : &it->second;
    }
    /// @}

    /** Zero every statistic in the group. */
    void
    resetAll()
    {
        for (auto &kv : stats)
            kv.second.reset();
        for (auto &kv : dists)
            kv.second.reset();
        for (auto &kv : vecs)
            kv.second.reset();
    }

    /** Pretty-print all statistics, one line each, prefixed by group. */
    void dump(std::ostream &os);

    /** Capture a value-semantic copy (runs preDump, evals formulas). */
    GroupSnapshot snapshot();

    const std::string &groupName() const { return name; }
    const std::map<std::string, Stat> &all() const { return stats; }
    const std::map<std::string, Distribution> &allDistributions() const
    {
        return dists;
    }
    const std::map<std::string, VectorStat> &allVectors() const
    {
        return vecs;
    }
    const std::map<std::string, Formula> &allFormulas() const
    {
        return formulas;
    }

  private:
    std::string name;
    std::map<std::string, Stat> stats;
    std::map<std::string, Distribution> dists;
    std::map<std::string, VectorStat> vecs;
    std::map<std::string, Formula> formulas;
    std::function<void()> preDump;
};

} // namespace dlp

#endif // DLP_COMMON_STATS_HH
