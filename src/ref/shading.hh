/**
 * @file
 * Golden models of the six real-time-graphics kernels (Table 1), written
 * to mirror the simulated kernels operation-for-operation.
 *
 * The record layouts match Table 2's record sizes as closely as the
 * computations allow; EXPERIMENTS.md notes the deltas. All shader
 * parameters come from makeSceneParams() so the reference, the IR
 * interpreter and the cycle simulator all consume identical constants.
 */

#ifndef DLP_REF_SHADING_HH
#define DLP_REF_SHADING_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "ref/texture.hh"

namespace dlp::ref {

struct Vec3
{
    double x = 0, y = 0, z = 0;
};

inline double
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

Vec3 normalize(const Vec3 &v);

/** Parameters for vertex-simple: basic four-term vertex lighting. */
struct VertexSimpleParams
{
    std::array<double, 12> mvp;  ///< 3x4 row-major, clip = mvp * (p, 1)
    std::array<double, 9> nrm;   ///< 3x3 normal matrix
    Vec3 lightDir;               ///< unit, surface-to-light
    Vec3 halfVec;                ///< unit half vector
    Vec3 lightColor, ambient, specular, emissive;
};

/** in: pos[3], normal[3], albedo; out: clip[3], color[3]. */
void vertexSimple(const double in[7], double out[6],
                  const VertexSimpleParams &p);

/** Parameters for fragment-simple: textured fragment lighting. */
struct FragmentSimpleParams
{
    Vec3 halfVec;
    Vec3 ambient, lightColor, specular;
};

/**
 * in: normal[3], u, v (texel space), lightDir[3]; out: rgb[3], alpha.
 * Performs one bilinear texture sample (4 irregular accesses).
 */
void fragmentSimple(const double in[8], double out[4], const Texture2D &tex,
                    const FragmentSimpleParams &p);

/** Parameters for vertex-reflection. */
struct VertexReflectionParams
{
    std::array<double, 12> mvp;
    std::array<double, 12> world;
    std::array<double, 9> nrm;
    Vec3 eye;
};

/** in: pos[3], normal[3], color[3] (passed through lighting-free);
 *  out: clip[3], reflect[3]. */
void vertexReflection(const double in[9], double out[6],
                      const VertexReflectionParams &p);

/** Parameters for fragment-reflection. */
struct FragmentReflectionParams
{
    Vec3 tint;
    double fresnelBias = 0.2;
};

/** in: reflect[3], intensity, unused; out: rgb[3].
 *  One bilinear cube-map sample (4 irregular accesses). */
void fragmentReflection(const double in[5], double out[3],
                        const CubeMap &cube,
                        const FragmentReflectionParams &p);

/** Parameters for vertex-skinning. */
struct SkinningParams
{
    static constexpr unsigned maxBones = 24;   ///< palette size
    static constexpr unsigned maxBonesPerVertex = 4;

    /// Bone palette: maxBones 3x4 matrices = 288 indexed constants,
    /// matching Table 2 exactly.
    std::vector<double> palette;
    std::array<double, 12> mvp;
    Vec3 lightDir, lightColor, ambient;
};

/**
 * Skin a vertex with `count` (1..maxBonesPerVertex) weighted bone
 * transforms, then light it. Record shape on the machine: pos[3],
 * normal[3], count, boneIdx[4], weight[4], albedo = 16 input words;
 * clip[3], color[3], skinnedNormal[3] = 9 output words -- matching
 * Table 2. The bone loop trip count is per-vertex data: the paper's
 * showcase of data-dependent branching.
 */
void vertexSkinning(const Vec3 &pos, const Vec3 &normal, unsigned count,
                    const unsigned boneIdx[4], const double weight[4],
                    double albedo, double outClip[3], double outColor[3],
                    double outNormal[3], const SkinningParams &p);

/** Parameters for anisotropic-filter. */
struct AnisoParams
{
    static constexpr unsigned maxSamples = 24;
    /// 128-entry filter weight table (Table 2's indexed constants).
    std::vector<double> weights;
};

/**
 * Take `n` (1..maxSamples) nearest-texel taps along the anisotropy axis
 * (axisU, axisV) centred on (u, v), weighted from the 128-entry table,
 * and return the packed filtered texel. Record shape on the machine:
 * u, v, axisU, axisV, n, pad[4] = 9 input words, 1 packed output word,
 * <= 50 irregular accesses, 150..1000 executed instructions depending on
 * n -- matching Table 2.
 */
Word anisotropicFilter(double u, double v, double axisU, double axisV,
                       unsigned n, const Texture2D &tex,
                       const AnisoParams &p);

/** Deterministic scene parameters shared by tests and workloads. */
VertexSimpleParams makeVertexSimpleParams(uint64_t seed);
FragmentSimpleParams makeFragmentSimpleParams(uint64_t seed);
VertexReflectionParams makeVertexReflectionParams(uint64_t seed);
FragmentReflectionParams makeFragmentReflectionParams(uint64_t seed);
SkinningParams makeSkinningParams(uint64_t seed);
AnisoParams makeAnisoParams(uint64_t seed);

} // namespace dlp::ref

#endif // DLP_REF_SHADING_HH
