
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/test_ir.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/test_ir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/dlp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/dlp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dlp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/dlp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/dlp_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dlp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dlp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dlp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
