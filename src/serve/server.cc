#include "serve/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <map>

#include "common/logging.hh"
#include "driver/proc_pool.hh"
#include "obs/timeline.hh"
#include "store/codec.hh"
#include "store/key.hh"

namespace dlp::serve {

namespace {

/** Echo of the request's "id" (null when the request had none). */
json::Value
idOf(const json::Value &request)
{
    if (const json::Value *id = request.find("id"))
        return *id;
    return json::Value();
}

json::Value
errorMessage(const json::Value &request, const std::string &what)
{
    json::Value msg = json::Value::object();
    msg.set("id", idOf(request));
    msg.set("type", "error");
    msg.set("message", what);
    return msg;
}

} // namespace

Server::Server(ServerOptions options) : opts(std::move(options))
{
    fatal_if(opts.socketPath.empty(), "sweepd needs a socket path");
    if (!opts.storeDir.empty())
        storeHandle = std::make_unique<store::ResultStore>(opts.storeDir);

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatal_if(listenFd < 0, "socket failed: %s", std::strerror(errno));
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    fatal_if(opts.socketPath.size() >= sizeof(addr.sun_path),
             "socket path too long: '%s'", opts.socketPath.c_str());
    std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    // A leftover socket file from a crashed daemon must be reclaimed,
    // but a live daemon still answers a connect probe — refuse to
    // unlink its address out from under it.
    int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatal_if(probe < 0, "socket failed: %s", std::strerror(errno));
    bool alive = ::connect(probe, reinterpret_cast<struct sockaddr *>(&addr),
                           sizeof(addr)) == 0;
    ::close(probe);
    if (alive) {
        ::close(listenFd);
        listenFd = -1;
        fatal("a sweepd is already serving on '%s'",
              opts.socketPath.c_str());
    }
    ::unlink(opts.socketPath.c_str());  // stale: no listener answered
    fatal_if(::bind(listenFd, reinterpret_cast<struct sockaddr *>(&addr),
                    sizeof(addr)) != 0,
             "cannot bind '%s': %s", opts.socketPath.c_str(),
             std::strerror(errno));
    fatal_if(::listen(listenFd, 16) != 0, "listen failed: %s",
             std::strerror(errno));
}

Server::~Server()
{
    for (const auto &c : conns)
        ::close(c.fd);
    if (listenFd >= 0)
        ::close(listenFd);
    ::unlink(opts.socketPath.c_str());
}

json::Value
Server::countersJson() const
{
    json::Value obj = json::Value::object();
    obj.set("connections", ctrs.connections);
    obj.set("requests", ctrs.requests);
    obj.set("cells", ctrs.cells);
    obj.set("uniqueCells", ctrs.uniqueCells);
    obj.set("dedupedInFlight", ctrs.dedupedInFlight);
    obj.set("storeHits", ctrs.storeHits);
    obj.set("computed", ctrs.computed);
    obj.set("errors", ctrs.errors);
    obj.set("cellErrors", ctrs.cellErrors);
    return obj;
}

void
Server::handleSweep(int fd, const json::Value &request)
{
    driver::SweepPlan plan = planFromRequest(request);
    json::Value id = idOf(request);
    ++ctrs.requests;
    ctrs.cells += plan.size();
    obs::HostSpan span(obs::Cat::Serve, "sweep", "", plan.size());

    // In-flight dedup: every task folds to its content-addressed
    // experiment key, and tasks sharing a key share one computation.
    // (The key derivation validates kernel and config names, so a
    // bogus request fails here, before any simulation.)
    struct Cell
    {
        driver::SweepTask task;
        std::string key;              ///< content-addressed experiment key
        std::vector<size_t> indices;  ///< request positions it serves
    };
    std::vector<Cell> cells;
    std::map<std::string, size_t> cellByKey;
    for (size_t i = 0; i < plan.size(); ++i) {
        const driver::SweepTask &task = plan.tasks[i];
        std::string key = store::experimentKey(
            task.kernel, task.config, driver::resolvedScale(task),
            task.seed);
        auto [it, fresh] = cellByKey.emplace(key, cells.size());
        if (fresh)
            cells.push_back({task, key, {}});
        else
            obs::hostInstant(obs::Cat::Serve, "dedup",
                             task.kernel + "/" + task.config);
        cells[it->second].indices.push_back(i);
    }
    ctrs.uniqueCells += cells.size();
    ctrs.dedupedInFlight += plan.size() - cells.size();

    auto emit = [&](const Cell &cell, const arch::ExperimentResult &r,
                    bool cached) {
        json::Value doc = store::resultToJson(r);
        for (size_t index : cell.indices) {
            json::Value msg = json::Value::object();
            msg.set("id", id);
            msg.set("type", "result");
            msg.set("index", uint64_t(index));
            msg.set("cached", cached);
            msg.set("result", doc);
            writeLine(fd, msg);
        }
    };

    // Warm pass: anything already in the store streams out right away.
    std::vector<size_t> cold;
    for (size_t c = 0; c < cells.size(); ++c) {
        arch::ExperimentResult r;
        if (storeHandle && storeHandle->lookup(cells[c].key, r)) {
            ++ctrs.storeHits;
            emit(cells[c], r, true);
        } else {
            cold.push_back(c);
        }
    }

    // Cold pass: simulate, shard across forked workers when asked.
    // Children only compute and serialize; the store insert and the
    // client write stay in the parent, as payloads arrive. A cell
    // whose simulation throws answers as an error line per requesting
    // index while the rest of the batch completes.
    auto produce = [&](size_t i) {
        arch::ExperimentResult r = driver::runTask(cells[cold[i]].task);
        return json::write(store::resultToJson(r), 0);
    };
    auto collect = [&](size_t i, std::string payload) {
        arch::ExperimentResult r =
            store::resultFromJson(json::parse(payload));
        const Cell &cell = cells[cold[i]];
        if (storeHandle)
            storeHandle->insert(cell.key, r);
        ++ctrs.computed;
        emit(cell, r, false);
    };
    auto onError = [&](size_t i, const std::string &message) {
        ++ctrs.cellErrors;
        for (size_t index : cells[cold[i]].indices) {
            json::Value msg = json::Value::object();
            msg.set("id", id);
            msg.set("type", "error");
            msg.set("index", uint64_t(index));
            msg.set("message", message);
            writeLine(fd, msg);
        }
    };
    auto childInit = [&] {
        // The forked worker inherits the daemon's listening socket and
        // every client connection; only the parent may speak on those.
        ::close(listenFd);
        for (const auto &c : conns)
            ::close(c.fd);
    };
    driver::runForked(cold.size(), opts.workers, produce, collect,
                      onError, childInit);

    json::Value done = json::Value::object();
    done.set("id", id);
    done.set("type", "done");
    done.set("cells", uint64_t(plan.size()));
    done.set("counters", countersJson());
    if (storeHandle) {
        store::StoreStats s = storeHandle->stats();
        json::Value st = json::Value::object();
        st.set("dir", storeHandle->dir());
        st.set("hits", s.hits);
        st.set("misses", s.misses);
        st.set("inserts", s.inserts);
        st.set("entries", s.entries);
        st.set("bytes", s.bytes);
        done.set("store", std::move(st));
    }
    writeLine(fd, done);
}

void
Server::handleLine(int fd, const std::string &line)
{
    json::Value request;
    try {
        request = json::parse(line);
        std::string op = request.at("op").asString();
        if (op == "sweep") {
            handleSweep(fd, request);
        } else if (op == "stats") {
            json::Value msg = json::Value::object();
            msg.set("id", idOf(request));
            msg.set("type", "stats");
            msg.set("counters", countersJson());
            if (storeHandle) {
                store::StoreStats s = storeHandle->stats();
                json::Value st = json::Value::object();
                st.set("dir", storeHandle->dir());
                st.set("hits", s.hits);
                st.set("misses", s.misses);
                st.set("inserts", s.inserts);
                st.set("entries", s.entries);
                st.set("bytes", s.bytes);
                msg.set("store", std::move(st));
            }
            writeLine(fd, msg);
        } else if (op == "ping") {
            json::Value msg = json::Value::object();
            msg.set("id", idOf(request));
            msg.set("type", "pong");
            writeLine(fd, msg);
        } else if (op == "shutdown") {
            json::Value msg = json::Value::object();
            msg.set("id", idOf(request));
            msg.set("type", "bye");
            writeLine(fd, msg);
            stopping = true;
        } else {
            ++ctrs.errors;
            writeLine(fd, errorMessage(request, "unknown op '" + op + "'"));
        }
    } catch (const std::exception &e) {
        // Malformed requests and failed sweeps answer in-band; the
        // daemon and the connection both survive.
        ++ctrs.errors;
        writeLine(fd, errorMessage(request, e.what()));
    }
}

void
Server::run()
{
    bool acceptedOnce = false;
    while (!stopping && !stopRequested) {
        if (opts.once && acceptedOnce && conns.empty())
            break;
        std::vector<struct pollfd> fds;
        bool acceptMore = !(opts.once && acceptedOnce);
        if (acceptMore)
            fds.push_back({listenFd, POLLIN, 0});
        for (const auto &c : conns)
            fds.push_back({c.fd, POLLIN, 0});
        // A finite timeout bounds how long a requestStop() set between
        // polls (e.g. from a SIGTERM handler) waits to be noticed; an
        // infinite poll would sleep until the next client byte.
        int rc = ::poll(fds.data(), nfds_t(fds.size()), 500);
        if (rc < 0 && errno == EINTR)
            continue;
        fatal_if(rc < 0, "poll failed: %s", std::strerror(errno));
        if (rc == 0)
            continue;  // timeout: re-check the stop flags

        size_t base = 0;
        if (acceptMore) {
            if (fds[0].revents & POLLIN) {
                int fd = ::accept(listenFd, nullptr, nullptr);
                if (fd >= 0) {
                    conns.push_back({fd, {}});
                    ++ctrs.connections;
                    acceptedOnce = true;
                    obs::hostInstant(obs::Cat::Serve, "accept", "");
                    continue;  // re-poll with the new connection
                }
            }
            base = 1;
        }

        for (size_t i = 0; i < conns.size() && !stopping; ++i) {
            if (!(fds[base + i].revents & (POLLIN | POLLHUP)))
                continue;
            char chunk[65536];
            ssize_t n = ::read(conns[i].fd, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                ::close(conns[i].fd);
                conns.erase(conns.begin() + long(i));
                break;  // indices into fds are stale now; re-poll
            }
            conns[i].reader.feed(chunk, size_t(n));
            std::string line;
            while (!stopping && conns[i].reader.next(line))
                handleLine(conns[i].fd, line);
        }
    }
}

} // namespace dlp::serve
