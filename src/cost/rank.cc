/**
 * @file
 * sched::rankPlacements -- the autotuner-facing ranking hook, defined
 * here so sched/ does not depend on the cost library (the declaration
 * lives in sched/rank.hh; linking dlp_cost provides the symbol).
 */

#include "sched/rank.hh"

#include <algorithm>

#include "cost/cost.hh"

namespace dlp::sched {

std::vector<RankedPlacement>
rankPlacements(const std::vector<SimdPlan> &candidates,
               const core::MachineParams &m)
{
    std::vector<RankedPlacement> ranked;
    ranked.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
        cost::CostReport rep = cost::analyzeSimd(candidates[i], m);
        ranked.push_back({i, rep.predictedTicksPerRecord});
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const RankedPlacement &a, const RankedPlacement &b) {
                         return a.ticksPerRecord < b.ticksPerRecord;
                     });
    return ranked;
}

} // namespace dlp::sched
