/**
 * @file
 * Small helpers shared by the kernel factories.
 */

#ifndef DLP_KERNELS_BUILD_UTIL_HH
#define DLP_KERNELS_BUILD_UTIL_HH

#include <string>
#include <vector>

#include "kernels/ir.hh"

namespace dlp::kernels {

/** Balanced-tree floating-point reduction (maximizes ILP). */
inline Value
treeReduce(KernelBuilder &b, std::vector<Value> vs, isa::Op op)
{
    panic_if(vs.empty(), "empty reduction");
    while (vs.size() > 1) {
        std::vector<Value> next;
        for (size_t i = 0; i + 1 < vs.size(); i += 2)
            next.push_back(b.op(op, vs[i], vs[i + 1]));
        if (vs.size() % 2)
            next.push_back(vs.back());
        vs = std::move(next);
    }
    return vs[0];
}

/** Declare an array of named floating-point constants c<base>0.. */
inline std::vector<Value>
constArrayF(KernelBuilder &b, const std::string &base, const double *vals,
            size_t n)
{
    std::vector<Value> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(b.constantF(base + std::to_string(i), vals[i]));
    return out;
}

/** clip = m (3x4 Values) * (p,1), mirroring ref::xform34's order. */
inline void
xform34(KernelBuilder &b, const std::vector<Value> &m, const Value p[3],
        Value out[3])
{
    for (int r = 0; r < 3; ++r) {
        Value t = b.fadd(b.fmul(m[4 * r], p[0]), b.fmul(m[4 * r + 1], p[1]));
        t = b.fadd(t, b.fmul(m[4 * r + 2], p[2]));
        out[r] = b.fadd(t, m[4 * r + 3]);
    }
}

/** out = m (3x3 Values) * v, mirroring ref::xform33. */
inline void
xform33(KernelBuilder &b, const std::vector<Value> &m, const Value v[3],
        Value out[3])
{
    for (int r = 0; r < 3; ++r) {
        Value t = b.fadd(b.fmul(m[3 * r], v[0]), b.fmul(m[3 * r + 1], v[1]));
        out[r] = b.fadd(t, b.fmul(m[3 * r + 2], v[2]));
    }
}

/** dot(a, b) in ref order: a0 b0 + a1 b1 + a2 b2 left-to-right. */
inline Value
dot3(KernelBuilder &b, const Value a[3], const Value v[3])
{
    Value t = b.fadd(b.fmul(a[0], v[0]), b.fmul(a[1], v[1]));
    return b.fadd(t, b.fmul(a[2], v[2]));
}

/** max(x, 0). */
inline Value
maxZero(KernelBuilder &b, Value x)
{
    return b.op(isa::Op::Fmax, x, b.immF(0.0));
}

/** x^8 by three squarings (mirrors ref::pow8). */
inline Value
pow8(KernelBuilder &b, Value x)
{
    Value x2 = b.fmul(x, x);
    Value x4 = b.fmul(x2, x2);
    return b.fmul(x4, x4);
}

} // namespace dlp::kernels

#endif // DLP_KERNELS_BUILD_UTIL_HH
