/**
 * @file
 * Flat functional backing store with a simple bandwidth/latency model.
 *
 * Storage is sparse (allocated in 64 KB frames on first touch) so multi-
 * megabyte texture and matrix datasets cost only what they touch.
 */

#ifndef DLP_MEM_MAIN_MEMORY_HH
#define DLP_MEM_MAIN_MEMORY_HH

#include <cinttypes>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "mem/params.hh"
#include "sim/resource.hh"

namespace dlp::mem {

class MainMemory
{
  public:
    explicit MainMemory(const MemParams &params)
        : latency(cyclesToTicks(params.memLatency)),
          // One grant moves one word; words-per-cycle sets the interval.
          port(ticksPerCycle / params.memWordsPerCycle
                   ? ticksPerCycle / params.memWordsPerCycle : 1)
    {}

    /** Functional word read (byte address must be word aligned). */
    Word
    readWord(Addr addr) const
    {
        panic_if(addr % wordBytes != 0, "unaligned word read 0x%" PRIx64,
                 addr);
        const Frame *f = findFrame(addr);
        if (!f)
            return 0;
        Word w;
        std::memcpy(&w, f->data() + frameOffset(addr), wordBytes);
        return w;
    }

    /** Functional word write. */
    void
    writeWord(Addr addr, Word value)
    {
        panic_if(addr % wordBytes != 0, "unaligned word write 0x%" PRIx64,
                 addr);
        Frame &f = frame(addr);
        std::memcpy(f.data() + frameOffset(addr), &value, wordBytes);
    }

    /**
     * Timing access: a burst of words starting when the port grants.
     * @return completion tick.
     */
    Tick
    access(Tick start, unsigned words)
    {
        Tick grant = port.acquireMany(start, words);
        return grant + latency;
    }

    uint64_t accesses() const { return port.grants(); }

    void resetTiming() { port.reset(); }

  private:
    static constexpr Addr frameBytes = 64 * 1024;

    using Frame = std::vector<uint8_t>;

    static Addr frameBase(Addr addr) { return addr / frameBytes; }
    static size_t frameOffset(Addr addr)
    {
        return static_cast<size_t>(addr % frameBytes);
    }

    const Frame *
    findFrame(Addr addr) const
    {
        auto it = frames.find(frameBase(addr));
        return it == frames.end() ? nullptr : &it->second;
    }

    Frame &
    frame(Addr addr)
    {
        auto it = frames.find(frameBase(addr));
        if (it == frames.end())
            it = frames.emplace(frameBase(addr), Frame(frameBytes, 0)).first;
        return it->second;
    }

    std::unordered_map<Addr, Frame> frames;
    Tick latency;
    sim::Resource port;
};

} // namespace dlp::mem

#endif // DLP_MEM_MAIN_MEMORY_HH
