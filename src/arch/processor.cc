#include "arch/processor.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>

#include "check/verify.hh"
#include "common/bitutils.hh"
#include "common/logging.hh"
#include "cost/cost.hh"
#include "obs/timeline.hh"
#include "sched/linearize.hh"
#include "sched/simd_lowering.hh"

namespace dlp::arch {

using kernels::Kernel;
using kernels::Workload;

TripsProcessor::TripsProcessor(const core::MachineParams &params)
    : m(params)
{
}

sched::StreamLayout
makeStreamLayout(const Kernel &k, const core::MachineParams &m,
                 uint64_t &chunkRecords)
{
    // Partition the SMC between input, output and scratch streams; keep
    // slack for the unroll padding (at most 64 instances) so speculative
    // accesses of the last partial group stay in bounds.
    uint64_t capacity = m.memParams.rows * m.memParams.smcBankWords();
    uint64_t span = uint64_t(k.inWords) + k.outWords + k.scratchWords;
    uint64_t alloc = capacity / span;
    fatal_if(alloc < 96,
             "kernel %s: record span %" PRIu64 " words too large for the SMC",
             k.name.c_str(), span);
    chunkRecords = alloc - 80;

    sched::StreamLayout layout;
    layout.inBase = 0;
    layout.outBase = alloc * k.inWords;
    layout.scratchBase = layout.outBase + alloc * k.outWords;
    layout.chunkRecords = chunkRecords;
    return layout;
}

ExperimentResult
TripsProcessor::run(Workload &workload)
{
    return m.mech.localPC ? runMimd(workload) : runSimd(workload);
}

namespace {

/** Copy a chunk of records into the SMC, zero-padding to padRecords. */
void
loadChunk(mem::MemorySystem &mem, const sched::StreamLayout &layout,
          const Kernel &k, const std::vector<Word> &input, uint64_t first,
          uint64_t count, uint64_t padRecords)
{
    for (uint64_t r = 0; r < padRecords; ++r) {
        for (unsigned w = 0; w < k.inWords; ++w) {
            Word v = r < count ? input[(first + r) * k.inWords + w] : 0;
            mem.smc().poke(layout.inBase + r * k.inWords + w, v);
        }
    }
}

void
readChunk(mem::MemorySystem &mem, const sched::StreamLayout &layout,
          const Kernel &k, std::vector<Word> &out, uint64_t count)
{
    for (uint64_t r = 0; r < count; ++r)
        for (unsigned w = 0; w < k.outWords; ++w)
            out.push_back(mem.smc().peek(layout.outBase + r * k.outWords + w));
}

void
fill(ExperimentResult &res, const core::RunStats &stats)
{
    res.cycles += stats.cycles;
    res.usefulOps += stats.usefulOps;
    res.instsExecuted += stats.instsExecuted;
    res.activations += stats.activations;
    res.mappings += stats.mappings;
}

/**
 * Run the static verifier over the plan the engine is about to execute,
 * record the findings, and refuse to run a plan with Error findings: a
 * malformed block would deadlock or silently compute garbage thousands
 * of cycles in.
 */
void
gateOnCheck(ExperimentResult &res, const check::Report &rep)
{
    res.checked = true;
    res.checkErrors = rep.errors();
    res.checkWarnings = rep.warnings();
    for (const auto &d : rep.diags)
        res.checkFindings.push_back({d.rule,
                                     check::severityName(d.severity),
                                     d.location(), d.message});
    fatal_if(rep.errors() > 0,
             "static check rejected %s on %s (%zu error%s):\n%s",
             res.kernel.c_str(), res.config.c_str(), rep.errors(),
             rep.errors() == 1 ? "" : "s", rep.describe().c_str());
}

/** Flatten a cost report into the result's value-semantic summary. */
void
fillCost(ExperimentResult &res, const cost::CostReport &rep)
{
    res.cost.analyzed = rep.analyzed;
    res.cost.mimd = rep.mimd;
    res.cost.unroll = rep.unroll;
    res.cost.perActivationRemap = rep.perActivationRemap;
    res.cost.segments = rep.segments.size();
    res.cost.mapTicksMin = rep.mapTicksMin;
    res.cost.boundTicksPerActivation = rep.boundTicksPerActivation;
    res.cost.setupTicks = rep.setupTicks;
    res.cost.minCycleInsts = rep.minCycleInsts;
    res.cost.minCycleLoadUnits = rep.minCycleLoadUnits;
    res.cost.minCycleStoreUnits = rep.minCycleStoreUnits;
    res.cost.tiles = rep.tiles;
    res.cost.gridCols = rep.gridCols;
    res.cost.criticalPathTicks = rep.criticalPathTicks;
    res.cost.maxPressureTicks = rep.maxPressureTicks;
    res.cost.bottleneck = rep.bottleneck;
    res.cost.hopMass = rep.hopMass;
    res.cost.hopLowerBound = rep.hopLowerBound;
    res.cost.smcReadUnits = rep.smcReadUnits;
    res.cost.smcWriteUnits = rep.smcWriteUnits;
    res.cost.rsOccupancy = rep.rsOccupancy;
    res.cost.predictedTicksPerRecord = rep.predictedTicksPerRecord;
}

/** Wall-clock timer for the host-performance stats of one run. */
class HostTimer
{
  public:
    HostTimer() : start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

} // namespace

ExperimentResult
TripsProcessor::runSimd(Workload &workload)
{
    const Kernel &k = workload.kernel();
    ExperimentResult res;
    res.kernel = k.name;
    res.config = m.name;

    obs::HostSpan expSpan(obs::Cat::Driver, "experiment",
                          k.name + "/" + m.name);
    HostTimer timer;
    uint64_t chunkRecords = 0;
    sched::StreamLayout layout = makeStreamLayout(k, m, chunkRecords);
    sched::SimdPlan plan = sched::lowerSimd(k, m, layout);
    fillCost(res, cost::analyzeSimd(plan, m, workload.totalRecords(),
                                    workload.numBatches()));
    if (check::checkEnabled()) {
        obs::HostSpan checkSpan(obs::Cat::Check, "staticCheck",
                                k.name + "/" + m.name);
        gateOnCheck(res, check::verify({&plan, nullptr, &k}, m));
    }

    mem::MemorySystem memory(m.memParams, m.mech.smc, m.hopTicks);
    workload.populateIrregular([&memory](Addr a, Word w) {
        memory.mainMemory().writeWord(a, w);
    });

    core::BlockEngine engine(m, memory);
    engine.setTables(&k.tables);

    // Periodic stat sampling (off when the interval is zero): the
    // engine polls the sampler at activation boundaries, and the
    // closing row at the final tick makes the delta columns sum to the
    // end-of-run aggregates exactly.
    obs::StatSampler sampler(obs::timeseriesInterval(),
                             {&engine.statsGroup(),
                              &engine.network().statsGroup(),
                              &memory.smc().statsGroup(),
                              &memory.statsGroup()});
    engine.setSampler(&sampler);

    std::vector<Word> input;
    uint64_t records;
    uint64_t chunks = 0;
    while (workload.nextBatch(input, records)) {
        std::vector<Word> output;
        output.reserve(records * k.outWords);
        bool multiChunk = records > chunkRecords;
        for (uint64_t first = 0; first < records; first += chunkRecords) {
            uint64_t count = std::min(chunkRecords, records - first);
            uint64_t pad =
                divCeil(count, plan.unroll) * plan.unroll;
            loadChunk(memory, layout, k, input, first, count, pad);
            if (multiChunk) {
                // The dataset exceeds the SMC (the paper's lu case):
                // the DMA engines stage this chunk in and the previous
                // chunk's results out.
                uint64_t words =
                    count * (uint64_t(k.inWords) + k.outWords);
                Tick done = memory.dma(first == 0 ? 0u : 1u,
                                       static_cast<unsigned>(
                                           std::min<uint64_t>(words,
                                                              1u << 30)),
                                       engine.now());
                engine.advanceTo(done);
            }
            Tick chunkStart = engine.now();
            core::RunStats stats = engine.run(plan, count);
            OBS_SIM_SPAN(Engine, "chunk", chunkStart,
                         engine.now() - chunkStart, count);
            fill(res, stats);
            readChunk(memory, layout, k, output, count);
            ++chunks;
        }
        workload.consumeOutput(output);
        res.records += records;
    }

    engine.setSampler(nullptr);
    res.timeseries = sampler.finalize(engine.now());

    res.statGroups.push_back(engine.statsGroup().snapshot());
    res.statGroups.push_back(engine.network().statsGroup().snapshot());
    res.statGroups.push_back(memory.smc().statsGroup().snapshot());
    res.statGroups.push_back(memory.statsGroup().snapshot());

    res.hostEvents = engine.hostEvents();
    res.hostSeconds = timer.seconds();
    res.ffEpochs = engine.ffEpochs();
    res.ffIterations = engine.ffIterations();
    res.ffEventsSaved = engine.ffEventsSaved();
    res.eventActivations = engine.eventActivations();

    std::string err;
    res.verified = workload.verify(err);
    res.error = err;
    return res;
}

ExperimentResult
TripsProcessor::runMimd(Workload &workload)
{
    const Kernel &k = workload.kernel();
    ExperimentResult res;
    res.kernel = k.name;
    res.config = m.name;

    obs::HostSpan expSpan(obs::Cat::Driver, "experiment",
                          k.name + "/" + m.name);
    HostTimer timer;
    uint64_t chunkRecords = 0;
    sched::StreamLayout layout = makeStreamLayout(k, m, chunkRecords);
    sched::MimdPlan plan = sched::lowerMimd(k, m, layout);
    fillCost(res, cost::analyzeMimd(plan, m, workload.totalRecords(),
                                    workload.numBatches()));
    if (check::checkEnabled()) {
        obs::HostSpan checkSpan(obs::Cat::Check, "staticCheck",
                                k.name + "/" + m.name);
        gateOnCheck(res, check::verify({nullptr, &plan, &k}, m));
    }

    mem::MemorySystem memory(m.memParams, m.mech.smc, m.hopTicks);
    workload.populateIrregular([&memory](Addr a, Word w) {
        memory.mainMemory().writeWord(a, w);
    });

    core::MimdEngine engine(m, memory);
    engine.setTables(&k.tables);

    obs::StatSampler sampler(obs::timeseriesInterval(),
                             {&engine.statsGroup(),
                              &engine.network().statsGroup(),
                              &memory.smc().statsGroup(),
                              &memory.statsGroup()});
    engine.setSampler(&sampler);

    std::vector<Word> input;
    uint64_t records;
    while (workload.nextBatch(input, records)) {
        std::vector<Word> output;
        output.reserve(records * k.outWords);
        bool multiChunk = records > chunkRecords;
        for (uint64_t first = 0; first < records; first += chunkRecords) {
            uint64_t count = std::min(chunkRecords, records - first);
            loadChunk(memory, layout, k, input, first, count, count);
            if (multiChunk) {
                uint64_t words =
                    count * (uint64_t(k.inWords) + k.outWords);
                Tick done = memory.dma(first == 0 ? 0u : 1u,
                                       static_cast<unsigned>(
                                           std::min<uint64_t>(words,
                                                              1u << 30)),
                                       engine.now());
                engine.advanceTo(done);
            }
            Tick chunkStart = engine.now();
            core::RunStats stats = engine.run(plan, count);
            OBS_SIM_SPAN(Engine, "chunk", chunkStart,
                         engine.now() - chunkStart, count);
            fill(res, stats);
            readChunk(memory, layout, k, output, count);
        }
        workload.consumeOutput(output);
        res.records += records;
    }

    engine.setSampler(nullptr);
    res.timeseries = sampler.finalize(engine.now());

    res.statGroups.push_back(engine.statsGroup().snapshot());
    res.statGroups.push_back(engine.network().statsGroup().snapshot());
    res.statGroups.push_back(memory.smc().statsGroup().snapshot());
    res.statGroups.push_back(memory.statsGroup().snapshot());

    res.hostEvents = engine.hostEvents();
    res.hostSeconds = timer.seconds();
    // MIMD never fast-forwards: every activation runs event-by-event.
    res.eventActivations = res.activations;

    std::string err;
    res.verified = workload.verify(err);
    res.error = err;
    return res;
}

} // namespace dlp::arch
