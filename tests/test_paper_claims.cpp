/**
 * @file
 * The paper-shape tests: qualitative results of Section 5.3 / Figure 5
 * that the reproduction must exhibit. These run the full grid at reduced
 * problem scales (see EXPERIMENTS.md for the full-scale numbers and the
 * known magnitude deviations).
 */

#include <gtest/gtest.h>

#include "analysis/experiments.hh"
#include "arch/configs.hh"
#include "common/logging.hh"

using namespace dlp;
using namespace dlp::analysis;

class PaperClaims : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setQuietLogging(true);
        grid = new Grid(runGrid(/*scaleDiv=*/4));
    }

    static void TearDownTestSuite() { delete grid; }

    static Grid *grid;
};

Grid *PaperClaims::grid = nullptr;

TEST_F(PaperClaims, EveryExperimentVerified)
{
    for (const auto &kv : *grid)
        for (const auto &cfg : kv.second)
            EXPECT_TRUE(cfg.second.verified)
                << kv.first << " on " << cfg.first;
}

TEST_F(PaperClaims, AllMechanismConfigsBeatBaseline)
{
    // Figure 5: every bar is above 1.0 for the SIMD-style configs.
    for (const auto &kernel : perfKernels()) {
        EXPECT_GT(speedup(*grid, kernel, "S"), 1.0) << kernel;
        EXPECT_GT(speedup(*grid, kernel, "S-O"), 1.0) << kernel;
        EXPECT_GT(speedup(*grid, kernel, "S-O-D"), 1.0) << kernel;
    }
}

TEST_F(PaperClaims, ScientificCodesPreferSimdOverMimd)
{
    // Section 5.3 "SIMD execution (S)": fft and lu prefer S; the
    // routing overhead of MIMD degrades them. Run at full problem
    // scale -- the effect is about steady-state stream bandwidth.
    for (const char *kernel : {"fft", "lu"}) {
        auto s = runExperiment(kernel, "S", 1);
        auto m = runExperiment(kernel, "M", 1);
        EXPECT_LT(s.cycles, m.cycles) << kernel;
    }
    // And adding the other mechanisms does not help them further
    // (no constants, no tables): S == S-O == S-O-D.
    EXPECT_NEAR(speedup(*grid, "fft", "S"), speedup(*grid, "fft", "S-O-D"),
                1e-9);
    EXPECT_NEAR(speedup(*grid, "lu", "S"), speedup(*grid, "lu", "S-O-D"),
                1e-9);
}

TEST_F(PaperClaims, OperandRevitalizationHelpsConstantHeavyKernels)
{
    // Section 5.3 "SIMD + scalar operand access (S-O)".
    EXPECT_GT(speedup(*grid, "vertex-simple", "S-O") /
                  speedup(*grid, "vertex-simple", "S"),
              1.05);
    EXPECT_GE(speedup(*grid, "highpassfilter", "S-O"),
              speedup(*grid, "highpassfilter", "S"));
    EXPECT_GE(speedup(*grid, "convert", "S-O"),
              speedup(*grid, "convert", "S"));
}

TEST_F(PaperClaims, L0StoreHelpsTableKernels)
{
    // Section 5.3: blowfish and rijndael gain substantially from the
    // L0 data store (paper: +27% and +80% over S-O).
    EXPECT_GT(speedup(*grid, "blowfish", "S-O-D") /
                  speedup(*grid, "blowfish", "S-O"),
              1.15);
    EXPECT_GT(speedup(*grid, "rijndael", "S-O-D") /
                  speedup(*grid, "rijndael", "S-O"),
              1.10);
    // ... and it is what separates M-D from M on the same kernels.
    EXPECT_GT(speedup(*grid, "blowfish", "M-D"),
              speedup(*grid, "blowfish", "M"));
    EXPECT_GT(speedup(*grid, "rijndael", "M-D"),
              speedup(*grid, "rijndael", "M"));
}

TEST_F(PaperClaims, TableAndControlKernelsPreferMimdWithL0)
{
    // Section 5.3 "MIMD + lookup table access (M-D)": best for
    // blowfish, rijndael and vertex-skinning. At reduced scales the
    // one-time L0 table broadcast can mask M-D's edge over M, so run
    // these at a fuller scale.
    for (const char *kernel :
         {"blowfish", "rijndael", "vertex-skinning"}) {
        Cycles best = ~Cycles(0);
        std::string bestCfg;
        for (const auto &config : arch::allConfigNames()) {
            auto res = runExperiment(kernel, config, 2);
            if (res.cycles < best) {
                best = res.cycles;
                bestCfg = config;
            }
        }
        EXPECT_EQ(bestCfg, "M-D") << kernel;
    }
}

TEST_F(PaperClaims, DataDependentBranchingFavorsLocalPCs)
{
    // vertex-skinning executes only the bones each vertex has on the
    // MIMD machine, but worst-case bones with selects on SIMD.
    EXPECT_GT(speedup(*grid, "vertex-skinning", "M-D"),
              speedup(*grid, "vertex-skinning", "S-O-D"));
}

TEST_F(PaperClaims, FragmentShadersUseTheCachedL1)
{
    // The irregular texture kernels get their best SIMD-side results
    // with the full S-O(-D) stack and do not collapse on the baseline
    // (the L1 mechanism serves them in all configs).
    EXPECT_GT(speedup(*grid, "fragment-simple", "S-O"), 1.5);
    EXPECT_GT(speedup(*grid, "fragment-reflection", "S-O"), 1.5);
}

TEST_F(PaperClaims, FlexibleBeatsEveryFixedConfiguration)
{
    // The headline: dynamic per-application configuration beats any
    // fixed machine (paper: +55% over S, +20% over S-O, +5% over M-D).
    double flexible = meanSpeedup(*grid, "flexible");
    for (const char *config : {"S", "S-O", "S-O-D", "M", "M-D"})
        EXPECT_GE(flexible, meanSpeedup(*grid, config) - 1e-9) << config;
    EXPECT_GT(flexible / meanSpeedup(*grid, "S"), 1.2);
}

TEST_F(PaperClaims, StorageLimitedMd5GainsLittleFromS)
{
    // Section 5.2/5.3: md5's 680-instruction body cannot be unrolled,
    // so the SIMD configurations barely beat the baseline while the
    // MIMD machine (one copy of the code per tile) runs away.
    EXPECT_LT(speedup(*grid, "md5", "S"), 2.0);
    EXPECT_GT(speedup(*grid, "md5", "M-D"), speedup(*grid, "md5", "S"));
}
