file(REMOVE_RECURSE
  "libdlp_common.a"
)
