/**
 * @file
 * A DPRINTF-style trace framework in the gem5 tradition.
 *
 * Components emit tick-stamped trace lines gated by *named flags*:
 *
 *     DPRINTF(Mesh, "routed (%u,%u)->(%u,%u) arrive=%" PRIu64,
 *             src.row, src.col, dst.row, dst.col, arrive);
 *
 * prints, when the Mesh flag is on,
 *
 *     1234: mesh: routed (0,0)->(3,4) arrive=1240
 *
 * Flags are settable programmatically (trace::enable / trace::disable /
 * trace::parseFlagList) and from the DLP_TRACE environment variable, a
 * comma-separated list parsed once at startup:
 *
 *     DLP_TRACE=Mesh,SMC ./build/bench/bench_figure5
 *     DLP_TRACE=All,-EventQ ...      # everything except the event queue
 *
 * All lines flow through one stream sink (std::cout by default), so the
 * interleaving of trace output is deterministic for a deterministic
 * simulation. The tick stamp comes from trace::curTick(), which the
 * execution engines keep current as simulated time advances. The tick is
 * thread-local: when the sweep driver runs independent simulations on
 * worker threads, each worker stamps lines with its own simulated time.
 * Flag bits are atomic and the sink is mutex-guarded, so concurrent
 * simulations never shear a trace line (though their lines interleave).
 *
 * When a flag is disabled the macro costs one array load and a branch;
 * defining DLP_TRACE_DISABLED at compile time removes even that.
 */

#ifndef DLP_COMMON_TRACE_HH
#define DLP_COMMON_TRACE_HH

#include <atomic>
#include <cinttypes>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace dlp {

/**
 * Default trace component name. A class that traces shadows this with a
 * member returning its own name (the DPRINTF macro resolves the call at
 * the use site, so member functions pick up the member automatically).
 */
inline const char *dlpTraceName() { return "global"; }

namespace trace {

/** The named trace flags. Keep flagName() in trace.cc in sync. */
enum class Flag : unsigned
{
    EventQ,  ///< event queue scheduling and execution
    Mesh,    ///< operand-network routing and contention
    SMC,     ///< software-managed cache banks, channels, DMA
    Cache,   ///< L1/L2 probes, hits and misses
    Mem,     ///< memory-system facade (stream/cached accesses)
    Engine,  ///< engine activations, pacing, instruction issue
    Revit,   ///< instruction/operand revitalization events
    Exec,    ///< per-instruction execution (very verbose)
    Epoch,   ///< epoch fast-forwarding: record, replay, bail-out
    NumFlags
};

constexpr unsigned numFlags = static_cast<unsigned>(Flag::NumFlags);

namespace detail {

/**
 * Per-flag enable bits, indexed by Flag. Atomic so one thread can flip
 * flags while worker threads run simulations; relaxed loads keep the
 * disabled-flag hot path to a single uncontended byte load.
 */
extern std::atomic<bool> flags[numFlags];

/** Current simulated tick used for the line stamp, per thread. */
extern thread_local Tick now;

} // namespace detail

/** Is this flag currently enabled? The hot-path check. */
inline bool
enabled(Flag f)
{
    return detail::flags[static_cast<unsigned>(f)].load(
        std::memory_order_relaxed);
}

/** Engines call this as simulated time advances. */
inline void setCurTick(Tick t) { detail::now = t; }
inline Tick curTick() { return detail::now; }

/** The canonical name of one flag. */
const char *flagName(Flag f);

/** All flag names, in enum order (for help text and tests). */
std::vector<std::string> flagNames();

void enable(Flag f);
void disable(Flag f);
void disableAll();

/** Is at least one flag enabled? */
bool anyEnabled();

/**
 * Enable ("Mesh") or disable ("-Mesh") one flag by name; "All" matches
 * every flag. Names are case-sensitive.
 * @return false (with a warn()) if the name is unknown.
 */
bool setByName(const std::string &spec);

/** Parse a comma-separated flag list ("Mesh,SMC" or "All,-EventQ"). */
void parseFlagList(const std::string &list);

/**
 * Parse the DLP_TRACE environment variable. Called automatically before
 * main() (harmless to call again, e.g. after setenv in tests).
 */
void initFromEnv();

/** Redirect trace output (nullptr restores the default, std::cout). */
void setSink(std::ostream *os);
std::ostream &sink();

/** Emit one "tick: component: message" line. Not called directly. */
void output(Flag f, const char *component, const std::string &msg);

} // namespace trace
} // namespace dlp

#ifdef DLP_TRACE_DISABLED
#define DPRINTF(flag, ...) do {} while (0)
#else
/**
 * Emit a trace line gated by a named flag. The component name is the
 * nearest-scope dlpTraceName() (a class member, or the "global" default).
 */
#define DPRINTF(flag, ...)                                                    \
    do {                                                                      \
        if (::dlp::trace::enabled(::dlp::trace::Flag::flag)) {                \
            ::dlp::trace::output(                                             \
                ::dlp::trace::Flag::flag, dlpTraceName(),                     \
                ::dlp::logging_detail::format(__VA_ARGS__));                  \
        }                                                                     \
    } while (0)
#endif

#endif // DLP_COMMON_TRACE_HH
