/**
 * @file
 * The machine configurations of Table 5.
 *
 * All configurations share the baseline substrate of Section 5.2 (8x8
 * array, 64 KB SMC banks one per row, 2 MB L2, 64 KB L1, Alpha-21264
 * latencies, half-cycle hops); they differ only in which universal
 * mechanisms are enabled:
 *
 *   baseline  : none (the ILP-mode TRIPS core of Table 4)
 *   S         : SMC + instruction revitalization      (SIMD-like)
 *   S-O       : S + operand revitalization
 *   S-O-D     : S-O + L0 data store
 *   M         : SMC + local program counters          (MIMD)
 *   M-D       : M + L0 data store
 */

#ifndef DLP_ARCH_CONFIGS_HH
#define DLP_ARCH_CONFIGS_HH

#include <string>
#include <vector>

#include "core/machine.hh"

namespace dlp::arch {

core::MachineParams baselineConfig();
core::MachineParams sConfig();
core::MachineParams soConfig();
core::MachineParams sodConfig();
core::MachineParams mConfig();
core::MachineParams mdConfig();

/** Look up by Table 5 name: baseline, S, S-O, S-O-D, M, M-D. */
core::MachineParams configByName(const std::string &name);

/** All Table 5 names, baseline first. */
const std::vector<std::string> &allConfigNames();

} // namespace dlp::arch

#endif // DLP_ARCH_CONFIGS_HH
