# Empty compiler generated dependencies file for dlp_ref.
# This may be replaced when dependencies are built.
