#include "ref/md5.hh"

#include <cmath>
#include <cstring>

#include "common/bitutils.hh"

namespace dlp::ref {

Md5State
md5Init()
{
    return {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
}

const std::array<uint32_t, 64> &
md5T()
{
    static const std::array<uint32_t, 64> t = [] {
        std::array<uint32_t, 64> v{};
        for (int i = 0; i < 64; ++i)
            v[i] = static_cast<uint32_t>(
                std::floor(std::fabs(std::sin(double(i + 1))) * 4294967296.0));
        return v;
    }();
    return t;
}

const std::array<uint32_t, 64> &
md5Shifts()
{
    static const std::array<uint32_t, 64> s = {
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
        5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
        4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
        6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};
    return s;
}

void
md5Compress(Md5State &state, const uint32_t block[16])
{
    const auto &T = md5T();
    const auto &S = md5Shifts();

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];

    for (int i = 0; i < 64; ++i) {
        uint32_t f;
        int g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        uint32_t tmp = d;
        d = c;
        c = b;
        b = b + rotl32(a + f + T[i] + block[g], S[i]);
        a = tmp;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
}

std::array<uint8_t, 16>
md5Digest(const uint8_t *data, size_t len)
{
    Md5State state = md5Init();

    // Full chunks.
    size_t full = len / 64;
    for (size_t c = 0; c < full; ++c) {
        uint32_t block[16];
        std::memcpy(block, data + c * 64, 64);
        md5Compress(state, block);
    }

    // Padding: 0x80, zeros, 64-bit little-endian bit length.
    uint8_t tail[128] = {};
    size_t rem = len % 64;
    std::memcpy(tail, data + full * 64, rem);
    tail[rem] = 0x80;
    size_t tailLen = rem + 1 <= 56 ? 64 : 128;
    uint64_t bits = static_cast<uint64_t>(len) * 8;
    std::memcpy(tail + tailLen - 8, &bits, 8);

    for (size_t c = 0; c < tailLen / 64; ++c) {
        uint32_t block[16];
        std::memcpy(block, tail + c * 64, 64);
        md5Compress(state, block);
    }

    std::array<uint8_t, 16> out;
    std::memcpy(out.data(), state.data(), 16);
    return out;
}

std::string
md5Hex(const std::array<uint8_t, 16> &digest)
{
    static const char hex[] = "0123456789abcdef";
    std::string s;
    s.reserve(32);
    for (uint8_t b : digest) {
        s.push_back(hex[b >> 4]);
        s.push_back(hex[b & 0xf]);
    }
    return s;
}

} // namespace dlp::ref
