/**
 * @file
 * Periodic stat sampling: utilization over time, not just end-of-run.
 *
 * A StatSampler watches a set of StatGroups and, at a configurable
 * simulated-tick interval, records one row of *deltas* — how much each
 * scalar counter (and each Distribution's sample count and sum)
 * advanced since the previous row — plus the instantaneous value of
 * every Formula (rates and ratios are levels, not flows; a delta of a
 * hit rate means nothing). Vector stats are omitted: per-lane columns
 * would dwarf the rest of the table and their totals are already
 * scalars.
 *
 * Because every watched stat starts from zero when the engine is
 * constructed, the columns obey a conservation law the tests (and the
 * auditor-minded reader) can check: the column sums of the delta rows
 * equal the final aggregate counters. finalize() appends a closing row
 * capturing the tail interval precisely so that law holds exactly.
 *
 * Sampling is polled, not scheduled: the engines call maybeSample() at
 * activation (SIMD) or step (MIMD) boundaries, so rows land on natural
 * quiescent points and the sampler never perturbs the event queue —
 * tracing a run cannot change its timing. Consequently row ticks are
 * the boundary ticks that first crossed each interval, not exact
 * multiples of it.
 *
 * The result is a value-semantic TimeSeries carried on the
 * ExperimentResult and exported as the "timeseries" object in
 * experiment JSON.
 */

#ifndef DLP_OBS_SAMPLER_HH
#define DLP_OBS_SAMPLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dlp::obs {

/** One experiment's sampled stat table (empty when sampling is off). */
struct TimeSeries
{
    uint64_t intervalTicks = 0;

    /** Column names ("core.simd.activations", "mem.sys.l1HitRate"). */
    std::vector<std::string> statNames;

    /** Per column: true = instantaneous level (formulas), false = delta. */
    std::vector<bool> isLevel;

    /** Simulated tick of each row (the boundary that crossed the
     *  interval, monotonically increasing). */
    std::vector<uint64_t> ticks;

    /** One row per tick, parallel to statNames. */
    std::vector<std::vector<double>> samples;

    bool present() const { return intervalTicks != 0 && !statNames.empty(); }
};

/**
 * Watches StatGroups and accumulates a TimeSeries. Construct after the
 * groups exist (the constructor snapshots them once, which also runs
 * their preDump hooks so lazily-registered scalars get columns).
 */
class StatSampler
{
  public:
    StatSampler(uint64_t intervalTicks, std::vector<StatGroup *> groups);

    /** Cheap hot-path check: has simulated time crossed the next
     *  sampling boundary? */
    bool due(Tick t) const { return interval != 0 && t >= nextTick; }

    /** Record a row if due; advances the boundary past t. */
    void
    maybeSample(Tick t)
    {
        if (due(t))
            sample(t);
    }

    /** Unconditionally record a row at tick t (t must not decrease). */
    void sample(Tick t);

    /**
     * Append the closing row at finalTick (so column sums equal the
     * final aggregates) and move the accumulated series out. The
     * sampler is spent afterwards.
     */
    TimeSeries finalize(Tick finalTick);

    uint64_t intervalTicks() const { return interval; }
    size_t rows() const { return series.ticks.size(); }

  private:
    /** What one column reads out of a GroupSnapshot. */
    enum class Kind : uint8_t { Scalar, DistSamples, DistSum, Formula };

    struct Column
    {
        size_t group;    ///< index into watched
        std::string key; ///< stat name within the group
        Kind kind;
    };

    /** Current absolute value of every column, in column order. */
    std::vector<double> readAll();

    std::vector<StatGroup *> watched;
    std::vector<Column> columns;
    std::vector<double> prev; ///< absolute values at the previous row
    TimeSeries series;
    uint64_t interval = 0;
    Tick nextTick = 0;
    Tick lastTick = 0;
};

} // namespace dlp::obs

#endif // DLP_OBS_SAMPLER_HH
