/**
 * @file
 * Regenerates Figure 5 (speedup of each mechanism configuration over the
 * baseline, programs grouped by best configuration, plus the Flexible
 * harmonic-mean comparison) and prints the Table 5 configuration matrix
 * for reference.
 *
 * Paper's qualitative shape (Section 5.3):
 *  - fft/lu prefer S (about 4x over baseline; M slightly degrades),
 *  - seven programs prefer S-O (constant-heavy),
 *  - blowfish/rijndael gain 27%/80% from the L0 store over S-O but are
 *    still beaten by M-D,
 *  - md5/blowfish/rijndael/vertex-skinning prefer M-D,
 *  - Flexible beats fixed S by ~55%, fixed S-O by ~20%, fixed M-D by ~5%.
 *
 * --audit (or DLP_AUDIT=1) evaluates the conservation invariants on
 * every run; --check (or DLP_CHECK=1) statically verifies every
 * scheduled program before it runs and aborts on Error findings.
 * --store=DIR (or DLP_STORE=DIR) serves warm grid cells from the
 * persistent result store and writes cold ones back, so a second run
 * is near-instant and bit-identical.
 * --trace-out=FILE captures a Chrome-trace/Perfetto timeline of the
 * grid; --timeseries=N samples every stat each N simulated ticks into
 * the per-experiment "timeseries" JSON object (also DLP_TIMELINE /
 * DLP_TIMESERIES).
 * Epoch fast-forwarding (steady-state trace JIT) is on by default and
 * bit-identical to full simulation; --no-fast-forward (or
 * DLP_FASTFORWARD=0) forces event-by-event execution, --fast-forward
 * forces it back on.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analysis/experiments.hh"
#include "analysis/export.hh"
#include "analysis/report.hh"
#include "arch/configs.hh"
#include "common/logging.hh"
#include "check/verify.hh"
#include "driver/job_pool.hh"
#include "driver/sweep.hh"
#include "epoch/epoch.hh"
#include "obs/timeline.hh"
#include "verify/audit.hh"

using namespace dlp;
using namespace dlp::analysis;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    uint64_t scaleDiv = 1;
    unsigned jobs = 0; // 0 = DLP_JOBS environment default
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            scaleDiv = 8;
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = unsigned(std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "--audit") == 0)
            verify::setAuditEnabled(true);
        else if (std::strcmp(argv[i], "--check") == 0)
            check::setCheckEnabled(true);
        else if (std::strcmp(argv[i], "--fast-forward") == 0)
            epoch::setFastForwardEnabled(true);
        else if (std::strcmp(argv[i], "--no-fast-forward") == 0)
            epoch::setFastForwardEnabled(false);
        else if (std::strncmp(argv[i], "--store=", 8) == 0)
            driver::setDefaultStoreDir(argv[i] + 8);
        else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc)
            driver::setDefaultStoreDir(argv[++i]);
        else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
            obs::setOutputPath(argv[i] + 12);
            obs::setRecording(true);
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            obs::setOutputPath(argv[++i]);
            obs::setRecording(true);
        } else if (std::strncmp(argv[i], "--timeseries=", 13) == 0) {
            obs::setTimeseriesInterval(
                std::strtoull(argv[i] + 13, nullptr, 10));
        } else if (std::strcmp(argv[i], "--timeseries") == 0 &&
                   i + 1 < argc) {
            obs::setTimeseriesInterval(
                std::strtoull(argv[++i], nullptr, 10));
        }
    }
    unsigned effectiveJobs = jobs ? jobs : driver::JobPool::defaultWorkers();

    std::cout << "Table 5: machine configurations\n";
    TextTable t5;
    t5.header({"Config", "L0 inst", "L0 data", "Inst revit", "Op revit",
               "Model"});
    t5.row({"S", "N", "N", "Y", "N", "SIMD"});
    t5.row({"S-O", "N", "N", "Y", "Y", "SIMD + scalar constants"});
    t5.row({"S-O-D", "N", "Y", "Y", "Y",
            "SIMD + scalar constants + lookup table"});
    t5.row({"M", "Y", "N", "N", "N", "MIMD"});
    t5.row({"M-D", "Y", "Y", "N", "N", "MIMD + lookup table"});
    t5.print(std::cout);
    std::cout << "\nRunning the experiment grid (13 kernels x 6 configs, "
              << effectiveJobs
              << (effectiveJobs == 1 ? " worker)" : " workers)")
              << (scaleDiv > 1 ? " [quick mode]" : "") << "...\n\n";

    auto t0 = std::chrono::steady_clock::now();
    Grid grid = runGrid(scaleDiv, 1234, effectiveJobs);
    double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::cout << "Figure 5: speedup over baseline (grouped by best "
                 "config)\n";
    TextTable fig;
    fig.header({"Benchmark", "S", "S-O", "S-O-D", "M", "M-D", "best",
                "base cycles"});
    for (const auto &kernel : figure5Order()) {
        fig.row({kernel, fmt(speedup(grid, kernel, "S")),
                 fmt(speedup(grid, kernel, "S-O")),
                 fmt(speedup(grid, kernel, "S-O-D")),
                 fmt(speedup(grid, kernel, "M")),
                 fmt(speedup(grid, kernel, "M-D")),
                 bestConfig(grid, kernel),
                 std::to_string(grid.at(kernel).at("baseline").cycles)});
    }
    fig.print(std::cout);

    std::cout << "\nFlexible vs fixed configurations (harmonic mean "
                 "speedup over baseline):\n";
    TextTable flex;
    flex.header({"Config", "hmean speedup", "flexible advantage"});
    double flexible = meanSpeedup(grid, "flexible");
    for (const auto &config : {"S", "S-O", "S-O-D", "M", "M-D"}) {
        double s = meanSpeedup(grid, config);
        flex.row({config, fmt(s),
                  fmt((flexible / s - 1.0) * 100.0, 1) + "%"});
    }
    flex.row({"Flexible", fmt(flexible), "-"});
    flex.print(std::cout);

    std::cout << "\nPaper reference: Flexible is +55% over fixed S, +20% "
                 "over fixed S-O, +5% over fixed M-D.\n";

    std::cout << "\nGrid wall clock: " << fmt(wallSeconds, 2) << " s with "
              << effectiveJobs
              << (effectiveJobs == 1 ? " worker\n" : " workers\n");

    // With --audit (or DLP_AUDIT=1) every run in the grid was checked
    // against the conservation invariants; a violation fails the bench.
    size_t auditViolations = 0;
    bool audited = false;
    for (const auto &[kernel, byConfig] : grid) {
        for (const auto &[config, res] : byConfig) {
            if (!res.audited)
                continue;
            audited = true;
            for (const auto &f : res.auditViolations) {
                std::cout << "AUDIT VIOLATION " << kernel << "/" << config
                          << ": " << f.invariant << ": " << f.detail
                          << "\n";
                ++auditViolations;
            }
        }
    }
    if (audited)
        std::cout << "\nAudit: " << auditViolations
                  << " invariant violation(s) across the grid\n";

    json::Value doc = toJson(grid);
    doc.set("figure", "figure5");
    doc.set("scaleDiv", scaleDiv);
    doc.set("wallSeconds", wallSeconds);
    doc.set("jobs", uint64_t(effectiveJobs));
    doc.set("store", driver::storeStatsJson());
    json::Value means = json::Value::object();
    for (const auto &config : {"S", "S-O", "S-O-D", "M", "M-D", "flexible"})
        means.set(config, meanSpeedup(grid, config));
    doc.set("meanSpeedups", std::move(means));
    writeJsonFile("BENCH_figure5.json", doc);
    std::cout << "\nWrote BENCH_figure5.json\n";

    std::string tracePath = obs::finish();
    if (!tracePath.empty())
        std::cout << "Wrote timeline " << tracePath
                  << " (open in Perfetto or chrome://tracing)\n";
    return auditViolations ? 1 : 0;
}
