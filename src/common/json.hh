/**
 * @file
 * A minimal self-contained JSON document model, writer and parser.
 *
 * The simulator's machine-readable output (stat-group dumps, the
 * experiment grid, the result store's entry files, the sweepd wire
 * protocol) must be consumable by external tooling without pulling a
 * third-party dependency into the build, so this implements just the
 * subset those consumers need:
 *
 *  - a Value DOM (null / bool / number / string / array / object);
 *    numbers built from 64-bit integers keep their exact value (no
 *    silent narrowing through double above 2^53 — cycle counters and
 *    distribution accumulators of very long simulations stay
 *    bit-exact), and the parser restores integer literals exactly,
 *  - objects preserve insertion order, so exported documents have a
 *    stable, deterministic key ordering run to run,
 *  - a writer with optional pretty-printing; doubles are emitted via
 *    std::to_chars (shortest round-trippable form), numbers that hold
 *    exact integral values print without a decimal point, and exact
 *    64-bit integers print all their digits,
 *  - a recursive-descent parser (used by the tests to round-trip the
 *    benches' output) that raises FatalError on malformed input.
 */

#ifndef DLP_COMMON_JSON_HH
#define DLP_COMMON_JSON_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace dlp::json {

class Value;

/** Object member list; a vector keeps insertion order stable. */
using Members = std::vector<std::pair<std::string, Value>>;

class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /**
     * How a Kind::Number stores its exact value. Integer-built numbers
     * keep full 64-bit precision; asNumber() always works (nearest
     * double), the width-specific accessors are lossless.
     */
    enum class NumRep { Double, Int64, UInt64 };

    Value() : kind_(Kind::Null) {}
    Value(std::nullptr_t) : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Number), num_(d) {}
    Value(int i) : Value(int64_t(i)) {}
    Value(unsigned u) : Value(uint64_t(u)) {}
    Value(int64_t i)
        : kind_(Kind::Number), rep_(NumRep::Int64), num_(double(i)),
          int_(uint64_t(i)) {}
    Value(uint64_t u)
        : kind_(Kind::Number), rep_(NumRep::UInt64), num_(double(u)),
          int_(u) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    /** An empty array or object. */
    static Value array() { Value v; v.kind_ = Kind::Array; return v; }
    static Value object() { Value v; v.kind_ = Kind::Object; return v; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { check(Kind::Bool); return bool_; }
    double asNumber() const { check(Kind::Number); return num_; }
    NumRep numRep() const { check(Kind::Number); return rep_; }
    /**
     * The number as an exact unsigned/signed 64-bit integer. Exact
     * integer representations convert losslessly (with a range check
     * across signedness); a double-represented number must hold an
     * integral value in range. Panics otherwise.
     */
    uint64_t asUInt64() const;
    int64_t asInt64() const;
    const std::string &asString() const { check(Kind::String); return str_; }

    /** Array access. */
    const std::vector<Value> &items() const { check(Kind::Array); return arr_; }
    void push(Value v) { check(Kind::Array); arr_.push_back(std::move(v)); }
    const Value &at(size_t i) const;

    /** Object access. */
    const Members &members() const { check(Kind::Object); return obj_; }
    /** Appends (or overwrites) a member, preserving first-set order. */
    void set(const std::string &key, Value v);
    /** The member's value; panics if the key is absent. */
    const Value &at(const std::string &key) const;
    /** Null if the key is absent. */
    const Value *find(const std::string &key) const;
    bool has(const std::string &key) const { return find(key) != nullptr; }

    size_t size() const;

  private:
    void
    check(Kind expected) const
    {
        panic_if(kind_ != expected, "json: value is not %s",
                 kindName(expected));
    }

    static const char *kindName(Kind k);

    Kind kind_;
    NumRep rep_ = NumRep::Double;
    bool bool_ = false;
    double num_ = 0.0;
    uint64_t int_ = 0;  ///< exact payload when rep_ is Int64/UInt64
    std::string str_;
    std::vector<Value> arr_;
    Members obj_;
};

/**
 * Serialize a document.
 *
 * @param indent spaces per nesting level; 0 emits a compact single line
 */
std::string write(const Value &v, unsigned indent = 2);

/** Parse a document; raises FatalError on malformed input. */
Value parse(const std::string &text);

} // namespace dlp::json

#endif // DLP_COMMON_JSON_HH
