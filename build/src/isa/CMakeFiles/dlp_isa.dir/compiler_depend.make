# Empty compiler generated dependencies file for dlp_isa.
# This may be replaced when dependencies are built.
