file(REMOVE_RECURSE
  "CMakeFiles/render_pipeline.dir/render_pipeline.cpp.o"
  "CMakeFiles/render_pipeline.dir/render_pipeline.cpp.o.d"
  "render_pipeline"
  "render_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
