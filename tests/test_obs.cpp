/**
 * @file
 * Tests for the timeline tracing subsystem (src/obs/): ring-buffer
 * overflow and wrap accounting, span nesting across the two clock
 * domains, round-tripping the exported Chrome trace JSON through the
 * in-repo parser, category filtering, the occupancy-signature hash,
 * the periodic stat sampler's conservation law, and the guarantee that
 * tracing and sampling never perturb simulated results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/experiments.hh"
#include "analysis/export.hh"
#include "analysis/json.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/sampler.hh"
#include "obs/timeline.hh"

using namespace dlp;
namespace json = dlp::analysis::json;

namespace {

/** RAII: leave the global timeline state clean for the next test. */
struct ObsReset
{
    ObsReset() { restore(); }
    ~ObsReset() { restore(); }

    static void
    restore()
    {
        obs::setRecording(false);
        obs::enableAllCats();
        obs::setTimeseriesInterval(0);
        obs::setRingCapacity(1 << 16);
        obs::clearTimeline();
    }
};

/** All trace events of one phase with a given name, in export order. */
std::vector<const json::Value *>
eventsNamed(const json::Value &doc, const std::string &name)
{
    std::vector<const json::Value *> out;
    for (const auto &ev : doc.at("traceEvents").items())
        if (ev.at("ph").asString() != "M" && ev.at("name").asString() == name)
            out.push_back(&ev);
    return out;
}

} // namespace

TEST(TimelineCats, MirrorTraceFlagsAndHostExtensions)
{
    // The first categories must track the DPRINTF flag registry name
    // for name so one filter vocabulary serves both systems.
    for (unsigned i = 0; i < trace::numFlags; ++i) {
        trace::Flag f = static_cast<trace::Flag>(i);
        EXPECT_STREQ(obs::catName(obs::catOf(f)), trace::flagName(f));
    }
    EXPECT_STREQ(obs::catName(obs::Cat::Driver), "Driver");
    EXPECT_STREQ(obs::catName(obs::Cat::Audit), "Audit");
    EXPECT_STREQ(obs::catName(obs::Cat::Check), "Check");
}

TEST(TimelineCats, ParseCatListFiltersAndWarnsOnce)
{
    ObsReset guard;
    obs::setRecording(true);

    // A positive list starts from all-off.
    obs::parseCatList("Mesh, SMC");
    EXPECT_TRUE(obs::enabled(obs::Cat::Mesh));
    EXPECT_TRUE(obs::enabled(obs::Cat::SMC));
    EXPECT_FALSE(obs::enabled(obs::Cat::Engine));
    EXPECT_FALSE(obs::enabled(obs::Cat::Driver));

    // "All" plus subtraction.
    obs::parseCatList("All,-Exec");
    EXPECT_TRUE(obs::enabled(obs::Cat::Mesh));
    EXPECT_TRUE(obs::enabled(obs::Cat::Driver));
    EXPECT_FALSE(obs::enabled(obs::Cat::Exec));

    // A pure-subtraction list starts from all-on.
    obs::parseCatList("-Driver");
    EXPECT_TRUE(obs::enabled(obs::Cat::Exec));
    EXPECT_FALSE(obs::enabled(obs::Cat::Driver));

    // Unknown names warn exactly once each, and the master switch still
    // gates everything: recording off means no category is enabled.
    resetWarnDeduplication();
    testing::internal::CaptureStderr();
    obs::parseCatList("NoSuchTimelineCat,Mesh");
    obs::parseCatList("NoSuchTimelineCat,Mesh");
    std::string err = testing::internal::GetCapturedStderr();
    resetWarnDeduplication();
    size_t count = 0;
    for (size_t pos = 0;
         (pos = err.find("unknown timeline category 'NoSuchTimelineCat'",
                         pos)) != std::string::npos;
         ++pos)
        ++count;
    EXPECT_EQ(count, 1u);
    EXPECT_TRUE(obs::enabled(obs::Cat::Mesh));
    obs::setRecording(false);
    EXPECT_FALSE(obs::enabled(obs::Cat::Mesh));
}

TEST(TimelineRing, OverflowWrapsOldestFirstAndCountsDrops)
{
    ObsReset guard;
    obs::setRingCapacity(32);
    obs::clearTimeline();
    obs::setRecording(true);

    const uint32_t name = obs::internName("wrap.ev");
    for (uint64_t i = 0; i < 100; ++i)
        obs::recordInstant(obs::Cat::Engine, name, obs::Domain::Sim, i, i);
    obs::setRecording(false);

    obs::TimelineCounts counts = obs::timelineCounts();
    EXPECT_EQ(counts.recorded, 32u);
    EXPECT_EQ(counts.dropped, 68u);
    EXPECT_GE(counts.threads, 1u);

    // The export walks the ring oldest-surviving-first: the 32 newest
    // instants, in recording order.
    json::Value doc = json::parse(obs::exportChromeJson());
    std::vector<uint64_t> ts;
    for (const json::Value *ev : eventsNamed(doc, "wrap.ev"))
        ts.push_back(static_cast<uint64_t>(ev->at("ts").asNumber()));
    ASSERT_EQ(ts.size(), 32u);
    EXPECT_EQ(ts.front(), 68u);
    EXPECT_EQ(ts.back(), 99u);
    EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));

    // clearTimeline drops events and the wrap debt.
    obs::clearTimeline();
    counts = obs::timelineCounts();
    EXPECT_EQ(counts.recorded, 0u);
    EXPECT_EQ(counts.dropped, 0u);
}

TEST(TimelineSpans, NestingAcrossClockDomains)
{
    ObsReset guard;
    obs::setRecording(true);

    // Simulated-tick spans through the instrumentation macros (also
    // exercises the per-site name-id caching).
    OBS_SIM_SPAN(Engine, "sim.outer", 100, 50, 7);
    OBS_SIM_SPAN(Exec, "sim.inner", 110, 10, 0);
    OBS_SIM_COUNTER(EventQ, "queue.depth", 120, 3.5);

    // Host-wall-clock spans, nested RAII style.
    {
        obs::HostSpan outer(obs::Cat::Driver, "host.outer",
                            "convert/baseline", 3);
        {
            obs::HostSpan inner(obs::Cat::Audit, "host.inner");
        }
    }
    obs::setRecording(false);

    json::Value doc = json::parse(obs::exportChromeJson());

    auto simOuter = eventsNamed(doc, "sim.outer");
    ASSERT_EQ(simOuter.size(), 1u);
    EXPECT_EQ(simOuter[0]->at("ph").asString(), "X");
    EXPECT_EQ(simOuter[0]->at("pid").asNumber(), 1.0);
    EXPECT_EQ(simOuter[0]->at("cat").asString(), "Engine");
    EXPECT_EQ(simOuter[0]->at("ts").asNumber(), 100.0);
    EXPECT_EQ(simOuter[0]->at("dur").asNumber(), 50.0);
    EXPECT_EQ(simOuter[0]->at("args").at("arg").asNumber(), 7.0);

    auto simInner = eventsNamed(doc, "sim.inner");
    ASSERT_EQ(simInner.size(), 1u);
    double innerTs = simInner[0]->at("ts").asNumber();
    double innerEnd = innerTs + simInner[0]->at("dur").asNumber();
    EXPECT_GE(innerTs, 100.0);
    EXPECT_LE(innerEnd, 150.0);

    auto counter = eventsNamed(doc, "queue.depth");
    ASSERT_EQ(counter.size(), 1u);
    EXPECT_EQ(counter[0]->at("ph").asString(), "C");
    EXPECT_DOUBLE_EQ(counter[0]->at("args").at("value").asNumber(), 3.5);

    auto hostOuter = eventsNamed(doc, "host.outer");
    auto hostInner = eventsNamed(doc, "host.inner");
    ASSERT_EQ(hostOuter.size(), 1u);
    ASSERT_EQ(hostInner.size(), 1u);
    EXPECT_EQ(hostOuter[0]->at("pid").asNumber(), 2.0);
    EXPECT_EQ(hostInner[0]->at("pid").asNumber(), 2.0);
    EXPECT_EQ(hostOuter[0]->at("cat").asString(), "Driver");
    EXPECT_EQ(hostInner[0]->at("cat").asString(), "Audit");
    EXPECT_EQ(hostOuter[0]->at("args").at("label").asString(),
              "convert/baseline");
    EXPECT_EQ(hostOuter[0]->at("args").at("arg").asNumber(), 3.0);

    // The inner span lies within the outer one (µs with ns precision;
    // allow parser rounding slack).
    double oTs = hostOuter[0]->at("ts").asNumber();
    double oEnd = oTs + hostOuter[0]->at("dur").asNumber();
    double iTs = hostInner[0]->at("ts").asNumber();
    double iEnd = iTs + hostInner[0]->at("dur").asNumber();
    EXPECT_GE(iTs, oTs - 1e-6);
    EXPECT_LE(iEnd, oEnd + 1e-6);
}

TEST(TimelineSpans, HostSpanRespectsCategoryFilter)
{
    ObsReset guard;
    obs::setRecording(true);
    obs::parseCatList("Driver");

    { obs::HostSpan filtered(obs::Cat::Audit, "filtered.span"); }
    { obs::HostSpan kept(obs::Cat::Driver, "kept.span"); }
    obs::hostInstant(obs::Cat::Check, "filtered.instant");
    obs::hostInstant(obs::Cat::Driver, "kept.instant");

    obs::setRecording(false);
    obs::enableAllCats();

    json::Value doc = json::parse(obs::exportChromeJson());
    EXPECT_EQ(eventsNamed(doc, "filtered.span").size(), 0u);
    EXPECT_EQ(eventsNamed(doc, "filtered.instant").size(), 0u);
    EXPECT_EQ(eventsNamed(doc, "kept.span").size(), 1u);
    EXPECT_EQ(eventsNamed(doc, "kept.instant").size(), 1u);
}

TEST(TimelineExport, ChromeSchemaRoundTrip)
{
    ObsReset guard;
    obs::setRecording(true);

    OBS_SIM_SPAN(Mesh, "schema.span", 10, 5, 1);
    OBS_SIM_INSTANT(SMC, "schema.instant", 12, 2);
    OBS_SIM_COUNTER(Cache, "schema.counter", 14, 0.25);
    { obs::HostSpan h(obs::Cat::Driver, "schema.host"); }
    obs::setRecording(false);

    std::set<std::string> knownCats;
    for (unsigned i = 0; i < obs::numCats; ++i)
        knownCats.insert(obs::catName(static_cast<obs::Cat>(i)));

    json::Value doc = json::parse(obs::exportChromeJson());
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");

    bool sawSpan = false, sawInstant = false, sawCounter = false;
    std::set<int> metadataPids;
    for (const auto &ev : doc.at("traceEvents").items()) {
        const std::string ph = ev.at("ph").asString();
        const double pid = ev.at("pid").asNumber();
        EXPECT_TRUE(pid == 1.0 || pid == 2.0);
        EXPECT_GE(ev.at("tid").asNumber(), 0.0);
        if (ph == "M") {
            const std::string &what = ev.at("name").asString();
            EXPECT_TRUE(what == "process_name" || what == "thread_name");
            EXPECT_FALSE(ev.at("args").at("name").asString().empty());
            metadataPids.insert(static_cast<int>(pid));
            continue;
        }
        EXPECT_TRUE(knownCats.count(ev.at("cat").asString()))
            << ev.at("cat").asString();
        EXPECT_GE(ev.at("ts").asNumber(), 0.0);
        if (ph == "X") {
            EXPECT_GE(ev.at("dur").asNumber(), 0.0);
            sawSpan = true;
        } else if (ph == "i") {
            EXPECT_EQ(ev.at("s").asString(), "t");
            sawInstant = true;
        } else if (ph == "C") {
            ev.at("args").at("value").asNumber();
            sawCounter = true;
        } else {
            ADD_FAILURE() << "unexpected phase " << ph;
        }
    }
    EXPECT_TRUE(sawSpan);
    EXPECT_TRUE(sawInstant);
    EXPECT_TRUE(sawCounter);
    // Both clock-domain processes are named.
    EXPECT_TRUE(metadataPids.count(1));
    EXPECT_TRUE(metadataPids.count(2));
}

TEST(SignatureHashTest, DeterministicOrderSensitiveResettable)
{
    obs::SignatureHash a, b;
    for (uint64_t v : {3u, 1u, 4u, 1u, 5u}) {
        a.add(v);
        b.add(v);
    }
    EXPECT_EQ(a.digest(), b.digest());

    // Order matters: a permuted schedule is a different signature.
    obs::SignatureHash c;
    for (uint64_t v : {1u, 3u, 4u, 1u, 5u})
        c.add(v);
    EXPECT_NE(a.digest(), c.digest());

    // reset() restores the fresh digest.
    obs::SignatureHash fresh;
    a.reset();
    EXPECT_EQ(a.digest(), fresh.digest());
}

TEST(StatSamplerTest, DeltaRowsConserveAggregates)
{
    StatGroup g("obs.test");
    Stat &ops = g.scalar("ops");
    Distribution &lat = g.distribution("lat", 0.0, 10.0, 5);
    g.formula("opsTwice", [&] { return ops.get() * 2.0; });

    obs::StatSampler s(100, {&g});
    EXPECT_EQ(s.intervalTicks(), 100u);
    EXPECT_FALSE(s.due(99));
    EXPECT_TRUE(s.due(100));

    ops += 3;
    lat.sample(2.0);
    s.maybeSample(50); // before the first boundary: no row
    EXPECT_EQ(s.rows(), 0u);
    s.maybeSample(120); // first boundary crossed at tick 120
    EXPECT_EQ(s.rows(), 1u);

    ops += 5;
    lat.sample(4.0);
    lat.sample(6.0);
    s.maybeSample(130); // next boundary is 200: no row
    EXPECT_EQ(s.rows(), 1u);
    s.maybeSample(350); // crosses 200 and 300: the deltas collapse
    EXPECT_EQ(s.rows(), 2u);

    ops += 2;
    obs::TimeSeries ts = s.finalize(400);

    ASSERT_TRUE(ts.present());
    EXPECT_EQ(ts.intervalTicks, 100u);
    EXPECT_EQ(ts.ticks, (std::vector<uint64_t>{120, 350, 400}));
    ASSERT_EQ(ts.samples.size(), 3u);

    std::map<std::string, size_t> col;
    for (size_t c = 0; c < ts.statNames.size(); ++c)
        col[ts.statNames[c]] = c;
    ASSERT_TRUE(col.count("obs.test.ops"));
    ASSERT_TRUE(col.count("obs.test.lat::samples"));
    ASSERT_TRUE(col.count("obs.test.lat::sum"));
    ASSERT_TRUE(col.count("obs.test.opsTwice"));
    EXPECT_FALSE(ts.isLevel[col["obs.test.ops"]]);
    EXPECT_FALSE(ts.isLevel[col["obs.test.lat::samples"]]);
    EXPECT_TRUE(ts.isLevel[col["obs.test.opsTwice"]]);

    // Per-row deltas land where the counters moved...
    EXPECT_DOUBLE_EQ(ts.samples[0][col["obs.test.ops"]], 3.0);
    EXPECT_DOUBLE_EQ(ts.samples[1][col["obs.test.ops"]], 5.0);
    EXPECT_DOUBLE_EQ(ts.samples[2][col["obs.test.ops"]], 2.0);

    // ...and the conservation law holds: delta columns sum to the
    // final aggregates, formulas report instantaneous levels.
    auto columnSum = [&](const std::string &name) {
        double sum = 0.0;
        for (const auto &row : ts.samples)
            sum += row[col[name]];
        return sum;
    };
    EXPECT_DOUBLE_EQ(columnSum("obs.test.ops"), 10.0);
    EXPECT_DOUBLE_EQ(columnSum("obs.test.lat::samples"), 3.0);
    EXPECT_DOUBLE_EQ(columnSum("obs.test.lat::sum"), 12.0);
    EXPECT_DOUBLE_EQ(ts.samples[2][col["obs.test.opsTwice"]], 20.0);
}

TEST(StatSamplerTest, RejectsTimeGoingBackwards)
{
    StatGroup g("obs.back");
    g.scalar("x");
    obs::StatSampler s(10, {&g});
    s.sample(100);
    EXPECT_THROW(s.sample(50), PanicError);
}

TEST(StatSamplerTest, ZeroIntervalIsInert)
{
    StatGroup g("obs.off");
    g.scalar("x") += 5;
    obs::StatSampler s(0, {&g});
    EXPECT_FALSE(s.due(1000000));
    s.maybeSample(1000);
    s.sample(2000);
    obs::TimeSeries ts = s.finalize(3000);
    EXPECT_FALSE(ts.present());
    EXPECT_TRUE(ts.ticks.empty());
    EXPECT_TRUE(ts.statNames.empty());
}

/**
 * The whole point of the observability layer: switching it on must not
 * change a single simulated number, the sampled time-series must
 * conserve against the final aggregates, and the captured timeline must
 * be a valid Chrome trace.
 */
TEST(ObsIntegration, TracingAndSamplingDoNotPerturbResults)
{
    ObsReset guard;
    setQuietLogging(true);
    auto plain = analysis::runExperiment("convert", "baseline", 64);

    obs::setRingCapacity(1 << 15);
    obs::clearTimeline();
    obs::setTimeseriesInterval(256);
    obs::setRecording(true);
    auto traced = analysis::runExperiment("convert", "baseline", 64);
    obs::setRecording(false);
    obs::setTimeseriesInterval(0);
    setQuietLogging(false);

    ASSERT_TRUE(plain.verified);
    ASSERT_TRUE(traced.verified);
    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.usefulOps, traced.usefulOps);
    EXPECT_EQ(plain.instsExecuted, traced.instsExecuted);
    EXPECT_EQ(plain.records, traced.records);
    EXPECT_EQ(plain.activations, traced.activations);
    EXPECT_EQ(plain.mappings, traced.mappings);
    ASSERT_EQ(plain.statGroups.size(), traced.statGroups.size());
    for (size_t i = 0; i < plain.statGroups.size(); ++i) {
        EXPECT_EQ(plain.statGroups[i].scalars, traced.statGroups[i].scalars)
            << plain.statGroups[i].name;
        EXPECT_EQ(plain.statGroups[i].formulas,
                  traced.statGroups[i].formulas)
            << plain.statGroups[i].name;
    }

    // Sampling off: no series. Sampling on: a series whose delta
    // columns conserve against the end-of-run aggregates.
    EXPECT_FALSE(plain.timeseries.present());
    ASSERT_TRUE(traced.timeseries.present());
    const obs::TimeSeries &ts = traced.timeseries;
    ASSERT_FALSE(ts.ticks.empty());
    EXPECT_TRUE(std::is_sorted(ts.ticks.begin(), ts.ticks.end()));

    for (size_t c = 0; c < ts.statNames.size(); ++c) {
        if (ts.isLevel[c])
            continue;
        double sum = 0.0;
        for (const auto &row : ts.samples)
            sum += row[c];

        double agg = 0.0;
        bool found = false;
        for (const auto &g : traced.statGroups) {
            const std::string prefix = g.name + ".";
            if (ts.statNames[c].rfind(prefix, 0) != 0)
                continue;
            std::string key = ts.statNames[c].substr(prefix.size());
            size_t pos;
            if ((pos = key.rfind("::samples")) != std::string::npos &&
                pos + 9 == key.size()) {
                auto it = g.distributions.find(key.substr(0, pos));
                if (it != g.distributions.end()) {
                    agg = double(it->second.samples());
                    found = true;
                }
            } else if ((pos = key.rfind("::sum")) != std::string::npos &&
                       pos + 5 == key.size()) {
                auto it = g.distributions.find(key.substr(0, pos));
                if (it != g.distributions.end()) {
                    agg = it->second.sum();
                    found = true;
                }
            } else {
                auto it = g.scalars.find(key);
                if (it != g.scalars.end()) {
                    agg = it->second;
                    found = true;
                }
            }
            if (found)
                break;
        }
        ASSERT_TRUE(found) << "no aggregate for " << ts.statNames[c];
        EXPECT_NEAR(sum, agg, 1e-9 * std::max(1.0, std::abs(agg)))
            << ts.statNames[c];
    }

    // The run left behind a loadable timeline with simulated spans.
    json::Value doc = json::parse(obs::exportChromeJson());
    bool sawSimSpan = false;
    for (const auto &ev : doc.at("traceEvents").items()) {
        if (ev.at("ph").asString() == "X" &&
            ev.at("pid").asNumber() == 1.0) {
            sawSimSpan = true;
            break;
        }
    }
    EXPECT_TRUE(sawSimSpan);

    // The exporter carries the series only when present.
    json::Value tracedDoc = analysis::toJson(traced);
    ASSERT_TRUE(tracedDoc.has("timeseries"));
    EXPECT_EQ(tracedDoc.at("timeseries").at("stats").size(),
              ts.statNames.size());
    EXPECT_EQ(tracedDoc.at("timeseries").at("ticks").size(),
              ts.ticks.size());
    EXPECT_EQ(tracedDoc.at("timeseries").at("intervalTicks").asNumber(),
              256.0);
    json::Value plainDoc = analysis::toJson(plain);
    EXPECT_FALSE(plainDoc.has("timeseries"));
}
