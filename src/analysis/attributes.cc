#include "analysis/attributes.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "kernels/catalog.hh"

namespace dlp::analysis {

using namespace dlp::kernels;

namespace {

struct LoopExtent
{
    size_t first = ~size_t(0);
    size_t last = 0;
};

/**
 * Symbolic unrolled walk computing instruction count, dataflow height
 * and irregular-access count (variable loops taken at their bound).
 */
class Analyzer
{
  public:
    explicit Analyzer(const Kernel &kern) : k(kern)
    {
        extents.resize(k.loops.size());
        for (size_t i = 0; i < k.nodes.size(); ++i) {
            LoopId l = k.nodes[i].loop;
            while (l != topLevel) {
                extents[l].first = std::min(extents[l].first, i);
                extents[l].last = std::max(extents[l].last, i);
                l = k.loops[l].parent;
            }
        }
        depth.assign(k.nodes.size(), 0);
        carryDepth.assign(k.carries.size(), 0);
    }

    void
    run(KernelAttributes &attrs)
    {
        walkRange(0, k.nodes.size(), topLevel);
        attrs.numInsts = instCount;
        attrs.ilp = maxDepth ? double(instCount) / double(maxDepth) : 1.0;
        attrs.irregularAccesses = irregular;
    }

  private:
    static bool
    isInstruction(const Node &n)
    {
        switch (n.kind) {
          case NodeKind::Const:
          case NodeKind::RecIdx:
          case NodeKind::LoopIdx:
          case NodeKind::Carry:
          case NodeKind::LoopExit:
          case NodeKind::WordOf: // a wire out of the wide load
            return false;
          default:
            return true;
        }
    }

    uint64_t
    srcDepth(const Node &n)
    {
        uint64_t d = 0;
        for (unsigned s = 0; s < 3; ++s) {
            if (s == 1 && n.immB)
                continue;
            if (n.src[s] == noValue)
                continue;
            const Node &sn = k.nodes[n.src[s]];
            if (sn.kind == NodeKind::Carry)
                d = std::max(d, carryDepth[static_cast<size_t>(sn.imm)]);
            else
                d = std::max(d, depth[n.src[s]]);
        }
        return d;
    }

    void
    visit(size_t i)
    {
        const Node &n = k.nodes[i];
        uint64_t d = srcDepth(n);
        if (n.kind == NodeKind::LoopExit) {
            const Node &cn = k.nodes[n.src[0]];
            d = carryDepth[static_cast<size_t>(cn.imm)];
        }
        if (isInstruction(n)) {
            ++instCount;
            ++d;
            if (n.kind == NodeKind::CachedLoad ||
                n.kind == NodeKind::CachedStore)
                ++irregular;
        }
        depth[i] = d;
        maxDepth = std::max(maxDepth, d);
    }

    void
    walkRange(size_t first, size_t last, LoopId level)
    {
        size_t i = first;
        while (i < last) {
            LoopId nl = k.nodes[i].loop;
            if (nl == level) {
                visit(i);
                ++i;
                continue;
            }
            LoopId child = nl;
            while (k.loops[child].parent != level)
                child = k.loops[child].parent;
            walkLoop(child);
            i = extents[child].last + 1;
        }
    }

    void
    walkLoop(LoopId l)
    {
        const auto &li = k.loops[l];
        uint32_t trips = li.staticTrip ? li.staticTrip : li.maxTrip;
        for (uint32_t c : li.carries)
            carryDepth[c] = depth[k.carries[c].init];
        for (uint32_t iter = 0; iter < trips; ++iter) {
            walkRange(extents[l].first, extents[l].last + 1, l);
            for (uint32_t c : li.carries)
                carryDepth[c] = depth[k.carries[c].next];
        }
    }

    const Kernel &k;
    std::vector<LoopExtent> extents;
    std::vector<uint64_t> depth;
    std::vector<uint64_t> carryDepth;
    uint64_t instCount = 0;
    uint64_t maxDepth = 0;
    uint64_t irregular = 0;
};

std::string
loopBoundsOf(const Kernel &k)
{
    std::string s;
    bool variable = false;
    for (const auto &l : k.loops) {
        if (l.staticTrip == 0) {
            variable = true;
            continue;
        }
        if (!s.empty())
            s += "+";
        s += std::to_string(l.staticTrip);
    }
    if (variable)
        return s.empty() ? "variable" : s + ",variable";
    return s.empty() ? "-" : s;
}

} // namespace

KernelAttributes
extractAttributes(const Kernel &k)
{
    KernelAttributes attrs;
    attrs.name = k.name;
    attrs.domain = k.domain;
    attrs.recordRead = k.inWords;
    attrs.recordWrite = k.outWords;
    attrs.numConstants = static_cast<unsigned>(k.constants.size());
    attrs.indexedConstants = 0;
    for (const auto &t : k.tables)
        attrs.indexedConstants += t.data.size();
    attrs.loopBounds = loopBoundsOf(k);

    Analyzer a(k);
    a.run(attrs);
    return attrs;
}

std::vector<KernelAttributes>
extractAllAttributes()
{
    std::vector<KernelAttributes> rows;
    for (const auto &k : allKernels())
        rows.push_back(extractAttributes(k));
    return rows;
}

} // namespace dlp::analysis
