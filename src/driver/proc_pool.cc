#include "driver/proc_pool.hh"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace dlp::driver {

namespace {

/** Write exactly n bytes; false on any real error (e.g. parent died). */
bool
writeAll(int fd, const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n) {
        ssize_t w = ::write(fd, p, n);
        if (w < 0 && errno == EINTR)
            continue;  // a signal mid-frame is a retry, not a failure
        if (w <= 0)
            return false;
        p += w;
        n -= size_t(w);
    }
    return true;
}

/**
 * One frame on the pipe: item index, status (0 = payload, 1 = error
 * text from a produce() that threw), payload size, payload bytes.
 */
bool
writeFrame(int fd, uint64_t item, uint64_t status,
           const std::string &payload)
{
    uint64_t hdr[3] = {item, status, payload.size()};
    return writeAll(fd, hdr, sizeof(hdr)) &&
           writeAll(fd, payload.data(), payload.size());
}

/** Per-child parent-side state: pipe fd, pid, reassembly buffer. */
struct Child
{
    int fd = -1;
    pid_t pid = -1;
    std::string buf;
    bool eof = false;
};

/**
 * The child's whole life: run the round-robin shard, stream one frame
 * per item, and make sure no exception ever unwinds past this frame
 * into the stack inherited from the parent. Never returns.
 */
[[noreturn]] void
runChildShard(int writeFd, unsigned shard, size_t items, unsigned workers,
              const std::function<std::string(size_t)> &produce,
              const std::function<void()> &childInit)
{
    // The parent detects our death via pipe EOF and waitpid, and we
    // detect the parent's death via write failure on the pipe — which
    // requires surviving the SIGPIPE that a write to a widowed pipe
    // raises first (default disposition kills the process before
    // write() can return EPIPE).
    ::signal(SIGPIPE, SIG_IGN);

    int status = 0;
    try {
        if (childInit)
            childInit();
        for (size_t i = shard; i < items; i += workers) {
            std::string out;
            uint64_t err = 0;
            try {
                out = produce(i);
            } catch (const std::exception &e) {
                err = 1;
                out = e.what();
            } catch (...) {
                err = 1;
                out = "unknown exception in worker";
            }
            // A write failure means the parent is gone; just stop.
            if (!writeFrame(writeFd, i, err, out)) {
                status = 1;
                break;
            }
        }
    } catch (...) {
        // childInit failed or something escaped the per-item barrier;
        // the parent sees the nonzero exit via waitpid.
        status = 1;
    }
    ::close(writeFd);
    ::_exit(status);
}

} // namespace

void
runForked(size_t items, unsigned workers,
          const std::function<std::string(size_t)> &produce,
          const std::function<void(size_t, std::string)> &collect,
          const std::function<void(size_t, const std::string &)> &onError,
          const std::function<void()> &childInit)
{
    if (items == 0)
        return;
    workers = unsigned(std::min<size_t>(workers ? workers : 1, items));
    if (workers <= 1) {
        // Serial mode keeps the forked mode's error contract: with an
        // onError callback a throwing item is reported and the rest of
        // the batch still runs.
        for (size_t i = 0; i < items; ++i) {
            if (!onError) {
                collect(i, produce(i));
                continue;
            }
            std::string payload;
            try {
                payload = produce(i);
            } catch (const std::exception &e) {
                onError(i, e.what());
                continue;
            }
            collect(i, std::move(payload));
        }
        return;
    }

    std::vector<Child> children(workers);
    for (unsigned w = 0; w < workers; ++w) {
        int pipefd[2];
        fatal_if(::pipe(pipefd) != 0, "pipe failed: %s",
                 std::strerror(errno));
        pid_t pid = ::fork();
        fatal_if(pid < 0, "fork failed: %s", std::strerror(errno));
        if (pid == 0) {
            ::close(pipefd[0]);
            // Drop the read ends inherited from earlier forks: holding
            // them would keep dead siblings' pipes alive and blunt
            // parent-death detection via write failure.
            for (unsigned prev = 0; prev < w; ++prev)
                ::close(children[prev].fd);
            runChildShard(pipefd[1], w, items, workers, produce, childInit);
        }
        ::close(pipefd[1]);
        children[w].fd = pipefd[0];
        children[w].pid = pid;
    }

    std::vector<bool> delivered(items, false);
    size_t deliveredCount = 0;
    // With no onError callback a failure must still drain the pipes
    // and reap every child before surfacing, or the siblings leak.
    std::string firstError;
    size_t open = workers;
    while (open) {
        std::vector<struct pollfd> fds;
        fds.reserve(open);
        for (const auto &c : children)
            if (!c.eof)
                fds.push_back({c.fd, POLLIN, 0});
        int rc = ::poll(fds.data(), nfds_t(fds.size()), -1);
        if (rc < 0 && errno == EINTR)
            continue;
        fatal_if(rc < 0, "poll failed: %s", std::strerror(errno));

        for (auto &c : children) {
            if (c.eof)
                continue;
            bool ready = false;
            for (const auto &p : fds)
                if (p.fd == c.fd && (p.revents & (POLLIN | POLLHUP)))
                    ready = true;
            if (!ready)
                continue;
            char chunk[65536];
            ssize_t n = ::read(c.fd, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                fatal("read from worker failed: %s", std::strerror(errno));
            }
            if (n == 0) {
                c.eof = true;
                ::close(c.fd);
                --open;
                continue;
            }
            c.buf.append(chunk, size_t(n));
            // Drain every complete frame in the buffer.
            while (c.buf.size() >= 3 * sizeof(uint64_t)) {
                uint64_t hdr[3];
                std::memcpy(hdr, c.buf.data(), sizeof(hdr));
                size_t total = 3 * sizeof(uint64_t) + hdr[2];
                if (c.buf.size() < total)
                    break;
                std::string payload =
                    c.buf.substr(3 * sizeof(uint64_t), hdr[2]);
                c.buf.erase(0, total);
                fatal_if(hdr[0] >= items || delivered[hdr[0]],
                         "worker delivered bogus item %llu",
                         (unsigned long long)hdr[0]);
                delivered[hdr[0]] = true;
                ++deliveredCount;
                if (hdr[1] == 0) {
                    collect(size_t(hdr[0]), std::move(payload));
                } else if (onError) {
                    onError(size_t(hdr[0]), payload);
                } else if (firstError.empty()) {
                    firstError = "item " + std::to_string(hdr[0]) + ": " +
                                 payload;
                }
            }
        }
    }

    for (const auto &c : children) {
        int status = 0;
        ::waitpid(c.pid, &status, 0);
        fatal_if(!WIFEXITED(status) || WEXITSTATUS(status) != 0,
                 "sweep worker process %d died (status %d)", int(c.pid),
                 status);
    }
    fatal_if(deliveredCount != items,
             "workers delivered %zu of %zu items", deliveredCount, items);
    fatal_if(!firstError.empty(), "sweep worker failed: %s",
             firstError.c_str());
}

} // namespace dlp::driver
