#include "mem/memory_system.hh"

#include <cinttypes>
#include <cstdlib>

#include "obs/timeline.hh"

namespace dlp::mem {

MemorySystem::MemorySystem(const MemParams &params, bool smcOn, Tick hop)
    : cfg(params), useSmc(smcOn), hopTicks(hop),
      mainMem(std::make_unique<MainMemory>(params)),
      smcSub(std::make_unique<SmcSubsystem>(params)),
      l1Cache(std::make_unique<CacheModel>("l1", params.l1Bytes,
                                           params.l1Assoc, params.lineBytes,
                                           params.rows,
                                           params.l1HitLatency)),
      l2Cache(std::make_unique<CacheModel>("l2", params.l2Bytes,
                                           params.l2Assoc, params.lineBytes,
                                           params.rows, params.l2Latency))
{
    initStats();
}

void
MemorySystem::initStats()
{
    cachedLatency =
        &statGroup.distribution("cachedLatencyTicks", 0.0, 256.0, 32);
    cachedAccesses = &statGroup.scalar("cachedAccesses");
    streamReadsStat = &statGroup.scalar("streamReads");
    streamWritesStat = &statGroup.scalar("streamWrites");
    statGroup.formula("l1HitRate", [this] {
        uint64_t total = l1Cache->hits() + l1Cache->misses();
        return total ? double(l1Cache->hits()) / double(total) : 0.0;
    });
    statGroup.formula("l2HitRate", [this] {
        uint64_t total = l2Cache->hits() + l2Cache->misses();
        return total ? double(l2Cache->hits()) / double(total) : 0.0;
    });
    statGroup.setPreDump([this] {
        statGroup.scalar("l1Hits").set(double(l1Cache->hits()));
        statGroup.scalar("l1Misses").set(double(l1Cache->misses()));
        statGroup.scalar("l2Hits").set(double(l2Cache->hits()));
        statGroup.scalar("l2Misses").set(double(l2Cache->misses()));
        statGroup.scalar("mainMemAccesses")
            .set(double(mainMem->accesses()));
    });
}

Tick
MemorySystem::cachedTiming(unsigned row, Addr byteAddr, Tick start,
                           bool write)
{
    // Edge-to-bank distance: L1 banks are line-interleaved along the
    // array edge, one bank per row position.
    unsigned bank = l1Cache->bankOf(byteAddr);
    unsigned dist = bank > row ? bank - row : row - bank;
    Tick t = start + dist * hopTicks;

    t = l1Cache->acquirePort(byteAddr, t);
    bool l1Hit = l1Cache->probe(byteAddr, write);
    t += l1Cache->hitLatencyTicks();
    if (!l1Hit) {
        t = l2Cache->acquirePort(byteAddr, t);
        bool l2Hit = l2Cache->probe(byteAddr, write);
        t += l2Cache->hitLatencyTicks();
        if (!l2Hit)
            t = mainMem->access(t, cfg.lineBytes / wordBytes);
        DPRINTF(Cache, "%s 0x%" PRIx64 " L1 miss, L2 %s", write ? "st" : "ld",
                byteAddr, l2Hit ? "hit" : "miss");
        // Two distinct call sites: the interned-name static in the
        // macro is per-site, so a ternary name would stick on whichever
        // branch ran first.
        if (l2Hit)
            OBS_SIM_SPAN(Cache, "l1Miss", start, t - start, byteAddr);
        else
            OBS_SIM_SPAN(Cache, "l2Miss", start, t - start, byteAddr);
    }
    // Response travels back across the same edge distance.
    Tick done = t + dist * hopTicks;
    ++*cachedAccesses;
    cachedLatency->sample(double(done - start));
    DPRINTF(Mem,
            "cached %s row %u 0x%" PRIx64 " start=%" PRIu64 " done=%" PRIu64,
            write ? "write" : "read", row, byteAddr, start, done);
    if (write)
        OBS_SIM_SPAN(Mem, "cachedWrite", start, done - start, byteAddr);
    else
        OBS_SIM_SPAN(Mem, "cachedRead", start, done - start, byteAddr);
    return done;
}

Tick
MemorySystem::streamRead(unsigned row, Addr wordAddr, unsigned nwords,
                         Tick start, Word *out, unsigned stride)
{
    ++*streamReadsStat;
    if (useSmc)
        return smcSub->read(row, wordAddr, nwords, start, out, stride);

    // Baseline machine: the record stream lives in ordinary cached
    // memory and each word is a separate L1 access.
    if (out) {
        for (unsigned i = 0; i < nwords; ++i)
            out[i] = smcSub->peek(wordAddr + Addr(i) * stride);
    }
    Tick done = start;
    for (unsigned i = 0; i < nwords; ++i) {
        Tick t = cachedTiming(row, streamByteAddr(wordAddr + Addr(i) * stride),
                              start, false);
        done = std::max(done, t);
    }
    return done;
}

Tick
MemorySystem::streamWrite(unsigned row, Addr wordAddr, Word value,
                          Tick start)
{
    ++*streamWritesStat;
    if (useSmc)
        return smcSub->write(row, wordAddr, value, start);

    smcSub->poke(wordAddr, value);
    return cachedTiming(row, streamByteAddr(wordAddr), start, true);
}

Tick
MemorySystem::cachedRead(unsigned row, Addr byteAddr, Tick start, Word &out)
{
    out = mainMem->readWord(roundDown(byteAddr, wordBytes));
    return cachedTiming(row, byteAddr, start, false);
}

Tick
MemorySystem::cachedWrite(unsigned row, Addr byteAddr, Word value,
                          Tick start)
{
    mainMem->writeWord(roundDown(byteAddr, wordBytes), value);
    return cachedTiming(row, byteAddr, start, true);
}

Tick
MemorySystem::dma(unsigned row, unsigned nwords, Tick start)
{
    return smcSub->dmaTransfer(row, nwords, start, *mainMem);
}

void
MemorySystem::resetTiming()
{
    mainMem->resetTiming();
    smcSub->resetTiming();
    l1Cache->reset();
    l2Cache->reset();
    statGroup.resetAll();
}

} // namespace dlp::mem
