file(REMOVE_RECURSE
  "CMakeFiles/encrypt_stream.dir/encrypt_stream.cpp.o"
  "CMakeFiles/encrypt_stream.dir/encrypt_stream.cpp.o.d"
  "encrypt_stream"
  "encrypt_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypt_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
