/**
 * @file
 * sweepd: the sweep-as-a-service front-end.
 *
 * A single-threaded poll(2) event loop serves batched experiment
 * requests (serve/protocol.hh) over a Unix-domain socket. For every
 * sweep request the server:
 *
 *  - deduplicates in-flight work: tasks resolving to the same
 *    content-addressed experiment key (store/key.hh) are computed once
 *    and fanned out to every requesting index, with the duplicates
 *    counted in dedupedInFlight;
 *  - serves warm cells from the persistent result store, streaming
 *    them immediately;
 *  - shards the remaining cold cells across forked worker processes
 *    (driver/proc_pool.hh) when workers > 1 — children share nothing
 *    with the event loop, a simulation failure in one cell answers as
 *    an in-band per-index error line while the rest of the batch
 *    completes, and a crash cannot take the daemon down — or computes
 *    them inline when workers <= 1 (the fork-free mode, safe even
 *    when the server runs on a thread inside a test);
 *  - streams each result to the client as it completes and finishes
 *    with a "done" line carrying the request's counters.
 *
 * Because the loop is single-threaded, forking happens with no other
 * threads alive in the daemon, which is the only regime where fork(2)
 * plus arbitrary code in the child is safe.
 */

#ifndef DLP_SERVE_SERVER_HH
#define DLP_SERVE_SERVER_HH

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "store/result_store.hh"

namespace dlp::serve {

struct ServerOptions
{
    std::string socketPath;  ///< Unix-domain socket to listen on

    /**
     * Worker processes for cold cells: <= 1 computes inline in the
     * event loop (no fork), N > 1 forks up to N children per request.
     */
    unsigned workers = 1;

    /** Persistent result-store directory; empty disables the store. */
    std::string storeDir;

    /** Serve one connection to completion, then return from run(). */
    bool once = false;
};

/** Lifetime traffic counters of one server instance. */
struct ServerCounters
{
    uint64_t connections = 0;      ///< accepted connections
    uint64_t requests = 0;         ///< sweep requests handled
    uint64_t cells = 0;            ///< task entries across all requests
    uint64_t uniqueCells = 0;      ///< distinct experiment keys of those
    uint64_t dedupedInFlight = 0;  ///< cells - uniqueCells (fan-outs)
    uint64_t storeHits = 0;        ///< unique cells served from the store
    uint64_t computed = 0;         ///< unique cells simulated
    uint64_t errors = 0;           ///< malformed or failed requests
    uint64_t cellErrors = 0;       ///< unique cells whose simulation failed
};

class Server
{
  public:
    /**
     * Bind + listen. A stale socket file (no listener answers a
     * connect probe) is reclaimed; a live daemon on the path is
     * fatal rather than hijacked.
     */
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * The event loop: blocks until a client sends a shutdown op, a
     * signal handler calls requestStop(), or — with once set — until
     * the first accepted connection closes. Removes the socket file on
     * the way out.
     */
    void run();

    /**
     * Ask the loop to finish: the request currently being handled (if
     * any) completes and streams its results, then run() returns and
     * the destructor unlinks the socket. Async-signal-safe — it only
     * sets a sig_atomic_t flag — so SIGINT/SIGTERM handlers may call
     * it directly (the loop polls with a short timeout rather than
     * blocking forever, so a flag set between polls is still seen
     * promptly). Also callable from another thread in tests.
     */
    void requestStop() { stopRequested = 1; }

    const std::string &socketPath() const { return opts.socketPath; }
    const ServerCounters &counters() const { return ctrs; }

  private:
    struct Conn
    {
        int fd = -1;
        LineReader reader;
    };

    /** Dispatch one request line; never throws (errors answer in-band). */
    void handleLine(int fd, const std::string &line);
    void handleSweep(int fd, const json::Value &request);
    json::Value countersJson() const;

    ServerOptions opts;
    ServerCounters ctrs;
    std::unique_ptr<store::ResultStore> storeHandle;
    int listenFd = -1;
    std::vector<Conn> conns;
    bool stopping = false;

    /** Set by requestStop(); sig_atomic_t so a handler's store is
     *  well-defined with respect to the loop's read. */
    volatile sig_atomic_t stopRequested = 0;
};

} // namespace dlp::serve

#endif // DLP_SERVE_SERVER_HH
