/**
 * @file
 * The discrete-event simulation kernel.
 *
 * All timing in the simulator is driven by one EventQueue. Components
 * schedule callbacks at absolute ticks; the queue executes them in tick
 * order (FIFO within a tick). One tick is half a clock cycle (see
 * common/types.hh).
 *
 * The queue is a two-tier calendar (bucket) queue in the gem5/NS-2
 * tradition, tuned for the engines' traffic pattern -- almost every
 * event lands within a few ticks of the current time:
 *
 *  - a ring of `numBuckets` one-tick buckets covers the near-future
 *    window [bucketBase, bucketBase + numBuckets). Insertion is an O(1)
 *    append; FIFO order inside a bucket is exactly FIFO order within a
 *    tick, so the historical (when, seq) total order is preserved by
 *    construction. A bitmap of non-empty buckets makes the advance to
 *    the next populated tick a couple of bit scans, never a tick-by-tick
 *    crawl;
 *
 *  - events beyond the window go to an overflow min-heap ordered by
 *    (when, seq) and migrate into the ring as the window slides over
 *    them. Migration pops in (when, seq) order, so same-tick overflow
 *    events enter their bucket already in seq order and anything
 *    scheduled at that tick afterwards appends behind them.
 *
 * Events are allocation-free: the callback is an InlineFn (small-buffer
 * only, no heap fallback -- see inline_fn.hh) and event nodes live by
 * value inside bucket vectors and the overflow heap, which retain their
 * capacity across activations and reset(). After warm-up the
 * schedule/fire path performs zero heap allocations (asserted by the
 * counting-allocator test in tests/test_sim.cpp).
 */

#ifndef DLP_SIM_EVENTQ_HH
#define DLP_SIM_EVENTQ_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cinttypes>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "sim/inline_fn.hh"

namespace dlp::sim {

/** Callback type executed when an event fires. */
using EventFn = InlineFn;

/** A single time-ordered event queue. */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks. */
    Tick curTick() const { return now; }

    /** Current simulated time in whole cycles (rounded down). */
    Cycles curCycle() const { return now / ticksPerCycle; }

    /** Schedule fn at absolute tick when (must not be in the past). */
    void
    schedule(Tick when, EventFn fn)
    {
        panic_if(when < now,
                 "scheduling event in the past (%" PRIu64 " < %" PRIu64 ")",
                 when, now);
        DPRINTF(EventQ, "schedule event at %" PRIu64 " (%zu pending)", when,
                pendingCount);
        if (pendingCount == 0) {
            // Empty queue: re-anchor the window at the present so the
            // ring covers the ticks about to be scheduled.
            bucketBase = now;
        }
        Event ev{when, nextSeq++, fn};
        ++scheduledCount;
        if (when < bucketBase + numBuckets) {
            auto idx = static_cast<size_t>(when & bucketMask);
            if (buckets[idx].empty())
                markOccupied(idx);
            buckets[idx].push_back(ev);
            ++ringCount;
        } else {
            overflow.push_back(ev);
            std::push_heap(overflow.begin(), overflow.end(), EventLater{});
        }
        ++pendingCount;
    }

    /** Schedule fn delay ticks from now. */
    void
    scheduleIn(Tick delay, EventFn fn)
    {
        schedule(now + delay, fn);
    }

    /** Schedule fn a number of full cycles from now. */
    void
    scheduleInCycles(Cycles delay, EventFn fn)
    {
        schedule(now + cyclesToTicks(delay), fn);
    }

    bool empty() const { return pendingCount == 0; }
    size_t pending() const { return pendingCount; }

    /**
     * Host-side count of events executed over the queue's lifetime.
     * Survives reset() (which rewinds *simulated* time) so a whole
     * multi-activation run can report its event throughput.
     */
    uint64_t executedEvents() const { return executedCount; }

    /**
     * Host-side count of events ever scheduled, the dual of
     * executedEvents(). Also survives reset(): the auditor checks the
     * conservation law scheduled == executed + pending over a whole
     * run, which only holds if both counters age at the same rate.
     */
    uint64_t scheduledEvents() const { return scheduledCount; }

    /**
     * Run events until the queue drains or limit ticks elapse.
     *
     * @param limit Absolute tick bound; exceeding it is a fatal error
     *              because it almost always means the simulated machine
     *              deadlocked (an operand never arrived, a block never
     *              committed).
     * @return The tick of the last executed event.
     */
    Tick
    run(Tick limit = maxTick)
    {
        while (pendingCount > 0) {
            if (ringCount == 0) {
                // Ring empty: jump the window straight to the earliest
                // overflow event and pull the newly covered ticks in.
                bucketBase = overflow.front().when;
                migrateOverflow();
            }
            // Advance to the next populated tick inside the window.
            Tick t = nextPopulatedTick();
            fatal_if(t > limit,
                     "simulation exceeded tick limit %" PRIu64 "; "
                     "the simulated machine probably deadlocked", limit);
            bucketBase = t;
            // The window just widened to [t, t + numBuckets): admit the
            // overflow events it now covers *before* running callbacks,
            // or a callback scheduling at the same tick would slot in
            // ahead of an earlier-scheduled (smaller-seq) overflow event.
            migrateOverflow();
            now = t;
            trace::setCurTick(t);
            // Sample the trace flag once per tick, not per event.
            const bool traceFires = trace::enabled(trace::Flag::EventQ);
            auto &bucket = buckets[static_cast<size_t>(t & bucketMask)];
            // Index-based walk: an event may append to this very bucket
            // by scheduling at its own tick.
            for (size_t i = 0; i < bucket.size(); ++i) {
                // Copy out: the append above may reallocate the bucket.
                EventFn fn = bucket[i].fn;
                if (traceFires) {
                    DPRINTF(EventQ, "event fires (%zu pending)",
                            pendingCount - 1);
                }
                --pendingCount;
                ++executedCount;
                fn();
            }
            ringCount -= bucket.size();
            bucket.clear();
            clearOccupied(static_cast<size_t>(t & bucketMask));
            // Slide the window past the finished tick and admit any
            // overflow events it now covers.
            bucketBase = t + 1;
            migrateOverflow();
        }
        return now;
    }

    /**
     * Events dropped unexecuted by reset(). Together the three lifetime
     * counters obey scheduled == executed + pending + discarded; the
     * auditor checks that law and, for engine runs (which only reset a
     * drained queue), that discarded stays zero.
     */
    uint64_t discardedEvents() const { return discardedCount; }

    /** Discard all pending events and reset time to zero. */
    void
    reset()
    {
        discardedCount += pendingCount;
        if (ringCount > 0) {
            for (auto &bucket : buckets)
                bucket.clear(); // keeps capacity
        }
        occupied.fill(0);
        overflow.clear(); // keeps capacity
        ringCount = 0;
        pendingCount = 0;
        now = 0;
        bucketBase = 0;
        nextSeq = 0;
    }

  private:
    /** Component name used by DPRINTF lines from this class. */
    static const char *dlpTraceName() { return "eventq"; }

    struct Event
    {
        Tick when;
        uint64_t seq;
        EventFn fn;
    };
    static_assert(std::is_trivially_copyable_v<Event>,
                  "event nodes must relocate with memcpy");

    /** Min-heap comparator over (when, seq). */
    struct EventLater
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    /// Ring size in ticks (one bucket per tick). Must be a power of two.
    static constexpr size_t numBuckets = 256;
    static constexpr Tick bucketMask = numBuckets - 1;
    static constexpr size_t numWords = numBuckets / 64;

    void
    markOccupied(size_t idx)
    {
        occupied[idx >> 6] |= uint64_t(1) << (idx & 63);
    }

    void
    clearOccupied(size_t idx)
    {
        occupied[idx >> 6] &= ~(uint64_t(1) << (idx & 63));
    }

    /**
     * Earliest tick >= bucketBase with a non-empty bucket. Every
     * populated bucket maps to exactly one tick inside the window, so a
     * wrapped bit scan starting at bucketBase's slot finds it.
     * Precondition: ringCount > 0.
     */
    Tick
    nextPopulatedTick() const
    {
        auto start = static_cast<unsigned>(bucketBase & bucketMask);
        unsigned from = start;
        for (int pass = 0; pass < 2; ++pass) {
            unsigned w = from >> 6;
            uint64_t word = occupied[w] & (~uint64_t(0) << (from & 63));
            while (true) {
                if (word) {
                    auto idx = (w << 6) +
                               unsigned(std::countr_zero(word));
                    // Ring distance from the window base to this slot;
                    // the window spans exactly numBuckets ticks, so the
                    // wrapped distance is unambiguous.
                    Tick delta = (Tick(idx) + numBuckets - Tick(start)) &
                                 bucketMask;
                    return bucketBase + delta;
                }
                if (++w == numWords)
                    break;
                word = occupied[w];
            }
            from = 0;
        }
        panic("event ring marked populated but no occupied bucket");
    }

    /** Pull overflow events now covered by the window into the ring. */
    void
    migrateOverflow()
    {
        while (!overflow.empty() &&
               overflow.front().when < bucketBase + numBuckets) {
            std::pop_heap(overflow.begin(), overflow.end(), EventLater{});
            const Event &ev = overflow.back();
            auto idx = static_cast<size_t>(ev.when & bucketMask);
            if (buckets[idx].empty())
                markOccupied(idx);
            buckets[idx].push_back(ev);
            ++ringCount;
            overflow.pop_back();
        }
    }

    std::array<std::vector<Event>, numBuckets> buckets;
    std::array<uint64_t, numWords> occupied{};
    std::vector<Event> overflow; ///< min-heap by (when, seq)

    size_t ringCount = 0;     ///< events currently in the ring
    size_t pendingCount = 0;  ///< ring + overflow
    uint64_t executedCount = 0;
    uint64_t scheduledCount = 0;
    uint64_t discardedCount = 0;
    Tick now = 0;
    Tick bucketBase = 0;      ///< first tick the ring covers
    uint64_t nextSeq = 0;
};

/**
 * A ClockedObject-style reusable member event: bound once to a queue
 * and a callback (typically capturing just `this`), then (re)scheduled
 * arbitrarily often with no per-schedule binding work. The
 * highest-frequency callers keep one of these per recurring action.
 */
class MemberEvent
{
  public:
    MemberEvent() = default;

    template <typename F>
    MemberEvent(EventQueue &q, F &&f)
    {
        bind(q, std::forward<F>(f));
    }

    template <typename F>
    void
    bind(EventQueue &q, F &&f)
    {
        queue = &q;
        fn.bind(std::forward<F>(f));
    }

    bool bound() const { return queue != nullptr; }

    /** Enqueue one firing at absolute tick when. */
    void
    schedule(Tick when)
    {
        panic_if(!queue, "scheduling an unbound MemberEvent");
        queue->schedule(when, fn);
    }

    /** Enqueue one firing delay ticks from now. */
    void
    scheduleIn(Tick delay)
    {
        panic_if(!queue, "scheduling an unbound MemberEvent");
        queue->scheduleIn(delay, fn);
    }

  private:
    EventQueue *queue = nullptr;
    InlineFn fn;
};

} // namespace dlp::sim

#endif // DLP_SIM_EVENTQ_HH
