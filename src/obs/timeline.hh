/**
 * @file
 * Timeline tracing: a low-overhead, ring-buffered span/instant/counter
 * recorder with two clock domains, exported as Chrome trace-event JSON
 * loadable in Perfetto or chrome://tracing.
 *
 * Where DPRINTF prints *lines*, the timeline records *intervals*: engine
 * activations, mesh flit journeys, SMC bursts, cache-miss episodes on
 * the simulated-tick clock, and JobPool tasks, sweep cells, fixture
 * builds and audit/check gates on the host wall clock. Every event
 * carries a category mirroring the DPRINTF flag registry (Mesh, SMC,
 * Engine, ...) plus host-side categories (Driver, Audit, Check), so the
 * same mental model — and the same filter lists — work for both.
 *
 * Recording is opt-in and cheap:
 *
 *  - off (the default): every instrumentation site is one relaxed
 *    atomic load and a branch, exactly the DPRINTF discipline;
 *  - compiled out: defining DLP_TRACE_DISABLED removes even that;
 *  - on: events go to a fixed-capacity per-thread ring buffer (no
 *    locks, no allocation after the ring fills); when the ring wraps,
 *    the oldest events are overwritten and counted as dropped.
 *
 * Enable with DLP_TIMELINE=FILE (export at exit) or programmatically:
 *
 *     obs::setOutputPath("trace.json");
 *     obs::setRecording(true);
 *     ... run ...
 *     obs::finish();   // writes the Chrome trace JSON
 *
 * DLP_TIMELINE_CATS=Mesh,SMC restricts recording to listed categories;
 * DLP_TIMELINE_CAP=N sets the per-thread ring capacity in events.
 *
 * Clock domains map to Chrome trace *processes*: pid 1 is simulated
 * time (one "microsecond" per tick), pid 2 is host wall time; each
 * recording thread is a Chrome trace *thread* within both, so parallel
 * sweep workers render as parallel tracks.
 *
 * The recorder also hosts the per-iteration occupancy-signature hash
 * (SignatureHash below): the execution engines fold every instruction
 * fire (index, tick offset) plus the activation's occupancy envelope
 * into one 64-bit digest per activation. Identical digests mean the
 * iteration replayed the same schedule — the steady-state detection
 * hook ROADMAP item 1 (epoch fast-forwarding) consumes.
 */

#ifndef DLP_OBS_TIMELINE_HH
#define DLP_OBS_TIMELINE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "common/trace.hh"
#include "common/types.hh"

namespace dlp::obs {

/**
 * Span/event categories. The first numFlags entries mirror trace::Flag
 * one to one (same names, same order), so every DPRINTF flag is also a
 * span category; the rest are host-side categories with no DPRINTF
 * counterpart.
 */
enum class Cat : uint8_t
{
    EventQ,  ///< event-kernel visibility (queue occupancy counters)
    Mesh,    ///< operand-network flit journeys
    SMC,     ///< SMC bursts, store-buffer accepts, DMA transfers
    Cache,   ///< L1/L2 miss episodes
    Mem,     ///< memory-system facade accesses
    Engine,  ///< activations, mappings, chunk runs
    Revit,   ///< revitalization broadcasts
    Exec,    ///< per-instruction fires (very verbose)
    Epoch,   ///< epoch fast-forwarding: recorded iterations, replay spans
    Driver,  ///< host: sweep cells, fixtures, JobPool jobs, experiments
    Audit,   ///< host: post-run invariant audit gate
    Check,   ///< host: pre-run static verification gate
    Store,   ///< host: result-store lookups, hits/misses, inserts
    Serve,   ///< host: sweepd request lifecycle and worker sharding
    NumCats
};

constexpr unsigned numCats = static_cast<unsigned>(Cat::NumCats);
static_assert(static_cast<unsigned>(Cat::Epoch) + 1 == trace::numFlags,
              "the first obs categories must mirror trace::Flag");

/** The category a DPRINTF flag maps to (identity on the shared prefix). */
constexpr Cat
catOf(trace::Flag f)
{
    return static_cast<Cat>(static_cast<unsigned>(f));
}

/** Canonical category name ("Mesh", "Driver", ...). */
const char *catName(Cat c);

/** Which clock a timestamp belongs to. */
enum class Domain : uint8_t
{
    Sim,  ///< simulated half-cycle ticks (trace::curTick)
    Host  ///< wall-clock nanoseconds since process start
};

namespace detail {

extern std::atomic<bool> recording;
extern std::atomic<bool> catBits[numCats];

} // namespace detail

#ifdef DLP_TRACE_DISABLED
inline bool enabled(Cat) { return false; }
inline bool recordingEnabled() { return false; }
#else
/** Hot-path gate: is this category being recorded right now? */
inline bool
enabled(Cat c)
{
    return detail::recording.load(std::memory_order_relaxed) &&
           detail::catBits[static_cast<unsigned>(c)].load(
               std::memory_order_relaxed);
}

inline bool
recordingEnabled()
{
    return detail::recording.load(std::memory_order_relaxed);
}
#endif

/** Master recording switch (categories keep their filter settings). */
void setRecording(bool on);

/**
 * Restrict recording to a comma-separated category list ("Mesh,SMC",
 * "All,-Exec"); unknown names warn once each. Empty string = all.
 */
void parseCatList(const std::string &list);

/** Enable every category (the default). */
void enableAllCats();

/**
 * Per-thread ring capacity in events for buffers created (or cleared)
 * from now on. Power of two not required. Minimum 16.
 */
void setRingCapacity(size_t events);
size_t ringCapacity();

/**
 * Export destination used by finish() and the at-exit backstop; setting
 * a non-empty path the first time arms the backstop so DLP_TIMELINE
 * works on any binary without explicit cooperation.
 */
void setOutputPath(const std::string &path);
std::string outputPath();

/** Wall time in nanoseconds since the process epoch (steady clock). */
uint64_t hostNowNs();

/**
 * Intern a name string, returning a stable id. Interning is
 * mutex-guarded: hot sites cache the id in a function-local static
 * (the OBS_* macros below do this automatically).
 */
uint32_t internName(const std::string &name);

/** Record one complete span ('X'). Caller has checked enabled(). */
void recordSpan(Cat c, uint32_t nameId, Domain d, uint64_t ts,
                uint64_t dur, uint64_t arg = 0, uint32_t labelId = 0);

/** Record one instant ('i'). Caller has checked enabled(). */
void recordInstant(Cat c, uint32_t nameId, Domain d, uint64_t ts,
                   uint64_t arg = 0, uint32_t labelId = 0);

/** Record one counter sample ('C'). Caller has checked enabled(). */
void recordCounter(Cat c, uint32_t nameId, Domain d, uint64_t ts,
                   double value);

/** Convenience: host-domain instant, name/label interned if enabled. */
void hostInstant(Cat c, const char *name, const std::string &label = {});

/**
 * RAII host-wall-clock span. Does nothing when the category is off;
 * the label string (kernel/config names and the like) is interned only
 * when recording.
 */
class HostSpan
{
  public:
    HostSpan(Cat c, const char *name, const std::string &label = {},
             uint64_t arg = 0);
    ~HostSpan();

    HostSpan(const HostSpan &) = delete;
    HostSpan &operator=(const HostSpan &) = delete;

  private:
    Cat cat = Cat::Driver;
    uint32_t nameId = 0;
    uint32_t labelId = 0;
    uint64_t argValue = 0;
    uint64_t startNs = 0;
    bool active = false;
};

/// @name Export and lifecycle.
/// @{

/** Serialize everything recorded so far as a Chrome trace JSON text. */
std::string exportChromeJson();

/** Write exportChromeJson() to a file; fatal on I/O failure. */
void writeChromeTrace(const std::string &path);

/**
 * If an output path is set: write the trace there, clear the path (so
 * the at-exit backstop does not write twice) and return the path;
 * otherwise return "".
 */
std::string finish();

/** Drop all recorded events and re-apply the ring capacity. */
void clearTimeline();

/** Parse DLP_TIMELINE / DLP_TIMELINE_CATS / DLP_TIMELINE_CAP /
 *  DLP_TIMESERIES. Called automatically before main(). */
void initFromEnv();

/**
 * Default stat time-series sampling interval in simulated ticks
 * (0 = sampling off). Set by DLP_TIMESERIES or the --timeseries CLI
 * flag; the engines consult it when an experiment starts.
 */
void setTimeseriesInterval(uint64_t ticks);
uint64_t timeseriesInterval();

struct TimelineCounts
{
    uint64_t recorded = 0; ///< events currently held in the rings
    uint64_t dropped = 0;  ///< overwritten by ring wrap
    size_t threads = 0;    ///< thread buffers ever registered
};

TimelineCounts timelineCounts();

/// @}

/**
 * FNV-1a-style running hash over an iteration's event schedule, built
 * on the shared word-folding step from common/hash.hh (same constants
 * as the byte-stream hashers the result store keys with). The block
 * engine feeds (instruction index, issue-tick offset) for every fire
 * plus the activation's occupancy envelope; equal digests across
 * activations identify steady state (ROADMAP item 1's trigger).
 * Always-on: two multiplies per instruction, no atomics, deterministic.
 */
class SignatureHash
{
  public:
    void reset() { h = fnv64OffsetBasis; }

    void add(uint64_t v) { h = fnv1aStep(h, v); }

    uint64_t digest() const { return h; }

  private:
    uint64_t h = fnv64OffsetBasis;
};

} // namespace dlp::obs

#ifdef DLP_TRACE_DISABLED
#define OBS_SIM_SPAN(cat, name, ts, dur, arg) do {} while (0)
#define OBS_SIM_INSTANT(cat, name, ts, arg) do {} while (0)
#define OBS_SIM_COUNTER(cat, name, ts, value) do {} while (0)
#else
/**
 * The site-static interning idiom: the lambda gives every expansion its
 * own static, so the name is interned once per call site, not per event.
 */
#define OBS_NAME_ID_(name)                                                    \
    ([]() -> uint32_t {                                                       \
        static const uint32_t obsId = ::dlp::obs::internName(name);           \
        return obsId;                                                         \
    }())

/** Record a simulated-tick span if its category is being recorded. */
#define OBS_SIM_SPAN(cat, name, ts, dur, arg)                                 \
    do {                                                                      \
        if (::dlp::obs::enabled(::dlp::obs::Cat::cat)) {                      \
            ::dlp::obs::recordSpan(::dlp::obs::Cat::cat,                      \
                                   OBS_NAME_ID_(name),                        \
                                   ::dlp::obs::Domain::Sim,                   \
                                   uint64_t(ts), uint64_t(dur),               \
                                   uint64_t(arg));                            \
        }                                                                     \
    } while (0)

/** Record a simulated-tick instant if its category is being recorded. */
#define OBS_SIM_INSTANT(cat, name, ts, arg)                                   \
    do {                                                                      \
        if (::dlp::obs::enabled(::dlp::obs::Cat::cat)) {                      \
            ::dlp::obs::recordInstant(::dlp::obs::Cat::cat,                   \
                                      OBS_NAME_ID_(name),                     \
                                      ::dlp::obs::Domain::Sim,                \
                                      uint64_t(ts), uint64_t(arg));           \
        }                                                                     \
    } while (0)

/** Record a simulated-tick counter sample if its category is on. */
#define OBS_SIM_COUNTER(cat, name, ts, value)                                 \
    do {                                                                      \
        if (::dlp::obs::enabled(::dlp::obs::Cat::cat)) {                      \
            ::dlp::obs::recordCounter(::dlp::obs::Cat::cat,                   \
                                      OBS_NAME_ID_(name),                     \
                                      ::dlp::obs::Domain::Sim,                \
                                      uint64_t(ts), double(value));           \
        }                                                                     \
    } while (0)
#endif

#endif // DLP_OBS_TIMELINE_HH
