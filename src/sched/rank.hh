/**
 * @file
 * Static placement ranking -- the hook a placement/unroll autotuner
 * calls to order candidate schedules without simulating them.
 *
 * Declared in sched/ (the consumer-facing layer) but implemented in
 * the cost library (src/cost/rank.cc), which supplies the throughput
 * estimates; link dlp_cost to use it. The estimate is the cost
 * model's predictedTicksPerRecord -- a ranking signal validated for
 * rank correlation against the simulator, not a sound bound.
 */

#ifndef DLP_SCHED_RANK_HH
#define DLP_SCHED_RANK_HH

#include <cstddef>
#include <vector>

#include "core/machine.hh"
#include "sched/plan.hh"

namespace dlp::sched {

/** One ranked candidate. */
struct RankedPlacement
{
    size_t index;       ///< position in the candidates vector
    double ticksPerRecord; ///< static throughput estimate (lower = better)
};

/**
 * Rank candidate SIMD schedules for one machine, best (lowest
 * predicted ticks per record) first. Ties keep candidate order, so
 * the result is deterministic.
 */
std::vector<RankedPlacement>
rankPlacements(const std::vector<SimdPlan> &candidates,
               const core::MachineParams &m);

} // namespace dlp::sched

#endif // DLP_SCHED_RANK_HH
