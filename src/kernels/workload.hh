/**
 * @file
 * Workload generation for the benchmark kernels.
 *
 * A Workload owns everything one experiment consumes: the kernel, the
 * input record stream (possibly staged: the FFT runs one record stream
 * per butterfly stage, LU one per elimination step), the irregular-memory
 * image (textures), and the expected outputs computed with the golden
 * models in src/ref. The runner pulls batches, pushes back the machine's
 * outputs, and finally asks the workload to verify.
 */

#ifndef DLP_KERNELS_WORKLOAD_HH
#define DLP_KERNELS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernels/interp.hh"
#include "kernels/ir.hh"

namespace dlp::kernels {

class Workload
{
  public:
    virtual ~Workload() = default;

    const Kernel &kernel() const { return kern; }

    /**
     * Fetch the next batch of records. Returns false when the workload
     * is exhausted. Batches beyond the first may depend on outputs of
     * earlier batches (FFT stages, LU steps).
     */
    virtual bool nextBatch(std::vector<Word> &input,
                           uint64_t &numRecords) = 0;

    /** Hand the outputs of the batch from the last nextBatch() back. */
    virtual void consumeOutput(const std::vector<Word> &output) = 0;

    /** After all batches: did the machine compute the right answer? */
    virtual bool verify(std::string &err) const = 0;

    /** Total records across all batches (for ops/cycle accounting). */
    virtual uint64_t totalRecords() const = 0;

    /**
     * How many dependent batches nextBatch will yield (FFT stages, LU
     * steps). Part of the run's shape, known before simulating: the
     * static cost model uses it to charge per-batch map/setup ramps.
     */
    virtual uint64_t numBatches() const { return 1; }

    /** Copy the irregular-memory image into the machine. */
    void
    populateIrregular(const std::function<void(Addr, Word)> &writeWord) const
    {
        for (const auto &kv : irregular)
            writeWord(kv.first, kv.second);
    }

    /** Irregular-memory callbacks for the IR interpreter. */
    IrregularMemory
    irregularMemory()
    {
        IrregularMemory mem;
        mem.read = [this](Addr a) {
            auto it = irregular.find(a);
            return it == irregular.end() ? Word(0) : it->second;
        };
        mem.write = [this](Addr a, Word w) { irregular[a] = w; };
        return mem;
    }

    bool hasIrregular() const { return !irregular.empty(); }

    /** Install one word of the irregular-memory image (textures). */
    void installIrregularWord(Addr a, Word w) { irregular[a] = w; }

  protected:
    explicit Workload(Kernel k) : kern(std::move(k)) {}

    /** Compare two output words; fp words within eps, others exactly. */
    static bool wordsMatch(Word got, Word want, bool fp, double eps);

    Kernel kern;
    std::unordered_map<Addr, Word> irregular;
};

/**
 * An immutable, shareable dataset for one (kernel, scale, seed): the
 * generated input records, the golden-model expected outputs, and the
 * irregular-memory image (textures). Building a fixture is the
 * expensive part of workload creation — it runs every golden model —
 * so the sweep driver builds one fixture per kernel and stamps out a
 * fresh Workload per machine configuration with instantiate().
 *
 * Fixtures are deeply immutable after construction: instantiate() is
 * const and safe to call concurrently from many worker threads, and
 * every instance carries its own mutable run state.
 */
class WorkloadFixture
{
  public:
    WorkloadFixture(std::string name, uint64_t scale, uint64_t seed)
        : kernName(std::move(name)), problemScale(scale), dataSeed(seed)
    {
    }
    virtual ~WorkloadFixture() = default;

    /** Stamp out a fresh workload instance reading this fixture. */
    virtual std::unique_ptr<Workload> instantiate() const = 0;

    const std::string &kernelName() const { return kernName; }
    uint64_t scale() const { return problemScale; }
    uint64_t seed() const { return dataSeed; }

  private:
    std::string kernName;
    uint64_t problemScale;
    uint64_t dataSeed;
};

/**
 * Build the shared fixture for a kernel: generate the dataset and run
 * the golden models once. Parameters as makeWorkload().
 */
std::shared_ptr<const WorkloadFixture>
makeFixture(const std::string &name, uint64_t scale, uint64_t seed);

/**
 * Create the standard workload for a kernel (builds a single-use
 * fixture; sweeps should build one fixture and instantiate() per run).
 *
 * @param name  Table 1 kernel name
 * @param scale problem size: records for streaming kernels, matrix
 *              dimension for lu, transform length for fft
 * @param seed  dataset seed (kernel constants use kernelSeed() instead
 *              and are not affected)
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       uint64_t scale, uint64_t seed);

/** Default problem scale used by tests and benches for each kernel. */
uint64_t defaultScale(const std::string &name);

} // namespace dlp::kernels

#endif // DLP_KERNELS_WORKLOAD_HH
