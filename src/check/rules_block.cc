#include <map>
#include <sstream>

#include "check/rules.hh"
#include "isa/disasm.hh"

namespace dlp::check {

using isa::MappedBlock;
using isa::MappedInst;
using isa::Op;

namespace {

/** Result words an instruction can deliver (Target::wordIdx bound). */
unsigned
resultWords(const MappedInst &mi)
{
    return mi.op == Op::Lmw ? mi.lmwCount : 1;
}

void
checkOpcode(const MappedBlock &b, size_t i, const BlockCtx &ctx,
            Report &rep)
{
    const MappedInst &mi = b.insts[i];
    const std::string &name = b.name;
    if (mi.op >= Op::NumOps) {
        rep.add("CFG-OPCODE", name, int(i), -1, "invalid opcode value");
        return;
    }
    if (isa::isCtrlOp(mi.op)) {
        std::ostringstream os;
        os << "sequential control op " << isa::opName(mi.op)
           << " in a mapped block (MIMD-only opcode)";
        rep.add("CFG-OPCODE", name, int(i), -1, os.str());
    }
    if (isa::isMemOp(mi.op) && mi.space == isa::MemSpace::None)
        rep.add("CFG-OPCODE", name, int(i), -1,
                std::string(isa::opName(mi.op)) +
                    " without a memory space");
    if (mi.regTile && mi.op != Op::Read && mi.op != Op::Write)
        rep.add("CFG-OPCODE", name, int(i), -1,
                std::string("regTile on ") + isa::opName(mi.op) +
                    " (register tiles hold only Read/Write)");
    if ((mi.op == Op::Read || mi.op == Op::Write) &&
        mi.imm >= ctx.m.numRegs) {
        std::ostringstream os;
        os << isa::opName(mi.op) << " register " << mi.imm << " >= "
           << ctx.m.numRegs;
        rep.add("CFG-REG", name, int(i), -1, os.str());
    }
    if (mi.op == Op::Tld && ctx.kernel &&
        mi.tableId >= ctx.kernel->tables.size()) {
        std::ostringstream os;
        os << "Tld table " << mi.tableId << " but kernel defines "
           << ctx.kernel->tables.size();
        rep.add("CFG-TABLE", name, int(i), -1, os.str());
    }
}

void
checkArity(const MappedBlock &b, size_t i, Report &rep)
{
    const MappedInst &mi = b.insts[i];
    if (mi.op >= Op::NumOps)
        return;
    const auto &info = isa::opInfo(mi.op);
    if (mi.numSrcs > isa::maxSrcs) {
        std::ostringstream os;
        os << "numSrcs " << int(mi.numSrcs) << " > max " << isa::maxSrcs;
        rep.add("DF-ARITY", b.name, int(i), -1, os.str());
        return;
    }
    unsigned expect = info.numSrcs;
    if (mi.immB) {
        if (info.numSrcs < 2) {
            rep.add("DF-ARITY", b.name, int(i), -1,
                    std::string("immB on ") + isa::opName(mi.op) +
                        ", which has no second source");
            return;
        }
        --expect;
    }
    // Memory ops may carry one extra source: the ordering token the
    // lowering threads between aliasing accesses.
    unsigned most = isa::isMemOp(mi.op)
                        ? std::min<unsigned>(expect + 1, isa::maxSrcs)
                        : expect;
    if (mi.numSrcs < expect || mi.numSrcs > most) {
        std::ostringstream os;
        os << isa::opName(mi.op) << " has numSrcs " << int(mi.numSrcs)
           << ", expected " << expect;
        if (most != expect)
            os << ".." << most;
        rep.add("DF-ARITY", b.name, int(i), -1, os.str());
    }
}

void
checkTargets(const MappedBlock &b, size_t i, Report &rep)
{
    const MappedInst &mi = b.insts[i];
    for (const auto &t : mi.targets) {
        if (t.inst >= b.insts.size()) {
            std::ostringstream os;
            os << "target i" << t.inst << " outside block of "
               << b.insts.size();
            rep.add("DF-DANGLE", b.name, int(i), -1, os.str());
            continue;
        }
        const MappedInst &dst = b.insts[t.inst];
        if (t.srcSlot >= isa::maxSrcs) {
            std::ostringstream os;
            os << "target slot " << int(t.srcSlot) << " >= max "
               << int(isa::maxSrcs);
            rep.add("DF-SLOT", b.name, int(i), -1, os.str());
        } else if (t.srcSlot >= dst.numSrcs) {
            std::ostringstream os;
            os << "delivers to i" << t.inst << ".s" << int(t.srcSlot)
               << " but the consumer waits on " << int(dst.numSrcs)
               << " source(s)";
            rep.add("DF-SLOT", b.name, int(i), -1, os.str());
        }
        if (t.wordIdx >= resultWords(mi)) {
            std::ostringstream os;
            os << "target wants result word " << int(t.wordIdx)
               << " of " << isa::opName(mi.op) << " producing "
               << resultWords(mi);
            rep.add("DF-WORD", b.name, int(i), -1, os.str());
        }
    }
}

void
checkProducers(const MappedBlock &b, const BlockGraph &g, Report &rep)
{
    for (size_t i = 0; i < b.insts.size(); ++i) {
        const MappedInst &mi = b.insts[i];
        for (unsigned s = 0; s < mi.numSrcs && s < isa::maxSrcs; ++s) {
            size_t n = g.producers[i][s].size();
            if (n == 0) {
                std::ostringstream os;
                os << "no producer targets s" << s << " of "
                   << isa::opName(mi.op)
                   << "; the instruction can never fire";
                rep.add("DF-NOPROD", b.name, int(i), int(s), os.str());
            } else if (n > 1) {
                std::ostringstream os;
                os << n << " producers race for s" << s << " (i";
                for (size_t p = 0; p < n; ++p)
                    os << (p ? ", i" : "") << g.producers[i][s][p].inst;
                os << ")";
                rep.add("DF-RACE", b.name, int(i), int(s), os.str());
            }
        }
    }
}

void
checkCycles(const MappedBlock &b, const BlockGraph &g, Report &rep)
{
    for (const auto &comp : g.cycles) {
        std::ostringstream os;
        os << "dataflow cycle of " << comp.size() << ": ";
        for (size_t k = 0; k < comp.size() && k < 8; ++k)
            os << (k ? " -> i" : "i") << comp[k];
        if (comp.size() > 8)
            os << " -> ...";
        os << "; no member can ever fire";
        rep.add("DF-CYCLE", b.name, int(comp.front()), -1, os.str());
    }
}

void
checkCapacity(const MappedBlock &b, const BlockCtx &ctx, Report &rep)
{
    const auto &m = ctx.m;
    if (b.rows > m.rows || b.cols > m.cols ||
        b.slotsPerTile > m.frameSlots) {
        std::ostringstream os;
        os << "block grid " << int(b.rows) << "x" << int(b.cols) << "x"
           << int(b.slotsPerTile) << " exceeds machine " << m.rows << "x"
           << m.cols << "x" << m.frameSlots;
        rep.add("CAP-GRID", b.name, -1, -1, os.str());
    }

    std::map<std::tuple<unsigned, unsigned, unsigned>, size_t> station;
    std::map<std::pair<unsigned, unsigned>, unsigned> tileCount;
    for (size_t i = 0; i < b.insts.size(); ++i) {
        const MappedInst &mi = b.insts[i];
        if (mi.row >= b.rows || mi.col >= b.cols) {
            std::ostringstream os;
            os << "placed at (" << int(mi.row) << "," << int(mi.col)
               << ") outside the " << int(b.rows) << "x" << int(b.cols)
               << " block";
            rep.add("CAP-GRID", b.name, int(i), -1, os.str());
            continue;
        }
        if (mi.regTile)
            continue;
        if (mi.slot >= b.slotsPerTile) {
            std::ostringstream os;
            os << "slot " << int(mi.slot) << " >= " << int(b.slotsPerTile)
               << " slots per tile";
            rep.add("CAP-GRID", b.name, int(i), -1, os.str());
            continue;
        }
        auto key = std::make_tuple(mi.row, mi.col, mi.slot);
        auto [it, fresh] = station.emplace(key, i);
        if (!fresh) {
            std::ostringstream os;
            os << "shares reservation station (" << int(mi.row) << ","
               << int(mi.col) << ":" << int(mi.slot) << ") with i"
               << it->second;
            rep.add("CAP-SLOT", b.name, int(i), -1, os.str());
        }
        ++tileCount[{mi.row, mi.col}];
    }
    for (const auto &[tile, count] : tileCount) {
        if (count > b.slotsPerTile) {
            std::ostringstream os;
            os << count << " instructions on tile (" << tile.first << ","
               << tile.second << ") > " << int(b.slotsPerTile)
               << " slots";
            rep.add("CAP-TILE", b.name, -1, -1, os.str());
        }
    }
}

void
checkRevitalization(const MappedBlock &b, const BlockGraph &g,
                    const BlockCtx &ctx, Report &rep)
{
    for (size_t i = 0; i < b.insts.size(); ++i) {
        const MappedInst &mi = b.insts[i];
        bool anyPersistent = false;
        for (unsigned s = 0; s < mi.numSrcs && s < isa::maxSrcs; ++s)
            anyPersistent |= mi.persistent[s];
        if (!ctx.m.mech.operandRevitalize && (anyPersistent || mi.onceOnly))
            rep.add("REV-PERSIST", b.name, int(i), -1,
                    std::string(mi.onceOnly ? "once-only instruction"
                                            : "persistent operand") +
                        " on a machine without operand revitalization");
    }
    if (!ctx.revitalized || !g.sound)
        return;
    // Across a revitalize, a persistent slot keeps its operand and a
    // normal slot is cleared: the producer's firing discipline must
    // match, in both directions.
    for (size_t i = 0; i < b.insts.size(); ++i) {
        const MappedInst &mi = b.insts[i];
        for (unsigned s = 0; s < mi.numSrcs && s < isa::maxSrcs; ++s) {
            for (const auto &p : g.producers[i][s]) {
                bool once = b.insts[p.inst].onceOnly;
                if (once && !mi.persistent[s]) {
                    std::ostringstream os;
                    os << "once-only i" << p.inst
                       << " feeds a non-persistent slot; empty after the "
                          "first revitalize (deadlock)";
                    rep.add("REV-FEED", b.name, int(i), int(s), os.str());
                } else if (!once && mi.persistent[s]) {
                    std::ostringstream os;
                    os << "persistent slot fed by re-firing i" << p.inst
                       << "; the consumer can fire on the stale operand";
                    rep.add("REV-FEED", b.name, int(i), int(s), os.str());
                }
            }
        }
    }
}

} // namespace

void
checkBlock(const MappedBlock &b, const BlockCtx &ctx, Report &rep)
{
    BlockGraph g = buildGraph(b);
    for (size_t i = 0; i < b.insts.size(); ++i) {
        checkOpcode(b, i, ctx, rep);
        checkArity(b, i, rep);
        checkTargets(b, i, rep);
    }
    checkProducers(b, g, rep);
    checkCycles(b, g, rep);
    checkCapacity(b, ctx, rep);
    checkRevitalization(b, g, ctx, rep);
    // Address analysis needs a well-formed acyclic graph; the structural
    // findings above already make the block fatal otherwise.
    if (g.sound && !g.cyclic())
        checkMemOrder(b, g, ctx, rep);
}

void
checkTableBudget(const kernels::Kernel &k, const core::MachineParams &m,
                 Report &rep)
{
    if (!m.mech.l0DataStore)
        return;
    for (size_t t = 0; t < k.tables.size(); ++t) {
        uint64_t bytes = k.tables[t].data.size() * wordBytes;
        if (bytes > m.l0DataBytes) {
            std::ostringstream os;
            os << "table '" << k.tables[t].name << "' (" << bytes
               << " B) exceeds one tile's " << m.l0DataBytes
               << " B L0 data store";
            rep.add("CFG-TBL-BUDGET", k.name, -1, -1, os.str());
        }
    }
    uint64_t total = k.tableBytes();
    uint64_t aggregate = uint64_t(m.tiles()) * m.l0DataBytes;
    if (total > aggregate) {
        std::ostringstream os;
        os << "tables total " << total << " B > the grid's " << aggregate
           << " B aggregate L0 capacity";
        rep.add("CFG-TBL-BUDGET", k.name, -1, -1, os.str());
    }
}

} // namespace dlp::check
