/**
 * @file
 * Golden-model validation: every reference implementation is checked
 * against published test vectors or an independent direct-definition
 * computation before it is trusted as the oracle for the simulator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/random.hh"
#include "ref/blowfish.hh"
#include "ref/dsp.hh"
#include "ref/fft.hh"
#include "ref/linalg.hh"
#include "ref/md5.hh"
#include "ref/pi_digits.hh"
#include "ref/rijndael.hh"
#include "ref/shading.hh"
#include "ref/texture.hh"

using namespace dlp;
using namespace dlp::ref;

// --------------------------------------------------------------------------
// Pi digits (BBP)
// --------------------------------------------------------------------------

TEST(PiDigits, FirstWordsMatchKnownExpansion)
{
    // 3.243F6A88 85A308D3 13198A2E 03707344 A4093822 299F31D0 ...
    auto words = piFractionWords(6);
    EXPECT_EQ(words[0], 0x243F6A88u);
    EXPECT_EQ(words[1], 0x85A308D3u);
    EXPECT_EQ(words[2], 0x13198A2Eu);
    EXPECT_EQ(words[3], 0x03707344u);
    EXPECT_EQ(words[4], 0xA4093822u);
    EXPECT_EQ(words[5], 0x299F31D0u);
}

TEST(PiDigits, DeepDigitsSelfConsistent)
{
    // Word at an offset position must agree with digits of an
    // overlapping extraction (catches precision loss in the tail sums).
    uint32_t w0 = piHexWordAt(1000);
    uint32_t w1 = piHexWordAt(1004);
    EXPECT_EQ(w0 & 0xffffu, w1 >> 16);
}

// --------------------------------------------------------------------------
// MD5 (RFC 1321 appendix vectors)
// --------------------------------------------------------------------------

static std::string
md5Of(const std::string &s)
{
    return md5Hex(
        md5Digest(reinterpret_cast<const uint8_t *>(s.data()), s.size()));
}

TEST(Md5, Rfc1321Vectors)
{
    EXPECT_EQ(md5Of(""), "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(md5Of("a"), "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(md5Of("abc"), "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(md5Of("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(md5Of("abcdefghijklmnopqrstuvwxyz"),
              "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Md5, CompressMatchesDigestForOneChunk)
{
    // A 64-byte message exercises exactly one compress of data plus one
    // of padding; check compress() against the full digest pipeline.
    uint8_t msg[64];
    for (int i = 0; i < 64; ++i)
        msg[i] = static_cast<uint8_t>(i * 7 + 1);

    Md5State st = md5Init();
    uint32_t block[16];
    std::memcpy(block, msg, 64);
    md5Compress(st, block);

    // Continue with the padding chunk by hand.
    uint8_t pad[64] = {0x80};
    uint64_t bits = 64 * 8;
    std::memcpy(pad + 56, &bits, 8);
    std::memcpy(block, pad, 64);
    md5Compress(st, block);

    auto full = md5Digest(msg, 64);
    std::array<uint8_t, 16> mine;
    std::memcpy(mine.data(), st.data(), 16);
    EXPECT_EQ(mine, full);
}

// --------------------------------------------------------------------------
// Blowfish (Eric Young / SSLeay reference vectors)
// --------------------------------------------------------------------------

TEST(Blowfish, ReferenceVectors)
{
    struct Vec
    {
        uint64_t key, plain, cipher;
    };
    // From the canonical Blowfish vector set.
    const Vec vecs[] = {
        {0x0000000000000000ull, 0x0000000000000000ull, 0x4EF997456198DD78ull},
        {0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull, 0x51866FD5B85ECB8Aull},
        {0x3000000000000000ull, 0x1000000000000001ull, 0x7D856F9A613063F2ull},
        {0x1111111111111111ull, 0x1111111111111111ull, 0x2466DD878B963C9Dull},
        {0x0123456789ABCDEFull, 0x1111111111111111ull, 0x61F9C3802281B096ull},
    };
    for (const auto &v : vecs) {
        uint8_t key[8];
        for (int i = 0; i < 8; ++i)
            key[i] = static_cast<uint8_t>(v.key >> (56 - 8 * i));
        Blowfish bf(key, 8);
        uint32_t l = static_cast<uint32_t>(v.plain >> 32);
        uint32_t r = static_cast<uint32_t>(v.plain);
        bf.encrypt(l, r);
        EXPECT_EQ((uint64_t(l) << 32) | r, v.cipher);
        bf.decrypt(l, r);
        EXPECT_EQ((uint64_t(l) << 32) | r, v.plain);
    }
}

TEST(Blowfish, PBoxStartsWithPi)
{
    // Before key mixing P[0] is 0x243F6A88; after expansion with a
    // non-degenerate key it must differ.
    uint8_t key[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    Blowfish bf(key, 8);
    EXPECT_NE(bf.pArray()[0], 0x243F6A88u);
}

// --------------------------------------------------------------------------
// AES-128 (FIPS-197 vectors)
// --------------------------------------------------------------------------

TEST(Aes128, Fips197AppendixB)
{
    const uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                             0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    const uint8_t plain[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                               0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                               0x07, 0x34};
    const uint8_t expect[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09,
                                0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                                0x0b, 0x32};
    Aes128 aes(key);
    uint8_t out[16];
    aes.encrypt(plain, out);
    EXPECT_EQ(0, std::memcmp(out, expect, 16));
}

TEST(Aes128, Fips197AppendixC)
{
    const uint8_t key[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                             0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
    const uint8_t plain[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
                               0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                               0xee, 0xff};
    const uint8_t expect[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04,
                                0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                                0xc5, 0x5a};
    Aes128 aes(key);
    uint8_t out[16];
    aes.encrypt(plain, out);
    EXPECT_EQ(0, std::memcmp(out, expect, 16));
}

TEST(Aes128, TTableMatchesSpecificationForm)
{
    Rng rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        uint8_t key[16], plain[16], a[16], b[16];
        for (auto &k : key)
            k = static_cast<uint8_t>(rng.next());
        for (auto &p : plain)
            p = static_cast<uint8_t>(rng.next());
        Aes128 aes(key);
        aes.encrypt(plain, a);
        aes.encryptTTable(plain, b);
        ASSERT_EQ(0, std::memcmp(a, b, 16)) << "trial " << trial;
    }
}

TEST(Aes128, SboxSpotChecks)
{
    const auto &s = aesSbox();
    EXPECT_EQ(s[0x00], 0x63);
    EXPECT_EQ(s[0x01], 0x7c);
    EXPECT_EQ(s[0x53], 0xed);
    EXPECT_EQ(s[0xff], 0x16);
}

// --------------------------------------------------------------------------
// DSP
// --------------------------------------------------------------------------

TEST(Dsp, DctButterflyMatchesNaive)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        double in[64], fast[64], naive[64];
        for (auto &v : in)
            v = rng.uniform(-128, 128);
        dct8x8(in, fast);
        dct8x8Naive(in, naive);
        for (int i = 0; i < 64; ++i)
            ASSERT_NEAR(fast[i], naive[i], 1e-9) << "coef " << i;
    }
}

TEST(Dsp, Dct1dDcCoefficientIsSum)
{
    double in[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    double out[8];
    dct1d8(in, out);
    EXPECT_NEAR(out[0], 36.0, 1e-12);
}

TEST(Dsp, RgbToYiqKnownValues)
{
    // Pure white has zero chroma.
    double rgb[3] = {1.0, 1.0, 1.0};
    double yiq[3];
    rgbToYiq(rgb, yiq);
    EXPECT_NEAR(yiq[0], 1.0, 1e-12);
    EXPECT_NEAR(yiq[1], 0.0, 1e-12);
    EXPECT_NEAR(yiq[2], 0.0, 1e-12);
}

TEST(Dsp, HighpassFlatFieldIsZero)
{
    double window[9];
    for (auto &v : window)
        v = 42.0;
    EXPECT_NEAR(highpass3x3(window), 0.0, 1e-9);
}

// --------------------------------------------------------------------------
// FFT
// --------------------------------------------------------------------------

TEST(Fft, MatchesNaiveDft)
{
    Rng rng(11);
    std::vector<Complex> data(64);
    for (auto &c : data)
        c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    auto expect = dftNaive(data);
    fft(data);
    for (size_t i = 0; i < data.size(); ++i) {
        ASSERT_NEAR(data[i].real(), expect[i].real(), 1e-9);
        ASSERT_NEAR(data[i].imag(), expect[i].imag(), 1e-9);
    }
}

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    std::vector<Complex> data(1024, Complex(0, 0));
    data[0] = Complex(1, 0);
    fft(data);
    for (const auto &c : data) {
        ASSERT_NEAR(c.real(), 1.0, 1e-12);
        ASSERT_NEAR(c.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, ButterflyIsTenOps)
{
    // Structural sanity: a'=a+wb, b'=a-wb for a simple case.
    double out[4];
    fftButterfly(1, 0, 1, 0, 0, -1, out); // w = -i, b = 1 -> wb = -i
    EXPECT_NEAR(out[0], 1.0, 1e-12);
    EXPECT_NEAR(out[1], -1.0, 1e-12);
    EXPECT_NEAR(out[2], 1.0, 1e-12);
    EXPECT_NEAR(out[3], 1.0, 1e-12);
}

// --------------------------------------------------------------------------
// LU
// --------------------------------------------------------------------------

TEST(Lu, ReconstructsOriginal)
{
    Matrix a = makeDominantMatrix(32, 3);
    Matrix lu = a;
    luDecompose(lu);
    Matrix back = luReconstruct(lu);
    EXPECT_LT(maxAbsDiff(a, back), 1e-9);
}

TEST(Lu, UpdateFormula)
{
    EXPECT_DOUBLE_EQ(luUpdate(10.0, 2.0, 3.0), 4.0);
}

// --------------------------------------------------------------------------
// Textures and shading
// --------------------------------------------------------------------------

TEST(Texture, PackUnpackRoundTrip)
{
    Word t = packTexel(0.25, 0.5, 1.0);
    EXPECT_NEAR(unpackChannel(t, 0), 0.25, 1e-4);
    EXPECT_NEAR(unpackChannel(t, 1), 0.5, 1e-4);
    EXPECT_NEAR(unpackChannel(t, 2), 1.0, 1e-4);
}

TEST(Texture, BilinearInterpolatesBetweenTexels)
{
    Texture2D tex(4, 4);
    // Bilinear at an integer texel center equals the texel itself.
    tex.fillNoise(5);
    double direct[3], sampled[3];
    Word texel = tex.texel(2, 3);
    for (unsigned c = 0; c < 3; ++c)
        direct[c] = unpackChannel(texel, c);
    tex.sampleBilinear(2.0, 3.0, sampled);
    for (unsigned c = 0; c < 3; ++c)
        EXPECT_NEAR(sampled[c], direct[c], 1e-12);
}

TEST(Texture, WrapsPowerOfTwo)
{
    Texture2D tex(8, 8);
    tex.fillNoise(9);
    EXPECT_EQ(tex.texel(9, 10), tex.texel(1, 2));
    EXPECT_EQ(tex.texel(-1, -1), tex.texel(7, 7));
}

TEST(CubeMapTest, ProjectMajorAxis)
{
    double u, v;
    unsigned f = CubeMap::project(1.0, 0.0, 0.0, 64, u, v);
    EXPECT_EQ(f, 0u);
    EXPECT_NEAR(u, 32.0, 1e-12);
    EXPECT_NEAR(v, 32.0, 1e-12);
    f = CubeMap::project(0.0, -2.0, 0.0, 64, u, v);
    EXPECT_EQ(f, 3u);
}

TEST(Shading, VertexSimpleLightingTerms)
{
    auto p = makeVertexSimpleParams(17);
    // A normal pointing exactly along the light maximizes diffuse.
    double in[7] = {0, 0, 0, p.lightDir.x, p.lightDir.y, p.lightDir.z, 1.0};
    // Undo the normal matrix: feed nrm^T * lightDir so nrm*n = lightDir.
    double n[3] = {
        p.nrm[0] * p.lightDir.x + p.nrm[3] * p.lightDir.y +
            p.nrm[6] * p.lightDir.z,
        p.nrm[1] * p.lightDir.x + p.nrm[4] * p.lightDir.y +
            p.nrm[7] * p.lightDir.z,
        p.nrm[2] * p.lightDir.x + p.nrm[5] * p.lightDir.y +
            p.nrm[8] * p.lightDir.z,
    };
    in[3] = n[0];
    in[4] = n[1];
    in[5] = n[2];
    double out[6];
    vertexSimple(in, out, p);
    // Diffuse term must be present: color > emissive + ambient alone.
    EXPECT_GT(out[3], p.emissive.x + in[6] * p.ambient.x - 1e-9);
}

TEST(Shading, ReflectionVectorIsUnitForUnitInputs)
{
    auto p = makeVertexReflectionParams(23);
    double in[9] = {0.5, -0.25, 1.0, 0.0, 0.0, 1.0, 0, 0, 0};
    double out[6];
    vertexReflection(in, out, p);
    // r = 2(n.v)n - v with unit n (rotation-matrix normal) and unit v
    // has unit length.
    double n[3];
    double nin[3] = {in[3], in[4], in[5]};
    for (int r = 0; r < 3; ++r)
        n[r] = p.nrm[3 * r] * nin[0] + p.nrm[3 * r + 1] * nin[1] +
               p.nrm[3 * r + 2] * nin[2];
    double len = std::sqrt(out[3] * out[3] + out[4] * out[4] +
                           out[5] * out[5]);
    EXPECT_NEAR(len, 1.0, 1e-9);
    (void)n;
}

TEST(Shading, SkinningSingleBoneEqualsDirectTransform)
{
    auto p = makeSkinningParams(31);
    Vec3 pos{1.0, 2.0, 3.0};
    Vec3 nrm{0.0, 0.0, 1.0};
    unsigned idx[4] = {5, 0, 0, 0};
    double w[4] = {1.0, 0, 0, 0};
    double clip[3], color[3], outN[3];
    vertexSkinning(pos, nrm, 1, idx, w, 0.8, clip, color, outN, p);

    const double *m = p.palette.data() + 5 * 12;
    for (int r = 0; r < 3; ++r) {
        double tn = m[4 * r] * nrm.x + m[4 * r + 1] * nrm.y +
                    m[4 * r + 2] * nrm.z;
        EXPECT_NEAR(outN[r], tn, 1e-12);
    }
}

TEST(Shading, SkinningWeightsArePartitionOfUnity)
{
    auto p = makeSkinningParams(37);
    Vec3 pos{0.3, -0.7, 0.9};
    Vec3 nrm{1.0, 0.0, 0.0};
    unsigned idx[4] = {1, 1, 1, 1};
    double w[4] = {0.25, 0.25, 0.25, 0.25};
    double clip4[3], color4[3], n4[3];
    vertexSkinning(pos, nrm, 4, idx, w, 1.0, clip4, color4, n4, p);

    unsigned idx1[4] = {1, 0, 0, 0};
    double w1[4] = {1.0, 0, 0, 0};
    double clip1[3], color1[3], n1[3];
    vertexSkinning(pos, nrm, 1, idx1, w1, 1.0, clip1, color1, n1, p);

    for (int r = 0; r < 3; ++r)
        EXPECT_NEAR(clip4[r], clip1[r], 1e-9);
}

TEST(Shading, AnisoSingleSampleIsNearestTexel)
{
    Texture2D tex(64, 64);
    tex.fillNoise(41);
    auto p = makeAnisoParams(43);
    Word out = anisotropicFilter(10.3, 20.7, 1.0, 0.5, 1, tex, p);
    double rgb[3];
    tex.sampleNearest(10.3, 20.7, rgb);
    Word expect = packTexel(rgb[0], rgb[1], rgb[2]);
    EXPECT_EQ(out, expect);
}

TEST(Shading, FragmentReflectionScalesWithIntensity)
{
    CubeMap cube(32);
    cube.fillNoise(47);
    auto p = makeFragmentReflectionParams(53);
    double in1[5] = {0.3, 0.4, 0.8, 0.0, 0.0};
    double in2[5] = {0.3, 0.4, 0.8, 1.0, 0.0};
    double out1[3], out2[3];
    fragmentReflection(in1, out1, cube, p);
    fragmentReflection(in2, out2, cube, p);
    for (int c = 0; c < 3; ++c)
        EXPECT_GE(out2[c] + 1e-12, out1[c]);
}
