/**
 * @file
 * The sequential sub-ISA executed in MIMD mode.
 *
 * When the local-program-counter mechanism is enabled, each ALU tile runs
 * an ordinary in-order fetch / register-read / execute pipeline out of its
 * L0 instruction store (Section 4.3, Figure 4c). The operand storage
 * buffers act as a small register file. Programs are lists of SeqInst with
 * PC-relative-free absolute branch targets; loops are real backward
 * branches, so data-dependent trip counts execute only the work they need
 * (the fundamental MIMD advantage the paper measures on vertex-skinning).
 */

#ifndef DLP_ISA_SEQ_HH
#define DLP_ISA_SEQ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/mapped.hh"
#include "isa/opcodes.hh"

namespace dlp::isa {

/** One instruction of a per-tile sequential program. */
struct SeqInst
{
    Op op = Op::Nop;
    uint8_t rd = 0;               ///< destination register
    uint8_t rs[maxSrcs] = {0, 0, 0};
    Word imm = 0;
    /// Second operand comes from the immediate field instead of rs[1].
    bool immB = false;

    /// Memory attributes (Ld/St/Tld).
    MemSpace space = MemSpace::None;
    uint16_t tableId = 0;

    /// Branch target (absolute instruction index) for Br/Beqz/Bnez.
    uint32_t branchTarget = 0;

    /// Excluded from the useful-ops/cycle metric when set.
    bool overhead = false;
};

/** A complete MIMD kernel program. */
struct SeqProgram
{
    std::string name;
    std::vector<SeqInst> code;
    unsigned numRegs = 0;       ///< registers used (operand-buffer entries)

    size_t size() const { return code.size(); }
};

} // namespace dlp::isa

#endif // DLP_ISA_SEQ_HH
