/**
 * @file
 * Tests for the analysis layer: Table 2 attribute extraction and the
 * reporting helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/attributes.hh"
#include "analysis/report.hh"
#include "common/logging.hh"
#include "kernels/catalog.hh"

using namespace dlp;
using namespace dlp::analysis;

TEST(Attributes, ConvertMatchesHandCount)
{
    auto a = extractAttributes(kernels::makeConvert());
    // 9 multiplies + 6 adds = 15 compute + nothing else... our builder
    // also counts the 3 loads and 3 stores as instructions (21 total).
    EXPECT_EQ(a.numInsts, 21u);
    EXPECT_EQ(a.recordRead, 3u);
    EXPECT_EQ(a.recordWrite, 3u);
    EXPECT_EQ(a.numConstants, 9u);
    EXPECT_EQ(a.indexedConstants, 0u);
    EXPECT_EQ(a.loopBounds, "-");
    EXPECT_GT(a.ilp, 3.0);
}

TEST(Attributes, FftButterflyIsTiny)
{
    auto a = extractAttributes(kernels::makeFft());
    // 10 flops + 6 loads + 4 stores.
    EXPECT_EQ(a.numInsts, 20u);
    EXPECT_EQ(a.numConstants, 0u);
}

TEST(Attributes, CryptoTablesCounted)
{
    auto bf = extractAttributes(kernels::makeBlowfish());
    EXPECT_EQ(bf.indexedConstants, 16u + 4 * 256);
    EXPECT_EQ(bf.numConstants, 2u);
    EXPECT_EQ(bf.loopBounds, "16");

    auto aes = extractAttributes(kernels::makeRijndael());
    EXPECT_EQ(aes.indexedConstants, 4u * 256 + 256 + 64);
    EXPECT_EQ(aes.loopBounds, "9");
}

TEST(Attributes, VariableLoopsReported)
{
    auto sk = extractAttributes(kernels::makeVertexSkinning());
    EXPECT_EQ(sk.loopBounds, "variable");
    auto an = extractAttributes(kernels::makeAnisotropic());
    EXPECT_EQ(an.loopBounds, "variable");
    EXPECT_GT(an.irregularAccesses, 0u);
    EXPECT_LE(an.irregularAccesses, 50u); // Table 2: <= 50
}

TEST(Attributes, IrregularOnlyOnFragmentKernels)
{
    EXPECT_EQ(extractAttributes(kernels::makeFragmentSimple())
                  .irregularAccesses,
              4u);
    EXPECT_EQ(extractAttributes(kernels::makeFragmentReflection())
                  .irregularAccesses,
              4u);
    EXPECT_EQ(extractAttributes(kernels::makeMd5()).irregularAccesses, 0u);
}

TEST(Attributes, AllFourteenRows)
{
    auto rows = extractAllAttributes();
    EXPECT_EQ(rows.size(), 14u);
    for (const auto &r : rows) {
        EXPECT_GT(r.numInsts, 0u);
        EXPECT_GE(r.ilp, 1.0);
    }
}

TEST(Report, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0}), 2.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_THROW(harmonicMean({}), PanicError);
    EXPECT_THROW(harmonicMean({1.0, 0.0}), PanicError);
}

TEST(Report, TextTableAligns)
{
    TextTable t;
    t.header({"a", "bbbb"});
    t.row({"xxxxx", "y"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("xxxxx"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Report, FmtPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
}
