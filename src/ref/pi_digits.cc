#include "ref/pi_digits.hh"

#include "common/logging.hh"

namespace dlp::ref {

namespace {

/** 16^e mod m (m fits in 32 bits, so 64-bit products cannot overflow). */
uint64_t
powmod16(uint64_t e, uint64_t m)
{
    if (m == 1)
        return 0;
    uint64_t result = 1 % m;
    uint64_t base = 16 % m;
    while (e) {
        if (e & 1)
            result = (result * base) % m;
        base = (base * base) % m;
        e >>= 1;
    }
    return result;
}

/**
 * Fractional part of sum_k 16^(n-k) / (8k + j), in 2^-64 fixed point.
 *
 * Head terms (k <= n) are computed exactly with 128-bit division of the
 * modular numerator; tail terms (k > n) decay by 16x each and only the
 * first few matter.
 */
uint64_t
seriesFrac(uint64_t n, uint64_t j)
{
    uint64_t acc = 0; // wraps mod 2^64, which is exactly "mod 1"

    for (uint64_t k = 0; k <= n; ++k) {
        uint64_t m = 8 * k + j;
        uint64_t num = powmod16(n - k, m);
        // (num / m) in 2^-64 fixed point, truncated.
        acc += static_cast<uint64_t>(
            (static_cast<unsigned __int128>(num) << 64) / m);
    }

    // Tail: 16^(n-k) = 16^-(k-n) for k > n.
    long double tail = 0.0L;
    for (uint64_t k = n + 1; k <= n + 18; ++k) {
        long double term = 1.0L;
        for (uint64_t p = 0; p < k - n; ++p)
            term /= 16.0L;
        tail += term / static_cast<long double>(8 * k + j);
    }
    acc += static_cast<uint64_t>(tail * 18446744073709551616.0L);
    return acc;
}

} // namespace

uint32_t
piHexWordAt(uint64_t n)
{
    // frac(16^n * pi) = frac(4 S1 - 2 S4 - S5 - S6); all arithmetic is
    // naturally mod 1 in 2^-64 fixed point.
    uint64_t s1 = seriesFrac(n, 1);
    uint64_t s4 = seriesFrac(n, 4);
    uint64_t s5 = seriesFrac(n, 5);
    uint64_t s6 = seriesFrac(n, 6);
    uint64_t frac = 4 * s1 - 2 * s4 - s5 - s6;
    return static_cast<uint32_t>(frac >> 32);
}

std::vector<uint32_t>
piFractionWords(size_t count)
{
    std::vector<uint32_t> words(count);
    for (size_t i = 0; i < count; ++i)
        words[i] = piHexWordAt(i * 8);

    panic_if(count > 0 && words[0] != 0x243F6A88u,
             "BBP self-check failed: first pi word 0x%08x", words[0]);
    return words;
}

} // namespace dlp::ref
