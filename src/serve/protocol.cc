#include "serve/protocol.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.hh"

namespace dlp::serve {

bool
LineReader::next(std::string &line)
{
    size_t nl = buf.find('\n');
    if (nl == std::string::npos)
        return false;
    line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    return true;
}

bool
writeLine(int fd, const json::Value &message)
{
    std::string text = json::write(message, 0);
    text += '\n';
    const char *p = text.data();
    size_t n = text.size();
    while (n) {
        ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w <= 0) {
            if (w < 0 && errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= size_t(w);
    }
    return true;
}

int
connectUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatal_if(fd < 0, "socket failed: %s", std::strerror(errno));
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    fatal_if(path.size() >= sizeof(addr.sun_path),
             "socket path too long: '%s'", path.c_str());
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fatal_if(::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                       sizeof(addr)) != 0,
             "cannot connect to sweepd at '%s': %s", path.c_str(),
             std::strerror(errno));
    return fd;
}

bool
readMessage(int fd, LineReader &reader, std::string &line)
{
    while (!reader.next(line)) {
        char chunk[65536];
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        reader.feed(chunk, size_t(n));
    }
    return true;
}

json::Value
sweepRequest(const std::string &id, const driver::SweepPlan &plan)
{
    json::Value req = json::Value::object();
    req.set("op", "sweep");
    req.set("id", id);
    json::Value tasks = json::Value::array();
    for (const auto &t : plan.tasks) {
        json::Value task = json::Value::object();
        task.set("kernel", t.kernel);
        task.set("config", t.config);
        task.set("scaleDiv", t.scaleDiv);
        task.set("seed", t.seed);
        task.set("scale", t.scale);
        tasks.push(std::move(task));
    }
    req.set("tasks", std::move(tasks));
    return req;
}

json::Value
simpleRequest(const std::string &id, const std::string &op)
{
    json::Value req = json::Value::object();
    req.set("op", op);
    req.set("id", id);
    return req;
}

driver::SweepPlan
planFromRequest(const json::Value &request)
{
    driver::SweepPlan plan;
    for (const auto &t : request.at("tasks").items()) {
        driver::SweepTask task;
        task.kernel = t.at("kernel").asString();
        task.config = t.at("config").asString();
        task.scaleDiv = uint64_t(t.at("scaleDiv").asNumber());
        task.seed = uint64_t(t.at("seed").asNumber());
        task.scale = uint64_t(t.at("scale").asNumber());
        plan.tasks.push_back(std::move(task));
    }
    return plan;
}

} // namespace dlp::serve
