#include "driver/job_pool.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "obs/timeline.hh"

namespace dlp::driver {

JobPool::JobPool(unsigned workers)
{
    unsigned n = workers ? workers : defaultWorkers();
    if (n == 0)
        n = 1;
    queues.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

JobPool::~JobPool()
{
    // Drain outstanding work; the caller's wait() should already have
    // consumed any job exception, so a leftover one is dropped here
    // (destructors must not throw).
    try {
        wait();
    } catch (...) {
    }
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        stopping = true;
    }
    workCv.notify_all();
    for (auto &t : threads)
        t.join();
}

void
JobPool::submit(Job job)
{
    unsigned target;
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        panic_if(stopping, "submit() on a stopping JobPool");
        ++unfinished;
        ++queuedJobs;
        target = nextQueue++ % unsigned(queues.size());
    }
    {
        std::lock_guard<std::mutex> lock(queues[target]->mutex);
        queues[target]->jobs.push_back(std::move(job));
    }
    workCv.notify_one();
}

void
JobPool::wait()
{
    std::unique_lock<std::mutex> lock(poolMutex);
    idleCv.wait(lock, [this] { return unfinished == 0; });
    if (firstError) {
        std::exception_ptr err = firstError;
        firstError = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

size_t
JobPool::pending() const
{
    std::lock_guard<std::mutex> lock(poolMutex);
    return unfinished;
}

unsigned
JobPool::defaultWorkers()
{
    const char *env = std::getenv("DLP_JOBS");
    if (!env || !*env)
        return 1;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || (end && *end) || v < 0) {
        warn("ignoring malformed DLP_JOBS='%s'", env);
        return 1;
    }
    if (v == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }
    return v > 256 ? 256u : unsigned(v);
}

bool
JobPool::popLocal(unsigned self, Job &job)
{
    auto &q = *queues[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.jobs.empty())
        return false;
    job = std::move(q.jobs.back());
    q.jobs.pop_back();
    return true;
}

bool
JobPool::stealRemote(unsigned self, Job &job)
{
    unsigned n = unsigned(queues.size());
    for (unsigned d = 1; d < n; ++d) {
        auto &q = *queues[(self + d) % n];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (q.jobs.empty())
            continue;
        // Steal the oldest job: long jobs submitted early migrate to
        // idle workers instead of serializing behind their submitter.
        job = std::move(q.jobs.front());
        q.jobs.pop_front();
        return true;
    }
    return false;
}

void
JobPool::workerLoop(unsigned self)
{
    for (;;) {
        Job job;
        if (popLocal(self, job) || stealRemote(self, job)) {
            {
                std::lock_guard<std::mutex> lock(poolMutex);
                --queuedJobs;
            }
            try {
                obs::HostSpan jobSpan(obs::Cat::Driver, "job");
                job();
            } catch (...) {
                std::lock_guard<std::mutex> lock(poolMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(poolMutex);
            if (--unfinished == 0)
                idleCv.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(poolMutex);
        workCv.wait(lock,
                    [this] { return stopping || queuedJobs > 0; });
        if (stopping)
            return;
    }
}

void
parallelFor(JobPool &pool, size_t n, const std::function<void(size_t)> &fn)
{
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace dlp::driver
