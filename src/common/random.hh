/**
 * @file
 * Deterministic pseudo-random generator for synthetic workload data.
 *
 * Every workload generator in the benchmark harness derives its data from
 * this generator with a fixed seed, so the experiments are exactly
 * reproducible run to run; std::mt19937 and friends are avoided in the
 * public API so generated datasets cannot drift with the standard library.
 */

#ifndef DLP_COMMON_RANDOM_HH
#define DLP_COMMON_RANDOM_HH

#include <cstdint>

namespace dlp {

/** xoshiro256** generator; small, fast and high quality. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a single seed word (splitmix64). */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /**
     * Uniform integer in [0, bound). bound must be non-zero.
     *
     * Lemire multiply-shift with rejection: a plain `next() % bound`
     * over-selects the low residues whenever 2^64 is not a multiple of
     * bound, which measurably skews small-bound draws (dataset shapes,
     * fuzzer op picks). The 128-bit product maps the raw draw to
     * [0, bound) and the threshold test rejects exactly the draws that
     * would land in the short final stripe, so every residue is equally
     * likely. Rejection probability is bound / 2^64 -- negligible for
     * every bound this simulator uses.
     */
    uint64_t
    below(uint64_t bound)
    {
        uint64_t x = next();
        unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
        auto low = static_cast<uint64_t>(m);
        if (low < bound) {
            // 2^64 mod bound, computed without 128-bit division.
            uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                x = next();
                m = static_cast<unsigned __int128>(x) * bound;
                low = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        // Span in unsigned space: hi - lo + 1 overflows int64_t (UB)
        // whenever the range covers more than half the domain, and
        // wraps to 0 for the full [INT64_MIN, INT64_MAX] span.
        uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
        if (span == ~uint64_t{0})
            return static_cast<int64_t>(next());
        return static_cast<int64_t>(static_cast<uint64_t>(lo) +
                                    below(span + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + uniform() * (hi - lo);
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4] = {};
};

} // namespace dlp

#endif // DLP_COMMON_RANDOM_HH
