/**
 * @file
 * Reference dense LU decomposition (no pivoting).
 *
 * The paper's lu kernel is the inner rank-1 update element
 *   a'[i][j] = a[i][j] - l[i][k] * u[k][j]
 * (2 instructions, ILP 1). luDecompose() is the full right-looking
 * elimination built from that update; tests verify L*U reconstructs A.
 * Workloads use diagonally-dominant matrices so pivoting is unnecessary,
 * matching the kernel's control-free structure.
 */

#ifndef DLP_REF_LINALG_HH
#define DLP_REF_LINALG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlp::ref {

/** Row-major dense matrix. */
struct Matrix
{
    size_t n = 0;
    std::vector<double> a;

    explicit Matrix(size_t dim) : n(dim), a(dim * dim, 0.0) {}

    double &at(size_t i, size_t j) { return a[i * n + j]; }
    double at(size_t i, size_t j) const { return a[i * n + j]; }
};

/** The kernel's element update. */
inline double
luUpdate(double aij, double lik, double ukj)
{
    return aij - lik * ukj;
}

/**
 * In-place LU without pivoting: on return the strict lower triangle
 * holds L (unit diagonal implied) and the upper triangle holds U.
 */
void luDecompose(Matrix &m);

/** Reconstruct L*U from a decomposed matrix. */
Matrix luReconstruct(const Matrix &lu);

/** Generate a diagonally dominant matrix from a seed. */
Matrix makeDominantMatrix(size_t n, uint64_t seed);

/** max |a-b| over all elements. */
double maxAbsDiff(const Matrix &a, const Matrix &b);

} // namespace dlp::ref

#endif // DLP_REF_LINALG_HH
