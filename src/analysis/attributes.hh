/**
 * @file
 * Kernel attribute extraction: regenerates the rows of the paper's
 * Table 2 (computation, memory and control attributes) directly from the
 * kernel IR.
 */

#ifndef DLP_ANALYSIS_ATTRIBUTES_HH
#define DLP_ANALYSIS_ATTRIBUTES_HH

#include <string>
#include <vector>

#include "kernels/ir.hh"

namespace dlp::analysis {

/** One row of Table 2. */
struct KernelAttributes
{
    std::string name;
    kernels::Domain domain;

    // Computation.
    uint64_t numInsts = 0;      ///< fully unrolled instruction count
    double ilp = 0.0;           ///< numInsts / dataflow-graph height

    // Memory.
    unsigned recordRead = 0;    ///< input record words
    unsigned recordWrite = 0;   ///< output record words
    uint64_t irregularAccesses = 0; ///< cached accesses per iteration (max)
    unsigned numConstants = 0;  ///< named scalar constants
    uint64_t indexedConstants = 0; ///< total lookup-table entries

    // Control.
    std::string loopBounds;     ///< "-", "16", "8+8", or "variable"
};

/** Extract the attributes of one kernel. */
KernelAttributes extractAttributes(const kernels::Kernel &k);

/** Extract attributes of the whole Table 1 suite, in paper order. */
std::vector<KernelAttributes> extractAllAttributes();

} // namespace dlp::analysis

#endif // DLP_ANALYSIS_ATTRIBUTES_HH
