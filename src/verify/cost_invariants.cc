#include "verify/cost_invariants.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <sstream>

namespace dlp::verify {

uint64_t
costBoundTicks(const arch::ExperimentResult &res)
{
    const arch::CostSummary &c = res.cost;
    if (!c.analyzed)
        return 0;

    if (c.mimd) {
        if (c.tiles == 0)
            return 0;
        // Every tile walks floor(records/tiles) record-loop iterations;
        // each serializes one CFG cycle at one instruction per cycle,
        // and all tiles of a row share that row's SMC bank and
        // store-buffer port. The 2*mappings slack absorbs the partial
        // first/last iterations of each chunked run.
        uint64_t perTile = res.records / c.tiles;
        uint64_t slack = 2 * res.mappings;
        uint64_t iters = perTile > slack ? perTile - slack : 0;
        uint64_t best = iters * c.minCycleInsts * ticksPerCycle;
        best = std::max(best, iters * c.gridCols * c.minCycleLoadUnits);
        best = std::max(best, iters * c.gridCols * c.minCycleStoreUnits);
        return res.mappings * c.setupTicks + best;
    }

    if (res.activations == 0)
        return 0;
    // Pacing: each activation transition advances the engine's schedule
    // by at least the steady bound, and each mapping event (one per
    // chunk without instruction revitalization, all of them with it)
    // pays the map time first.
    uint64_t maps = c.perActivationRemap ? 1 : res.mappings;
    return maps * c.mapTicksMin +
           (res.activations - 1) * c.boundTicksPerActivation;
}

namespace {

/**
 * Average-rank vector of a sample (ties share their mean rank).
 * Values within relTol of their tie group's smallest member -- anchored
 * at the group's start, so bands cannot chain transitively across a
 * real gradient -- count as tied.
 */
std::vector<double>
ranks(const std::vector<double> &v, double relTol)
{
    size_t n = v.size();
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), size_t(0));
    std::stable_sort(idx.begin(), idx.end(),
                     [&](size_t a, size_t b) { return v[a] < v[b]; });
    std::vector<double> r(n, 0.0);
    for (size_t i = 0; i < n;) {
        size_t j = i;
        double lo = v[idx[i]];
        while (j + 1 < n &&
               v[idx[j + 1]] <= lo + relTol * std::abs(lo))
            ++j;
        double avg = 0.5 * double(i + j) + 1.0;
        for (size_t k = i; k <= j; ++k)
            r[idx[k]] = avg;
        i = j + 1;
    }
    return r;
}

} // namespace

double
spearman(const std::vector<double> &a, const std::vector<double> &b,
         double relTol)
{
    size_t n = std::min(a.size(), b.size());
    if (n < 2)
        return 1.0;
    std::vector<double> ra = ranks({a.begin(), a.begin() + n}, relTol);
    std::vector<double> rb = ranks({b.begin(), b.begin() + n}, relTol);
    double ma = 0.0, mb = 0.0;
    for (size_t i = 0; i < n; ++i) {
        ma += ra[i];
        mb += rb[i];
    }
    ma /= double(n);
    mb /= double(n);
    double num = 0.0, da = 0.0, db = 0.0;
    for (size_t i = 0; i < n; ++i) {
        num += (ra[i] - ma) * (rb[i] - mb);
        da += (ra[i] - ma) * (ra[i] - ma);
        db += (rb[i] - mb) * (rb[i] - mb);
    }
    if (da == 0.0 || db == 0.0)
        return 1.0; // a constant sample imposes no order to violate
    return num / std::sqrt(da * db);
}

std::vector<CostRankStat>
costRankStats(const std::vector<arch::ExperimentResult> &results)
{
    // kernel -> (predicted, simulated ticks per record), config order.
    std::map<std::string, std::pair<std::vector<double>,
                                    std::vector<double>>> byKernel;
    for (const auto &res : results) {
        if (!res.cost.analyzed || res.records == 0)
            continue;
        auto &[pred, sim] = byKernel[res.kernel];
        pred.push_back(res.cost.predictedTicksPerRecord);
        sim.push_back(double(cyclesToTicks(res.cycles)) /
                      double(res.records));
    }
    // Two configurations within 1% of each other perform the same for
    // ranking purposes; demanding a strict order on noise-level
    // differences would test the model's ability to predict noise.
    constexpr double rankTieTol = 0.01;
    std::vector<CostRankStat> stats;
    for (const auto &[kernel, series] : byKernel)
        stats.push_back({kernel, series.first.size(),
                         spearman(series.first, series.second,
                                  rankTieTol)});
    return stats;
}

std::vector<arch::AuditFinding>
costInvariants(const std::vector<arch::ExperimentResult> &results,
               double minSpearman)
{
    std::vector<arch::AuditFinding> findings;
    for (const auto &res : results) {
        uint64_t bound = costBoundTicks(res);
        uint64_t actual = cyclesToTicks(res.cycles);
        if (bound > actual) {
            std::ostringstream os;
            os << res.kernel << "/" << res.config << ": predicted lower "
               << "bound " << bound << " ticks > simulated " << actual;
            findings.push_back({"cost-lower-bound", os.str()});
        }
    }
    for (const auto &s : costRankStats(results)) {
        if (s.configs < 3)
            continue; // too few configurations to rank meaningfully
        if (s.spearman < minSpearman) {
            std::ostringstream os;
            os << s.kernel << ": Spearman " << s.spearman << " over "
               << s.configs << " configs, need >= " << minSpearman;
            findings.push_back({"cost-rank-order", os.str()});
        }
    }
    return findings;
}

} // namespace dlp::verify
