/**
 * @file
 * Epoch fast-forwarding tests: bit-identity between fully simulated and
 * fast-forwarded runs, epoch/event interleaving under a replay cap,
 * graceful fallback on non-summarizable workloads, the ff conservation
 * law, and the observability surface (epoch spans in the Chrome trace).
 */

#include <gtest/gtest.h>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/json.hh"
#include "epoch/epoch.hh"
#include "epoch/passes.hh"
#include "kernels/workload.hh"
#include "obs/timeline.hh"
#include "store/codec.hh"
#include "verify/audit.hh"

using namespace dlp;

namespace {

/** Run one (kernel, config) experiment end to end. */
arch::ExperimentResult
runOne(const std::string &kernel, const std::string &config,
       uint64_t scale = 0)
{
    auto wl = kernels::makeWorkload(
        kernel, scale ? scale : kernels::defaultScale(kernel), 1);
    arch::TripsProcessor cpu(arch::configByName(config));
    return cpu.run(*wl);
}

/**
 * Canonical serialization with the host-side measurement fields -- the
 * only ones allowed to differ between a simulated and a fast-forwarded
 * run -- scrubbed out.
 */
std::string
scrubbed(arch::ExperimentResult res)
{
    res.hostSeconds = 0.0;
    res.hostEvents = 0;
    res.ffEpochs = 0;
    res.ffIterations = 0;
    res.ffEventsSaved = 0;
    res.eventActivations = 0;
    return json::write(store::resultToJson(res));
}

/** RAII save/restore of the per-epoch replay cap. */
struct IterCapGuard
{
    IterCapGuard() : saved(epoch::maxIterationsPerEpoch()) {}
    ~IterCapGuard() { epoch::setMaxIterationsPerEpoch(saved); }
    uint64_t saved;
};

} // namespace

TEST(Epoch, ResidentPlanFastForwardsBitIdentically)
{
    epoch::FastForwardGuard guard;
    epoch::setFastForwardEnabled(false);
    auto off = runOne("convert", "S");
    epoch::setFastForwardEnabled(true);
    auto on = runOne("convert", "S");

    EXPECT_TRUE(off.verified);
    EXPECT_TRUE(on.verified);
    EXPECT_EQ(off.ffEpochs, 0u);
    EXPECT_EQ(off.ffIterations, 0u);
    EXPECT_GT(on.ffEpochs, 0u);
    EXPECT_GT(on.ffIterations, 0u);
    EXPECT_GT(on.ffEventsSaved, 0u);
    EXPECT_LT(on.hostEvents, off.hostEvents);
    EXPECT_EQ(scrubbed(off), scrubbed(on));
}

TEST(Epoch, GroupUnitsFastForwardMultiSegmentPlans)
{
    // md5 maps a fresh block every activation (no revitalized steady
    // state at activation granularity); only whole-group units make it
    // summarizable. dct cycles through three segments per group.
    epoch::FastForwardGuard guard;
    for (const char *kernel : {"md5", "dct"}) {
        epoch::setFastForwardEnabled(false);
        auto off = runOne(kernel, "S");
        epoch::setFastForwardEnabled(true);
        auto on = runOne(kernel, "S");

        EXPECT_GT(on.ffEpochs, 0u) << kernel;
        EXPECT_GT(on.ffIterations, 0u) << kernel;
        EXPECT_EQ(scrubbed(off), scrubbed(on)) << kernel;
    }
}

TEST(Epoch, CappedEpochsInterleaveWithEventSimulation)
{
    epoch::FastForwardGuard guard;
    IterCapGuard cap;

    epoch::setFastForwardEnabled(false);
    auto off = runOne("convert", "S");

    // A small cap forces the engine to exit each epoch after a few
    // replayed units and re-enter event-level simulation, exercising
    // the epoch exit path (calendar shifts, watermark restores) many
    // times in one run.
    epoch::setFastForwardEnabled(true);
    epoch::setMaxIterationsPerEpoch(3);
    auto capped = runOne("convert", "S");

    EXPECT_GT(capped.ffEpochs, 1u);
    EXPECT_EQ(scrubbed(off), scrubbed(capped));
}

TEST(Epoch, NonSummarizableWorkloadFallsBackCleanly)
{
    // fragment-simple's texture fetches go through the cached hierarchy
    // (data-dependent timing), so its activation signature never
    // repeats and no epoch may be entered -- the run must still verify.
    epoch::FastForwardGuard guard;
    epoch::setFastForwardEnabled(true);
    auto res = runOne("fragment-simple", "S", 256);
    EXPECT_TRUE(res.verified);
    EXPECT_EQ(res.ffIterations, 0u);
    EXPECT_EQ(res.eventActivations, res.activations);
}

TEST(Epoch, ConservationLawHoldsAndAuditIsClean)
{
    epoch::FastForwardGuard guard;
    epoch::setFastForwardEnabled(true);
    for (const char *kernel : {"convert", "md5", "highpassfilter"}) {
        auto res = runOne(kernel, "S");
        EXPECT_EQ(res.eventActivations + res.ffIterations,
                  res.activations)
            << kernel;
        auto findings = verify::auditResult(res);
        EXPECT_TRUE(findings.empty())
            << kernel << ": " << findings.front().detail;
    }
}

TEST(Epoch, PassListIsStable)
{
    // The ordered pass names are part of the documented surface
    // (DESIGN.md and bail-out diagnostics reference them).
    const auto &names = epoch::EpochLower::passNames();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_STREQ(names[0], "ClassifyOps");
    EXPECT_STREQ(names[1], "ScheduleStability");
    EXPECT_STREQ(names[2], "StatDeltaStability");
    EXPECT_STREQ(names[3], "ResourcePeriodicity");
    EXPECT_STREQ(names[4], "CounterLaws");
    EXPECT_STREQ(names[5], "BuildReplay");
}

TEST(Epoch, EpochSpansAppearInChromeTrace)
{
    epoch::FastForwardGuard guard;
    epoch::setFastForwardEnabled(true);
    obs::clearTimeline();
    obs::enableAllCats();
    obs::setRecording(true);
    auto res = runOne("convert", "S");
    obs::setRecording(false);
    ASSERT_GT(res.ffEpochs, 0u);

    std::string trace = obs::exportChromeJson();
    obs::clearTimeline();
    EXPECT_NE(trace.find("\"epoch\""), std::string::npos);
    EXPECT_NE(trace.find("\"Epoch\""), std::string::npos);
}
