#include "mem/smc.hh"

#include "common/bitutils.hh"

namespace dlp::mem {

SmcSubsystem::SmcSubsystem(const MemParams &params)
    : storage(params.rows * params.smcBankWords(), 0),
      bankLatency(cyclesToTicks(params.smcLatency)),
      wordsPerTick(params.smcWordsPerCycle / ticksPerCycle
                       ? params.smcWordsPerCycle / ticksPerCycle : 1),
      bankPorts(params.rows, sim::Resource(1)),
      storeBufPorts(params.rows, sim::Resource(1)),
      chanLanes(params.rows * 2, sim::Resource(1))
{
    panic_if(params.rows == 0, "SMC needs at least one row bank");
}

Tick
SmcSubsystem::read(unsigned row, Addr wordAddr, unsigned nwords, Tick start,
                   Word *out, unsigned stride)
{
    panic_if(nwords == 0, "zero-length SMC read");
    panic_if(stride == 0, "zero-stride SMC read");
    panic_if(wordAddr + Addr(nwords - 1) * stride >= storage.size(),
             "SMC read past capacity (%llu + %u*%u > %llu)",
             (unsigned long long)wordAddr, nwords, stride,
             (unsigned long long)storage.size());

    if (out) {
        for (unsigned i = 0; i < nwords; ++i)
            out[i] = storage[wordAddr + Addr(i) * stride];
    }

    ++nReads;
    nWordsRead += nwords;

    // The bank reads whole SRAM lines (4 words): a scalar access
    // occupies the port for a full line slot, while a wide (LMW) read
    // amortizes the port across its words -- the reason the LMW
    // mechanism matters (Section 4.2). Strided vector fetches are
    // conflict-free across the interleaved sub-banks, so they cost the
    // same as contiguous ones (classic vector-memory design).
    constexpr unsigned lineWords = 4;
    uint64_t lines = divCeil(nwords, lineWords);
    uint64_t units = divCeil(lines * lineWords, wordsPerTick);
    Tick grant = bankPort(row).acquireMany(start, units);
    return grant + units + bankLatency;
}

Tick
SmcSubsystem::write(unsigned row, Addr wordAddr, Word value, Tick start)
{
    panic_if(wordAddr >= storage.size(),
             "SMC write past capacity (%llu >= %llu)",
             (unsigned long long)wordAddr,
             (unsigned long long)storage.size());

    storage[wordAddr] = value;
    ++nWrites;

    // The coalescing store buffer accepts wordsPerTick words per tick;
    // acceptance is completion from the producer's point of view.
    panic_if(row >= storeBufPorts.size(), "bad store-buffer row %u", row);
    Tick grant = storeBufPorts[row].acquireMany(start, 1);
    // Amortized drain cost: the buffer coalesces, so draining keeps up
    // with acceptance at the same width; no extra charge here.
    return grant + 1;
}

Tick
SmcSubsystem::dmaTransfer(unsigned row, unsigned nwords, Tick start,
                          MainMemory &mainMem)
{
    panic_if(nwords == 0, "zero-length DMA transfer");
    // The DMA engine streams through both the bank port and the off-chip
    // interface; the slower of the two paces the transfer.
    uint64_t units = divCeil(nwords, wordsPerTick);
    Tick bankDone = bankPort(row).acquireMany(start, units) + units;
    Tick memDone = mainMem.access(start, nwords);
    return std::max(bankDone, memDone);
}

void
SmcSubsystem::resetTiming()
{
    for (auto &p : bankPorts)
        p.reset();
    for (auto &p : storeBufPorts)
        p.reset();
    for (auto &p : chanLanes)
        p.reset();
    nReads = 0;
    nWrites = 0;
    nWordsRead = 0;
}

} // namespace dlp::mem
