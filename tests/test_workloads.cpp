/**
 * @file
 * Workload-generator tests: batch shapes, staged workloads (FFT stages,
 * LU elimination steps), irregular-memory images and self-verification
 * against the golden models.
 */

#include <gtest/gtest.h>

#include "kernels/gfx_layout.hh"
#include "kernels/interp.hh"
#include "kernels/workload.hh"

using namespace dlp;
using namespace dlp::kernels;

TEST(Workloads, SingleBatchShape)
{
    auto wl = makeWorkload("convert", 32, 1);
    std::vector<Word> in;
    uint64_t n;
    ASSERT_TRUE(wl->nextBatch(in, n));
    EXPECT_EQ(n, 32u);
    EXPECT_EQ(in.size(), 32u * 3);
    EXPECT_FALSE(wl->nextBatch(in, n)); // exhausted
}

TEST(Workloads, FftHasLog2NStages)
{
    auto wl = makeWorkload("fft", 64, 1);
    std::vector<Word> in;
    uint64_t n;
    int stages = 0;
    while (wl->nextBatch(in, n)) {
        EXPECT_EQ(n, 32u); // n/2 butterflies per stage
        EXPECT_EQ(in.size(), n * 6);
        // Feed identity outputs so staging can proceed: run through the
        // interpreter for real results.
        std::vector<Word> out;
        interpretBatch(wl->kernel(), in, out, n);
        wl->consumeOutput(out);
        ++stages;
    }
    EXPECT_EQ(stages, 6); // log2(64)
    std::string err;
    EXPECT_TRUE(wl->verify(err)) << err;
}

TEST(Workloads, LuStagesShrink)
{
    auto wl = makeWorkload("lu", 8, 1);
    std::vector<Word> in;
    uint64_t n;
    std::vector<uint64_t> sizes;
    while (wl->nextBatch(in, n)) {
        sizes.push_back(n);
        std::vector<Word> out;
        interpretBatch(wl->kernel(), in, out, n);
        wl->consumeOutput(out);
    }
    // Steps k = 0..6 update (7-k)^2 elements.
    ASSERT_EQ(sizes.size(), 7u);
    EXPECT_EQ(sizes.front(), 49u);
    EXPECT_EQ(sizes.back(), 1u);
    std::string err;
    EXPECT_TRUE(wl->verify(err)) << err;
}

TEST(Workloads, VerifyCatchesCorruption)
{
    auto wl = makeWorkload("md5", 8, 1);
    std::vector<Word> in;
    uint64_t n;
    ASSERT_TRUE(wl->nextBatch(in, n));
    std::vector<Word> out;
    interpretBatch(wl->kernel(), in, out, n);
    out[3] ^= 1; // flip one bit of one digest
    wl->consumeOutput(out);
    std::string err;
    EXPECT_FALSE(wl->verify(err));
    EXPECT_NE(err.find("md5"), std::string::npos);
}

TEST(Workloads, FragmentTextureImageInstalled)
{
    auto wl = makeWorkload("fragment-simple", 8, 1);
    EXPECT_TRUE(wl->hasIrregular());
    // The image must cover the texture region densely.
    auto mem = wl->irregularMemory();
    uint64_t nonZero = 0;
    for (int i = 0; i < 64; ++i)
        nonZero += mem.read(gfx::textureBase + i * wordBytes) != 0;
    EXPECT_GT(nonZero, 32u);
}

TEST(Workloads, PureArithmeticKernelsHaveNoImage)
{
    EXPECT_FALSE(makeWorkload("convert", 4, 1)->hasIrregular());
    EXPECT_FALSE(makeWorkload("blowfish", 4, 1)->hasIrregular());
}

TEST(Workloads, TotalRecordsAccounting)
{
    EXPECT_EQ(makeWorkload("convert", 100, 1)->totalRecords(), 100u);
    // fft: (n/2) log2(n) butterflies.
    EXPECT_EQ(makeWorkload("fft", 64, 1)->totalRecords(), 32u * 6);
    // lu: sum of squares.
    EXPECT_EQ(makeWorkload("lu", 4, 1)->totalRecords(), 9u + 4 + 1);
}

TEST(Workloads, SeedsChangeData)
{
    auto a = makeWorkload("rijndael", 4, 1);
    auto b = makeWorkload("rijndael", 4, 2);
    std::vector<Word> ia, ib;
    uint64_t n;
    a->nextBatch(ia, n);
    b->nextBatch(ib, n);
    EXPECT_NE(ia, ib);
}

TEST(Workloads, UnknownKernelIsFatal)
{
    EXPECT_THROW(makeWorkload("nonesuch", 4, 1), FatalError);
}
