/**
 * @file
 * The experiment grid: run every benchmark on every Table 5 machine
 * configuration and derive the paper's headline numbers (Table 4
 * baseline throughput, Figure 5 speedups, the Flexible harmonic means,
 * the per-application best configuration).
 *
 * anisotropic-filter is excluded from the performance grid, exactly as
 * in the paper ("we exclude it from all our performance tables and
 * figures", Section 5.2 footnote); it still appears in Table 2.
 */

#ifndef DLP_ANALYSIS_EXPERIMENTS_HH
#define DLP_ANALYSIS_EXPERIMENTS_HH

#include <map>
#include <string>
#include <vector>

#include "arch/processor.hh"

namespace dlp::analysis {

/** Kernel names of the performance suite (Table 4 / Figure 5 order). */
const std::vector<std::string> &perfKernels();

/** Kernel names grouped the way Figure 5 groups them. */
const std::vector<std::string> &figure5Order();

/** Results indexed by [kernel][config]. */
using Grid = std::map<std::string, std::map<std::string, arch::ExperimentResult>>;

/**
 * Run the full grid.
 *
 * The experiments are independent; with more than one job they run
 * concurrently on the sweep driver's thread pool and the returned Grid
 * is bit-identical to a serial run (each job gets an isolated
 * workload + processor and a fixed output slot).
 *
 * @param scaleDiv divide each kernel's default problem scale by this
 *                 (tests use larger divisors for speed; benches use 1)
 * @param seed     dataset seed
 * @param jobs     worker threads; 0 defers to the DLP_JOBS environment
 *                 variable (default 1 = serial on the calling thread)
 */
Grid runGrid(uint64_t scaleDiv = 1, uint64_t seed = 1234,
             unsigned jobs = 0);

/** The parallel grid path; jobs must be >= 1 (1 degenerates to serial). */
Grid runGridParallel(uint64_t scaleDiv, uint64_t seed, unsigned jobs);

/** Run one kernel on one configuration at default/scaled size. */
arch::ExperimentResult runExperiment(const std::string &kernel,
                                     const std::string &config,
                                     uint64_t scaleDiv = 1,
                                     uint64_t seed = 1234);

/** Speedup of config over baseline for one kernel (cycles ratio). */
double speedup(const Grid &grid, const std::string &kernel,
               const std::string &config);

/** The config with the fewest cycles for a kernel (Figure 5 grouping). */
std::string bestConfig(const Grid &grid, const std::string &kernel);

/**
 * Harmonic-mean speedup over baseline of a fixed configuration across
 * the performance suite; pass "flexible" for the per-application best
 * (the paper's Flexible bar).
 */
double meanSpeedup(const Grid &grid, const std::string &config);

} // namespace dlp::analysis

#endif // DLP_ANALYSIS_EXPERIMENTS_HH
