/**
 * @file
 * Fork-based process sharding, the multi-process sibling of JobPool.
 *
 * JobPool spreads independent work across threads inside one address
 * space; ProcPool spreads it across forked child processes, which is
 * what a server wants when each work item is a whole simulation: the
 * children share nothing, a crash in one item cannot take down the
 * parent, and the parent stays single-threaded (so it remains safe to
 * fork again later).
 *
 * Work items are sharded round-robin across the workers. Each child
 * runs its shard serially and returns one length-prefix framed payload
 * per item over its pipe; the parent polls all pipes and invokes the
 * collect callback as payloads arrive — in completion order, not item
 * order, so streaming consumers see results early.
 *
 * The fork boundary is an exception barrier: a child never lets an
 * exception unwind into the stack it inherited from the parent (which
 * would re-enter the parent's event loop or test harness as a duplicate
 * process). A produce() failure travels back as an in-band error frame
 * instead, and every other escape path in the child ends in _exit.
 */

#ifndef DLP_DRIVER_PROC_POOL_HH
#define DLP_DRIVER_PROC_POOL_HH

#include <cstddef>
#include <functional>
#include <string>

namespace dlp::driver {

/**
 * Fork workers (at most one per item), run produce(item) in a child
 * for every item, and call collect(item, payload) in the parent as
 * payloads arrive. Serial (no fork) when workers <= 1. Fatal if a
 * child dies without delivering its shard.
 *
 * A produce() that throws delivers an error for that item instead of a
 * payload: onError(item, message) is called in the parent (in both
 * serial and forked mode), and the remaining items still run. Without
 * an onError callback the batch finishes, the children are reaped, and
 * then the first failure raises fatal().
 *
 * childInit, when set, runs once in every forked child immediately
 * after fork, before any produce() — the hook for closing inherited
 * descriptors the shard must not keep alive (listening sockets, client
 * connections). It is not called in serial mode.
 *
 * The parent must be single-threaded at the call; produce must not
 * touch parent state (it runs in a copy-on-write child).
 */
void runForked(size_t items, unsigned workers,
               const std::function<std::string(size_t)> &produce,
               const std::function<void(size_t, std::string)> &collect,
               const std::function<void(size_t, const std::string &)>
                   &onError = {},
               const std::function<void()> &childInit = {});

} // namespace dlp::driver

#endif // DLP_DRIVER_PROC_POOL_HH
