#include "common/stats.hh"

#include <iomanip>

namespace dlp {

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : stats) {
        os << std::left << std::setw(48) << (name + "." + kv.first)
           << std::right << std::setw(16) << kv.second.get() << "\n";
    }
}

} // namespace dlp
