/**
 * @file
 * Shared memory-layout conventions for the graphics kernels: where each
 * kernel's texture lives in the cached (irregular) address space and how
 * big it is. The workload generators must populate memory with exactly
 * this layout.
 */

#ifndef DLP_KERNELS_GFX_LAYOUT_HH
#define DLP_KERNELS_GFX_LAYOUT_HH

#include "common/types.hh"

namespace dlp::kernels::gfx {

/// All textures live above this byte address.
constexpr Addr textureBase = 0x10000000ull;

/// fragment-simple: one 256x256 2-D texture.
constexpr unsigned fragTexLog2 = 8;
constexpr unsigned fragTexSize = 1u << fragTexLog2;

/// fragment-reflection: a cube map with 128x128 faces.
constexpr unsigned cubeFaceLog2 = 7;
constexpr unsigned cubeFaceSize = 1u << cubeFaceLog2;

/// anisotropic-filter: one 512x512 2-D texture.
constexpr unsigned anisoTexLog2 = 9;
constexpr unsigned anisoTexSize = 1u << anisoTexLog2;

} // namespace dlp::kernels::gfx

#endif // DLP_KERNELS_GFX_LAYOUT_HH
