# Empty dependencies file for dlp_kernels.
# This may be replaced when dependencies are built.
