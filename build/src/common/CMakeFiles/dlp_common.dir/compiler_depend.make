# Empty compiler generated dependencies file for dlp_common.
# This may be replaced when dependencies are built.
