/**
 * @file
 * Tests for the sweepd service layer: the newline-delimited JSON wire
 * protocol, an in-process server on a Unix-domain socket (fork-free
 * worker mode), in-flight deduplication, store-backed warm serving,
 * in-band error handling and clean shutdown.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/export.hh"
#include "driver/proc_pool.hh"
#include "driver/sweep.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "store/codec.hh"

using namespace dlp;

namespace {

std::string
freshDir(const std::string &tag)
{
    std::string tmpl = ::testing::TempDir() + "dlp_serve_" + tag + "_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    return made ? made : tmpl;
}

json::Value
readJson(int fd, serve::LineReader &reader)
{
    std::string line;
    EXPECT_TRUE(serve::readMessage(fd, reader, line));
    return json::parse(line);
}

/**
 * The exporter's view of a result with the "host" object neutralized:
 * host is wall-clock performance of whichever process computed the
 * cell, the one field that legitimately differs between a served
 * result and a fresh local run.
 */
std::string
exportSansHost(const arch::ExperimentResult &r)
{
    json::Value doc = analysis::toJson(r);
    doc.set("host", json::Value());
    return json::write(doc);
}

} // namespace

TEST(Protocol, LineReaderSplitsArbitraryChunks)
{
    serve::LineReader r;
    std::string line;
    EXPECT_FALSE(r.next(line));
    r.feed("ab", 2);
    EXPECT_FALSE(r.next(line));  // incomplete line stays buffered
    r.feed("c\nsecond\nthi", 12);
    EXPECT_TRUE(r.next(line));
    EXPECT_EQ(line, "abc");
    EXPECT_TRUE(r.next(line));
    EXPECT_EQ(line, "second");
    EXPECT_FALSE(r.next(line));
    r.feed("rd\n", 3);
    EXPECT_TRUE(r.next(line));
    EXPECT_EQ(line, "third");
}

TEST(Protocol, SweepRequestRoundTrip)
{
    driver::SweepPlan plan;
    plan.add("fft", "S", 8, 7);
    plan.add("lu", "M-D", 2, 9);
    plan.tasks[1].scale = 64;

    json::Value req = serve::sweepRequest("r1", plan);
    EXPECT_EQ(req.at("op").asString(), "sweep");
    driver::SweepPlan back = serve::planFromRequest(req);
    ASSERT_EQ(back.size(), plan.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(back.tasks[i].kernel, plan.tasks[i].kernel);
        EXPECT_EQ(back.tasks[i].config, plan.tasks[i].config);
        EXPECT_EQ(back.tasks[i].scaleDiv, plan.tasks[i].scaleDiv);
        EXPECT_EQ(back.tasks[i].seed, plan.tasks[i].seed);
        EXPECT_EQ(back.tasks[i].scale, plan.tasks[i].scale);
    }
}

TEST(ProcPool, ShardsAndCollectsEveryItem)
{
    // Payloads come back keyed by item regardless of worker count or
    // completion order.
    for (unsigned workers : {1u, 3u}) {
        std::vector<std::string> got(10);
        driver::runForked(
            10, workers,
            [](size_t i) { return "payload-" + std::to_string(i); },
            [&](size_t i, std::string payload) {
                got[i] = std::move(payload);
            });
        for (size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], "payload-" + std::to_string(i));
    }
}

TEST(ProcPool, ProduceFailureReportsInBandAndBatchCompletes)
{
    // A produce() that throws must not unwind the forked child's
    // inherited stack (the original bug: the child re-entered the
    // caller's loop as a duplicate process while the parent waited on
    // the pipe forever). The failure comes back through onError and
    // every other item still delivers — identically in serial mode.
    auto produce = [](size_t i) -> std::string {
        if (i == 2 || i == 5)
            throw std::runtime_error("boom-" + std::to_string(i));
        return "ok-" + std::to_string(i);
    };
    for (unsigned workers : {1u, 3u}) {
        std::vector<std::string> got(7);
        std::vector<std::string> errs(7);
        driver::runForked(
            7, workers, produce,
            [&](size_t i, std::string payload) {
                got[i] = std::move(payload);
            },
            [&](size_t i, const std::string &message) {
                errs[i] = message;
            });
        for (size_t i = 0; i < 7; ++i) {
            if (i == 2 || i == 5) {
                EXPECT_EQ(got[i], "");
                EXPECT_NE(errs[i].find("boom-" + std::to_string(i)),
                          std::string::npos);
            } else {
                EXPECT_EQ(got[i], "ok-" + std::to_string(i));
                EXPECT_EQ(errs[i], "");
            }
        }
    }
}

TEST(ProcPool, ProduceFailureWithoutHandlerIsFatalAfterReaping)
{
    // No onError: the batch still drains (no deadlock, no leaked
    // children), then the first failure surfaces as FatalError.
    for (unsigned workers : {1u, 3u}) {
        size_t collected = 0;
        auto run = [&] {
            driver::runForked(
                4, workers,
                [](size_t i) -> std::string {
                    if (i == 1)
                        throw std::runtime_error("lone failure");
                    return "ok";
                },
                [&](size_t, std::string) { ++collected; });
        };
        if (workers <= 1) {
            // Serial mode without a handler propagates directly.
            EXPECT_THROW(run(), std::runtime_error);
        } else {
            EXPECT_THROW(run(), FatalError);
            EXPECT_EQ(collected, 3u);
        }
    }
}

namespace {

/** Does nothing: exists so SIGALRM interrupts syscalls with EINTR. */
void onAlarmNoop(int) {}

/**
 * Arm a fast repeating real-time timer with a no-SA_RESTART handler,
 * so every blocking write(2) in this process keeps getting interrupted.
 */
void
armEintrStorm()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onAlarmNoop;
    sigemptyset(&sa.sa_mask);
    // Deliberately no SA_RESTART: the interrupted write must return
    // EINTR (or a short count) instead of resuming transparently.
    ASSERT_EQ(::sigaction(SIGALRM, &sa, nullptr), 0);
    struct itimerval it;
    it.it_interval.tv_sec = 0;
    it.it_interval.tv_usec = 500;
    it.it_value = it.it_interval;
    ASSERT_EQ(::setitimer(ITIMER_REAL, &it, nullptr), 0);
}

} // namespace

TEST(ProcPool, WriteAllSurvivesSignalInterruptionMidFrame)
{
    // Regression: writeAll treated write() == -1 with errno == EINTR as
    // a fatal short write, so a signal landing while a worker streamed
    // its result frame dropped the frame and failed the cell. Each
    // child arms a 500us repeating SIGALRM (handler installed without
    // SA_RESTART) and then returns payloads much larger than the pipe
    // capacity, so the blocking frame writes are interrupted over and
    // over; every byte must still arrive.
    constexpr size_t items = 3;
    constexpr size_t bytes = 2u << 20;
    auto expected = [](size_t item) {
        std::string payload(bytes, '\0');
        for (size_t j = 0; j < payload.size(); ++j)
            payload[j] = char('a' + (item + j) % 26);
        return payload;
    };
    std::vector<std::string> got(items);
    driver::runForked(
        items, 2,
        [&](size_t i) {
            armEintrStorm();  // runs in the forked child
            return expected(i);
        },
        [&](size_t i, std::string payload) { got[i] = std::move(payload); });
    for (size_t i = 0; i < items; ++i)
        EXPECT_TRUE(got[i] == expected(i)) << "frame " << i << " corrupted";
}

TEST(ProcPool, ForkedChildrenIgnoreSigpipeParentUnchanged)
{
    // Regression: workers never ignored SIGPIPE, so a parent dying
    // mid-batch killed the children via the default disposition instead
    // of letting writeFrame observe EPIPE and exit cleanly. The child
    // prologue must install SIG_IGN — visible from produce() — while
    // the parent's own disposition stays untouched.
    auto query = []() -> std::string {
        struct sigaction sa;
        if (::sigaction(SIGPIPE, nullptr, &sa) != 0)
            return "query-failed";
        return sa.sa_handler == SIG_IGN ? "ignored" : "default";
    };
    ASSERT_EQ(query(), "default");  // precondition in the parent
    std::vector<std::string> got(4);
    driver::runForked(
        4, 2, [&](size_t) { return query(); },
        [&](size_t i, std::string payload) { got[i] = std::move(payload); });
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], "ignored") << "child for item " << i;
    // The prologue ran only in the children.
    EXPECT_EQ(query(), "default");
}

TEST(Server, SweepStatsDedupShutdown)
{
    std::string dir = freshDir("srv");
    serve::ServerOptions opts;
    opts.socketPath = dir + "/d.sock";
    opts.workers = 1;  // inline compute: safe on a thread (no fork)
    opts.storeDir = dir + "/store";
    serve::Server server(std::move(opts));
    std::thread loop([&] { server.run(); });

    int fd = serve::connectUnix(server.socketPath());
    serve::LineReader reader;

    ASSERT_TRUE(serve::writeLine(fd, serve::simpleRequest("p", "ping")));
    EXPECT_EQ(readJson(fd, reader).at("type").asString(), "pong");

    // A batch with an exact duplicate cell: four tasks, three unique.
    driver::SweepPlan plan;
    plan.add("fft", "S", 8, 7);
    plan.add("fft", "M-D", 8, 7);
    plan.add("fft", "S", 8, 7);  // duplicate of task 0
    plan.add("lu", "S", 8, 7);
    ASSERT_TRUE(serve::writeLine(fd, serve::sweepRequest("b1", plan)));

    std::vector<arch::ExperimentResult> results(plan.size());
    std::vector<bool> have(plan.size(), false);
    json::Value counters;
    for (bool done = false; !done;) {
        json::Value msg = readJson(fd, reader);
        ASSERT_EQ(msg.at("id").asString(), "b1");
        std::string type = msg.at("type").asString();
        ASSERT_NE(type, "error");
        if (type == "done") {
            counters = msg.at("counters");
            done = true;
            continue;
        }
        ASSERT_EQ(type, "result");
        size_t index = size_t(msg.at("index").asNumber());
        ASSERT_LT(index, plan.size());
        EXPECT_FALSE(have[index]);
        results[index] = store::resultFromJson(msg.at("result"));
        have[index] = true;
    }
    for (bool h : have)
        EXPECT_TRUE(h);
    EXPECT_EQ(uint64_t(counters.at("cells").asNumber()), 4u);
    EXPECT_EQ(uint64_t(counters.at("uniqueCells").asNumber()), 3u);
    EXPECT_EQ(uint64_t(counters.at("dedupedInFlight").asNumber()), 1u);
    EXPECT_EQ(uint64_t(counters.at("computed").asNumber()), 3u);
    EXPECT_EQ(uint64_t(counters.at("storeHits").asNumber()), 0u);

    // The duplicate indices received the identical result (host and
    // all — one computation, fanned out), and every result matches a
    // direct local computation field for field modulo host wall-clock.
    EXPECT_EQ(json::write(analysis::toJson(results[0])),
              json::write(analysis::toJson(results[2])));
    for (size_t i = 0; i < plan.size(); ++i) {
        arch::ExperimentResult local = driver::runTask(plan.tasks[i]);
        EXPECT_EQ(exportSansHost(local), exportSansHost(results[i]));
    }

    // Rerunning the batch is warm now: all unique cells hit the store.
    ASSERT_TRUE(serve::writeLine(fd, serve::sweepRequest("b2", plan)));
    size_t warmResults = 0;
    for (bool done = false; !done;) {
        json::Value msg = readJson(fd, reader);
        std::string type = msg.at("type").asString();
        if (type == "done") {
            counters = msg.at("counters");
            done = true;
        } else {
            ASSERT_EQ(type, "result");
            EXPECT_TRUE(msg.at("cached").asBool());
            ++warmResults;
        }
    }
    EXPECT_EQ(warmResults, plan.size());
    EXPECT_EQ(uint64_t(counters.at("computed").asNumber()), 3u);
    EXPECT_EQ(uint64_t(counters.at("storeHits").asNumber()), 3u);

    // Malformed requests answer in-band and leave the session usable.
    ASSERT_TRUE(serve::writeLine(fd, serve::simpleRequest("x", "bogus")));
    EXPECT_EQ(readJson(fd, reader).at("type").asString(), "error");
    json::Value badSweep = serve::simpleRequest("y", "sweep");  // no tasks
    ASSERT_TRUE(serve::writeLine(fd, badSweep));
    EXPECT_EQ(readJson(fd, reader).at("type").asString(), "error");

    // Stats reflects the whole session.
    ASSERT_TRUE(serve::writeLine(fd, serve::simpleRequest("s", "stats")));
    json::Value stats = readJson(fd, reader);
    EXPECT_EQ(stats.at("type").asString(), "stats");
    EXPECT_EQ(uint64_t(stats.at("counters").at("requests").asNumber()), 2u);
    EXPECT_EQ(uint64_t(stats.at("counters").at("errors").asNumber()), 2u);
    EXPECT_EQ(uint64_t(stats.at("store").at("inserts").asNumber()), 3u);

    ASSERT_TRUE(serve::writeLine(fd, serve::simpleRequest("q", "shutdown")));
    EXPECT_EQ(readJson(fd, reader).at("type").asString(), "bye");
    loop.join();
    ::close(fd);

    const serve::ServerCounters &c = server.counters();
    EXPECT_EQ(c.connections, 1u);
    EXPECT_EQ(c.cells, 8u);
    EXPECT_EQ(c.dedupedInFlight, 2u);
    EXPECT_EQ(c.computed, 3u);
    EXPECT_EQ(c.storeHits, 3u);
}

TEST(Server, ForkedWorkersServeABatch)
{
    // The real deployment shape: a single-threaded daemon process
    // (forked from the test) sharding cold cells across its own forked
    // workers. The daemon must answer the batch, match a direct local
    // computation, and exit cleanly on shutdown.
    std::string dir = freshDir("fork");
    serve::ServerOptions opts;
    opts.socketPath = dir + "/d.sock";
    opts.workers = 3;
    pid_t daemon = ::fork();
    ASSERT_NE(daemon, -1);
    if (daemon == 0) {
        int code = 0;
        try {
            serve::Server server(opts);
            server.run();
        } catch (...) {
            code = 1;
        }
        ::_exit(code);
    }

    int fd = -1;
    for (int tries = 0; fd < 0 && tries < 500; ++tries) {
        try {
            fd = serve::connectUnix(opts.socketPath);
        } catch (const FatalError &) {
            ::usleep(10 * 1000);  // daemon not listening yet
        }
    }
    ASSERT_GE(fd, 0);

    driver::SweepPlan plan;
    plan.add("fft", "S", 8, 7);
    plan.add("lu", "S", 8, 7);
    plan.add("fft", "S", 8, 7);  // duplicate of task 0
    serve::LineReader reader;
    ASSERT_TRUE(serve::writeLine(fd, serve::sweepRequest("f1", plan)));

    std::vector<arch::ExperimentResult> results(plan.size());
    std::vector<bool> have(plan.size(), false);
    json::Value counters;
    for (bool done = false; !done;) {
        json::Value msg = readJson(fd, reader);
        std::string type = msg.at("type").asString();
        ASSERT_NE(type, "error");
        if (type == "done") {
            counters = msg.at("counters");
            done = true;
            continue;
        }
        ASSERT_EQ(type, "result");
        size_t index = size_t(msg.at("index").asUInt64());
        ASSERT_LT(index, plan.size());
        EXPECT_FALSE(have[index]);
        results[index] = store::resultFromJson(msg.at("result"));
        have[index] = true;
    }
    for (bool h : have)
        EXPECT_TRUE(h);
    EXPECT_EQ(counters.at("computed").asUInt64(), 2u);
    EXPECT_EQ(counters.at("dedupedInFlight").asUInt64(), 1u);
    EXPECT_EQ(counters.at("cellErrors").asUInt64(), 0u);
    for (size_t i = 0; i < plan.size(); ++i) {
        arch::ExperimentResult local = driver::runTask(plan.tasks[i]);
        EXPECT_EQ(exportSansHost(local), exportSansHost(results[i]));
    }

    ASSERT_TRUE(serve::writeLine(fd, serve::simpleRequest("q", "shutdown")));
    EXPECT_EQ(readJson(fd, reader).at("type").asString(), "bye");
    ::close(fd);
    int status = -1;
    ASSERT_EQ(::waitpid(daemon, &status, 0), daemon);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

TEST(Server, RefusesToHijackALiveDaemonSocket)
{
    std::string dir = freshDir("hijack");
    std::string path = dir + "/d.sock";

    // A stale socket file (bound once, no listener left) is reclaimed.
    {
        int s = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(s, 0);
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ASSERT_EQ(::bind(s, reinterpret_cast<struct sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(s);  // file stays behind, nobody listening
    }
    serve::ServerOptions opts;
    opts.socketPath = path;
    serve::Server first(opts);

    // A second sweepd on the same path must fail loudly, and the
    // first one must keep its address: the socket file still answers.
    EXPECT_THROW(serve::Server second(opts), FatalError);
    int fd = serve::connectUnix(path);
    EXPECT_GE(fd, 0);
    ::close(fd);
}

TEST(Server, RequestStopEndsIdleRunAndUnlinksSocket)
{
    // requestStop() is what sweepd's SIGINT/SIGTERM handlers call: the
    // loop must notice the flag without any client traffic (it polls
    // with a finite timeout rather than blocking forever) and the
    // destructor must remove the socket file — a stopped daemon leaves
    // nothing behind.
    std::string dir = freshDir("stop");
    serve::ServerOptions opts;
    opts.socketPath = dir + "/d.sock";
    opts.workers = 1;
    auto server = std::make_unique<serve::Server>(std::move(opts));
    std::string path = server->socketPath();
    EXPECT_EQ(::access(path.c_str(), F_OK), 0);

    std::thread loop([&] { server->run(); });
    ::usleep(50 * 1000);  // let the loop block in poll first
    server->requestStop();  // exactly what the signal handler does
    loop.join();  // bounded by the loop's 500ms poll timeout

    server.reset();
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
}
