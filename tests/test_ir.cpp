/**
 * @file
 * Kernel-IR and interpreter unit tests: builder validation, structured
 * loops, carries, variable trip counts, wide/strided loads and the
 * overhead/immediate annotations.
 */

#include <gtest/gtest.h>

#include "kernels/interp.hh"
#include "kernels/ir.hh"

using namespace dlp;
using namespace dlp::kernels;
using isa::Op;

namespace {

std::vector<Word>
runOnce(const Kernel &k, std::vector<Word> in)
{
    std::vector<Word> out(k.outWords, 0);
    in.resize(k.inWords, 0);
    interpret(k, 0, in.data(), out.data());
    return out;
}

} // namespace

TEST(KernelIr, StraightLineArithmetic)
{
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(2, 1);
    b.outWord(0, b.add(b.inWord(0), b.inWord(1)));
    Kernel k = b.build();
    EXPECT_EQ(runOnce(k, {3, 4})[0], 7u);
}

TEST(KernelIr, ImmediateSecondOperand)
{
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(1, 1);
    b.outWord(0, b.opImm(Op::Shl, b.inWord(0), 4));
    Kernel k = b.build();
    EXPECT_EQ(runOnce(k, {3})[0], 48u);
}

TEST(KernelIr, StaticLoopWithCarry)
{
    // sum = 0; for i in 0..9: sum += in[0]  => 10 * in[0].
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(1, 1);
    Value x = b.inWord(0);
    b.beginLoop(10);
    Value acc = b.carry(b.imm(0));
    b.setCarryNext(acc, b.add(acc, x));
    b.endLoop();
    b.outWord(0, b.exitValue(acc));
    Kernel k = b.build();
    EXPECT_EQ(runOnce(k, {7})[0], 70u);
}

TEST(KernelIr, NestedLoops)
{
    // for i in 0..2 { for j in 0..3 { acc += 1 } } => 12.
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(1, 1);
    b.beginLoop(3);
    Value outer = b.carry(b.imm(0));
    b.beginLoop(4);
    Value inner = b.carry(outer);
    b.setCarryNext(inner, b.opImm(Op::Add, inner, 1));
    b.endLoop();
    b.setCarryNext(outer, b.exitValue(inner));
    b.endLoop();
    b.outWord(0, b.exitValue(outer));
    Kernel k = b.build();
    EXPECT_EQ(runOnce(k, {0})[0], 12u);
}

TEST(KernelIr, VariableTripFromRecord)
{
    // acc = sum of loopIdx for idx in [0, in[0]).
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(1, 1);
    Value n = b.inWord(0);
    b.beginLoopVar(n, 16);
    Value acc = b.carry(b.imm(0));
    b.setCarryNext(acc, b.add(acc, b.loopIdx()));
    b.endLoop();
    b.outWord(0, b.exitValue(acc));
    Kernel k = b.build();
    EXPECT_TRUE(k.hasVariableLoop());
    EXPECT_EQ(runOnce(k, {5})[0], 10u); // 0+1+2+3+4
    EXPECT_EQ(runOnce(k, {1})[0], 0u);
}

TEST(KernelIr, WideStridedLoad)
{
    // Sum words 0, 2, 4 via a stride-2 wide load.
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(6, 1);
    Value w = b.inWide(b.imm(0), 3, 2);
    Value s =
        b.add(b.add(b.wordOf(w, 0), b.wordOf(w, 1)), b.wordOf(w, 2));
    b.outWord(0, s);
    Kernel k = b.build();
    EXPECT_EQ(runOnce(k, {1, 99, 2, 99, 3, 99})[0], 6u);
}

TEST(KernelIr, ScratchRoundTrip)
{
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(1, 1, /*scratch=*/4);
    b.scratchStore(b.imm(2), b.inWord(0));
    b.outWord(0, b.scratchLoad(b.imm(2)));
    Kernel k = b.build();
    EXPECT_EQ(runOnce(k, {42})[0], 42u);
}

TEST(KernelIr, TableLookupMasksIndex)
{
    KernelBuilder b("t", Domain::Network);
    b.setRecord(1, 1);
    uint16_t t = b.addTable("sq", {10, 11, 12, 13});
    b.outWord(0, b.tableLoad(t, b.inWord(0)));
    Kernel k = b.build();
    EXPECT_EQ(runOnce(k, {2})[0], 12u);
    EXPECT_EQ(runOnce(k, {6})[0], 12u); // masked to size 4
}

TEST(KernelIr, TablePaddedToPowerOfTwo)
{
    KernelBuilder b("t", Domain::Network);
    b.setRecord(1, 1);
    uint16_t t = b.addTable("odd", {1, 2, 3});
    Kernel k = [&] {
        b.outWord(0, b.tableLoad(t, b.inWord(0)));
        return b.build();
    }();
    EXPECT_EQ(k.tables[0].data.size(), 4u);
}

TEST(KernelIr, SelSemantics)
{
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(3, 1);
    b.outWord(0, b.sel(b.inWord(0), b.inWord(1), b.inWord(2)));
    Kernel k = b.build();
    EXPECT_EQ(runOnce(k, {1, 10, 20})[0], 10u);
    EXPECT_EQ(runOnce(k, {0, 10, 20})[0], 20u);
}

TEST(KernelIr, RecIdxVisible)
{
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(1, 1);
    b.outWord(0, b.recIdx());
    Kernel k = b.build();
    Word in = 0, out = 0;
    interpret(k, 17, &in, &out);
    EXPECT_EQ(out, 17u);
}

// --- Builder misuse ----------------------------------------------------

TEST(KernelIrErrors, UnclosedLoopPanics)
{
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(1, 1);
    b.beginLoop(2);
    b.outWord(0, b.inWord(0));
    EXPECT_THROW(b.build(), PanicError);
}

TEST(KernelIrErrors, CarryWithoutNextPanics)
{
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(1, 1);
    b.beginLoop(2);
    Value c = b.carry(b.imm(0));
    (void)c;
    b.endLoop();
    b.outWord(0, b.inWord(0));
    EXPECT_THROW(b.build(), PanicError);
}

TEST(KernelIrErrors, LoopIdxOutsideLoopPanics)
{
    KernelBuilder b("t", Domain::Scientific);
    EXPECT_THROW(b.loopIdx(), PanicError);
}

TEST(KernelIrErrors, OutOfRangeRecordWordPanics)
{
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(2, 1);
    b.outWord(0, b.inWord(5)); // validated at build()
    EXPECT_THROW(b.build(), PanicError);
}

TEST(KernelIrErrors, WordOfNonWidePanics)
{
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(2, 1);
    Value x = b.inWord(0);
    b.outWord(0, b.wordOf(x, 0));
    EXPECT_THROW(b.build(), PanicError);
}

TEST(KernelIrErrors, InterpCatchesRuntimeTripOverBound)
{
    KernelBuilder b("t", Domain::Scientific);
    b.setRecord(1, 1);
    Value n = b.inWord(0);
    b.beginLoopVar(n, 4);
    Value acc = b.carry(b.imm(0));
    b.setCarryNext(acc, b.opImm(Op::Add, acc, 1));
    b.endLoop();
    b.outWord(0, b.exitValue(acc));
    Kernel k = b.build();
    Word in = 9, out = 0;
    EXPECT_THROW(interpret(k, 0, &in, &out), PanicError);
}
