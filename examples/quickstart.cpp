/**
 * @file
 * Quickstart: define your own data-parallel kernel, run it on the
 * configurable processor, and inspect the result.
 *
 * The kernel here is saxpy on 4-word records: out = a*x + y, with the
 * scalar `a` as a named constant (so the operand-revitalization
 * mechanism applies to it).
 *
 * Build & run:   ./build/examples/quickstart
 */

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "isa/opcodes.hh"
#include "kernels/interp.hh"
#include "kernels/workload.hh"

using namespace dlp;
using namespace dlp::kernels;

namespace {

/** saxpy: read x[4], y[4]; write a*x + y. */
Kernel
makeSaxpy(double a)
{
    KernelBuilder b("saxpy", Domain::Scientific);
    b.setRecord(/*in=*/8, /*out=*/4);
    Value ac = b.constantF("a", a);
    for (unsigned i = 0; i < 4; ++i) {
        Value x = b.inWord(i);
        Value y = b.inWord(4 + i);
        b.outWord(i, b.fadd(b.fmul(ac, x), y));
    }
    return b.build();
}

/** A minimal one-batch workload for a custom kernel. */
class SaxpyWorkload : public Workload
{
  public:
    SaxpyWorkload(Kernel k, uint64_t n, double a)
        : Workload(std::move(k)), records(n), scalar(a)
    {
        Rng rng(7);
        input.reserve(n * 8);
        for (uint64_t r = 0; r < n * 8; ++r)
            input.push_back(isa::fpToWord(rng.uniform(-1, 1)));
    }

    bool
    nextBatch(std::vector<Word> &in, uint64_t &n) override
    {
        if (done)
            return false;
        done = true;
        in = input;
        n = records;
        return true;
    }

    void consumeOutput(const std::vector<Word> &out) override { got = out; }

    bool
    verify(std::string &err) const override
    {
        for (uint64_t r = 0; r < records; ++r) {
            for (unsigned i = 0; i < 4; ++i) {
                double x = isa::wordToFp(input[r * 8 + i]);
                double y = isa::wordToFp(input[r * 8 + 4 + i]);
                double want = scalar * x + y;
                double have = isa::wordToFp(got[r * 4 + i]);
                if (std::fabs(have - want) > 1e-12) {
                    err = "saxpy mismatch at record " + std::to_string(r);
                    return false;
                }
            }
        }
        return true;
    }

    uint64_t totalRecords() const override { return records; }

  private:
    uint64_t records;
    double scalar;
    std::vector<Word> input;
    std::vector<Word> got;
    bool done = false;
};

} // namespace

int
main()
{
    setQuietLogging(true);
    const double a = 2.5;

    std::printf("quickstart: saxpy on the configurable DLP processor\n\n");

    for (const auto &config : arch::allConfigNames()) {
        SaxpyWorkload wl(makeSaxpy(a), 4096, a);
        arch::TripsProcessor cpu(arch::configByName(config));
        auto res = cpu.run(wl);
        std::printf("  %-9s %8" PRIu64 " cycles   %5.2f useful ops/cycle   %s\n",
                    config.c_str(), res.cycles,
                    res.opsPerCycle(),
                    res.verified ? "verified" : res.error.c_str());
    }

    std::printf("\nEvery configuration computed bit-identical results; the "
                "mechanisms only\nchange *when* things happen, never "
                "*what* is computed.\n");
    return 0;
}
