/**
 * @file
 * Property tests on the scheduler: every lowering must respect the
 * machine's structural limits and produce well-formed artifacts for
 * every benchmark kernel on every configuration.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "arch/configs.hh"
#include "kernels/catalog.hh"
#include "sched/linearize.hh"
#include "sched/simd_lowering.hh"

using namespace dlp;
using namespace dlp::sched;

namespace {

StreamLayout
layoutFor(const kernels::Kernel &k)
{
    StreamLayout l;
    l.inBase = 0;
    l.outBase = 20000;
    l.scratchBase = 40000;
    (void)k;
    return l;
}

} // namespace

class SimdLoweringProps : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SimdLoweringProps, WellFormedOnEveryConfig)
{
    kernels::Kernel k = kernels::kernelByName(GetParam());
    for (const char *config : {"baseline", "S", "S-O", "S-O-D"}) {
        auto m = arch::configByName(config);
        SimdPlan plan = lowerSimd(k, m, layoutFor(k));

        EXPECT_GE(plan.unroll, 1u);
        EXPECT_FALSE(plan.segments.empty());
        EXPECT_LE(plan.regsUsed, m.numRegs);

        std::set<unsigned> initRegs;
        for (const auto &init : plan.initialRegs)
            initRegs.insert(init.first);
        EXPECT_TRUE(initRegs.count(plan.recBaseReg));

        for (const auto &seg : plan.segments) {
            seg.block.validate(); // placement + target sanity
            EXPECT_GE(seg.activations, 1u);

            size_t placeable = 0;
            for (const auto &mi : seg.block.insts) {
                if (!mi.regTile)
                    ++placeable;
                // Fanout trees cap direct targets (wide loads fan
                // out per word over the streaming channel).
                size_t cap = mi.op == isa::Op::Lmw
                                 ? 4u * std::max<size_t>(mi.lmwCount, 1)
                                 : 8u;
                EXPECT_LE(mi.targets.size(), cap);
                // Persistent operands only exist with the mechanism.
                if (!m.mech.operandRevitalize) {
                    EXPECT_FALSE(mi.persistent[0] || mi.persistent[1] ||
                                 mi.persistent[2]);
                    EXPECT_FALSE(mi.onceOnly);
                }
                // Wide loads only when the SMC mechanism exists.
                if (!m.mech.smc) {
                    EXPECT_NE(mi.op, isa::Op::Lmw);
                }
            }
            EXPECT_LE(placeable,
                      static_cast<size_t>(m.totalSlots()));
        }
    }
}

TEST_P(SimdLoweringProps, EveryOperandHasAProducerOrIsSeed)
{
    kernels::Kernel k = kernels::kernelByName(GetParam());
    auto m = arch::configByName("S-O");
    SimdPlan plan = lowerSimd(k, m, layoutFor(k));
    for (const auto &seg : plan.segments) {
        // Count incoming operands per (inst, slot).
        std::map<std::pair<uint32_t, unsigned>, int> fed;
        for (const auto &mi : seg.block.insts)
            for (const auto &t : mi.targets)
                fed[{t.inst, t.srcSlot}]++;
        for (size_t i = 0; i < seg.block.insts.size(); ++i) {
            const auto &mi = seg.block.insts[i];
            for (unsigned s = 0; s < mi.numSrcs; ++s) {
                auto key = std::make_pair(static_cast<uint32_t>(i), s);
                EXPECT_EQ(fed[key], 1)
                    << seg.block.name << " inst " << i << " slot " << s;
            }
        }
    }
}

class MimdLoweringProps : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MimdLoweringProps, WellFormed)
{
    kernels::Kernel k = kernels::kernelByName(GetParam());
    auto m = arch::configByName("M-D");
    MimdPlan plan = lowerMimd(k, m, layoutFor(k));

    EXPECT_FALSE(plan.program.code.empty());
    EXPECT_LE(plan.program.code.size(), m.l0InstEntries);
    EXPECT_EQ(plan.program.code.back().op, isa::Op::Halt);

    for (const auto &si : plan.program.code) {
        EXPECT_LT(si.rd, m.tileRegs);
        for (unsigned s = 0; s < isa::opInfo(si.op).numSrcs; ++s)
            EXPECT_LT(si.rs[s], m.tileRegs);
        if (isa::isCtrlOp(si.op) && si.op != isa::Op::Halt) {
            EXPECT_LT(si.branchTarget, plan.program.code.size());
        }
    }
}

static const char *kAllKernels[] = {
    "convert",          "dct",
    "highpassfilter",   "fft",
    "lu",               "md5",
    "blowfish",         "rijndael",
    "vertex-simple",    "fragment-simple",
    "vertex-reflection","fragment-reflection",
    "vertex-skinning",  "anisotropic-filter"};

static std::string
nameOf(const ::testing::TestParamInfo<const char *> &info)
{
    std::string n = info.param;
    for (auto &c : n)
        if (c == '-')
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SimdLoweringProps,
                         ::testing::ValuesIn(kAllKernels), nameOf);
INSTANTIATE_TEST_SUITE_P(AllKernels, MimdLoweringProps,
                         ::testing::ValuesIn(kAllKernels), nameOf);

TEST(LoweringShape, StorageLimitedKernelsSegmentOrSplit)
{
    auto m = arch::configByName("S");
    // md5 cannot unroll (680+ instructions, no loop): it must split.
    auto md5 = lowerSimd(kernels::makeMd5(), m, StreamLayout{0, 20000, 0});
    EXPECT_EQ(md5.unroll, 1u);
    EXPECT_GT(md5.segments.size(), 1u);

    // blowfish keeps its 16-round loop resident with many records.
    auto bf = lowerSimd(kernels::makeBlowfish(), m,
                        StreamLayout{0, 20000, 0});
    bool hasLoopSeg = false;
    for (const auto &seg : bf.segments)
        hasLoopSeg |= seg.isLoop && seg.activations == 16;
    EXPECT_TRUE(hasLoopSeg);
    EXPECT_GT(bf.unroll, 4u);

    // convert unrolls into one resident block.
    auto cv = lowerSimd(kernels::makeConvert(), m,
                        StreamLayout{0, 20000, 0});
    EXPECT_TRUE(cv.resident());
    EXPECT_GT(cv.unroll, 8u);
}

TEST(LoweringShape, OperandRevitalizationMarksConstants)
{
    auto so = arch::configByName("S-O");
    auto plan = lowerSimd(kernels::makeConvert(), so,
                          StreamLayout{0, 20000, 0});
    unsigned onceOnly = 0, persistent = 0;
    for (const auto &seg : plan.segments) {
        for (const auto &mi : seg.block.insts) {
            onceOnly += mi.onceOnly;
            persistent +=
                mi.persistent[0] + mi.persistent[1] + mi.persistent[2];
        }
    }
    EXPECT_GT(onceOnly, 0u);    // the 9 YIQ coefficients at least
    EXPECT_GT(persistent, 0u);  // their consumers
}
