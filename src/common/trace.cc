#include "common/trace.hh"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dlp::trace {

namespace detail {

bool flags[numFlags] = {};
Tick now = 0;

} // namespace detail

namespace {

std::ostream *sinkStream = nullptr;

const char *const names[numFlags] = {
    "EventQ", "Mesh", "SMC", "Cache", "Mem", "Engine", "Revit", "Exec",
};

} // namespace

const char *
flagName(Flag f)
{
    return names[static_cast<unsigned>(f)];
}

std::vector<std::string>
flagNames()
{
    return std::vector<std::string>(names, names + numFlags);
}

void
enable(Flag f)
{
    detail::flags[static_cast<unsigned>(f)] = true;
}

void
disable(Flag f)
{
    detail::flags[static_cast<unsigned>(f)] = false;
}

void
disableAll()
{
    for (unsigned i = 0; i < numFlags; ++i)
        detail::flags[i] = false;
}

bool
anyEnabled()
{
    for (unsigned i = 0; i < numFlags; ++i)
        if (detail::flags[i])
            return true;
    return false;
}

bool
setByName(const std::string &spec)
{
    bool on = true;
    std::string name = spec;
    if (!name.empty() && name[0] == '-') {
        on = false;
        name = name.substr(1);
    }
    if (name == "All") {
        for (unsigned i = 0; i < numFlags; ++i)
            detail::flags[i] = on;
        return true;
    }
    for (unsigned i = 0; i < numFlags; ++i) {
        if (name == names[i]) {
            detail::flags[i] = on;
            return true;
        }
    }
    warn("unknown trace flag '%s' (known: EventQ, Mesh, SMC, Cache, Mem, "
         "Engine, Revit, Exec, All)", spec.c_str());
    return false;
}

void
parseFlagList(const std::string &list)
{
    std::string token;
    std::istringstream in(list);
    while (std::getline(in, token, ',')) {
        // Trim surrounding spaces so "Mesh, SMC" works too.
        size_t b = token.find_first_not_of(" \t");
        size_t e = token.find_last_not_of(" \t");
        if (b == std::string::npos)
            continue;
        setByName(token.substr(b, e - b + 1));
    }
}

void
initFromEnv()
{
    if (const char *env = std::getenv("DLP_TRACE"))
        parseFlagList(env);
}

namespace {

/** Parses DLP_TRACE before main() so env-var tracing just works. */
struct EnvInit
{
    EnvInit() { initFromEnv(); }
} envInit;

} // namespace

void
setSink(std::ostream *os)
{
    sinkStream = os;
}

std::ostream &
sink()
{
    return sinkStream ? *sinkStream : std::cout;
}

void
output(Flag f, const char *component, const std::string &msg)
{
    (void)f;
    std::ostream &os = sink();
    os << detail::now << ": " << component << ": " << msg << "\n";
}

} // namespace dlp::trace
