# Empty dependencies file for render_pipeline.
# This may be replaced when dependencies are built.
