/**
 * @file
 * Static performance oracle: a pure whole-plan cost model.
 *
 * Takes a scheduled plan (SIMD mapped blocks or a MIMD sequential
 * program) plus the machine parameters and, without simulating,
 * computes per-segment and whole-plan predictions:
 *
 *  - dataflow critical-path length (latency-weighted longest path over
 *    the operand graph `check::buildGraph` builds, using the engine's
 *    uncontended per-op timing),
 *  - NoC hop mass and per-link pressure from the placements,
 *  - SMC bank / store-buffer / channel-lane bandwidth demand per
 *    activation,
 *  - reservation-station occupancy,
 *  - a closed-form steady-state throughput bound
 *        ticks/activation >= max(gap + steadyWritePath, maxPressure).
 *
 * The bound side is *sound*: `boundTotalTicks` never exceeds the ticks
 * the event-kernel simulation reports for the same run (audited by
 * `verify::costInvariants` on every experiment and fuzzed via
 * `fuzz_ir --cost`). The estimate side (`predictedTicksPerRecord`) is a
 * throughput model used for ranking placements and configurations; it
 * carries no soundness guarantee, only a rank-correlation contract
 * checked against the simulator grid (see DESIGN.md section 14).
 */

#ifndef DLP_COST_COST_HH
#define DLP_COST_COST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "sched/plan.hh"

namespace dlp::check {
struct Report;
}

namespace dlp::cost {

/** Static cost of one mapped block (one plan segment). */
struct SegmentCost
{
    std::string block;        ///< block name
    uint64_t weight = 1;      ///< plan segment activations per group
    uint64_t insts = 0;       ///< total instructions
    uint64_t steadyInsts = 0; ///< instructions that re-fire every
                              ///< activation (non-onceOnly)

    uint64_t mapTicks = 0; ///< ticks to map this block onto the grid
    uint64_t gapTicks = 0; ///< engine pacing gap (revitalize delay, or
                           ///< the remap time without the mechanism)

    /// Latency-weighted longest path over the full operand graph,
    /// uncontended (activation latency estimate; NOT a throughput
    /// bound -- frame pipelining overlaps consecutive activations).
    uint64_t criticalPathTicks = 0;

    /// Longest uncontended path through re-firing instructions to a
    /// register-file write (the value the engine paces activations on).
    uint64_t steadyWritePathTicks = 0;

    /// Longest uncontended path to a register-file write over the FULL
    /// graph (onceOnly ops included): what a first activation's writes
    /// cost, and what a following segment's map must wait out.
    uint64_t writeDrainTicks = 0;

    /// Busiest structural resource, in exclusive busy ticks demanded
    /// per steady activation, and its name.
    uint64_t maxPressureTicks = 0;
    std::string bottleneck;

    /// Sound per-steady-activation pacing bound:
    /// max(maxPressureTicks, gapTicks + steadyWritePathTicks).
    uint64_t boundTicks = 0;

    uint64_t hopMass = 0;       ///< operand-network hops per activation
    uint64_t hopLowerBound = 0; ///< unavoidable hops (edge/reg crossings)
    uint64_t maxLinkTicks = 0;  ///< busiest single mesh link / lane

    uint64_t smcReadUnits = 0;  ///< SMC bank-port ticks per activation
    uint64_t smcWriteUnits = 0; ///< store-buffer ticks per activation

    double rsOccupancy = 0.0; ///< placed insts / reservation stations
};

/** Whole-plan cost report. */
struct CostReport
{
    bool analyzed = false;
    bool mimd = false;
    std::string plan;
    std::string config;

    unsigned unroll = 1;
    /// SIMD without instruction revitalization: the engine re-maps the
    /// block for every activation (the pacing gap is the map time).
    bool perActivationRemap = false;

    std::vector<SegmentCost> segments;

    /// @name SIMD whole-plan aggregates.
    /// @{
    uint64_t mapTicksMin = 0;              ///< min over segments
    uint64_t boundTicksPerActivation = 0;  ///< min over segments boundTicks
    uint64_t criticalPathTicks = 0;        ///< max over segments
    uint64_t maxPressureTicks = 0;         ///< binding segment's pressure
    std::string bottleneck;                ///< binding segment's resource
    uint64_t hopMass = 0;                  ///< sum over segments
    uint64_t hopLowerBound = 0;            ///< sum over segments
    uint64_t smcReadUnits = 0;             ///< sum over segments
    uint64_t smcWriteUnits = 0;            ///< sum over segments
    double rsOccupancy = 0.0;              ///< max over segments
    /// @}

    /// @name MIMD whole-plan figures.
    /// @{
    uint64_t setupTicks = 0;          ///< broadcast + preload per mapping
    uint64_t minCycleInsts = 0;       ///< min CFG-cycle instruction count
    uint64_t minCycleLoadUnits = 0;   ///< min CFG-cycle SMC bank ticks
    uint64_t minCycleStoreUnits = 0;  ///< min CFG-cycle store-buffer ticks
    uint64_t tiles = 0;               ///< record-loop stride (grid tiles)
    uint64_t gridCols = 0;            ///< tiles sharing one row's bank
    /// @}

    /// Throughput estimate for ranking; not a sound bound.
    double predictedTicksPerRecord = 0.0;
};

/**
 * Analyze a scheduled SIMD plan; pure, no simulator state touched.
 *
 * `records` and `batches` describe the run's shape (both inputs of the
 * run, known before simulating): total records driven and how many
 * dependent batches deliver them (FFT stages, LU steps). Each batch --
 * and each SMC chunk within a batch, per plan.layout.chunkRecords --
 * pays its own map and pipeline ramp, which dominates short runs.
 * records == 0 asks for the asymptotic steady-state prediction.
 */
CostReport analyzeSimd(const sched::SimdPlan &plan,
                       const core::MachineParams &m, uint64_t records = 0,
                       uint64_t batches = 1);

/** Analyze a scheduled MIMD plan; pure. Run shape as for analyzeSimd. */
CostReport analyzeMimd(const sched::MimdPlan &plan,
                       const core::MachineParams &m, uint64_t records = 0,
                       uint64_t batches = 1);

/**
 * Sound lower bound on total run ticks for a finished run with the
 * given counters (activations/mappings as RunStats reports them,
 * records as driven). Zero when the report is not analyzed.
 */
uint64_t boundTotalTicks(const CostReport &report, uint64_t activations,
                         uint64_t mappings, uint64_t records);

/**
 * Append PERF-* advisory findings (PERF-HOP, PERF-CAP, PERF-UNROLL)
 * for this report to a check report. Advisories never affect
 * Report::clean().
 */
void perfRules(const CostReport &report, const core::MachineParams &m,
               check::Report &out);

} // namespace dlp::cost

#endif // DLP_COST_COST_HH
