/**
 * @file
 * Scientific kernels: one radix-2 FFT butterfly and the LU rank-1 element
 * update (Table 2: 10 and 2 instructions respectively, zero constants).
 *
 * Both are driven stage-by-stage by their workloads: the FFT workload
 * emits one record stream per butterfly stage (twiddles travel in the
 * record, as on a vector machine); the LU workload emits one stream per
 * elimination step. The per-record kernels themselves are control-free.
 */

#include "kernels/build_util.hh"
#include "kernels/catalog.hh"

namespace dlp::kernels {

Kernel
makeFft()
{
    KernelBuilder b("fft", Domain::Scientific);
    // Record: ar, ai, br, bi, wr, wi -> a'r, a'i, b'r, b'i.
    b.setRecord(6, 4);

    Value ar = b.inWord(0);
    Value ai = b.inWord(1);
    Value br = b.inWord(2);
    Value bi = b.inWord(3);
    Value wr = b.inWord(4);
    Value wi = b.inWord(5);

    // Mirrors ref::fftButterfly: 4 multiplies, 6 adds/subs.
    Value tr = b.fsub(b.fmul(wr, br), b.fmul(wi, bi));
    Value ti = b.fadd(b.fmul(wr, bi), b.fmul(wi, br));
    b.outWord(0, b.fadd(ar, tr));
    b.outWord(1, b.fadd(ai, ti));
    b.outWord(2, b.fsub(ar, tr));
    b.outWord(3, b.fsub(ai, ti));
    return b.build();
}

Kernel
makeLu()
{
    KernelBuilder b("lu", Domain::Scientific);
    // Record: a[i][j], l[i][k], u[k][j] -> a'[i][j].
    // (The paper's Table 2 lists a 2-word read record; we carry the
    // multiplier in the record rather than re-launching per row --
    // see EXPERIMENTS.md.)
    b.setRecord(3, 1);

    Value a = b.inWord(0);
    Value l = b.inWord(1);
    Value u = b.inWord(2);
    b.outWord(0, b.fsub(a, b.fmul(l, u)));
    return b.build();
}

} // namespace dlp::kernels
