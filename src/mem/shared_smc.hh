/**
 * @file
 * Shared L2/SMC arbitration for the multi-core serving configurations.
 *
 * Each grid core keeps its private L1 and its private view of the SMC
 * streaming channels (those are modeled cycle-accurately inside the
 * per-core simulation), but the SMC banks themselves are reconfigured
 * L2 banks — and the L2 is one physical structure. When N cores run
 * concurrently they contend for that structure's aggregate bandwidth.
 *
 * The arbiter models this contention as fluid bandwidth sharing at
 * request granularity: every active request presents a demand rate
 * (shared-structure words per tick, measured by its isolated per-core
 * run), and whenever the summed demand exceeds the shared bandwidth B
 * every active core is stretched by the same factor f = demand / B —
 * the steady-state outcome of fair round-robin bank arbitration, where
 * each core's memory stream slows in proportion to total pressure.
 * Between system events (arrivals, completions) the active set is
 * constant, so the stretch is piecewise constant and the system
 * simulation stays event-driven and exactly reproducible.
 *
 * The arbiter owns the "mem.shared" statistics group: granted words,
 * contended time, per-core stall ticks, and an active-core histogram —
 * the contention counters the ServiceResult exports.
 */

#ifndef DLP_MEM_SHARED_SMC_HH
#define DLP_MEM_SHARED_SMC_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dlp::mem {

class SharedSmcArbiter
{
  public:
    /**
     * @param cores             number of cores behind the shared banks
     * @param bandwidthWordsPerTick  aggregate shared L2/SMC bandwidth
     */
    SharedSmcArbiter(unsigned cores, double bandwidthWordsPerTick);

    double bandwidth() const { return bw; }

    /**
     * The uniform slowdown factor (>= 1) the active cores see at the
     * given summed demand rate (words/tick).
     */
    double
    slowdown(double totalDemand) const
    {
        return totalDemand > bw ? totalDemand / bw : 1.0;
    }

    /**
     * Account one inter-event interval of `ticks` simulated time during
     * which the cores in `activeDemand` (demand rate per active core,
     * one entry per active request, words/tick *before* stretching)
     * were running under slowdown factor f. Words granted are the
     * post-stretch rates integrated over the interval; stall ticks are
     * the per-core time lost to arbitration, ticks * (1 - 1/f) each.
     */
    void charge(double ticks, const std::vector<double> &activeDemand,
                double f);

    /// @name Aggregate counters (also exposed via the stats group).
    /// @{
    double grantedWords() const { return granted; }
    double stallTicks() const { return stalled; }
    double contendedTicks() const { return contended; }
    /// @}

    /**
     * The shared-memory statistics group ("mem.shared"): scalars
     * grantedWords / stallTicks / contendedTicks / busyTicks, an
     * activeCores distribution (time-weighted, in whole ticks) and a
     * utilization formula.
     */
    StatGroup &statsGroup() { return statGroup; }

  private:
    unsigned nCores;
    double bw;

    double granted = 0.0;    ///< words through the shared banks
    double stalled = 0.0;    ///< summed per-core arbitration loss, ticks
    double contended = 0.0;  ///< time with summed demand > bandwidth
    double busy = 0.0;       ///< time with at least one active core

    StatGroup statGroup{"mem.shared"};
    Distribution *activeDist = nullptr;  ///< active cores, time-weighted
};

} // namespace dlp::mem

#endif // DLP_MEM_SHARED_SMC_HH
