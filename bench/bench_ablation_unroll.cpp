/**
 * @file
 * Ablation A1: instruction-storage / unrolling sensitivity.
 *
 * Sweeps the per-tile reservation-station count (frame size). More
 * storage lets the scheduler replicate more kernel instances per block
 * (bigger U), amortizing revitalization and register traffic -- the
 * "unrolled as much as possible, as determined by the number of
 * reservation stations" design point of Section 4.3.
 */

#include <iostream>

#include "analysis/experiments.hh"
#include "analysis/report.hh"
#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "kernels/workload.hh"

using namespace dlp;
using namespace dlp::analysis;

int
main()
{
    setQuietLogging(true);
    std::cout << "Ablation: frame storage vs throughput (config S-O)\n\n";

    TextTable t;
    t.header({"Kernel", "slots/tile", "unroll-capable insts", "ops/cycle",
              "cycles"});
    for (const char *kernel : {"convert", "fft", "rijndael"}) {
        for (unsigned slots : {4u, 8u, 16u, 32u}) {
            core::MachineParams m = arch::configByName("S-O");
            m.frameSlots = slots;
            auto wl = kernels::makeWorkload(
                kernel, kernels::defaultScale(kernel) / 4, 99);
            arch::TripsProcessor cpu(m);
            auto res = cpu.run(*wl);
            fatal_if(!res.verified, "%s failed: %s", kernel,
                     res.error.c_str());
            t.row({kernel, std::to_string(slots),
                   std::to_string(m.totalSlots() / m.pipelineFrames),
                   fmt(res.opsPerCycle()), std::to_string(res.cycles)});
        }
    }
    t.print(std::cout);
    return 0;
}
