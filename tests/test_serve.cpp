/**
 * @file
 * Tests for the sweepd service layer: the newline-delimited JSON wire
 * protocol, an in-process server on a Unix-domain socket (fork-free
 * worker mode), in-flight deduplication, store-backed warm serving,
 * in-band error handling and clean shutdown.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "analysis/export.hh"
#include "driver/proc_pool.hh"
#include "driver/sweep.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "store/codec.hh"

using namespace dlp;

namespace {

std::string
freshDir(const std::string &tag)
{
    std::string tmpl = ::testing::TempDir() + "dlp_serve_" + tag + "_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    return made ? made : tmpl;
}

json::Value
readJson(int fd, serve::LineReader &reader)
{
    std::string line;
    EXPECT_TRUE(serve::readMessage(fd, reader, line));
    return json::parse(line);
}

/**
 * The exporter's view of a result with the "host" object neutralized:
 * host is wall-clock performance of whichever process computed the
 * cell, the one field that legitimately differs between a served
 * result and a fresh local run.
 */
std::string
exportSansHost(const arch::ExperimentResult &r)
{
    json::Value doc = analysis::toJson(r);
    doc.set("host", json::Value());
    return json::write(doc);
}

} // namespace

TEST(Protocol, LineReaderSplitsArbitraryChunks)
{
    serve::LineReader r;
    std::string line;
    EXPECT_FALSE(r.next(line));
    r.feed("ab", 2);
    EXPECT_FALSE(r.next(line));  // incomplete line stays buffered
    r.feed("c\nsecond\nthi", 12);
    EXPECT_TRUE(r.next(line));
    EXPECT_EQ(line, "abc");
    EXPECT_TRUE(r.next(line));
    EXPECT_EQ(line, "second");
    EXPECT_FALSE(r.next(line));
    r.feed("rd\n", 3);
    EXPECT_TRUE(r.next(line));
    EXPECT_EQ(line, "third");
}

TEST(Protocol, SweepRequestRoundTrip)
{
    driver::SweepPlan plan;
    plan.add("fft", "S", 8, 7);
    plan.add("lu", "M-D", 2, 9);
    plan.tasks[1].scale = 64;

    json::Value req = serve::sweepRequest("r1", plan);
    EXPECT_EQ(req.at("op").asString(), "sweep");
    driver::SweepPlan back = serve::planFromRequest(req);
    ASSERT_EQ(back.size(), plan.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(back.tasks[i].kernel, plan.tasks[i].kernel);
        EXPECT_EQ(back.tasks[i].config, plan.tasks[i].config);
        EXPECT_EQ(back.tasks[i].scaleDiv, plan.tasks[i].scaleDiv);
        EXPECT_EQ(back.tasks[i].seed, plan.tasks[i].seed);
        EXPECT_EQ(back.tasks[i].scale, plan.tasks[i].scale);
    }
}

TEST(ProcPool, ShardsAndCollectsEveryItem)
{
    // Payloads come back keyed by item regardless of worker count or
    // completion order.
    for (unsigned workers : {1u, 3u}) {
        std::vector<std::string> got(10);
        driver::runForked(
            10, workers,
            [](size_t i) { return "payload-" + std::to_string(i); },
            [&](size_t i, std::string payload) {
                got[i] = std::move(payload);
            });
        for (size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], "payload-" + std::to_string(i));
    }
}

TEST(Server, SweepStatsDedupShutdown)
{
    std::string dir = freshDir("srv");
    serve::ServerOptions opts;
    opts.socketPath = dir + "/d.sock";
    opts.workers = 1;  // inline compute: safe on a thread (no fork)
    opts.storeDir = dir + "/store";
    serve::Server server(std::move(opts));
    std::thread loop([&] { server.run(); });

    int fd = serve::connectUnix(server.socketPath());
    serve::LineReader reader;

    ASSERT_TRUE(serve::writeLine(fd, serve::simpleRequest("p", "ping")));
    EXPECT_EQ(readJson(fd, reader).at("type").asString(), "pong");

    // A batch with an exact duplicate cell: four tasks, three unique.
    driver::SweepPlan plan;
    plan.add("fft", "S", 8, 7);
    plan.add("fft", "M-D", 8, 7);
    plan.add("fft", "S", 8, 7);  // duplicate of task 0
    plan.add("lu", "S", 8, 7);
    ASSERT_TRUE(serve::writeLine(fd, serve::sweepRequest("b1", plan)));

    std::vector<arch::ExperimentResult> results(plan.size());
    std::vector<bool> have(plan.size(), false);
    json::Value counters;
    for (bool done = false; !done;) {
        json::Value msg = readJson(fd, reader);
        ASSERT_EQ(msg.at("id").asString(), "b1");
        std::string type = msg.at("type").asString();
        ASSERT_NE(type, "error");
        if (type == "done") {
            counters = msg.at("counters");
            done = true;
            continue;
        }
        ASSERT_EQ(type, "result");
        size_t index = size_t(msg.at("index").asNumber());
        ASSERT_LT(index, plan.size());
        EXPECT_FALSE(have[index]);
        results[index] = store::resultFromJson(msg.at("result"));
        have[index] = true;
    }
    for (bool h : have)
        EXPECT_TRUE(h);
    EXPECT_EQ(uint64_t(counters.at("cells").asNumber()), 4u);
    EXPECT_EQ(uint64_t(counters.at("uniqueCells").asNumber()), 3u);
    EXPECT_EQ(uint64_t(counters.at("dedupedInFlight").asNumber()), 1u);
    EXPECT_EQ(uint64_t(counters.at("computed").asNumber()), 3u);
    EXPECT_EQ(uint64_t(counters.at("storeHits").asNumber()), 0u);

    // The duplicate indices received the identical result (host and
    // all — one computation, fanned out), and every result matches a
    // direct local computation field for field modulo host wall-clock.
    EXPECT_EQ(json::write(analysis::toJson(results[0])),
              json::write(analysis::toJson(results[2])));
    for (size_t i = 0; i < plan.size(); ++i) {
        arch::ExperimentResult local = driver::runTask(plan.tasks[i]);
        EXPECT_EQ(exportSansHost(local), exportSansHost(results[i]));
    }

    // Rerunning the batch is warm now: all unique cells hit the store.
    ASSERT_TRUE(serve::writeLine(fd, serve::sweepRequest("b2", plan)));
    size_t warmResults = 0;
    for (bool done = false; !done;) {
        json::Value msg = readJson(fd, reader);
        std::string type = msg.at("type").asString();
        if (type == "done") {
            counters = msg.at("counters");
            done = true;
        } else {
            ASSERT_EQ(type, "result");
            EXPECT_TRUE(msg.at("cached").asBool());
            ++warmResults;
        }
    }
    EXPECT_EQ(warmResults, plan.size());
    EXPECT_EQ(uint64_t(counters.at("computed").asNumber()), 3u);
    EXPECT_EQ(uint64_t(counters.at("storeHits").asNumber()), 3u);

    // Malformed requests answer in-band and leave the session usable.
    ASSERT_TRUE(serve::writeLine(fd, serve::simpleRequest("x", "bogus")));
    EXPECT_EQ(readJson(fd, reader).at("type").asString(), "error");
    json::Value badSweep = serve::simpleRequest("y", "sweep");  // no tasks
    ASSERT_TRUE(serve::writeLine(fd, badSweep));
    EXPECT_EQ(readJson(fd, reader).at("type").asString(), "error");

    // Stats reflects the whole session.
    ASSERT_TRUE(serve::writeLine(fd, serve::simpleRequest("s", "stats")));
    json::Value stats = readJson(fd, reader);
    EXPECT_EQ(stats.at("type").asString(), "stats");
    EXPECT_EQ(uint64_t(stats.at("counters").at("requests").asNumber()), 2u);
    EXPECT_EQ(uint64_t(stats.at("counters").at("errors").asNumber()), 2u);
    EXPECT_EQ(uint64_t(stats.at("store").at("inserts").asNumber()), 3u);

    ASSERT_TRUE(serve::writeLine(fd, serve::simpleRequest("q", "shutdown")));
    EXPECT_EQ(readJson(fd, reader).at("type").asString(), "bye");
    loop.join();
    ::close(fd);

    const serve::ServerCounters &c = server.counters();
    EXPECT_EQ(c.connections, 1u);
    EXPECT_EQ(c.cells, 8u);
    EXPECT_EQ(c.dedupedInFlight, 2u);
    EXPECT_EQ(c.computed, 3u);
    EXPECT_EQ(c.storeHits, 3u);
}
