/**
 * @file
 * Cross-validation of the kernel IR against the golden models: every
 * benchmark kernel, executed record-by-record with the IR interpreter on
 * its standard workload, must reproduce the reference outputs (exactly
 * for the integer kernels, to rounding for floating point).
 *
 * This is the semantic anchor for the whole simulator: both scheduler
 * lowerings are later required to match the interpreter.
 */

#include <gtest/gtest.h>

#include "kernels/catalog.hh"
#include "kernels/interp.hh"
#include "kernels/workload.hh"

using namespace dlp;
using namespace dlp::kernels;

namespace {

/** Run a workload through the interpreter and let it verify itself. */
void
runThroughInterp(const std::string &name, uint64_t scale)
{
    auto wl = makeWorkload(name, scale, /*seed=*/1234);
    const Kernel &k = wl->kernel();
    auto mem = wl->irregularMemory();

    std::vector<Word> input;
    uint64_t records;
    while (wl->nextBatch(input, records)) {
        std::vector<Word> output;
        interpretBatch(k, input, output, records, mem);
        wl->consumeOutput(output);
    }
    std::string err;
    EXPECT_TRUE(wl->verify(err)) << err;
}

} // namespace

class KernelInterpTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(KernelInterpTest, MatchesGoldenModel)
{
    // Small scales keep the suite fast; the benches run full scale.
    std::string name = GetParam();
    uint64_t scale = 64;
    if (name == "fft")
        scale = 256;
    else if (name == "lu")
        scale = 16;
    runThroughInterp(name, scale);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelInterpTest,
    ::testing::Values("convert", "dct", "highpassfilter", "fft", "lu", "md5",
                      "blowfish", "rijndael", "vertex-simple",
                      "fragment-simple", "vertex-reflection",
                      "fragment-reflection", "vertex-skinning",
                      "anisotropic-filter"),
    [](const ::testing::TestParamInfo<const char *> &param) {
        std::string n = param.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(KernelStructure, AllKernelsValidate)
{
    auto kernels = allKernels();
    EXPECT_EQ(kernels.size(), 14u);
    for (const auto &k : kernels) {
        EXPECT_FALSE(k.name.empty());
        EXPECT_GT(k.inWords, 0u);
        EXPECT_GT(k.nodes.size(), 0u);
        k.validate(); // panics on malformed graphs
    }
}

TEST(KernelStructure, VariableLoopsWhereThePaperSaysSo)
{
    EXPECT_TRUE(makeVertexSkinning().hasVariableLoop());
    EXPECT_TRUE(makeAnisotropic().hasVariableLoop());
    EXPECT_FALSE(makeConvert().hasVariableLoop());
    EXPECT_FALSE(makeRijndael().hasVariableLoop());
}

TEST(KernelStructure, TableFootprintsMatchTable2)
{
    // blowfish: 16 P entries + 4x256 S-box entries.
    EXPECT_EQ(makeBlowfish().tables.size(), 5u);
    // rijndael: 4 T-tables + sbox + round keys = 4*256 + 256 + 64.
    uint64_t rijTab = 0;
    for (const auto &t : makeRijndael().tables)
        rijTab += t.data.size();
    EXPECT_EQ(rijTab, 4u * 256 + 256 + 64);
    // skinning: 288 palette entries padded to 512.
    EXPECT_EQ(makeVertexSkinning().tables.size(), 1u);
    EXPECT_EQ(makeVertexSkinning().tables[0].data.size(), 512u);
    // anisotropic: 128 weights.
    EXPECT_EQ(makeAnisotropic().tables[0].data.size(), 128u);
    // Pure-arithmetic kernels have no tables.
    EXPECT_TRUE(makeFft().tables.empty());
    EXPECT_TRUE(makeConvert().tables.empty());
}

TEST(KernelStructure, RecordShapesMatchTable2)
{
    struct Shape
    {
        const char *name;
        unsigned in, out;
    };
    const Shape shapes[] = {
        {"convert", 3, 3},         {"dct", 64, 64},
        {"highpassfilter", 9, 1},  {"fft", 6, 4},
        {"md5", 10, 2},            {"blowfish", 1, 1},
        {"rijndael", 2, 2},        {"vertex-simple", 7, 6},
        {"fragment-simple", 8, 4}, {"vertex-skinning", 16, 9},
        {"anisotropic-filter", 9, 1},
    };
    for (const auto &s : shapes) {
        Kernel k = kernelByName(s.name);
        EXPECT_EQ(k.inWords, s.in) << s.name;
        EXPECT_EQ(k.outWords, s.out) << s.name;
    }
}

TEST(KernelInterp, DynamicInstructionCountVariesForSkinning)
{
    // The paper: data-dependent branching => executed work varies per
    // record. Verify via interpreter stats on 1-bone vs 4-bone vertices.
    auto wl = makeWorkload("vertex-skinning", 128, 99);
    const Kernel &k = wl->kernel();
    std::vector<Word> input;
    uint64_t records;
    ASSERT_TRUE(wl->nextBatch(input, records));

    uint64_t minExec = ~0ull, maxExec = 0;
    for (uint64_t r = 0; r < records; ++r) {
        InterpStats st;
        std::vector<Word> out(k.outWords);
        interpret(k, r, input.data() + r * k.inWords, out.data(), {}, &st);
        minExec = std::min(minExec, st.executed);
        maxExec = std::max(maxExec, st.executed);
    }
    EXPECT_LT(minExec, maxExec);
}
