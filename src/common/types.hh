/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 *
 * The simulator advances in *ticks* where one tick is half a clock cycle.
 * The paper (Section 5.2) assumes a 10FO4 clock at 100 nm which makes the
 * hop delay between adjacent ALUs half a cycle; expressing all latencies in
 * half-cycle ticks lets the network model that delay exactly instead of
 * rounding it to a full cycle.
 */

#ifndef DLP_COMMON_TYPES_HH
#define DLP_COMMON_TYPES_HH

#include <cstdint>

namespace dlp {

/** Simulation time in half-cycle ticks. */
using Tick = uint64_t;

/** Time expressed in full clock cycles. */
using Cycles = uint64_t;

/** Number of ticks per clock cycle. */
constexpr Tick ticksPerCycle = 2;

/** Convert a latency in cycles to ticks. */
constexpr Tick
cyclesToTicks(Cycles c)
{
    return c * ticksPerCycle;
}

/** Convert ticks to whole cycles, rounding up (a partial cycle counts). */
constexpr Cycles
ticksToCycles(Tick t)
{
    return (t + ticksPerCycle - 1) / ticksPerCycle;
}

/** Byte address in the simulated physical memory. */
using Addr = uint64_t;

/** The machine word: the paper characterizes records in 64-bit words. */
using Word = uint64_t;

/** Bytes per machine word. */
constexpr Addr wordBytes = 8;

/** A sentinel for "no tick scheduled". */
constexpr Tick maxTick = ~Tick(0);

} // namespace dlp

#endif // DLP_COMMON_TYPES_HH
