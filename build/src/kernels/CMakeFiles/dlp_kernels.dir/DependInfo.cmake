
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/catalog.cc" "src/kernels/CMakeFiles/dlp_kernels.dir/catalog.cc.o" "gcc" "src/kernels/CMakeFiles/dlp_kernels.dir/catalog.cc.o.d"
  "/root/repo/src/kernels/graphics.cc" "src/kernels/CMakeFiles/dlp_kernels.dir/graphics.cc.o" "gcc" "src/kernels/CMakeFiles/dlp_kernels.dir/graphics.cc.o.d"
  "/root/repo/src/kernels/interp.cc" "src/kernels/CMakeFiles/dlp_kernels.dir/interp.cc.o" "gcc" "src/kernels/CMakeFiles/dlp_kernels.dir/interp.cc.o.d"
  "/root/repo/src/kernels/ir.cc" "src/kernels/CMakeFiles/dlp_kernels.dir/ir.cc.o" "gcc" "src/kernels/CMakeFiles/dlp_kernels.dir/ir.cc.o.d"
  "/root/repo/src/kernels/multimedia.cc" "src/kernels/CMakeFiles/dlp_kernels.dir/multimedia.cc.o" "gcc" "src/kernels/CMakeFiles/dlp_kernels.dir/multimedia.cc.o.d"
  "/root/repo/src/kernels/network.cc" "src/kernels/CMakeFiles/dlp_kernels.dir/network.cc.o" "gcc" "src/kernels/CMakeFiles/dlp_kernels.dir/network.cc.o.d"
  "/root/repo/src/kernels/scientific.cc" "src/kernels/CMakeFiles/dlp_kernels.dir/scientific.cc.o" "gcc" "src/kernels/CMakeFiles/dlp_kernels.dir/scientific.cc.o.d"
  "/root/repo/src/kernels/workload.cc" "src/kernels/CMakeFiles/dlp_kernels.dir/workload.cc.o" "gcc" "src/kernels/CMakeFiles/dlp_kernels.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dlp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/dlp_ref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
