/**
 * @file
 * The post-run invariant auditor.
 *
 * The simulator's statistics are not independent numbers: the machine's
 * conservation laws tie them together (every scheduled event is
 * executed, dropped at reset or still pending; every mesh hop samples
 * the stall histogram exactly once; every cached access hits or misses
 * the L1). The auditor evaluates a registry of such laws against the
 * stat snapshots carried by an ExperimentResult, so any perf refactor
 * that silently breaks the books -- a lost event, a double-counted hop,
 * an unsampled burst -- turns into a structured violation instead of a
 * quietly wrong histogram.
 *
 * Auditing is opt-in: pass `--audit` to the benches/examples or set
 * DLP_AUDIT=1 in the environment. The sweep driver then audits every
 * completed run and the JSON exporter emits the findings under an
 * "audit" object. The differential fuzzer (verify/fuzz.hh) audits
 * unconditionally.
 */

#ifndef DLP_VERIFY_AUDIT_HH
#define DLP_VERIFY_AUDIT_HH

#include <string>
#include <vector>

#include "arch/multicore.hh"
#include "arch/processor.hh"

namespace dlp::verify {

/** One registered conservation law. */
struct Invariant
{
    const char *name; ///< stable identifier, reported in findings
    const char *law;  ///< human-readable statement of the law
    void (*check)(const arch::ExperimentResult &,
                  std::vector<arch::AuditFinding> &);
};

/** The full registry, in evaluation order. */
const std::vector<Invariant> &invariants();

/** Evaluate every registered invariant against a completed result. */
std::vector<arch::AuditFinding> auditResult(const arch::ExperimentResult &res);

/**
 * Audit res and record the outcome into it (sets res.audited and fills
 * res.auditViolations). @return the number of violations found.
 */
size_t auditAndRecord(arch::ExperimentResult &res);

/**
 * One registered multi-core conservation law, evaluated against a
 * completed service run (arch::ServiceResult). The service registry is
 * separate from the per-core one because the laws tie together
 * system-level books: requests injected vs completed, per-core
 * activation sums vs the system total, shared-bandwidth accounting.
 */
struct ServiceInvariant
{
    const char *name;
    const char *law;
    void (*check)(const arch::ServiceResult &,
                  std::vector<arch::AuditFinding> &);
};

/** The service-law registry, in evaluation order. */
const std::vector<ServiceInvariant> &serviceInvariants();

/** Evaluate every registered service law against a completed run. */
std::vector<arch::AuditFinding>
auditServiceResult(const arch::ServiceResult &res);

/**
 * Audit res and record the outcome into it (sets res.audited and fills
 * res.auditViolations). @return the number of violations found.
 */
size_t auditAndRecordService(arch::ServiceResult &res);

/// @name Process-wide audit switch.
/// Explicit setAuditEnabled() wins; otherwise the DLP_AUDIT environment
/// variable decides (any value except "" and "0" enables).
/// @{
bool auditEnabled();
void setAuditEnabled(bool on);
/// @}

} // namespace dlp::verify

#endif // DLP_VERIFY_AUDIT_HH
