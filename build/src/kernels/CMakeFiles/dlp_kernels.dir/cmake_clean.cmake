file(REMOVE_RECURSE
  "CMakeFiles/dlp_kernels.dir/catalog.cc.o"
  "CMakeFiles/dlp_kernels.dir/catalog.cc.o.d"
  "CMakeFiles/dlp_kernels.dir/graphics.cc.o"
  "CMakeFiles/dlp_kernels.dir/graphics.cc.o.d"
  "CMakeFiles/dlp_kernels.dir/interp.cc.o"
  "CMakeFiles/dlp_kernels.dir/interp.cc.o.d"
  "CMakeFiles/dlp_kernels.dir/ir.cc.o"
  "CMakeFiles/dlp_kernels.dir/ir.cc.o.d"
  "CMakeFiles/dlp_kernels.dir/multimedia.cc.o"
  "CMakeFiles/dlp_kernels.dir/multimedia.cc.o.d"
  "CMakeFiles/dlp_kernels.dir/network.cc.o"
  "CMakeFiles/dlp_kernels.dir/network.cc.o.d"
  "CMakeFiles/dlp_kernels.dir/scientific.cc.o"
  "CMakeFiles/dlp_kernels.dir/scientific.cc.o.d"
  "CMakeFiles/dlp_kernels.dir/workload.cc.o"
  "CMakeFiles/dlp_kernels.dir/workload.cc.o.d"
  "libdlp_kernels.a"
  "libdlp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
