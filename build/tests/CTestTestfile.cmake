# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_ref[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_interp[1]_include.cmake")
include("/root/repo/build/tests/test_processor[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_noc_mem[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_engines[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_placer[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
