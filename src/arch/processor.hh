/**
 * @file
 * The top-level configurable processor: assembles the memory system, the
 * scheduler and the right execution engine for a machine configuration,
 * and runs complete workloads end to end (functional outputs verified
 * against the golden models by the workload itself).
 *
 * This is the primary entry point of the library:
 *
 *   auto wl = kernels::makeWorkload("rijndael", 1024, seed);
 *   arch::TripsProcessor cpu(arch::configByName("S-O-D"));
 *   auto result = cpu.run(*wl);
 *   // result.verified, result.cycles, result.opsPerCycle()
 */

#ifndef DLP_ARCH_PROCESSOR_HH
#define DLP_ARCH_PROCESSOR_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/block_engine.hh"
#include "core/machine.hh"
#include "core/mimd_engine.hh"
#include "kernels/workload.hh"
#include "obs/sampler.hh"
#include "sched/plan.hh"

namespace dlp::arch {

/**
 * One violated post-run invariant, as recorded by the verify-layer
 * auditor (src/verify/audit.hh). Lives here, not in verify, so results
 * can carry findings without arch depending on the verify library.
 */
struct AuditFinding
{
    std::string invariant; ///< short stable identifier of the check
    std::string detail;    ///< human-readable expected-vs-actual text
};

/**
 * One diagnostic from the static SPDI verifier (src/check), flattened
 * the same way AuditFinding is so results can carry findings without
 * arch's interface depending on the check library.
 */
struct CheckFinding
{
    std::string rule;     ///< registry identifier, e.g. "MEM-ORDER"
    std::string severity; ///< "error", "warning" or "info"
    std::string location; ///< block:iN.sM anchor
    std::string detail;   ///< human-readable specifics
};

/**
 * Whole-plan figures from the static cost model (src/cost), flattened
 * the same way AuditFinding/CheckFinding are so results can carry the
 * prediction without arch's interface depending on the cost library.
 * The analysis is pure -- populating it never perturbs simulation.
 */
struct CostSummary
{
    bool analyzed = false; ///< false when lowering failed before analysis
    bool mimd = false;
    unsigned unroll = 1;
    /// SIMD without instruction revitalization: the engine re-maps the
    /// block for every activation.
    bool perActivationRemap = false;
    uint64_t segments = 0;

    /// @name Sound-bound ingredients (see verify::costBoundTicks).
    /// @{
    uint64_t mapTicksMin = 0;
    uint64_t boundTicksPerActivation = 0;
    uint64_t setupTicks = 0;          ///< MIMD program broadcast
    uint64_t minCycleInsts = 0;       ///< MIMD min CFG-cycle instructions
    uint64_t minCycleLoadUnits = 0;   ///< MIMD min CFG-cycle bank ticks
    uint64_t minCycleStoreUnits = 0;  ///< MIMD min CFG-cycle store ticks
    uint64_t tiles = 0;
    uint64_t gridCols = 0;
    /// @}

    /// @name Descriptive predictions (estimates, not bounds).
    /// @{
    uint64_t criticalPathTicks = 0;
    uint64_t maxPressureTicks = 0;
    std::string bottleneck;
    uint64_t hopMass = 0;
    uint64_t hopLowerBound = 0;
    uint64_t smcReadUnits = 0;
    uint64_t smcWriteUnits = 0;
    double rsOccupancy = 0.0;
    double predictedTicksPerRecord = 0.0;
    /// @}
};

/** Outcome of running one workload on one configuration. */
struct ExperimentResult
{
    std::string kernel;
    std::string config;
    bool verified = false;
    std::string error;

    Cycles cycles = 0;
    uint64_t usefulOps = 0;
    uint64_t instsExecuted = 0;
    uint64_t records = 0;
    uint64_t activations = 0;
    uint64_t mappings = 0;

    /// @name Host (simulator) performance of this run -- wall-clock
    /// seconds, simulation-kernel events executed, and their ratio.
    /// Measurement noise, not simulated state: the CI bit-identical
    /// diff strips these, and the JSON exporter groups them under a
    /// separate "host" object so tooling can do the same.
    /// @{
    double hostSeconds = 0.0;
    uint64_t hostEvents = 0;

    double
    hostEventsPerSec() const
    {
        return hostSeconds > 0.0 ? double(hostEvents) / hostSeconds : 0.0;
    }
    /// @}

    /// @name Epoch fast-forwarding accounting. Host-side too (the CI
    /// diff strips them with the rest of the "host" object), but exact
    /// rather than noisy: the auditor checks the conservation laws
    /// eventActivations + ffIterations == activations and
    /// hostEvents + ffEventsSaved == core.simd.eventsExecuted.
    /// @{
    uint64_t ffEpochs = 0;          ///< epochs entered
    uint64_t ffIterations = 0;      ///< activations replayed closed-form
    uint64_t ffEventsSaved = 0;     ///< events those activations skipped
    uint64_t eventActivations = 0;  ///< activations simulated event-by-event
    /// @}

    /**
     * End-of-run snapshots of every per-structure statistics group
     * (engine, mesh, SMC, memory system). Value-semantic: they outlive
     * the processor and ride into the JSON exporter.
     */
    std::vector<GroupSnapshot> statGroups;

    /**
     * Periodic stat samples over simulated time (empty unless a
     * sampling interval was configured -- DLP_TIMESERIES or the
     * --timeseries flag). Delta columns sum to the final aggregates;
     * the exporter emits this as the "timeseries" JSON object.
     */
    obs::TimeSeries timeseries;

    /// @name Post-run invariant audit (populated only when auditing is
    /// enabled; see verify::auditAndRecord). audited distinguishes "not
    /// checked" from "checked clean".
    /// @{
    bool audited = false;
    std::vector<AuditFinding> auditViolations;
    /// @}

    /// @name Pre-run static verification (populated only when checking
    /// is enabled; see check::verify). checked distinguishes "not
    /// checked" from "checked clean". A plan with Error findings never
    /// runs: the processor raises a fatal error instead.
    /// @{
    bool checked = false;
    uint64_t checkErrors = 0;
    uint64_t checkWarnings = 0;
    std::vector<CheckFinding> checkFindings;
    /// @}

    /**
     * Static cost-model predictions for the scheduled plan (populated
     * unconditionally -- the analysis is pure and cheap). Exported as
     * the "cost" JSON object; verify::costInvariants audits the bound
     * side against the simulated cycle count.
     */
    CostSummary cost;

    double
    opsPerCycle() const
    {
        return cycles ? double(usefulOps) / double(cycles) : 0.0;
    }

    /** The snapshot with the given group name; panics if absent. */
    const GroupSnapshot &
    group(const std::string &name) const
    {
        for (const auto &g : statGroups)
            if (g.name == name)
                return g;
        panic("no stat group '%s' in result for %s/%s", name.c_str(),
              kernel.c_str(), config.c_str());
    }
};

class TripsProcessor
{
  public:
    explicit TripsProcessor(const core::MachineParams &params);

    /** Run a workload to completion and verify its outputs. */
    ExperimentResult run(kernels::Workload &workload);

    const core::MachineParams &params() const { return m; }

  private:
    ExperimentResult runSimd(kernels::Workload &workload);
    ExperimentResult runMimd(kernels::Workload &workload);

    core::MachineParams m;
};

/**
 * Partition the SMC between a kernel's input, output and scratch
 * streams. @return the layout; chunkRecords receives the records per
 * SMC-resident chunk. Shared by the processor, the lint_ir linter and
 * the fuzzer's static-check mode, so every consumer sees the plan the
 * machine would really execute.
 */
sched::StreamLayout makeStreamLayout(const kernels::Kernel &k,
                                     const core::MachineParams &m,
                                     uint64_t &chunkRecords);

} // namespace dlp::arch

#endif // DLP_ARCH_PROCESSOR_HH
