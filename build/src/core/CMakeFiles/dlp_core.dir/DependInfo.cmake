
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_engine.cc" "src/core/CMakeFiles/dlp_core.dir/block_engine.cc.o" "gcc" "src/core/CMakeFiles/dlp_core.dir/block_engine.cc.o.d"
  "/root/repo/src/core/mimd_engine.cc" "src/core/CMakeFiles/dlp_core.dir/mimd_engine.cc.o" "gcc" "src/core/CMakeFiles/dlp_core.dir/mimd_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dlp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dlp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dlp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/dlp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dlp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/dlp_ref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
