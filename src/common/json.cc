#include "common/json.hh"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace dlp::json {

const char *
Value::kindName(Kind k)
{
    switch (k) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

uint64_t
Value::asUInt64() const
{
    check(Kind::Number);
    switch (rep_) {
      case NumRep::UInt64:
        return int_;
      case NumRep::Int64:
        panic_if(int64_t(int_) < 0, "json: number %lld is negative",
                 (long long)int64_t(int_));
        return int_;
      case NumRep::Double:
        break;
    }
    // 2^64 is the first double at or past the unsigned range.
    panic_if(!(num_ >= 0.0 && num_ < 18446744073709551616.0 &&
               std::nearbyint(num_) == num_),
             "json: number %g is not an exact uint64", num_);
    return uint64_t(num_);
}

int64_t
Value::asInt64() const
{
    check(Kind::Number);
    switch (rep_) {
      case NumRep::Int64:
        return int64_t(int_);
      case NumRep::UInt64:
        panic_if(int_ > uint64_t(INT64_MAX),
                 "json: number %llu overflows int64",
                 (unsigned long long)int_);
        return int64_t(int_);
      case NumRep::Double:
        break;
    }
    panic_if(!(num_ >= -9223372036854775808.0 &&
               num_ < 9223372036854775808.0 &&
               std::nearbyint(num_) == num_),
             "json: number %g is not an exact int64", num_);
    return int64_t(num_);
}

const Value &
Value::at(size_t i) const
{
    check(Kind::Array);
    panic_if(i >= arr_.size(), "json: index %zu out of range (size %zu)",
             i, arr_.size());
    return arr_[i];
}

void
Value::set(const std::string &key, Value v)
{
    check(Kind::Object);
    for (auto &m : obj_) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

const Value *
Value::find(const std::string &key) const
{
    check(Kind::Object);
    for (const auto &m : obj_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    panic_if(!v, "json: object has no member '%s'", key.c_str());
    return *v;
}

size_t
Value::size() const
{
    switch (kind_) {
      case Kind::Array: return arr_.size();
      case Kind::Object: return obj_.size();
      default: panic("json: value has no size");
    }
}

namespace {

void
writeEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
writeNumber(std::string &out, const Value &v)
{
    char buf[64];
    // Exact 64-bit integers print all their digits, no double detour.
    if (v.numRep() == Value::NumRep::UInt64) {
        auto res = std::to_chars(buf, buf + sizeof(buf), v.asUInt64());
        out.append(buf, res.ptr);
        return;
    }
    if (v.numRep() == Value::NumRep::Int64) {
        auto res = std::to_chars(buf, buf + sizeof(buf), v.asInt64());
        out.append(buf, res.ptr);
        return;
    }
    double d = v.asNumber();
    // JSON has no NaN/Inf; null is the conventional stand-in.
    if (!std::isfinite(d)) {
        out += "null";
        return;
    }
    // Exact integral values print without a decimal point so counters
    // read as the integers they are (2^53 bounds exact representation).
    double rounded = std::nearbyint(d);
    if (rounded == d && std::fabs(d) < 9.0e15) {
        auto res = std::to_chars(buf, buf + sizeof(buf), int64_t(rounded));
        out.append(buf, res.ptr);
        return;
    }
    auto res = std::to_chars(buf, buf + sizeof(buf), d);
    out.append(buf, res.ptr);
}

void
writeValue(std::string &out, const Value &v, unsigned indent, unsigned depth)
{
    auto newline = [&](unsigned level) {
        if (indent) {
            out += '\n';
            out.append(size_t(indent) * level, ' ');
        }
    };

    switch (v.kind()) {
      case Value::Kind::Null:
        out += "null";
        break;
      case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case Value::Kind::Number:
        writeNumber(out, v);
        break;
      case Value::Kind::String:
        writeEscaped(out, v.asString());
        break;
      case Value::Kind::Array: {
        const auto &items = v.items();
        if (items.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (size_t i = 0; i < items.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            writeValue(out, items[i], indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      }
      case Value::Kind::Object: {
        const auto &members = v.members();
        if (members.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (size_t i = 0; i < members.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            writeEscaped(out, members[i].first);
            out += indent ? ": " : ":";
            writeValue(out, members[i].second, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
      }
    }
}

/** Recursive-descent parser over a complete in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    Value
    document()
    {
        Value v = value();
        skipWs();
        fail_if(pos != s.size(), "trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        fatal("json: parse error at offset %zu: %s", pos, what);
    }

    void
    fail_if(bool cond, const char *what)
    {
        if (cond)
            fail(what);
    }

    /// Maximum container nesting before the parser bails out.
    static constexpr size_t maxDepth = 256;

    void
    skipWs()
    {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                                  s[pos] == '\n' || s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        fail_if(pos >= s.size(), "unexpected end of input");
        return s[pos];
    }

    void
    expect(char c, const char *what)
    {
        fail_if(pos >= s.size() || s[pos] != c, what);
        ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p)
            fail_if(pos >= s.size() || s[pos++] != *p, "invalid literal");
    }

    Value
    value()
    {
        // Containers recurse back into value(); a hostile or corrupt
        // document of the form [[[[... would otherwise ride the call
        // stack to a segfault instead of a clean parse error.
        fail_if(depth >= maxDepth, "nesting deeper than 256 levels");
        ++depth;
        skipWs();
        Value v = [&] {
            switch (peek()) {
              case '{': return object();
              case '[': return array();
              case '"': return Value(string());
              case 't': literal("true"); return Value(true);
              case 'f': literal("false"); return Value(false);
              case 'n': literal("null"); return Value(nullptr);
              default: return number();
            }
        }();
        --depth;
        return v;
    }

    Value
    object()
    {
        expect('{', "expected '{'");
        Value obj = Value::object();
        skipWs();
        if (consume('}'))
            return obj;
        while (true) {
            skipWs();
            fail_if(peek() != '"', "expected object key");
            std::string key = string();
            skipWs();
            expect(':', "expected ':' after key");
            obj.set(key, value());
            skipWs();
            if (consume(','))
                continue;
            expect('}', "expected ',' or '}' in object");
            return obj;
        }
    }

    Value
    array()
    {
        expect('[', "expected '['");
        Value arr = Value::array();
        skipWs();
        if (consume(']'))
            return arr;
        while (true) {
            arr.push(value());
            skipWs();
            if (consume(','))
                continue;
            expect(']', "expected ',' or ']' in array");
            return arr;
        }
    }

    std::string
    string()
    {
        expect('"', "expected '\"'");
        std::string out;
        while (true) {
            fail_if(pos >= s.size(), "unterminated string");
            char c = s[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            fail_if(pos >= s.size(), "unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                fail_if(pos + 4 > s.size(), "truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("invalid \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // not needed for the simulator's own output).
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xc0 | (code >> 6));
                    out += char(0x80 | (code & 0x3f));
                } else {
                    out += char(0xe0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3f));
                    out += char(0x80 | (code & 0x3f));
                }
                break;
              }
              default: fail("invalid escape character");
            }
        }
    }

    Value
    number()
    {
        size_t start = pos;
        bool negative = consume('-');
        bool integral = true;
        while (pos < s.size() &&
               ((s[pos] >= '0' && s[pos] <= '9') || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E' || s[pos] == '+' ||
                s[pos] == '-')) {
            if (s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E')
                integral = false;
            ++pos;
        }
        fail_if(pos == start, "expected a value");
        const char *first = s.data() + start;
        const char *last = s.data() + pos;
        if (integral) {
            // Restore an integer literal exactly; only a literal that
            // overflows 64 bits falls back to the double path below.
            if (negative) {
                int64_t i = 0;
                auto res = std::from_chars(first, last, i);
                if (res.ec == std::errc() && res.ptr == last)
                    return Value(i);
            } else {
                uint64_t u = 0;
                auto res = std::from_chars(first, last, u);
                if (res.ec == std::errc() && res.ptr == last)
                    return Value(u);
            }
        }
        double d = 0;
        auto res = std::from_chars(first, last, d);
        fail_if(res.ec != std::errc() || res.ptr != last,
                "malformed number");
        return Value(d);
    }

    const std::string &s;
    size_t pos = 0;
    size_t depth = 0; ///< current container nesting inside value()
};

} // namespace

std::string
write(const Value &v, unsigned indent)
{
    std::string out;
    writeValue(out, v, indent, 0);
    if (indent)
        out += '\n';
    return out;
}

Value
parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace dlp::json
