#include "sched/placer.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace dlp::sched {

void
placeBlock(isa::MappedBlock &block, const core::MachineParams &m,
           const std::vector<unsigned> &instanceHint)
{
    const unsigned rows = m.rows;
    const unsigned cols = m.cols;
    std::vector<unsigned> occupancy(static_cast<size_t>(rows) * cols, 0);

    // Each kernel instance streams from one row's SMC bank; assign
    // instances to the emptiest row at their first memory operation so
    // bank and link traffic balances even when U is not a multiple of
    // the row count.
    std::vector<unsigned> memOpsPerRow(rows, 0);
    std::map<unsigned, unsigned> instanceRow;

    // Producer lists (inverted target edges).
    std::vector<std::vector<uint32_t>> producers(block.insts.size());
    for (size_t p = 0; p < block.insts.size(); ++p)
        for (const auto &t : block.insts[p].targets)
            producers[t.inst].push_back(static_cast<uint32_t>(p));

    size_t placeable = 0;
    for (const auto &mi : block.insts)
        if (!mi.regTile)
            ++placeable;
    panic_if(placeable > static_cast<size_t>(rows) * cols * m.frameSlots,
             "block %s (%zu insts) exceeds instruction storage",
             block.name.c_str(), placeable);

    std::vector<bool> placed(block.insts.size(), false);

    for (size_t i = 0; i < block.insts.size(); ++i) {
        auto &mi = block.insts[i];

        if (mi.regTile) {
            // Register tiles sit along the north edge, one per bank.
            unsigned bank =
                static_cast<unsigned>(mi.imm) % std::max(1u, m.regBanks);
            unsigned col = bank * std::max(1u, cols / std::max(1u, m.regBanks));
            mi.row = 0;
            mi.col = static_cast<uint8_t>(std::min(col, cols - 1));
            mi.slot = 0;
            placed[i] = true;
            continue;
        }

        // Preferred position: centroid of placed non-register producers.
        // Register tiles all sit on the north edge and would drag every
        // consumer to row 0, so they don't vote; instructions without a
        // real producer are seeded onto their kernel instance's row,
        // which spreads independent records across the per-row banks.
        double sumR = 0, sumC = 0;
        unsigned n = 0;
        for (uint32_t p : producers[i]) {
            if (!placed[p] || block.insts[p].regTile)
                continue;
            sumR += block.insts[p].row;
            sumC += block.insts[p].col;
            ++n;
        }

        bool memOp = isa::isMemOp(mi.op);
        unsigned inst = i < instanceHint.size() ? instanceHint[i] : 0;
        double prefR, prefC;
        if (memOp) {
            // Memory operations live near their row's edge port, on the
            // instance's assigned (least-loaded) row.
            auto it = instanceRow.find(inst);
            if (it == instanceRow.end()) {
                unsigned best = 0;
                for (unsigned r = 1; r < rows; ++r)
                    if (memOpsPerRow[r] < memOpsPerRow[best])
                        best = r;
                it = instanceRow.emplace(inst, best).first;
            }
            prefR = it->second;
            prefC = 0.0;
            memOpsPerRow[it->second]++;
        } else if (n > 0) {
            prefR = sumR / n;
            prefC = sumC / n;
        } else {
            prefR = inst % rows;
            prefC = cols / 2.0;
        }

        // Pick the cheapest tile: distance to preference plus a load
        // balancing penalty, skipping full tiles.
        double bestCost = 1e18;
        unsigned bestTile = 0;
        bool found = false;
        for (unsigned r = 0; r < rows; ++r) {
            for (unsigned c = 0; c < cols; ++c) {
                unsigned occ = occupancy[r * cols + c];
                if (occ >= m.frameSlots)
                    continue;
                double dist = std::abs(double(r) - prefR) +
                              std::abs(double(c) - prefC);
                double cost = dist + 0.45 * occ;
                if (cost < bestCost) {
                    bestCost = cost;
                    bestTile = r * cols + c;
                    found = true;
                }
            }
        }
        panic_if(!found, "placer ran out of slots in block %s",
                 block.name.c_str());
        mi.row = static_cast<uint8_t>(bestTile / cols);
        mi.col = static_cast<uint8_t>(bestTile % cols);
        mi.slot = static_cast<uint8_t>(occupancy[bestTile]++);
        placed[i] = true;
    }
}

} // namespace dlp::sched
