/**
 * @file
 * Full-fidelity JSON codec for ExperimentResult.
 *
 * The analysis exporter (analysis/export.hh) serializes results for
 * *consumption*: distributions appear as derived mean/stdev, which is
 * what plots want but cannot be inverted exactly. The store codec
 * serializes results for *reconstruction*: distributions carry their
 * raw accumulators (sum, sumSq) so a decoded result re-exported through
 * the analysis exporter is byte-for-byte identical to the original —
 * mean() and stdev() recompute from the very same doubles the original
 * run held. (JSON doubles survive the trip exactly: the writer emits
 * shortest round-trippable forms.)
 *
 * Everything on the result rides along — audit/check findings, the
 * sampled timeseries, host-performance numbers (historical values from
 * the run that computed the cell) — so a store hit is indistinguishable
 * from a recompute, modulo wall-clock.
 */

#ifndef DLP_STORE_CODEC_HH
#define DLP_STORE_CODEC_HH

#include "arch/processor.hh"
#include "common/json.hh"

namespace dlp::store {

/** Schema version of the codec's document shape. */
constexpr uint64_t codecFormatVersion = 1;

/** Serialize a result with enough fidelity to reconstruct it exactly. */
json::Value resultToJson(const arch::ExperimentResult &result);

/** Inverse of resultToJson; raises FatalError on malformed documents. */
arch::ExperimentResult resultFromJson(const json::Value &doc);

} // namespace dlp::store

#endif // DLP_STORE_CODEC_HH
