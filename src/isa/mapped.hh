/**
 * @file
 * The statically-placed, dynamically-issued (SPDI) block format.
 *
 * A MappedBlock is the unit the grid core executes in dataflow mode: each
 * instruction carries its placement (tile row/column and reservation-station
 * slot) and an explicit list of consumer targets, exactly as in the TRIPS
 * ISA where each instruction encodes its placement and its consumers. The
 * core fires an instruction when all of its source operands have arrived,
 * routes the result over the operand network to the targets, and commits
 * the block when every instruction has executed.
 *
 * Every instruction in a block fires exactly once per activation;
 * conditional execution is expressed with Sel (select) chains, which is the
 * "predication or other techniques for nullifying unwanted instructions"
 * cost model the paper assigns to SIMD-style execution of data-dependent
 * control.
 */

#ifndef DLP_ISA_MAPPED_HH
#define DLP_ISA_MAPPED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/opcodes.hh"

namespace dlp::isa {

/** Which part of the memory system a memory operation addresses. */
enum class MemSpace : uint8_t
{
    None,    ///< not a memory operation
    Smc,     ///< software-managed cache (regular, streamed accesses)
    Cached,  ///< hardware-managed L1/L2 (irregular accesses)
    Table    ///< indexed constants; L0 data store when enabled, else L1
};

/** Maximum source operands of any instruction. */
constexpr unsigned maxSrcs = 3;

/** A destination of an instruction's result. */
struct Target
{
    uint32_t inst;    ///< index of the consumer within the block
    uint8_t srcSlot;  ///< which source operand of the consumer
    uint8_t wordIdx;  ///< which result word (Lmw produces several)
};

/** One placed dataflow instruction. */
struct MappedInst
{
    Op op = Op::Nop;
    Word imm = 0;

    /// Placement on the grid.
    uint8_t row = 0;
    uint8_t col = 0;
    uint8_t slot = 0;

    /// Number of source operands that must arrive before firing.
    uint8_t numSrcs = 0;

    /**
     * Operand-revitalization bits (one per source slot). A persistent
     * operand survives a revitalize: it is not cleared between iterations,
     * so constants delivered once keep feeding every iteration. Only
     * meaningful on machines with the operand-revitalization mechanism.
     */
    bool persistent[maxSrcs] = {false, false, false};

    /// Memory attributes (Ld/St/Lmw/Tld only).
    MemSpace space = MemSpace::None;
    uint8_t lmwCount = 0;   ///< words fetched by Lmw
    uint8_t lmwStride = 1;  ///< word stride of the Lmw (vector fetch)
    uint16_t tableId = 0;   ///< which lookup table Tld reads

    /// Overhead instructions (address arithmetic, loads/stores, register
    /// moves) are excluded from the paper's useful-ops/cycle metric.
    bool overhead = false;

    /// Binary op whose second operand is the immediate (no dataflow edge).
    bool immB = false;

    /**
     * Fires only on the first activation of the block (operand
     * revitalization): the values it delivers are marked persistent at
     * the consumers and survive every revitalize. Set on constant
     * register reads and immediate moves when the mechanism is enabled.
     */
    bool onceOnly = false;

    /// Lives in a register tile on the array edge (Read/Write); exempt
    /// from the reservation-station slot budget.
    bool regTile = false;

    std::vector<Target> targets;
};

/** A complete block mapped onto the grid. */
struct MappedBlock
{
    std::string name;
    uint8_t rows = 0;
    uint8_t cols = 0;
    uint8_t slotsPerTile = 0;

    std::vector<MappedInst> insts;

    /** Total instructions in the block. */
    size_t size() const { return insts.size(); }

    /** Count of non-overhead (useful) instructions. */
    size_t
    usefulCount() const
    {
        size_t n = 0;
        for (const auto &mi : insts)
            if (!mi.overhead)
                ++n;
        return n;
    }

    /** Validate placement bounds and target references; panics on error. */
    void
    validate() const
    {
        std::vector<uint32_t> occupancy(
            static_cast<size_t>(rows) * cols, 0);
        for (size_t i = 0; i < insts.size(); ++i) {
            const auto &mi = insts[i];
            panic_if(mi.row >= rows || mi.col >= cols,
                     "inst %zu of %s placed off-grid (%u,%u)", i,
                     name.c_str(), mi.row, mi.col);
            if (!mi.regTile) {
                panic_if(mi.slot >= slotsPerTile,
                         "inst %zu of %s in slot %u >= %u", i, name.c_str(),
                         mi.slot, slotsPerTile);
                occupancy[static_cast<size_t>(mi.row) * cols + mi.col]++;
            }
            for (const auto &t : mi.targets) {
                panic_if(t.inst >= insts.size(),
                         "inst %zu of %s targets out-of-range inst %u", i,
                         name.c_str(), t.inst);
                panic_if(t.srcSlot >= maxSrcs,
                         "inst %zu of %s targets bad slot %u", i,
                         name.c_str(), t.srcSlot);
            }
        }
        for (auto occ : occupancy)
            panic_if(occ > slotsPerTile,
                     "block %s overfills a tile (%u > %u slots)",
                     name.c_str(), occ, slotsPerTile);
    }
};

} // namespace dlp::isa

#endif // DLP_ISA_MAPPED_HH
