#include <sstream>

#include "check/rules.hh"
#include "isa/disasm.hh"

namespace dlp::check {

using isa::Op;
using isa::SeqInst;
using isa::SeqProgram;

void
checkSeq(const SeqProgram &prog, const core::MachineParams &m,
         const kernels::Kernel *kernel, Report &rep)
{
    const std::string &name = prog.name;
    if (prog.numRegs > m.tileRegs) {
        std::ostringstream os;
        os << "program uses " << prog.numRegs << " registers > "
           << m.tileRegs << " operand-buffer entries per tile";
        rep.add("SEQ-REG", name, -1, -1, os.str());
    }

    bool halts = false;
    for (size_t i = 0; i < prog.code.size(); ++i) {
        const SeqInst &si = prog.code[i];
        if (si.op >= Op::NumOps) {
            rep.add("SEQ-OP", name, int(i), -1, "invalid opcode value");
            continue;
        }
        // Dataflow-only opcodes the MIMD pipeline does not implement.
        if (si.op == Op::Lmw || si.op == Op::Read || si.op == Op::Write ||
            si.op == Op::ActIdx) {
            rep.add("SEQ-OP", name, int(i), -1,
                    std::string(isa::opName(si.op)) +
                        " in a sequential program (dataflow-only opcode)");
            continue;
        }
        if (isa::isMemOp(si.op) && si.space == isa::MemSpace::None)
            rep.add("SEQ-OP", name, int(i), -1,
                    std::string(isa::opName(si.op)) +
                        " without a memory space");
        if (si.op == Op::Tld && kernel &&
            si.tableId >= kernel->tables.size()) {
            std::ostringstream os;
            os << "Tld table " << si.tableId << " but kernel defines "
               << kernel->tables.size();
            rep.add("CFG-TABLE", name, int(i), -1, os.str());
        }
        if (isa::isCtrlOp(si.op)) {
            halts |= si.op == Op::Halt;
            if (si.op != Op::Halt &&
                si.branchTarget >= prog.code.size()) {
                std::ostringstream os;
                os << isa::opName(si.op) << " to " << si.branchTarget
                   << " outside the " << prog.code.size()
                   << "-instruction program";
                rep.add("SEQ-BR", name, int(i), -1, os.str());
            }
        }

        const auto &info = isa::opInfo(si.op);
        auto checkReg = [&](unsigned reg, const char *what) {
            if (reg >= prog.numRegs) {
                std::ostringstream os;
                os << what << " r" << reg << " >= " << prog.numRegs
                   << " program registers";
                rep.add("SEQ-REG", name, int(i), -1, os.str());
            }
        };
        for (unsigned s = 0; s < info.numSrcs && s < isa::maxSrcs; ++s) {
            if (s == 1 && si.immB)
                continue;
            checkReg(si.rs[s], "source");
        }
        bool writes = !isa::isCtrlOp(si.op) && si.op != Op::St;
        if (writes)
            checkReg(si.rd, "destination");
    }
    if (!halts)
        rep.add("SEQ-HALT", name, -1, -1,
                "no Halt instruction; kernel instances cannot terminate");
}

} // namespace dlp::check
