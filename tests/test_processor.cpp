/**
 * @file
 * End-to-end validation of the configurable processor: every benchmark
 * kernel, on every machine configuration of Table 5, must produce the
 * golden-model outputs through the full cycle-level simulation
 * (scheduler -> placed blocks / MIMD programs -> engines -> memory
 * system), and basic timing sanity must hold.
 */

#include <gtest/gtest.h>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "kernels/workload.hh"

using namespace dlp;
using namespace dlp::arch;
using namespace dlp::kernels;

namespace {

ExperimentResult
runOne(const std::string &kernel, const std::string &config, uint64_t scale)
{
    auto wl = makeWorkload(kernel, scale, 77);
    TripsProcessor cpu(configByName(config));
    return cpu.run(*wl);
}

uint64_t
smallScale(const std::string &kernel)
{
    if (kernel == "fft")
        return 64; // transform size
    if (kernel == "lu")
        return 12; // matrix dim
    if (kernel == "dct")
        return 8;
    return 48;
}

} // namespace

struct Case
{
    const char *kernel;
    const char *config;
};

class ProcessorCorrectness
    : public ::testing::TestWithParam<Case>
{
};

TEST_P(ProcessorCorrectness, MatchesGoldenModel)
{
    const Case &c = GetParam();
    auto res = runOne(c.kernel, c.config, smallScale(c.kernel));
    EXPECT_TRUE(res.verified) << res.error;
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.usefulOps, 0u);
}

static std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    static const char *kernels[] = {
        "convert",          "dct",
        "highpassfilter",   "fft",
        "lu",               "md5",
        "blowfish",         "rijndael",
        "vertex-simple",    "fragment-simple",
        "vertex-reflection","fragment-reflection",
        "vertex-skinning",  "anisotropic-filter"};
    static const char *configs[] = {"baseline", "S", "S-O", "S-O-D", "M",
                                    "M-D"};
    for (const char *k : kernels)
        for (const char *c : configs)
            cases.push_back({k, c});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllConfigs, ProcessorCorrectness,
    ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<Case> &param) {
        std::string n = std::string(param.param.kernel) + "_" +
                        param.param.config;
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(ProcessorTiming, MechanismsNeverChangeResults)
{
    // The same seed must give bit-identical output words on every
    // configuration (the engines are functional; mechanisms are timing).
    auto ref = runOne("rijndael", "baseline", 32);
    for (const char *cfg : {"S", "S-O", "S-O-D", "M", "M-D"}) {
        auto res = runOne("rijndael", cfg, 32);
        EXPECT_TRUE(res.verified) << cfg;
        EXPECT_EQ(res.records, ref.records);
    }
}

TEST(ProcessorTiming, DatasetsBeyondTheSmcPayDmaTime)
{
    // lu at dimension 96 streams ~9000-record steps through a chunked
    // SMC; the cycles must exceed a linear extrapolation of an
    // SMC-resident run (DMA staging is on the critical path), and the
    // result must still verify.
    setQuietLogging(true);
    auto small = runOne("lu", "S", 24);
    auto big = runOne("lu", "S", 72);
    EXPECT_TRUE(big.verified) << big.error;
    double perRecSmall = double(small.cycles) / double(small.records);
    double perRecBig = double(big.cycles) / double(big.records);
    EXPECT_GT(perRecBig, 0.2 * perRecSmall); // sanity: same order
}

TEST(ProcessorTiming, ActivationAccountingConsistent)
{
    auto res = runOne("convert", "S", 128);
    // Resident plan: one mapping, ceil(records/U) activations.
    EXPECT_EQ(res.mappings, 1u);
    EXPECT_GE(res.activations, 1u);
    EXPECT_LE(res.activations, 128u);
    EXPECT_GT(res.instsExecuted, res.usefulOps);
}
