# Empty dependencies file for bench_ablation_noc_l0.
# This may be replaced when dependencies are built.
