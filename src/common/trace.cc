#include "common/trace.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <unordered_set>

namespace dlp::trace {

namespace detail {

std::atomic<bool> flags[numFlags] = {};
thread_local Tick now = 0;

} // namespace detail

namespace {

/// Guards the sink registry and serializes line emission so concurrent
/// simulations (the sweep driver's worker threads) never shear a line.
std::mutex sinkMutex;
std::ostream *sinkStream = nullptr;

const char *const names[numFlags] = {
    "EventQ", "Mesh", "SMC", "Cache", "Mem", "Engine", "Revit", "Exec",
    "Epoch",
};

} // namespace

const char *
flagName(Flag f)
{
    return names[static_cast<unsigned>(f)];
}

std::vector<std::string>
flagNames()
{
    return std::vector<std::string>(names, names + numFlags);
}

void
enable(Flag f)
{
    detail::flags[static_cast<unsigned>(f)].store(true,
                                                  std::memory_order_relaxed);
}

void
disable(Flag f)
{
    detail::flags[static_cast<unsigned>(f)].store(false,
                                                   std::memory_order_relaxed);
}

void
disableAll()
{
    for (unsigned i = 0; i < numFlags; ++i)
        detail::flags[i].store(false, std::memory_order_relaxed);
}

bool
anyEnabled()
{
    for (unsigned i = 0; i < numFlags; ++i)
        if (detail::flags[i].load(std::memory_order_relaxed))
            return true;
    return false;
}

bool
setByName(const std::string &spec)
{
    bool on = true;
    std::string name = spec;
    if (!name.empty() && name[0] == '-') {
        on = false;
        name = name.substr(1);
    }
    if (name == "All") {
        for (unsigned i = 0; i < numFlags; ++i)
            detail::flags[i].store(on, std::memory_order_relaxed);
        return true;
    }
    for (unsigned i = 0; i < numFlags; ++i) {
        if (name == names[i]) {
            detail::flags[i].store(on, std::memory_order_relaxed);
            return true;
        }
    }
    // Warn once per distinct unknown name: DLP_TRACE typos should be
    // loud exactly once, not once per parseFlagList call (tools re-parse
    // the list when building sub-configurations).
    {
        static std::mutex warnedMutex;
        static std::unordered_set<std::string> warnedNames;
        std::lock_guard<std::mutex> lock(warnedMutex);
        if (warnedNames.insert(name).second) {
            warn("unknown trace flag '%s' (known: EventQ, Mesh, SMC, Cache, "
                 "Mem, Engine, Revit, Exec, Epoch, All)", spec.c_str());
        }
    }
    return false;
}

void
parseFlagList(const std::string &list)
{
    std::string token;
    std::istringstream in(list);
    while (std::getline(in, token, ',')) {
        // Trim surrounding spaces so "Mesh, SMC" works too.
        size_t b = token.find_first_not_of(" \t");
        size_t e = token.find_last_not_of(" \t");
        if (b == std::string::npos)
            continue;
        setByName(token.substr(b, e - b + 1));
    }
}

void
initFromEnv()
{
    if (const char *env = std::getenv("DLP_TRACE"))
        parseFlagList(env);
}

namespace {

/** Parses DLP_TRACE before main() so env-var tracing just works. */
struct EnvInit
{
    EnvInit() { initFromEnv(); }
} envInit;

} // namespace

void
setSink(std::ostream *os)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    sinkStream = os;
}

std::ostream &
sink()
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    return sinkStream ? *sinkStream : std::cout;
}

void
output(Flag f, const char *component, const std::string &msg)
{
    (void)f;
    // Format off-lock, emit under the lock: one atomic line per call.
    std::ostringstream line;
    line << detail::now << ": " << component << ": " << msg << "\n";
    std::lock_guard<std::mutex> lock(sinkMutex);
    std::ostream &os = sinkStream ? *sinkStream : std::cout;
    os << line.str();
}

} // namespace dlp::trace
