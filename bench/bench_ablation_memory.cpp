/**
 * @file
 * Ablation A2: memory-system sensitivity.
 *
 * Sweeps (a) the SMC bank / streaming-channel bandwidth and (b) the
 * revitalize broadcast delay on a bandwidth-hungry kernel (fft) and a
 * compute-bound one (vertex-simple), both on the S configuration.
 */

#include <iostream>

#include "analysis/report.hh"
#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "kernels/workload.hh"

using namespace dlp;
using namespace dlp::analysis;

namespace {

double
run(const core::MachineParams &m, const char *kernel)
{
    auto wl = kernels::makeWorkload(kernel,
                                    kernels::defaultScale(kernel) / 4, 99);
    arch::TripsProcessor cpu(m);
    auto res = cpu.run(*wl);
    fatal_if(!res.verified, "%s failed: %s", kernel, res.error.c_str());
    return res.opsPerCycle();
}

} // namespace

int
main()
{
    setQuietLogging(true);

    std::cout << "Ablation: SMC words/cycle (config S)\n\n";
    TextTable bw;
    bw.header({"words/cycle", "fft ops/cyc", "vertex-simple ops/cyc"});
    for (unsigned wpc : {2u, 4u, 8u}) {
        core::MachineParams m = arch::configByName("S");
        m.memParams.smcWordsPerCycle = wpc;
        bw.row({std::to_string(wpc), fmt(run(m, "fft")),
                fmt(run(m, "vertex-simple"))});
    }
    bw.print(std::cout);

    std::cout << "\nAblation: revitalize broadcast delay (config S)\n\n";
    TextTable rv;
    rv.header({"delay (cycles)", "fft ops/cyc", "vertex-simple ops/cyc"});
    for (unsigned d : {1u, 4u, 16u, 64u}) {
        core::MachineParams m = arch::configByName("S");
        m.revitalizeDelay = d;
        rv.row({std::to_string(d), fmt(run(m, "fft")),
                fmt(run(m, "vertex-simple"))});
    }
    rv.print(std::cout);
    return 0;
}
