/**
 * @file
 * serve_bench: multi-core scale-out serving under open-loop traffic.
 *
 * Serve a seeded request stream (kernel mix drawn from the Table 1
 * catalog) on N grid cores behind the shared L2/SMC, and report
 * sustained throughput, latency percentiles and shared-memory
 * contention per core count:
 *
 *   ./build/examples/serve_bench --cores 4 --rps 2000 \
 *       --mix convert:2,md5,fft
 *   ./build/examples/serve_bench --cores 1,2,4,8 --json SERVE.json
 *
 * Options:
 *   --cores a,b,...   core counts to serve with (default: 1,2,4,8)
 *   --rps R           offered load, requests per second (default: 2000)
 *   --requests N      requests per run (default: 256)
 *   --batch N         records per request — the per-request problem
 *                     scale; must be valid for every mix kernel, e.g. a
 *                     power of two for fft (default: 256)
 *   --mix spec        comma-separated kernel[:weight] entries
 *                     (default: convert:2,md5,fft)
 *   --config NAME     machine configuration per core (default: S-O-D)
 *   --arrival a       arrival discipline: uniform | poisson
 *                     (default: uniform)
 *   --seed S          schedule + dataset seed (default: 1)
 *   --seed-pool P     distinct dataset seeds cycled per kernel
 *                     (default: 2)
 *   --bandwidth W     shared L2/SMC bandwidth, words per tick
 *                     (default: one core's worth of SMC banks)
 *   --jobs N          worker threads for the profile sweep (default:
 *                     DLP_JOBS, else 1; 0 = one per hardware thread)
 *   --json FILE       output path (default: SERVE.json)
 *   --store DIR       persistent result store: profile runs and the
 *                     service documents land under their
 *                     content-addressed keys (also: DLP_STORE=DIR)
 *   --no-cache        bypass the process-wide result cache
 *   --audit           check the multi-core conservation laws (also:
 *                     DLP_AUDIT=1); violations exit nonzero
 *   --timeseries N    sample queue depth / flows every N simulated
 *                     ticks into the "timeseries" JSON object
 *   --quiet           suppress the per-run progress lines
 *
 * Every run is bit-reproducible from its flags: same seed and
 * parameters give byte-identical JSON, independent of --jobs.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/export.hh"
#include "arch/configs.hh"
#include "common/logging.hh"
#include "driver/service.hh"
#include "kernels/catalog.hh"
#include "store/key.hh"
#include "store/result_store.hh"
#include "verify/audit.hh"

using namespace dlp;

namespace {

std::vector<uint64_t>
parseList(const std::string &arg)
{
    std::vector<uint64_t> out;
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > start)
            out.push_back(std::strtoull(
                arg.substr(start, comma - start).c_str(), nullptr, 10));
        start = comma + 1;
    }
    fatal_if(out.empty(), "empty list '%s'", arg.c_str());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    std::vector<uint64_t> coreCounts = {1, 2, 4, 8};
    driver::ServiceOptions opts;
    opts.traffic.rps = 2000.0;
    opts.traffic.mix = traffic::parseMix("convert:2,md5,fft");
    std::string jsonPath = "SERVE.json";
    std::string storeDir;
    bool quiet = false;
    if (const char *env = std::getenv("DLP_STORE"); env && *env)
        storeDir = env;

    auto value = [&](int &i) -> const char * {
        fatal_if(i + 1 >= argc, "%s needs an argument", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cores") == 0) {
            coreCounts = parseList(value(i));
        } else if (std::strcmp(argv[i], "--rps") == 0) {
            opts.traffic.rps = std::strtod(value(i), nullptr);
        } else if (std::strcmp(argv[i], "--requests") == 0) {
            opts.traffic.requests =
                std::strtoull(value(i), nullptr, 10);
        } else if (std::strcmp(argv[i], "--batch") == 0) {
            opts.traffic.batch = std::strtoull(value(i), nullptr, 10);
        } else if (std::strcmp(argv[i], "--mix") == 0) {
            opts.traffic.mix = traffic::parseMix(value(i));
        } else if (std::strcmp(argv[i], "--config") == 0) {
            opts.config = value(i);
        } else if (std::strcmp(argv[i], "--arrival") == 0) {
            opts.traffic.arrival = traffic::arrivalByName(value(i));
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            opts.traffic.seed = std::strtoull(value(i), nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed-pool") == 0) {
            opts.traffic.seedPool = std::strtoull(value(i), nullptr, 10);
        } else if (std::strcmp(argv[i], "--bandwidth") == 0) {
            opts.bandwidthWordsPerTick = std::strtod(value(i), nullptr);
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            const char *v = value(i);
            opts.jobs = unsigned(std::strtoul(v, nullptr, 10));
            if (std::strcmp(v, "0") == 0) {
                unsigned hw = std::thread::hardware_concurrency();
                opts.jobs = hw ? hw : 1;
            }
        } else if (std::strcmp(argv[i], "--json") == 0) {
            jsonPath = value(i);
        } else if (std::strncmp(argv[i], "--store=", 8) == 0) {
            storeDir = argv[i] + 8;
        } else if (std::strcmp(argv[i], "--store") == 0) {
            storeDir = value(i);
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            opts.useCache = false;
        } else if (std::strcmp(argv[i], "--audit") == 0) {
            verify::setAuditEnabled(true);
        } else if (std::strncmp(argv[i], "--timeseries=", 13) == 0) {
            opts.timeseriesInterval =
                std::strtoull(argv[i] + 13, nullptr, 10);
        } else if (std::strcmp(argv[i], "--timeseries") == 0) {
            opts.timeseriesInterval =
                std::strtoull(value(i), nullptr, 10);
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            fatal("unknown option '%s' (see the header of "
                  "examples/serve_bench.cpp)", argv[i]);
        }
    }
    opts.storeDir = storeDir;

    // Validate names up front, before any simulation.
    (void)arch::configByName(opts.config);
    for (const auto &e : opts.traffic.mix)
        (void)kernels::kernelByName(e.kernel);

    std::unique_ptr<store::ResultStore> serviceStore;
    if (!storeDir.empty())
        serviceStore = std::make_unique<store::ResultStore>(storeDir);

    std::printf("serve_bench: %s, %" PRIu64 " requests at %.0f rps "
                "(%s arrivals), batch %" PRIu64 ", seed %" PRIu64 "\n",
                opts.config.c_str(), opts.traffic.requests,
                opts.traffic.rps,
                traffic::arrivalName(opts.traffic.arrival),
                opts.traffic.batch, opts.traffic.seed);
    std::printf("%6s %12s %12s %12s %12s %10s %12s\n", "cores",
                "sustained/s", "p50(ticks)", "p95(ticks)", "p99(ticks)",
                "maxQueue", "stallTicks");

    analysis::json::Value doc = analysis::json::Value::object();
    doc.set("generator", "dlp-sim");
    doc.set("paper",
            "Universal Mechanisms for Data-Parallel Architectures "
            "(MICRO 2003)");
    analysis::json::Value services = analysis::json::Value::array();

    size_t auditViolations = 0;
    for (uint64_t cores : coreCounts) {
        opts.cores = unsigned(cores);
        arch::ServiceResult res = driver::runService(opts);

        const GroupSnapshot &shared = res.group("mem.shared");
        double stall = 0.0;
        if (auto it = shared.scalars.find("stallTicks");
            it != shared.scalars.end())
            stall = it->second;
        std::printf("%6" PRIu64 " %12.1f %12.0f %12.0f %12.0f %10.0f "
                    "%12.0f\n",
                    cores, res.sustainedRps, res.p50, res.p95, res.p99,
                    res.maxQueueDepth, stall);
        std::fflush(stdout);

        for (const auto &f : res.auditViolations) {
            std::printf("AUDIT VIOLATION (%" PRIu64 " cores): %s: %s\n",
                        cores, f.invariant.c_str(), f.detail.c_str());
            ++auditViolations;
        }

        analysis::json::Value serviceDoc = analysis::toJson(res);
        if (serviceStore) {
            std::string key = store::serviceKey(
                opts.config, opts.cores, res.bandwidthWordsPerTick,
                opts.traffic);
            serviceStore->insertRaw(key, serviceDoc, "service");
            if (!quiet)
                std::printf("  stored service doc %s\n", key.c_str());
        }
        services.push(std::move(serviceDoc));
    }
    doc.set("services", std::move(services));
    analysis::writeJsonFile(jsonPath, doc);
    std::printf("wrote %s\n", jsonPath.c_str());
    return auditViolations ? 1 : 0;
}
