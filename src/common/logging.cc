#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dlp {

namespace {

std::atomic<bool> quietFlag{false};

/// Occurrence counts of distinct warn() messages, for rate limiting.
/// Bounded: a pathological stream of unique messages clears the table
/// rather than growing it without limit. Guarded by warnMutex: warn()
/// is called from the sweep driver's worker threads.
std::mutex warnMutex;
std::unordered_map<std::string, uint64_t> warnCounts;
constexpr size_t warnTableLimit = 4096;

} // namespace

namespace logging_detail {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args2);
    va_end(args2);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace logging_detail

void
panicMsg(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    throw PanicError(msg);
}

void
fatalMsg(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw FatalError(msg);
}

void
warnMsg(const std::string &msg)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(warnMutex);
    if (warnCounts.size() >= warnTableLimit)
        warnCounts.clear();
    uint64_t n = ++warnCounts[msg];
    if (n > warnRepeatLimit)
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
    if (n == warnRepeatLimit) {
        std::fprintf(stderr,
                     "warn: (message repeated %u times; further identical "
                     "warnings suppressed)\n", warnRepeatLimit);
    }
}

void
resetWarnDeduplication()
{
    std::lock_guard<std::mutex> lock(warnMutex);
    warnCounts.clear();
}

void
informMsg(const std::string &msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuietLogging(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quietLogging()
{
    return quietFlag.load(std::memory_order_relaxed);
}

} // namespace dlp
