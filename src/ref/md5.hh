/**
 * @file
 * Reference MD5 (RFC 1321).
 *
 * The paper's md5 kernel processes one 512-bit chunk per record (Table 2:
 * a 10-word input record -- 8 words of message chunk plus 2 words of
 * chaining state -- producing the 2-word updated state). compress() is
 * that per-record function; digest() composes it with padding for the
 * full hash used in tests and examples.
 */

#ifndef DLP_REF_MD5_HH
#define DLP_REF_MD5_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace dlp::ref {

/** MD5 chaining state (A, B, C, D). */
using Md5State = std::array<uint32_t, 4>;

/** Initial chaining values from RFC 1321. */
Md5State md5Init();

/** The 64 sine-derived constants T[i] = floor(2^32 * |sin(i+1)|). */
const std::array<uint32_t, 64> &md5T();

/** Per-round rotate amounts. */
const std::array<uint32_t, 64> &md5Shifts();

/**
 * Compress one 64-byte chunk (16 little-endian 32-bit words) into the
 * chaining state.
 */
void md5Compress(Md5State &state, const uint32_t block[16]);

/** Full MD5 of a byte buffer. */
std::array<uint8_t, 16> md5Digest(const uint8_t *data, size_t len);

/** Hex string of a digest. */
std::string md5Hex(const std::array<uint8_t, 16> &digest);

} // namespace dlp::ref

#endif // DLP_REF_MD5_HH
