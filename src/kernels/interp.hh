/**
 * @file
 * A direct interpreter for the kernel IR.
 *
 * Executes one kernel instance on one record with real loop trip counts
 * (no unrolling, no predication). This is the semantic reference for both
 * scheduler lowerings: tests require that the SIMD (unrolled/placed) and
 * MIMD (linearized) executions produce exactly the words this interpreter
 * produces, and that the interpreter matches the golden models in
 * src/ref.
 */

#ifndef DLP_KERNELS_INTERP_HH
#define DLP_KERNELS_INTERP_HH

#include <functional>
#include <vector>

#include "kernels/ir.hh"

namespace dlp::kernels {

/** External memory the kernel can touch irregularly. */
struct IrregularMemory
{
    std::function<Word(Addr)> read;
    std::function<void(Addr, Word)> write;
};

/** Dynamic execution counts gathered by the interpreter. */
struct InterpStats
{
    uint64_t executed = 0;   ///< dynamic node executions
    uint64_t useful = 0;     ///< executions of non-overhead compute nodes
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t tableLoads = 0;
    uint64_t cachedAccesses = 0;
};

/**
 * Execute one kernel instance.
 *
 * @param k      the kernel
 * @param recIdx record index visible to RecIdx nodes
 * @param in     input record (k.inWords words)
 * @param out    output record (k.outWords words), filled on return
 * @param mem    irregular-memory callbacks (may be empty if unused)
 * @param stats  optional dynamic counts
 */
void interpret(const Kernel &k, uint64_t recIdx, const Word *in, Word *out,
               const IrregularMemory &mem = {}, InterpStats *stats = nullptr);

/**
 * Convenience: run the kernel over a batch of records laid out
 * back-to-back in `in` and `out`.
 */
void interpretBatch(const Kernel &k, const std::vector<Word> &in,
                    std::vector<Word> &out, uint64_t numRecords,
                    const IrregularMemory &mem = {},
                    InterpStats *stats = nullptr);

} // namespace dlp::kernels

#endif // DLP_KERNELS_INTERP_HH
