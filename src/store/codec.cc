#include "store/codec.hh"

#include "common/logging.hh"

namespace dlp::store {

namespace {

uint64_t
asU64(const json::Value &v)
{
    // Exact even above 2^53: cycle counts and distribution
    // accumulators of very long simulations round-trip bit-identically.
    return v.asUInt64();
}

json::Value
distToJson(const Distribution &d)
{
    json::Value obj = json::Value::object();
    obj.set("low", d.low());
    obj.set("high", d.high());
    json::Value buckets = json::Value::array();
    for (size_t i = 0; i < d.numBuckets(); ++i)
        buckets.push(d.bucket(i));
    obj.set("buckets", std::move(buckets));
    obj.set("underflow", d.underflow());
    obj.set("overflow", d.overflow());
    obj.set("samples", d.samples());
    // Raw accumulators, not derived moments: the whole point.
    obj.set("sum", d.sum());
    obj.set("sumSq", d.sumSq());
    obj.set("min", d.minValue());
    obj.set("max", d.maxValue());
    return obj;
}

Distribution
distFromJson(const std::string &name, const json::Value &v)
{
    std::vector<uint64_t> buckets;
    for (const auto &b : v.at("buckets").items())
        buckets.push_back(asU64(b));
    Distribution d(name, v.at("low").asNumber(), v.at("high").asNumber(),
                   unsigned(buckets.size()));
    d.restore(v.at("low").asNumber(), v.at("high").asNumber(),
              std::move(buckets), asU64(v.at("underflow")),
              asU64(v.at("overflow")), asU64(v.at("samples")),
              v.at("sum").asNumber(), v.at("sumSq").asNumber(),
              v.at("min").asNumber(), v.at("max").asNumber());
    return d;
}

json::Value
snapshotToJson(const GroupSnapshot &g)
{
    json::Value obj = json::Value::object();
    obj.set("name", g.name);
    json::Value scalars = json::Value::object();
    for (const auto &[n, v] : g.scalars)
        scalars.set(n, v);
    obj.set("scalars", std::move(scalars));
    json::Value formulas = json::Value::object();
    for (const auto &[n, v] : g.formulas)
        formulas.set(n, v);
    obj.set("formulas", std::move(formulas));
    json::Value dists = json::Value::object();
    for (const auto &[n, d] : g.distributions)
        dists.set(n, distToJson(d));
    obj.set("distributions", std::move(dists));
    json::Value vectors = json::Value::object();
    for (const auto &[n, v] : g.vectors) {
        json::Value arr = json::Value::array();
        for (double x : v.all())
            arr.push(x);
        vectors.set(n, std::move(arr));
    }
    obj.set("vectors", std::move(vectors));
    return obj;
}

GroupSnapshot
snapshotFromJson(const json::Value &v)
{
    GroupSnapshot g;
    g.name = v.at("name").asString();
    for (const auto &[n, s] : v.at("scalars").members())
        g.scalars[n] = s.asNumber();
    for (const auto &[n, f] : v.at("formulas").members())
        g.formulas[n] = f.asNumber();
    for (const auto &[n, d] : v.at("distributions").members())
        g.distributions.emplace(n, distFromJson(n, d));
    for (const auto &[n, arr] : v.at("vectors").members()) {
        VectorStat vec(n, arr.items().size());
        for (size_t i = 0; i < arr.items().size(); ++i)
            vec.set(i, arr.at(i).asNumber());
        g.vectors.emplace(n, std::move(vec));
    }
    return g;
}

json::Value
timeseriesToJson(const obs::TimeSeries &ts)
{
    json::Value obj = json::Value::object();
    obj.set("intervalTicks", ts.intervalTicks);
    json::Value names = json::Value::array();
    for (const auto &n : ts.statNames)
        names.push(n);
    obj.set("statNames", std::move(names));
    json::Value levels = json::Value::array();
    for (bool level : ts.isLevel)
        levels.push(level);
    obj.set("isLevel", std::move(levels));
    json::Value ticks = json::Value::array();
    for (uint64_t t : ts.ticks)
        ticks.push(t);
    obj.set("ticks", std::move(ticks));
    json::Value rows = json::Value::array();
    for (const auto &row : ts.samples) {
        json::Value vals = json::Value::array();
        for (double v : row)
            vals.push(v);
        rows.push(std::move(vals));
    }
    obj.set("samples", std::move(rows));
    return obj;
}

obs::TimeSeries
timeseriesFromJson(const json::Value &v)
{
    obs::TimeSeries ts;
    ts.intervalTicks = asU64(v.at("intervalTicks"));
    for (const auto &n : v.at("statNames").items())
        ts.statNames.push_back(n.asString());
    for (const auto &b : v.at("isLevel").items())
        ts.isLevel.push_back(b.asBool());
    for (const auto &t : v.at("ticks").items())
        ts.ticks.push_back(asU64(t));
    for (const auto &row : v.at("samples").items()) {
        std::vector<double> vals;
        vals.reserve(row.items().size());
        for (const auto &x : row.items())
            vals.push_back(x.asNumber());
        ts.samples.push_back(std::move(vals));
    }
    return ts;
}

} // namespace

json::Value
resultToJson(const arch::ExperimentResult &result)
{
    json::Value obj = json::Value::object();
    obj.set("kernel", result.kernel);
    obj.set("config", result.config);
    obj.set("verified", result.verified);
    obj.set("error", result.error);
    obj.set("cycles", result.cycles);
    obj.set("usefulOps", result.usefulOps);
    obj.set("instsExecuted", result.instsExecuted);
    obj.set("records", result.records);
    obj.set("activations", result.activations);
    obj.set("mappings", result.mappings);
    obj.set("hostSeconds", result.hostSeconds);
    obj.set("hostEvents", result.hostEvents);
    obj.set("ffEpochs", result.ffEpochs);
    obj.set("ffIterations", result.ffIterations);
    obj.set("ffEventsSaved", result.ffEventsSaved);
    obj.set("eventActivations", result.eventActivations);

    obj.set("audited", result.audited);
    if (result.audited) {
        json::Value arr = json::Value::array();
        for (const auto &f : result.auditViolations) {
            json::Value e = json::Value::object();
            e.set("invariant", f.invariant);
            e.set("detail", f.detail);
            arr.push(std::move(e));
        }
        obj.set("auditViolations", std::move(arr));
    }

    obj.set("checked", result.checked);
    if (result.checked) {
        obj.set("checkErrors", result.checkErrors);
        obj.set("checkWarnings", result.checkWarnings);
        json::Value arr = json::Value::array();
        for (const auto &f : result.checkFindings) {
            json::Value e = json::Value::object();
            e.set("rule", f.rule);
            e.set("severity", f.severity);
            e.set("location", f.location);
            e.set("detail", f.detail);
            arr.push(std::move(e));
        }
        obj.set("checkFindings", std::move(arr));
    }

    // Static cost model. Flat u64/double/bool/string fields; written
    // raw so the round-trip is exact.
    {
        const arch::CostSummary &c = result.cost;
        json::Value cost = json::Value::object();
        cost.set("analyzed", c.analyzed);
        cost.set("mimd", c.mimd);
        cost.set("unroll", uint64_t(c.unroll));
        cost.set("perActivationRemap", c.perActivationRemap);
        cost.set("segments", c.segments);
        cost.set("mapTicksMin", c.mapTicksMin);
        cost.set("boundTicksPerActivation", c.boundTicksPerActivation);
        cost.set("setupTicks", c.setupTicks);
        cost.set("minCycleInsts", c.minCycleInsts);
        cost.set("minCycleLoadUnits", c.minCycleLoadUnits);
        cost.set("minCycleStoreUnits", c.minCycleStoreUnits);
        cost.set("tiles", c.tiles);
        cost.set("gridCols", c.gridCols);
        cost.set("criticalPathTicks", c.criticalPathTicks);
        cost.set("maxPressureTicks", c.maxPressureTicks);
        cost.set("bottleneck", c.bottleneck);
        cost.set("hopMass", c.hopMass);
        cost.set("hopLowerBound", c.hopLowerBound);
        cost.set("smcReadUnits", c.smcReadUnits);
        cost.set("smcWriteUnits", c.smcWriteUnits);
        cost.set("rsOccupancy", c.rsOccupancy);
        cost.set("predictedTicksPerRecord", c.predictedTicksPerRecord);
        obj.set("cost", std::move(cost));
    }

    if (result.timeseries.present())
        obj.set("timeseries", timeseriesToJson(result.timeseries));

    json::Value groups = json::Value::array();
    for (const auto &g : result.statGroups)
        groups.push(snapshotToJson(g));
    obj.set("statGroups", std::move(groups));
    return obj;
}

arch::ExperimentResult
resultFromJson(const json::Value &doc)
{
    arch::ExperimentResult r;
    r.kernel = doc.at("kernel").asString();
    r.config = doc.at("config").asString();
    r.verified = doc.at("verified").asBool();
    r.error = doc.at("error").asString();
    r.cycles = asU64(doc.at("cycles"));
    r.usefulOps = asU64(doc.at("usefulOps"));
    r.instsExecuted = asU64(doc.at("instsExecuted"));
    r.records = asU64(doc.at("records"));
    r.activations = asU64(doc.at("activations"));
    r.mappings = asU64(doc.at("mappings"));
    r.hostSeconds = doc.at("hostSeconds").asNumber();
    r.hostEvents = asU64(doc.at("hostEvents"));
    // Fast-forwarding counters: absent in pre-epoch documents, which by
    // construction simulated every activation through the event queue.
    if (const json::Value *v = doc.find("ffEpochs"))
        r.ffEpochs = asU64(*v);
    if (const json::Value *v = doc.find("ffIterations"))
        r.ffIterations = asU64(*v);
    if (const json::Value *v = doc.find("ffEventsSaved"))
        r.ffEventsSaved = asU64(*v);
    if (const json::Value *v = doc.find("eventActivations"))
        r.eventActivations = asU64(*v);
    else
        r.eventActivations = r.activations;

    r.audited = doc.at("audited").asBool();
    if (r.audited) {
        for (const auto &e : doc.at("auditViolations").items()) {
            arch::AuditFinding f;
            f.invariant = e.at("invariant").asString();
            f.detail = e.at("detail").asString();
            r.auditViolations.push_back(std::move(f));
        }
    }

    r.checked = doc.at("checked").asBool();
    if (r.checked) {
        r.checkErrors = asU64(doc.at("checkErrors"));
        r.checkWarnings = asU64(doc.at("checkWarnings"));
        for (const auto &e : doc.at("checkFindings").items()) {
            arch::CheckFinding f;
            f.rule = e.at("rule").asString();
            f.severity = e.at("severity").asString();
            f.location = e.at("location").asString();
            f.detail = e.at("detail").asString();
            r.checkFindings.push_back(std::move(f));
        }
    }

    // Cost summary: absent in pre-cost-model documents, which keep the
    // default (analyzed == false) summary.
    if (const json::Value *v = doc.find("cost")) {
        arch::CostSummary &c = r.cost;
        c.analyzed = v->at("analyzed").asBool();
        c.mimd = v->at("mimd").asBool();
        c.unroll = unsigned(asU64(v->at("unroll")));
        c.perActivationRemap = v->at("perActivationRemap").asBool();
        c.segments = asU64(v->at("segments"));
        c.mapTicksMin = asU64(v->at("mapTicksMin"));
        c.boundTicksPerActivation = asU64(v->at("boundTicksPerActivation"));
        c.setupTicks = asU64(v->at("setupTicks"));
        c.minCycleInsts = asU64(v->at("minCycleInsts"));
        c.minCycleLoadUnits = asU64(v->at("minCycleLoadUnits"));
        c.minCycleStoreUnits = asU64(v->at("minCycleStoreUnits"));
        c.tiles = asU64(v->at("tiles"));
        c.gridCols = asU64(v->at("gridCols"));
        c.criticalPathTicks = asU64(v->at("criticalPathTicks"));
        c.maxPressureTicks = asU64(v->at("maxPressureTicks"));
        c.bottleneck = v->at("bottleneck").asString();
        c.hopMass = asU64(v->at("hopMass"));
        c.hopLowerBound = asU64(v->at("hopLowerBound"));
        c.smcReadUnits = asU64(v->at("smcReadUnits"));
        c.smcWriteUnits = asU64(v->at("smcWriteUnits"));
        c.rsOccupancy = v->at("rsOccupancy").asNumber();
        c.predictedTicksPerRecord =
            v->at("predictedTicksPerRecord").asNumber();
    }

    if (const json::Value *ts = doc.find("timeseries"))
        r.timeseries = timeseriesFromJson(*ts);

    for (const auto &g : doc.at("statGroups").items())
        r.statGroups.push_back(snapshotFromJson(g));
    return r;
}

} // namespace dlp::store
