/**
 * @file
 * The static SPDI verifier: pre-execution linting of scheduled programs.
 *
 * The scheduler's output -- placed dataflow blocks (SimdPlan) or
 * per-tile sequential programs (MimdPlan) -- is supposed to uphold the
 * structural invariants the TRIPS-style block format demands: every
 * operand slot fed by exactly one producer, every target in range, an
 * acyclic operand graph, placements inside the grid, aliasing memory
 * accesses ordered by a token edge, persistence bits consistent with the
 * machine's revitalization mechanisms. verify() decides all of them
 * statically and returns a Report of structured diagnostics, so a
 * lowering bug is rejected at mapping time with a rule ID and location
 * instead of surfacing as a wrong word thousands of simulated cycles
 * later (or never).
 *
 * Checking is opt-in at run time: pass `--check` to the benches and
 * examples or set DLP_CHECK=1; the processor then verifies every plan it
 * is about to execute and refuses to run one with Error findings. The
 * `lint_ir` example lints the whole kernel catalog across every Table 5
 * configuration without simulating anything.
 */

#ifndef DLP_CHECK_VERIFY_HH
#define DLP_CHECK_VERIFY_HH

#include "check/report.hh"
#include "core/machine.hh"
#include "isa/mapped.hh"
#include "isa/seq.hh"
#include "kernels/ir.hh"
#include "sched/plan.hh"

namespace dlp::check {

/** A scheduled program: exactly one of the two plan pointers is set. */
struct MappedProgram
{
    const sched::SimdPlan *simd = nullptr;
    const sched::MimdPlan *mimd = nullptr;
    /// The kernel the plan was lowered from; enables the lookup-table
    /// rules when present.
    const kernels::Kernel *kernel = nullptr;
};

/** Verify a scheduled program against a machine configuration. */
Report verify(const MappedProgram &prog, const core::MachineParams &m);

/** Context knobs for single-block verification (unit tests). */
struct BlockOptions
{
    /// Treat the block as re-fired by revitalization (operand
    /// persistence across activations matters).
    bool revitalized = true;
    /// Stream layout for the memory-ordering region analysis.
    const sched::StreamLayout *layout = nullptr;
    const kernels::Kernel *kernel = nullptr;
};

/** Verify one hand-built mapped block. */
Report verifyBlock(const isa::MappedBlock &block,
                   const core::MachineParams &m,
                   const BlockOptions &opts = {});

/** Verify one sequential (MIMD) program. */
Report verifySeq(const isa::SeqProgram &prog,
                 const core::MachineParams &m,
                 const kernels::Kernel *kernel = nullptr);

/// @name Process-wide check switch.
/// Explicit setCheckEnabled() wins; otherwise the DLP_CHECK environment
/// variable decides (any value except "" and "0" enables).
/// @{
bool checkEnabled();
void setCheckEnabled(bool on);
/// @}

} // namespace dlp::check

#endif // DLP_CHECK_VERIFY_HH
