file(REMOVE_RECURSE
  "CMakeFiles/dlp_mem.dir/cache_model.cc.o"
  "CMakeFiles/dlp_mem.dir/cache_model.cc.o.d"
  "CMakeFiles/dlp_mem.dir/memory_system.cc.o"
  "CMakeFiles/dlp_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/dlp_mem.dir/smc.cc.o"
  "CMakeFiles/dlp_mem.dir/smc.cc.o.d"
  "libdlp_mem.a"
  "libdlp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
