/**
 * @file
 * The sweepd wire protocol: newline-delimited JSON over a Unix-domain
 * stream socket.
 *
 * Every message is one complete JSON object on one line (the JSON
 * writer's compact form never embeds raw newlines). Requests carry an
 * "op" and a client-chosen "id" that every response echoes:
 *
 *   {"op":"ping","id":..}      -> {"id":..,"type":"pong"}
 *   {"op":"stats","id":..}     -> {"id":..,"type":"stats",
 *                                  "counters":{..},"store":{..}}
 *   {"op":"shutdown","id":..}  -> {"id":..,"type":"bye"}  (server exits)
 *   {"op":"sweep","id":..,
 *    "tasks":[{"kernel","config","scaleDiv","seed","scale"},..]}
 *
 * A sweep response streams one line per task *as cells complete* (not
 * in task order — warm cells arrive first), then a terminator:
 *
 *   {"id":..,"type":"result","index":N,"cached":bool,"result":{..}}
 *   {"id":..,"type":"error","index":N,"message":..}   (failed cell)
 *   {"id":..,"type":"done","cells":N,"counters":{..},"store":{..}}
 *
 * The "result" object is the store codec's full-fidelity document
 * (store/codec.hh), so the client reconstructs ExperimentResults that
 * are field-for-field identical to a local runSweep. A cell whose
 * simulation fails answers with an indexed "error" line per requesting
 * task while the rest of the batch completes, still terminated by
 * "done". Malformed input yields {"id":..,"type":"error","message":..}
 * (no "index") and the connection stays open either way.
 */

#ifndef DLP_SERVE_PROTOCOL_HH
#define DLP_SERVE_PROTOCOL_HH

#include <string>

#include "common/json.hh"
#include "driver/sweep.hh"

namespace dlp::serve {

/**
 * Incremental splitter of a byte stream into newline-terminated
 * lines. feed() appends raw bytes; next() pops the earliest complete
 * line (without its newline) until the buffer holds none.
 */
class LineReader
{
  public:
    void feed(const char *data, size_t n) { buf.append(data, n); }
    bool next(std::string &line);

  private:
    std::string buf;
};

/**
 * Write one message as a compact JSON line. Returns false when the
 * peer is gone (EPIPE and friends); never raises SIGPIPE.
 */
bool writeLine(int fd, const json::Value &message);

/** Connect to a Unix-domain stream socket; fatal on failure. */
int connectUnix(const std::string &path);

/**
 * Blocking read of the next message line from fd through reader.
 * Returns false on EOF before a complete line.
 */
bool readMessage(int fd, LineReader &reader, std::string &line);

/// @name Message builders and parsers.
/// @{

json::Value sweepRequest(const std::string &id,
                         const driver::SweepPlan &plan);

json::Value simpleRequest(const std::string &id, const std::string &op);

/** Parse a sweep request's "tasks" array; FatalError on bad shape. */
driver::SweepPlan planFromRequest(const json::Value &request);

/// @}

} // namespace dlp::serve

#endif // DLP_SERVE_PROTOCOL_HH
